// Unit tests for core/mobility.h: sessions, prevalence, persistence.
#include "core/mobility.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace wmesh {
namespace {

ClientSample sample(std::uint32_t client, ApId ap, std::uint32_t bucket) {
  ClientSample s;
  s.client = client;
  s.ap = ap;
  s.bucket = bucket;
  return s;
}

TEST(Sessions, SplitsOnGap) {
  std::vector<ClientSample> samples = {
      sample(1, 0, 0), sample(1, 0, 1),
      sample(1, 0, 5),  // gap of 3 buckets -> new session
      sample(2, 1, 0),  // new client -> new session
  };
  const auto sessions = reconstruct_sessions(samples);
  ASSERT_EQ(sessions.size(), 3u);
  EXPECT_EQ(sessions[0].client, 1u);
  EXPECT_EQ(sessions[0].aps.size(), 2u);
  EXPECT_EQ(sessions[1].start_bucket, 5u);
  EXPECT_EQ(sessions[2].client, 2u);
}

TEST(Sessions, ContiguousStaysTogether) {
  std::vector<ClientSample> samples = {
      sample(1, 0, 3), sample(1, 2, 4), sample(1, 0, 5)};
  const auto sessions = reconstruct_sessions(samples);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].aps.size(), 3u);
  EXPECT_EQ(sessions[0].start_bucket, 3u);
}

TEST(Sessions, EmptyInput) {
  EXPECT_TRUE(reconstruct_sessions({}).empty());
}

NetworkTrace trace_of(std::vector<ClientSample> samples,
                      Environment env = Environment::kIndoor) {
  NetworkTrace nt;
  nt.info.env = env;
  nt.ap_count = 8;
  nt.client_samples = std::move(samples);
  return nt;
}

TEST(Mobility, SingleApClient) {
  // One client at AP 0 for 4 of 8 buckets; horizon is set by a second
  // client's later sample.
  auto nt = trace_of({sample(1, 0, 0), sample(1, 0, 1), sample(1, 0, 2),
                      sample(1, 0, 3), sample(2, 1, 7)});
  const auto m = analyze_mobility(nt, 5.0);
  ASSERT_EQ(m.aps_visited.size(), 2u);
  EXPECT_EQ(m.aps_visited[0], 1);
  EXPECT_DOUBLE_EQ(m.connection_length_min[0], 20.0);
  // Prevalence of client 1's AP: 4 buckets of an 8-bucket horizon.
  EXPECT_DOUBLE_EQ(m.prevalence[0], 0.5);
  // One run of 4 buckets = 20 minutes.
  EXPECT_DOUBLE_EQ(m.persistence_min[0], 20.0);
}

TEST(Mobility, AlternatingClientHasShortPersistence) {
  // The paper's example: alternating between two APs every bucket versus
  // staying an hour at each -- same prevalence, different persistence.
  std::vector<ClientSample> alternating, blocked;
  for (std::uint32_t b = 0; b < 12; ++b) {
    alternating.push_back(sample(1, b % 2 == 0 ? 0 : 1, b));
    blocked.push_back(sample(1, b < 6 ? 0 : 1, b));
  }
  const auto ma = analyze_mobility(trace_of(std::move(alternating)), 5.0);
  const auto mb = analyze_mobility(trace_of(std::move(blocked)), 5.0);
  // Identical prevalence: half the horizon at each AP.
  EXPECT_DOUBLE_EQ(ma.prevalence[0], 0.5);
  EXPECT_DOUBLE_EQ(mb.prevalence[0], 0.5);
  // Alternating: 12 runs of 5 min; blocked: 2 runs of 30 min.
  EXPECT_EQ(ma.persistence_min.size(), 12u);
  EXPECT_DOUBLE_EQ(ma.persistence_min[0], 5.0);
  EXPECT_EQ(mb.persistence_min.size(), 2u);
  EXPECT_DOUBLE_EQ(mb.persistence_min[0], 30.0);
}

TEST(Mobility, PersVsPrevPerSession) {
  std::vector<ClientSample> samples;
  for (std::uint32_t b = 0; b < 10; ++b) samples.push_back(sample(1, 0, b));
  const auto m = analyze_mobility(trace_of(std::move(samples)), 5.0);
  ASSERT_EQ(m.pers_vs_prev.size(), 1u);
  EXPECT_DOUBLE_EQ(m.pers_vs_prev[0].first, 50.0);   // median persistence
  EXPECT_DOUBLE_EQ(m.pers_vs_prev[0].second, 1.0);   // max prevalence
}

TEST(Mobility, ApsVisitedCountsDistinct) {
  std::vector<ClientSample> samples = {sample(1, 0, 0), sample(1, 1, 1),
                                       sample(1, 0, 2), sample(1, 2, 3)};
  const auto m = analyze_mobility(trace_of(std::move(samples)), 5.0);
  ASSERT_EQ(m.aps_visited.size(), 1u);
  EXPECT_EQ(m.aps_visited[0], 3);
}

TEST(Mobility, GapCreatesTwoVirtualClients) {
  std::vector<ClientSample> samples = {sample(1, 0, 0), sample(1, 0, 1),
                                       sample(1, 1, 6), sample(1, 1, 7)};
  const auto m = analyze_mobility(trace_of(std::move(samples)), 5.0);
  EXPECT_EQ(m.aps_visited.size(), 2u);
  EXPECT_EQ(m.connection_length_min.size(), 2u);
  EXPECT_DOUBLE_EQ(m.connection_length_min[0], 10.0);
  EXPECT_DOUBLE_EQ(m.connection_length_min[1], 10.0);
}

TEST(Mobility, ByEnvFiltersTraces) {
  Dataset ds;
  ds.networks.push_back(trace_of({sample(1, 0, 0)}, Environment::kIndoor));
  ds.networks.push_back(trace_of({sample(1, 0, 0), sample(1, 0, 1)},
                                 Environment::kOutdoor));
  ds.networks.push_back(trace_of({sample(1, 0, 0)}, Environment::kMixed));
  const auto indoor = analyze_mobility_by_env(ds, Environment::kIndoor);
  const auto outdoor = analyze_mobility_by_env(ds, Environment::kOutdoor);
  EXPECT_EQ(indoor.aps_visited.size(), 1u);
  EXPECT_EQ(outdoor.aps_visited.size(), 1u);
  EXPECT_DOUBLE_EQ(outdoor.connection_length_min[0], 10.0);
}

TEST(Mobility, MergeConcatenates) {
  MobilityStats a, b;
  a.prevalence = {0.1};
  a.persistence_min = {5.0};
  b.prevalence = {0.2, 0.3};
  b.persistence_min = {10.0};
  merge_mobility(a, std::move(b));
  EXPECT_EQ(a.prevalence.size(), 3u);
  EXPECT_EQ(a.persistence_min.size(), 2u);
}

TEST(Mobility, PrevalenceSumsToSessionShareOfHorizon) {
  // A session covering k of H buckets contributes prevalences summing k/H.
  std::vector<ClientSample> samples;
  for (std::uint32_t b = 2; b < 8; ++b) {
    samples.push_back(sample(1, b % 3, b));
  }
  samples.push_back(sample(2, 0, 11));  // horizon = 12 buckets
  const auto m = analyze_mobility(trace_of(std::move(samples)), 5.0);
  double sum = 0.0;
  for (double p : m.prevalence) sum += p;
  // Client 1: 6 buckets of 12 -> .5; client 2: 1 bucket -> 1/12.
  EXPECT_NEAR(sum, 0.5 + 1.0 / 12.0, 1e-9);
}

}  // namespace
}  // namespace wmesh

// Property tests for the routing and hidden-terminal analyses: invariants
// that hold for *every* success matrix by construction of the metrics, so
// they are checked over a full generated fleet rather than hand-picked
// fixtures.
//
//   * ETX path cost >= hop count (every usable link costs >= 1 transmission)
//   * ExOR cost <= ETX cost of the same pair (opportunistic receptions can
//     only help an idealized, overhead-free ExOR) and >= 1
//   * ETX2 path cost >= ETX1 path cost (the lossy ACK channel can only add
//     transmissions), and ETX2 reachability is a subset of ETX1's
//   * anypath airtime <= ExOR airtime <= ETX airtime per (network, rate,
//     destination) pair: ExOR at any fixed rate is a feasible anypath
//     policy, and the ETX shortest path is a feasible ExOR strategy
//   * ETX2-ack-model anypath >= ETX1-ack-model anypath (lossy ACKs shrink
//     every delivery probability, and the anypath distance is monotone)
//   * shrinking the hearing relation (the constructed analogue of moving to
//     a faster, shorter-range bit rate) shrinks the range and the relevant
//     triple count monotonically
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "anypath/anypath.h"
#include "core/dataset_ops.h"
#include "core/etx.h"
#include "core/exor.h"
#include "core/hidden.h"
#include "sim/generator.h"

namespace wmesh {
namespace {

const Dataset& test_dataset() {
  static const Dataset ds = [] {
    GeneratorConfig c = small_config();
    c.probes.duration_s = 1800.0;
    c.seed = 4242;
    return generate_dataset(c);
  }();
  return ds;
}

// The networks the routing study covers: b/g traces with >= 5 APs.
std::vector<SuccessMatrix> routing_matrices() {
  std::vector<SuccessMatrix> out;
  for (const auto& nt : test_dataset().networks) {
    if (nt.info.standard != Standard::kBg || nt.ap_count < 5) continue;
    out.push_back(mean_success_matrix(nt, 0));
  }
  return out;
}

TEST(RoutingProperties, EtxPathCostIsAtLeastHopCount) {
  std::size_t pairs = 0;
  for (const auto& m : routing_matrices()) {
    for (const EtxVariant v : {EtxVariant::kEtx1, EtxVariant::kEtx2}) {
      for (const PairGain& pg : opportunistic_gains(m, v)) {
        ++pairs;
        EXPECT_GE(pg.hops, 1);
        // Every usable link delivers with probability <= 1, so its ETX cost
        // is >= 1 transmission; a path of h hops therefore costs >= h.
        EXPECT_GE(pg.etx_cost, static_cast<double>(pg.hops) - 1e-9)
            << to_string(v) << " " << int(pg.src) << "->" << int(pg.dst);
      }
    }
  }
  ASSERT_GT(pairs, 0u) << "generated fleet produced no routable pairs";
}

TEST(RoutingProperties, ExorNeverCostsMoreThanEtx) {
  std::size_t pairs = 0;
  for (const auto& m : routing_matrices()) {
    for (const EtxVariant v : {EtxVariant::kEtx1, EtxVariant::kEtx2}) {
      for (const PairGain& pg : opportunistic_gains(m, v)) {
        ++pairs;
        // The idealized ExOR always has the ETX shortest path available as
        // one strategy, so extra opportunistic receptions can only help.
        EXPECT_LE(pg.exor_cost, pg.etx_cost + 1e-9)
            << to_string(v) << " " << int(pg.src) << "->" << int(pg.dst);
        // ...but delivering a packet still takes at least one broadcast.
        EXPECT_GE(pg.exor_cost, 1.0 - 1e-9);
        const double imp = pg.improvement();
        EXPECT_GE(imp, -1e-9);
        EXPECT_LT(imp, 1.0);
      }
    }
  }
  ASSERT_GT(pairs, 0u);
}

TEST(RoutingProperties, Etx2PathCostDominatesEtx1) {
  std::size_t reachable = 0;
  for (const auto& m : routing_matrices()) {
    const EtxGraph g1(m, EtxVariant::kEtx1, kEtxMinDelivery);
    const EtxGraph g2(m, EtxVariant::kEtx2, kEtxMinDelivery);
    const std::size_t n = m.ap_count();
    for (ApId src = 0; src < static_cast<ApId>(n); ++src) {
      const auto d1 = g1.shortest_from(src);
      const auto d2 = g2.shortest_from(src);
      for (std::size_t dst = 0; dst < n; ++dst) {
        if (d2[dst] == kInfCost) continue;  // ETX2-unreachable
        ++reachable;
        // Per link cost2 = 1/(p_fwd*p_rev) >= 1/p_fwd = cost1, so the
        // shortest ETX2 path dominates the shortest ETX1 path, and ETX2
        // reachability is a subset of ETX1 reachability.
        EXPECT_NE(d1[dst], kInfCost);
        EXPECT_GE(d2[dst] + 1e-9, d1[dst]);
      }
    }
  }
  ASSERT_GT(reachable, 0u);
}

TEST(AnypathProperties, AnypathNeverCostsMoreAirtimeThanExorOrEtx) {
  std::size_t pairs = 0;
  for (const auto& nt : test_dataset().networks) {
    if (nt.info.standard != Standard::kBg || nt.ap_count < 5) continue;
    const auto per_rate = all_success_matrices(nt);
    const anypath::AnypathGraph ag(per_rate, Standard::kBg,
                                   EtxVariant::kEtx1);
    const std::size_t n = nt.ap_count;
    double min_air = kInfCost;
    for (RateIndex r = 0; r < static_cast<RateIndex>(per_rate.size()); ++r) {
      min_air = std::min(min_air, ag.airtime_us(r));
    }
    for (std::size_t dst = 0; dst < n; ++dst) {
      const auto field = ag.costs_to(static_cast<ApId>(dst));
      for (RateIndex r = 0; r < static_cast<RateIndex>(per_rate.size());
           ++r) {
        const double air = ag.airtime_us(r);
        const EtxGraph g(per_rate[r], EtxVariant::kEtx1, kEtxMinDelivery);
        const auto etx_to = g.shortest_to(static_cast<ApId>(dst));
        const auto exor_to = exor_costs_to(per_rate[r], etx_to);
        for (std::size_t src = 0; src < n; ++src) {
          if (src == dst || etx_to[src] == kInfCost ||
              exor_to[src] == kInfCost) {
            continue;
          }
          ++pairs;
          const double any_us = field.cost_us[src];
          const double exor_us = exor_to[src] * air;
          const double etx_us = etx_to[src] * air;
          // Multirate anypath minimizes over every (forwarding set, rate)
          // policy; ExOR fixed at rate r is one of them, and the ETX
          // shortest path at rate r is one of ExOR's.  Tolerances are
          // relative: costs are airtimes in the 1e4..1e6 us range.
          ASSERT_NE(any_us, kInfCost);
          EXPECT_LE(any_us, exor_us * (1.0 + 1e-9))
              << rate_name(Standard::kBg, r) << " " << src << "->" << dst;
          EXPECT_LE(exor_us, etx_us * (1.0 + 1e-9))
              << rate_name(Standard::kBg, r) << " " << src << "->" << dst;
          // ...and delivery still takes at least one transmission at the
          // fastest rate.
          EXPECT_GE(any_us, min_air * (1.0 - 1e-9));
        }
      }
    }
  }
  ASSERT_GT(pairs, 0u) << "generated fleet produced no routable pairs";
}

TEST(AnypathProperties, LossyAckModelDominatesPerfectAckModel) {
  std::size_t reachable = 0;
  for (const auto& nt : test_dataset().networks) {
    if (nt.info.standard != Standard::kBg || nt.ap_count < 5) continue;
    const auto per_rate = all_success_matrices(nt);
    const anypath::AnypathGraph a1(per_rate, Standard::kBg,
                                   EtxVariant::kEtx1);
    const anypath::AnypathGraph a2(per_rate, Standard::kBg,
                                   EtxVariant::kEtx2);
    const std::size_t n = nt.ap_count;
    for (std::size_t dst = 0; dst < n; ++dst) {
      const auto f1 = a1.costs_to(static_cast<ApId>(dst));
      const auto f2 = a2.costs_to(static_cast<ApId>(dst));
      for (std::size_t src = 0; src < n; ++src) {
        if (src == dst || f2.cost_us[src] == kInfCost) continue;
        ++reachable;
        // The ETX2 model multiplies every delivery probability by the
        // reverse (ACK) success, so each hyperlink gets strictly harder and
        // the optimal distance can only grow; ETX2 reachability is a
        // subset of ETX1's.
        EXPECT_NE(f1.cost_us[src], kInfCost);
        EXPECT_GE(f2.cost_us[src] * (1.0 + 1e-9), f1.cost_us[src])
            << src << "->" << dst;
      }
    }
  }
  ASSERT_GT(reachable, 0u);
}

// Scales every success rate by `f`, the constructed analogue of probing at
// a faster rate: the same topology heard less well everywhere.
SuccessMatrix scaled(const SuccessMatrix& m, double f) {
  SuccessMatrix out(m.ap_count());
  for (ApId a = 0; a < static_cast<ApId>(m.ap_count()); ++a) {
    for (ApId b = 0; b < static_cast<ApId>(m.ap_count()); ++b) {
      out.set(a, b, f * m.at(a, b));
    }
  }
  return out;
}

TEST(HiddenProperties, ShrinkingHearingShrinksRangeAndRelevantTriples) {
  // Uniformly scaling the success matrix down can only remove hearing
  // edges (threshold fixed), so the range and the relevant-triple count
  // must fall monotonically.  This is the §6 claim ("higher rates have
  // shorter range") as a hard guarantee of the counting code.
  bool checked_any = false;
  for (const auto& m : routing_matrices()) {
    std::size_t prev_range = 0;
    std::size_t prev_relevant = 0;
    bool first = true;
    for (const double f : {1.0, 0.8, 0.6, 0.4, 0.2, 0.05}) {
      const HearingGraph h(scaled(m, f), 0.10);
      const std::size_t range = h.range_pairs();
      const TripleCounts t = count_triples(h);
      EXPECT_LE(t.hidden, t.relevant);
      if (!first) {
        EXPECT_LE(range, prev_range) << "factor " << f;
        EXPECT_LE(t.relevant, prev_relevant) << "factor " << f;
      }
      if (first && range > 0) checked_any = true;
      prev_range = range;
      prev_relevant = t.relevant;
      first = false;
    }
  }
  ASSERT_TRUE(checked_any) << "no network had any hearing pairs at full power";
}

TEST(HiddenProperties, HearingGraphIsSymmetric) {
  for (const auto& m : routing_matrices()) {
    const HearingGraph h(m, 0.10);
    for (ApId a = 0; a < static_cast<ApId>(h.ap_count()); ++a) {
      for (ApId b = 0; b < static_cast<ApId>(h.ap_count()); ++b) {
        EXPECT_EQ(h.hears(a, b), h.hears(b, a));
      }
    }
  }
}

}  // namespace
}  // namespace wmesh

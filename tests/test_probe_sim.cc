// Unit tests for sim/probe_sim.h: the Meraki measurement pipeline.
#include "sim/probe_sim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "mesh/topology.h"

namespace wmesh {
namespace {

MeshNetwork small_net(std::size_t n = 4, double spacing = 45.0) {
  std::vector<Ap> aps;
  for (std::size_t i = 0; i < n; ++i) {
    aps.push_back({static_cast<ApId>(i),
                   spacing * static_cast<double>(i % 2),
                   spacing * static_cast<double>(i / 2)});
  }
  NetworkInfo info;
  info.id = 3;
  return MeshNetwork(info, aps);
}

ProbeSimParams quick_params() {
  ProbeSimParams p;
  p.duration_s = 1800.0;
  return p;
}

TEST(ProbeSim, ReportTimesAreMultiplesOfInterval) {
  Rng rng(1);
  const auto sets = simulate_probes(small_net(), Standard::kBg,
                                    indoor_channel_params(), quick_params(),
                                    rng);
  ASSERT_FALSE(sets.empty());
  for (const auto& s : sets) {
    EXPECT_EQ(s.time_s % 300, 0u) << s.time_s;
    EXPECT_GE(s.time_s, 300u);
    EXPECT_LE(s.time_s, 1800u);
  }
}

TEST(ProbeSim, SortedByTimeThenLink) {
  Rng rng(2);
  const auto sets = simulate_probes(small_net(), Standard::kBg,
                                    indoor_channel_params(), quick_params(),
                                    rng);
  for (std::size_t i = 1; i < sets.size(); ++i) {
    EXPECT_LE(sets[i - 1].time_s, sets[i].time_s);
  }
}

TEST(ProbeSim, EntriesCoverEveryProbedRate) {
  Rng rng(3);
  const auto sets = simulate_probes(small_net(), Standard::kBg,
                                    indoor_channel_params(), quick_params(),
                                    rng);
  for (const auto& s : sets) {
    ASSERT_EQ(s.entries.size(), rate_count(Standard::kBg));
    for (std::size_t r = 0; r < s.entries.size(); ++r) {
      EXPECT_EQ(s.entries[r].rate, static_cast<RateIndex>(r));
      EXPECT_GE(s.entries[r].loss, 0.0f);
      EXPECT_LE(s.entries[r].loss, 1.0f);
    }
  }
}

TEST(ProbeSim, NEntriesCoverSixteenRates) {
  Rng rng(4);
  const auto sets = simulate_probes(small_net(), Standard::kN,
                                    indoor_channel_params(), quick_params(),
                                    rng);
  ASSERT_FALSE(sets.empty());
  EXPECT_EQ(sets.front().entries.size(), 16u);
}

TEST(ProbeSim, SetSnrIsMedianOfEntrySnrs) {
  Rng rng(5);
  const auto sets = simulate_probes(small_net(), Standard::kBg,
                                    indoor_channel_params(), quick_params(),
                                    rng);
  for (const auto& s : sets) {
    std::vector<float> snrs;
    for (const auto& e : s.entries) {
      if (!std::isnan(e.snr_db)) snrs.push_back(e.snr_db);
    }
    ASSERT_FALSE(snrs.empty());
    std::sort(snrs.begin(), snrs.end());
    const std::size_t n = snrs.size();
    const float expected = (n % 2 == 1)
                               ? snrs[n / 2]
                               : 0.5f * (snrs[n / 2 - 1] + snrs[n / 2]);
    EXPECT_FLOAT_EQ(s.snr_db, expected);
  }
}

TEST(ProbeSim, LostRatesHaveNoSnr) {
  Rng rng(6);
  const auto sets = simulate_probes(small_net(), Standard::kBg,
                                    indoor_channel_params(), quick_params(),
                                    rng);
  for (const auto& s : sets) {
    for (const auto& e : s.entries) {
      if (e.loss >= 1.0f) {
        EXPECT_TRUE(std::isnan(e.snr_db));
      } else {
        EXPECT_FALSE(std::isnan(e.snr_db));
      }
    }
  }
}

TEST(ProbeSim, StrongLinksSeeLowLossAtOneMbit) {
  // Adjacent APs 45 m apart are deep inside 1 Mbit/s range; their reported
  // loss at rate 0 should be small on average.
  Rng rng(7);
  ChannelParams chan = indoor_channel_params();
  chan.shadow_sigma_db = 0.0;
  chan.link_offset_sigma_db = 0.0;
  const auto sets = simulate_probes(small_net(4, 45.0), Standard::kBg, chan,
                                    quick_params(), rng);
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : sets) {
    sum += s.entries[0].loss;
    ++n;
  }
  ASSERT_GT(n, 0u);
  EXPECT_LT(sum / static_cast<double>(n), 0.2);
}

TEST(ProbeSim, Deterministic) {
  Rng a(8), b(8);
  const auto sa = simulate_probes(small_net(), Standard::kBg,
                                  indoor_channel_params(), quick_params(), a);
  const auto sb = simulate_probes(small_net(), Standard::kBg,
                                  indoor_channel_params(), quick_params(), b);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].from, sb[i].from);
    EXPECT_EQ(sa[i].to, sb[i].to);
    EXPECT_EQ(sa[i].time_s, sb[i].time_s);
    EXPECT_FLOAT_EQ(sa[i].snr_db, sb[i].snr_db);
    for (std::size_t e = 0; e < sa[i].entries.size(); ++e) {
      EXPECT_FLOAT_EQ(sa[i].entries[e].loss, sb[i].entries[e].loss);
    }
  }
}

TEST(ProbeSim, LossQuantizedToWindowGranularity) {
  // With a 20-probe window, losses are multiples of 1/20 (or computed over
  // fewer probes early in the trace).
  Rng rng(9);
  const auto sets = simulate_probes(small_net(), Standard::kBg,
                                    indoor_channel_params(), quick_params(),
                                    rng);
  for (const auto& s : sets) {
    if (s.time_s < 800) continue;  // window not yet full
    for (const auto& e : s.entries) {
      const double scaled = static_cast<double>(e.loss) * 20.0;
      EXPECT_NEAR(scaled, std::round(scaled), 1e-4);
    }
  }
}

TEST(ProbeSim, SilentNetworkEmitsNothing) {
  // Two APs 5 km apart: no audible links, no probe sets.
  std::vector<Ap> aps = {{0, 0.0, 0.0}, {1, 5000.0, 0.0}};
  NetworkInfo info;
  MeshNetwork net(info, aps);
  Rng rng(10);
  const auto sets = simulate_probes(net, Standard::kBg,
                                    indoor_channel_params(), quick_params(),
                                    rng);
  EXPECT_TRUE(sets.empty());
}

TEST(ProbeSim, ProbeSetEntryLookup) {
  ProbeSet set;
  set.entries.push_back({2, 0.5f, 10.0f});
  set.entries.push_back({4, 0.25f, 12.0f});
  ASSERT_NE(set.entry(2), nullptr);
  EXPECT_FLOAT_EQ(set.entry(2)->loss, 0.5f);
  EXPECT_EQ(set.entry(3), nullptr);
  EXPECT_TRUE(set.entry(2)->received_any());
}

TEST(ProbeSim, LongerTraceYieldsMoreSets) {
  Rng a(11), b(11);
  ProbeSimParams short_p = quick_params();
  ProbeSimParams long_p = quick_params();
  long_p.duration_s = 3600.0;
  const auto sa = simulate_probes(small_net(), Standard::kBg,
                                  indoor_channel_params(), short_p, a);
  const auto sb = simulate_probes(small_net(), Standard::kBg,
                                  indoor_channel_params(), long_p, b);
  EXPECT_GT(sb.size(), sa.size());
}

}  // namespace
}  // namespace wmesh

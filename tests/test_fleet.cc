// Test wall for the sharded WSNAP fleet layout and its out-of-core
// analysis driver (store/fleet.h, store/fleet_analyze.h).
//
// Own binary (wmesh_fleet_tests) so the fleet suite can be invoked as its
// own ctest case and kept apart from the monolithic store wall.
//
// Pillars:
//   * byte-identity -- FleetAnalyzer over any shard partition at any
//     thread count reproduces run_report() over the monolithic dataset
//     exactly, every report section included;
//   * losslessness -- split -> merge round-trips the monolithic WSNAP
//     byte-for-byte, and sharded generation emits the same shard bytes as
//     splitting the monolithic snapshot;
//   * fail-closed corruption handling -- a missing shard, a flipped shard
//     byte, an overlapping id range or malformed manifest JSON each yield
//     a one-line diagnostic and no partial fleet output;
//   * bounded working set -- the analyzer drops each shard's Dataset and
//     evicts its analysis-cache entries before opening the next shard.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.h"
#include "obs/metrics.h"
#include "par/thread_pool.h"
#include "sim/generator.h"
#include "store/fleet.h"
#include "store/fleet_analyze.h"
#include "trace/io.h"

namespace wmesh {
namespace {

// ctest runs tests concurrently across processes; temp files must be
// process-unique or one process truncates a shard another has mmap'd.
std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/wmesh_fleet_" + std::to_string(::getpid()) +
         "_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing file: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << "cannot write " << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// The shared small dataset all fleet tests run on.
const Dataset& test_dataset() {
  static const Dataset ds = generate_dataset(small_config());
  return ds;
}

// A fresh fleet of the test dataset at `shards` shards under a unique
// prefix; returns the manifest path.
std::string make_fleet(const std::string& tag, std::size_t shards) {
  const std::string prefix = temp_path(tag);
  std::string err;
  EXPECT_TRUE(store::write_fleet(test_dataset(), prefix, shards, &err))
      << err;
  return store::manifest_path(prefix);
}

std::string analyze_fleet(const std::string& manifest,
                          const std::string& what,
                          store::FleetAnalyzer::Totals* totals = nullptr) {
  store::FleetReader reader;
  EXPECT_TRUE(reader.open(manifest)) << reader.error();
  store::FleetAnalyzer analyzer(reader);
  std::string out;
  EXPECT_TRUE(analyzer.run(what, &out)) << analyzer.error();
  if (totals != nullptr) *totals = analyzer.totals();
  return out;
}

// -- byte-identity ---------------------------------------------------------

// The full grid the acceptance criterion names: etx (which renders every
// report section) at 1/2/8 threads x 1/3/7 shards (7 is deliberately
// uneven) must match the monolithic report byte-for-byte.
TEST(FleetIdentity, EtxMatchesMonolithicAcrossThreadsAndShardCounts) {
  par::set_default_threads(1);
  const std::string expected = run_report(test_dataset(), "etx");
  for (const std::size_t shards : {1u, 3u, 7u}) {
    const std::string manifest =
        make_fleet("id_s" + std::to_string(shards), shards);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      par::set_default_threads(threads);
      EXPECT_EQ(expected, analyze_fleet(manifest, "etx"))
          << "shards=" << shards << " threads=" << threads;
    }
  }
  par::set_default_threads(1);
}

// Each section alias individually (etx above folds them into one document;
// this proves the per-section render paths too).
TEST(FleetIdentity, EverySectionMatchesMonolithic) {
  par::set_default_threads(2);
  const std::string manifest = make_fleet("id_sections", 3);
  for (const char* what : {"snr", "lookup", "routing", "anypath", "hidden",
                           "mobility", "traffic", "all"}) {
    EXPECT_EQ(run_report(test_dataset(), what), analyze_fleet(manifest, what))
        << "section " << what;
  }
  par::set_default_threads(1);
}

TEST(FleetIdentity, UnknownAnalysisFailsClosed) {
  const std::string manifest = make_fleet("id_unknown", 2);
  store::FleetReader reader;
  ASSERT_TRUE(reader.open(manifest)) << reader.error();
  store::FleetAnalyzer analyzer(reader);
  std::string out = "prefix-";
  EXPECT_FALSE(analyzer.run("bogus", &out));
  EXPECT_NE(analyzer.error().find("unknown analysis"), std::string::npos);
  EXPECT_EQ(out, "prefix-");  // untouched on failure
}

// -- losslessness ----------------------------------------------------------

TEST(FleetRoundTrip, SplitThenMergeReproducesMonolithicBytes) {
  const std::string mono = temp_path("rt_mono.wsnap");
  ASSERT_TRUE(store::save_wsnap(test_dataset(), mono));
  const std::string prefix = temp_path("rt_fleet");
  std::string err;
  ASSERT_TRUE(store::split_wsnap_fleet(mono, prefix, 3, &err)) << err;
  const std::string merged = temp_path("rt_merged.wsnap");
  ASSERT_TRUE(store::merge_fleet_wsnap(store::manifest_path(prefix), merged,
                                       &err))
      << err;
  EXPECT_EQ(slurp(mono), slurp(merged));
}

// write_fleet (the in-memory split) and split_wsnap_fleet (the streaming
// split) must emit identical shard files for the same networks.
TEST(FleetRoundTrip, StreamingSplitMatchesInMemorySplit) {
  const std::string mono = temp_path("ss_mono.wsnap");
  ASSERT_TRUE(store::save_wsnap(test_dataset(), mono));
  const std::string a = temp_path("ss_a");
  const std::string b = temp_path("ss_b");
  std::string err;
  ASSERT_TRUE(store::split_wsnap_fleet(mono, a, 3, &err)) << err;
  ASSERT_TRUE(store::write_fleet(test_dataset(), b, 3, &err)) << err;
  store::FleetManifest ma, mb;
  ASSERT_TRUE(store::load_fleet_manifest(store::manifest_path(a), &ma, &err))
      << err;
  ASSERT_TRUE(store::load_fleet_manifest(store::manifest_path(b), &mb, &err))
      << err;
  ASSERT_EQ(ma.shards.size(), mb.shards.size());
  for (std::size_t s = 0; s < ma.shards.size(); ++s) {
    EXPECT_EQ(slurp(ma.shards[s].resolved), slurp(mb.shards[s].resolved))
        << "shard " << s;
  }
}

// Sliced generation is partition-invariant: any split of [0, n) into
// contiguous slices concatenates to exactly generate_dataset()'s snapshot.
TEST(FleetRoundTrip, GeneratorSlicesConcatenateToMonolithic) {
  const GeneratorConfig config = small_config();
  const FleetGenerator gen(config);
  const std::size_t n = gen.network_count();
  ASSERT_GT(n, 2u);
  Dataset sliced;
  const std::size_t cut1 = 1, cut2 = n - 1;  // deliberately uneven
  const std::vector<std::pair<std::size_t, std::size_t>> slices = {
      {0, cut1}, {cut1, cut2}, {cut2, n}};
  for (const auto& [b, e] : slices) {
    Dataset part = gen.generate(b, e);
    for (auto& nt : part.networks) sliced.networks.push_back(std::move(nt));
  }
  const std::string mono_path = temp_path("gs_mono.wsnap");
  const std::string sliced_path = temp_path("gs_sliced.wsnap");
  ASSERT_TRUE(store::save_wsnap(generate_dataset(config), mono_path));
  ASSERT_TRUE(store::save_wsnap(sliced, sliced_path));
  EXPECT_EQ(slurp(mono_path), slurp(sliced_path));
}

TEST(FleetRoundTrip, UnorderedInputFailsClosedAtWriteTime) {
  Dataset ds;
  ds.networks.resize(2);
  ds.networks[0].info.id = 5;
  ds.networks[1].info.id = 2;  // out of order: disjoint ranges impossible
  std::string err;
  EXPECT_FALSE(store::write_fleet(ds, temp_path("unordered"), 2, &err));
  EXPECT_NE(err.find("not ordered by id"), std::string::npos) << err;
}

// -- fail-closed corruption handling ---------------------------------------

TEST(FleetCorruption, MissingShardNamesItAndFailsClosed) {
  const std::string manifest = make_fleet("c_missing", 3);
  store::FleetManifest m;
  std::string err;
  ASSERT_TRUE(store::load_fleet_manifest(manifest, &m, &err)) << err;
  std::filesystem::remove(m.shards[1].resolved);
  store::FleetReader reader;
  ASSERT_TRUE(reader.open(manifest)) << reader.error();  // manifest-only
  store::FleetAnalyzer analyzer(reader);
  std::string out;
  EXPECT_FALSE(analyzer.run("snr", &out));
  EXPECT_TRUE(out.empty());  // never a partial fleet report
  EXPECT_NE(analyzer.error().find("wsnap:"), std::string::npos)
      << analyzer.error();
  EXPECT_NE(analyzer.error().find(m.shards[1].path), std::string::npos)
      << analyzer.error();
}

TEST(FleetCorruption, FlippedShardByteFailsTheWholeAnalysis) {
  const std::string manifest = make_fleet("c_flip", 3);
  store::FleetManifest m;
  std::string err;
  ASSERT_TRUE(store::load_fleet_manifest(manifest, &m, &err)) << err;
  std::string bytes = slurp(m.shards[0].resolved);
  ASSERT_GT(bytes.size(), 4000u);
  bytes[4000] ^= 0x40;  // payload corruption -> block CRC mismatch
  spit(m.shards[0].resolved, bytes);
  store::FleetReader reader;
  ASSERT_TRUE(reader.open(manifest)) << reader.error();
  store::FleetAnalyzer analyzer(reader);
  std::string out;
  EXPECT_FALSE(analyzer.run("routing", &out));
  EXPECT_TRUE(out.empty());
  EXPECT_NE(analyzer.error().find("wsnap:"), std::string::npos)
      << analyzer.error();
}

TEST(FleetCorruption, OverlappingIdRangeRejectedAtOpen) {
  const std::string manifest = make_fleet("c_overlap", 3);
  std::string text = slurp(manifest);
  // Pull shard 1's first_id back into shard 0's range.
  const std::string needle = "\"first_id\": ";
  std::size_t pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  pos = text.find(needle, pos + 1);  // second shard's entry
  ASSERT_NE(pos, std::string::npos);
  pos += needle.size();
  const std::size_t end = text.find_first_of(",}", pos);
  ASSERT_NE(end, std::string::npos);
  text.replace(pos, end - pos, "0");
  spit(manifest, text);
  store::FleetReader reader;
  EXPECT_FALSE(reader.open(manifest));
  EXPECT_NE(reader.error().find("duplicate network range"), std::string::npos)
      << reader.error();
  EXPECT_NE(reader.error().find("fleet:"), std::string::npos)
      << reader.error();
}

TEST(FleetCorruption, MalformedManifestJsonRejectedAtOpen) {
  const std::string manifest = temp_path("c_json.wmanifest");
  spit(manifest, "{\"schema\": \"wmesh.fleet/1\", \"shards\": [oops");
  store::FleetReader reader;
  EXPECT_FALSE(reader.open(manifest));
  EXPECT_NE(reader.error().find("fleet:"), std::string::npos)
      << reader.error();
}

TEST(FleetCorruption, WrongSchemaMarkerRejectedAtOpen) {
  const std::string manifest = temp_path("c_schema.wmanifest");
  spit(manifest, "{\"schema\": \"wmesh.fleet/999\", \"shards\": []}");
  store::FleetReader reader;
  EXPECT_FALSE(reader.open(manifest));
  EXPECT_NE(reader.error().find("fleet:"), std::string::npos)
      << reader.error();
}

TEST(FleetCorruption, RowCountSkewAgainstManifestFailsClosed) {
  // Swap two shard files on disk: each still passes its own CRCs but
  // disagrees with its manifest entry, which the cross-check must catch.
  const std::string manifest = make_fleet("c_swap", 3);
  store::FleetManifest m;
  std::string err;
  ASSERT_TRUE(store::load_fleet_manifest(manifest, &m, &err)) << err;
  const std::string a = slurp(m.shards[0].resolved);
  const std::string b = slurp(m.shards[1].resolved);
  ASSERT_NE(a, b);
  spit(m.shards[0].resolved, b);
  spit(m.shards[1].resolved, a);
  store::FleetReader reader;
  ASSERT_TRUE(reader.open(manifest)) << reader.error();
  Dataset out;
  EXPECT_FALSE(reader.load_shard(0, &out));
  EXPECT_TRUE(out.networks.empty());
  EXPECT_NE(reader.error().find("disagree with manifest"), std::string::npos)
      << reader.error();
}

// -- bounded working set ---------------------------------------------------

// The shard-drop path: the analyzer must evict each shard's analysis-cache
// entries (AnalysisCache::invalidate's Evicted return) before dropping the
// shard's Dataset, and report the totals.
TEST(FleetWorkingSet, ShardDropEvictsCacheEntriesAndReportsTotals) {
  const std::string manifest = make_fleet("ws_evict", 3);
  store::FleetAnalyzer::Totals totals;
  const std::string out = analyze_fleet(manifest, "routing", &totals);
  EXPECT_FALSE(out.empty());
  EXPECT_EQ(totals.shards_opened, 3u);
  EXPECT_EQ(totals.shards_skipped, 0u);
  // The routing analysis computes per-trace cached artifacts (success
  // matrices, ETX graphs); every one of them must have been evicted on the
  // shard boundary.
  EXPECT_GT(totals.cache_entries_evicted, 0u);
  EXPECT_GT(totals.cache_bytes_evicted, 0u);
#ifndef WMESH_OBS_DISABLED
  EXPECT_GT(totals.peak_rss_bytes, 0u);
#endif
}

// A lookup run makes two streaming passes (global tables, then per-shard
// evaluation) -- every shard carries probes here, so both passes open all
// shards and the output still matches the monolithic report (checked in
// FleetIdentity); this pins the opened-count accounting.
TEST(FleetWorkingSet, LookupRunsTwoPassesOverEveryShard) {
  const std::string manifest = make_fleet("ws_lookup", 3);
  store::FleetAnalyzer::Totals totals;
  analyze_fleet(manifest, "lookup", &totals);
  EXPECT_EQ(totals.shards_opened, 6u);  // 3 shards x 2 passes
  EXPECT_EQ(totals.shards_skipped, 0u);
}

// Manifest-proven skips: client-sample-driven sections skip shards with
// zero client samples without opening them.
TEST(FleetWorkingSet, ClientFreeShardsSkippedForMobilityAndTraffic) {
  GeneratorConfig config = small_config();
  config.generate_clients = false;
  const Dataset ds = generate_dataset(config);
  const std::string prefix = temp_path("ws_skip");
  std::string err;
  ASSERT_TRUE(store::write_fleet(ds, prefix, 3, &err)) << err;
  store::FleetReader reader;
  ASSERT_TRUE(reader.open(store::manifest_path(prefix))) << reader.error();
  store::FleetAnalyzer analyzer(reader);
  std::string out;
  ASSERT_TRUE(analyzer.run("mobility", &out)) << analyzer.error();
  EXPECT_EQ(analyzer.totals().shards_opened, 0u);
  EXPECT_EQ(analyzer.totals().shards_skipped, 3u);
  // The skipped-shard output still matches the monolithic report (all
  // mobility partials are empty either way).
  EXPECT_EQ(out, run_report(ds, "mobility"));
}

// The store.shards_opened counter moves with shard loads.
TEST(FleetWorkingSet, ShardsOpenedCounterTracksLoads) {
  const std::string manifest = make_fleet("ws_ctr", 3);
  auto& ctr = obs::Registry::instance().counter("store.shards_opened");
  const std::uint64_t before = ctr.value();
  analyze_fleet(manifest, "snr");
#ifndef WMESH_OBS_DISABLED
  EXPECT_EQ(ctr.value() - before, 3u);
#else
  (void)before;
#endif
}

}  // namespace
}  // namespace wmesh

#include "obs/log.h"
#include "obs/span.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace wmesh::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const char* leaf) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + leaf;
}

// Restores the previous log configuration when a test finishes so suites do
// not leak state into each other.
class LogEnvGuard {
 public:
  LogEnvGuard() : level_(log_level()) {}
  ~LogEnvGuard() {
    ::unsetenv("WMESH_LOG_FILE");
    ::unsetenv("WMESH_LOG_LEVEL");
    reinit_logging_from_env();
    set_log_level(level_);
  }

 private:
  LogLevel level_;
};

TEST(ObsLogLevel, ParseStrict) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_FALSE(parse_log_level(""));
  EXPECT_FALSE(parse_log_level("INFO"));
  EXPECT_FALSE(parse_log_level("warning"));
  EXPECT_FALSE(parse_log_level("3"));
}

TEST(ObsLogLevel, EnabledRespectsThreshold) {
  LogEnvGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kTrace));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));

  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));

  set_log_level(LogLevel::kTrace);
  EXPECT_TRUE(log_enabled(LogLevel::kTrace));
}

TEST(ObsLog, FileSinkAndLevelFiltering) {
  LogEnvGuard guard;
  const std::string path = temp_path("wmesh_test_log.txt");
  std::remove(path.c_str());

  ::setenv("WMESH_LOG_FILE", path.c_str(), 1);
  ::setenv("WMESH_LOG_LEVEL", "info", 1);
  reinit_logging_from_env();

  WMESH_LOG_DEBUG("test", kv("dropped", "yes"));  // below threshold
  WMESH_LOG_INFO("test", kv("answer", 42), kv("ratio", 0.5),
                 kv("label", "has spaces"), kv("flag", true));
  WMESH_LOG_ERROR("test", kv("code", -1));

  // Point the sink back at stderr so the file is closed before reading.
  ::unsetenv("WMESH_LOG_FILE");
  reinit_logging_from_env();

  const std::string contents = read_file(path);
  EXPECT_EQ(contents.find("dropped"), std::string::npos);
  EXPECT_NE(contents.find("level=info comp=test answer=42"),
            std::string::npos);
  EXPECT_NE(contents.find("flag=true"), std::string::npos);
  // Values containing spaces are quoted.
  EXPECT_NE(contents.find("label=\"has spaces\""), std::string::npos);
  EXPECT_NE(contents.find("level=error comp=test code=-1"),
            std::string::npos);
  // Every line starts with a timestamp field.
  std::istringstream lines(contents);
  std::string line;
  int n_lines = 0;
  while (std::getline(lines, line)) {
    ++n_lines;
    EXPECT_EQ(line.rfind("ts_ms=", 0), 0u) << line;
  }
  EXPECT_EQ(n_lines, 2);
  std::remove(path.c_str());
}

TEST(ObsLog, KvFormatting) {
  EXPECT_EQ(kv("k", "v").value, "v");
  EXPECT_EQ(kv("k", 7).value, "7");
  EXPECT_EQ(kv("k", static_cast<std::uint64_t>(1) << 40).value,
            "1099511627776");
  EXPECT_EQ(kv("k", true).value, "true");
  EXPECT_EQ(kv("k", false).value, "false");
  // Doubles use a compact fixed format.
  EXPECT_EQ(kv("k", 0.5).value.rfind("0.5", 0), 0u);
}

#if !defined(WMESH_OBS_DISABLED)
TEST(ObsSpan, TraceJsonWellFormed) {
  const std::string path = temp_path("wmesh_test_trace.json");
  std::remove(path.c_str());
  ::setenv("WMESH_TRACE_OUT", path.c_str(), 1);
  reinit_tracing_from_env();
  ASSERT_TRUE(trace_enabled());

  {
    WMESH_SPAN("test.outer");
    WMESH_SPAN("test.inner");
  }
  { WMESH_SPAN("test.outer"); }

  const std::string json = render_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);

  flush_trace();
  const std::string file_json = read_file(path);
  EXPECT_FALSE(file_json.empty());

  // Structural validation: balanced braces/brackets outside strings, no
  // trailing comma before a closer.
  int depth = 0;
  bool in_string = false;
  char prev_structural = '\0';
  for (char ch : file_json) {
    if (in_string) {
      if (ch == '"') in_string = false;
      continue;
    }
    switch (ch) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        EXPECT_NE(prev_structural, ',') << "trailing comma before closer";
        --depth;
        break;
      default:
        break;
    }
    ASSERT_GE(depth, 0);
    if (!std::isspace(static_cast<unsigned char>(ch))) prev_structural = ch;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);

  // flush_trace is idempotent: a second call must not rewrite the file.
  std::remove(path.c_str());
  flush_trace();
  EXPECT_TRUE(read_file(path).empty());

  ::unsetenv("WMESH_TRACE_OUT");
  reinit_tracing_from_env();
}

TEST(ObsSpan, DisabledTracingBuffersNothing) {
  ::unsetenv("WMESH_TRACE_OUT");
  reinit_tracing_from_env();
  EXPECT_FALSE(trace_enabled());
  { WMESH_SPAN("test.untraced"); }
  const std::string json = render_trace_json();
  EXPECT_EQ(json.find("test.untraced"), std::string::npos);
}
#endif  // !WMESH_OBS_DISABLED

}  // namespace
}  // namespace wmesh::obs

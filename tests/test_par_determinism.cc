// Test wall for wmesh::par: the thread pool's execution contract (coverage,
// exceptions, nesting, counter batching) and the repo-wide determinism
// guarantee -- every parallelized stage produces byte-identical output for
// any thread count.
//
// This file is its own test binary (wmesh_par_tests) so the san_smoke ctest
// case can rebuild just it under ThreadSanitizer and race-check the pool
// without paying for the full suite.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/analysis_cache.h"
#include "core/report.h"
#include "obs/export_server.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/tsdb.h"
#include "par/thread_pool.h"
#include "serve/service.h"
#include "sim/generator.h"
#include "trace/io.h"

namespace wmesh {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool execution contract
// ---------------------------------------------------------------------------

TEST(ThreadPool, EmptyRangeRunsNothingAndReturnsInit) {
  par::ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  const int out = pool.parallel_map_reduce(
      0, 17, [](std::size_t i) { return static_cast<int>(i); },
      [](int& acc, int&& v) { acc += v; });
  EXPECT_EQ(out, 17);
}

TEST(ThreadPool, SingleItemRunsExactlyOnce) {
  par::ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::size_t seen = 999;
  pool.parallel_for(1, [&](std::size_t i) {
    ++calls;
    seen = i;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen, 0u);
}

TEST(ThreadPool, MoreThreadsThanItemsCoversEveryIndexOnce) {
  par::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPool, GrainedParallelForCoversEveryIndexOnce) {
  par::ThreadPool pool(4);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{3},
                                  std::size_t{7}, std::size_t{100}}) {
    std::vector<std::atomic<int>> hits(23);
    pool.parallel_for(23, [&](std::size_t i) { ++hits[i]; }, grain);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i], 1) << "grain " << grain << " index " << i;
    }
  }
}

TEST(ThreadPool, LowestShardExceptionWinsAndEveryShardStillRuns) {
  par::ThreadPool pool(4);
  std::atomic<int> ran{0};
  const std::function<void(std::size_t)> shard = [&](std::size_t s) {
    ++ran;
    if (s == 2 || s == 6) {
      throw std::runtime_error("shard-" + std::to_string(s));
    }
  };
  try {
    pool.run_shards(8, shard);
    FAIL() << "expected run_shards to rethrow";
  } catch (const std::runtime_error& e) {
    // Serial in-order semantics: shard 2 throws first no matter which
    // thread ran shard 6 or in what order the shards finished.
    EXPECT_STREQ(e.what(), "shard-2");
  }
  EXPECT_EQ(ran, 8);
}

TEST(ThreadPool, ExceptionPropagatesFromSerialPathToo) {
  par::ThreadPool pool(1);
  EXPECT_THROW(pool.run_shards(3,
                               [](std::size_t s) {
                                 if (s == 1) throw std::logic_error("boom");
                               }),
               std::logic_error);
}

TEST(ThreadPool, NestedRegionsRunInlineWithoutDeadlock) {
  par::ThreadPool pool(4);
  std::vector<int> out(100, -1);
  pool.parallel_for(10, [&](std::size_t i) {
    pool.parallel_for(10,
                      [&](std::size_t j) {
                        out[i * 10 + j] = static_cast<int>(i * 10 + j);
                      });
  });
  for (int k = 0; k < 100; ++k) EXPECT_EQ(out[k], k);
}

std::string concat_indices(par::ThreadPool& pool, std::size_t n,
                           std::size_t grain) {
  return pool.parallel_map_reduce(
      n, std::string(),
      [](std::size_t i) { return std::to_string(i) + ","; },
      [](std::string& acc, std::string&& v) { acc += v; }, grain);
}

TEST(ThreadPool, NonCommutativeReduceIsIndexOrderedForAnyThreadCountAndGrain) {
  // String concatenation is order-sensitive: any scheduling leak would
  // scramble it.  The expected value is the serial index order.
  std::string want;
  for (std::size_t i = 0; i < 23; ++i) want += std::to_string(i) + ",";

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{5}, std::size_t{8}}) {
    par::ThreadPool pool(threads);
    for (const std::size_t grain : {std::size_t{1}, std::size_t{3},
                                    std::size_t{7}, std::size_t{64}}) {
      for (int rep = 0; rep < 10; ++rep) {
        EXPECT_EQ(concat_indices(pool, 23, grain), want)
            << "threads " << threads << " grain " << grain << " rep " << rep;
      }
    }
  }
}

TEST(ThreadPool, MapReduceSumMatchesSerial) {
  par::ThreadPool pool(8);
  const std::uint64_t got = pool.parallel_map_reduce(
      1000, std::uint64_t{0},
      [](std::size_t i) { return static_cast<std::uint64_t>(i * i); },
      [](std::uint64_t& acc, std::uint64_t&& v) { acc += v; },
      /*grain=*/13);
  std::uint64_t want = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) want += i * i;
  EXPECT_EQ(got, want);
}

TEST(ThreadPool, ManySmallRegionsBackToBack) {
  // Exercises job publication/retirement churn: a stale worker waking into
  // the next region must never execute the previous region's function.
  par::ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(5, [&](std::size_t i) {
      sum += static_cast<int>(i) + round;
    });
    EXPECT_EQ(sum, 10 + 5 * round) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// obs::CounterBatch (the pool installs one per shard)
// ---------------------------------------------------------------------------

TEST(CounterBatch, BuffersUntilFlushAndFlushesOnScopeExit) {
  auto& c = obs::Registry::instance().counter("test.par.batch");
  c.reset();
  {
    obs::CounterBatch batch;
    c.add(5);
    c.add(2);
    EXPECT_EQ(c.value(), 0u);  // still buffered
    batch.flush();
    EXPECT_EQ(c.value(), 7u);
    c.add(1);  // buffers again after an explicit flush
    EXPECT_EQ(c.value(), 7u);
  }
  EXPECT_EQ(c.value(), 8u);  // destructor flushed the remainder
}

TEST(CounterBatch, NestedBatchesRestoreTheOuterOne) {
  auto& c = obs::Registry::instance().counter("test.par.batch_nested");
  c.reset();
  {
    obs::CounterBatch outer;
    c.add(1);
    {
      obs::CounterBatch inner;
      c.add(10);
      EXPECT_EQ(c.value(), 0u);
    }
    // Inner flushed its own 10 straight to the counter; outer still holds 1.
    EXPECT_EQ(c.value(), 10u);
    c.add(2);  // goes to outer again
    EXPECT_EQ(c.value(), 10u);
  }
  EXPECT_EQ(c.value(), 13u);
}

TEST(ThreadPool, CountersInsideShardsAccumulateToTheExactTotal) {
  auto& c = obs::Registry::instance().counter("test.par.pool_total");
  c.reset();
  par::ThreadPool pool(4);
  pool.parallel_for(100, [&](std::size_t i) {
    c.add(static_cast<std::uint64_t>(i));
  });
  EXPECT_EQ(c.value(), 4950u);
}

// ---------------------------------------------------------------------------
// End-to-end determinism: generation and every parallelized analysis are
// byte-identical at threads {1, 2, 8}
// ---------------------------------------------------------------------------

class ParDeterminism : public ::testing::Test {
 protected:
  static GeneratorConfig test_config() {
    GeneratorConfig c = small_config();
    c.probes.duration_s = 1800.0;  // 6 report rounds: enough for every table
    c.seed = 20100811;
    return c;
  }

  void TearDown() override { par::set_default_threads(0); }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  // The snapshot's full serialized form: both CSV files, concatenated.
  static std::string dataset_bytes(const Dataset& ds,
                                   const std::string& prefix) {
    if (!save_dataset(ds, prefix)) return std::string();
    return slurp(prefix + ".probes.csv") + "\n--\n" +
           slurp(prefix + ".clients.csv");
  }
};

TEST_F(ParDeterminism, GenerateDatasetIsByteIdenticalAcrossThreadCounts) {
  const std::string tmp = ::testing::TempDir();
  constexpr std::array<std::size_t, 3> kThreads{1, 2, 8};
  std::array<std::string, kThreads.size()> bytes;
  for (std::size_t k = 0; k < kThreads.size(); ++k) {
    par::set_default_threads(kThreads[k]);
    const Dataset ds = generate_dataset(test_config());
    bytes[k] = dataset_bytes(
        ds, tmp + "/par_det_" + std::to_string(kThreads[k]));
    ASSERT_FALSE(bytes[k].empty());
  }
  EXPECT_EQ(bytes[0], bytes[1]);
  EXPECT_EQ(bytes[0], bytes[2]);
}

TEST_F(ParDeterminism, EveryReportIsByteIdenticalAcrossThreadCounts) {
  par::set_default_threads(1);
  const Dataset ds = generate_dataset(test_config());

  // Serial reference for the full pipeline and each analysis family.
  const std::string etx_want = report_etx(ds);
  ASSERT_FALSE(etx_want.empty());
  const std::string paths_want = report_path_lengths(ds);
  const std::array<const char*, 7> kNames{"snr",     "lookup",   "routing",
                                          "anypath", "hidden",   "mobility",
                                          "traffic"};
  std::map<std::string, std::string> want;
  for (const char* name : kNames) {
    want[name] = run_report(ds, name);
    ASSERT_FALSE(want[name].empty()) << name;
  }

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    par::set_default_threads(threads);
    EXPECT_EQ(report_etx(ds), etx_want) << "threads " << threads;
    EXPECT_EQ(report_path_lengths(ds), paths_want) << "threads " << threads;
    for (const char* name : kNames) {
      EXPECT_EQ(run_report(ds, name), want[name])
          << "analysis " << name << " threads " << threads;
    }
  }
}

TEST_F(ParDeterminism, ParAnypathIsByteIdenticalAcrossThreadCounts) {
  // The anypath report nests two wmesh::par levels -- networks outside,
  // destinations inside -- and folds floating-point sums at both; this (and
  // san_smoke's TSan rebuild of it) pins the 1/2/8-thread byte-identity of
  // the new kernel's sharded loops specifically.
  par::set_default_threads(1);
  const Dataset ds = generate_dataset(test_config());
  AnalysisCache serial_cache;
  const std::string want = report_anypath(ds, serial_cache);
  ASSERT_FALSE(want.empty());
  ASSERT_NE(want.find("anypath ms"), std::string::npos);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    par::set_default_threads(threads);
    // Fresh cache per thread count: hit/miss totals must not depend on the
    // pool size either.
    AnalysisCache cache;
    EXPECT_EQ(report_anypath(ds, cache), want) << "threads " << threads;
    EXPECT_EQ(cache.stats().hits, serial_cache.stats().hits)
        << "threads " << threads;
    EXPECT_EQ(cache.stats().misses, serial_cache.stats().misses)
        << "threads " << threads;
  }
}

TEST(ParDefaults, SetDefaultThreadsControlsTheDefaultPool) {
  par::set_default_threads(3);
  EXPECT_EQ(par::default_thread_count(), 3u);
  EXPECT_EQ(par::default_pool().thread_count(), 3u);
  par::set_default_threads(0);  // back to WMESH_THREADS / hardware
  EXPECT_GE(par::default_thread_count(), 1u);
}

// ---------------------------------------------------------------------------
// Flight recorder under pool concurrency.  This lives in the par test wall
// on purpose: san_smoke rebuilds this binary under ThreadSanitizer, so many
// workers hammering the per-thread rings while the main thread drains them
// proves the recorder's relaxed-atomic slots are race-free -- the same
// property the fatal-signal dump path depends on.
// ---------------------------------------------------------------------------

TEST(ParFlightRecorder, PoolWorkersRecordConcurrentlyAndDrainIsClean) {
  const std::string path =
      std::string(::testing::TempDir()) + "wmesh_par_flight.txt";
  ::setenv("WMESH_FLIGHT_OUT", path.c_str(), 1);
  obs::flight::reinit_from_env();
  ASSERT_TRUE(obs::flight::enabled());

  par::set_default_threads(8);
  GeneratorConfig config = small_config();
  const Dataset ds = generate_dataset(config);
  // Instrumented analysis: every shard span, counter flush and log line
  // lands in a worker's ring while this runs.
  ASSERT_FALSE(report_etx(ds).empty());
  // Drain concurrently with more recording to exercise reader/writer overlap.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::uint64_t dropped = 0;
      (void)obs::flight::drain(&dropped);
    }
  });
  ASSERT_FALSE(report_etx(ds).empty());
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  par::set_default_threads(0);

  // The on-demand dump works and carries events from multiple threads.
  ASSERT_TRUE(obs::Registry::instance().dump_flight());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  EXPECT_EQ(text.rfind("# wmesh.flight/1", 0), 0u);
  EXPECT_NE(text.find("# EOF events="), std::string::npos);
#if !defined(WMESH_OBS_DISABLED)
  EXPECT_NE(text.find("kind=span_begin name=par.shard"), std::string::npos);
#endif

  ::unsetenv("WMESH_FLIGHT_OUT");
  obs::flight::reinit_from_env();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Listener lifecycle under TSan.  These live in the par test wall so the
// san_smoke case race-checks them: the export server's shutdown used to
// exchange a flag and return while another caller was still joining the
// serving thread, and a spurious poll wakeup could park it in a blocking
// accept forever.  One hundred start/stop cycles with concurrent stop()
// callers pin the fixed join discipline.
// ---------------------------------------------------------------------------

TEST(ParExportServer, HundredStartStopCyclesJoinDeterministically) {
  for (int round = 0; round < 100; ++round) {
    std::string error;
    auto server = obs::ExportServer::start("127.0.0.1:0", &error);
    ASSERT_NE(server, nullptr) << "round " << round << ": " << error;
    ASSERT_FALSE(server->bound_address().empty());
    if (round % 10 == 0) {
      // Occasionally scrape mid-lifecycle so stop() also races a live
      // client connection, not just an idle accept loop.
      std::string body;
      EXPECT_TRUE(
          obs::scrape_openmetrics_once(server->bound_address(), &body, &error))
          << "round " << round << ": " << error;
    }
    // Two concurrent stops plus the destructor: all three must serialize on
    // the join instead of racing the teardown.
    obs::ExportServer* raw = server.get();
    std::thread racer([raw] { raw->stop(); });
    server->stop();
    racer.join();
    server.reset();
  }
}

TEST(ParTsdb, ConcurrentSampleAndQueryAreRaceFree) {
  // The serve daemon samples the TSDB on the ingest thread while the query
  // thread renders it; san_smoke rebuilds this binary under TSan, so two
  // readers hammering every query helper against a live writer prove the
  // ring's single-mutex discipline (and that render never sees a
  // half-pushed point).
  obs::Tsdb tsdb;
  constexpr std::uint64_t kTicks = 2000;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (std::uint64_t t = 1; t <= kTicks; ++t) {
      obs::Snapshot s;
      s.counters.push_back({"par.tsdb.ctr", t * 3});
      s.gauges.push_back({"par.tsdb.gauge", static_cast<double>(t % 17)});
      obs::Snapshot::HistogramRow h;
      h.name = "par.tsdb.hist";
      h.bounds = {1.0, 10.0, 100.0};
      h.cumulative = {t, t + t / 2, 2 * t};
      h.count = 2 * t;
      h.sum = static_cast<double>(t) * 4.0;
      h.p50 = h.p90 = h.p99 = 0.0;
      s.histograms.push_back(std::move(h));
      tsdb.sample(s, t);
    }
    done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&tsdb, &done] {
      while (!done.load(std::memory_order_acquire)) {
        (void)tsdb.value("par.tsdb.ctr");
        (void)tsdb.rate("par.tsdb.ctr", 8);
        (void)tsdb.increase("par.tsdb.gauge", 0);
        (void)tsdb.quantile_over_time("par.tsdb.hist", 0.9, 16);
        (void)tsdb.points_in("par.tsdb.hist", 4);
        // A reader may race ahead of the writer's first sample (the first
        // sample is baseline-only and records no point), so mid-flight the
        // render is either the table or the empty-series notice -- never
        // garbage.
        const std::string rendered = tsdb.render("par.tsdb.ctr", 8);
        EXPECT_TRUE(rendered.find("retained_points") != std::string::npos ||
                    rendered.find("(no such series)") != std::string::npos)
            << rendered;
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_NE(tsdb.render("par.tsdb.ctr", 8).find("retained_points"),
            std::string::npos);

  // The raced run still lands on the exact serial end state.
  EXPECT_DOUBLE_EQ(tsdb.value("par.tsdb.ctr"), kTicks * 3.0);
  EXPECT_EQ(tsdb.last_tick(), kTicks);
  EXPECT_EQ(tsdb.stats().samples, kTicks);
  const obs::TsdbOptions defaults;
  EXPECT_EQ(tsdb.stats().points, 3 * defaults.points_per_series);
}

TEST(ParServe, ConcurrentQueriesAndIngestConvergeToTheSerialWindow) {
  serve::ServeConfig sc;
  sc.gen = small_config();
  sc.gen.probes.duration_s = 1500.0;
  sc.gen.seed = 20100811;
  sc.window_rounds = 4;
  constexpr std::uint64_t kRounds = 37;

  // Race ingest against queries: one thread drives ticks, two hammer
  // queries.  TSan checks the service's internal locking; afterwards the
  // served sections must be byte-identical to an unraced serial run, so the
  // race also cannot have perturbed the window or the cache contents.
  par::set_default_threads(4);
  serve::MeshService service(sc);
  std::atomic<bool> done{false};
  std::thread ingest([&] {
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      if (!service.tick()) {
        ADD_FAILURE() << "stream exhausted early at round " << r;
        break;
      }
    }
    done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&service, &done, t] {
      const char* const cmds[] = {"exor", "paths", "hidden", "stats"};
      std::size_t i = static_cast<std::size_t>(t);
      while (!done.load(std::memory_order_acquire)) {
        const serve::QueryResult r = service.query(cmds[i++ % 4]);
        EXPECT_TRUE(r.ok) << r.body;
      }
    });
  }
  ingest.join();
  for (auto& r : readers) r.join();

  par::set_default_threads(1);
  serve::MeshService serial(sc);
  for (std::uint64_t r = 0; r < kRounds; ++r) ASSERT_TRUE(serial.tick());
  for (const char* cmd : {"snr", "exor", "paths", "hidden"}) {
    const serve::QueryResult raced = service.query(cmd);
    const serve::QueryResult clean = serial.query(cmd);
    ASSERT_TRUE(raced.ok) << cmd;
    ASSERT_TRUE(clean.ok) << cmd;
    EXPECT_EQ(raced.body, clean.body) << cmd;
  }
  par::set_default_threads(0);
}

}  // namespace
}  // namespace wmesh

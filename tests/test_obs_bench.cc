#include "obs/bench.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "util/json.h"

namespace wmesh::obs {
namespace {

std::vector<BenchStage> two_stages() {
  return {
      {"fast", [] { std::this_thread::sleep_for(std::chrono::microseconds(50)); }},
      {"slow", [] { std::this_thread::sleep_for(std::chrono::microseconds(200)); }},
  };
}

TEST(BenchQuantile, InterpolatesOverSortedRuns) {
  const std::vector<double> runs = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(bench_quantile(runs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(bench_quantile(runs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(bench_quantile(runs, 0.5), 25.0);  // midway 20..30
  EXPECT_DOUBLE_EQ(bench_quantile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(bench_quantile({}, 0.5), 0.0);
}

TEST(BenchSuite, TimesEveryStageRepeatTimes) {
  const BenchResult r = run_bench_suite("unit", two_stages(), 3, 2);
  EXPECT_EQ(r.suite, "unit");
  EXPECT_EQ(r.repeat, 3);
  EXPECT_EQ(r.threads, 2u);
  ASSERT_EQ(r.stages.size(), 2u);
  for (const auto& st : r.stages) {
    ASSERT_EQ(st.runs_us.size(), 3u);
    for (double run : st.runs_us) EXPECT_GT(run, 0.0);
    EXPECT_GE(st.p90_us, st.median_us);
    EXPECT_GE(st.median_us, st.p10_us);
  }
  // Registration order is preserved, and the slower stage measures slower.
  EXPECT_EQ(r.stages[0].name, "fast");
  EXPECT_EQ(r.stages[1].name, "slow");
  EXPECT_LT(r.stages[0].median_us, r.stages[1].median_us);
  EXPECT_NE(r.find("slow"), nullptr);
  EXPECT_EQ(r.find("absent"), nullptr);
}

TEST(BenchSuite, RethrowsStageFailures) {
  const std::vector<BenchStage> stages = {
      {"boom", [] { throw std::runtime_error("stage exploded"); }}};
  EXPECT_THROW(run_bench_suite("unit", stages, 2, 1), std::runtime_error);
}

TEST(BenchJson, RoundTripsThroughTheStrictParser) {
  const BenchResult r = run_bench_suite("unit", two_stages(), 2, 1);
  const std::string text = bench_to_json(r);

  // Valid JSON with the schema marker first.
  std::string err;
  const auto doc = json::parse(text, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  ASSERT_FALSE(doc->object.empty());
  EXPECT_EQ(doc->object[0].first, "schema");
  EXPECT_EQ(doc->find("schema")->string, kBenchSchema);
  ASSERT_NE(doc->find("build"), nullptr);
  EXPECT_TRUE(doc->find("build")->is_object());

  BenchResult back;
  ASSERT_TRUE(parse_bench_json(text, &back, &err)) << err;
  EXPECT_EQ(back.suite, r.suite);
  EXPECT_EQ(back.repeat, r.repeat);
  EXPECT_EQ(back.threads, r.threads);
  ASSERT_EQ(back.stages.size(), r.stages.size());
  for (std::size_t i = 0; i < r.stages.size(); ++i) {
    EXPECT_EQ(back.stages[i].name, r.stages[i].name);
    EXPECT_EQ(back.stages[i].runs_us.size(), r.stages[i].runs_us.size());
    EXPECT_NEAR(back.stages[i].median_us, r.stages[i].median_us, 0.01);
  }
}

TEST(BenchJson, RejectsWrongOrMissingSchema) {
  BenchResult out;
  std::string err;
  EXPECT_FALSE(parse_bench_json("not json", &out, &err));
  EXPECT_FALSE(parse_bench_json("{}", &out, &err));
  EXPECT_FALSE(parse_bench_json(
      R"({"schema": "wmesh.bench/999", "suite": "q", "repeat": 1,
          "threads": 1, "build": {}, "stages": []})",
      &out, &err));
  EXPECT_FALSE(parse_bench_json(
      R"({"schema": "wmesh.bench/1", "suite": "q", "repeat": 1,
          "threads": 1, "build": {},
          "stages": [{"name": "s", "runs_us": []}]})",
      &out, &err));  // empty runs
  EXPECT_FALSE(err.empty());
}

TEST(BenchRegression, FlagsSlowdownsBeyondTolerance) {
  BenchResult base, cur;
  base.stages = {{"a", {100.0}, 100.0, 100.0, 100.0},
                 {"b", {100.0}, 100.0, 100.0, 100.0}};
  cur.stages = {{"a", {110.0}, 110.0, 110.0, 110.0},
                {"b", {200.0}, 200.0, 200.0, 200.0}};

  const RegressionCheck c = check_bench_regression(base, cur, 25.0);
  ASSERT_EQ(c.rows.size(), 2u);
  EXPECT_FALSE(c.rows[0].regressed);  // +10% within tolerance
  EXPECT_TRUE(c.rows[1].regressed);   // +100%
  EXPECT_NEAR(c.rows[1].delta_pct, 100.0, 1e-9);
  EXPECT_FALSE(c.ok);
  const std::string text = c.render(25.0);
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);

  // Generous tolerance: everything passes.
  EXPECT_TRUE(check_bench_regression(base, cur, 150.0).ok);
  // Speedups never fail.
  EXPECT_TRUE(check_bench_regression(cur, base, 5.0).ok);
}

TEST(BenchRegression, MissingStagesFailExtraStagesDoNot) {
  BenchResult base, cur;
  base.stages = {{"kept", {10.0}, 10.0, 10.0, 10.0},
                 {"gone", {10.0}, 10.0, 10.0, 10.0}};
  cur.stages = {{"kept", {10.0}, 10.0, 10.0, 10.0},
                {"new", {10.0}, 10.0, 10.0, 10.0}};
  const RegressionCheck c = check_bench_regression(base, cur, 25.0);
  ASSERT_EQ(c.missing.size(), 1u);
  EXPECT_EQ(c.missing[0], "gone");
  EXPECT_FALSE(c.ok);
  EXPECT_NE(c.render(25.0).find("gone"), std::string::npos);
}

// The acceptance demo: an artificially slowed run must trip the gate.  The
// stage needs a solidly non-zero baseline (timings are integer
// microseconds, and a zero baseline has no percentage to compare).
TEST(BenchRegression, ArtificialSleepIsDetectedAgainstACleanBaseline) {
  const std::vector<BenchStage> stages = {{"pace", [] {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }}};

  ::unsetenv("WMESH_BENCH_SLEEP_US");
  const BenchResult baseline = run_bench_suite("self", stages, 3, 1);

  // 5 ms of injected sleep dwarfs the microsecond-scale spin stage.
  ::setenv("WMESH_BENCH_SLEEP_US", "5000", 1);
  const BenchResult slowed = run_bench_suite("self", stages, 3, 1);
  ::unsetenv("WMESH_BENCH_SLEEP_US");

  EXPECT_GE(slowed.stages[0].median_us, 5000.0);
  const RegressionCheck c = check_bench_regression(baseline, slowed, 25.0);
  EXPECT_FALSE(c.ok);
  ASSERT_EQ(c.rows.size(), 1u);
  EXPECT_TRUE(c.rows[0].regressed);

  // And the un-slowed run passes against its own baseline.
  const BenchResult again = run_bench_suite("self", stages, 3, 1);
  EXPECT_TRUE(check_bench_regression(baseline, again, 10000.0).ok);
}

}  // namespace
}  // namespace wmesh::obs

# End-to-end fleet smoke at the ISSUE's target scale: generate a
# 10,000-network sharded fleet, inspect it, analyze it out-of-core with a
# run report, merge it back to a monolithic WSNAP and analyze that too --
# then assert (a) the two reports are byte-identical and (b) the fleet
# run's sampled peak RSS is a small fraction of the monolithic run's
# (bounded by O(largest shard), not O(fleet)).  Run via
#   cmake -DWMESH_GEN=... -DWMESH_ANALYZE=... -DWMESH_CONVERT=...
#         -DWMESH_INSPECT=... -DWORK_DIR=... -P fleet_smoke.cmake
foreach(var WMESH_GEN WMESH_ANALYZE WMESH_CONVERT WMESH_INSPECT WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "fleet_smoke: missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# 10k networks with a short probe window and no client traces: the RSS
# contrast comes from network count, and generation stays ~15 s.
execute_process(
  COMMAND ${WMESH_GEN} ${WORK_DIR}/fleet --networks 10000 --hours 0.1
    --no-clients --shards=50 --seed 3
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fleet_smoke: sharded wmesh_gen failed (rc ${rc})")
endif()
if(NOT EXISTS ${WORK_DIR}/fleet.wmanifest)
  message(FATAL_ERROR "fleet_smoke: fleet.wmanifest was not written")
endif()

# Inspect verifies every shard (full CRC pass) before printing anything.
execute_process(
  COMMAND ${WMESH_INSPECT} ${WORK_DIR}/fleet.wmanifest
  RESULT_VARIABLE rc OUTPUT_VARIABLE inspect_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fleet_smoke: wmesh_inspect failed (rc ${rc})")
endif()
string(FIND "${inspect_out}" "50 shards" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "fleet_smoke: inspect lacks shard summary:\n${inspect_out}")
endif()

# Out-of-core analysis of the fleet, with the run report's RSS sampler.
execute_process(
  COMMAND ${WMESH_ANALYZE} ${WORK_DIR}/fleet.wmanifest snr
    --report=${WORK_DIR}/fleet.report.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE fleet_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fleet_smoke: fleet wmesh_analyze failed (rc ${rc})")
endif()

# Merge back to one monolithic WSNAP and analyze that in-core.
execute_process(
  COMMAND ${WMESH_CONVERT} ${WORK_DIR}/fleet.wmanifest ${WORK_DIR}/mono
    --out=wsnap
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fleet_smoke: fleet merge failed (rc ${rc})")
endif()
execute_process(
  COMMAND ${WMESH_ANALYZE} ${WORK_DIR}/mono.wsnap snr
    --report=${WORK_DIR}/mono.report.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE mono_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fleet_smoke: monolithic wmesh_analyze failed (rc ${rc})")
endif()

# Byte-identity: sharded out-of-core output == monolithic output.  The
# "(run report written to <path>)" trailer names each run's own report
# file; everything above it must match exactly.
string(REGEX REPLACE "\\(run report written[^\n]*\n?" "" fleet_out "${fleet_out}")
string(REGEX REPLACE "\\(run report written[^\n]*\n?" "" mono_out "${mono_out}")
if(NOT fleet_out STREQUAL mono_out)
  message(FATAL_ERROR "fleet_smoke: fleet output differs from monolithic:\n"
    "--- fleet ---\n${fleet_out}\n--- monolithic ---\n${mono_out}")
endif()

# Bounded RSS: the out-of-core run must peak far below the in-core run.
# The 3x headroom (observed ~11x on a 74 MB fleet) keeps the assertion
# robust to allocator and platform variance while still failing if the
# analyzer ever holds more than a few shards resident.
if(NOT OBS_DISABLED)
  foreach(which fleet mono)
    file(READ ${WORK_DIR}/${which}.report.json report)
    string(REGEX MATCH "\"peak_rss_bytes\": ([0-9]+)" _ "${report}")
    if(NOT CMAKE_MATCH_1 OR CMAKE_MATCH_1 EQUAL 0)
      message(FATAL_ERROR "fleet_smoke: ${which} report lacks peak_rss_bytes")
    endif()
    set(${which}_rss ${CMAKE_MATCH_1})
  endforeach()
  math(EXPR bound "${mono_rss} / 3")
  if(fleet_rss GREATER ${bound})
    message(FATAL_ERROR "fleet_smoke: fleet peak RSS ${fleet_rss} exceeds "
      "1/3 of monolithic peak ${mono_rss} -- out-of-core bound lost")
  endif()
  message(STATUS "fleet_smoke: fleet peak RSS ${fleet_rss} vs monolithic "
    "${mono_rss}")
endif()

message(STATUS "fleet_smoke: OK")

// OpenMetrics exposition coverage: render/parse/lint round trips over a
// real registry snapshot, the strict-parser error paths the lint relies
// on, and OpenMetricsLive.* -- the live-endpoint cases behind the
// `openmetrics_lint` ctest, which scrape an ExportServer mid-flight while
// an analysis workload runs and check types, bucket cumulativity and
// counter monotonicity over the socket.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/report.h"
#include "obs/export_server.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "sim/generator.h"

namespace wmesh::obs {
namespace {

TEST(OpenMetrics, RenderedRegistryParsesAndLintsClean) {
  Registry& reg = Registry::instance();
  reg.reset_for_test();
  reg.counter("test.om.events").add(7);
  reg.gauge("test.om.depth").set(3.5);
  Histogram& h = reg.histogram("test.om.lat_us", {10.0, 100.0, 1000.0});
  h.record(5.0);
  h.record(50.0);
  h.record(5000.0);
  reg.span_aggregate("test.om.span").record(120.0, 80.0, "test.om.parent");

  const std::string text = render_openmetrics(reg.snapshot());
  OmDocument doc;
  std::string error;
  ASSERT_TRUE(parse_openmetrics(text, &doc, &error)) << error << "\n" << text;
  EXPECT_TRUE(doc.saw_eof);
  EXPECT_TRUE(lint_openmetrics(doc, &error)) << error << "\n" << text;

  // Counters gain _total; dots become underscores; wmesh_ prefix.
  const OmSample* events = doc.find("wmesh_test_om_events_total");
  ASSERT_NE(events, nullptr) << text;
  EXPECT_DOUBLE_EQ(events->value, 7.0);
  EXPECT_EQ(doc.types.at("wmesh_test_om_events"), "counter");

  const OmSample* depth = doc.find("wmesh_test_om_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->value, 3.5);
  EXPECT_EQ(doc.types.at("wmesh_test_om_depth"), "gauge");

  // Histogram: cumulative buckets, +Inf == _count, sum present.
  EXPECT_EQ(doc.types.at("wmesh_test_om_lat_us"), "histogram");
  const OmSample* b10 = doc.find("wmesh_test_om_lat_us_bucket", {{"le", "10"}});
  const OmSample* binf =
      doc.find("wmesh_test_om_lat_us_bucket", {{"le", "+Inf"}});
  const OmSample* count = doc.find("wmesh_test_om_lat_us_count");
  ASSERT_TRUE(b10 && binf && count) << text;
  EXPECT_DOUBLE_EQ(b10->value, 1.0);
  EXPECT_DOUBLE_EQ(binf->value, 3.0);
  EXPECT_DOUBLE_EQ(count->value, 3.0);

  // Span families: labeled by span name, with self-time and causal edges.
  const OmSample* scount =
      doc.find("wmesh_span_count_total", {{"span", "test.om.span"}});
  const OmSample* sself =
      doc.find("wmesh_span_self_us_total", {{"span", "test.om.span"}});
  const OmSample* edge = doc.find(
      "wmesh_span_parent_total",
      {{"span", "test.om.span"}, {"parent", "test.om.parent"}});
  ASSERT_TRUE(scount && sself && edge) << text;
  EXPECT_DOUBLE_EQ(scount->value, 1.0);
  EXPECT_DOUBLE_EQ(sself->value, 80.0);
  EXPECT_DOUBLE_EQ(edge->value, 1.0);
}

TEST(OpenMetrics, LabelValuesEscapeAndRoundTrip) {
  // Span names are literals in practice, but the renderer must still escape
  // quotes, backslashes and newlines so the exposition stays parseable.
  Registry& reg = Registry::instance();
  reg.reset_for_test();
  static const char* const kAwkward = "test.om.\"quoted\\name\"\nline2";
  reg.span_aggregate(kAwkward).record(10.0, 10.0, "(root)");

  const std::string text = render_openmetrics(reg.snapshot());
  OmDocument doc;
  std::string error;
  ASSERT_TRUE(parse_openmetrics(text, &doc, &error)) << error << "\n" << text;
  EXPECT_TRUE(lint_openmetrics(doc, &error)) << error;
  const OmSample* s = doc.find("wmesh_span_count_total", {{"span", kAwkward}});
  ASSERT_NE(s, nullptr) << text;
  EXPECT_EQ(s->label("span"), kAwkward);  // byte-exact after unescape
}

TEST(OpenMetrics, ParserRejectsMalformedDocuments) {
  OmDocument doc;
  std::string error;
  // Missing # EOF terminator.
  EXPECT_FALSE(parse_openmetrics(
      "# TYPE wmesh_x counter\nwmesh_x_total 1\n", &doc, &error));
  // Garbage line.
  EXPECT_FALSE(parse_openmetrics(
      "# TYPE wmesh_x counter\nnot a sample line at all!\n# EOF\n", &doc,
      &error));
  // Non-numeric value.
  EXPECT_FALSE(parse_openmetrics(
      "# TYPE wmesh_x counter\nwmesh_x_total banana\n# EOF\n", &doc, &error));
  // Duplicate TYPE declaration.
  EXPECT_FALSE(parse_openmetrics(
      "# TYPE wmesh_x counter\n# TYPE wmesh_x gauge\n# EOF\n", &doc, &error));
}

TEST(OpenMetrics, LintCatchesStructuralViolations) {
  OmDocument doc;
  std::string error;

  // Sample without a declared family.
  ASSERT_TRUE(parse_openmetrics("wmesh_orphan_total 1\n# EOF\n", &doc,
                                &error))
      << error;
  EXPECT_FALSE(lint_openmetrics(doc, &error));

  // Counter sample missing the _total suffix.
  ASSERT_TRUE(parse_openmetrics(
      "# TYPE wmesh_c counter\nwmesh_c 1\n# EOF\n", &doc, &error))
      << error;
  EXPECT_FALSE(lint_openmetrics(doc, &error));

  // Negative counter.
  ASSERT_TRUE(parse_openmetrics(
      "# TYPE wmesh_c counter\nwmesh_c_total -4\n# EOF\n", &doc, &error))
      << error;
  EXPECT_FALSE(lint_openmetrics(doc, &error));

  // Non-cumulative buckets (counts decrease).
  ASSERT_TRUE(parse_openmetrics(
      "# TYPE wmesh_h histogram\n"
      "wmesh_h_bucket{le=\"1\"} 5\n"
      "wmesh_h_bucket{le=\"2\"} 3\n"
      "wmesh_h_bucket{le=\"+Inf\"} 5\n"
      "wmesh_h_sum 9\nwmesh_h_count 5\n# EOF\n",
      &doc, &error))
      << error;
  EXPECT_FALSE(lint_openmetrics(doc, &error));

  // Missing +Inf bucket.
  ASSERT_TRUE(parse_openmetrics(
      "# TYPE wmesh_h histogram\n"
      "wmesh_h_bucket{le=\"1\"} 5\n"
      "wmesh_h_sum 9\nwmesh_h_count 5\n# EOF\n",
      &doc, &error))
      << error;
  EXPECT_FALSE(lint_openmetrics(doc, &error));

  // +Inf bucket disagrees with _count.
  ASSERT_TRUE(parse_openmetrics(
      "# TYPE wmesh_h histogram\n"
      "wmesh_h_bucket{le=\"1\"} 2\n"
      "wmesh_h_bucket{le=\"+Inf\"} 5\n"
      "wmesh_h_sum 9\nwmesh_h_count 4\n# EOF\n",
      &doc, &error))
      << error;
  EXPECT_FALSE(lint_openmetrics(doc, &error));
}

TEST(OpenMetrics, HelpAndUnitAnnotationsParseRecordAndAreRequired) {
  OmDocument doc;
  std::string error;
  ASSERT_TRUE(parse_openmetrics(
      "# TYPE wmesh_x counter\n"
      "# HELP wmesh_x Things that happened.\n"
      "# UNIT wmesh_x count\n"
      "wmesh_x_total 3\n# EOF\n",
      &doc, &error))
      << error;
  EXPECT_EQ(doc.helps.at("wmesh_x"), "Things that happened.");
  EXPECT_EQ(doc.units.at("wmesh_x"), "count");
  EXPECT_TRUE(lint_openmetrics(doc, &error)) << error;

  // A wmesh_* family missing HELP fails the lint...
  ASSERT_TRUE(parse_openmetrics(
      "# TYPE wmesh_x counter\n"
      "# UNIT wmesh_x count\n"
      "wmesh_x_total 3\n# EOF\n",
      &doc, &error))
      << error;
  EXPECT_FALSE(lint_openmetrics(doc, &error));
  EXPECT_NE(error.find("HELP"), std::string::npos) << error;

  // ...and so does one missing UNIT.
  ASSERT_TRUE(parse_openmetrics(
      "# TYPE wmesh_x counter\n"
      "# HELP wmesh_x Things that happened.\n"
      "wmesh_x_total 3\n# EOF\n",
      &doc, &error))
      << error;
  EXPECT_FALSE(lint_openmetrics(doc, &error));
  EXPECT_NE(error.find("UNIT"), std::string::npos) << error;

  // Duplicate HELP or UNIT declarations are parse errors, like TYPE.
  EXPECT_FALSE(parse_openmetrics(
      "# TYPE wmesh_x counter\n# HELP wmesh_x a\n# HELP wmesh_x b\n# EOF\n",
      &doc, &error));
  EXPECT_FALSE(parse_openmetrics(
      "# TYPE wmesh_x counter\n# UNIT wmesh_x count\n# UNIT wmesh_x count\n"
      "# EOF\n",
      &doc, &error));
}

TEST(OpenMetrics, CuratedReferenceAnnotatesEveryRenderedFamily) {
  // Curated families carry their table entry; everything else falls back
  // to a generic help plus a suffix-derived unit -- never an unannotated
  // exposition.
  const FamilyReference rounds = openmetrics_reference("wmesh_serve_rounds");
  EXPECT_EQ(rounds.help.find("no curated help"), std::string::npos);
  EXPECT_FALSE(rounds.unit.empty());

  const FamilyReference fallback =
      openmetrics_reference("wmesh_made_up_family_us");
  EXPECT_NE(fallback.help.find("no curated help"), std::string::npos);
  EXPECT_EQ(fallback.unit, "microseconds");
  EXPECT_EQ(openmetrics_reference("wmesh_made_up_bytes").unit, "bytes");
  EXPECT_EQ(openmetrics_reference("wmesh_made_up_s").unit, "seconds");
  EXPECT_EQ(openmetrics_reference("wmesh_made_up").unit, "count");

  // A rendered registry -- including a family the table has never heard
  // of -- is fully annotated: lint passes and each declared family has
  // both entries.
  Registry& reg = Registry::instance();
  reg.reset_for_test();
  reg.counter("serve.rounds").add(2);
  reg.counter("totally.novel.family_us").add(1);
  reg.gauge("tsdb.points").set(42.0);
  const std::string text = render_openmetrics(reg.snapshot());
  OmDocument doc;
  std::string error;
  ASSERT_TRUE(parse_openmetrics(text, &doc, &error)) << error << "\n" << text;
  EXPECT_TRUE(lint_openmetrics(doc, &error)) << error << "\n" << text;
  for (const auto& [family, type] : doc.types) {
    EXPECT_EQ(doc.helps.count(family), 1u) << family;
    EXPECT_EQ(doc.units.count(family), 1u) << family;
  }
  EXPECT_EQ(doc.units.at("wmesh_totally_novel_family_us"), "microseconds");
}

TEST(OpenMetrics, LabeledRegistryNamesGroupUnderOneFamily) {
  // Registry names carrying a {k=v} suffix (health scorecards, alert
  // states) render as one family with proper quoted labels.
  Registry& reg = Registry::instance();
  reg.reset_for_test();
  reg.gauge("health.score{net=3,std=bg}").set(91.5);
  reg.gauge("health.score{net=4,std=n}").set(88.0);
  reg.gauge("alert.state{alert=burn_errors}").set(2.0);

  const std::string text = render_openmetrics(reg.snapshot());
  OmDocument doc;
  std::string error;
  ASSERT_TRUE(parse_openmetrics(text, &doc, &error)) << error << "\n" << text;
  EXPECT_TRUE(lint_openmetrics(doc, &error)) << error << "\n" << text;

  // One TYPE declaration for the base family, two labeled series.
  EXPECT_EQ(doc.types.at("wmesh_health_score"), "gauge");
  const OmSample* a =
      doc.find("wmesh_health_score", {{"net", "3"}, {"std", "bg"}});
  const OmSample* b =
      doc.find("wmesh_health_score", {{"net", "4"}, {"std", "n"}});
  ASSERT_TRUE(a && b) << text;
  EXPECT_DOUBLE_EQ(a->value, 91.5);
  EXPECT_DOUBLE_EQ(b->value, 88.0);
  const OmSample* st =
      doc.find("wmesh_alert_state", {{"alert", "burn_errors"}});
  ASSERT_NE(st, nullptr) << text;
  EXPECT_DOUBLE_EQ(st->value, 2.0);
  // The TYPE line appears exactly once even with multiple label sets.
  const std::string type_line = "# TYPE wmesh_health_score gauge";
  const std::size_t first = text.find(type_line);
  ASSERT_NE(first, std::string::npos) << text;
  EXPECT_EQ(text.find(type_line, first + 1), std::string::npos) << text;
}

TEST(OpenMetrics, MonotoneCheckFlagsCounterDecreases) {
  OmDocument a, b;
  std::string error;
  ASSERT_TRUE(parse_openmetrics(
      "# TYPE wmesh_c counter\nwmesh_c_total 5\n# EOF\n", &a, &error));
  ASSERT_TRUE(parse_openmetrics(
      "# TYPE wmesh_c counter\nwmesh_c_total 7\n# EOF\n", &b, &error));
  EXPECT_TRUE(check_counters_monotone(a, b, &error)) << error;
  EXPECT_FALSE(check_counters_monotone(b, a, &error));
}

// ---------------------------------------------------------------------------
// OpenMetricsLive.*: the openmetrics_lint ctest.  Serve a real registry over
// a real socket while an analysis workload runs, scrape it twice mid-flight,
// and lint everything the endpoint said.

std::string live_socket_path() {
  return std::string(::testing::TempDir()) + "wmesh_om_live.sock";
}

TEST(OpenMetricsLive, MidFlightScrapeLintsCleanAndCountersAreMonotone) {
  Registry::instance().reset_for_test();
  const std::string path = live_socket_path();
  std::remove(path.c_str());

  std::string error;
  const auto server = ExportServer::start("unix:" + path, &error);
  ASSERT_NE(server, nullptr) << error;

  // Keep an analysis workload running while we scrape: counters, span
  // aggregates and pool gauges all move between the two scrapes.
  GeneratorConfig config = small_config();
  const Dataset ds = generate_dataset(config);
  std::atomic<bool> stop{false};
  std::atomic<int> iterations{0};
  std::thread worker([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)report_etx(ds);
      iterations.fetch_add(1, std::memory_order_release);
    }
  });

  OmDocument first, second;
  std::string body;
  ASSERT_TRUE(scrape_openmetrics_once(server->bound_address(), &body, &error))
      << error;
  ASSERT_TRUE(parse_openmetrics(body, &first, &error)) << error << "\n" << body;
  EXPECT_TRUE(lint_openmetrics(first, &error)) << error << "\n" << body;

  // Wait for at least one full workload pass (a wall-clock sleep flakes on
  // loaded machines where the worker thread gets starved), so the second
  // scrape is guaranteed to see completed spans.
  while (iterations.load(std::memory_order_acquire) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(scrape_openmetrics_once(server->bound_address(), &body, &error))
      << error;
  ASSERT_TRUE(parse_openmetrics(body, &second, &error))
      << error << "\n" << body;
  EXPECT_TRUE(lint_openmetrics(second, &error)) << error << "\n" << body;

  stop.store(true, std::memory_order_relaxed);
  worker.join();

  // Counters never went backwards between two live scrapes.
  EXPECT_TRUE(check_counters_monotone(first, second, &error)) << error;

#if !defined(WMESH_OBS_DISABLED)
  // The workload showed up: span families with self-time, and the
  // endpoint's own scrape counter (bumped after the first response).
  const OmSample* etx = second.find("wmesh_span_count_total",
                                    {{"span", "report.etx"}});
  if (etx == nullptr) etx = second.find("wmesh_span_count_total");
  ASSERT_NE(etx, nullptr) << "no span families in live scrape";
  EXPECT_GT(etx->value, 0.0);
  EXPECT_NE(second.find("wmesh_span_self_us_total"), nullptr);
  const OmSample* scrapes = second.find("wmesh_export_scrapes_total");
  ASSERT_NE(scrapes, nullptr);
  EXPECT_GE(scrapes->value, 1.0);
#endif
}

TEST(OpenMetricsLive, EphemeralTcpPortServesTheSameDocument) {
  std::string error;
  const auto server = ExportServer::start(":0", &error);
  ASSERT_NE(server, nullptr) << error;
  EXPECT_NE(server->bound_address().find("127.0.0.1:"), std::string::npos);

  std::string body;
  ASSERT_TRUE(scrape_openmetrics_once(server->bound_address(), &body, &error))
      << error;
  OmDocument doc;
  ASSERT_TRUE(parse_openmetrics(body, &doc, &error)) << error << "\n" << body;
  EXPECT_TRUE(doc.saw_eof);
  EXPECT_TRUE(lint_openmetrics(doc, &error)) << error;
}

TEST(OpenMetricsLive, StartReportsUnusableAddresses) {
  std::string error;
  EXPECT_EQ(ExportServer::start("not an address", &error), nullptr);
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_EQ(ExportServer::start("unix:/nonexistent-dir/x/y.sock", &error),
            nullptr);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace wmesh::obs

// Unit tests for util/text_table.h rendering helpers.
#include "util/text_table.h"

#include <gtest/gtest.h>

namespace wmesh {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  // Header row, underline, two data rows.
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("x       1"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, NoHeaderNoUnderline) {
  TextTable t;
  t.add_row({"a", "b"});
  const std::string out = t.render();
  EXPECT_EQ(out.find('-'), std::string::npos);
  EXPECT_NE(out.find("a  b"), std::string::npos);
}

TEST(TextTable, RaggedRowsDontCrash) {
  TextTable t;
  t.header({"one"});
  t.add_row({"a", "b", "c"});
  t.add_row({});
  EXPECT_FALSE(t.render().empty());
}

TEST(Fmt, Digits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(AsciiPlot, EmptyInputs) {
  EXPECT_EQ(ascii_plot({}), "(no data)\n");
  std::vector<Series> s = {{"empty", {}}};
  EXPECT_EQ(ascii_plot(s), "(no data)\n");
}

TEST(AsciiPlot, RendersPointsAndLegend) {
  std::vector<Series> s = {
      {"up", {{0.0, 0.0}, {1.0, 1.0}}},
      {"down", {{0.0, 1.0}, {1.0, 0.0}}},
  };
  const std::string out = ascii_plot(s, 40, 10, "x", "y");
  EXPECT_NE(out.find("legend: *=up +=down"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
  EXPECT_NE(out.find('x'), std::string::npos);  // axis label
}

TEST(AsciiPlot, DegenerateRangeHandled) {
  std::vector<Series> s = {{"flat", {{2.0, 5.0}, {2.0, 5.0}}}};
  EXPECT_FALSE(ascii_plot(s).empty());
}

TEST(AsciiPlot, TooSmallGrid) {
  std::vector<Series> s = {{"a", {{0.0, 0.0}}}};
  EXPECT_EQ(ascii_plot(s, 2, 2), "(no data)\n");
}

}  // namespace
}  // namespace wmesh

#include "obs/report.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/report.h"
#include "obs/metrics.h"
#include "par/thread_pool.h"
#include "sim/generator.h"
#include "util/json.h"

namespace wmesh::obs {
namespace {

json::Value parse_report(RunReport& r) {
  std::string err;
  auto doc = json::parse(r.to_json(), &err);
  EXPECT_TRUE(doc.has_value()) << err;
  return doc ? *doc : json::Value{};
}

TEST(BuildInfo, VersionLineCarriesTheIdentity) {
  const BuildInfo& b = BuildInfo::current();
  EXPECT_FALSE(b.git.empty());
  EXPECT_FALSE(b.compiler.empty());
  const std::string line = b.version_line("some_tool");
  EXPECT_EQ(line.rfind("some_tool ", 0), 0u);
  EXPECT_NE(line.find(b.git), std::string::npos);
#if defined(WMESH_OBS_DISABLED)
  EXPECT_TRUE(b.obs_disabled);
  EXPECT_NE(line.find("obs off"), std::string::npos);
#else
  EXPECT_FALSE(b.obs_disabled);
  EXPECT_NE(line.find("obs on"), std::string::npos);
#endif
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(RunReport, EmitsValidVersionedJsonWithStableLeadingKeys) {
  const char* argv[] = {"tool_under_test", "--flag", "pos arg"};
  RunReport r("tool_under_test", 3, argv);
  r.set_seed(1234);
  r.set_threads(2);
  r.finish();

  const json::Value doc = parse_report(r);
  ASSERT_TRUE(doc.is_object());
  // Fixed leading key order: schema, tool, argv, seed, threads, wall, build.
  ASSERT_GE(doc.object.size(), 7u);
  EXPECT_EQ(doc.object[0].first, "schema");
  EXPECT_EQ(doc.object[1].first, "tool");
  EXPECT_EQ(doc.object[2].first, "argv");
  EXPECT_EQ(doc.object[3].first, "seed");
  EXPECT_EQ(doc.object[4].first, "threads");
  EXPECT_EQ(doc.object[5].first, "wall_time_s");
  EXPECT_EQ(doc.object[6].first, "build");

  EXPECT_EQ(doc.find("schema")->string, kRunReportSchema);
  EXPECT_EQ(doc.find("tool")->string, "tool_under_test");
  ASSERT_EQ(doc.find("argv")->array.size(), 3u);
  EXPECT_EQ(doc.find("argv")->array[2].string, "pos arg");
  EXPECT_DOUBLE_EQ(doc.find("seed")->number, 1234.0);
  EXPECT_DOUBLE_EQ(doc.find("threads")->number, 2.0);
  EXPECT_GE(doc.find("wall_time_s")->number, 0.0);

  const json::Value* build = doc.find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->find("git")->string, BuildInfo::current().git);
  ASSERT_NE(build->find("obs_disabled"), nullptr);

#if defined(WMESH_OBS_DISABLED)
  // Disabled builds shrink to identity + build + wall time.
  EXPECT_TRUE(build->find("obs_disabled")->boolean);
  EXPECT_EQ(doc.find("resources"), nullptr);
  EXPECT_EQ(doc.find("metrics"), nullptr);
#else
  EXPECT_FALSE(build->find("obs_disabled")->boolean);
  ASSERT_NE(doc.find("resources"), nullptr);
  ASSERT_NE(doc.find("metrics"), nullptr);
#endif

  // A report without a seed serializes it as null.
  RunReport r2("tool_under_test", 0, nullptr);
  r2.finish();
  EXPECT_TRUE(parse_report(r2).find("seed")->is_null());
}

#if !defined(WMESH_OBS_DISABLED)

TEST(RunReport, SamplesNonZeroPeakRssAndCpu) {
  RunReport r("rss_probe", 0, nullptr);
  // Touch some memory so there is something to measure.
  std::vector<double> ballast(1u << 16, 1.0);
  double acc = 0.0;
  for (double v : ballast) acc += v;
  EXPECT_GT(acc, 0.0);
  r.finish();
  const json::Value doc = parse_report(r);
  const json::Value* res = doc.find("resources");
  ASSERT_NE(res, nullptr);
  EXPECT_GT(res->find("peak_rss_bytes")->number, 0.0);
  EXPECT_GE(res->find("user_cpu_s")->number, 0.0);
  EXPECT_GE(res->find("sys_cpu_s")->number, 0.0);
}

TEST(RunReport, MetricsSectionEqualsAStandaloneSnapshot) {
  Registry::instance().counter("test.report.metric").add(9);
  RunReport r("metrics_probe", 0, nullptr);
  r.finish();
  const std::string report_text = r.to_json();
  const std::string snap_text =
      Registry::instance().snapshot(SnapshotFlush::kActiveBatches).to_json();

  std::string err;
  const auto report_doc = json::parse(report_text, &err);
  ASSERT_TRUE(report_doc.has_value()) << err;
  const auto snap_doc = json::parse(snap_text, &err);
  ASSERT_TRUE(snap_doc.has_value()) << err;

  const json::Value* metrics = report_doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_TRUE(metrics->equals(*snap_doc));
  ASSERT_NE(metrics->find("counters"), nullptr);
  ASSERT_NE(metrics->find("counters")->find("test.report.metric"), nullptr);
  EXPECT_DOUBLE_EQ(
      metrics->find("counters")->find("test.report.metric")->number, 9.0);
}

// The determinism acceptance check: the span-aggregate (name, count) list a
// report carries must be identical no matter how many threads ran the
// analysis, because wmesh::par shard boundaries depend only on the work.
TEST(RunReport, SpanCountsAreIdenticalAcrossThreadCounts) {
  GeneratorConfig config = small_config();
  const Dataset ds = generate_dataset(config);

  using SpanCounts = std::vector<std::pair<std::string, std::uint64_t>>;
  const auto run_at = [&](std::size_t threads) {
    par::set_default_threads(threads);
    Registry::instance().reset_for_test();
    (void)report_etx(ds);
    SpanCounts out;
    const Snapshot s =
        Registry::instance().snapshot(SnapshotFlush::kActiveBatches);
    for (const auto& row : s.spans) out.emplace_back(row.name, row.count);
    return out;
  };

  const SpanCounts at1 = run_at(1);
  const SpanCounts at2 = run_at(2);
  const SpanCounts at8 = run_at(8);
  par::set_default_threads(0);  // restore the env/hardware default

  ASSERT_FALSE(at1.empty());
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);

  // The analysis actually exercised the parallel layer.
  bool saw_shard = false;
  for (const auto& [name, count] : at1) {
    if (name == "par.shard" && count > 0) saw_shard = true;
  }
  EXPECT_TRUE(saw_shard);
}

#endif  // !WMESH_OBS_DISABLED

}  // namespace
}  // namespace wmesh::obs

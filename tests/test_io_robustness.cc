// Failure-injection tests for trace/io.h: malformed snapshots must fail
// cleanly, never crash or silently mis-parse.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "obs/metrics.h"
#include "trace/io.h"

namespace wmesh {
namespace {

std::string temp_prefix(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void write_probes(const std::string& prefix, const std::string& body) {
  std::ofstream out(prefix + ".probes.csv");
  out << "network,env,standard,ap_count,time_s,from,to,set_snr,rate,loss,snr\n";
  out << body;
}

void cleanup(const std::string& prefix) {
  std::remove((prefix + ".probes.csv").c_str());
  std::remove((prefix + ".clients.csv").c_str());
}

TEST(IoRobustness, ShortRowFailsLoad) {
  const auto prefix = temp_prefix("wmesh_iorob_short");
  write_probes(prefix, "0,I,bg,2,300,0,1\n");  // 7 of 11 fields
  Dataset ds;
  EXPECT_FALSE(load_dataset(prefix, &ds));
  cleanup(prefix);
}

TEST(IoRobustness, ExtraFieldsFailLoad) {
  const auto prefix = temp_prefix("wmesh_iorob_long");
  write_probes(prefix, "0,I,bg,2,300,0,1,10.0,0,0.1,10.0,EXTRA\n");
  Dataset ds;
  EXPECT_FALSE(load_dataset(prefix, &ds));
  cleanup(prefix);
}

TEST(IoRobustness, ValidMinimalSnapshotLoads) {
  const auto prefix = temp_prefix("wmesh_iorob_ok");
  write_probes(prefix,
               "3,O,n,4,300,0,1,12.50,0,0.1000,12.50\n"
               "3,O,n,4,300,0,1,12.50,1,0.5000,11.75\n"
               "3,O,n,4,600,1,0,8.00,0,1.0000,nan\n");
  Dataset ds;
  ASSERT_TRUE(load_dataset(prefix, &ds));
  ASSERT_EQ(ds.networks.size(), 1u);
  const auto& nt = ds.networks[0];
  EXPECT_EQ(nt.info.id, 3u);
  EXPECT_EQ(nt.info.env, Environment::kOutdoor);
  EXPECT_EQ(nt.info.standard, Standard::kN);
  EXPECT_EQ(nt.ap_count, 4u);
  ASSERT_EQ(nt.probe_sets.size(), 2u);
  EXPECT_EQ(nt.probe_sets[0].entries.size(), 2u);
  EXPECT_TRUE(std::isnan(nt.probe_sets[1].entries[0].snr_db));
  cleanup(prefix);
}

TEST(IoRobustness, MissingClientsFileIsTolerated) {
  // Probe data without a clients file: load succeeds with no samples
  // (real traces may legitimately lack client data).
  const auto prefix = temp_prefix("wmesh_iorob_noclients");
  write_probes(prefix, "0,I,bg,2,300,0,1,10.00,0,0.1000,10.00\n");
  Dataset ds;
  ASSERT_TRUE(load_dataset(prefix, &ds));
  EXPECT_TRUE(ds.networks[0].client_samples.empty());
  cleanup(prefix);
}

TEST(IoRobustness, ClientRowsForUnknownNetworkAreSkipped) {
  const auto prefix = temp_prefix("wmesh_iorob_orphan");
  write_probes(prefix, "0,I,bg,2,300,0,1,10.00,0,0.1000,10.00\n");
  {
    std::ofstream out(prefix + ".clients.csv");
    out << "network,env,client,ap,bucket,assoc,packets\n";
    out << "99,I,1,0,0,1,100\n";  // network 99 has no probe data
    out << "0,I,1,0,0,1,100\n";
  }
  Dataset ds;
  ASSERT_TRUE(load_dataset(prefix, &ds));
  EXPECT_EQ(ds.networks[0].client_samples.size(), 1u);
  cleanup(prefix);
}

std::uint64_t bad_rows_counter() {
  for (const auto& c : obs::Registry::instance().snapshot().counters) {
    if (c.name == "trace.csv.bad_rows") return c.value;
  }
  return 0;
}

// Every malformed-field class must fail the load (strict schema: a bad row
// is a structural error, never silently coerced or skipped).
TEST(IoRobustness, MalformedFieldsFailLoad) {
  const struct {
    const char* tag;
    const char* row;
  } cases[] = {
      {"garbage network id", "xyz,I,bg,2,300,0,1,10.00,0,0.1000,10.00\n"},
      {"network id overflow", "4294967296,I,bg,2,300,0,1,10.00,0,0.1,10.0\n"},
      {"unknown env code", "0,Q,bg,2,300,0,1,10.00,0,0.1000,10.00\n"},
      {"unknown standard", "0,I,ac,2,300,0,1,10.00,0,0.1000,10.00\n"},
      {"ap_count overflow", "0,I,bg,65536,300,0,1,10.00,0,0.1000,10.00\n"},
      {"negative time", "0,I,bg,2,-300,0,1,10.00,0,0.1000,10.00\n"},
      {"ap id overflow", "0,I,bg,2,300,65536,1,10.00,0,0.1000,10.00\n"},
      {"rate overflow", "0,I,bg,2,300,0,1,10.00,256,0.1000,10.00\n"},
      {"garbage loss", "0,I,bg,2,300,0,1,10.00,0,oops,10.00\n"},
      {"loss above 1", "0,I,bg,2,300,0,1,10.00,0,1.5000,10.00\n"},
      {"negative loss", "0,I,bg,2,300,0,1,10.00,0,-0.1000,10.00\n"},
      {"nan loss", "0,I,bg,2,300,0,1,10.00,0,nan,10.00\n"},
      {"garbage snr", "0,I,bg,2,300,0,1,10.00,0,0.1000,low\n"},
      {"garbage set_snr", "0,I,bg,2,300,0,1,high,0,0.1000,10.00\n"},
  };
  for (const auto& c : cases) {
    const auto prefix = temp_prefix("wmesh_iorob_field");
    write_probes(prefix, c.row);
    Dataset ds;
    EXPECT_FALSE(load_dataset(prefix, &ds)) << c.tag;
    cleanup(prefix);
  }
}

TEST(IoRobustness, MalformedClientRowFailsLoad) {
  const auto prefix = temp_prefix("wmesh_iorob_badclient");
  write_probes(prefix, "0,I,bg,2,300,0,1,10.00,0,0.1000,10.00\n");
  {
    std::ofstream out(prefix + ".clients.csv");
    out << "network,env,client,ap,bucket,assoc,packets\n";
    out << "0,I,1,not_an_ap,0,1,100\n";
  }
  Dataset ds;
  EXPECT_FALSE(load_dataset(prefix, &ds));
  cleanup(prefix);
}

TEST(IoRobustness, BadRowBumpsCounter) {
  const auto prefix = temp_prefix("wmesh_iorob_counter");
  write_probes(prefix, "0,I,bg,2,300,0,1,10.00,0,2.0000,10.00\n");
  const std::uint64_t before = bad_rows_counter();
  Dataset ds;
  EXPECT_FALSE(load_dataset(prefix, &ds));
#if !defined(WMESH_OBS_DISABLED)
  EXPECT_GT(bad_rows_counter(), before)
      << "a rejected row must bump trace.csv.bad_rows";
#else
  (void)before;
#endif
  cleanup(prefix);
}

TEST(IoRobustness, SplitProbeSetsRegroupByTimeAndLink) {
  // Entries of the same (time, from, to) must merge into one ProbeSet even
  // across standards boundary rows for other links in between.
  const auto prefix = temp_prefix("wmesh_iorob_group");
  write_probes(prefix,
               "0,I,bg,3,300,0,1,10.00,0,0.1000,10.00\n"
               "0,I,bg,3,300,0,2,20.00,0,0.2000,20.00\n"
               "0,I,bg,3,300,0,1,10.00,1,0.3000,9.00\n");
  Dataset ds;
  ASSERT_TRUE(load_dataset(prefix, &ds));
  // The (0,1) entries are split by the (0,2) row -> three ProbeSets, which
  // is the loader's defined behaviour for out-of-order files (the saver
  // always writes a set's rows contiguously).
  EXPECT_EQ(ds.networks[0].probe_sets.size(), 3u);
  cleanup(prefix);
}

}  // namespace
}  // namespace wmesh

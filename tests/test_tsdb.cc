// Tests for the in-process time-series ring (obs/tsdb.h) and the alert
// engine over it (obs/alerts.h).  Snapshots are hand-built Snapshot
// structs, not the process-global registry, so every case also passes in
// the -DWMESH_OBS_DISABLED nested build (where the Tsdb's internal stats
// stay authoritative and the registry mirror is a no-op).
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/alerts.h"
#include "obs/tsdb.h"

namespace wmesh::obs {
namespace {

Snapshot scalar_snapshot(std::uint64_t counter, double gauge) {
  Snapshot s;
  s.counters.push_back({"t.counter", counter});
  s.gauges.push_back({"t.gauge", gauge});
  return s;
}

// One histogram family with bounds {1, 10, 100} and the given cumulative
// counts (the implicit +Inf bucket is `count`).
Snapshot hist_snapshot(std::vector<std::uint64_t> cum, std::uint64_t count,
                       double sum) {
  Snapshot s;
  Snapshot::HistogramRow h;
  h.name = "t.hist";
  h.bounds = {1.0, 10.0, 100.0};
  h.cumulative = std::move(cum);
  h.count = count;
  h.sum = sum;
  h.p50 = h.p90 = h.p99 = 0.0;
  s.histograms.push_back(std::move(h));
  return s;
}

TEST(Tsdb, FirstSampleOnlyEstablishesBaseline) {
  Tsdb tsdb;
  tsdb.sample(scalar_snapshot(1000, 5.0), 1);
  // A warm registry's pre-attach totals must not appear as one giant
  // delta: the first sample records no point.
  EXPECT_EQ(tsdb.stats().points, 0u);
  EXPECT_EQ(tsdb.stats().series, 2u);
  EXPECT_TRUE(tsdb.has_series("t.counter"));
  EXPECT_DOUBLE_EQ(tsdb.value("t.counter"), 1000.0);
  EXPECT_DOUBLE_EQ(tsdb.increase("t.counter", 0), 0.0);

  tsdb.sample(scalar_snapshot(1007, 6.5), 2);
  EXPECT_EQ(tsdb.stats().points, 2u);
  EXPECT_DOUBLE_EQ(tsdb.value("t.counter"), 1007.0);
  EXPECT_DOUBLE_EQ(tsdb.increase("t.counter", 0), 7.0);
  EXPECT_DOUBLE_EQ(tsdb.increase("t.gauge", 0), 1.5);
}

TEST(Tsdb, RingWraparoundEvictsWithExactAccounting) {
  TsdbOptions opt;
  opt.points_per_series = 4;
  Tsdb tsdb(opt);
  // 10 samples into a 4-point ring: 1 baseline + 9 points pushed, 5 of
  // them evicted (per series).
  for (std::uint64_t t = 1; t <= 10; ++t) {
    tsdb.sample(scalar_snapshot(t * 10, static_cast<double>(t)), t);
  }
  const Tsdb::Stats st = tsdb.stats();
  EXPECT_EQ(st.samples, 10u);
  EXPECT_EQ(st.series, 2u);
  EXPECT_EQ(st.points, 8u);  // 4 retained per series
  EXPECT_EQ(st.evictions, 10u);
  const std::size_t scalar_bytes = sizeof(std::uint64_t) + sizeof(double);
  EXPECT_EQ(st.bytes, 8u * scalar_bytes);

  // Evicted deltas fold into the base, so the latest value stays exact.
  EXPECT_DOUBLE_EQ(tsdb.value("t.counter"), 100.0);
  // Full-retention increase only covers what the ring still holds.
  EXPECT_DOUBLE_EQ(tsdb.increase("t.counter", 0), 4 * 10.0);
  EXPECT_EQ(tsdb.points_in("t.counter", 0), 4u);
  // Trailing-2-ticks window: points at ticks 9 and 10.
  EXPECT_EQ(tsdb.points_in("t.counter", 2), 2u);
  EXPECT_DOUBLE_EQ(tsdb.increase("t.counter", 2), 20.0);
  EXPECT_DOUBLE_EQ(tsdb.rate("t.counter", 2), 10.0);

  const std::vector<double> d = tsdb.deltas("t.counter", 0);
  ASSERT_EQ(d.size(), 4u);
  for (double v : d) EXPECT_DOUBLE_EQ(v, 10.0);
}

TEST(Tsdb, ThirtyDayRunHoldsMemoryCap) {
  // A 30-day wmesh_serve run at 40 s rounds is 64800 ticks; the default
  // ring must hold its exact byte cap while the eviction counters prove
  // the stream kept flowing (ISSUE 9's retention acceptance criterion).
  Tsdb tsdb;  // default 360 points per series
  constexpr std::uint64_t kTicks = 30 * 24 * 3600 / 40;
  for (std::uint64_t t = 1; t <= kTicks; ++t) {
    tsdb.sample(scalar_snapshot(t * 3, static_cast<double>(t % 17)), t);
  }
  const Tsdb::Stats st = tsdb.stats();
  const std::size_t scalar_bytes = sizeof(std::uint64_t) + sizeof(double);
  EXPECT_EQ(st.points, 2u * 360u);
  EXPECT_EQ(st.bytes, 2u * 360u * scalar_bytes);
  EXPECT_EQ(st.evictions, 2u * (kTicks - 1u - 360u));
  EXPECT_DOUBLE_EQ(tsdb.value("t.counter"),
                   static_cast<double>(kTicks * 3));
}

TEST(Tsdb, HistogramQuantileOverTime) {
  Tsdb tsdb;
  // Baseline: 5 observations all <= 1.
  tsdb.sample(hist_snapshot({5, 5, 5}, 5, 5.0), 1);
  // Tick 2: +10 observations in (1, 10].
  tsdb.sample(hist_snapshot({5, 15, 15}, 15, 55.0), 2);
  // Tick 3: +10 observations in (10, 100].
  tsdb.sample(hist_snapshot({5, 15, 25}, 25, 555.0), 3);

  // Full window holds 20 observations: 10 at <=10, 10 at <=100.
  EXPECT_DOUBLE_EQ(tsdb.increase("t.hist", 0), 20.0);
  EXPECT_DOUBLE_EQ(tsdb.quantile_over_time("t.hist", 0.50, 0), 10.0);
  EXPECT_DOUBLE_EQ(tsdb.quantile_over_time("t.hist", 0.95, 0), 100.0);
  // Trailing 1 tick only sees the (10, 100] batch.
  EXPECT_DOUBLE_EQ(tsdb.quantile_over_time("t.hist", 0.50, 1), 100.0);
  // Unknown and non-histogram series report 0.
  EXPECT_DOUBLE_EQ(tsdb.quantile_over_time("t.nope", 0.5, 0), 0.0);
  tsdb.sample(scalar_snapshot(1, 1.0), 4);
  EXPECT_DOUBLE_EQ(tsdb.quantile_over_time("t.counter", 0.5, 0), 0.0);
}

TEST(Tsdb, RenderIsDeltaDerivedAndHandlesUnknown) {
  Tsdb tsdb;
  tsdb.sample(scalar_snapshot(100, 1.0), 1);
  tsdb.sample(scalar_snapshot(110, 2.0), 2);
  const std::string text = tsdb.render("t.counter", 0);
  EXPECT_NE(text.find("== tsdb t.counter =="), std::string::npos);
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("increase"), std::string::npos);
  // Counter scorecards must not leak the absolute (registry-warm) total.
  EXPECT_EQ(text.find("100"), std::string::npos) << text;
  EXPECT_NE(tsdb.render("t.gauge", 0).find("last_value"), std::string::npos);
  EXPECT_NE(tsdb.render("t.missing", 5).find("(no such series)"),
            std::string::npos);
}

TEST(Alerts, ParseDiagnosticsAreFileAndLineExact) {
  std::vector<AlertRule> rules;
  std::string error;

  EXPECT_TRUE(parse_alert_rules(
      "# comment\n"
      "\n"
      "alert hot threshold serve.query_us > 100 for=3\n"
      "alert quiet absent serve.rounds window=7\n"
      "alert burny burn serve.protocol_errors >= 0.5 short=5 long=30\n",
      "rules.txt", &rules, &error))
      << error;
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0].kind, AlertKind::kThreshold);
  EXPECT_EQ(rules[0].for_ticks, 3u);
  EXPECT_EQ(rules[1].kind, AlertKind::kAbsent);
  EXPECT_EQ(rules[1].window, 7u);
  EXPECT_EQ(rules[2].kind, AlertKind::kBurnRate);
  EXPECT_EQ(rules[2].short_window, 5u);
  EXPECT_EQ(rules[2].long_window, 30u);

  struct Bad {
    const char* text;
    const char* want;  // substring of the diagnostic
  };
  const Bad bad[] = {
      {"watch x threshold y > 1\n", "rules.txt:1: expected 'alert'"},
      {"alert x threshold y !> 1\n", "rules.txt:1: bad operator"},
      {"alert x threshold y > nope\n", "rules.txt:1: bad value"},
      {"alert x threshold y > 1 bogus=2\n", "rules.txt:1: unexpected token"},
      {"alert x sideways y > 1\n", "rules.txt:1: unknown rule kind"},
      {"alert x burn y > 1 short=9 long=3\n",
       "rules.txt:1: burn rule wants short < long"},
      {"alert x burn y > 1 short=5\n",
       "rules.txt:1: burn rule needs short"},
      {"alert a threshold y > 1\nalert a threshold z > 2\n",
       "rules.txt:2: duplicate rule name"},
      {"alert x threshold y > 1 for=0\n", "rules.txt:1: bad for="},
  };
  for (const Bad& b : bad) {
    std::vector<AlertRule> out;
    error.clear();
    EXPECT_FALSE(parse_alert_rules(b.text, "rules.txt", &out, &error))
        << b.text;
    EXPECT_NE(error.find(b.want), std::string::npos)
        << "text: " << b.text << "\ngot: " << error;
  }
}

TEST(Alerts, ThresholdStateMachinePendingFiringResolved) {
  std::vector<AlertRule> rules;
  std::string error;
  ASSERT_TRUE(parse_alert_rules("alert hot threshold t.gauge > 10 for=2\n",
                                "r", &rules, &error))
      << error;
  AlertEngine engine(rules);
  Tsdb tsdb;

  std::uint64_t tick = 0;
  auto step = [&](double gauge) {
    Snapshot s;
    s.gauges.push_back({"t.gauge", gauge});
    tsdb.sample(s, ++tick);
    engine.evaluate(tsdb);
    return engine.status()[0];
  };

  EXPECT_EQ(step(5.0).state, AlertState::kInactive);   // baseline
  EXPECT_EQ(step(20.0).state, AlertState::kPending);   // 1 of for=2
  EXPECT_EQ(step(20.0).state, AlertState::kFiring);    // 2 of for=2
  EXPECT_EQ(step(20.0).state, AlertState::kFiring);    // stays firing
  const auto resolved = step(5.0);                     // condition clears
  EXPECT_EQ(resolved.state, AlertState::kInactive);
  EXPECT_EQ(resolved.fired, 1u);
  EXPECT_EQ(resolved.resolved, 1u);

  // Flapping below for=2 never fires: true, false, true, false...
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(step(20.0).state, AlertState::kPending);
    EXPECT_EQ(step(5.0).state, AlertState::kInactive);
  }
  const AlertEngine::Stats st = engine.stats();
  EXPECT_EQ(st.fired, 1u);
  EXPECT_EQ(st.resolved, 1u);
  EXPECT_EQ(st.evaluations, 11u);

  const std::string text = engine.render();
  EXPECT_NE(text.find("== alerts =="), std::string::npos);
  EXPECT_NE(text.find("hot"), std::string::npos);
  EXPECT_NE(text.find("1 fired"), std::string::npos);
}

TEST(Alerts, AbsentFiresWhenSeriesStops) {
  std::vector<AlertRule> rules;
  std::string error;
  ASSERT_TRUE(parse_alert_rules("alert gone absent t.counter window=3\n",
                                "r", &rules, &error))
      << error;
  AlertEngine engine(rules);
  Tsdb tsdb;

  // Unknown series: absent is immediately true.
  Snapshot empty;
  tsdb.sample(empty, 1);
  engine.evaluate(tsdb);
  EXPECT_EQ(engine.status()[0].state, AlertState::kFiring);

  // Series starts reporting: resolves.
  for (std::uint64_t t = 2; t <= 4; ++t) {
    tsdb.sample(scalar_snapshot(t, 0.0), t);
    engine.evaluate(tsdb);
  }
  EXPECT_EQ(engine.status()[0].state, AlertState::kInactive);
  EXPECT_EQ(engine.status()[0].resolved, 1u);

  // Series goes quiet (sampled snapshots no longer carry it): after the
  // 3-tick lookback drains, absent fires again.
  for (std::uint64_t t = 5; t <= 8; ++t) {
    tsdb.sample(empty, t);
    engine.evaluate(tsdb);
  }
  EXPECT_EQ(engine.status()[0].state, AlertState::kFiring);
  EXPECT_EQ(engine.status()[0].fired, 2u);
}

TEST(Alerts, BurnRateNeedsBothWindowsHot) {
  std::vector<AlertRule> rules;
  std::string error;
  ASSERT_TRUE(parse_alert_rules(
      "alert burny burn t.counter >= 1 short=2 long=6\n", "r", &rules,
      &error))
      << error;
  AlertEngine engine(rules);
  Tsdb tsdb;

  std::uint64_t tick = 0;
  std::uint64_t total = 0;
  auto step = [&](std::uint64_t add) {
    total += add;
    tsdb.sample(scalar_snapshot(total, 0.0), ++tick);
    engine.evaluate(tsdb);
    return engine.status()[0].state;
  };

  // Baseline plus a quiet warm-up so the long window covers real history.
  for (int i = 0; i < 7; ++i) EXPECT_EQ(step(0), AlertState::kInactive);
  // A 2-tick blip heats the short window only: must not fire.
  EXPECT_EQ(step(2), AlertState::kInactive);
  EXPECT_EQ(step(2), AlertState::kInactive);
  EXPECT_EQ(step(0), AlertState::kInactive);
  // Sustained errors heat both windows.
  AlertState last = AlertState::kInactive;
  for (int i = 0; i < 8; ++i) last = step(3);
  EXPECT_EQ(last, AlertState::kFiring);
  EXPECT_EQ(engine.status()[0].fired, 1u);
  // Recovery cools the short window first; the rule resolves.
  for (int i = 0; i < 8; ++i) last = step(0);
  EXPECT_EQ(last, AlertState::kInactive);
  EXPECT_EQ(engine.status()[0].resolved, 1u);
}

}  // namespace
}  // namespace wmesh::obs

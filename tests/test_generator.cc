// Tests for sim/generator.h: configuration plumbing and fleet assembly.
#include "sim/generator.h"

#include <gtest/gtest.h>

#include <map>

namespace wmesh {
namespace {

TEST(Generator, SmallConfigShape) {
  const GeneratorConfig c = small_config();
  const Dataset ds = generate_dataset(c);
  // 6 networks, one dual-radio -> 7 traces.
  EXPECT_EQ(ds.networks.size(), 7u);
  std::size_t bg = 0, n = 0;
  for (const auto& nt : ds.networks) {
    (nt.info.standard == Standard::kBg ? bg : n) += 1;
  }
  EXPECT_EQ(bg, 5u);
  EXPECT_EQ(n, 2u);
}

TEST(Generator, PaperScaleUsesTwentyFourHours) {
  EXPECT_DOUBLE_EQ(paper_scale_config().probes.duration_s, 24 * 3600.0);
  EXPECT_DOUBLE_EQ(default_config().probes.duration_s, 4 * 3600.0);
}

TEST(Generator, ZeroDurationYieldsClientsOnly) {
  GeneratorConfig c = small_config();
  c.probes.duration_s = 0.0;
  const Dataset ds = generate_dataset(c);
  std::size_t probe_sets = 0, client_samples = 0;
  for (const auto& nt : ds.networks) {
    probe_sets += nt.probe_sets.size();
    client_samples += nt.client_samples.size();
  }
  EXPECT_EQ(probe_sets, 0u);
  EXPECT_GT(client_samples, 0u);
}

TEST(Generator, DisablingClients) {
  GeneratorConfig c = small_config();
  c.probes.duration_s = 600.0;
  c.generate_clients = false;
  const Dataset ds = generate_dataset(c);
  for (const auto& nt : ds.networks) {
    EXPECT_TRUE(nt.client_samples.empty());
  }
}

TEST(Generator, DualRadioTracesShareTopology) {
  GeneratorConfig c = small_config();
  c.probes.duration_s = 600.0;
  const Dataset ds = generate_dataset(c);
  std::map<std::uint32_t, std::vector<const NetworkTrace*>> by_id;
  for (const auto& nt : ds.networks) by_id[nt.info.id].push_back(&nt);
  bool saw_dual = false;
  for (const auto& [id, traces] : by_id) {
    (void)id;
    if (traces.size() < 2) continue;
    saw_dual = true;
    EXPECT_EQ(traces[0]->ap_count, traces[1]->ap_count);
    EXPECT_EQ(traces[0]->info.env, traces[1]->info.env);
    EXPECT_NE(traces[0]->info.standard, traces[1]->info.standard);
  }
  EXPECT_TRUE(saw_dual);
}

TEST(Generator, EnvironmentSelectsChannelParams) {
  // Outdoor networks use the gentler path loss: their mean probe-set SNR at
  // a given nominal spacing is systematically different.  Just assert both
  // environments generate data.
  GeneratorConfig c = small_config();
  c.probes.duration_s = 1200.0;
  const Dataset ds = generate_dataset(c);
  bool indoor = false, outdoor = false;
  for (const auto& nt : ds.networks) {
    if (nt.probe_sets.empty()) continue;
    indoor = indoor || nt.info.env == Environment::kIndoor;
    outdoor = outdoor || nt.info.env == Environment::kOutdoor;
  }
  EXPECT_TRUE(indoor);
  EXPECT_TRUE(outdoor);
}

TEST(Generator, TraceProbeSetsSortedByTime) {
  GeneratorConfig c = small_config();
  c.probes.duration_s = 1500.0;
  const Dataset ds = generate_dataset(c);
  for (const auto& nt : ds.networks) {
    for (std::size_t i = 1; i < nt.probe_sets.size(); ++i) {
      EXPECT_LE(nt.probe_sets[i - 1].time_s, nt.probe_sets[i].time_s);
    }
  }
}

TEST(Generator, ClientSamplesSortedByClientBucket) {
  GeneratorConfig c = small_config();
  c.probes.duration_s = 0.0;
  const Dataset ds = generate_dataset(c);
  for (const auto& nt : ds.networks) {
    for (std::size_t i = 1; i < nt.client_samples.size(); ++i) {
      const auto& a = nt.client_samples[i - 1];
      const auto& b = nt.client_samples[i];
      EXPECT_TRUE(a.client < b.client ||
                  (a.client == b.client && a.bucket < b.bucket));
    }
  }
}

}  // namespace
}  // namespace wmesh

// Unit tests for util/csv.h: splitting, writing, reading, round trips.
#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace wmesh {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SplitCsvLine, Basic) {
  const auto f = split_csv_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[2], "c");
}

TEST(SplitCsvLine, EmptyFields) {
  const auto f = split_csv_line(",x,");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "");
  EXPECT_EQ(f[1], "x");
  EXPECT_EQ(f[2], "");
}

TEST(SplitCsvLine, SingleField) {
  const auto f = split_csv_line("lonely");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "lonely");
}

TEST(SplitCsvLine, EmptyLine) {
  const auto f = split_csv_line("");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "");
}

TEST(CsvWriter, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), std::runtime_error);
}

TEST(CsvRoundTrip, HeaderRowsAndComments) {
  const std::string path = temp_path("wmesh_csv_test.csv");
  {
    CsvWriter w(path);
    w.comment("a comment line");
    w.row({"col1", "col2", "col3"});
    w.row({"1", "2", "3"});
    w.raw_line("4,5,6");
    w.comment("trailing comment");
    EXPECT_TRUE(w.ok());
  }
  CsvReader r;
  ASSERT_TRUE(r.load(path));
  ASSERT_EQ(r.header().size(), 3u);
  EXPECT_EQ(r.header()[1], "col2");
  ASSERT_EQ(r.rows().size(), 2u);
  EXPECT_EQ(r.rows()[0][0], "1");
  EXPECT_EQ(r.rows()[1][2], "6");
  EXPECT_EQ(r.column("col3"), 2);
  EXPECT_EQ(r.column("absent"), -1);
  std::remove(path.c_str());
}

TEST(CsvReader, MissingFileFails) {
  CsvReader r;
  EXPECT_FALSE(r.load("/nonexistent-dir-xyz/none.csv"));
}

TEST(CsvReader, EmptyFileFails) {
  const std::string path = temp_path("wmesh_csv_empty.csv");
  { std::ofstream out(path); }
  CsvReader r;
  EXPECT_FALSE(r.load(path));  // no header row
  std::remove(path.c_str());
}

TEST(CsvReader, SkipsBlankAndCommentLines) {
  const std::string path = temp_path("wmesh_csv_blank.csv");
  {
    std::ofstream out(path);
    out << "# leading comment\n\nh1,h2\n\n# mid comment\nv1,v2\n";
  }
  CsvReader r;
  ASSERT_TRUE(r.load(path));
  EXPECT_EQ(r.header()[0], "h1");
  ASSERT_EQ(r.rows().size(), 1u);
  EXPECT_EQ(r.rows()[0][1], "v2");
  std::remove(path.c_str());
}

TEST(CsvReader, HandlesCrLf) {
  const std::string path = temp_path("wmesh_csv_crlf.csv");
  {
    std::ofstream out(path, std::ios::binary);
    out << "a,b\r\n1,2\r\n";
  }
  CsvReader r;
  ASSERT_TRUE(r.load(path));
  EXPECT_EQ(r.header()[1], "b");
  EXPECT_EQ(r.rows()[0][1], "2");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// RFC-4180 quoting: csv_escape_field + parse_csv_text
// ---------------------------------------------------------------------------

TEST(CsvEscapeField, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape_field("plain"), "plain");
  EXPECT_EQ(csv_escape_field(""), "");
  EXPECT_EQ(csv_escape_field("with space"), "with space");
  EXPECT_EQ(csv_escape_field("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape_field("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape_field("line1\nline2"), "\"line1\nline2\"");
  EXPECT_EQ(csv_escape_field("cr\rhere"), "\"cr\rhere\"");
}

TEST(ParseCsvText, QuotedFieldsWithCommasQuotesAndNewlines) {
  const auto rows = parse_csv_text(
      "a,\"b,with,commas\",c\n"
      "\"say \"\"hi\"\"\",\"multi\nline\",tail\n");
  ASSERT_EQ(rows.size(), 2u);
  ASSERT_EQ(rows[0].size(), 3u);
  EXPECT_EQ(rows[0][1], "b,with,commas");
  ASSERT_EQ(rows[1].size(), 3u);
  EXPECT_EQ(rows[1][0], "say \"hi\"");
  EXPECT_EQ(rows[1][1], "multi\nline");
  EXPECT_EQ(rows[1][2], "tail");
}

TEST(ParseCsvText, TrailingNewlineDoesNotAddAnEmptyRow) {
  EXPECT_EQ(parse_csv_text("a,b\n").size(), 1u);
  EXPECT_EQ(parse_csv_text("a,b").size(), 1u);
  EXPECT_EQ(parse_csv_text("").size(), 0u);
  // But a genuinely empty field at end-of-row survives.
  const auto rows = parse_csv_text("a,\n");
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 2u);
  EXPECT_EQ(rows[0][1], "");
}

TEST(ParseCsvText, CrLfLineEndings) {
  const auto rows = parse_csv_text("a,b\r\n1,\"x\r\ny\"\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "1");
  // Inside quotes the CRLF is data (CR preserved only as written by the
  // escaper; the parser keeps quoted bytes verbatim minus the CR swallow
  // rule applying to row boundaries only).
  EXPECT_EQ(rows[1][1], "x\r\ny");
}

TEST(CsvEscapeRoundTrip, EveryAwkwardShapeSurvives) {
  const std::vector<std::string> fields = {
      "plain", "", "a,b", "\"", "\"\"", "q\"mid", "nl\nnl", "\r", "end,"};
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) line += ',';
    line += csv_escape_field(fields[i]);
  }
  line += '\n';
  const auto rows = parse_csv_text(line);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), fields.size());
  for (std::size_t i = 0; i < fields.size(); ++i) {
    EXPECT_EQ(rows[0][i], fields[i]) << "field " << i;
  }
}

}  // namespace
}  // namespace wmesh

// Unit tests for util/csv.h: splitting, writing, reading, round trips.
#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace wmesh {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SplitCsvLine, Basic) {
  const auto f = split_csv_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[2], "c");
}

TEST(SplitCsvLine, EmptyFields) {
  const auto f = split_csv_line(",x,");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "");
  EXPECT_EQ(f[1], "x");
  EXPECT_EQ(f[2], "");
}

TEST(SplitCsvLine, SingleField) {
  const auto f = split_csv_line("lonely");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "lonely");
}

TEST(SplitCsvLine, EmptyLine) {
  const auto f = split_csv_line("");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "");
}

TEST(CsvWriter, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), std::runtime_error);
}

TEST(CsvRoundTrip, HeaderRowsAndComments) {
  const std::string path = temp_path("wmesh_csv_test.csv");
  {
    CsvWriter w(path);
    w.comment("a comment line");
    w.row({"col1", "col2", "col3"});
    w.row({"1", "2", "3"});
    w.raw_line("4,5,6");
    w.comment("trailing comment");
    EXPECT_TRUE(w.ok());
  }
  CsvReader r;
  ASSERT_TRUE(r.load(path));
  ASSERT_EQ(r.header().size(), 3u);
  EXPECT_EQ(r.header()[1], "col2");
  ASSERT_EQ(r.rows().size(), 2u);
  EXPECT_EQ(r.rows()[0][0], "1");
  EXPECT_EQ(r.rows()[1][2], "6");
  EXPECT_EQ(r.column("col3"), 2);
  EXPECT_EQ(r.column("absent"), -1);
  std::remove(path.c_str());
}

TEST(CsvReader, MissingFileFails) {
  CsvReader r;
  EXPECT_FALSE(r.load("/nonexistent-dir-xyz/none.csv"));
}

TEST(CsvReader, EmptyFileFails) {
  const std::string path = temp_path("wmesh_csv_empty.csv");
  { std::ofstream out(path); }
  CsvReader r;
  EXPECT_FALSE(r.load(path));  // no header row
  std::remove(path.c_str());
}

TEST(CsvReader, SkipsBlankAndCommentLines) {
  const std::string path = temp_path("wmesh_csv_blank.csv");
  {
    std::ofstream out(path);
    out << "# leading comment\n\nh1,h2\n\n# mid comment\nv1,v2\n";
  }
  CsvReader r;
  ASSERT_TRUE(r.load(path));
  EXPECT_EQ(r.header()[0], "h1");
  ASSERT_EQ(r.rows().size(), 1u);
  EXPECT_EQ(r.rows()[0][1], "v2");
  std::remove(path.c_str());
}

TEST(CsvReader, HandlesCrLf) {
  const std::string path = temp_path("wmesh_csv_crlf.csv");
  {
    std::ofstream out(path, std::ios::binary);
    out << "a,b\r\n1,2\r\n";
  }
  CsvReader r;
  ASSERT_TRUE(r.load(path));
  EXPECT_EQ(r.header()[1], "b");
  EXPECT_EQ(r.rows()[0][1], "2");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wmesh

// Unit tests for sim/channel.h: link construction, fading, interference.
#include "sim/channel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "mesh/topology.h"
#include "util/stats.h"

namespace wmesh {
namespace {

MeshNetwork line_network(std::size_t n, double spacing) {
  std::vector<Ap> aps;
  for (std::size_t i = 0; i < n; ++i) {
    aps.push_back({static_cast<ApId>(i), spacing * static_cast<double>(i), 0.0});
  }
  NetworkInfo info;
  info.id = 1;
  return MeshNetwork(info, aps);
}

TEST(Channel, BuildsBothDirectionsForAudiblePairs) {
  Rng rng(1);
  const auto net = line_network(3, 40.0);
  ChannelModel chan(net, Standard::kBg, indoor_channel_params(), 3600.0, rng);
  std::map<std::pair<ApId, ApId>, int> seen;
  for (const auto& l : chan.links()) seen[{l.from, l.to}]++;
  // Adjacent pairs at 40 m are far above the silent floor.
  EXPECT_EQ((seen[{0, 1}]), 1);
  EXPECT_EQ((seen[{1, 0}]), 1);
  EXPECT_EQ((seen[{1, 2}]), 1);
  EXPECT_EQ((seen[{2, 1}]), 1);
}

TEST(Channel, SilentFloorPrunesFarPairs) {
  Rng rng(2);
  const auto net = line_network(2, 5000.0);  // 5 km apart
  ChannelModel chan(net, Standard::kBg, indoor_channel_params(), 3600.0, rng);
  EXPECT_TRUE(chan.links().empty());
}

TEST(Channel, StaticSnrFollowsPathLoss) {
  // With shadowing and offsets disabled, static SNR equals the log-distance
  // formula exactly.
  ChannelParams p = indoor_channel_params();
  p.shadow_sigma_db = 0.0;
  p.dir_offset_sigma_db = 0.0;
  Rng rng(3);
  const auto net = line_network(2, 50.0);
  ChannelModel chan(net, Standard::kBg, p, 3600.0, rng);
  ASSERT_EQ(chan.links().size(), 2u);
  const double expected =
      p.snr_ref_db - 10.0 * p.pathloss_exp * std::log10(50.0 / p.ref_m);
  EXPECT_NEAR(chan.links()[0].static_snr_db, expected, 1e-9);
  EXPECT_NEAR(chan.links()[1].static_snr_db, expected, 1e-9);
}

TEST(Channel, DirectionsShareShadowingButDifferByOffset) {
  ChannelParams p = indoor_channel_params();
  p.dir_offset_sigma_db = 0.0;
  Rng rng(4);
  const auto net = line_network(2, 50.0);
  ChannelModel chan(net, Standard::kBg, p, 3600.0, rng);
  ASSERT_EQ(chan.links().size(), 2u);
  // Without directional offsets the two directions are identical.
  EXPECT_DOUBLE_EQ(chan.links()[0].static_snr_db,
                   chan.links()[1].static_snr_db);
}

TEST(Channel, RateOffsetsSharedWithinModulationFamily) {
  ChannelParams p = indoor_channel_params();
  p.rate_jitter_sigma_db = 0.0;  // isolate the family offset
  Rng rng(5);
  const auto net = line_network(2, 50.0);
  ChannelModel chan(net, Standard::kBg, p, 3600.0, rng);
  const auto& lc = chan.links()[0];
  const auto rates = probed_rates(Standard::kBg);
  // 1M (DSSS) and 11M (CCK) share the spread-spectrum family offset.
  const int i1 = find_rate(Standard::kBg, 1'000);
  const int i11 = find_rate(Standard::kBg, 11'000);
  const int i6 = find_rate(Standard::kBg, 6'000);
  const int i48 = find_rate(Standard::kBg, 48'000);
  EXPECT_DOUBLE_EQ(lc.rate_offset_db[static_cast<std::size_t>(i1)],
                   lc.rate_offset_db[static_cast<std::size_t>(i11)]);
  EXPECT_DOUBLE_EQ(lc.rate_offset_db[static_cast<std::size_t>(i6)],
                   lc.rate_offset_db[static_cast<std::size_t>(i48)]);
  ASSERT_EQ(lc.rate_offset_db.size(), rates.size());
}

TEST(Channel, SlowFadingIsStationary) {
  // After many OU steps the per-link slow state must keep its stationary
  // standard deviation (no drift, no collapse).
  ChannelParams p = indoor_channel_params();
  p.disturbed_link_prob = 0.0;
  Rng rng(6);
  const auto net = line_network(2, 40.0);
  ChannelModel chan(net, Standard::kBg, p, 3600.0, rng);
  RunningStats s;
  // Steps of one correlation time keep successive samples nearly
  // independent, so the usual sqrt-n error bars apply.
  for (int i = 0; i < 20000; ++i) {
    chan.advance_slow_fading(p.slow_tau_s, rng);
    s.add(chan.links()[0].slow_db);
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.1);
  EXPECT_NEAR(s.stddev(), p.slow_sigma_db, 0.1);
}

TEST(Channel, DisturbedLinksGetLargerSigma) {
  ChannelParams p = indoor_channel_params();
  p.disturbed_link_prob = 1.0;
  Rng rng(7);
  const auto net = line_network(2, 40.0);
  ChannelModel chan(net, Standard::kBg, p, 3600.0, rng);
  for (const auto& l : chan.links()) {
    EXPECT_DOUBLE_EQ(l.slow_sigma_db,
                     p.slow_sigma_db * p.disturbed_slow_multiplier);
  }
}

TEST(Channel, InterferenceIsNonNegativeAndEpisodic) {
  ChannelParams p = indoor_channel_params();
  p.interference_rate_hz = 1.0 / 600.0;  // frequent bursts for the test
  Rng rng(8);
  const auto net = line_network(2, 40.0);
  ChannelModel chan(net, Standard::kBg, p, 24 * 3600.0, rng);
  int active = 0, total = 0;
  for (double t = 0.0; t < 24 * 3600.0; t += 60.0) {
    const double d = chan.interference_db(0, t);
    EXPECT_GE(d, 0.0);
    ++total;
    active += (d > 0.0) ? 1 : 0;
  }
  EXPECT_GT(active, 0);
  EXPECT_LT(active, total);  // bursts must not cover the whole trace
}

TEST(Channel, MeanDeliveryDecreasesWithRateThreshold) {
  // For a mid-SNR link, delivery at 1M must exceed delivery at 48M.
  ChannelParams p = indoor_channel_params();
  p.shadow_sigma_db = 0.0;
  p.link_offset_sigma_db = 0.0;
  p.mod_offset_sigma_db = 0.0;
  p.rate_jitter_sigma_db = 0.0;
  p.dir_offset_sigma_db = 0.0;
  Rng rng(9);
  const auto net = line_network(2, 55.0);
  ChannelModel chan(net, Standard::kBg, p, 3600.0, rng);
  ASSERT_FALSE(chan.links().empty());
  const double p1 = chan.mean_delivery(0, 0);
  const double p48 = chan.mean_delivery(0, 6);
  EXPECT_GT(p1, p48);
  EXPECT_GT(p1, 0.5);
}

TEST(Channel, SampleProbeDeterministicGivenRng) {
  Rng build_a(10), build_b(10);
  const auto net = line_network(3, 45.0);
  ChannelModel a(net, Standard::kBg, indoor_channel_params(), 3600.0, build_a);
  ChannelModel b(net, Standard::kBg, indoor_channel_params(), 3600.0, build_b);
  Rng sample_a(77), sample_b(77);
  for (int i = 0; i < 200; ++i) {
    const auto oa = a.sample_probe(0, 0, 40.0 * i, sample_a);
    const auto ob = b.sample_probe(0, 0, 40.0 * i, sample_b);
    EXPECT_EQ(oa.delivered, ob.delivered);
    EXPECT_FLOAT_EQ(oa.reported_snr_db, ob.reported_snr_db);
  }
}

TEST(Channel, ReportedSnrTracksStaticSnr) {
  ChannelParams p = indoor_channel_params();
  Rng rng(11);
  const auto net = line_network(2, 30.0);
  ChannelModel chan(net, Standard::kBg, p, 3600.0, rng);
  RunningStats s;
  Rng sample(12);
  for (int i = 0; i < 2000; ++i) {
    s.add(chan.sample_probe(0, 0, 40.0 * i, sample).reported_snr_db);
  }
  // Slow fading is never advanced here, so its initial draw is a constant
  // part of every reported SNR.
  EXPECT_NEAR(s.mean(),
              chan.links()[0].static_snr_db + chan.links()[0].slow_db, 0.5);
}

}  // namespace
}  // namespace wmesh

// Unit and behavioural tests for rateadapt/ (policies + arena).
#include "rateadapt/arena.h"
#include "rateadapt/protocol.h"

#include <gtest/gtest.h>

#include <cmath>

namespace wmesh {
namespace {

TEST(FixedRate, AlwaysSameRate) {
  auto p = make_fixed_rate_policy(Standard::kBg, 4);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(p->choose_rate(20.0), 4);
    p->on_result(4, i % 2 == 0, 20.0);
  }
  EXPECT_EQ(p->name(), "fixed-24M");
}

TEST(SnrThreshold, MonotoneInSnr) {
  auto p = make_snr_threshold_policy(Standard::kBg, 2.0);
  RateIndex prev = 0;
  for (double snr = -5.0; snr <= 40.0; snr += 1.0) {
    const RateIndex r = p->choose_rate(snr);
    // Rates are indexed in increasing nominal speed except 6M/11M ordering;
    // check nominal throughput monotonicity instead.
    EXPECT_GE(rate_mbps(Standard::kBg, r) + 6.0,
              rate_mbps(Standard::kBg, prev))
        << "snr " << snr;
    prev = r;
  }
}

TEST(SnrThreshold, RespectsMargin) {
  auto tight = make_snr_threshold_policy(Standard::kBg, 0.0);
  auto loose = make_snr_threshold_policy(Standard::kBg, 8.0);
  for (double snr : {10.0, 15.0, 20.0, 25.0}) {
    EXPECT_GE(rate_mbps(Standard::kBg, tight->choose_rate(snr)),
              rate_mbps(Standard::kBg, loose->choose_rate(snr)));
  }
}

TEST(SnrThreshold, NanFallsBackToRobustRate) {
  auto p = make_snr_threshold_policy(Standard::kBg);
  EXPECT_EQ(p->choose_rate(std::nan("")), 0);
}

TEST(SampleRate, ConvergesToReliableFastRate) {
  // Feed deterministic feedback: 24M (idx 4) always succeeds, everything
  // faster always fails, slower rates succeed.  SampleRate must settle on
  // 24M for its non-probe frames.
  auto p = make_sample_rate_policy(Standard::kBg, {.ewma_alpha = 0.3,
                                                   .probe_fraction = 0.1});
  for (int i = 0; i < 300; ++i) {
    const RateIndex r = p->choose_rate(20.0);
    p->on_result(r, r <= 4, 20.0);
  }
  int picks_24 = 0, frames = 0;
  for (int i = 0; i < 100; ++i) {
    const RateIndex r = p->choose_rate(20.0);
    p->on_result(r, r <= 4, 20.0);
    ++frames;
    picks_24 += (r == 4) ? 1 : 0;
  }
  EXPECT_GE(picks_24, 80);  // all but the probing frames
}

TEST(SampleRate, ProbesEveryRateEventually) {
  auto p = make_sample_rate_policy(Standard::kBg, {.ewma_alpha = 0.1,
                                                   .probe_fraction = 0.2});
  std::vector<bool> seen(rate_count(Standard::kBg), false);
  for (int i = 0; i < 200; ++i) {
    const RateIndex r = p->choose_rate(15.0);
    seen[r] = true;
    p->on_result(r, true, 15.0);
  }
  for (std::size_t r = 0; r < seen.size(); ++r) {
    EXPECT_TRUE(seen[r]) << "rate " << r << " never tried";
  }
}

TEST(TrainedTable, BootstrapsFromThresholdsOnFreshSnr) {
  auto table = make_trained_table_policy(Standard::kBg);
  auto thresh = make_snr_threshold_policy(Standard::kBg, 2.0);
  for (double snr : {5.0, 12.0, 25.0}) {
    EXPECT_EQ(table->choose_rate(snr), thresh->choose_rate(snr))
        << "snr " << snr;
    // Note: no on_result yet, so the cell stays unseen.
  }
}

TEST(TrainedTable, LearnsPerSnrBest) {
  auto p = make_trained_table_policy(Standard::kBg, {.k_best = 2,
                                                     .probe_fraction = 0.1,
                                                     .ewma_alpha = 0.3});
  // At 18 dB, pretend only 11M (idx 2) ever succeeds.
  for (int i = 0; i < 200; ++i) {
    const RateIndex r = p->choose_rate(18.0);
    p->on_result(r, r == 2, 18.0);
  }
  int picks_11 = 0;
  for (int i = 0; i < 100; ++i) {
    const RateIndex r = p->choose_rate(18.0);
    p->on_result(r, r == 2, 18.0);
    picks_11 += (r == 2) ? 1 : 0;
  }
  EXPECT_GE(picks_11, 75);
}

TEST(TrainedTable, CellsAreIndependentPerSnr) {
  auto p = make_trained_table_policy(Standard::kBg, {.k_best = 2,
                                                     .probe_fraction = 0.0,
                                                     .ewma_alpha = 0.5});
  // Train 10 dB -> 1M works; 30 dB -> 48M works.
  for (int i = 0; i < 100; ++i) {
    RateIndex r = p->choose_rate(10.0);
    p->on_result(r, r == 0, 10.0);
    r = p->choose_rate(30.0);
    p->on_result(r, r == 6, 30.0);
  }
  EXPECT_EQ(p->choose_rate(10.0), 0);
  EXPECT_EQ(p->choose_rate(30.0), 6);
}

TEST(Arena, PoliciesFaceIdenticalOracle) {
  ArenaParams params;
  params.duration_s = 600.0;
  params.seed = 11;
  auto a = make_fixed_rate_policy(Standard::kBg, 0);
  auto b = make_snr_threshold_policy(Standard::kBg);
  const auto ra = run_arena(*a, params);
  const auto rb = run_arena(*b, params);
  EXPECT_EQ(ra.frames, rb.frames);
  EXPECT_DOUBLE_EQ(ra.oracle_throughput_mbps, rb.oracle_throughput_mbps);
}

TEST(Arena, OracleBoundsEveryPolicy) {
  ArenaParams params;
  params.duration_s = 1200.0;
  params.seed = 5;
  std::vector<std::unique_ptr<RatePolicy>> policies;
  policies.push_back(make_fixed_rate_policy(Standard::kBg, 2));
  policies.push_back(make_snr_threshold_policy(Standard::kBg));
  policies.push_back(make_sample_rate_policy(Standard::kBg));
  policies.push_back(make_trained_table_policy(Standard::kBg));
  for (const auto& res : run_arena_all(policies, params)) {
    EXPECT_GT(res.frames, 0u) << res.policy;
    EXPECT_LE(res.mean_throughput_mbps, res.oracle_throughput_mbps + 1e-9)
        << res.policy;
    EXPECT_GE(res.fraction_of_oracle, 0.0);
    EXPECT_LE(res.fraction_of_oracle, 1.0 + 1e-9);
  }
}

TEST(Arena, AdaptationBeatsWorstFixedRate) {
  // On a mid-SNR link, a learning policy must beat pinning the link to
  // 48M (which mostly fails) over a long run.
  ArenaParams params;
  params.duration_s = 3 * 3600.0;
  params.link_distance_m = 55.0;
  params.seed = 21;
  auto fixed48 = make_fixed_rate_policy(Standard::kBg, 6);
  auto learner = make_trained_table_policy(Standard::kBg);
  const auto rf = run_arena(*fixed48, params);
  const auto rl = run_arena(*learner, params);
  EXPECT_GT(rl.mean_throughput_mbps, rf.mean_throughput_mbps);
}

TEST(Arena, SilentLinkYieldsEmptyResult) {
  ArenaParams params;
  params.link_distance_m = 5000.0;
  auto p = make_snr_threshold_policy(Standard::kBg);
  const auto r = run_arena(*p, params);
  EXPECT_EQ(r.frames, 0u);
}

TEST(Arena, DeterministicAcrossRuns) {
  ArenaParams params;
  params.duration_s = 900.0;
  params.seed = 33;
  auto p1 = make_sample_rate_policy(Standard::kBg);
  auto p2 = make_sample_rate_policy(Standard::kBg);
  const auto r1 = run_arena(*p1, params);
  const auto r2 = run_arena(*p2, params);
  EXPECT_DOUBLE_EQ(r1.mean_throughput_mbps, r2.mean_throughput_mbps);
  EXPECT_EQ(r1.delivered, r2.delivered);
}

}  // namespace
}  // namespace wmesh

#include "util/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace wmesh {
namespace {

TEST(EnvParse, U64Valid) {
  EXPECT_EQ(env::parse_u64("0"), 0u);
  EXPECT_EQ(env::parse_u64("42"), 42u);
  EXPECT_EQ(env::parse_u64("18446744073709551615"),
            18446744073709551615ull);
}

TEST(EnvParse, U64Garbage) {
  EXPECT_FALSE(env::parse_u64(""));
  EXPECT_FALSE(env::parse_u64("banana"));
  EXPECT_FALSE(env::parse_u64("12x"));
  EXPECT_FALSE(env::parse_u64("-3"));
  EXPECT_FALSE(env::parse_u64("4.5"));
  EXPECT_FALSE(env::parse_u64(" 7"));
  EXPECT_FALSE(env::parse_u64("7 "));
  // Overflow must not wrap silently.
  EXPECT_FALSE(env::parse_u64("99999999999999999999999"));
}

TEST(EnvParse, DoubleValid) {
  EXPECT_DOUBLE_EQ(*env::parse_double("4"), 4.0);
  EXPECT_DOUBLE_EQ(*env::parse_double("0.5"), 0.5);
  EXPECT_DOUBLE_EQ(*env::parse_double("-2.25"), -2.25);
  EXPECT_DOUBLE_EQ(*env::parse_double("1e3"), 1000.0);
}

TEST(EnvParse, DoubleGarbage) {
  EXPECT_FALSE(env::parse_double(""));
  EXPECT_FALSE(env::parse_double("four"));
  EXPECT_FALSE(env::parse_double("4h"));
  EXPECT_FALSE(env::parse_double("4.5.6"));
  EXPECT_FALSE(env::parse_double(" 4"));
}

TEST(EnvParse, Bool) {
  EXPECT_EQ(env::parse_bool("1"), true);
  EXPECT_EQ(env::parse_bool("true"), true);
  EXPECT_EQ(env::parse_bool("on"), true);
  EXPECT_EQ(env::parse_bool("0"), false);
  EXPECT_EQ(env::parse_bool("no"), false);
  EXPECT_FALSE(env::parse_bool(""));
  EXPECT_FALSE(env::parse_bool("TRUE"));
  EXPECT_FALSE(env::parse_bool("2"));
}

TEST(EnvAccessors, UnsetUsesFallback) {
  ::unsetenv("WMESH_TEST_ENV_VAR");
  EXPECT_EQ(env::u64_or("WMESH_TEST_ENV_VAR", 7), 7u);
  EXPECT_DOUBLE_EQ(env::double_or("WMESH_TEST_ENV_VAR", 1.5), 1.5);
  EXPECT_EQ(env::bool_or("WMESH_TEST_ENV_VAR", true), true);
  EXPECT_EQ(env::string_or("WMESH_TEST_ENV_VAR", "dflt"), "dflt");
  EXPECT_FALSE(env::is_set("WMESH_TEST_ENV_VAR"));
}

TEST(EnvAccessors, ValidValueParsed) {
  ::setenv("WMESH_TEST_ENV_VAR", "123", 1);
  EXPECT_EQ(env::u64_or("WMESH_TEST_ENV_VAR", 7), 123u);
  EXPECT_DOUBLE_EQ(env::double_or("WMESH_TEST_ENV_VAR", 1.5), 123.0);
  EXPECT_TRUE(env::is_set("WMESH_TEST_ENV_VAR"));
  ::unsetenv("WMESH_TEST_ENV_VAR");
}

TEST(EnvAccessors, GarbageRejectedToFallback) {
  ::setenv("WMESH_TEST_ENV_VAR", "banana", 1);
  EXPECT_EQ(env::u64_or("WMESH_TEST_ENV_VAR", 7), 7u);
  EXPECT_DOUBLE_EQ(env::double_or("WMESH_TEST_ENV_VAR", 1.5), 1.5);
  EXPECT_EQ(env::bool_or("WMESH_TEST_ENV_VAR", false), false);
  // string_or has no parse step; raw value passes through.
  EXPECT_EQ(env::string_or("WMESH_TEST_ENV_VAR", "dflt"), "banana");
  ::unsetenv("WMESH_TEST_ENV_VAR");
}

}  // namespace
}  // namespace wmesh

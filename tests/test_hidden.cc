// Unit tests for core/hidden.h: hearing graphs, triples, range.
#include "core/hidden.h"

#include <gtest/gtest.h>

namespace wmesh {
namespace {

SuccessMatrix sym(std::size_t n,
                  std::initializer_list<std::tuple<ApId, ApId, double>> links) {
  SuccessMatrix m(n);
  for (const auto& [a, b, p] : links) {
    m.set(a, b, p);
    m.set(b, a, p);
  }
  return m;
}

TEST(HearingGraph, ThresholdOnMeanOfDirections) {
  SuccessMatrix m(2);
  m.set(0, 1, 0.15);
  m.set(1, 0, 0.03);  // mean .09, below a 10% threshold
  HearingGraph g(m, 0.10);
  EXPECT_FALSE(g.hears(0, 1));
  m.set(1, 0, 0.09);  // mean .12
  HearingGraph g2(m, 0.10);
  EXPECT_TRUE(g2.hears(0, 1));
  EXPECT_TRUE(g2.hears(1, 0));  // symmetric
}

TEST(HearingGraph, StrictlyGreaterThanThreshold) {
  SuccessMatrix m(2);
  m.set(0, 1, 0.10);
  m.set(1, 0, 0.10);
  HearingGraph g(m, 0.10);
  EXPECT_FALSE(g.hears(0, 1));  // "more than t percent"
}

TEST(HearingGraph, RangeCountsUnorderedPairs) {
  const auto m = sym(4, {{0, 1, 0.9}, {1, 2, 0.9}, {0, 2, 0.9}});
  HearingGraph g(m, 0.10);
  EXPECT_EQ(g.range_pairs(), 3u);  // the triangle; node 3 isolated
}

TEST(CountTriples, HiddenLine) {
  // 0 -- 1 -- 2 with no 0--2 link: one relevant triple, hidden.
  const auto m = sym(3, {{0, 1, 0.9}, {1, 2, 0.9}});
  const auto c = count_triples(HearingGraph(m, 0.10));
  EXPECT_EQ(c.relevant, 1u);
  EXPECT_EQ(c.hidden, 1u);
  EXPECT_DOUBLE_EQ(c.hidden_fraction(), 1.0);
}

TEST(CountTriples, TriangleNotHidden) {
  const auto m = sym(3, {{0, 1, 0.9}, {1, 2, 0.9}, {0, 2, 0.9}});
  const auto c = count_triples(HearingGraph(m, 0.10));
  // Each of the three nodes centres one relevant triple; none hidden.
  EXPECT_EQ(c.relevant, 3u);
  EXPECT_EQ(c.hidden, 0u);
  EXPECT_DOUBLE_EQ(c.hidden_fraction(), 0.0);
}

TEST(CountTriples, StarIsAllHidden) {
  // Hub 0 heard by 1,2,3 which cannot hear each other: C(3,2)=3 relevant,
  // all hidden.
  const auto m = sym(4, {{0, 1, 0.9}, {0, 2, 0.9}, {0, 3, 0.9}});
  const auto c = count_triples(HearingGraph(m, 0.10));
  EXPECT_EQ(c.relevant, 3u);
  EXPECT_EQ(c.hidden, 3u);
}

TEST(CountTriples, EmptyGraph) {
  const auto m = sym(3, {});
  const auto c = count_triples(HearingGraph(m, 0.10));
  EXPECT_EQ(c.relevant, 0u);
  EXPECT_DOUBLE_EQ(c.hidden_fraction(), 0.0);
}

NetworkTrace trace_with_matrix(const SuccessMatrix& m, RateIndex rate,
                               Standard std = Standard::kBg,
                               Environment env = Environment::kIndoor) {
  NetworkTrace nt;
  nt.info.standard = std;
  nt.info.env = env;
  nt.ap_count = static_cast<std::uint16_t>(m.ap_count());
  for (ApId f = 0; f < m.ap_count(); ++f) {
    for (ApId t = 0; t < m.ap_count(); ++t) {
      if (f == t || m.at(f, t) <= 0.0) continue;
      ProbeSet s;
      s.from = f;
      s.to = t;
      s.time_s = 300;
      s.snr_db = 10.0f;
      s.entries.push_back(
          {rate, static_cast<float>(1.0 - m.at(f, t)), 10.0f});
      nt.probe_sets.push_back(std::move(s));
    }
  }
  return nt;
}

TEST(HiddenTriplesPerNetwork, ComputesFractions) {
  Dataset ds;
  // Network A: line (fraction 1), network B: triangle (fraction 0).
  ds.networks.push_back(
      trace_with_matrix(sym(3, {{0, 1, 0.9}, {1, 2, 0.9}}), 0));
  ds.networks.push_back(trace_with_matrix(
      sym(3, {{0, 1, 0.9}, {1, 2, 0.9}, {0, 2, 0.9}}), 0));
  const auto stats = hidden_triples_per_network(ds, Standard::kBg, 0, 0.10);
  ASSERT_EQ(stats.fractions.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.fractions[0], 1.0);
  EXPECT_DOUBLE_EQ(stats.fractions[1], 0.0);
  EXPECT_EQ(stats.networks_with_triples, 2u);
}

TEST(HiddenTriplesPerNetwork, RespectsMinAps) {
  Dataset ds;
  ds.networks.push_back(
      trace_with_matrix(sym(3, {{0, 1, 0.9}, {1, 2, 0.9}}), 0));
  const auto stats =
      hidden_triples_per_network(ds, Standard::kBg, 0, 0.10, /*min_aps=*/5);
  EXPECT_TRUE(stats.fractions.empty());
}

TEST(RangeRatios, BaseRateIsUnity) {
  Dataset ds;
  // Rate 0 has a triangle, rate 6 only one edge.
  auto nt = trace_with_matrix(sym(3, {{0, 1, .9}, {1, 2, .9}, {0, 2, .9}}), 0);
  const auto extra = trace_with_matrix(sym(3, {{0, 1, .9}}), 6);
  for (const auto& s : extra.probe_sets) nt.probe_sets.push_back(s);
  ds.networks.push_back(std::move(nt));
  const auto ratios = range_ratios(ds, Standard::kBg, 0.10);
  ASSERT_EQ(ratios.size(), rate_count(Standard::kBg));
  ASSERT_EQ(ratios[0].size(), 1u);
  EXPECT_DOUBLE_EQ(ratios[0][0], 1.0);
  EXPECT_NEAR(ratios[6][0], 1.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(ratios[3][0], 0.0);  // never probed at 12M
}

TEST(RangeRatios, SkipsNetworksSilentAtBaseRate) {
  Dataset ds;
  ds.networks.push_back(trace_with_matrix(sym(3, {{0, 1, .9}}), 6));
  const auto ratios = range_ratios(ds, Standard::kBg, 0.10, 0);
  EXPECT_TRUE(ratios[0].empty());
}

TEST(NormalizedRange, FiltersEnvironment) {
  Dataset ds;
  ds.networks.push_back(trace_with_matrix(
      sym(3, {{0, 1, .9}, {1, 2, .9}}), 0, Standard::kBg,
      Environment::kIndoor));
  ds.networks.push_back(trace_with_matrix(
      sym(4, {{0, 1, .9}, {1, 2, .9}, {2, 3, .9}}), 0, Standard::kBg,
      Environment::kOutdoor));
  const auto indoor =
      normalized_range(ds, Standard::kBg, 0, 0.10, Environment::kIndoor);
  const auto outdoor =
      normalized_range(ds, Standard::kBg, 0, 0.10, Environment::kOutdoor);
  ASSERT_EQ(indoor.size(), 1u);
  ASSERT_EQ(outdoor.size(), 1u);
  EXPECT_NEAR(indoor[0], 2.0 / 9.0, 1e-12);
  EXPECT_NEAR(outdoor[0], 3.0 / 16.0, 1e-12);
}

TEST(TripleCounts, FractionGuardsZeroDivide) {
  TripleCounts c;
  EXPECT_DOUBLE_EQ(c.hidden_fraction(), 0.0);
}

}  // namespace
}  // namespace wmesh

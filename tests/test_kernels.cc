// Sparse-vs-dense kernel equivalence wall (PR 5).
//
// The CSR Dijkstra, bitset triple/range counting, and the bitset ExOR
// candidate scan must be *byte-identical* to the dense reference kernels
// they replaced -- the golden-report and determinism walls depend on it.
// This suite drives both implementations over seeded random matrices of
// varying size and density, plus the fully-disconnected and
// fully-connected edge cases, and asserts exact equality of distances,
// parents, triple counts, range pairs and ExOR costs.  It also pins the
// AnalysisCache contract: hit/miss accounting, byte gauges, and
// reference identity on repeated lookups.
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/analysis_cache.h"
#include "core/exor.h"
#include "core/hidden.h"
#include "obs/metrics.h"
#include "sim/generator.h"
#include "util/rng.h"

namespace wmesh {
namespace {

// Seeded random success matrix: each directed link is alive with
// probability `density`, with a uniform success rate in (0, 1].
SuccessMatrix random_matrix(std::uint64_t seed, std::size_t n,
                            double density) {
  Rng rng(seed);
  SuccessMatrix m(n);
  for (std::size_t f = 0; f < n; ++f) {
    for (std::size_t t = 0; t < n; ++t) {
      if (f == t) continue;
      if (rng.bernoulli(density)) {
        m.set(static_cast<ApId>(f), static_cast<ApId>(t),
              rng.uniform(0.05, 1.0));
      }
    }
  }
  return m;
}

SuccessMatrix full_matrix(std::size_t n, double p) {
  SuccessMatrix m(n);
  for (std::size_t f = 0; f < n; ++f) {
    for (std::size_t t = 0; t < n; ++t) {
      if (f != t) m.set(static_cast<ApId>(f), static_cast<ApId>(t), p);
    }
  }
  return m;
}

// Exact bitwise equality for double vectors (== would call NaN unequal to
// itself; the kernels never produce NaN, but the wall's contract is bytes).
void expect_bytes_equal(const std::vector<double>& a,
                        const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)))
        << what;
  }
}

struct KernelCase {
  std::uint64_t seed;
  std::size_t n;
  double density;
};

const KernelCase kCases[] = {
    {1, 1, 0.5},   {2, 2, 0.5},    {3, 7, 0.3},   {4, 17, 0.15},
    {5, 33, 0.4},  {6, 64, 0.1},   {7, 65, 0.25}, {8, 130, 0.05},
    {9, 130, 0.6}, {10, 40, 0.02},
};

TEST(KernelEquivalence, DijkstraDistsAndParentsMatchDense) {
  for (const auto& c : kCases) {
    const SuccessMatrix m = random_matrix(c.seed, c.n, c.density);
    for (const EtxVariant v : {EtxVariant::kEtx1, EtxVariant::kEtx2}) {
      const EtxGraph g(m, v, /*min_delivery=*/0.10);
      for (std::size_t src = 0; src < c.n; ++src) {
        std::vector<int> parent, parent_ref;
        const auto dist = g.shortest_from(static_cast<ApId>(src), &parent);
        const auto dist_ref =
            g.shortest_from_reference(static_cast<ApId>(src), &parent_ref);
        expect_bytes_equal(dist, dist_ref, "forward dist");
        EXPECT_EQ(parent, parent_ref) << "forward parents, src " << src;

        const auto to = g.shortest_to(static_cast<ApId>(src));
        const auto to_ref = g.shortest_to_reference(static_cast<ApId>(src));
        expect_bytes_equal(to, to_ref, "reverse dist");
      }
    }
  }
}

TEST(KernelEquivalence, DijkstraEdgeCases) {
  // Fully disconnected: every node unreachable from every other.
  const EtxGraph none(SuccessMatrix(12), EtxVariant::kEtx1);
  EXPECT_EQ(none.edge_count(), 0u);
  // Fully connected at perfect delivery: everything one hop away.
  const EtxGraph full(full_matrix(12, 1.0), EtxVariant::kEtx1);
  EXPECT_EQ(full.edge_count(), 12u * 11u);
  for (const EtxGraph* g : {&none, &full}) {
    for (std::size_t src = 0; src < 12; ++src) {
      std::vector<int> parent, parent_ref;
      const auto dist = g->shortest_from(static_cast<ApId>(src), &parent);
      const auto dist_ref =
          g->shortest_from_reference(static_cast<ApId>(src), &parent_ref);
      expect_bytes_equal(dist, dist_ref, "edge-case dist");
      EXPECT_EQ(parent, parent_ref);
    }
  }
}

TEST(KernelEquivalence, TripleAndRangeCountsMatchDense) {
  for (const auto& c : kCases) {
    const SuccessMatrix m = random_matrix(c.seed, c.n, c.density);
    for (const double threshold : {0.10, 0.50}) {
      const HearingGraph g(m, threshold);
      EXPECT_EQ(count_triples(g), count_triples_reference(g))
          << "n=" << c.n << " density=" << c.density;
      EXPECT_EQ(g.range_pairs(), range_pairs_reference(g));
    }
  }
}

TEST(KernelEquivalence, TripleCountEdgeCases) {
  // Fully disconnected: no pairs, no triples.
  const HearingGraph none(SuccessMatrix(9), 0.10);
  EXPECT_EQ(none.range_pairs(), 0u);
  EXPECT_EQ(count_triples(none), (TripleCounts{0, 0}));
  EXPECT_EQ(count_triples(none), count_triples_reference(none));
  // Fully connected: C(n,2) pairs, n*C(n-1,2) relevant triples, none
  // hidden.  n = 130 also exercises the multi-word row path.
  for (const std::size_t n : {9u, 130u}) {
    const HearingGraph full(full_matrix(n, 1.0), 0.10);
    EXPECT_EQ(full.range_pairs(), n * (n - 1) / 2);
    EXPECT_EQ(full.range_pairs(), range_pairs_reference(full));
    const auto counts = count_triples(full);
    EXPECT_EQ(counts.relevant, n * (n - 1) * (n - 2) / 2);
    EXPECT_EQ(counts.hidden, 0u);
    EXPECT_EQ(counts, count_triples_reference(full));
  }
}

TEST(KernelEquivalence, ExorCostsMatchDenseScan) {
  for (const auto& c : kCases) {
    const SuccessMatrix m = random_matrix(c.seed, c.n, c.density);
    const EtxGraph g(m, EtxVariant::kEtx1, 0.10);
    for (std::size_t dst = 0; dst < c.n; ++dst) {
      const auto etx_to = g.shortest_to(static_cast<ApId>(dst));
      expect_bytes_equal(exor_costs_to(m, etx_to),
                         exor_costs_to_reference(m, etx_to), "exor costs");
    }
  }
}

TEST(AnalysisCacheWall, HitMissAccountingAndIdentity) {
  const Dataset ds = generate_dataset(small_config());
  ASSERT_FALSE(ds.networks.empty());
  const NetworkTrace& nt = ds.networks.front();

#if !defined(WMESH_OBS_DISABLED)
  auto& hits = obs::Registry::instance().counter("cache.hits");
  auto& misses = obs::Registry::instance().counter("cache.misses");
  const auto hits0 = hits.value();
  const auto misses0 = misses.value();
#endif

  AnalysisCache cache;
  const SuccessMatrix& a = cache.success(nt, 0);
  const SuccessMatrix& b = cache.success(nt, 0);
  EXPECT_EQ(&a, &b);  // memoized: same object, not an equal copy
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // Stats track regardless; the registry counters only when obs is on.
#if !defined(WMESH_OBS_DISABLED)
  EXPECT_EQ(hits.value() - hits0, 1u);
  EXPECT_EQ(misses.value() - misses0, 1u);
#endif

  // A graph lookup is one graph miss plus one success *hit* (rate 0 is
  // already cached); repeating it is a pure hit.
  const EtxGraph& g1 = cache.etx_graph(nt, 0, EtxVariant::kEtx1, 0.10);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 2u);
  const EtxGraph& g2 = cache.etx_graph(nt, 0, EtxVariant::kEtx1, 0.10);
  EXPECT_EQ(&g1, &g2);
  EXPECT_EQ(cache.stats().hits, 3u);
  // Different variant, rate or min_delivery are distinct keys.
  (void)cache.etx_graph(nt, 0, EtxVariant::kEtx2, 0.10);
  (void)cache.etx_graph(nt, 0, EtxVariant::kEtx1, 0.0);
  EXPECT_EQ(cache.stats().misses, 4u);

  // Byte accounting: the success matrix plus three graphs, all non-empty.
  const std::size_t n = nt.ap_count;
  EXPECT_GE(cache.stats().bytes, n * n * sizeof(double));
  EXPECT_EQ(cache.stats().entries, 4u);

  // Cached values equal the uncached computations.
  const SuccessMatrix direct = mean_success_matrix(nt, 0);
  ASSERT_EQ(a.ap_count(), direct.ap_count());
  for (std::size_t f = 0; f < n; ++f) {
    for (std::size_t t = 0; t < n; ++t) {
      EXPECT_EQ(a.at(static_cast<ApId>(f), static_cast<ApId>(t)),
                direct.at(static_cast<ApId>(f), static_cast<ApId>(t)));
    }
  }

  cache.clear();
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
  // After clear, the same lookup is a miss again.
  (void)cache.success(nt, 0);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(AnalysisCacheWall, CachedAnalysesMatchUncached) {
  const Dataset ds = generate_dataset(small_config());
  AnalysisCache cache;
  for (const auto& nt : ds.networks) {
    if (nt.info.standard != Standard::kBg || nt.ap_count < 5) continue;
    const SuccessMatrix m = mean_success_matrix(nt, 0);
    for (const EtxVariant v : {EtxVariant::kEtx1, EtxVariant::kEtx2}) {
      const auto want = opportunistic_gains(m, v);
      const auto got = opportunistic_gains(cache, nt, 0, v);
      ASSERT_EQ(want.size(), got.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(want[i].src, got[i].src);
        EXPECT_EQ(want[i].dst, got[i].dst);
        EXPECT_EQ(want[i].etx_cost, got[i].etx_cost);
        EXPECT_EQ(want[i].exor_cost, got[i].exor_cost);
        EXPECT_EQ(want[i].hops, got[i].hops);
      }
    }
    EXPECT_EQ(path_lengths(m), path_lengths(cache, nt, 0));
  }
  // The loop above re-requested every (network, rate-0) intermediate
  // several times; everything after the first build must have been a hit.
  EXPECT_GT(cache.stats().hits, 0u);
}

}  // namespace
}  // namespace wmesh

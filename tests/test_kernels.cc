// Sparse-vs-dense kernel equivalence wall (PR 5).
//
// The CSR Dijkstra, bitset triple/range counting, and the bitset ExOR
// candidate scan must be *byte-identical* to the dense reference kernels
// they replaced -- the golden-report and determinism walls depend on it.
// This suite drives both implementations over seeded random matrices of
// varying size and density, plus the fully-disconnected and
// fully-connected edge cases, and asserts exact equality of distances,
// parents, triple counts, range pairs and ExOR costs.  It also pins the
// AnalysisCache contract: hit/miss accounting, byte gauges, and
// reference identity on repeated lookups.
#include <cstring>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "anypath/anypath.h"
#include "core/analysis_cache.h"
#include "core/exor.h"
#include "core/hidden.h"
#include "obs/metrics.h"
#include "sim/generator.h"
#include "util/rng.h"

namespace wmesh {
namespace {

// Seeded random success matrix: each directed link is alive with
// probability `density`, with a uniform success rate in (0, 1].
SuccessMatrix random_matrix(std::uint64_t seed, std::size_t n,
                            double density) {
  Rng rng(seed);
  SuccessMatrix m(n);
  for (std::size_t f = 0; f < n; ++f) {
    for (std::size_t t = 0; t < n; ++t) {
      if (f == t) continue;
      if (rng.bernoulli(density)) {
        m.set(static_cast<ApId>(f), static_cast<ApId>(t),
              rng.uniform(0.05, 1.0));
      }
    }
  }
  return m;
}

SuccessMatrix full_matrix(std::size_t n, double p) {
  SuccessMatrix m(n);
  for (std::size_t f = 0; f < n; ++f) {
    for (std::size_t t = 0; t < n; ++t) {
      if (f != t) m.set(static_cast<ApId>(f), static_cast<ApId>(t), p);
    }
  }
  return m;
}

// Exact bitwise equality for double vectors (== would call NaN unequal to
// itself; the kernels never produce NaN, but the wall's contract is bytes).
void expect_bytes_equal(const std::vector<double>& a,
                        const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)))
        << what;
  }
}

struct KernelCase {
  std::uint64_t seed;
  std::size_t n;
  double density;
};

const KernelCase kCases[] = {
    {1, 1, 0.5},   {2, 2, 0.5},    {3, 7, 0.3},   {4, 17, 0.15},
    {5, 33, 0.4},  {6, 64, 0.1},   {7, 65, 0.25}, {8, 130, 0.05},
    {9, 130, 0.6}, {10, 40, 0.02},
};

TEST(KernelEquivalence, DijkstraDistsAndParentsMatchDense) {
  for (const auto& c : kCases) {
    const SuccessMatrix m = random_matrix(c.seed, c.n, c.density);
    for (const EtxVariant v : {EtxVariant::kEtx1, EtxVariant::kEtx2}) {
      const EtxGraph g(m, v, /*min_delivery=*/0.10);
      for (std::size_t src = 0; src < c.n; ++src) {
        std::vector<int> parent, parent_ref;
        const auto dist = g.shortest_from(static_cast<ApId>(src), &parent);
        const auto dist_ref =
            g.shortest_from_reference(static_cast<ApId>(src), &parent_ref);
        expect_bytes_equal(dist, dist_ref, "forward dist");
        EXPECT_EQ(parent, parent_ref) << "forward parents, src " << src;

        const auto to = g.shortest_to(static_cast<ApId>(src));
        const auto to_ref = g.shortest_to_reference(static_cast<ApId>(src));
        expect_bytes_equal(to, to_ref, "reverse dist");
      }
    }
  }
}

TEST(KernelEquivalence, DijkstraEdgeCases) {
  // Fully disconnected: every node unreachable from every other.
  const EtxGraph none(SuccessMatrix(12), EtxVariant::kEtx1);
  EXPECT_EQ(none.edge_count(), 0u);
  // Fully connected at perfect delivery: everything one hop away.
  const EtxGraph full(full_matrix(12, 1.0), EtxVariant::kEtx1);
  EXPECT_EQ(full.edge_count(), 12u * 11u);
  for (const EtxGraph* g : {&none, &full}) {
    for (std::size_t src = 0; src < 12; ++src) {
      std::vector<int> parent, parent_ref;
      const auto dist = g->shortest_from(static_cast<ApId>(src), &parent);
      const auto dist_ref =
          g->shortest_from_reference(static_cast<ApId>(src), &parent_ref);
      expect_bytes_equal(dist, dist_ref, "edge-case dist");
      EXPECT_EQ(parent, parent_ref);
    }
  }
}

TEST(KernelEquivalence, TripleAndRangeCountsMatchDense) {
  for (const auto& c : kCases) {
    const SuccessMatrix m = random_matrix(c.seed, c.n, c.density);
    for (const double threshold : {0.10, 0.50}) {
      const HearingGraph g(m, threshold);
      EXPECT_EQ(count_triples(g), count_triples_reference(g))
          << "n=" << c.n << " density=" << c.density;
      EXPECT_EQ(g.range_pairs(), range_pairs_reference(g));
    }
  }
}

TEST(KernelEquivalence, TripleCountEdgeCases) {
  // Fully disconnected: no pairs, no triples.
  const HearingGraph none(SuccessMatrix(9), 0.10);
  EXPECT_EQ(none.range_pairs(), 0u);
  EXPECT_EQ(count_triples(none), (TripleCounts{0, 0}));
  EXPECT_EQ(count_triples(none), count_triples_reference(none));
  // Fully connected: C(n,2) pairs, n*C(n-1,2) relevant triples, none
  // hidden.  n = 130 also exercises the multi-word row path.
  for (const std::size_t n : {9u, 130u}) {
    const HearingGraph full(full_matrix(n, 1.0), 0.10);
    EXPECT_EQ(full.range_pairs(), n * (n - 1) / 2);
    EXPECT_EQ(full.range_pairs(), range_pairs_reference(full));
    const auto counts = count_triples(full);
    EXPECT_EQ(counts.relevant, n * (n - 1) * (n - 2) / 2);
    EXPECT_EQ(counts.hidden, 0u);
    EXPECT_EQ(counts, count_triples_reference(full));
  }
}

TEST(KernelEquivalence, ExorCostsMatchDenseScan) {
  for (const auto& c : kCases) {
    const SuccessMatrix m = random_matrix(c.seed, c.n, c.density);
    const EtxGraph g(m, EtxVariant::kEtx1, 0.10);
    for (std::size_t dst = 0; dst < c.n; ++dst) {
      const auto etx_to = g.shortest_to(static_cast<ApId>(dst));
      expect_bytes_equal(exor_costs_to(m, etx_to),
                         exor_costs_to_reference(m, etx_to), "exor costs");
    }
  }
}

// Independent per-rate matrices, like a real trace's per-rate probing.
// Three rates keep the 130-AP cases affordable while still exercising the
// multirate minimum.
std::vector<SuccessMatrix> random_rate_matrices(std::uint64_t seed,
                                                std::size_t n,
                                                double density) {
  std::vector<SuccessMatrix> out;
  for (std::uint64_t r = 0; r < 3; ++r) {
    out.push_back(random_matrix(seed * 97 + r, n, density));
  }
  return out;
}

TEST(KernelEquivalence, AnypathCostsMatchDenseScan) {
  for (const auto& c : kCases) {
    const auto rates = random_rate_matrices(c.seed, c.n, c.density);
    for (const EtxVariant ack : {EtxVariant::kEtx1, EtxVariant::kEtx2}) {
      const anypath::AnypathGraph g(rates, Standard::kBg, ack);
      for (std::size_t dst = 0; dst < c.n; ++dst) {
        const auto sparse = g.costs_to(static_cast<ApId>(dst));
        const auto dense = g.costs_to_reference(static_cast<ApId>(dst));
        expect_bytes_equal(sparse.cost_us, dense.cost_us, "anypath costs");
        EXPECT_EQ(sparse.best_rate, dense.best_rate)
            << "n=" << c.n << " dst=" << dst;
      }
    }
  }
}

TEST(KernelEquivalence, AnypathEdgeCases) {
  // Fully disconnected: only the destination itself is reachable.
  const std::vector<SuccessMatrix> none(3, SuccessMatrix(12));
  const anypath::AnypathGraph g_none(none, Standard::kBg,
                                     EtxVariant::kEtx1);
  for (std::size_t dst = 0; dst < 12; ++dst) {
    const auto f = g_none.costs_to(static_cast<ApId>(dst));
    const auto ref = g_none.costs_to_reference(static_cast<ApId>(dst));
    expect_bytes_equal(f.cost_us, ref.cost_us, "disconnected costs");
    EXPECT_EQ(f.best_rate, ref.best_rate);
    for (std::size_t s = 0; s < 12; ++s) {
      EXPECT_EQ(f.cost_us[s], s == dst ? 0.0 : kInfCost);
      EXPECT_EQ(f.best_rate[s], anypath::kNoRate);
    }
  }
  // Fully connected at perfect delivery: every node reaches the
  // destination in one transmission at the fastest of the three rates
  // (delivery is certain everywhere, so only the airtime differs).
  const std::vector<SuccessMatrix> full(3, full_matrix(12, 1.0));
  const anypath::AnypathGraph g_full(full, Standard::kBg,
                                     EtxVariant::kEtx2);
  const double fastest = g_full.airtime_us(2);
  for (std::size_t dst = 0; dst < 12; ++dst) {
    const auto f = g_full.costs_to(static_cast<ApId>(dst));
    const auto ref = g_full.costs_to_reference(static_cast<ApId>(dst));
    expect_bytes_equal(f.cost_us, ref.cost_us, "connected costs");
    EXPECT_EQ(f.best_rate, ref.best_rate);
    for (std::size_t s = 0; s < 12; ++s) {
      if (s == dst) continue;
      EXPECT_EQ(f.cost_us[s], fastest);
      EXPECT_EQ(f.best_rate[s], 2);
    }
  }
}

TEST(AnalysisCacheWall, HitMissAccountingAndIdentity) {
  const Dataset ds = generate_dataset(small_config());
  ASSERT_FALSE(ds.networks.empty());
  const NetworkTrace& nt = ds.networks.front();

#if !defined(WMESH_OBS_DISABLED)
  auto& hits = obs::Registry::instance().counter("cache.hits");
  auto& misses = obs::Registry::instance().counter("cache.misses");
  const auto hits0 = hits.value();
  const auto misses0 = misses.value();
#endif

  AnalysisCache cache;
  const SuccessMatrix& a = cache.success(nt, 0);
  const SuccessMatrix& b = cache.success(nt, 0);
  EXPECT_EQ(&a, &b);  // memoized: same object, not an equal copy
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // Stats track regardless; the registry counters only when obs is on.
#if !defined(WMESH_OBS_DISABLED)
  EXPECT_EQ(hits.value() - hits0, 1u);
  EXPECT_EQ(misses.value() - misses0, 1u);
#endif

  // A graph lookup is one graph miss plus one success *hit* (rate 0 is
  // already cached); repeating it is a pure hit.
  const EtxGraph& g1 = cache.etx_graph(nt, 0, EtxVariant::kEtx1, 0.10);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 2u);
  const EtxGraph& g2 = cache.etx_graph(nt, 0, EtxVariant::kEtx1, 0.10);
  EXPECT_EQ(&g1, &g2);
  EXPECT_EQ(cache.stats().hits, 3u);
  // Different variant, rate or min_delivery are distinct keys.
  (void)cache.etx_graph(nt, 0, EtxVariant::kEtx2, 0.10);
  (void)cache.etx_graph(nt, 0, EtxVariant::kEtx1, 0.0);
  EXPECT_EQ(cache.stats().misses, 4u);

  // Byte accounting: the success matrix plus three graphs, all non-empty.
  const std::size_t n = nt.ap_count;
  EXPECT_GE(cache.stats().bytes, n * n * sizeof(double));
  EXPECT_EQ(cache.stats().entries, 4u);

  // Cached values equal the uncached computations.
  const SuccessMatrix direct = mean_success_matrix(nt, 0);
  ASSERT_EQ(a.ap_count(), direct.ap_count());
  for (std::size_t f = 0; f < n; ++f) {
    for (std::size_t t = 0; t < n; ++t) {
      EXPECT_EQ(a.at(static_cast<ApId>(f), static_cast<ApId>(t)),
                direct.at(static_cast<ApId>(f), static_cast<ApId>(t)));
    }
  }

  cache.clear();
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
  // After clear, the same lookup is a miss again.
  (void)cache.success(nt, 0);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(AnalysisCacheWall, AnypathEntryAccountingAndInvalidation) {
  const Dataset ds = generate_dataset(small_config());
  ASSERT_FALSE(ds.networks.empty());
  const NetworkTrace& nt = ds.networks.front();

  AnalysisCache cache;
  // First lookup: one anypath miss plus the all_success miss it triggers.
  const anypath::AnypathGraph& g1 =
      cache.anypath_graph(nt, EtxVariant::kEtx1);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
  const anypath::AnypathGraph& g1b =
      cache.anypath_graph(nt, EtxVariant::kEtx1);
  EXPECT_EQ(&g1, &g1b);  // memoized: same object
  EXPECT_EQ(cache.stats().hits, 1u);
  // The other ACK model is a distinct key but shares the matrices.
  const anypath::AnypathGraph& g2 =
      cache.anypath_graph(nt, EtxVariant::kEtx2);
  EXPECT_NE(&g1, &g2);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().entries, 3u);  // all_success + two anypath graphs
  const std::size_t bytes = cache.stats().bytes;
  EXPECT_GT(bytes, 0u);

  // Cached graph computes the same field as an uncached build.
  const auto direct_rates = all_success_matrices(nt);
  const anypath::AnypathGraph direct(direct_rates, nt.info.standard,
                                     EtxVariant::kEtx1);
  ASSERT_GT(nt.ap_count, 0u);
  const auto got = g1.costs_to(0);
  const auto want = direct.costs_to(0);
  expect_bytes_equal(got.cost_us, want.cost_us, "cached anypath costs");
  EXPECT_EQ(got.best_rate, want.best_rate);

  // Invalidating a different network drops nothing; invalidating this one
  // drops the matrices and both graphs with a full byte refund.
  if (ds.networks.size() > 1) {
    EXPECT_EQ(cache.invalidate(&ds.networks[1]).entries, 0u);
    EXPECT_EQ(cache.stats().bytes, bytes);
  }
  const AnalysisCache::Evicted ev = cache.invalidate(&nt);
  EXPECT_EQ(ev.entries, 3u);
  EXPECT_EQ(ev.computed, 3u);
  EXPECT_EQ(ev.bytes, bytes);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  // After invalidation the same lookup misses and recomputes.
  (void)cache.anypath_graph(nt, EtxVariant::kEtx1);
  EXPECT_EQ(cache.stats().misses, 5u);
}

TEST(AnalysisCacheWall, CachedAnalysesMatchUncached) {
  const Dataset ds = generate_dataset(small_config());
  AnalysisCache cache;
  for (const auto& nt : ds.networks) {
    if (nt.info.standard != Standard::kBg || nt.ap_count < 5) continue;
    const SuccessMatrix m = mean_success_matrix(nt, 0);
    for (const EtxVariant v : {EtxVariant::kEtx1, EtxVariant::kEtx2}) {
      const auto want = opportunistic_gains(m, v);
      const auto got = opportunistic_gains(cache, nt, 0, v);
      ASSERT_EQ(want.size(), got.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(want[i].src, got[i].src);
        EXPECT_EQ(want[i].dst, got[i].dst);
        EXPECT_EQ(want[i].etx_cost, got[i].etx_cost);
        EXPECT_EQ(want[i].exor_cost, got[i].exor_cost);
        EXPECT_EQ(want[i].hops, got[i].hops);
      }
    }
    EXPECT_EQ(path_lengths(m), path_lengths(cache, nt, 0));
  }
  // The loop above re-requested every (network, rate-0) intermediate
  // several times; everything after the first build must have been a hit.
  EXPECT_GT(cache.stats().hits, 0u);
}

}  // namespace
}  // namespace wmesh

// Flight-recorder coverage: ring drain and overflow accounting, the
// wmesh.flight/1 dump format, and the fatal-signal path (a crash must
// leave a parseable dump behind).
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight.h"
#include "obs/metrics.h"

namespace wmesh::obs::flight {
namespace {

std::string test_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

void arm(const std::string& path) {
  ::setenv("WMESH_FLIGHT_OUT", path.c_str(), 1);
  reinit_from_env();
  ASSERT_TRUE(enabled());
}

void disarm() {
  ::unsetenv("WMESH_FLIGHT_OUT");
  reinit_from_env();
  ASSERT_FALSE(enabled());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(ObsFlight, DisarmedByDefaultAndDumpRefuses) {
  disarm();
  EXPECT_FALSE(dump_to_env_path());
  EXPECT_FALSE(Registry::instance().dump_flight());
}

TEST(ObsFlight, DrainReturnsEventsInOrder) {
  arm(test_path("flight_drain.txt"));
  record(EventKind::kSpanBegin, "test.flight.a", 0x11, 0x0);
  record(EventKind::kCounter, "test.flight.count", 3, 0);
  record(EventKind::kLog, "test.flight.comp", 2, 0);
  record(EventKind::kSpanEnd, "test.flight.a", 0x11, 1234);

  std::uint64_t dropped = 99;
  const std::vector<Event> events = drain(&dropped);
  disarm();

  EXPECT_EQ(dropped, 0u);
  ASSERT_GE(events.size(), 4u);
  // Find our four events in order (other tests' threads may interleave).
  std::vector<const Event*> mine;
  for (const Event& e : events) {
    if (std::string(e.name ? e.name : "").rfind("test.flight", 0) == 0) {
      mine.push_back(&e);
    }
  }
  ASSERT_EQ(mine.size(), 4u);
  EXPECT_EQ(mine[0]->kind, EventKind::kSpanBegin);
  EXPECT_EQ(mine[0]->a, 0x11u);
  EXPECT_EQ(mine[1]->kind, EventKind::kCounter);
  EXPECT_EQ(mine[1]->a, 3u);
  EXPECT_EQ(mine[2]->kind, EventKind::kLog);
  EXPECT_EQ(mine[3]->kind, EventKind::kSpanEnd);
  EXPECT_EQ(mine[3]->b, 1234u);
  // Merged output is timestamp-ordered.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_us, events[i - 1].ts_us);
  }
}

TEST(ObsFlight, OverflowKeepsTheLastDepthEventsAndCountsDrops) {
  arm(test_path("flight_overflow.txt"));
  const std::size_t total = kDepth + 500;
  for (std::size_t i = 0; i < total; ++i) {
    record(EventKind::kCounter, "test.flight.overflow",
           static_cast<std::uint64_t>(i), 0);
  }
  std::uint64_t dropped = 0;
  const std::vector<Event> events = drain(&dropped);
  disarm();

  EXPECT_EQ(dropped, 500u);
  // Only our events: the ring was cleared by arm(), and this test records
  // on the only live thread, so the window is exactly the last kDepth.
  std::vector<std::uint64_t> seqs;
  for (const Event& e : events) {
    if (e.name != nullptr &&
        std::string(e.name) == "test.flight.overflow") {
      seqs.push_back(e.a);
    }
  }
  ASSERT_EQ(seqs.size(), kDepth);
  EXPECT_EQ(seqs.front(), 500u);               // oldest survivor
  EXPECT_EQ(seqs.back(), total - 1);           // newest event
  for (std::size_t i = 1; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], seqs[i - 1] + 1);       // contiguous window
  }
}

TEST(ObsFlight, DumpEmitsParseableSchema) {
  const std::string path = test_path("flight_dump.txt");
  arm(path);
  record(EventKind::kSpanBegin, "test.flight.dump", 0xabc, 0x0);
  record(EventKind::kSpanEnd, "test.flight.dump", 0xabc, 42);
  ASSERT_TRUE(Registry::instance().dump_flight());
  disarm();

  const std::string text = slurp(path);
  EXPECT_EQ(text.rfind("# wmesh.flight/1 rings=", 0), 0u) << text;
  EXPECT_NE(text.find("kind=span_begin name=test.flight.dump a=0xabc b=0x0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("kind=span_end name=test.flight.dump a=0xabc b=0x2a"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# EOF events="), std::string::npos) << text;
  EXPECT_NE(text.find("dropped=0"), std::string::npos) << text;
}

TEST(ObsFlightDeathTest, FatalSignalWritesTheDumpAndDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = test_path("flight_crash.txt");
  std::remove(path.c_str());
  EXPECT_EXIT(
      {
        ::setenv("WMESH_FLIGHT_OUT", path.c_str(), 1);
        reinit_from_env();
        record(EventKind::kSpanBegin, "test.flight.crash", 0x1, 0x0);
        record(EventKind::kLog, "test.flight.before_abort", 4, 0);
        std::abort();
      },
      ::testing::KilledBySignal(SIGABRT), "");

  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty()) << "signal handler left no dump at " << path;
  EXPECT_EQ(text.rfind("# wmesh.flight/1", 0), 0u) << text;
  EXPECT_NE(text.find("name=test.flight.crash"), std::string::npos) << text;
  EXPECT_NE(text.find("name=test.flight.before_abort"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# EOF"), std::string::npos) << text;
}

}  // namespace
}  // namespace wmesh::obs::flight

// Test wall for the streaming service (src/serve + tools/wmesh_serve).
//
// Four walls in one binary (wmesh_serve_tests):
//   * correctness: the fleet stream drained to the end reproduces
//     generate_dataset() byte for byte, and after ANY stream prefix the
//     live sliding window equals a from-scratch batch recompute over the
//     same window -- including every rendered report section, at 1/2/8
//     threads;
//   * cache: per-network invalidation drops only the advanced network, and
//     hit/miss/invalidation counts are thread-count-independent;
//   * golden: a pinned query/response transcript
//     (tests/golden/serve_transcript.txt; regenerate with
//     WMESH_UPDATE_GOLDEN=1 after an intentional output change);
//   * fault injection + end-to-end smoke: truncated requests, unknown
//     commands, oversized lines and mid-response disconnects leave the
//     daemon serving (serve.protocol_errors counts each), and the real
//     wmesh_serve binary boots, serves every section over a unix socket,
//     exposes serve.* OpenMetrics and writes a run report on shutdown
//     (the serve_smoke ctest case runs the ServeSmoke suite).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/analysis_cache.h"
#include "core/report.h"
#include "obs/alerts.h"
#include "obs/export_server.h"
#include "obs/metrics.h"
#include "obs/socket_util.h"
#include "par/thread_pool.h"
#include "serve/daemon.h"
#include "serve/service.h"
#include "serve/stream.h"
#include "serve/window.h"
#include "sim/generator.h"

#ifndef WMESH_TEST_DATA_DIR
#error "WMESH_TEST_DATA_DIR must point at tests/golden (set by CMake)"
#endif
#ifndef WMESH_SERVE_BIN
#error "WMESH_SERVE_BIN must point at the wmesh_serve binary (set by CMake)"
#endif

namespace wmesh {
namespace {

GeneratorConfig test_config() {
  GeneratorConfig c = small_config();  // 6 networks, 3600 s, 90 probe rounds
  c.seed = 20100811;
  return c;
}

serve::ServeConfig service_config() {
  serve::ServeConfig sc;
  sc.gen = test_config();
  sc.window_rounds = 4;
  return sc;
}

bool same_float(float a, float b) {
  return std::bit_cast<std::uint32_t>(a) == std::bit_cast<std::uint32_t>(b);
}

void expect_same_probe_sets(const std::vector<ProbeSet>& got,
                            const std::vector<ProbeSet>& want,
                            const std::string& ctx) {
  ASSERT_EQ(got.size(), want.size()) << ctx;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const ProbeSet& g = got[i];
    const ProbeSet& w = want[i];
    ASSERT_EQ(g.from, w.from) << ctx << " set " << i;
    ASSERT_EQ(g.to, w.to) << ctx << " set " << i;
    ASSERT_EQ(g.time_s, w.time_s) << ctx << " set " << i;
    ASSERT_TRUE(same_float(g.snr_db, w.snr_db)) << ctx << " set " << i;
    ASSERT_EQ(g.entries.size(), w.entries.size()) << ctx << " set " << i;
    for (std::size_t e = 0; e < g.entries.size(); ++e) {
      ASSERT_EQ(g.entries[e].rate, w.entries[e].rate) << ctx << " set " << i;
      ASSERT_TRUE(same_float(g.entries[e].loss, w.entries[e].loss))
          << ctx << " set " << i << " entry " << e;
      ASSERT_TRUE(same_float(g.entries[e].snr_db, w.entries[e].snr_db))
          << ctx << " set " << i << " entry " << e;
    }
  }
}

void expect_same_clients(const std::vector<ClientSample>& got,
                         const std::vector<ClientSample>& want,
                         const std::string& ctx) {
  ASSERT_EQ(got.size(), want.size()) << ctx;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].client, want[i].client) << ctx << " sample " << i;
    EXPECT_EQ(got[i].ap, want[i].ap) << ctx << " sample " << i;
    EXPECT_EQ(got[i].bucket, want[i].bucket) << ctx << " sample " << i;
    EXPECT_EQ(got[i].assoc_requests, want[i].assoc_requests)
        << ctx << " sample " << i;
    EXPECT_EQ(got[i].data_packets, want[i].data_packets)
        << ctx << " sample " << i;
  }
}

// Batch-side reference: the window the service should hold after its
// virtual clock reached `t`, cut from a full batch trace.
Dataset window_filtered(const Dataset& full, double t,
                        std::size_t window_rounds,
                        const ProbeSimParams& params) {
  const double interval = params.report_interval_s;
  const auto boundaries = static_cast<std::int64_t>((t + 1e-9) / interval);
  const std::int64_t last = boundaries * static_cast<std::int64_t>(interval);
  const std::int64_t lo =
      last - static_cast<std::int64_t>(window_rounds * interval);
  Dataset out;
  out.networks = full.networks;
  for (auto& nt : out.networks) {
    std::vector<ProbeSet> keep;
    for (const auto& s : nt.probe_sets) {
      const auto ts = static_cast<std::int64_t>(s.time_s);
      if (boundaries > 0 && ts > lo && ts <= last) keep.push_back(s);
    }
    nt.probe_sets = std::move(keep);
  }
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// ReportWindow
// ---------------------------------------------------------------------------

std::vector<ProbeSet> one_set_round(std::uint32_t time_s) {
  ProbeSet s;
  s.from = 0;
  s.to = 1;
  s.time_s = time_s;
  return {s};
}

TEST(ReportWindow, KeepsAtMostMaxRoundsAndReportsChanges) {
  serve::ReportWindow w(2);
  EXPECT_TRUE(w.push_round(one_set_round(300)));
  EXPECT_TRUE(w.push_round(one_set_round(600)));
  EXPECT_EQ(w.rounds(), 2u);
  EXPECT_EQ(w.total_sets(), 2u);
  // Third round evicts the first.
  EXPECT_TRUE(w.push_round(one_set_round(900)));
  EXPECT_EQ(w.rounds(), 2u);
  std::vector<ProbeSet> sets;
  w.materialize(&sets);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].time_s, 600u);
  EXPECT_EQ(sets[1].time_s, 900u);
}

TEST(ReportWindow, EmptyRoundsOnlyChangeWhenTheyEvictData) {
  serve::ReportWindow w(2);
  EXPECT_FALSE(w.push_round({}));  // empty in, nothing evicted
  EXPECT_TRUE(w.push_round(one_set_round(300)));
  EXPECT_FALSE(w.push_round({}));  // evicts the leading empty round: no change
  EXPECT_TRUE(w.push_round({}));   // evicts the 300 s round: contents changed
  EXPECT_FALSE(w.push_round({}));  // only empties remain
  std::vector<ProbeSet> sets;
  w.materialize(&sets);
  EXPECT_TRUE(sets.empty());
}

// ---------------------------------------------------------------------------
// Stream-vs-batch byte equivalence
// ---------------------------------------------------------------------------

TEST(ServeStream, DrainedStreamReproducesGenerateDatasetByteForByte) {
  const GeneratorConfig config = test_config();
  const Dataset want = generate_dataset(config);

  serve::FleetProbeStream fleet(config);
  ASSERT_EQ(fleet.trace_count(), want.networks.size());
  std::vector<std::vector<ProbeSet>> streamed(fleet.trace_count());
  while (fleet.advance_round(&streamed)) {
  }
  EXPECT_TRUE(fleet.finished());

  for (std::size_t i = 0; i < want.networks.size(); ++i) {
    const NetworkTrace& w = want.networks[i];
    const std::string ctx = "trace " + std::to_string(i);
    EXPECT_EQ(fleet.info(i).id, w.info.id) << ctx;
    EXPECT_EQ(fleet.info(i).standard, w.info.standard) << ctx;
    EXPECT_EQ(fleet.info(i).name, w.info.name) << ctx;
    EXPECT_EQ(fleet.ap_count(i), w.ap_count) << ctx;
    expect_same_probe_sets(streamed[i], w.probe_sets, ctx);
    expect_same_clients(fleet.client_samples(i), w.client_samples, ctx);
  }
}

class ServeWindowTest : public ::testing::Test {
 protected:
  void TearDown() override { par::set_default_threads(0); }
};

TEST_F(ServeWindowTest, LiveWindowMatchesBatchRecomputeAfterAnyPrefix) {
  const serve::ServeConfig sc = service_config();
  const Dataset full = generate_dataset(sc.gen);
  serve::MeshService service(sc);

  // Prefix lengths straddling report boundaries (300 s = 7.5 probe rounds)
  // and the first evictions (window 4 -> boundary 5, round 38).
  const std::array<std::uint64_t, 5> kCheckRounds{7, 8, 23, 38, 45};
  std::uint64_t done = 0;
  for (const std::uint64_t target : kCheckRounds) {
    while (done < target && service.tick()) ++done;
    ASSERT_EQ(done, target);
    const Dataset live = service.snapshot();
    const Dataset want = window_filtered(full, 40.0 * static_cast<double>(done),
                                         sc.window_rounds, sc.gen.probes);
    ASSERT_EQ(live.networks.size(), want.networks.size());
    for (std::size_t i = 0; i < live.networks.size(); ++i) {
      expect_same_probe_sets(live.networks[i].probe_sets,
                             want.networks[i].probe_sets,
                             "round " + std::to_string(target) + " trace " +
                                 std::to_string(i));
    }
  }
}

TEST_F(ServeWindowTest, ServedSectionsMatchBatchAnalyzeAtOneTwoEightThreads) {
  const serve::ServeConfig sc = service_config();
  constexpr std::uint64_t kRounds = 45;  // 1800 s: 6 boundaries, 2 evictions

  // Batch reference, serial: analyze the window-filtered snapshot exactly
  // as wmesh_analyze would.
  par::set_default_threads(1);
  const Dataset full = generate_dataset(sc.gen);
  const Dataset want_ds =
      window_filtered(full, 40.0 * kRounds, sc.window_rounds, sc.gen.probes);
  struct Section {
    const char* command;
    std::string want;
  };
  std::array<Section, 9> sections{{{"snr", report_snr(want_ds)},
                                   {"lookup", report_lookup(want_ds)},
                                   {"exor", report_routing(want_ds)},
                                   {"anypath", report_anypath(want_ds)},
                                   {"paths", report_path_lengths(want_ds)},
                                   {"hidden", report_hidden(want_ds)},
                                   {"mobility", report_mobility(want_ds)},
                                   {"traffic", report_traffic(want_ds)},
                                   {"etx", report_etx(want_ds)}}};

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    par::set_default_threads(threads);
    serve::MeshService service(sc);
    for (std::uint64_t r = 0; r < kRounds; ++r) ASSERT_TRUE(service.tick());
    for (const Section& s : sections) {
      const serve::QueryResult got = service.query(s.command);
      ASSERT_TRUE(got.ok) << s.command << ": " << got.body;
      EXPECT_EQ(got.body, s.want)
          << "section '" << s.command << "' diverged from batch analyze at "
          << threads << " threads";
    }
  }
}

// ---------------------------------------------------------------------------
// Cache invalidation
// ---------------------------------------------------------------------------

TEST(ServeCache, InvalidateDropsOnlyTheTargetNetwork) {
  GeneratorConfig config = test_config();
  config.probes.duration_s = 1200.0;
  const Dataset ds = generate_dataset(config);
  ASSERT_GE(ds.networks.size(), 2u);
  const NetworkTrace& a = ds.networks[0];
  const NetworkTrace& b = ds.networks[1];

  AnalysisCache cache;
  cache.success(a, 0);
  cache.etx_graph(a, 0, EtxVariant::kEtx1, 0.0);
  cache.success(b, 0);
  const AnalysisCache::Stats before = cache.stats();
  EXPECT_EQ(before.entries, 3u);
  EXPECT_EQ(before.misses, 3u);
  EXPECT_EQ(before.hits, 1u);  // etx_graph(a) reads success(a, 0) internally

  const AnalysisCache::Evicted ev = cache.invalidate(&a);
  EXPECT_EQ(ev.entries, 2u);
  EXPECT_EQ(ev.computed, 2u);
  EXPECT_EQ(ev.bytes, before.bytes - cache.stats().bytes);
  const AnalysisCache::Stats after = cache.stats();
  EXPECT_EQ(after.entries, 1u);
  EXPECT_LT(after.bytes, before.bytes);

  // b survived: the next lookup is a hit.  a was dropped: a miss.
  cache.success(b, 0);
  EXPECT_EQ(cache.stats().hits, 2u);
  cache.success(a, 0);
  EXPECT_EQ(cache.stats().misses, 4u);

  // Invalidating an unknown key is a no-op.
  NetworkTrace unrelated;
  EXPECT_EQ(cache.invalidate(&unrelated).entries, 0u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ServeCache, InvalidationAndHitCountsAreThreadCountIndependent) {
  // Interleave ingest and cache-warming queries, then compare the stats
  // section -- which embeds hit/miss/invalidation/window-advance counts --
  // across thread counts.  Any scheduling leak into cache accounting or
  // window updates shows up as a diff.
  std::array<std::string, 3> stats_text;
  const std::array<std::size_t, 3> kThreads{1, 2, 8};
  for (std::size_t k = 0; k < kThreads.size(); ++k) {
    par::set_default_threads(kThreads[k]);
    serve::MeshService service(service_config());
    std::uint64_t done = 0;
    for (const std::uint64_t target : {std::uint64_t{8}, std::uint64_t{16},
                                       std::uint64_t{30}, std::uint64_t{45}}) {
      while (done < target && service.tick()) ++done;
      for (const char* cmd : {"exor", "paths", "hidden"}) {
        ASSERT_TRUE(service.query(cmd).ok) << cmd;
      }
    }
    const serve::QueryResult stats = service.query("stats");
    ASSERT_TRUE(stats.ok);
    stats_text[k] = stats.body;
    EXPECT_NE(stats.body.find("cache_invalidations"), std::string::npos);
  }
  par::set_default_threads(0);
  EXPECT_EQ(stats_text[0], stats_text[1]);
  EXPECT_EQ(stats_text[0], stats_text[2]);
  // The interleaving above must actually exercise the invalidation path.
  EXPECT_EQ(stats_text[0].find("cache_invalidations  0\n"), std::string::npos)
      << stats_text[0];
}

// ---------------------------------------------------------------------------
// Observability plane determinism
// ---------------------------------------------------------------------------

TEST(ServeObsPlane, HealthAlertsAndTsdbAreByteIdenticalAtOneTwoEightThreads) {
  // The TSDB samples on the virtual-clock tick, health scores derive from
  // the deterministic window analyses, and alert evaluation is a pure
  // function of the TSDB -- so every rendered byte must be independent of
  // the worker-pool size.  Queries stick to deterministic families
  // (serve.*, health.*); wall-clock histograms like serve.query_us are
  // exercised elsewhere.
  const std::array<const char*, 6> kCommands{
      "health",        "health 3",
      "alerts",        "tsdb serve.rounds 16",
      "tsdb serve.reports_ingested", "tsdb serve.window_advances 8"};
  // Warm the process-global registry first: families like
  // serve.reports_ingested only register at the first report boundary, so
  // a cold first run would baseline them later (fewer retained points)
  // than the warm runs after it -- a process-warmth artifact, not a
  // thread-count one.
  {
    serve::MeshService warmup(service_config());
    for (int r = 0; r < 9; ++r) ASSERT_TRUE(warmup.tick());
  }
  std::array<std::string, 3> rendered;
  const std::array<std::size_t, 3> kThreads{1, 2, 8};
  for (std::size_t k = 0; k < kThreads.size(); ++k) {
    par::set_default_threads(kThreads[k]);
    serve::ServeConfig sc = service_config();
    std::string error;
    ASSERT_TRUE(obs::parse_alert_rules(
        "alert rounds_hot burn serve.rounds >= 1 short=4 long=16\n"
        "alert clock_high threshold serve.time_s > 600 for=3\n"
        "alert ghost absent no.such.series window=5\n",
        "obs_plane_rules", &sc.alerts, &error))
        << error;
    serve::MeshService service(sc);
    for (int r = 0; r < 45; ++r) ASSERT_TRUE(service.tick());
    std::string all;
    for (const char* cmd : kCommands) {
      const serve::QueryResult r = service.query(cmd);
      ASSERT_TRUE(r.ok) << cmd << ": " << r.body;
      all += "> " + std::string(cmd) + "\n" + r.body;
    }
    rendered[k] = std::move(all);
  }
  par::set_default_threads(0);
  EXPECT_EQ(rendered[0], rendered[1]);
  EXPECT_EQ(rendered[0], rendered[2]);
  // Sanity: the plane actually produced data, not empty tables.
  EXPECT_NE(rendered[0].find("etx_infl"), std::string::npos);
  EXPECT_NE(rendered[0].find("ghost"), std::string::npos);
  EXPECT_NE(rendered[0].find("retained_points"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Golden query transcript
// ---------------------------------------------------------------------------

TEST(ServeGolden, TranscriptMatchesCheckedInBytes) {
  serve::ServeConfig sc;
  sc.gen = small_config();
  sc.gen.seed = 7;  // the documented golden seed (wmesh_gen --small --seed 7)
  sc.window_rounds = 4;
  // Alert rules over deterministic series only (gauge values and counter
  // deltas; a threshold on a counter's absolute value would depend on how
  // warm the process-global registry is).
  {
    std::string error;
    ASSERT_TRUE(obs::parse_alert_rules(
        "# golden transcript rules\n"
        "alert stream_hot burn serve.rounds >= 1 short=4 long=16\n"
        "alert time_advancing threshold serve.time_s > 600 for=3\n"
        "alert ghost absent no.such.series window=5\n",
        "golden_rules", &sc.alerts, &error))
        << error;
  }
  serve::MeshService service(sc);
  for (int r = 0; r < 45; ++r) ASSERT_TRUE(service.tick());

  const std::array<const char*, 24> kCommands{
      "stats", "snr", "lookup", "exor", "anypath", "paths", "hidden",
      "mobility", "traffic", "etx", "etx 3", "anypath 3", "bogus", "etx 99",
      "hidden x", "snr 1", "health", "health 3", "health 99", "alerts",
      "tsdb serve.rounds", "tsdb serve.rounds 8", "tsdb no.such.series",
      "tsdb"};
  std::string transcript;
  for (const char* cmd : kCommands) {
    const serve::QueryResult r = service.query(cmd);
    transcript += "> " + std::string(cmd) + "\n";
    if (r.ok) {
      transcript += "ok " + std::to_string(r.body.size()) + "\n" + r.body;
    } else {
      transcript += "err " + r.body + "\n";
    }
  }

  const std::string path =
      std::string(WMESH_TEST_DATA_DIR) + "/serve_transcript.txt";
  if (std::getenv("WMESH_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << transcript;
    ASSERT_TRUE(out.good()) << "cannot rewrite " << path;
    GTEST_SKIP() << "regenerated " << path;
  }
  EXPECT_EQ(transcript, slurp(path))
      << "serve transcript diverged; regenerate tests/golden/"
         "serve_transcript.txt with WMESH_UPDATE_GOLDEN=1 if intentional";
}

// ---------------------------------------------------------------------------
// Fault injection against a live in-process daemon
// ---------------------------------------------------------------------------

class FaultDaemon {
 public:
  FaultDaemon() {
    serve::DaemonOptions options;
    options.service.gen = test_config();
    options.service.gen.probes.duration_s = 1200.0;
    options.service.window_rounds = 4;
    options.listen = "unix:" + socket_path();
    std::string error;
    daemon_ = serve::ServeDaemon::start(options, &error);
    EXPECT_NE(daemon_, nullptr) << error;
    if (daemon_ != nullptr) {
      runner_ = std::thread([this] { daemon_->run(); });
    }
  }

  ~FaultDaemon() {
    if (daemon_ != nullptr) daemon_->request_shutdown();
    if (runner_.joinable()) runner_.join();
  }

  static std::string socket_path() {
    return std::string(::testing::TempDir()) + "wmesh_serve_fault.sock";
  }

  int connect() const {
    std::string error;
    const int fd = obs::connect_socket("unix:" + socket_path(), &error);
    EXPECT_GE(fd, 0) << error;
    return fd;
  }

 private:
  std::unique_ptr<serve::ServeDaemon> daemon_;
  std::thread runner_;
};

// Reads one framed response ("ok <len>\n<payload>" or "err <msg>\n").
std::string recv_frame(int fd) {
  std::string head;
  char c;
  while (head.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n <= 0) return head;
    head.push_back(c);
  }
  if (head.rfind("ok ", 0) != 0) return head;
  const std::size_t len = std::stoul(head.substr(3));
  std::string payload;
  while (payload.size() < len) {
    char buf[4096];
    const ssize_t n = ::recv(
        fd, buf, std::min(sizeof(buf), len - payload.size()), 0);
    if (n <= 0) break;
    payload.append(buf, static_cast<std::size_t>(n));
  }
  return head + payload;
}

std::uint64_t protocol_errors() {
  return obs::Registry::instance().counter("serve.protocol_errors").value();
}

bool wait_for_protocol_errors(std::uint64_t at_least) {
  for (int i = 0; i < 400; ++i) {
    if (protocol_errors() >= at_least) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

TEST(ServeFault, DaemonSurvivesProtocolAbuse) {
  FaultDaemon daemon;
  const std::uint64_t base = protocol_errors();

  // 1. Unknown command: an err response, counted, connection stays usable.
  {
    const int fd = daemon.connect();
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(obs::send_all(fd, "frobnicate\n", 11));
    const std::string resp = recv_frame(fd);
    EXPECT_EQ(resp.rfind("err ", 0), 0u) << resp;
    // Same connection still serves after the rejected command.
    ASSERT_TRUE(obs::send_all(fd, "help\n", 5));
    EXPECT_EQ(recv_frame(fd).rfind("ok ", 0), 0u);
    ::close(fd);
  }
  EXPECT_TRUE(wait_for_protocol_errors(base + 1));

  // 2. Oversized line: rejected without reading a command out of it.
  {
    const int fd = daemon.connect();
    ASSERT_GE(fd, 0);
    const std::string big(8192, 'a');
    ASSERT_TRUE(obs::send_all(fd, big.data(), big.size()));
    const std::string resp = recv_frame(fd);
    EXPECT_EQ(resp, "err line too long\n");
    ::close(fd);
  }
  EXPECT_TRUE(wait_for_protocol_errors(base + 2));

  // 3. Truncated request: bytes but no newline, then EOF.
  {
    const int fd = daemon.connect();
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(obs::send_all(fd, "stat", 4));
    ::close(fd);
  }
  EXPECT_TRUE(wait_for_protocol_errors(base + 3));

  // 4. Mid-response disconnect: pipeline many commands, vanish immediately.
  //    Some response hits the closed peer; MSG_NOSIGNAL turns the would-be
  //    SIGPIPE into a counted error.
  {
    const int fd = daemon.connect();
    ASSERT_GE(fd, 0);
    std::string burst;
    for (int i = 0; i < 200; ++i) burst += "help\n";
    ASSERT_TRUE(obs::send_all(fd, burst.data(), burst.size()));
    ::close(fd);
  }
  EXPECT_TRUE(wait_for_protocol_errors(base + 4));

  // After all that abuse the daemon still answers real queries.
  {
    const int fd = daemon.connect();
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(obs::send_all(fd, "stats\n", 6));
    const std::string resp = recv_frame(fd);
    EXPECT_EQ(resp.rfind("ok ", 0), 0u) << resp;
    EXPECT_NE(resp.find("== serve stats =="), std::string::npos);
    ::close(fd);
  }
}

// ---------------------------------------------------------------------------
// Alert fire/resolve against a live paced daemon (the alerts_smoke ctest
// case)
// ---------------------------------------------------------------------------

struct AlertRow {
  std::string state;
  std::uint64_t fired = 0;
  std::uint64_t resolved = 0;
};

// Pulls one rule's row out of the rendered `alerts` table.
bool parse_alert_row(const std::string& body, const std::string& name,
                     AlertRow* row) {
  std::istringstream lines(body);
  for (std::string line; std::getline(lines, line);) {
    std::istringstream in(line);
    std::vector<std::string> tok;
    for (std::string t; in >> t;) tok.push_back(std::move(t));
    // alert kind series state pending fired resolved input
    if (tok.size() < 8 || tok[0] != name) continue;
    row->state = tok[3];
    row->fired = std::stoull(tok[5]);
    row->resolved = std::stoull(tok[6]);
    return true;
  }
  return false;
}

class AlertsDaemon {
 public:
  AlertsDaemon() {
    serve::DaemonOptions options;
    options.service.gen = test_config();
    // Two virtual days of probe rounds at 5 ms wall each: the ingest loop
    // keeps evaluating alerts for ~20 s of wall clock, far beyond what the
    // fire/resolve polling below needs.
    options.service.gen.probes.duration_s = 172800.0;
    options.service.window_rounds = 4;
    options.tick_sleep_ms = 5;
    std::string parse_error;
    EXPECT_TRUE(obs::parse_alert_rules(
        "alert proto_errs burn serve.protocol_errors >= 0.5 short=3 long=9\n"
        "alert quiet_burn burn serve.rounds >= 1000 short=3 long=9\n"
        "alert never threshold serve.time_s < 0\n",
        "alerts_smoke_rules", &options.service.alerts, &parse_error))
        << parse_error;
    options.listen = "unix:" + socket_path();
    std::string error;
    daemon_ = serve::ServeDaemon::start(options, &error);
    EXPECT_NE(daemon_, nullptr) << error;
    if (daemon_ != nullptr) {
      runner_ = std::thread([this] { daemon_->run(); });
    }
  }

  ~AlertsDaemon() {
    if (daemon_ != nullptr) daemon_->request_shutdown();
    if (runner_.joinable()) runner_.join();
  }

  static std::string socket_path() {
    return std::string(::testing::TempDir()) + "wmesh_serve_alerts.sock";
  }

  // One framed query over a fresh connection (the server is serial, so a
  // held-open connection would block everything else).
  std::string query(const std::string& cmd) const {
    std::string error;
    const int fd = obs::connect_socket("unix:" + socket_path(), &error);
    EXPECT_GE(fd, 0) << error;
    if (fd < 0) return "";
    const std::string line = cmd + "\n";
    EXPECT_TRUE(obs::send_all(fd, line.data(), line.size()));
    const std::string resp = recv_frame(fd);
    ::close(fd);
    return resp;
  }

 private:
  std::unique_ptr<serve::ServeDaemon> daemon_;
  std::thread runner_;
};

TEST(AlertsSmoke, BurnRuleFiresOnInducedErrorsAndResolvesAfterRecovery) {
  AlertsDaemon daemon;

  // Degrade: bursts of unknown commands drive serve.protocol_errors until
  // the burn rule's short and long windows are both hot.  fired/resolved
  // are monotone counters, so a fire that resolves between polls still
  // counts.
  AlertRow proto;
  bool fired = false;
  for (int iter = 0; iter < 400 && !fired; ++iter) {
    for (int i = 0; i < 10; ++i) {
      const std::string resp = daemon.query("frobnicate");
      ASSERT_EQ(resp.rfind("err ", 0), 0u) << resp;
    }
    const std::string body = daemon.query("alerts");
    ASSERT_EQ(body.rfind("ok ", 0), 0u) << body;
    ASSERT_TRUE(parse_alert_row(body, "proto_errs", &proto)) << body;
    fired = proto.fired >= 1;
    if (!fired) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(fired) << "burn rule never fired under induced errors";

  // Exactly the matching rule fired: the impossible burn and threshold
  // rules stayed quiet through the same degradation.
  {
    const std::string body = daemon.query("alerts");
    AlertRow other;
    ASSERT_TRUE(parse_alert_row(body, "quiet_burn", &other)) << body;
    EXPECT_EQ(other.fired, 0u) << body;
    ASSERT_TRUE(parse_alert_row(body, "never", &other)) << body;
    EXPECT_EQ(other.fired, 0u) << body;
  }

  // Recover: stop the abuse and wait for the error rate to drain out of
  // the long window; the rule must resolve.
  bool resolved = false;
  for (int iter = 0; iter < 600 && !resolved; ++iter) {
    const std::string body = daemon.query("alerts");
    ASSERT_EQ(body.rfind("ok ", 0), 0u) << body;
    ASSERT_TRUE(parse_alert_row(body, "proto_errs", &proto)) << body;
    resolved = proto.resolved >= 1;
    if (!resolved) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(resolved) << "burn rule never resolved after recovery";
}

// ---------------------------------------------------------------------------
// End-to-end smoke over the real binary (the serve_smoke ctest case)
// ---------------------------------------------------------------------------

TEST(ServeSmoke, BinaryServesQueriesMetricsAndRunReport) {
  const std::string dir = ::testing::TempDir();
  const std::string query_addr = dir + "wmesh_serve_smoke_q.sock";
  const std::string metrics_addr = dir + "wmesh_serve_smoke_m.sock";
  const std::string report_path = dir + "wmesh_serve_smoke.report.json";
  const std::string log_path = dir + "wmesh_serve_smoke.log";
  std::remove(query_addr.c_str());
  std::remove(metrics_addr.c_str());
  std::remove(report_path.c_str());

  const std::string listen_flag = "--listen=unix:" + query_addr;
  const std::string metrics_flag = "--metrics-listen=unix:" + metrics_addr;
  const std::string report_flag = "--report=" + report_path;

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    std::freopen(log_path.c_str(), "w", stdout);
    std::freopen(log_path.c_str(), "w", stderr);
    ::execl(WMESH_SERVE_BIN, WMESH_SERVE_BIN, listen_flag.c_str(),
            metrics_flag.c_str(), report_flag.c_str(), "--config=small",
            "--seed=7", "--duration=1200", "--window=4",
            static_cast<char*>(nullptr));
    std::_Exit(127);  // exec failed
  }

  // Wait for the query socket to accept (fleet generation happens first).
  int fd = -1;
  std::string error;
  for (int i = 0; i < 600 && fd < 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    fd = obs::connect_socket("unix:" + query_addr, &error);
  }
  ASSERT_GE(fd, 0) << "daemon never came up: " << error << "\n"
                   << slurp(log_path);

  // One query per section, all over one connection.
  for (const char* cmd : {"snr", "lookup", "exor", "anypath", "paths",
                          "hidden", "mobility", "traffic", "etx", "stats",
                          "help"}) {
    const std::string line = std::string(cmd) + "\n";
    ASSERT_TRUE(obs::send_all(fd, line.data(), line.size())) << cmd;
    const std::string resp = recv_frame(fd);
    EXPECT_EQ(resp.rfind("ok ", 0), 0u) << cmd << " -> " << resp;
  }

  // The OpenMetrics endpoint carries the serve.* families.
  std::string body;
  ASSERT_TRUE(obs::scrape_openmetrics_once("unix:" + metrics_addr, &body,
                                           &error))
      << error;
  for (const char* family :
       {"wmesh_serve_rounds_total", "wmesh_serve_reports_ingested_total",
        "wmesh_serve_queries_total", "wmesh_serve_connections_total",
        "wmesh_serve_query_us"}) {
    EXPECT_NE(body.find(family), std::string::npos)
        << "missing family " << family;
  }

  // Shutdown handshake, then a clean exit with a valid run report.
  ASSERT_TRUE(obs::send_all(fd, "shutdown\n", 9));
  EXPECT_EQ(recv_frame(fd), "ok 4\nbye\n");
  ::close(fd);

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << slurp(log_path);
  EXPECT_EQ(WEXITSTATUS(status), 0) << slurp(log_path);

  const std::string report = slurp(report_path);
  EXPECT_NE(report.find("\"schema\": \"wmesh.run_report/1\""),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("\"tool\": \"wmesh_serve\""), std::string::npos);
}

}  // namespace
}  // namespace wmesh

// Unit tests for util/rng.h: determinism, forking, distribution sanity.
#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/stats.h"

namespace wmesh {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  // The fork's stream must be reproducible from the parent's state at fork
  // time, and advancing the child must not affect the parent.
  Rng parent1(99);
  Rng child1 = parent1.fork();
  const auto p_next = parent1.next_u64();

  Rng parent2(99);
  Rng child2 = parent2.fork();
  for (int i = 0; i < 10; ++i) (void)child2.next_u64();
  EXPECT_EQ(parent2.next_u64(), p_next);
  EXPECT_EQ(child1.next_u64(), Rng(99).fork().next_u64());
  (void)child2;
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit over 1000 draws
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(8);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(0.5));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(10);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BinomialEdgesAndMean) {
  Rng rng(11);
  EXPECT_EQ(rng.binomial(0, 0.5), 0);
  EXPECT_EQ(rng.binomial(10, 0.0), 0);
  EXPECT_EQ(rng.binomial(10, 1.0), 10);
  RunningStats s;
  for (int i = 0; i < 5000; ++i) s.add(rng.binomial(20, 0.25));
  EXPECT_NEAR(s.mean(), 5.0, 0.15);
}

TEST(Rng, PickWeightedRespectsWeights) {
  Rng rng(12);
  const double w[3] = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.pick_weighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.35);
}

TEST(Rng, LognormalMedian) {
  Rng rng(13);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) v.push_back(rng.lognormal(1.0, 0.5));
  EXPECT_NEAR(median(v), std::exp(1.0), 0.08);
}

}  // namespace
}  // namespace wmesh

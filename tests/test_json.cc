#include "util/json.h"

#include <gtest/gtest.h>

#include <string>

namespace wmesh::json {
namespace {

Value must_parse(const std::string& text) {
  std::string err;
  auto v = parse(text, &err);
  EXPECT_TRUE(v.has_value()) << err;
  return v ? *v : Value{};
}

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(must_parse("null").is_null());
  EXPECT_TRUE(must_parse("true").boolean);
  EXPECT_FALSE(must_parse("false").boolean);
  EXPECT_DOUBLE_EQ(must_parse("42").number, 42.0);
  EXPECT_DOUBLE_EQ(must_parse("-3.25e2").number, -325.0);
  EXPECT_EQ(must_parse("\"hi\"").string, "hi");
  EXPECT_DOUBLE_EQ(must_parse("  7  ").number, 7.0);  // outer whitespace ok
}

TEST(Json, ParsesNestedStructures) {
  const Value v = must_parse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
  ASSERT_TRUE(v.is_object());
  const Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  EXPECT_TRUE(a->array[2].find("b")->boolean);
  EXPECT_TRUE(v.find("c")->find("d")->is_null());
  EXPECT_EQ(v.find("nope"), nullptr);
}

TEST(Json, PreservesObjectMemberOrder) {
  const Value v = must_parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].first, "z");
  EXPECT_EQ(v.object[1].first, "a");
  EXPECT_EQ(v.object[2].first, "m");
}

TEST(Json, DecodesStringEscapes) {
  const Value v = must_parse(R"("a\"b\\c\/d\n\tA")");
  EXPECT_EQ(v.string, "a\"b\\c/d\n\tA");
}

TEST(Json, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(parse("", &err).has_value());
  EXPECT_FALSE(parse("{", &err).has_value());
  EXPECT_FALSE(parse("[1, 2,]", &err).has_value());
  EXPECT_FALSE(parse("{\"a\": 1,}", &err).has_value());
  EXPECT_FALSE(parse("\"unterminated", &err).has_value());
  EXPECT_FALSE(parse("\"bad \\q escape\"", &err).has_value());
  EXPECT_FALSE(parse("01", &err).has_value());   // leading zero
  EXPECT_FALSE(parse("1.", &err).has_value());   // digits required
  EXPECT_FALSE(parse("nul", &err).has_value());
  EXPECT_FALSE(parse("1 2", &err).has_value());  // trailing garbage
  EXPECT_FALSE(parse("{} []", &err).has_value());
  // The diagnostic carries an offset prefix.
  EXPECT_EQ(err.rfind("json:", 0), 0u);
}

TEST(Json, RejectsPathologicalNesting) {
  std::string deep;
  for (int i = 0; i < 400; ++i) deep += '[';
  for (int i = 0; i < 400; ++i) deep += ']';
  EXPECT_FALSE(parse(deep).has_value());
}

TEST(Json, EqualsIgnoresMemberOrderButNotValues) {
  const Value a = must_parse(R"({"x": 1, "y": [true, "s"]})");
  const Value b = must_parse(R"({"y": [true, "s"], "x": 1})");
  const Value c = must_parse(R"({"x": 2, "y": [true, "s"]})");
  EXPECT_TRUE(a.equals(b));
  EXPECT_TRUE(b.equals(a));
  EXPECT_FALSE(a.equals(c));
  EXPECT_FALSE(must_parse("[1, 2]").equals(must_parse("[2, 1]")));
}

}  // namespace
}  // namespace wmesh::json

// Monte-Carlo validation of the §5 closed-form costs (core/exor_sim.h).
#include "core/exor_sim.h"

#include <gtest/gtest.h>

#include "core/exor.h"

namespace wmesh {
namespace {

PacketSimParams quick(std::size_t packets = 4000) {
  PacketSimParams p;
  p.packets = packets;
  return p;
}

TEST(EtxSim, SingleLinkMatchesExpectation) {
  SuccessMatrix m(2);
  m.set(0, 1, 0.5);
  m.set(1, 0, 1.0);
  EtxGraph g(m, EtxVariant::kEtx1);
  Rng rng(1);
  const auto r = simulate_etx_path(m, g, 0, 1, quick(), rng);
  EXPECT_EQ(r.delivered, r.packets);
  EXPECT_NEAR(r.mean_transmissions, 2.0, 0.1);  // 1/p = 2
}

TEST(EtxSim, Etx2AccountsForLostAcks) {
  SuccessMatrix m(2);
  m.set(0, 1, 0.8);
  m.set(1, 0, 0.5);
  EtxGraph g(m, EtxVariant::kEtx2);
  Rng rng(2);
  const auto r = simulate_etx_path(m, g, 0, 1, quick(), rng);
  EXPECT_NEAR(r.mean_transmissions, 1.0 / (0.8 * 0.5), 0.15);
}

TEST(EtxSim, ChainCostIsSumOfLinks) {
  SuccessMatrix m(4);
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    m.set(static_cast<ApId>(i), static_cast<ApId>(i + 1), 0.8);
    m.set(static_cast<ApId>(i + 1), static_cast<ApId>(i), 0.8);
  }
  EtxGraph g(m, EtxVariant::kEtx1);
  Rng rng(3);
  const auto r = simulate_etx_path(m, g, 0, 3, quick(), rng);
  EXPECT_NEAR(r.mean_transmissions, 3.0 / 0.8, 0.15);
}

TEST(EtxSim, UnreachablePairDeliversNothing) {
  SuccessMatrix m(3);
  m.set(0, 1, 0.9);
  EtxGraph g(m, EtxVariant::kEtx1);
  Rng rng(4);
  const auto r = simulate_etx_path(m, g, 0, 2, quick(100), rng);
  EXPECT_EQ(r.delivered, 0u);
  EXPECT_DOUBLE_EQ(r.delivery_fraction, 0.0);
}

TEST(ExorSim, SingleLinkEqualsEtx) {
  SuccessMatrix m(2);
  m.set(0, 1, 0.4);
  m.set(1, 0, 1.0);
  EtxGraph g(m, EtxVariant::kEtx1);
  Rng rng(5);
  const auto r =
      simulate_exor(m, g.shortest_to(1), 0, 1, quick(), rng);
  EXPECT_EQ(r.delivered, r.packets);
  EXPECT_NEAR(r.mean_transmissions, 2.5, 0.12);
}

TEST(ExorSim, MatchesClosedFormOnPaperChain) {
  // The §5.2.2 example: analytic ExOR cost ~1.828 transmissions.
  SuccessMatrix m(3);
  m.set(0, 1, 0.9);
  m.set(1, 0, 0.9);
  m.set(1, 2, 0.9);
  m.set(2, 1, 0.9);
  m.set(0, 2, 0.3);
  m.set(2, 0, 0.3);
  EtxGraph g(m, EtxVariant::kEtx1);
  const auto etx_to = g.shortest_to(2);
  const auto analytic = exor_costs_to(m, etx_to);
  Rng rng(6);
  const auto r = simulate_exor(m, etx_to, 0, 2, quick(8000), rng);
  EXPECT_EQ(r.delivered, r.packets);
  EXPECT_NEAR(r.mean_transmissions, analytic[0], 0.06);
}

// Property: simulated ExOR transmissions match exor_costs_to() within
// Monte-Carlo error on random connected matrices -- the core validation of
// the paper's methodology.
class ExorSimAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExorSimAgreement, SimMatchesAnalytic) {
  Rng gen(GetParam());
  const std::size_t n = 5;
  SuccessMatrix m(n);
  for (ApId a = 0; a < n; ++a) {
    for (ApId b = 0; b < n; ++b) {
      if (a != b) m.set(a, b, gen.uniform(0.25, 1.0));
    }
  }
  EtxGraph g(m, EtxVariant::kEtx1, /*min_delivery=*/0.0);
  const auto etx_to = g.shortest_to(n - 1);
  const auto analytic = exor_costs_to(m, etx_to);
  Rng rng(GetParam() + 1000);
  const auto r = simulate_exor(m, etx_to, 0, n - 1, quick(6000), rng);
  ASSERT_EQ(r.delivered, r.packets);
  // 3-sigma-ish band for the Monte-Carlo mean.
  EXPECT_NEAR(r.mean_transmissions, analytic[0],
              std::max(0.05, 0.05 * analytic[0]));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExorSimAgreement,
                         ::testing::Range<std::uint64_t>(1, 13));

// Property: simulated ExOR never needs more transmissions than simulated
// single-path ETX on the same matrix (in expectation, with slack).
class ExorBeatsEtxSim : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExorBeatsEtxSim, OpportunismNeverHurts) {
  Rng gen(GetParam() * 7);
  const std::size_t n = 6;
  SuccessMatrix m(n);
  for (ApId a = 0; a < n; ++a) {
    for (ApId b = 0; b < n; ++b) {
      if (a != b) m.set(a, b, gen.uniform(0.2, 1.0));
    }
  }
  EtxGraph g(m, EtxVariant::kEtx1, /*min_delivery=*/0.0);
  Rng rng_a(GetParam() + 5), rng_b(GetParam() + 6);
  const auto etx = simulate_etx_path(m, g, 0, n - 1, quick(5000), rng_a);
  const auto exor =
      simulate_exor(m, g.shortest_to(n - 1), 0, n - 1, quick(5000), rng_b);
  EXPECT_LE(exor.mean_transmissions,
            etx.mean_transmissions * 1.05 + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExorBeatsEtxSim,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace wmesh

// Round-trip tests for trace/io.h.
#include "trace/io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "sim/generator.h"

namespace wmesh {
namespace {

std::string temp_prefix(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void cleanup(const std::string& prefix) {
  std::remove((prefix + ".probes.csv").c_str());
  std::remove((prefix + ".clients.csv").c_str());
}

Dataset tiny_dataset() {
  GeneratorConfig c = small_config();
  c.probes.duration_s = 1200.0;
  c.seed = 424242;
  return generate_dataset(c);
}

TEST(TraceIo, RoundTripPreservesStructure) {
  const Dataset original = tiny_dataset();
  const std::string prefix = temp_prefix("wmesh_io_roundtrip");
  ASSERT_TRUE(save_dataset(original, prefix));

  Dataset loaded;
  ASSERT_TRUE(load_dataset(prefix, &loaded));
  ASSERT_EQ(loaded.networks.size(), original.networks.size());

  for (std::size_t n = 0; n < original.networks.size(); ++n) {
    const auto& a = original.networks[n];
    const auto& b = loaded.networks[n];
    EXPECT_EQ(a.info.id, b.info.id);
    EXPECT_EQ(a.info.env, b.info.env);
    EXPECT_EQ(a.info.standard, b.info.standard);
    EXPECT_EQ(a.ap_count, b.ap_count);
    ASSERT_EQ(a.probe_sets.size(), b.probe_sets.size());
    for (std::size_t i = 0; i < a.probe_sets.size(); ++i) {
      const auto& pa = a.probe_sets[i];
      const auto& pb = b.probe_sets[i];
      EXPECT_EQ(pa.from, pb.from);
      EXPECT_EQ(pa.to, pb.to);
      EXPECT_EQ(pa.time_s, pb.time_s);
      EXPECT_NEAR(pa.snr_db, pb.snr_db, 0.01);
      ASSERT_EQ(pa.entries.size(), pb.entries.size());
      for (std::size_t e = 0; e < pa.entries.size(); ++e) {
        EXPECT_EQ(pa.entries[e].rate, pb.entries[e].rate);
        EXPECT_NEAR(pa.entries[e].loss, pb.entries[e].loss, 1e-4);
        if (std::isnan(pa.entries[e].snr_db)) {
          EXPECT_TRUE(std::isnan(pb.entries[e].snr_db));
        } else {
          EXPECT_NEAR(pa.entries[e].snr_db, pb.entries[e].snr_db, 0.01);
        }
      }
    }
  }
  cleanup(prefix);
}

TEST(TraceIo, RoundTripPreservesClientSamples) {
  const Dataset original = tiny_dataset();
  const std::string prefix = temp_prefix("wmesh_io_clients");
  ASSERT_TRUE(save_dataset(original, prefix));
  Dataset loaded;
  ASSERT_TRUE(load_dataset(prefix, &loaded));

  std::size_t orig_samples = 0, loaded_samples = 0;
  for (const auto& nt : original.networks) orig_samples += nt.client_samples.size();
  for (const auto& nt : loaded.networks) loaded_samples += nt.client_samples.size();
  ASSERT_GT(orig_samples, 0u);
  EXPECT_EQ(orig_samples, loaded_samples);

  // Spot-check the first network with clients.
  for (std::size_t n = 0; n < original.networks.size(); ++n) {
    const auto& a = original.networks[n];
    if (a.client_samples.empty()) continue;
    // Loaded samples attach to the first trace with the same network id.
    const NetworkTrace* b = nullptr;
    for (const auto& cand : loaded.networks) {
      if (cand.info.id == a.info.id) {
        b = &cand;
        break;
      }
    }
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(a.client_samples.size(), b->client_samples.size());
    for (std::size_t i = 0; i < a.client_samples.size(); ++i) {
      EXPECT_EQ(a.client_samples[i].client, b->client_samples[i].client);
      EXPECT_EQ(a.client_samples[i].ap, b->client_samples[i].ap);
      EXPECT_EQ(a.client_samples[i].bucket, b->client_samples[i].bucket);
      EXPECT_EQ(a.client_samples[i].assoc_requests,
                b->client_samples[i].assoc_requests);
    }
    break;
  }
  cleanup(prefix);
}

TEST(TraceIo, LoadFailsOnMissingFiles) {
  Dataset ds;
  EXPECT_FALSE(load_dataset("/nonexistent-dir-xyz/prefix", &ds));
}

TEST(TraceIo, SaveFailsOnBadPath) {
  EXPECT_FALSE(save_dataset(Dataset{}, "/nonexistent-dir-xyz/prefix"));
}

TEST(TraceIo, EmptyDatasetRoundTrips) {
  const std::string prefix = temp_prefix("wmesh_io_empty");
  ASSERT_TRUE(save_dataset(Dataset{}, prefix));
  Dataset loaded;
  ASSERT_TRUE(load_dataset(prefix, &loaded));
  EXPECT_TRUE(loaded.networks.empty());
  cleanup(prefix);
}

TEST(TraceIo, DatasetCountsHelpers) {
  const Dataset ds = tiny_dataset();
  EXPECT_GT(ds.total_probe_sets(), 0u);
  EXPECT_GT(ds.total_aps(), 0u);
  // small_config has one dual-radio network: total_aps counts it once, so
  // the sum over traces is strictly larger.
  std::size_t per_trace = 0;
  for (const auto& nt : ds.networks) per_trace += nt.ap_count;
  EXPECT_LT(ds.total_aps(), per_trace);
}

}  // namespace
}  // namespace wmesh

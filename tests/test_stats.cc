// Unit tests for util/stats.h: moments, quantiles, CDFs, histograms.
#include "util/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

namespace wmesh {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.5);
  EXPECT_DOUBLE_EQ(s.max(), 42.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0}) s.add(v);
  EXPECT_NEAR(s.sample_variance(), 1.0, 1e-12);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  std::mt19937_64 gen(7);
  std::normal_distribution<double> d(3.0, 2.0);
  RunningStats a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double v = d(gen);
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Quantile, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(quantile_sorted({}, 0.5), 0.0);
  const std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 1.0), 7.0);
}

TEST(Quantile, LinearInterpolation) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0 / 3.0), 20.0);
}

TEST(Quantile, ClampsOutOfRange) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.5), 2.0);
}

TEST(Quantile, UnsortedWrapperSorts) {
  const std::vector<double> v = {30.0, 10.0, 20.0};
  EXPECT_DOUBLE_EQ(median(v), 20.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 10.0);
}

TEST(MeanStddev, Simple) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(stddev(v), std::sqrt(1.25), 1e-12);
}

TEST(Summarize, FiveNumber) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(static_cast<double>(i));
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 101u);
  EXPECT_DOUBLE_EQ(s.median, 51.0);
  EXPECT_DOUBLE_EQ(s.p25, 26.0);
  EXPECT_DOUBLE_EQ(s.p75, 76.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 101.0);
  EXPECT_DOUBLE_EQ(s.mean, 51.0);
}

TEST(Summarize, Empty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
}

TEST(Cdf, FractionAtOrBelow) {
  Cdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(99.0), 1.0);
}

TEST(Cdf, SortsInput) {
  Cdf cdf({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.median(), 2.5);
  EXPECT_TRUE(std::is_sorted(cdf.sorted_values().begin(),
                             cdf.sorted_values().end()));
}

TEST(Cdf, EmptyBehaves) {
  Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.5), 0.0);
  EXPECT_TRUE(cdf.curve().empty());
}

TEST(Cdf, CurveEndsAtOne) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(static_cast<double>(i % 37));
  Cdf cdf(v);
  const auto curve = cdf.curve(50);
  ASSERT_FALSE(curve.empty());
  EXPECT_LE(curve.size(), 60u);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 36.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LT(curve[i - 1].second, curve[i].second + 1e-12);
  }
}

TEST(Cdf, InverseMatchesQuantile) {
  std::vector<double> v = {5.0, 1.0, 9.0, 3.0, 7.0};
  Cdf cdf(v);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.5), median(v));
  EXPECT_DOUBLE_EQ(cdf.value_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(1.0), 9.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 4
  h.add(-3.0);  // clamped to bin 0
  h.add(25.0);  // clamped to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
}

TEST(Histogram, ZeroBinsDegradesToOne) {
  Histogram h(0.0, 1.0, 0);
  h.add(0.5);
  EXPECT_EQ(h.bins(), 1u);
  EXPECT_EQ(h.total(), 1u);
}

// Property: quantile_sorted at k/(n-1) returns exactly the k-th sorted value.
class QuantileExactness : public ::testing::TestWithParam<int> {};

TEST_P(QuantileExactness, HitsSamplePoints) {
  const int n = GetParam();
  std::mt19937_64 gen(static_cast<std::uint64_t>(n));
  std::uniform_real_distribution<double> d(-100.0, 100.0);
  std::vector<double> v;
  for (int i = 0; i < n; ++i) v.push_back(d(gen));
  std::sort(v.begin(), v.end());
  for (int k = 0; k < n; ++k) {
    const double q = static_cast<double>(k) / static_cast<double>(n - 1);
    EXPECT_NEAR(quantile_sorted(v, q), v[static_cast<std::size_t>(k)], 1e-9)
        << "n=" << n << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, QuantileExactness,
                         ::testing::Values(2, 3, 5, 17, 101));

// Property: CDF and quantile are inverse-consistent for random samples.
class CdfRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CdfRoundTrip, QuantileOfFractionBrackets) {
  std::mt19937_64 gen(GetParam());
  std::normal_distribution<double> d(0.0, 5.0);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(d(gen));
  Cdf cdf(v);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double x = cdf.value_at(q);
    // The fraction at the quantile must bracket q within one sample step.
    const double f = cdf.fraction_at_or_below(x);
    EXPECT_GE(f, q - 2.0 / 500.0);
    EXPECT_LE(f - q, 2.0 / 500.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace wmesh

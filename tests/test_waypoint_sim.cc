// Tests for clients/waypoint_sim.h: the physical mobility model.
#include "clients/waypoint_sim.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/mobility.h"
#include "mesh/topology.h"
#include "util/stats.h"

namespace wmesh {
namespace {

MeshNetwork grid_net(std::size_t n, std::uint64_t seed = 1) {
  Rng rng(seed);
  auto aps = make_grid_topology(n, indoor_topology_params(), rng);
  NetworkInfo info;
  info.id = 4;
  return MeshNetwork(info, aps);
}

WaypointParams quick(double hours = 3.0) {
  WaypointParams p;
  p.duration_s = hours * 3600.0;
  return p;
}

TEST(Waypoint, SchemaIsSortedAndValid) {
  Rng rng(1);
  const auto net = grid_net(9);
  const auto samples =
      simulate_waypoint_clients(net, indoor_channel_params(), quick(), rng);
  ASSERT_FALSE(samples.empty());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_LT(samples[i].ap, net.size());
    if (i == 0) continue;
    const auto& a = samples[i - 1];
    const auto& b = samples[i];
    EXPECT_TRUE(a.client < b.client ||
                (a.client == b.client && a.bucket < b.bucket));
  }
}

TEST(Waypoint, Deterministic) {
  Rng a(2), b(2);
  const auto net = grid_net(9);
  const auto sa =
      simulate_waypoint_clients(net, indoor_channel_params(), quick(), a);
  const auto sb =
      simulate_waypoint_clients(net, indoor_channel_params(), quick(), b);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].ap, sb[i].ap);
    EXPECT_EQ(sa[i].bucket, sb[i].bucket);
  }
}

TEST(Waypoint, AllStaticClientsNeverSwitch) {
  Rng rng(3);
  WaypointParams p = quick();
  p.static_fraction = 1.0;
  p.transient_fraction = 0.0;
  const auto net = grid_net(9);
  const auto samples =
      simulate_waypoint_clients(net, indoor_channel_params(), p, rng);
  std::map<std::uint32_t, std::set<ApId>> aps;
  for (const auto& s : samples) aps[s.client].insert(s.ap);
  ASSERT_FALSE(aps.empty());
  for (const auto& [client, set] : aps) {
    EXPECT_EQ(set.size(), 1u) << "client " << client;
  }
}

TEST(Waypoint, HysteresisReducesSwitching) {
  const auto net = grid_net(12, 7);
  auto switches = [&](double hysteresis_db, std::uint64_t seed) {
    Rng rng(seed);
    WaypointParams p = quick(6.0);
    p.static_fraction = 0.0;
    p.transient_fraction = 0.0;
    p.hysteresis_db = hysteresis_db;
    const auto samples =
        simulate_waypoint_clients(net, indoor_channel_params(), p, rng);
    std::size_t sw = 0;
    const ClientSample* prev = nullptr;
    for (const auto& s : samples) {
      if (prev != nullptr && prev->client == s.client &&
          s.bucket == prev->bucket + 1 && s.ap != prev->ap) {
        ++sw;
      }
      prev = &s;
    }
    return sw;
  };
  EXPECT_LT(switches(8.0, 5), switches(0.0, 5));
}

TEST(Waypoint, TransientsAreShorterSessions) {
  Rng rng(6);
  WaypointParams p = quick(6.0);
  p.transient_fraction = 1.0;
  p.transient_median_s = 30 * 60.0;
  const auto net = grid_net(9);
  const auto samples =
      simulate_waypoint_clients(net, indoor_channel_params(), p, rng);
  NetworkTrace nt;
  nt.client_samples = samples;
  const auto m = analyze_mobility(nt);
  ASSERT_FALSE(m.connection_length_min.empty());
  // Median session well below the 6-hour trace.
  EXPECT_LT(median(m.connection_length_min), 4.0 * 60.0);
}

TEST(Waypoint, ReproducesIndoorOutdoorOrdering) {
  // The §7 ordering must emerge from physics alone: the same walker
  // population in an outdoor (sparser, gentler path loss) deployment
  // switches APs less often per connected interval.
  auto switch_rate = [](Environment env, std::uint64_t seed) {
    Rng rng(seed);
    const TopologyParams topo = env == Environment::kOutdoor
                                    ? outdoor_topology_params()
                                    : indoor_topology_params();
    Rng topo_rng(seed + 1);
    auto aps = make_grid_topology(12, topo, topo_rng);
    NetworkInfo info;
    info.env = env;
    MeshNetwork net(info, aps);
    WaypointParams p;
    p.duration_s = 8 * 3600.0;
    p.static_fraction = 0.2;
    p.transient_fraction = 0.0;
    const auto samples = simulate_waypoint_clients(
        net, channel_params_for(env), p, rng);
    std::size_t switches = 0, pairs = 0;
    const ClientSample* prev = nullptr;
    for (const auto& s : samples) {
      if (prev != nullptr && prev->client == s.client &&
          s.bucket == prev->bucket + 1) {
        ++pairs;
        switches += (s.ap != prev->ap) ? 1 : 0;
      }
      prev = &s;
    }
    return static_cast<double>(switches) / static_cast<double>(pairs);
  };
  EXPECT_GT(switch_rate(Environment::kIndoor, 11),
            switch_rate(Environment::kOutdoor, 11));
}

TEST(Waypoint, AssocRequestFlagsSwitches) {
  Rng rng(8);
  const auto net = grid_net(9);
  const auto samples =
      simulate_waypoint_clients(net, indoor_channel_params(), quick(), rng);
  const ClientSample* prev = nullptr;
  for (const auto& s : samples) {
    const bool contiguous = prev != nullptr && prev->client == s.client &&
                            s.bucket == prev->bucket + 1;
    if (!contiguous || s.ap != prev->ap) {
      EXPECT_EQ(s.assoc_requests, 1);
    } else {
      EXPECT_EQ(s.assoc_requests, 0);
    }
    prev = &s;
  }
}

}  // namespace
}  // namespace wmesh

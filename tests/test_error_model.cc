// Unit and property tests for phy/error_model.h.
#include "phy/error_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace wmesh {
namespace {

BitRate test_rate(double thr = 10.0, double width = 2.0, int kbps = 24'000) {
  BitRate r;
  r.kbps = kbps;
  r.thr50_db = thr;
  r.width_db = width;
  r.name = "test";
  return r;
}

TEST(ErrorModel, HalfDeliveryAtThreshold) {
  const BitRate r = test_rate();
  EXPECT_NEAR(delivery_probability(r, 10.0), 0.5, 1e-12);
}

TEST(ErrorModel, ExtremesSaturate) {
  const BitRate r = test_rate();
  EXPECT_DOUBLE_EQ(delivery_probability(r, 1000.0), 1.0);
  EXPECT_DOUBLE_EQ(delivery_probability(r, -1000.0), 0.0);
}

TEST(ErrorModel, SymmetricAroundThreshold) {
  const BitRate r = test_rate();
  for (double d : {0.5, 1.0, 3.0, 7.0}) {
    EXPECT_NEAR(delivery_probability(r, 10.0 + d) +
                    delivery_probability(r, 10.0 - d),
                1.0, 1e-12);
  }
}

TEST(ErrorModel, InverseRoundTrip) {
  const BitRate r = test_rate(5.0, 1.3);
  for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    const double snr = snr_for_delivery(r, p);
    EXPECT_NEAR(delivery_probability(r, snr), p, 1e-9);
  }
}

TEST(ErrorModel, InverseClampsP) {
  const BitRate r = test_rate();
  EXPECT_TRUE(std::isfinite(snr_for_delivery(r, 0.0)));
  EXPECT_TRUE(std::isfinite(snr_for_delivery(r, 1.0)));
  EXPECT_LT(snr_for_delivery(r, 0.0), snr_for_delivery(r, 1.0));
}

TEST(ErrorModel, TenPercentPointFormula) {
  const BitRate r = test_rate(8.0, 1.5);
  // logistic^-1(0.1) = -ln 9
  EXPECT_NEAR(snr_for_delivery(r, 0.1), 8.0 - 1.5 * std::log(9.0), 1e-9);
}

TEST(ErrorModel, ThroughputDefinition) {
  const BitRate r = test_rate(10.0, 2.0, 36'000);
  EXPECT_DOUBLE_EQ(throughput_mbps(r, 1.0), 36.0);
  EXPECT_DOUBLE_EQ(throughput_mbps(r, 0.5), 18.0);
  EXPECT_DOUBLE_EQ(throughput_from_loss_mbps(r, 0.25), 27.0);
  EXPECT_DOUBLE_EQ(throughput_from_loss_mbps(r, 1.0), 0.0);
}

// Property: delivery probability is monotone in SNR for every probed rate of
// both standards, and lies in [0, 1].
class MonotoneDelivery : public ::testing::TestWithParam<Standard> {};

TEST_P(MonotoneDelivery, AllRates) {
  for (const BitRate& r : probed_rates(GetParam())) {
    double prev = -1.0;
    for (double snr = -30.0; snr <= 60.0; snr += 0.25) {
      const double p = delivery_probability(r, snr);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      EXPECT_GE(p, prev) << r.name << " at " << snr;
      prev = p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Standards, MonotoneDelivery,
                         ::testing::Values(Standard::kBg, Standard::kN));

// Property: at any fixed SNR there is a single throughput-maximizing rate
// region structure -- specifically, max throughput over rates is monotone
// non-decreasing in SNR (more SNR can never hurt the best choice).
class BestThroughputMonotone : public ::testing::TestWithParam<Standard> {};

TEST_P(BestThroughputMonotone, MaxOverRates) {
  const auto rates = probed_rates(GetParam());
  double prev_best = 0.0;
  for (double snr = -10.0; snr <= 50.0; snr += 0.5) {
    double best = 0.0;
    for (const auto& r : rates) {
      best = std::max(best, throughput_mbps(r, delivery_probability(r, snr)));
    }
    EXPECT_GE(best + 1e-12, prev_best) << "snr " << snr;
    prev_best = best;
  }
}

INSTANTIATE_TEST_SUITE_P(Standards, BestThroughputMonotone,
                         ::testing::Values(Standard::kBg, Standard::kN));

TEST(ErrorModel, BgPlateauNearThirtyDb) {
  // Fig 4.5's calibration: at 30 dB the best b/g rate (48M) delivers >= 97%.
  const auto bg = probed_rates(Standard::kBg);
  const BitRate& r48 = bg[6];
  EXPECT_GE(delivery_probability(r48, 30.0), 0.97);
}

TEST(ErrorModel, NPlateauNearFifteenDb) {
  // The paper: 802.11n throughput levels off around 15 dB.  At 20 dB the top
  // MCS should already deliver most probes.
  const auto n = probed_rates(Standard::kN);
  EXPECT_GE(delivery_probability(n[15], 20.0), 0.8);
}

}  // namespace
}  // namespace wmesh

// Unit and behavioural tests for mac/csma.h.
#include "mac/csma.h"

#include <gtest/gtest.h>

namespace wmesh {
namespace {

SuccessMatrix sym(std::size_t n,
                  std::initializer_list<std::pair<ApId, ApId>> links) {
  SuccessMatrix m(n);
  for (const auto& [a, b] : links) {
    m.set(a, b, 0.95);
    m.set(b, a, 0.95);
  }
  return m;
}

MacParams quick(double load = 0.02) {
  MacParams p;
  p.sim_slots = 60'000;
  p.offered_load = load;
  return p;
}

TEST(Mac, EmptyGraphSilent) {
  const HearingGraph g(SuccessMatrix(3), 0.10);
  Rng rng(1);
  const auto r = simulate_csma(g, quick(), rng);
  EXPECT_EQ(r.attempted, 0u);
  EXPECT_EQ(r.delivered, 0u);
}

TEST(Mac, SinglePairNeverCollides) {
  // Two nodes that hear each other: carrier sense + half duplex still allow
  // simultaneous starts (both see idle in the same slot), but with only two
  // nodes the collision rate must be small at low load.
  const HearingGraph g(sym(2, {{0, 1}}), 0.10);
  Rng rng(2);
  const auto r = simulate_csma(g, quick(0.01), rng);
  EXPECT_GT(r.delivered, 100u);
  EXPECT_LT(r.collision_fraction, 0.08);
}

TEST(Mac, HiddenPairCollidesMuchMore) {
  // Classic hidden-terminal star: 1 and 2 both send to hub 0 and cannot
  // hear each other.  Compare with an exposed triangle of the same load.
  // Light (non-saturating) load: this is where the hidden pair's missing
  // carrier sense shows up directly, before exponential backoff blurs it.
  const HearingGraph star(sym(3, {{0, 1}, {0, 2}}), 0.10);
  const HearingGraph triangle(sym(3, {{0, 1}, {0, 2}, {1, 2}}), 0.10);
  Rng rng_a(3), rng_b(3);
  const auto hidden = simulate_csma(star, quick(0.004), rng_a);
  const auto exposed = simulate_csma(triangle, quick(0.004), rng_b);
  ASSERT_GT(hidden.attempted, 0u);
  ASSERT_GT(exposed.attempted, 0u);
  EXPECT_GT(hidden.collision_fraction, 3.0 * exposed.collision_fraction);
}

TEST(Mac, ConservativeCarrierSenseKillsHiddenCollisions) {
  // With 2-hop sensing, the two leaves of the star defer to each other.
  const HearingGraph star(sym(3, {{0, 1}, {0, 2}}), 0.10);
  MacParams plain = quick(0.004);
  MacParams conservative = quick(0.004);
  conservative.conservative_carrier_sense = true;
  Rng rng_a(4), rng_b(4);
  const auto loose = simulate_csma(star, plain, rng_a);
  const auto tight = simulate_csma(star, conservative, rng_b);
  EXPECT_LT(tight.collision_fraction, 0.5 * loose.collision_fraction);
}

TEST(Mac, LoadIncreasesCollisions) {
  const HearingGraph star(sym(4, {{0, 1}, {0, 2}, {0, 3}}), 0.10);
  Rng rng_a(5), rng_b(5);
  const auto light = simulate_csma(star, quick(0.001), rng_a);
  const auto heavy = simulate_csma(star, quick(0.008), rng_b);
  EXPECT_GT(heavy.collision_fraction, light.collision_fraction);
}

TEST(Mac, GoodputBookkeeping) {
  const HearingGraph g(sym(2, {{0, 1}}), 0.10);
  Rng rng(6);
  const MacParams p = quick(0.02);
  const auto r = simulate_csma(g, p, rng);
  EXPECT_NEAR(r.goodput_frames_per_kslot,
              1000.0 * static_cast<double>(r.delivered) /
                  static_cast<double>(p.sim_slots),
              1e-9);
  EXPECT_LE(r.delivered + r.collided, r.attempted);
}

TEST(Mac, Deterministic) {
  const HearingGraph g(sym(3, {{0, 1}, {1, 2}}), 0.10);
  Rng a(7), b(7);
  const auto ra = simulate_csma(g, quick(), a);
  const auto rb = simulate_csma(g, quick(), b);
  EXPECT_EQ(ra.delivered, rb.delivered);
  EXPECT_EQ(ra.collided, rb.collided);
  EXPECT_EQ(ra.attempted, rb.attempted);
}

}  // namespace
}  // namespace wmesh

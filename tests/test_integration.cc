// Integration tests: generate a small fleet end-to-end and assert the
// paper's qualitative findings hold on it.  These are the "does the whole
// reproduction hang together" checks; the bench binaries report the same
// quantities at full scale.
#include <gtest/gtest.h>

#include <cmath>

#include "core/exor.h"
#include "core/hidden.h"
#include "core/lookup_table.h"
#include "core/mobility.h"
#include "core/rate_selection.h"
#include "core/snr_stats.h"
#include "core/strategies.h"
#include "sim/generator.h"
#include "util/stats.h"

namespace wmesh {
namespace {

// One shared mid-size snapshot for all integration tests (generation is the
// expensive part).  ~20 networks, 2 hours.
const Dataset& snapshot() {
  static const Dataset ds = [] {
    GeneratorConfig c;
    c.seed = 20100521;  // the thesis' submission date
    c.fleet.network_count = 24;
    c.fleet.bg_only = 18;
    c.fleet.n_only = 4;
    c.fleet.both = 2;
    c.fleet.indoor = 16;
    c.fleet.outdoor = 5;
    c.fleet.min_size = 5;
    c.fleet.max_size = 40;
    c.fleet.force_max_network = false;
    c.probes.duration_s = 2 * 3600.0;
    return generate_dataset(c);
  }();
  return ds;
}

TEST(Integration, DatasetShape) {
  const auto& ds = snapshot();
  EXPECT_EQ(ds.networks.size(), 26u);  // 24 networks, 2 dual-radio
  EXPECT_GT(ds.total_probe_sets(), 1000u);
  for (const auto& nt : ds.networks) {
    EXPECT_GE(nt.ap_count, 5u);
    EXPECT_LE(nt.ap_count, 40u);
  }
}

TEST(Integration, GenerationIsDeterministic) {
  GeneratorConfig c = small_config();
  c.probes.duration_s = 1200.0;
  const Dataset a = generate_dataset(c);
  const Dataset b = generate_dataset(c);
  ASSERT_EQ(a.networks.size(), b.networks.size());
  ASSERT_EQ(a.total_probe_sets(), b.total_probe_sets());
  for (std::size_t i = 0; i < a.networks.size(); ++i) {
    ASSERT_EQ(a.networks[i].probe_sets.size(),
              b.networks[i].probe_sets.size());
    if (!a.networks[i].probe_sets.empty()) {
      EXPECT_FLOAT_EQ(a.networks[i].probe_sets[0].snr_db,
                      b.networks[i].probe_sets[0].snr_db);
    }
  }
}

TEST(Integration, SeedChangesData) {
  GeneratorConfig c = small_config();
  c.probes.duration_s = 1200.0;
  const Dataset a = generate_dataset(c);
  c.seed += 1;
  const Dataset b = generate_dataset(c);
  // Same structure sizes are possible, but the SNR values must differ.
  bool any_diff = a.total_probe_sets() != b.total_probe_sets();
  if (!any_diff) {
    for (std::size_t i = 0; i < a.networks.size() && !any_diff; ++i) {
      for (std::size_t j = 0;
           j < a.networks[i].probe_sets.size() && !any_diff; ++j) {
        any_diff = a.networks[i].probe_sets[j].snr_db !=
                   b.networks[i].probe_sets[j].snr_db;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Integration, Fig31_ProbeSetSigmaSmall) {
  const auto dev = snr_deviations(snapshot(), Standard::kBg);
  ASSERT_GT(dev.per_probe_set.size(), 100u);
  const Cdf cdf(dev.per_probe_set);
  // Paper: < 5 dB about 97.5% of the time.  Loose band: >= 90%.
  EXPECT_GE(cdf.fraction_at_or_below(5.0), 0.90);
  // And the network-level spread must dominate the probe-set spread.
  EXPECT_GT(median(dev.per_network), 2.0 * median(dev.per_probe_set));
}

TEST(Integration, Fig42_SpecificityReducesRatesNeeded) {
  const auto& ds = snapshot();
  const auto global =
      build_lookup_table(ds, Standard::kBg, TableScope::kGlobal);
  const auto link = build_lookup_table(ds, Standard::kBg, TableScope::kLink);
  const auto g_curve = rates_needed_curve(global, 0.95);
  const auto l_curve = rates_needed_curve(link, 0.95);
  // Mean over SNRs of the rates needed must shrink from global to link.
  const double g_mean = mean(g_curve.mean_rates);
  const double l_mean = mean(l_curve.mean_rates);
  EXPECT_GT(g_mean, l_mean);
  EXPECT_LT(l_mean, 1.6);  // per-link: usually a single rate suffices
}

TEST(Integration, Fig44_ScopeOrdering) {
  const auto& ds = snapshot();
  const double link =
      lookup_table_errors(ds, Standard::kBg, TableScope::kLink).exact_fraction;
  const double ap =
      lookup_table_errors(ds, Standard::kBg, TableScope::kAp).exact_fraction;
  const double net = lookup_table_errors(ds, Standard::kBg,
                                         TableScope::kNetwork).exact_fraction;
  const double global = lookup_table_errors(ds, Standard::kBg,
                                            TableScope::kGlobal).exact_fraction;
  EXPECT_GT(link, ap);
  EXPECT_GT(ap, net);
  EXPECT_GE(net, global - 0.02);  // paper: network ~ global
  EXPECT_GT(link, 0.7);           // per-link works well
  EXPECT_LT(global, 0.7);         // global does not
}

TEST(Integration, Fig44_BgEasierThanN) {
  const auto& ds = snapshot();
  const double bg =
      lookup_table_errors(ds, Standard::kBg, TableScope::kLink).exact_fraction;
  const double n =
      lookup_table_errors(ds, Standard::kN, TableScope::kLink).exact_fraction;
  EXPECT_GT(bg, n);  // more rates -> harder
}

TEST(Integration, Fig46_StrategiesComparable) {
  const auto& ds = snapshot();
  double lo = 1.0, hi = 0.0;
  for (const auto s : {UpdateStrategy::kFirst, UpdateStrategy::kMostRecent,
                       UpdateStrategy::kSubsampled, UpdateStrategy::kAll}) {
    StrategyParams p;
    p.strategy = s;
    const double acc = run_strategy(ds, Standard::kBg, p).overall_accuracy;
    lo = std::min(lo, acc);
    hi = std::max(hi, acc);
  }
  EXPECT_GT(lo, 0.55);        // all of them work
  EXPECT_LT(hi - lo, 0.15);   // and are comparable (paper: all within ~10%)
}

TEST(Integration, Fig51_Etx2GainsExceedEtx1) {
  const auto& ds = snapshot();
  std::vector<double> imp1, imp2;
  for (const auto& nt : ds.networks) {
    if (nt.info.standard != Standard::kBg || nt.ap_count < 5) continue;
    const auto success = mean_success_matrix(nt, 0);
    for (const auto& g : opportunistic_gains(success, EtxVariant::kEtx1)) {
      imp1.push_back(g.improvement());
    }
    for (const auto& g : opportunistic_gains(success, EtxVariant::kEtx2)) {
      imp2.push_back(g.improvement());
    }
  }
  ASSERT_GT(imp1.size(), 100u);
  EXPECT_GT(median(imp2), median(imp1));
  EXPECT_LT(median(imp1), 0.2);  // ETX1 gains are small (paper: .05-.08)
}

TEST(Integration, Fig53_MostPathsShortAtLowRate) {
  const auto& ds = snapshot();
  std::vector<double> hops;
  for (const auto& nt : ds.networks) {
    if (nt.info.standard != Standard::kBg || nt.ap_count < 5) continue;
    for (int h : path_lengths(mean_success_matrix(nt, 0))) {
      hops.push_back(static_cast<double>(h));
    }
  }
  ASSERT_FALSE(hops.empty());
  const Cdf cdf(hops);
  EXPECT_GE(cdf.fraction_at_or_below(3.0), 0.6);  // paper: >= 80% < 3 hops
}

TEST(Integration, Fig61_HiddenTriplesGrowWithRate) {
  const auto& ds = snapshot();
  const auto at1 = hidden_triples_per_network(ds, Standard::kBg, 0, 0.10);
  const auto at48 = hidden_triples_per_network(ds, Standard::kBg, 6, 0.10);
  ASSERT_FALSE(at1.fractions.empty());
  ASSERT_FALSE(at48.fractions.empty());
  EXPECT_GT(median(at48.fractions), median(at1.fractions));
}

TEST(Integration, Fig61_DsssExceptionElevenBelowSix) {
  const auto& ds = snapshot();
  const auto at6 = hidden_triples_per_network(ds, Standard::kBg, 1, 0.10);
  const auto at11 = hidden_triples_per_network(ds, Standard::kBg, 2, 0.10);
  EXPECT_LT(median(at11.fractions), median(at6.fractions) + 1e-9);
}

TEST(Integration, Fig62_RangeShrinksWithRate) {
  const auto ratios = range_ratios(snapshot(), Standard::kBg, 0.10);
  ASSERT_EQ(ratios.size(), 7u);
  // Mean ratio at 48M well below 1M's (which is 1 by construction).
  EXPECT_LT(mean(ratios[6]), 0.8);
  for (double r : ratios[0]) EXPECT_DOUBLE_EQ(r, 1.0);
  // High variance across networks is part of the finding.
  EXPECT_GT(stddev(ratios[6]), 0.02);
}

TEST(Integration, Fig73_OutdoorPrevalenceHigher) {
  const auto& ds = snapshot();
  const auto indoor = analyze_mobility_by_env(ds, Environment::kIndoor);
  const auto outdoor = analyze_mobility_by_env(ds, Environment::kOutdoor);
  ASSERT_FALSE(indoor.prevalence.empty());
  ASSERT_FALSE(outdoor.prevalence.empty());
  EXPECT_GT(mean(outdoor.prevalence), mean(indoor.prevalence));
}

TEST(Integration, Fig74_OutdoorPersistenceLonger) {
  const auto& ds = snapshot();
  const auto indoor = analyze_mobility_by_env(ds, Environment::kIndoor);
  const auto outdoor = analyze_mobility_by_env(ds, Environment::kOutdoor);
  EXPECT_GT(median(outdoor.persistence_min), median(indoor.persistence_min));
}

TEST(Integration, Fig71_MostClientsVisitOneAp) {
  const auto& ds = snapshot();
  MobilityStats all;
  for (const auto env : {Environment::kIndoor, Environment::kOutdoor}) {
    merge_mobility(all, analyze_mobility_by_env(ds, env));
  }
  ASSERT_FALSE(all.aps_visited.empty());
  std::size_t one = 0;
  int max_aps = 0;
  for (int v : all.aps_visited) {
    one += (v == 1) ? 1 : 0;
    max_aps = std::max(max_aps, v);
  }
  const double frac_one =
      static_cast<double>(one) / static_cast<double>(all.aps_visited.size());
  EXPECT_GT(frac_one, 0.35);  // a plurality is single-AP
  EXPECT_GT(max_aps, 5);      // but some clients roam widely
}

TEST(Integration, ClientDataOnlyOnFirstTraceOfDualRadioNetworks) {
  GeneratorConfig c = small_config();
  c.probes.duration_s = 600.0;
  const Dataset ds = generate_dataset(c);
  // small_config has one dual-radio network (the last id).
  std::map<std::uint32_t, int> traces_with_clients;
  for (const auto& nt : ds.networks) {
    if (!nt.client_samples.empty()) ++traces_with_clients[nt.info.id];
  }
  for (const auto& [id, count] : traces_with_clients) {
    EXPECT_EQ(count, 1) << "network " << id;
  }
}

}  // namespace
}  // namespace wmesh

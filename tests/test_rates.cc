// Unit tests for phy/rates.h: table invariants that the analyses depend on.
#include "phy/rates.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace wmesh {
namespace {

TEST(Rates, ProbedCountsMatchPaper) {
  // b/g probes 7 rates (1,6,11,12,24,36,48); n probes the 16 20MHz MCS.
  EXPECT_EQ(probed_rates(Standard::kBg).size(), 7u);
  EXPECT_EQ(probed_rates(Standard::kN).size(), 16u);
  EXPECT_EQ(rate_count(Standard::kBg), 7u);
  EXPECT_EQ(rate_count(Standard::kN), 16u);
}

TEST(Rates, BgProbedSetIsThePapers) {
  const int expected[] = {1000, 6000, 11000, 12000, 24000, 36000, 48000};
  const auto rates = probed_rates(Standard::kBg);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    EXPECT_EQ(rates[i].kbps, expected[i]);
    EXPECT_EQ(rates[i].mcs, -1);
  }
}

TEST(Rates, NamesAreUniquePerStandard) {
  for (const Standard s : {Standard::kBg, Standard::kN}) {
    std::set<std::string> names;
    for (const auto& r : probed_rates(s)) {
      EXPECT_TRUE(names.insert(std::string(r.name)).second)
          << "duplicate name " << r.name;
    }
  }
}

TEST(Rates, NMcsIndicesAreDense) {
  const auto rates = probed_rates(Standard::kN);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    EXPECT_EQ(rates[i].mcs, static_cast<int>(i));
    EXPECT_EQ(rates[i].mod, Modulation::kHtOfdm);
  }
}

TEST(Rates, ThresholdsIncreaseWithRateWithinModulationFamily) {
  // Within OFDM, a faster rate must need more SNR; same within DSSS/CCK and
  // within each 802.11n stream group.
  const auto bg = probed_rates(Standard::kBg);
  double last_ofdm = -100.0, last_ss = -100.0;
  for (const auto& r : bg) {
    if (r.mod == Modulation::kOfdm) {
      EXPECT_GT(r.thr50_db, last_ofdm) << r.name;
      last_ofdm = r.thr50_db;
    } else {
      EXPECT_GT(r.thr50_db, last_ss) << r.name;
      last_ss = r.thr50_db;
    }
  }
  const auto n = probed_rates(Standard::kN);
  for (int stream = 0; stream < 2; ++stream) {
    double last = -100.0;
    for (int m = stream * 8; m < (stream + 1) * 8; ++m) {
      EXPECT_GT(n[static_cast<std::size_t>(m)].thr50_db, last);
      last = n[static_cast<std::size_t>(m)].thr50_db;
    }
  }
}

TEST(Rates, DsssCckOutRangesMidOfdm) {
  // The calibration that reproduces the paper's §6.1 exception: 11 Mbit/s
  // CCK must be receivable at lower SNR than 6 Mbit/s OFDM.
  const auto bg = probed_rates(Standard::kBg);
  const int i11 = find_rate(Standard::kBg, 11'000);
  const int i6 = find_rate(Standard::kBg, 6'000);
  ASSERT_GE(i11, 0);
  ASSERT_GE(i6, 0);
  EXPECT_LT(bg[static_cast<std::size_t>(i11)].thr50_db,
            bg[static_cast<std::size_t>(i6)].thr50_db);
  EXPECT_EQ(bg[static_cast<std::size_t>(i11)].mod, Modulation::kCck);
  EXPECT_EQ(bg[static_cast<std::size_t>(i6)].mod, Modulation::kOfdm);
}

TEST(Rates, OneMbitIsTheMostRobust) {
  const auto bg = probed_rates(Standard::kBg);
  for (std::size_t i = 1; i < bg.size(); ++i) {
    EXPECT_LT(bg[0].thr50_db, bg[i].thr50_db);
  }
  EXPECT_EQ(bg[0].mod, Modulation::kDsss);
}

TEST(Rates, FindRateByKbps) {
  EXPECT_EQ(find_rate(Standard::kBg, 24'000), 4);
  EXPECT_EQ(find_rate(Standard::kBg, 54'000), -1);  // not probed
  EXPECT_EQ(find_rate(Standard::kBg, 999), -1);
}

TEST(Rates, FindRateDisambiguatesNByMcs) {
  // 13 Mbit/s exists as both MCS1 and MCS8.
  EXPECT_EQ(find_rate(Standard::kN, 13'000, 1), 1);
  EXPECT_EQ(find_rate(Standard::kN, 13'000, 8), 8);
  // Without mcs, the first match wins.
  EXPECT_EQ(find_rate(Standard::kN, 13'000), 1);
}

TEST(Rates, FullBgTableSupersetOfProbed) {
  const auto all = bg_all_rates();
  EXPECT_EQ(all.size(), 12u);
  for (const auto& probed : probed_rates(Standard::kBg)) {
    bool found = false;
    for (const auto& r : all) found = found || r.kbps == probed.kbps;
    EXPECT_TRUE(found) << probed.name;
  }
}

TEST(Rates, Names) {
  EXPECT_EQ(rate_name(Standard::kBg, 0), "1M");
  EXPECT_EQ(rate_name(Standard::kBg, 6), "48M");
  EXPECT_EQ(rate_name(Standard::kN, 15), "MCS15");
  EXPECT_EQ(rate_name(Standard::kBg, 99), "?");
}

TEST(Rates, MbpsHelper) {
  EXPECT_DOUBLE_EQ(rate_mbps(Standard::kBg, 0), 1.0);
  EXPECT_DOUBLE_EQ(rate_mbps(Standard::kN, 15), 130.0);
  EXPECT_DOUBLE_EQ(rate_mbps(Standard::kBg, 99), 0.0);
}

TEST(Rates, ToStringCoverage) {
  EXPECT_EQ(to_string(Standard::kBg), "802.11b/g");
  EXPECT_EQ(to_string(Standard::kN), "802.11n");
  EXPECT_EQ(to_string(Modulation::kDsss), "DSSS");
  EXPECT_EQ(to_string(Modulation::kCck), "CCK");
  EXPECT_EQ(to_string(Modulation::kOfdm), "OFDM");
  EXPECT_EQ(to_string(Modulation::kHtOfdm), "HT-OFDM");
}

}  // namespace
}  // namespace wmesh

# End-to-end --report smoke: generate a small snapshot, analyze it with a
# run report, and check the emitted JSON carries the schema marker, the
# build block, and (in obs-enabled builds) a positive peak RSS.  Run via
#   cmake -DWMESH_GEN=... -DWMESH_ANALYZE=... -DWORK_DIR=... -P report_smoke.cmake
foreach(var WMESH_GEN WMESH_ANALYZE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "report_smoke: missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${WMESH_GEN} ${WORK_DIR}/snap --small
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "report_smoke: wmesh_gen failed (rc ${rc})")
endif()

execute_process(
  COMMAND ${WMESH_ANALYZE} ${WORK_DIR}/snap etx
    --report=${WORK_DIR}/run.report.json
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "report_smoke: wmesh_analyze --report failed (rc ${rc})")
endif()

if(NOT EXISTS ${WORK_DIR}/run.report.json)
  message(FATAL_ERROR "report_smoke: run.report.json was not written")
endif()
file(READ ${WORK_DIR}/run.report.json report)

foreach(needle "\"schema\": \"wmesh.run_report/1\"" "\"tool\": \"wmesh_analyze\""
        "\"build\"" "\"wall_time_s\"")
  string(FIND "${report}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "report_smoke: report lacks ${needle}")
  endif()
endforeach()

if(NOT OBS_DISABLED)
  foreach(needle "\"peak_rss_bytes\"" "\"metrics\"" "\"spans\"")
    string(FIND "${report}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR "report_smoke: report lacks ${needle}")
    endif()
  endforeach()
  string(REGEX MATCH "\"peak_rss_bytes\": ([0-9]+)" _ "${report}")
  if(NOT CMAKE_MATCH_1 OR CMAKE_MATCH_1 EQUAL 0)
    message(FATAL_ERROR "report_smoke: peak_rss_bytes not positive")
  endif()
endif()

message(STATUS "report_smoke: OK")

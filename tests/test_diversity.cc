// Unit tests for core/diversity.h: node-disjoint path counting.
#include "core/diversity.h"

#include <gtest/gtest.h>

namespace wmesh {
namespace {

SuccessMatrix sym(std::size_t n,
                  std::initializer_list<std::pair<ApId, ApId>> links,
                  double p = 0.9) {
  SuccessMatrix m(n);
  for (const auto& [a, b] : links) {
    m.set(a, b, p);
    m.set(b, a, p);
  }
  return m;
}

TEST(Diversity, DirectLinkIsOnePath) {
  const auto m = sym(2, {{0, 1}});
  EXPECT_EQ(disjoint_paths(m, 0, 1), 1);
}

TEST(Diversity, DisconnectedIsZero) {
  const auto m = sym(3, {{0, 1}});
  EXPECT_EQ(disjoint_paths(m, 0, 2), 0);
  EXPECT_EQ(disjoint_paths(m, 0, 0), 0);  // self
}

TEST(Diversity, ChainIsOnePath) {
  const auto m = sym(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(disjoint_paths(m, 0, 3), 1);
}

TEST(Diversity, TwoDisjointRelaysAndDirect) {
  // 0 -> 3 directly, via 1, and via 2: three node-disjoint paths.
  const auto m = sym(4, {{0, 3}, {0, 1}, {1, 3}, {0, 2}, {2, 3}});
  EXPECT_EQ(disjoint_paths(m, 0, 3), 3);
}

TEST(Diversity, SharedRelayCollapsesToOne) {
  // Two 2-hop routes that share the middle node 1: only one disjoint path.
  SuccessMatrix m(5);
  auto link = [&m](ApId a, ApId b) {
    m.set(a, b, 0.9);
    m.set(b, a, 0.9);
  };
  link(0, 1);
  link(1, 4);
  link(0, 2);
  link(2, 1);  // second route 0-2-1-4 also passes node 1
  EXPECT_EQ(disjoint_paths(m, 0, 4), 1);
}

TEST(Diversity, MinDeliveryPrunesWeakLinks) {
  SuccessMatrix m(3);
  m.set(0, 1, 0.9);
  m.set(1, 2, 0.9);
  m.set(0, 2, 0.03);  // below the floor
  EXPECT_EQ(disjoint_paths(m, 0, 2, 0.05), 1);
  EXPECT_EQ(disjoint_paths(m, 0, 2, 0.01), 2);
}

TEST(Diversity, CapBoundsResult) {
  // Complete graph on 6 nodes: 0->5 has direct + 4 relays = 5 paths.
  SuccessMatrix m(6);
  for (ApId a = 0; a < 6; ++a) {
    for (ApId b = 0; b < 6; ++b) {
      if (a != b) m.set(a, b, 0.9);
    }
  }
  EXPECT_EQ(disjoint_paths(m, 0, 5), 5);
  EXPECT_EQ(disjoint_paths(m, 0, 5, 0.05, 3), 3);
}

TEST(Diversity, DirectedLinksRespected) {
  SuccessMatrix m(3);
  m.set(0, 1, 0.9);
  m.set(1, 2, 0.9);  // forward only
  EXPECT_EQ(disjoint_paths(m, 0, 2), 1);
  EXPECT_EQ(disjoint_paths(m, 2, 0), 0);
}

TEST(Diversity, AllPairsShape) {
  const auto m = sym(3, {{0, 1}, {1, 2}});
  const auto all = all_pair_diversity(m);
  EXPECT_EQ(all.size(), 6u);
  for (const auto& pd : all) {
    EXPECT_NE(pd.src, pd.dst);
    EXPECT_GE(pd.paths, 0);
    EXPECT_LE(pd.paths, 1);  // a chain has at most one disjoint path
  }
}

TEST(Diversity, GridHasMultiplePaths) {
  // 2x2 grid: opposite corners have exactly two disjoint paths.
  const auto m = sym(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(disjoint_paths(m, 0, 3), 2);
}

}  // namespace
}  // namespace wmesh

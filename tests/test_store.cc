// Test wall for wmesh::store (WSNAP).
//
// Own binary (wmesh_store_tests) so the asan_store_smoke ctest case can
// rebuild just it under AddressSanitizer, and so the StoreFuzz suite can be
// invoked as its own ctest case (store_fuzz_smoke).
//
// Pillars:
//   * losslessness -- CSV -> WSNAP -> CSV over the checked-in golden
//     snapshot is byte-identical, NaN SNR sentinels included;
//   * report equality -- every analysis over the WSNAP encoding matches
//     tests/golden/expected_<name>.txt at 1 and 8 threads;
//   * determinism -- encode and decode are byte-identical across thread
//     counts, and across writer chunk sizes;
//   * fail-closed corruption handling -- truncation, bad magic, version
//     skew, flag skew, flipped payload bytes and a seeded random-mutation
//     fuzz loop must never crash and never return a partial Dataset.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.h"
#include "obs/metrics.h"
#include "par/thread_pool.h"
#include "store/wsnap.h"
#include "trace/io.h"

#ifndef WMESH_TEST_DATA_DIR
#error "WMESH_TEST_DATA_DIR must point at tests/golden (set by CMake)"
#endif

namespace wmesh {
namespace {

std::string data_dir() { return WMESH_TEST_DATA_DIR; }

// ctest runs each test in its own process, possibly concurrently; temp
// files must be process-unique or one process truncates a .wsnap another
// has mmap'd (SIGBUS).
std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/wmesh_store_" + std::to_string(::getpid()) +
         "_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing file: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << "cannot write " << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

const Dataset& golden_dataset() {
  static const Dataset ds = [] {
    Dataset d;
    const bool ok = load_dataset(data_dir() + "/golden", &d,
                                 SnapshotFormat::kCsv);
    EXPECT_TRUE(ok) << "cannot load " << data_dir() << "/golden.probes.csv";
    return d;
  }();
  return ds;
}

// Pristine WSNAP encoding of the golden snapshot, written once.
const std::string& golden_wsnap_path() {
  static const std::string path = [] {
    const std::string p = temp_path("golden.wsnap");
    std::string err;
    EXPECT_TRUE(store::save_wsnap(golden_dataset(), p, &err)) << err;
    return p;
  }();
  return path;
}

// Dataset equality via the canonical CSV bytes: saves both to temp prefixes
// and compares the files.  Catches every field the format stores, in order.
void expect_datasets_identical(const Dataset& a, const Dataset& b,
                               const std::string& tag) {
  const std::string pa = temp_path("eq_a_" + tag);
  const std::string pb = temp_path("eq_b_" + tag);
  ASSERT_TRUE(save_dataset(a, pa, SnapshotFormat::kCsv));
  ASSERT_TRUE(save_dataset(b, pb, SnapshotFormat::kCsv));
  EXPECT_EQ(slurp(pa + ".probes.csv"), slurp(pb + ".probes.csv")) << tag;
  EXPECT_EQ(slurp(pa + ".clients.csv"), slurp(pb + ".clients.csv")) << tag;
}

std::uint64_t counter(const std::string& name) {
  for (const auto& c : obs::Registry::instance().snapshot().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

// --- losslessness ---------------------------------------------------------

TEST(StoreRoundTrip, CsvToWsnapToCsvByteIdentical) {
  Dataset reloaded;
  std::string err;
  ASSERT_TRUE(store::load_wsnap(golden_wsnap_path(), &reloaded, &err)) << err;

  const std::string prefix = temp_path("roundtrip");
  ASSERT_TRUE(save_dataset(reloaded, prefix, SnapshotFormat::kCsv));
  EXPECT_EQ(slurp(prefix + ".probes.csv"),
            slurp(data_dir() + "/golden.probes.csv"))
      << "CSV -> WSNAP -> CSV is not lossless";
  EXPECT_EQ(slurp(prefix + ".clients.csv"),
            slurp(data_dir() + "/golden.clients.csv"));
}

TEST(StoreRoundTrip, NanSnrSentinelsSurvive) {
  // The golden snapshot contains probe entries whose SNR is the kNoSnr NaN
  // sentinel; WSNAP must store and return them as NaN, not 0 or garbage.
  Dataset reloaded;
  ASSERT_TRUE(store::load_wsnap(golden_wsnap_path(), &reloaded));
  std::size_t nans = 0, finite = 0;
  for (const auto& nt : reloaded.networks) {
    for (const auto& set : nt.probe_sets) {
      for (const auto& e : set.entries) {
        (std::isnan(e.snr_db) ? nans : finite)++;
      }
    }
  }
  EXPECT_GT(nans, 0u) << "golden snapshot lost its NaN sentinels";
  EXPECT_GT(finite, 0u);
}

TEST(StoreRoundTrip, InspectCountsMatchDataset) {
  store::WsnapInfo info;
  std::string err;
  ASSERT_TRUE(store::inspect_wsnap(golden_wsnap_path(), &info, &err)) << err;

  const Dataset& ds = golden_dataset();
  std::uint64_t sets = 0, entries = 0, clients = 0;
  for (const auto& nt : ds.networks) {
    sets += nt.probe_sets.size();
    for (const auto& set : nt.probe_sets) entries += set.entries.size();
    clients += nt.client_samples.size();
  }
  EXPECT_EQ(info.version, store::kVersion);
  EXPECT_EQ(info.networks, ds.networks.size());
  EXPECT_EQ(info.probe_sets, sets);
  EXPECT_EQ(info.probe_entries, entries);
  EXPECT_EQ(info.client_samples, clients);
  EXPECT_EQ(info.file_bytes, std::filesystem::file_size(golden_wsnap_path()));
  EXPECT_GT(info.payload_bytes, 0u);
  EXPECT_LT(info.payload_bytes, info.file_bytes);
}

// --- golden report equality over WSNAP ------------------------------------

class StoreGoldenReport
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(StoreGoldenReport, MatchesCheckedInTextOverWsnap) {
  const auto [name, threads] = GetParam();
  par::set_default_threads(static_cast<std::size_t>(threads));
  Dataset ds;
  std::string err;
  ASSERT_TRUE(store::load_wsnap(golden_wsnap_path(), &ds, &err)) << err;
  const std::string got = run_report(ds, name);
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got, slurp(data_dir() + "/expected_" + name + ".txt"))
      << "analysis '" << name << "' over WSNAP at " << threads
      << " thread(s) diverged from the CSV-derived golden text";
  par::set_default_threads(1);
}

INSTANTIATE_TEST_SUITE_P(
    AllAnalyses, StoreGoldenReport,
    ::testing::Combine(::testing::Values("snr", "lookup", "routing", "hidden",
                                         "mobility", "traffic", "etx"),
                       ::testing::Values(1, 8)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

// --- determinism ----------------------------------------------------------

TEST(StoreDeterminism, SaveByteIdenticalAcrossThreadCounts) {
  const std::string p1 = temp_path("det_t1.wsnap");
  const std::string p8 = temp_path("det_t8.wsnap");
  par::set_default_threads(1);
  ASSERT_TRUE(store::save_wsnap(golden_dataset(), p1));
  par::set_default_threads(8);
  ASSERT_TRUE(store::save_wsnap(golden_dataset(), p8));
  par::set_default_threads(1);
  EXPECT_EQ(slurp(p1), slurp(p8))
      << "WSNAP encode depends on the thread count";
}

TEST(StoreDeterminism, LoadIdenticalAcrossThreadCounts) {
  Dataset d1, d8;
  par::set_default_threads(1);
  ASSERT_TRUE(store::load_wsnap(golden_wsnap_path(), &d1));
  par::set_default_threads(8);
  ASSERT_TRUE(store::load_wsnap(golden_wsnap_path(), &d8));
  par::set_default_threads(1);
  expect_datasets_identical(d1, d8, "threads");
}

TEST(StoreDeterminism, ChunkedWriterDecodesIdentically) {
  // Stream the golden dataset through a writer with a tiny chunk size: the
  // file layout differs (many chunks) but the decode must be identical.
  const std::string path = temp_path("chunked.wsnap");
  {
    store::WsnapWriter::Options opts;
    opts.chunk_rows = 256;
    store::WsnapWriter w(path, opts);
    for (const auto& nt : golden_dataset().networks) {
      ASSERT_TRUE(w.begin_network(nt.info, nt.ap_count));
      for (const auto& set : nt.probe_sets) ASSERT_TRUE(w.add_probe_set(set));
      for (const auto& s : nt.client_samples) {
        ASSERT_TRUE(w.add_client_sample(s));
      }
    }
    ASSERT_TRUE(w.finish()) << w.error();
  }

  store::WsnapInfo info;
  ASSERT_TRUE(store::inspect_wsnap(path, &info));
  EXPECT_GT(info.chunk_count, 1u) << "chunk_rows=256 should force chunking";

  Dataset chunked, whole;
  ASSERT_TRUE(store::load_wsnap(path, &chunked));
  ASSERT_TRUE(store::load_wsnap(golden_wsnap_path(), &whole));
  expect_datasets_identical(chunked, whole, "chunked");
}

// --- fail-closed corruption handling --------------------------------------

// Expects load_wsnap to fail with a diagnostic naming the file.
void expect_load_fails(const std::string& path, const std::string& tag) {
  Dataset ds;
  std::string err;
  EXPECT_FALSE(store::load_wsnap(path, &ds, &err)) << tag;
  EXPECT_FALSE(err.empty()) << tag << ": failure must carry a diagnostic";
  EXPECT_NE(err.find(path), std::string::npos)
      << tag << ": diagnostic must name the file, got: " << err;
}

TEST(StoreCorruption, MissingFileFailsClosed) {
  expect_load_fails(temp_path("does_not_exist.wsnap"),
                    "missing file");
}

TEST(StoreCorruption, TruncationFailsClosedAtEveryLayer) {
  const std::string pristine = slurp(golden_wsnap_path());
  const std::string path = temp_path("trunc.wsnap");
  // Cut inside the header, the column payload, the footer, and the trailer.
  const std::size_t cuts[] = {0, 7, store::kHeaderBytes,
                              pristine.size() / 2, pristine.size() - 40,
                              pristine.size() - 1};
  for (const std::size_t cut : cuts) {
    spit(path, pristine.substr(0, cut));
    expect_load_fails(path, "truncated to " + std::to_string(cut) + " bytes");
  }
}

TEST(StoreCorruption, BadMagicFailsClosed) {
  std::string bytes = slurp(golden_wsnap_path());
  bytes[0] ^= 0xff;
  const std::string path = temp_path("badmagic.wsnap");
  spit(path, bytes);
  Dataset ds;
  std::string err;
  EXPECT_FALSE(store::load_wsnap(path, &ds, &err));
  EXPECT_NE(err.find("magic"), std::string::npos) << err;
}

TEST(StoreCorruption, FutureVersionFailsClosed) {
  std::string bytes = slurp(golden_wsnap_path());
  bytes[4] = 99;  // FileHeader.version lives at offset 4 (u16 LE)
  bytes[5] = 0;
  const std::string path = temp_path("version.wsnap");
  spit(path, bytes);
  Dataset ds;
  std::string err;
  EXPECT_FALSE(store::load_wsnap(path, &ds, &err));
  EXPECT_NE(err.find("version"), std::string::npos) << err;
}

TEST(StoreCorruption, UnknownFlagsFailClosed) {
  std::string bytes = slurp(golden_wsnap_path());
  bytes[6] = static_cast<char>(0xff);  // FileHeader.flags at offset 6
  const std::string path = temp_path("flags.wsnap");
  spit(path, bytes);
  expect_load_fails(path, "unknown flags");
}

TEST(StoreCorruption, FlippedPayloadByteFailsChecksum) {
  std::string bytes = slurp(golden_wsnap_path());
  bytes[bytes.size() / 2] ^= 0x01;  // somewhere inside the column payload
  const std::string path = temp_path("bitflip.wsnap");
  spit(path, bytes);

  const std::uint64_t failures_before = counter("store.checksum_failures");
  Dataset ds;
  std::string err;
  EXPECT_FALSE(store::load_wsnap(path, &ds, &err));
  EXPECT_FALSE(err.empty());
#if !defined(WMESH_OBS_DISABLED)
  EXPECT_GT(counter("store.checksum_failures"), failures_before)
      << "a corrupt block must bump store.checksum_failures";
#else
  (void)failures_before;
#endif
}

TEST(StoreCorruption, CorruptTrailerFailsClosed) {
  std::string bytes = slurp(golden_wsnap_path());
  bytes[bytes.size() - 1] ^= 0xff;  // end magic
  const std::string path = temp_path("trailer.wsnap");
  spit(path, bytes);
  expect_load_fails(path, "corrupt trailer");
}

// --- fuzz smoke (also registered as the store_fuzz_smoke ctest case) ------

TEST(StoreFuzz, SeededRandomMutationsNeverCrash) {
  const std::string pristine = slurp(golden_wsnap_path());
  ASSERT_FALSE(pristine.empty());
  const std::string path = temp_path("fuzz.wsnap");

  std::mt19937 rng(0xC0FFEEu);  // fixed seed: failures must reproduce
  std::uniform_int_distribution<std::size_t> pos(0, pristine.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> flips(1, 4);

  for (int iter = 0; iter < 100; ++iter) {
    std::string bytes = pristine;
    if (iter % 5 == 4) {
      bytes.resize(pos(rng));  // every fifth case: random truncation
    } else {
      const int n = flips(rng);
      for (int f = 0; f < n; ++f) {
        bytes[pos(rng)] = static_cast<char>(byte(rng));
      }
    }
    spit(path, bytes);

    // Must never crash, hang, or return a half-filled Dataset.  A mutation
    // that misses every checksummed/validated byte may legitimately still
    // load; a failed load must carry a diagnostic.
    Dataset ds;
    std::string err;
    const bool ok = store::load_wsnap(path, &ds, &err);
    if (!ok) {
      EXPECT_FALSE(err.empty()) << "iteration " << iter;
      EXPECT_TRUE(ds.networks.empty() ||
                  ds.networks.size() == golden_dataset().networks.size())
          << "iteration " << iter << ": partial dataset escaped";
    }
  }
}

}  // namespace
}  // namespace wmesh

// Relabeling-invariance property tests.
//
// Every §5/§6 analysis operates on a success matrix whose AP ids are
// arbitrary labels; permuting the labels must permute -- not change -- the
// results.  These tests catch indexing bugs (row/column swaps, from/to
// confusion) that unit tests with symmetric fixtures can miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "core/diversity.h"
#include "core/exor.h"
#include "core/hidden.h"

namespace wmesh {
namespace {

SuccessMatrix random_matrix(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  SuccessMatrix m(n);
  for (ApId a = 0; a < n; ++a) {
    for (ApId b = 0; b < n; ++b) {
      if (a == b) continue;
      // Asymmetric, with dead links.
      const double p = u(gen) < 0.35 ? 0.0 : u(gen);
      m.set(a, b, p);
    }
  }
  return m;
}

SuccessMatrix permute(const SuccessMatrix& m, const std::vector<ApId>& perm) {
  SuccessMatrix out(m.ap_count());
  for (ApId a = 0; a < m.ap_count(); ++a) {
    for (ApId b = 0; b < m.ap_count(); ++b) {
      if (a != b) out.set(perm[a], perm[b], m.at(a, b));
    }
  }
  return out;
}

std::vector<ApId> random_perm(std::size_t n, std::uint64_t seed) {
  std::vector<ApId> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<ApId>(i);
  std::mt19937_64 gen(seed);
  std::shuffle(perm.begin(), perm.end(), gen);
  return perm;
}

class PermutationInvariance : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static constexpr std::size_t kN = 7;
  SuccessMatrix original_ = random_matrix(kN, GetParam());
  std::vector<ApId> perm_ = random_perm(kN, GetParam() * 31 + 7);
  SuccessMatrix permuted_ = permute(original_, perm_);
};

TEST_P(PermutationInvariance, TripleCountsInvariant) {
  const HearingGraph ga(original_, 0.10);
  const HearingGraph gb(permuted_, 0.10);
  const auto ca = count_triples(ga);
  const auto cb = count_triples(gb);
  EXPECT_EQ(ca.relevant, cb.relevant);
  EXPECT_EQ(ca.hidden, cb.hidden);
  EXPECT_EQ(ga.range_pairs(), gb.range_pairs());
}

TEST_P(PermutationInvariance, PathLengthMultisetInvariant) {
  auto la = path_lengths(original_, 0.0);
  auto lb = path_lengths(permuted_, 0.0);
  std::sort(la.begin(), la.end());
  std::sort(lb.begin(), lb.end());
  EXPECT_EQ(la, lb);
}

TEST_P(PermutationInvariance, ImprovementMultisetInvariant) {
  auto collect = [](const SuccessMatrix& m) {
    std::vector<double> out;
    for (const auto& g : opportunistic_gains(m, EtxVariant::kEtx1, 0.0)) {
      out.push_back(g.improvement());
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  const auto ia = collect(original_);
  const auto ib = collect(permuted_);
  ASSERT_EQ(ia.size(), ib.size());
  for (std::size_t i = 0; i < ia.size(); ++i) {
    EXPECT_NEAR(ia[i], ib[i], 1e-9);
  }
}

TEST_P(PermutationInvariance, PairwiseGainsMapThroughPermutation) {
  // Stronger than the multiset check: the gain of (src, dst) must equal the
  // gain of (perm[src], perm[dst]).
  auto index = [](const std::vector<PairGain>& gains) {
    std::map<std::pair<ApId, ApId>, double> out;
    for (const auto& g : gains) out[{g.src, g.dst}] = g.exor_cost;
    return out;
  };
  const auto ga = index(opportunistic_gains(original_, EtxVariant::kEtx1, 0.0));
  const auto gb = index(opportunistic_gains(permuted_, EtxVariant::kEtx1, 0.0));
  ASSERT_EQ(ga.size(), gb.size());
  for (const auto& [pair, cost] : ga) {
    const auto it = gb.find({perm_[pair.first], perm_[pair.second]});
    ASSERT_NE(it, gb.end());
    EXPECT_NEAR(it->second, cost, 1e-9);
  }
}

TEST_P(PermutationInvariance, DisjointPathsMapThroughPermutation) {
  for (ApId s = 0; s < kN; ++s) {
    for (ApId d = 0; d < kN; ++d) {
      if (s == d) continue;
      EXPECT_EQ(disjoint_paths(original_, s, d),
                disjoint_paths(permuted_, perm_[s], perm_[d]))
          << int(s) << "->" << int(d);
    }
  }
}

TEST_P(PermutationInvariance, AsymmetryMultisetInvariant) {
  auto la = link_asymmetries(original_);
  auto lb = link_asymmetries(permuted_);
  std::sort(la.begin(), la.end());
  std::sort(lb.begin(), lb.end());
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_NEAR(la[i], lb[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermutationInvariance,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace wmesh

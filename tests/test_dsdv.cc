// Tests for routing/dsdv.h: the distributed protocol must converge to the
// centralized ETX optimum the §5 analysis assumes.
#include "routing/dsdv.h"

#include <gtest/gtest.h>

namespace wmesh {
namespace {

SuccessMatrix sym(std::size_t n,
                  std::initializer_list<std::tuple<ApId, ApId, double>> links) {
  SuccessMatrix m(n);
  for (const auto& [a, b, p] : links) {
    m.set(a, b, p);
    m.set(b, a, p);
  }
  return m;
}

DsdvParams lossless() {
  DsdvParams p;
  p.lossy_control_plane = false;
  return p;
}

TEST(Dsdv, SelfRouteIsZero) {
  const auto m = sym(2, {{0, 1, 0.9}});
  DsdvMesh mesh(m, lossless());
  EXPECT_DOUBLE_EQ(mesh.route(0, 0).metric, 0.0);
  EXPECT_DOUBLE_EQ(mesh.forwarding_cost(1, 1), 0.0);
}

TEST(Dsdv, OneRoundLearnsNeighbours) {
  const auto m = sym(2, {{0, 1, 0.8}});
  DsdvMesh mesh(m, lossless());
  Rng rng(1);
  mesh.step(rng);
  EXPECT_EQ(mesh.route(0, 1).next_hop, 1);
  EXPECT_NEAR(mesh.route(0, 1).metric, 1.25, 1e-9);
}

TEST(Dsdv, ConvergesToDijkstraOnChain) {
  const auto m = sym(4, {{0, 1, 0.9}, {1, 2, 0.9}, {2, 3, 0.9}});
  DsdvMesh mesh(m, lossless());
  Rng rng(2);
  const auto rounds = mesh.run_until_stable(rng);
  EXPECT_LT(rounds, 20u);
  EXPECT_NEAR(mesh.forwarding_cost(0, 3), 3.0 / 0.9, 1e-9);
  EXPECT_DOUBLE_EQ(mesh.stretch(0, 3), 1.0);
}

TEST(Dsdv, PicksTwoHopOverBadDirect) {
  SuccessMatrix m(3);
  auto link = [&m](ApId a, ApId b, double p) {
    m.set(a, b, p);
    m.set(b, a, p);
  };
  link(0, 2, 0.2);  // direct: cost 5
  link(0, 1, 0.9);
  link(1, 2, 0.9);  // relay: cost ~2.22
  DsdvMesh mesh(m, lossless());
  Rng rng(3);
  mesh.run_until_stable(rng);
  EXPECT_EQ(mesh.route(0, 2).next_hop, 1);
  EXPECT_NEAR(mesh.forwarding_cost(0, 2), 2.0 / 0.9, 1e-9);
}

TEST(Dsdv, UnreachableStaysRouteless) {
  const auto m = sym(3, {{0, 1, 0.9}});
  DsdvMesh mesh(m, lossless());
  Rng rng(4);
  mesh.run_until_stable(rng);
  EXPECT_EQ(mesh.route(0, 2).next_hop, -1);
  EXPECT_EQ(mesh.forwarding_cost(0, 2), kInfCost);
  EXPECT_DOUBLE_EQ(mesh.stretch(0, 2), 0.0);
}

TEST(Dsdv, LossyControlPlaneStillConverges) {
  const auto m = sym(5, {{0, 1, 0.85},
                         {1, 2, 0.85},
                         {2, 3, 0.85},
                         {3, 4, 0.85},
                         {0, 2, 0.4},
                         {2, 4, 0.4}});
  DsdvParams p;
  p.lossy_control_plane = true;
  DsdvMesh mesh(m, p);
  Rng rng(5);
  // Plenty of rounds: losses only delay convergence.
  for (int i = 0; i < 60; ++i) mesh.step(rng);
  for (ApId src = 0; src < 5; ++src) {
    for (ApId dst = 0; dst < 5; ++dst) {
      if (src == dst) continue;
      EXPECT_LT(mesh.forwarding_cost(src, dst), kInfCost)
          << int(src) << "->" << int(dst);
      // Stretch 1 eventually: DV converges to shortest paths.
      EXPECT_NEAR(mesh.stretch(src, dst), 1.0, 1e-6)
          << int(src) << "->" << int(dst);
    }
  }
}

TEST(Dsdv, ForwardingIsLoopFreeOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng gen(seed);
    const std::size_t n = 7;
    SuccessMatrix m(n);
    for (ApId a = 0; a < n; ++a) {
      for (ApId b = 0; b < n; ++b) {
        if (a != b && gen.bernoulli(0.5)) {
          m.set(a, b, gen.uniform(0.3, 1.0));
        }
      }
    }
    DsdvMesh mesh(m, DsdvParams{});
    Rng rng(seed + 100);
    for (int i = 0; i < 40; ++i) mesh.step(rng);
    // forwarding_cost returns kInfCost on loops; with converged DV and
    // consistent seqnos there must be none among routed pairs.
    for (ApId src = 0; src < n; ++src) {
      for (ApId dst = 0; dst < n; ++dst) {
        if (src == dst || mesh.route(src, dst).next_hop < 0) continue;
        EXPECT_LT(mesh.forwarding_cost(src, dst), kInfCost)
            << "seed " << seed << " " << int(src) << "->" << int(dst);
      }
    }
  }
}

TEST(Dsdv, StableNetworkStopsChanging) {
  const auto m = sym(4, {{0, 1, 0.9}, {1, 2, 0.9}, {2, 3, 0.9}, {0, 3, 0.5}});
  DsdvMesh mesh(m, lossless());
  Rng rng(6);
  mesh.run_until_stable(rng);
  // Further rounds change nothing (seqno refreshes are not counted as
  // route changes).
  EXPECT_EQ(mesh.step(rng), 0u);
  EXPECT_EQ(mesh.step(rng), 0u);
}

}  // namespace
}  // namespace wmesh

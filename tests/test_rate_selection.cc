// Unit tests for core/rate_selection.h and core/dataset_ops.h.
#include "core/rate_selection.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/dataset_ops.h"

namespace wmesh {
namespace {

ProbeSet make_set(std::initializer_list<std::pair<RateIndex, float>> losses,
                  float snr = 20.0f) {
  ProbeSet s;
  s.snr_db = snr;
  for (const auto& [rate, loss] : losses) {
    s.entries.push_back({rate, loss, loss < 1.0f ? snr : kNoSnr});
  }
  return s;
}

TEST(SnrKey, RoundsToNearestInteger) {
  EXPECT_EQ(snr_key(10.4f), 10);
  EXPECT_EQ(snr_key(10.6f), 11);
  EXPECT_EQ(snr_key(-3.5f), -4);  // lround rounds away from zero: -4
  EXPECT_EQ(snr_key(0.0f), 0);
}

TEST(OptimalRate, PicksHighestThroughput) {
  // b/g rates: index 0 = 1M, 4 = 24M, 6 = 48M.
  // 24M at loss .1 -> 21.6; 48M at loss .6 -> 19.2; 1M at 0 -> 1.0.
  const auto set = make_set({{0, 0.0f}, {4, 0.1f}, {6, 0.6f}});
  const auto opt = optimal_rate(set, Standard::kBg);
  ASSERT_TRUE(opt.has_value());
  EXPECT_EQ(*opt, 4);
  EXPECT_NEAR(optimal_throughput_mbps(set, Standard::kBg), 21.6, 1e-6);
}

TEST(OptimalRate, TieBreaksTowardRobustRate) {
  // 12M at loss 0 -> 12.0; 24M at loss .5 -> 12.0: tie, keep 12M (index 3).
  const auto set = make_set({{3, 0.0f}, {4, 0.5f}});
  const auto opt = optimal_rate(set, Standard::kBg);
  ASSERT_TRUE(opt.has_value());
  EXPECT_EQ(*opt, 3);
}

TEST(OptimalRate, EmptyWhenNothingReceived) {
  const auto set = make_set({{0, 1.0f}, {4, 1.0f}});
  EXPECT_FALSE(optimal_rate(set, Standard::kBg).has_value());
  EXPECT_DOUBLE_EQ(optimal_throughput_mbps(set, Standard::kBg), 0.0);
}

TEST(OptimalRate, IgnoresOutOfRangeIndices) {
  ProbeSet s;
  s.entries.push_back({99, 0.0f, 10.0f});  // invalid rate index
  EXPECT_FALSE(optimal_rate(s, Standard::kBg).has_value());
}

TEST(ProbeSetThroughput, MissingRateIsZero) {
  const auto set = make_set({{0, 0.0f}});
  EXPECT_DOUBLE_EQ(probe_set_throughput_mbps(set, Standard::kBg, 4), 0.0);
  EXPECT_DOUBLE_EQ(probe_set_throughput_mbps(set, Standard::kBg, 0), 1.0);
}

Dataset hand_dataset() {
  Dataset ds;
  NetworkTrace nt;
  nt.info.id = 0;
  nt.info.standard = Standard::kBg;
  nt.ap_count = 2;
  auto add = [&nt](float snr, std::initializer_list<std::pair<RateIndex, float>>
                                 losses) {
    ProbeSet s;
    s.from = 0;
    s.to = 1;
    s.time_s = static_cast<std::uint32_t>(nt.probe_sets.size() + 1) * 300;
    s.snr_db = snr;
    for (const auto& [rate, loss] : losses) {
      s.entries.push_back({rate, loss, loss < 1.0f ? snr : kNoSnr});
    }
    nt.probe_sets.push_back(std::move(s));
  };
  add(10.0f, {{0, 0.0f}, {2, 0.5f}});   // 1M=1.0 vs 11M=5.5 -> 11M (idx 2)
  add(10.0f, {{0, 0.0f}, {2, 0.95f}});  // 1M=1.0 vs 11M=0.55 -> 1M (idx 0)
  add(30.0f, {{6, 0.0f}});              // 48M wins trivially
  ds.networks.push_back(std::move(nt));
  return ds;
}

TEST(EverOptimal, RecordsAllOptimaPerSnr) {
  const auto ds = hand_dataset();
  const auto ever = ever_optimal_rates(ds, Standard::kBg);
  const auto row10 = ever.table[static_cast<std::size_t>(10 - ever.snr_min)];
  EXPECT_TRUE(row10[0]);   // 1M was optimal once at 10 dB
  EXPECT_TRUE(row10[2]);   // 11M was optimal once at 10 dB
  EXPECT_FALSE(row10[6]);  // 48M never at 10 dB
  const auto row30 = ever.table[static_cast<std::size_t>(30 - ever.snr_min)];
  EXPECT_TRUE(row30[6]);
}

TEST(EverOptimal, WrongStandardSeesNothing) {
  const auto ds = hand_dataset();
  const auto ever = ever_optimal_rates(ds, Standard::kN);
  for (const auto& row : ever.table) {
    for (bool b : row) EXPECT_FALSE(b);
  }
}

TEST(SnrThroughputSamples, GroupsByRateAndSnr) {
  const auto ds = hand_dataset();
  const auto samples = snr_throughput_samples(ds, Standard::kBg);
  const auto& at10_rate0 =
      samples.samples[0][static_cast<std::size_t>(10 - samples.snr_min)];
  ASSERT_EQ(at10_rate0.size(), 2u);  // two sets at 10 dB probed 1M
  EXPECT_DOUBLE_EQ(at10_rate0[0], 1.0);
  const auto& at30_rate6 =
      samples.samples[6][static_cast<std::size_t>(30 - samples.snr_min)];
  ASSERT_EQ(at30_rate6.size(), 1u);
  EXPECT_DOUBLE_EQ(at30_rate6[0], 48.0);
}

TEST(SuccessMatrix, AveragesOverProbeSets) {
  const auto ds = hand_dataset();
  const auto m = mean_success_matrix(ds.networks[0], 2);  // 11M
  // Two sets probed 11M: success .5 and .05 -> mean .275.
  EXPECT_NEAR(m.at(0, 1), 0.275, 1e-6);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);  // never probed
  EXPECT_EQ(m.ap_count(), 2u);
  EXPECT_EQ(m.live_links(), 1u);
}

TEST(SuccessMatrix, AllMatricesMatchSingleRateBuilds) {
  const auto ds = hand_dataset();
  const auto all = all_success_matrices(ds.networks[0]);
  ASSERT_EQ(all.size(), rate_count(Standard::kBg));
  for (RateIndex r = 0; r < all.size(); ++r) {
    const auto single = mean_success_matrix(ds.networks[0], r);
    for (ApId f = 0; f < 2; ++f) {
      for (ApId t = 0; t < 2; ++t) {
        EXPECT_NEAR(all[r].at(f, t), single.at(f, t), 1e-12);
      }
    }
  }
}

TEST(ForEachProbeSet, FiltersByStandard) {
  auto ds = hand_dataset();
  NetworkTrace n_trace;
  n_trace.info.id = 1;
  n_trace.info.standard = Standard::kN;
  n_trace.ap_count = 2;
  ds.networks.push_back(n_trace);
  std::size_t count = 0;
  for_each_probe_set(ds, Standard::kBg,
                     [&](const NetworkTrace& nt, const ProbeSet&) {
                       EXPECT_EQ(nt.info.standard, Standard::kBg);
                       ++count;
                     });
  EXPECT_EQ(count, 3u);
}

}  // namespace
}  // namespace wmesh

// Chrome-trace output coverage: WMESH_TRACE_OUT must yield parseable JSON
// whose complete ("ph":"X") events agree with the span aggregates, at one
// thread and at eight.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>

#include "core/report.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "par/thread_pool.h"
#include "sim/generator.h"
#include "util/json.h"

namespace wmesh::obs {
namespace {

#if defined(WMESH_OBS_DISABLED)

TEST(ObsTrace, DisabledBuildEmitsAnEmptyButValidDocument) {
  ::setenv("WMESH_TRACE_OUT", "unused_trace.json", 1);
  reinit_tracing_from_env();
  { WMESH_SPAN("test.trace.noop"); }
  const std::string text = render_trace_json();
  ::unsetenv("WMESH_TRACE_OUT");
  reinit_tracing_from_env();

  std::string err;
  const auto doc = json::parse(text, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->array.empty());
}

#else  // !WMESH_OBS_DISABLED

// Runs the full etx analysis at `threads`, returns the per-name "X" event
// counts parsed back out of the rendered trace JSON, and checks every
// event is complete and well-formed.
std::map<std::string, std::uint64_t> trace_counts_at(const Dataset& ds,
                                                     std::size_t threads) {
  par::set_default_threads(threads);
  Registry::instance().reset_for_test();
  // reinit clears the event buffer, so the rendered trace covers exactly
  // the analysis below -- same window the span aggregates cover after
  // reset_for_test().
  ::setenv("WMESH_TRACE_OUT", "unused_trace.json", 1);
  reinit_tracing_from_env();
  EXPECT_TRUE(trace_enabled());

  (void)report_etx(ds);

  const std::string text = render_trace_json();
  ::unsetenv("WMESH_TRACE_OUT");
  reinit_tracing_from_env();

  std::string err;
  const auto doc = json::parse(text, &err);
  EXPECT_TRUE(doc.has_value()) << err;
  std::map<std::string, std::uint64_t> counts;
  if (!doc) return counts;

  const json::Value* events = doc->find("traceEvents");
  EXPECT_NE(events, nullptr);
  if (!events) return counts;
  EXPECT_FALSE(events->array.empty());
  for (const json::Value& e : events->array) {
    EXPECT_TRUE(e.is_object());
    const json::Value* ph = e.find("ph");
    const json::Value* name = e.find("name");
    const json::Value* ts = e.find("ts");
    const json::Value* dur = e.find("dur");
    const json::Value* tid = e.find("tid");
    EXPECT_TRUE(ph && name && ts && dur && tid) << "incomplete event";
    if (!ph || !name || !ts || !dur || !tid) continue;
    EXPECT_EQ(ph->string, "X");  // complete events only
    EXPECT_GE(dur->number, 0.0);
    ++counts[name->string];
  }

  // Event counts match the span aggregates accumulated over the same run.
  const Snapshot snap =
      Registry::instance().snapshot(SnapshotFlush::kActiveBatches);
  for (const auto& row : snap.spans) {
    const auto it = counts.find(row.name);
    const std::uint64_t traced = it == counts.end() ? 0 : it->second;
    EXPECT_EQ(traced, row.count) << "span " << row.name;
  }
  return counts;
}

TEST(ObsTrace, EventsMatchSpanAggregatesAtOneAndEightThreads) {
  GeneratorConfig config = small_config();
  const Dataset ds = generate_dataset(config);

  const auto at1 = trace_counts_at(ds, 1);
  const auto at8 = trace_counts_at(ds, 8);
  par::set_default_threads(0);  // restore the env/hardware default

  ASSERT_FALSE(at1.empty());
  EXPECT_EQ(at1, at8);  // deterministic span counts, any thread count
  const auto shard = at1.find("par.shard");
  ASSERT_NE(shard, at1.end());
  EXPECT_GT(shard->second, 0u);
}

#endif  // WMESH_OBS_DISABLED

}  // namespace
}  // namespace wmesh::obs

// Chrome-trace output coverage: WMESH_TRACE_OUT must yield parseable JSON
// whose complete ("ph":"X") events agree with the span aggregates, at one
// thread and at eight -- and whose causal context (span id, parent id) is
// byte-identical at any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/report.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "par/thread_pool.h"
#include "sim/generator.h"
#include "util/json.h"

namespace wmesh::obs {
namespace {

#if defined(WMESH_OBS_DISABLED)

TEST(ObsTrace, DisabledBuildEmitsAnEmptyButValidDocument) {
  ::setenv("WMESH_TRACE_OUT", "unused_trace.json", 1);
  reinit_tracing_from_env();
  { WMESH_SPAN("test.trace.noop"); }
  const std::string text = render_trace_json();
  ::unsetenv("WMESH_TRACE_OUT");
  reinit_tracing_from_env();

  std::string err;
  const auto doc = json::parse(text, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->array.empty());
}

#else  // !WMESH_OBS_DISABLED

// Runs the full etx analysis at `threads`, returns the per-name "X" event
// counts parsed back out of the rendered trace JSON, and checks every
// event is complete and well-formed.
std::map<std::string, std::uint64_t> trace_counts_at(const Dataset& ds,
                                                     std::size_t threads) {
  par::set_default_threads(threads);
  Registry::instance().reset_for_test();
  // reinit clears the event buffer, so the rendered trace covers exactly
  // the analysis below -- same window the span aggregates cover after
  // reset_for_test().
  ::setenv("WMESH_TRACE_OUT", "unused_trace.json", 1);
  reinit_tracing_from_env();
  EXPECT_TRUE(trace_enabled());

  (void)report_etx(ds);

  const std::string text = render_trace_json();
  ::unsetenv("WMESH_TRACE_OUT");
  reinit_tracing_from_env();

  std::string err;
  const auto doc = json::parse(text, &err);
  EXPECT_TRUE(doc.has_value()) << err;
  std::map<std::string, std::uint64_t> counts;
  if (!doc) return counts;

  const json::Value* events = doc->find("traceEvents");
  EXPECT_NE(events, nullptr);
  if (!events) return counts;
  EXPECT_FALSE(events->array.empty());
  for (const json::Value& e : events->array) {
    EXPECT_TRUE(e.is_object());
    const json::Value* ph = e.find("ph");
    const json::Value* name = e.find("name");
    const json::Value* ts = e.find("ts");
    const json::Value* dur = e.find("dur");
    const json::Value* tid = e.find("tid");
    EXPECT_TRUE(ph && name && ts && dur && tid) << "incomplete event";
    if (!ph || !name || !ts || !dur || !tid) continue;
    EXPECT_EQ(ph->string, "X");  // complete events only
    EXPECT_GE(dur->number, 0.0);
    ++counts[name->string];
  }

  // Event counts match the span aggregates accumulated over the same run.
  const Snapshot snap =
      Registry::instance().snapshot(SnapshotFlush::kActiveBatches);
  for (const auto& row : snap.spans) {
    const auto it = counts.find(row.name);
    const std::uint64_t traced = it == counts.end() ? 0 : it->second;
    EXPECT_EQ(traced, row.count) << "span " << row.name;
  }
  return counts;
}

TEST(ObsTrace, EventsMatchSpanAggregatesAtOneAndEightThreads) {
  GeneratorConfig config = small_config();
  const Dataset ds = generate_dataset(config);

  const auto at1 = trace_counts_at(ds, 1);
  const auto at8 = trace_counts_at(ds, 8);
  par::set_default_threads(0);  // restore the env/hardware default

  ASSERT_FALSE(at1.empty());
  EXPECT_EQ(at1, at8);  // deterministic span counts, any thread count
  const auto shard = at1.find("par.shard");
  ASSERT_NE(shard, at1.end());
  EXPECT_GT(shard->second, 0u);
}

// (name, span id, parent id) for every traced event, sorted.  Durations and
// timestamps are excluded: ids must be identical across thread counts, the
// timings of course are not.
using IdTriple = std::tuple<std::string, std::string, std::string>;

std::vector<IdTriple> trace_ids_at(const Dataset& ds, std::size_t threads) {
  par::set_default_threads(threads);
  Registry::instance().reset_for_test();
  reset_span_ids_for_test();
  ::setenv("WMESH_TRACE_OUT", "unused_trace.json", 1);
  reinit_tracing_from_env();

  (void)report_etx(ds);

  const std::string text = render_trace_json();
  ::unsetenv("WMESH_TRACE_OUT");
  reinit_tracing_from_env();

  std::string err;
  const auto doc = json::parse(text, &err);
  EXPECT_TRUE(doc.has_value()) << err;
  std::vector<IdTriple> out;
  if (!doc) return out;
  const json::Value* events = doc->find("traceEvents");
  EXPECT_NE(events, nullptr);
  if (!events) return out;
  for (const json::Value& e : events->array) {
    const json::Value* name = e.find("name");
    const json::Value* args = e.find("args");
    EXPECT_TRUE(name && args) << "event without name/args";
    if (!name || !args) continue;
    const json::Value* span = args->find("span");
    const json::Value* parent = args->find("parent");
    EXPECT_TRUE(span && parent) << "event without span/parent ids";
    if (!span || !parent) continue;
    EXPECT_NE(span->string, "0x0");  // 0 means "no span", never a real id
    out.emplace_back(name->string, span->string, parent->string);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ObsTraceIds, ByteIdenticalAtOneTwoAndEightThreads) {
  GeneratorConfig config = small_config();
  const Dataset ds = generate_dataset(config);

  const auto at1 = trace_ids_at(ds, 1);
  const auto at2 = trace_ids_at(ds, 2);
  const auto at8 = trace_ids_at(ds, 8);
  par::set_default_threads(0);

  ASSERT_FALSE(at1.empty());
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);

  // Every span id is unique within the run.
  std::set<std::string> ids;
  for (const auto& [name, span, parent] : at1) ids.insert(span);
  EXPECT_EQ(ids.size(), at1.size());

  // Every non-root parent id refers to a traced span: the causal graph is
  // closed over the trace window.
  std::size_t linked = 0;
  for (const auto& [name, span, parent] : at1) {
    if (parent == "0x0") continue;
    EXPECT_TRUE(ids.count(parent) != 0)
        << name << " has dangling parent " << parent;
    ++linked;
  }
  EXPECT_GT(linked, 0u);

  // Shard spans are children of real spans, not roots: the task-group
  // context crossed the pool boundary.
  for (const auto& [name, span, parent] : at1) {
    if (name == "par.shard") EXPECT_NE(parent, "0x0");
  }
}

TEST(ObsTraceIds, DeriveSpanIdIsDeterministicAndNeverZero) {
  EXPECT_EQ(derive_span_id(42, 7), derive_span_id(42, 7));
  EXPECT_NE(derive_span_id(42, 7), derive_span_id(42, 8));
  EXPECT_NE(derive_span_id(42, 7), derive_span_id(43, 7));
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    EXPECT_NE(derive_span_id(0, seq), 0u);
  }
}

TEST(ObsTraceIds, NestedSpansLinkParentAndAttributeSelfTime) {
  Registry::instance().reset_for_test();
  reset_span_ids_for_test();

  SpanAggregate& outer_agg =
      Registry::instance().span_aggregate("test.ids.outer");
  SpanAggregate& inner_agg =
      Registry::instance().span_aggregate("test.ids.inner");
  std::uint64_t outer_id = 0;
  {
    ScopedSpan outer(outer_agg, "test.ids.outer");
    outer_id = outer.span_id();
    EXPECT_EQ(outer.parent_id(), 0u);
    EXPECT_EQ(current_span_context()->id, outer_id);
    {
      ScopedSpan inner(inner_agg, "test.ids.inner");
      EXPECT_EQ(inner.parent_id(), outer_id);
      EXPECT_EQ(inner.span_id(), derive_span_id(outer_id, 1));
    }
  }
  EXPECT_EQ(current_span_context(), nullptr);

  const Snapshot snap = Registry::instance().snapshot();
  const Snapshot::SpanRow* outer_row = nullptr;
  const Snapshot::SpanRow* inner_row = nullptr;
  for (const auto& row : snap.spans) {
    if (row.name == "test.ids.outer") outer_row = &row;
    if (row.name == "test.ids.inner") inner_row = &row;
  }
  ASSERT_NE(outer_row, nullptr);
  ASSERT_NE(inner_row, nullptr);

  // Parent attribution: inner under outer, outer at root.
  ASSERT_EQ(inner_row->parents.size(), 1u);
  EXPECT_EQ(inner_row->parents[0].first, "test.ids.outer");
  EXPECT_EQ(inner_row->parents[0].second, 1u);
  ASSERT_EQ(outer_row->parents.size(), 1u);
  EXPECT_EQ(outer_row->parents[0].first, "(root)");

  // Self-time: the inner (leaf) span owns all its time; the outer span's
  // self-time excludes the inner child's duration.
  EXPECT_DOUBLE_EQ(inner_row->self_us, inner_row->total_us);
  EXPECT_LE(outer_row->self_us, outer_row->total_us);
}

#endif  // WMESH_OBS_DISABLED

}  // namespace
}  // namespace wmesh::obs

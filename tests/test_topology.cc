// Unit tests for mesh/network.h and mesh/topology.h.
#include "mesh/topology.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "util/stats.h"

namespace wmesh {
namespace {

TEST(Network, DistanceIsEuclidean) {
  std::vector<Ap> aps = {{0, 0.0, 0.0}, {1, 3.0, 4.0}};
  MeshNetwork net({}, aps);
  EXPECT_DOUBLE_EQ(net.distance_m(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(net.distance_m(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(net.distance_m(0, 0), 0.0);
}

TEST(LinkId, KeyPacksBothEnds) {
  EXPECT_NE(link_key({1, 2}), link_key({2, 1}));
  EXPECT_EQ(link_key({0, 0}), 0u);
  EXPECT_EQ(link_key({1, 0}), 0x10000u);
  EXPECT_EQ(link_key({0, 1}), 1u);
}

TEST(Environment, ToString) {
  EXPECT_EQ(to_string(Environment::kIndoor), "indoor");
  EXPECT_EQ(to_string(Environment::kOutdoor), "outdoor");
  EXPECT_EQ(to_string(Environment::kMixed), "mixed");
}

TEST(GridTopology, SizeAndIds) {
  Rng rng(1);
  const auto aps = make_grid_topology(10, indoor_topology_params(), rng);
  ASSERT_EQ(aps.size(), 10u);
  for (std::size_t i = 0; i < aps.size(); ++i) {
    EXPECT_EQ(aps[i].id, static_cast<ApId>(i));
  }
}

TEST(GridTopology, Deterministic) {
  Rng a(42), b(42);
  const auto ta = make_grid_topology(9, indoor_topology_params(), a);
  const auto tb = make_grid_topology(9, indoor_topology_params(), b);
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_DOUBLE_EQ(ta[i].x_m, tb[i].x_m);
    EXPECT_DOUBLE_EQ(ta[i].y_m, tb[i].y_m);
  }
}

TEST(GridTopology, OutdoorIsSparser) {
  Rng a(3), b(3);
  const auto indoor = make_grid_topology(16, indoor_topology_params(), a);
  const auto outdoor = make_grid_topology(16, outdoor_topology_params(), b);
  auto mean_nn = [](const std::vector<Ap>& aps) {
    MeshNetwork net({}, aps);
    RunningStats s;
    for (std::size_t i = 0; i < aps.size(); ++i) {
      double best = 1e18;
      for (std::size_t j = 0; j < aps.size(); ++j) {
        if (i == j) continue;
        best = std::min(best, net.distance_m(static_cast<ApId>(i),
                                             static_cast<ApId>(j)));
      }
      s.add(best);
    }
    return s.mean();
  };
  EXPECT_GT(mean_nn(outdoor), 1.8 * mean_nn(indoor));
}

TEST(Fleet, PopulationMatchesPaper) {
  Rng rng(7);
  FleetParams params;
  const auto fleet = make_fleet(params, rng);
  ASSERT_EQ(fleet.size(), 110u);

  std::size_t bg_only = 0, n_only = 0, both = 0;
  std::size_t indoor = 0, outdoor = 0, mixed = 0;
  std::size_t min_size = 1000, max_size = 0;
  std::vector<double> sizes;
  for (const auto& fn : fleet) {
    if (fn.has_bg && fn.has_n) {
      ++both;
    } else if (fn.has_bg) {
      ++bg_only;
    } else {
      ++n_only;
    }
    switch (fn.network.info().env) {
      case Environment::kIndoor: ++indoor; break;
      case Environment::kOutdoor: ++outdoor; break;
      case Environment::kMixed: ++mixed; break;
    }
    min_size = std::min(min_size, fn.network.size());
    max_size = std::max(max_size, fn.network.size());
    sizes.push_back(static_cast<double>(fn.network.size()));
  }
  EXPECT_EQ(bg_only, 77u);
  EXPECT_EQ(n_only, 31u);
  EXPECT_EQ(both, 2u);
  EXPECT_EQ(indoor, 72u);
  EXPECT_EQ(outdoor, 17u);
  EXPECT_EQ(mixed, 21u);
  EXPECT_GE(min_size, 3u);
  EXPECT_EQ(max_size, 203u);  // forced 203-AP network
  // Median size near the paper's 7, mean near its 13 (tolerant bands).
  EXPECT_GE(median(sizes), 5.0);
  EXPECT_LE(median(sizes), 10.0);
  EXPECT_GE(mean(sizes), 8.0);
  EXPECT_LE(mean(sizes), 18.0);
}

TEST(Fleet, DeterministicGivenSeed) {
  Rng a(9), b(9);
  const auto fa = make_fleet(FleetParams{}, a);
  const auto fb = make_fleet(FleetParams{}, b);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    ASSERT_EQ(fa[i].network.size(), fb[i].network.size());
    for (std::size_t j = 0; j < fa[i].network.size(); ++j) {
      EXPECT_DOUBLE_EQ(fa[i].network.aps()[j].x_m, fb[i].network.aps()[j].x_m);
    }
  }
}

TEST(Fleet, NetworkIdsAreDenseAndNamed) {
  Rng rng(11);
  const auto fleet = make_fleet(FleetParams{}, rng);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(fleet[i].network.info().id, i);
    EXPECT_FALSE(fleet[i].network.info().name.empty());
  }
}

TEST(Fleet, TestFleetHelper) {
  Rng rng(5);
  const auto fleet = make_test_fleet(3, 6, rng);
  ASSERT_EQ(fleet.size(), 3u);
  for (const auto& fn : fleet) {
    EXPECT_EQ(fn.network.size(), 6u);
    EXPECT_TRUE(fn.has_bg);
    EXPECT_FALSE(fn.has_n);
  }
}

TEST(ClusteredTopology, SizeAndIds) {
  Rng rng(13);
  const auto aps = make_clustered_topology(40, indoor_topology_params(), rng);
  ASSERT_EQ(aps.size(), 40u);
  for (std::size_t i = 0; i < aps.size(); ++i) {
    EXPECT_EQ(aps[i].id, static_cast<ApId>(i));
  }
}

TEST(ClusteredTopology, FormsSeparatedClusters) {
  Rng rng(14);
  const auto params = indoor_topology_params();
  const auto aps = make_clustered_topology(48, params, rng);
  MeshNetwork net({}, aps);
  // Nearest-neighbour distances should be cluster-internal (small); the
  // maximum pairwise distance should span several cluster gaps (large).
  double max_pair = 0.0;
  RunningStats nn;
  for (std::size_t i = 0; i < aps.size(); ++i) {
    double best = 1e18;
    for (std::size_t j = 0; j < aps.size(); ++j) {
      if (i == j) continue;
      const double d = net.distance_m(static_cast<ApId>(i),
                                      static_cast<ApId>(j));
      best = std::min(best, d);
      max_pair = std::max(max_pair, d);
    }
    nn.add(best);
  }
  EXPECT_LT(nn.mean(), params.spacing_max_m);
  EXPECT_GT(max_pair, params.spacing_max_m * params.cluster_gap_factor * 0.8);
}

TEST(ClusteredTopology, ClusterSizesWithinBounds) {
  // Reconstruct clusters by proximity: APs within 3 spacings of each other
  // share a cluster.  Every cluster must respect the configured size range
  // (the carve logic may merge a trailing runt into the previous cluster).
  Rng rng(15);
  TopologyParams params = indoor_topology_params();
  const std::size_t n = 100;
  const auto aps = make_clustered_topology(n, params, rng);
  MeshNetwork net({}, aps);
  std::vector<int> cluster(n, -1);
  int next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (cluster[i] >= 0) continue;
    cluster[i] = next++;
    // flood fill
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t a = 0; a < n; ++a) {
        if (cluster[a] < 0) continue;
        for (std::size_t b = 0; b < n; ++b) {
          if (cluster[b] >= 0) continue;
          if (net.distance_m(static_cast<ApId>(a), static_cast<ApId>(b)) <
              3.0 * params.spacing_max_m * params.cluster_spacing_factor) {
            cluster[b] = cluster[a];
            changed = true;
          }
        }
      }
    }
  }
  std::map<int, std::size_t> sizes;
  for (int c : cluster) ++sizes[c];
  for (const auto& [c, size] : sizes) {
    EXPECT_GE(size, params.cluster_size_min) << "cluster " << c;
    EXPECT_LE(size, params.cluster_size_max + params.cluster_size_min)
        << "cluster " << c;
  }
}

TEST(Fleet, LargeNetworksAreClustered) {
  Rng rng(16);
  FleetParams p;
  p.min_size = 50;
  p.max_size = 50;
  p.force_max_network = false;
  const auto fleet = make_fleet(p, rng);
  // Every network is above the cluster threshold: max pairwise distance
  // must exceed what a single 50-AP grid would span.
  for (const auto& fn : fleet) {
    if (fn.network.info().env == Environment::kOutdoor) continue;
    double max_pair = 0.0;
    for (std::size_t i = 0; i < fn.network.size(); ++i) {
      for (std::size_t j = i + 1; j < fn.network.size(); ++j) {
        max_pair = std::max(max_pair,
                            fn.network.distance_m(static_cast<ApId>(i),
                                                  static_cast<ApId>(j)));
      }
    }
    EXPECT_GT(max_pair, 400.0);
    break;  // one indoor network suffices
  }
}

// Property: every fleet size distribution respects its clamps.
class FleetSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FleetSizes, WithinClamps) {
  Rng rng(GetParam());
  FleetParams p;
  p.min_size = 4;
  p.max_size = 50;
  p.force_max_network = false;
  for (const auto& fn : make_fleet(p, rng)) {
    EXPECT_GE(fn.network.size(), 4u);
    EXPECT_LE(fn.network.size(), 50u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FleetSizes,
                         ::testing::Values(1u, 22u, 333u, 4444u));

}  // namespace
}  // namespace wmesh

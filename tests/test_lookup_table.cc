// Unit tests for core/lookup_table.h.
#include "core/lookup_table.h"

#include <gtest/gtest.h>

#include "core/dataset_ops.h"

namespace wmesh {
namespace {

TEST(LookupTable, ChooseReturnsMode) {
  SnrLookupTable t(Standard::kBg, TableScope::kGlobal);
  t.observe(0, 15, 2);
  t.observe(0, 15, 2);
  t.observe(0, 15, 4);
  EXPECT_EQ(t.choose(0, 15), 2);
  EXPECT_EQ(t.choose(0, 16), -1);
  EXPECT_EQ(t.choose(1, 15), -1);
}

TEST(LookupTable, ModeTieBreaksTowardLowerRate) {
  SnrLookupTable t(Standard::kBg, TableScope::kGlobal);
  t.observe(0, 20, 5);
  t.observe(0, 20, 3);
  EXPECT_EQ(t.choose(0, 20), 3);
}

TEST(LookupTable, RatesNeededMath) {
  SnrLookupTable t(Standard::kBg, TableScope::kGlobal);
  // 67% rate 2, 30% rate 4, 3% rate 6 (out of 100 observations).
  for (int i = 0; i < 67; ++i) t.observe(0, 25, 2);
  for (int i = 0; i < 30; ++i) t.observe(0, 25, 4);
  for (int i = 0; i < 3; ++i) t.observe(0, 25, 6);
  EXPECT_EQ(t.rates_needed(0, 25, 0.50), 1);
  EXPECT_EQ(t.rates_needed(0, 25, 0.67), 1);
  EXPECT_EQ(t.rates_needed(0, 25, 0.95), 2);
  EXPECT_EQ(t.rates_needed(0, 25, 0.97), 2);
  EXPECT_EQ(t.rates_needed(0, 25, 0.98), 3);
  EXPECT_EQ(t.rates_needed(0, 25, 1.00), 3);
  EXPECT_EQ(t.rates_needed(0, 26, 0.5), 0);  // unseen cell
  EXPECT_EQ(t.cell_count(0, 25), 100u);
}

TEST(LookupTable, CellsEnumeration) {
  SnrLookupTable t(Standard::kBg, TableScope::kNetwork);
  t.observe(1, 10, 0);
  t.observe(1, 11, 0);
  t.observe(2, 10, 1);
  const auto cells = t.cells();
  EXPECT_EQ(cells.size(), 3u);
}

TEST(LookupTable, ScopeKeysDistinguishInstances) {
  using T = SnrLookupTable;
  // Global collapses everything.
  EXPECT_EQ(T::scope_key(TableScope::kGlobal, 1, 2, 3),
            T::scope_key(TableScope::kGlobal, 9, 8, 7));
  // Network distinguishes networks only.
  EXPECT_EQ(T::scope_key(TableScope::kNetwork, 5, 1, 2),
            T::scope_key(TableScope::kNetwork, 5, 3, 4));
  EXPECT_NE(T::scope_key(TableScope::kNetwork, 5, 1, 2),
            T::scope_key(TableScope::kNetwork, 6, 1, 2));
  // AP distinguishes sender.
  EXPECT_EQ(T::scope_key(TableScope::kAp, 5, 1, 2),
            T::scope_key(TableScope::kAp, 5, 1, 9));
  EXPECT_NE(T::scope_key(TableScope::kAp, 5, 1, 2),
            T::scope_key(TableScope::kAp, 5, 2, 2));
  // Link distinguishes both ends.
  EXPECT_NE(T::scope_key(TableScope::kLink, 5, 1, 2),
            T::scope_key(TableScope::kLink, 5, 2, 1));
  EXPECT_NE(T::scope_key(TableScope::kLink, 5, 1, 2),
            T::scope_key(TableScope::kLink, 6, 1, 2));
}

TEST(LookupTable, ToStringCoverage) {
  EXPECT_STREQ(to_string(TableScope::kGlobal), "global");
  EXPECT_STREQ(to_string(TableScope::kNetwork), "network");
  EXPECT_STREQ(to_string(TableScope::kAp), "ap");
  EXPECT_STREQ(to_string(TableScope::kLink), "link");
}

// A dataset where link (0,1) and link (1,0) disagree about the optimal rate
// at the same SNR: per-link tables are exact, coarser scopes are not.
Dataset conflicting_links_dataset() {
  Dataset ds;
  NetworkTrace nt;
  nt.info.id = 0;
  nt.info.standard = Standard::kBg;
  nt.ap_count = 2;
  auto add = [&nt](ApId from, ApId to, RateIndex good) {
    ProbeSet s;
    s.from = from;
    s.to = to;
    s.time_s = static_cast<std::uint32_t>(nt.probe_sets.size() + 1) * 300;
    s.snr_db = 18.0f;
    // The "good" rate is clean, every other rate is lossy.
    for (RateIndex r = 0; r < rate_count(Standard::kBg); ++r) {
      const float loss = (r == good) ? 0.0f : 0.99f;
      s.entries.push_back({r, loss, 18.0f});
    }
    nt.probe_sets.push_back(std::move(s));
  };
  for (int i = 0; i < 10; ++i) {
    add(0, 1, 4);  // 24M optimal on 0->1
    add(1, 0, 2);  // 11M optimal on 1->0
  }
  ds.networks.push_back(std::move(nt));
  return ds;
}

TEST(LookupTableErrors, LinkScopeIsExactWhenLinksAreConsistent) {
  const auto ds = conflicting_links_dataset();
  const auto link_err = lookup_table_errors(ds, Standard::kBg, TableScope::kLink);
  EXPECT_DOUBLE_EQ(link_err.exact_fraction, 1.0);
  for (double d : link_err.throughput_diff_mbps) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(LookupTableErrors, CoarserScopesPayForLinkDiversity) {
  const auto ds = conflicting_links_dataset();
  const auto net_err =
      lookup_table_errors(ds, Standard::kBg, TableScope::kNetwork);
  // The network table must pick one of the two optima; it is right half the
  // time and pays the throughput gap the other half.
  EXPECT_NEAR(net_err.exact_fraction, 0.5, 1e-9);
  double nonzero = 0;
  for (double d : net_err.throughput_diff_mbps) nonzero += (d > 0.0) ? 1 : 0;
  EXPECT_NEAR(nonzero / net_err.throughput_diff_mbps.size(), 0.5, 1e-9);
}

TEST(LookupTableErrors, ApScopeSeparatesSenders) {
  // In the conflicting dataset each sender has one link, so AP scope is as
  // good as link scope.
  const auto ds = conflicting_links_dataset();
  const auto ap_err = lookup_table_errors(ds, Standard::kBg, TableScope::kAp);
  EXPECT_DOUBLE_EQ(ap_err.exact_fraction, 1.0);
}

TEST(RatesNeededCurve, AggregatesCells) {
  SnrLookupTable t(Standard::kBg, TableScope::kNetwork);
  // Network 1 @10dB: always rate 0 -> needs 1.
  for (int i = 0; i < 10; ++i) t.observe(1, 10, 0);
  // Network 2 @10dB: 50/50 two rates -> needs 2 at the 95th percentile.
  for (int i = 0; i < 5; ++i) t.observe(2, 10, 0);
  for (int i = 0; i < 5; ++i) t.observe(2, 10, 1);
  const auto curve = rates_needed_curve(t, 0.95);
  ASSERT_EQ(curve.snr.size(), 1u);
  EXPECT_EQ(curve.snr[0], 10);
  EXPECT_NEAR(curve.mean_rates[0], 1.5, 1e-9);  // weighted: (10*1+10*2)/20
  EXPECT_EQ(curve.max_rates[0], 2);
}

TEST(BuildLookupTable, SkipsSetsWithoutSnrOrOptimum) {
  Dataset ds;
  NetworkTrace nt;
  nt.info.standard = Standard::kBg;
  nt.ap_count = 2;
  ProbeSet dead;
  dead.from = 0;
  dead.to = 1;
  dead.snr_db = kNoSnr;
  nt.probe_sets.push_back(dead);
  ds.networks.push_back(std::move(nt));
  const auto t = build_lookup_table(ds, Standard::kBg, TableScope::kGlobal);
  EXPECT_TRUE(t.cells().empty());
}

}  // namespace
}  // namespace wmesh

// Unit tests for core/traffic.h.
#include "core/traffic.h"

#include <gtest/gtest.h>

namespace wmesh {
namespace {

ClientSample sample(std::uint32_t client, ApId ap, std::uint32_t bucket,
                    std::uint32_t packets, std::uint16_t assocs = 0) {
  ClientSample s;
  s.client = client;
  s.ap = ap;
  s.bucket = bucket;
  s.data_packets = packets;
  s.assoc_requests = assocs;
  return s;
}

TEST(Traffic, EmptyTrace) {
  NetworkTrace nt;
  const auto t = analyze_traffic(nt);
  EXPECT_TRUE(t.packets_per_client.empty());
  EXPECT_DOUBLE_EQ(t.total_packets, 0.0);
  EXPECT_DOUBLE_EQ(t.top_decile_ap_share, 0.0);
}

TEST(Traffic, SumsPerClientAndAp) {
  NetworkTrace nt;
  nt.client_samples = {
      sample(1, 0, 0, 100, 1),
      sample(1, 0, 1, 50),
      sample(1, 1, 2, 25, 1),
      sample(2, 1, 0, 10, 1),
  };
  const auto t = analyze_traffic(nt);
  ASSERT_EQ(t.packets_per_client.size(), 2u);
  EXPECT_DOUBLE_EQ(t.packets_per_client[0], 175.0);  // client 1
  EXPECT_DOUBLE_EQ(t.packets_per_client[1], 10.0);   // client 2
  ASSERT_EQ(t.packets_per_ap.size(), 2u);
  EXPECT_DOUBLE_EQ(t.packets_per_ap[0], 150.0);  // AP 0
  EXPECT_DOUBLE_EQ(t.packets_per_ap[1], 35.0);   // AP 1
  EXPECT_DOUBLE_EQ(t.total_packets, 185.0);
  ASSERT_EQ(t.assocs_per_client.size(), 2u);
  EXPECT_DOUBLE_EQ(t.assocs_per_client[0], 2.0);
}

TEST(Traffic, TopDecileShare) {
  NetworkTrace nt;
  // 10 APs: AP 0 carries 910 packets, the other nine carry 10 each.
  for (ApId ap = 0; ap < 10; ++ap) {
    nt.client_samples.push_back(
        sample(ap, ap, 0, ap == 0 ? 910 : 10));
  }
  const auto t = analyze_traffic(nt);
  EXPECT_NEAR(t.top_decile_ap_share, 0.91, 1e-9);
}

TEST(Traffic, DatasetAggregationKeepsNetworksDistinct) {
  Dataset ds;
  NetworkTrace a, b;
  a.info.id = 1;
  b.info.id = 2;
  // Same client id 7 in both networks: must count as two clients.
  a.client_samples = {sample(7, 0, 0, 5)};
  b.client_samples = {sample(7, 0, 0, 9)};
  ds.networks.push_back(a);
  ds.networks.push_back(b);
  const auto t = analyze_traffic(ds);
  EXPECT_EQ(t.packets_per_client.size(), 2u);
  EXPECT_DOUBLE_EQ(t.total_packets, 14.0);
}

}  // namespace
}  // namespace wmesh

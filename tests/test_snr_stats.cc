// Unit tests for core/snr_stats.h (Fig 3.1 machinery).
#include "core/snr_stats.h"

#include <gtest/gtest.h>

namespace wmesh {
namespace {

ProbeSet set_with_snrs(ApId from, ApId to, std::uint32_t t,
                       std::initializer_list<float> snrs) {
  ProbeSet s;
  s.from = from;
  s.to = to;
  s.time_s = t;
  RateIndex r = 0;
  float sum = 0.0f;
  for (float snr : snrs) {
    s.entries.push_back({r++, 0.1f, snr});
    sum += snr;
  }
  s.snr_db = sum / static_cast<float>(snrs.size());  // mean as stand-in
  return s;
}

TEST(SnrStats, PerProbeSetDeviation) {
  Dataset ds;
  NetworkTrace nt;
  nt.info.standard = Standard::kBg;
  nt.ap_count = 2;
  nt.probe_sets.push_back(set_with_snrs(0, 1, 300, {10.0f, 12.0f, 14.0f}));
  ds.networks.push_back(std::move(nt));
  const auto dev = snr_deviations(ds, Standard::kBg);
  ASSERT_EQ(dev.per_probe_set.size(), 1u);
  // Population stddev of {10,12,14} = sqrt(8/3).
  EXPECT_NEAR(dev.per_probe_set[0], std::sqrt(8.0 / 3.0), 1e-6);
}

TEST(SnrStats, SingleEntrySetsContributeNothing) {
  Dataset ds;
  NetworkTrace nt;
  nt.info.standard = Standard::kBg;
  nt.ap_count = 2;
  nt.probe_sets.push_back(set_with_snrs(0, 1, 300, {10.0f}));
  ds.networks.push_back(std::move(nt));
  const auto dev = snr_deviations(ds, Standard::kBg);
  EXPECT_TRUE(dev.per_probe_set.empty());
  EXPECT_TRUE(dev.per_link.empty());  // only one set on the link
}

TEST(SnrStats, PerLinkAndPerNetworkDeviations) {
  Dataset ds;
  NetworkTrace nt;
  nt.info.standard = Standard::kBg;
  nt.ap_count = 3;
  // Link (0,1): set SNRs 10 and 14; link (0,2): set SNRs 30 and 30.
  nt.probe_sets.push_back(set_with_snrs(0, 1, 300, {10.0f, 10.0f}));
  nt.probe_sets.push_back(set_with_snrs(0, 2, 300, {30.0f, 30.0f}));
  nt.probe_sets.push_back(set_with_snrs(0, 1, 600, {14.0f, 14.0f}));
  nt.probe_sets.push_back(set_with_snrs(0, 2, 600, {30.0f, 30.0f}));
  ds.networks.push_back(std::move(nt));
  const auto dev = snr_deviations(ds, Standard::kBg);
  ASSERT_EQ(dev.per_link.size(), 2u);
  // Link (0,1): stddev of {10, 14} = 2; link (0,2): 0.
  EXPECT_NEAR(dev.per_link[0], 2.0, 1e-6);
  EXPECT_NEAR(dev.per_link[1], 0.0, 1e-6);
  ASSERT_EQ(dev.per_network.size(), 1u);
  // Network-wide set SNRs {10, 30, 14, 30}: stddev ~ 8.72 -- much larger
  // than any link's, the Fig 3.1 ordering.
  EXPECT_GT(dev.per_network[0], dev.per_link[0]);
}

TEST(SnrStats, FiltersStandard) {
  Dataset ds;
  NetworkTrace nt;
  nt.info.standard = Standard::kN;
  nt.ap_count = 2;
  nt.probe_sets.push_back(set_with_snrs(0, 1, 300, {10.0f, 12.0f}));
  ds.networks.push_back(std::move(nt));
  EXPECT_TRUE(snr_deviations(ds, Standard::kBg).per_probe_set.empty());
  EXPECT_EQ(snr_deviations(ds, Standard::kN).per_probe_set.size(), 1u);
}

}  // namespace
}  // namespace wmesh

// Golden regression tests for the analysis reports.
//
// tests/golden/ holds a checked-in snapshot (golden.probes.csv /
// golden.clients.csv) plus the exact text every wmesh_analyze analysis
// prints for it (expected_<name>.txt).  The snapshot was produced with
//
//     wmesh_gen tests/golden/golden --small --seed 7
//
// and the expected files with `wmesh_analyze tests/golden/golden <name>`.
// Regenerate them the same way after an *intentional* output change; an
// unintentional diff here means a refactor silently changed paper numbers.
//
// The first test also regenerates the snapshot from the generator config
// and byte-compares it against the checked-in CSVs, pinning the full
// generation pipeline (fleet synthesis, channel model, probe simulator,
// RNG fork order) to the golden bytes.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/report.h"
#include "sim/generator.h"
#include "trace/io.h"

#ifndef WMESH_TEST_DATA_DIR
#error "WMESH_TEST_DATA_DIR must point at tests/golden (set by CMake)"
#endif

namespace wmesh {
namespace {

std::string data_dir() { return WMESH_TEST_DATA_DIR; }

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing golden file: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

const Dataset& golden_dataset() {
  static const Dataset ds = [] {
    Dataset d;
    const bool ok = load_dataset(data_dir() + "/golden", &d);
    EXPECT_TRUE(ok) << "cannot load " << data_dir() << "/golden.probes.csv";
    return d;
  }();
  return ds;
}

TEST(GoldenAnalyze, SnapshotRegeneratesByteIdentically) {
  GeneratorConfig c = small_config();
  c.seed = 7;  // the documented `wmesh_gen --small --seed 7` invocation
  const Dataset ds = generate_dataset(c);

  const std::string prefix = ::testing::TempDir() + "/golden_regen";
  ASSERT_TRUE(save_dataset(ds, prefix));
  EXPECT_EQ(slurp(prefix + ".probes.csv"),
            slurp(data_dir() + "/golden.probes.csv"))
      << "generator output drifted from the checked-in golden snapshot";
  EXPECT_EQ(slurp(prefix + ".clients.csv"),
            slurp(data_dir() + "/golden.clients.csv"));
}

class GoldenReport : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenReport, MatchesCheckedInText) {
  const std::string name = GetParam();
  const std::string got = run_report(golden_dataset(), name);
  ASSERT_FALSE(got.empty()) << "report '" << name << "' produced no output";
  EXPECT_EQ(got, slurp(data_dir() + "/expected_" + name + ".txt"))
      << "analysis '" << name << "' no longer matches tests/golden/expected_"
      << name << ".txt; regenerate it if the change is intentional";
}

INSTANTIATE_TEST_SUITE_P(AllAnalyses, GoldenReport,
                         ::testing::Values("snr", "lookup", "routing",
                                           "anypath", "hidden", "mobility",
                                           "traffic", "etx"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace wmesh

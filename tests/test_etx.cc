// Unit tests for core/etx.h: link costs and shortest paths.
#include "core/etx.h"

#include <gtest/gtest.h>

namespace wmesh {
namespace {

SuccessMatrix matrix(std::size_t n) { return SuccessMatrix(n); }

TEST(EtxLinkCost, Formulas) {
  EXPECT_DOUBLE_EQ(etx_link_cost(0.5, 0.8, EtxVariant::kEtx1), 2.0);
  EXPECT_DOUBLE_EQ(etx_link_cost(0.5, 0.8, EtxVariant::kEtx2), 2.5);
  EXPECT_DOUBLE_EQ(etx_link_cost(1.0, 1.0, EtxVariant::kEtx2), 1.0);
}

TEST(EtxLinkCost, DeadLinksAreInfinite) {
  EXPECT_EQ(etx_link_cost(0.0, 1.0, EtxVariant::kEtx1), kInfCost);
  EXPECT_EQ(etx_link_cost(1.0, 0.0, EtxVariant::kEtx2), kInfCost);
  EXPECT_EQ(etx_link_cost(1.0, 0.0, EtxVariant::kEtx1), 1.0);  // ACK ideal
}

TEST(EtxLinkCost, MinDeliveryThreshold) {
  EXPECT_EQ(etx_link_cost(0.04, 1.0, EtxVariant::kEtx1, 0.05), kInfCost);
  EXPECT_DOUBLE_EQ(etx_link_cost(0.10, 1.0, EtxVariant::kEtx1, 0.05), 10.0);
}

TEST(EtxGraph, CostsFromMatrix) {
  auto m = matrix(2);
  m.set(0, 1, 0.8);
  m.set(1, 0, 0.4);
  EtxGraph g1(m, EtxVariant::kEtx1);
  EXPECT_DOUBLE_EQ(g1.link_cost(0, 1), 1.25);
  EXPECT_DOUBLE_EQ(g1.link_cost(1, 0), 2.5);
  EtxGraph g2(m, EtxVariant::kEtx2);
  EXPECT_NEAR(g2.link_cost(0, 1), 1.0 / 0.32, 1e-9);
  EXPECT_NEAR(g2.link_cost(1, 0), 1.0 / 0.32, 1e-9);  // symmetric under ETX2
}

TEST(EtxGraph, DijkstraPrefersGoodTwoHopOverBadDirect) {
  // 0 -> 2 direct at p=.2 (cost 5) vs 0 -> 1 -> 2 at p=.9 each (~2.22).
  auto m = matrix(3);
  m.set(0, 2, 0.2);
  m.set(0, 1, 0.9);
  m.set(1, 2, 0.9);
  EtxGraph g(m, EtxVariant::kEtx1);
  std::vector<int> parent;
  const auto dist = g.shortest_from(0, &parent);
  EXPECT_NEAR(dist[2], 2.0 / 0.9, 1e-9);
  EXPECT_EQ(parent[2], 1);
  EXPECT_EQ(parent[1], 0);
  EXPECT_EQ(EtxGraph::hops(parent, 0, 2), 2);
}

TEST(EtxGraph, DijkstraPrefersDirectWhenGoodEnough) {
  auto m = matrix(3);
  m.set(0, 2, 0.9);
  m.set(0, 1, 0.9);
  m.set(1, 2, 0.9);
  EtxGraph g(m, EtxVariant::kEtx1);
  std::vector<int> parent;
  const auto dist = g.shortest_from(0, &parent);
  EXPECT_NEAR(dist[2], 1.0 / 0.9, 1e-9);
  EXPECT_EQ(EtxGraph::hops(parent, 0, 2), 1);
}

TEST(EtxGraph, UnreachableIsInfinite) {
  auto m = matrix(3);
  m.set(0, 1, 1.0);
  EtxGraph g(m, EtxVariant::kEtx1);
  const auto dist = g.shortest_from(0);
  EXPECT_EQ(dist[2], kInfCost);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  std::vector<int> parent;
  g.shortest_from(0, &parent);
  EXPECT_EQ(EtxGraph::hops(parent, 0, 2), -1);
}

TEST(EtxGraph, ShortestToMatchesReversedFrom) {
  // Asymmetric graph: dist_to(d)[s] must equal dist_from(s)[d].
  auto m = matrix(4);
  m.set(0, 1, 0.9);
  m.set(1, 0, 0.5);
  m.set(1, 2, 0.7);
  m.set(2, 1, 0.9);
  m.set(2, 3, 0.8);
  m.set(3, 2, 0.4);
  m.set(0, 2, 0.15);
  EtxGraph g(m, EtxVariant::kEtx1);
  for (ApId d = 0; d < 4; ++d) {
    const auto to = g.shortest_to(d);
    for (ApId s = 0; s < 4; ++s) {
      const auto from = g.shortest_from(s);
      EXPECT_NEAR(to[s], from[d], 1e-9) << "s=" << int(s) << " d=" << int(d);
    }
  }
}

TEST(EtxGraph, HopsZeroForSelf) {
  std::vector<int> parent = {-1, 0};
  EXPECT_EQ(EtxGraph::hops(parent, 0, 0), 0);
  EXPECT_EQ(EtxGraph::hops(parent, 0, 1), 1);
}

TEST(EtxGraph, Etx2CostsNeverBelowEtx1) {
  auto m = matrix(3);
  m.set(0, 1, 0.9);
  m.set(1, 0, 0.6);
  m.set(1, 2, 0.8);
  m.set(2, 1, 0.7);
  EtxGraph g1(m, EtxVariant::kEtx1);
  EtxGraph g2(m, EtxVariant::kEtx2);
  const auto d1 = g1.shortest_from(0);
  const auto d2 = g2.shortest_from(0);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_GE(d2[i], d1[i] - 1e-12);
  }
}

TEST(EtxGraph, VariantAccessorsAndToString) {
  auto m = matrix(2);
  m.set(0, 1, 1.0);
  EtxGraph g(m, EtxVariant::kEtx2);
  EXPECT_EQ(g.variant(), EtxVariant::kEtx2);
  EXPECT_EQ(g.ap_count(), 2u);
  EXPECT_STREQ(to_string(EtxVariant::kEtx1), "ETX1");
  EXPECT_STREQ(to_string(EtxVariant::kEtx2), "ETX2");
}

TEST(EtxGraph, PerfectChainCostEqualsHopCount) {
  const std::size_t n = 6;
  auto m = matrix(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    m.set(static_cast<ApId>(i), static_cast<ApId>(i + 1), 1.0);
    m.set(static_cast<ApId>(i + 1), static_cast<ApId>(i), 1.0);
  }
  EtxGraph g(m, EtxVariant::kEtx1);
  std::vector<int> parent;
  const auto dist = g.shortest_from(0, &parent);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(dist[i], static_cast<double>(i));
    EXPECT_EQ(EtxGraph::hops(parent, 0, static_cast<ApId>(i)),
              static_cast<int>(i));
  }
}

}  // namespace
}  // namespace wmesh

// Unit tests for core/strategies.h: online table-building policies.
#include "core/strategies.h"

#include <gtest/gtest.h>

namespace wmesh {
namespace {

// Builds a trace with one link whose optimal rate at SNR 18 changes over
// time: first `first_phase` sets favour rate A, then rate B forever.
Dataset drift_dataset(RateIndex rate_a, RateIndex rate_b,
                      std::size_t first_phase, std::size_t total) {
  Dataset ds;
  NetworkTrace nt;
  nt.info.id = 0;
  nt.info.standard = Standard::kBg;
  nt.ap_count = 2;
  for (std::size_t i = 0; i < total; ++i) {
    ProbeSet s;
    s.from = 0;
    s.to = 1;
    s.time_s = static_cast<std::uint32_t>(i + 1) * 300;
    s.snr_db = 18.0f;
    const RateIndex good = (i < first_phase) ? rate_a : rate_b;
    for (RateIndex r = 0; r < rate_count(Standard::kBg); ++r) {
      s.entries.push_back({r, r == good ? 0.0f : 0.99f, 18.0f});
    }
    nt.probe_sets.push_back(std::move(s));
  }
  ds.networks.push_back(std::move(nt));
  return ds;
}

StrategyResult run(const Dataset& ds, UpdateStrategy s, unsigned k = 4) {
  StrategyParams p;
  p.strategy = s;
  p.subsample_k = k;
  return run_strategy(ds, Standard::kBg, p);
}

TEST(Strategies, FirstNeverAdapts) {
  // Rate 2 for 5 sets, then rate 4 for 15: "first" keeps predicting rate 2.
  const auto ds = drift_dataset(2, 4, 5, 20);
  const auto res = run(ds, UpdateStrategy::kFirst);
  // Predictions start at the 2nd set: 4 correct (sets 2-5), 15 wrong.
  EXPECT_EQ(res.probe_sets, 20u);
  EXPECT_NEAR(res.overall_accuracy, 4.0 / 19.0, 1e-9);
  EXPECT_EQ(res.updates, 1u);
  EXPECT_EQ(res.memory_points, 1u);
}

TEST(Strategies, MostRecentAdaptsWithOneSetLag) {
  const auto ds = drift_dataset(2, 4, 5, 20);
  const auto res = run(ds, UpdateStrategy::kMostRecent);
  // Wrong only on the first prediction after the drift (set 6).
  EXPECT_NEAR(res.overall_accuracy, 18.0 / 19.0, 1e-9);
  EXPECT_EQ(res.updates, 20u);
  EXPECT_EQ(res.memory_points, 1u);  // one resident point per SNR
}

TEST(Strategies, AllConvergesAfterMajorityFlips) {
  // 5 sets of rate 2 then 15 of rate 4: "all" predicts 2 until rate 4's
  // count exceeds it (ties keep the lower rate), i.e. it is wrong for the
  // first 6 post-drift sets and correct afterwards.
  const auto ds = drift_dataset(2, 4, 5, 20);
  const auto res = run(ds, UpdateStrategy::kAll);
  // Correct: sets 2..5 (4), sets 12..20 (9) -> 13 of 19.
  EXPECT_NEAR(res.overall_accuracy, 13.0 / 19.0, 1e-9);
  EXPECT_EQ(res.updates, 20u);
  EXPECT_EQ(res.memory_points, 20u);
}

TEST(Strategies, SubsampledRecordsFirstThenEveryKth) {
  const auto ds = drift_dataset(2, 2, 20, 20);  // stable optimum
  const auto res = run(ds, UpdateStrategy::kSubsampled, 4);
  // Records: set 1 (first at this SNR) + sets 4, 8, 12, 16, 20 -> 6 updates.
  EXPECT_EQ(res.updates, 6u);
  EXPECT_EQ(res.memory_points, 6u);
  EXPECT_DOUBLE_EQ(res.overall_accuracy, 1.0);
}

TEST(Strategies, StableLinkIsPerfectForAllStrategies) {
  const auto ds = drift_dataset(3, 3, 10, 10);
  for (const auto s : {UpdateStrategy::kFirst, UpdateStrategy::kMostRecent,
                       UpdateStrategy::kSubsampled, UpdateStrategy::kAll}) {
    const auto res = run(ds, s);
    EXPECT_DOUBLE_EQ(res.overall_accuracy, 1.0) << to_string(s);
  }
}

TEST(Strategies, AccuracyByRoundBookkeeping) {
  const auto ds = drift_dataset(2, 2, 8, 8);
  const auto res = run(ds, UpdateStrategy::kAll);
  // Rounds 1..7 each saw exactly one prediction, all correct.
  for (std::size_t round = 1; round <= 7; ++round) {
    EXPECT_EQ(res.predictions[round], 1u) << round;
    EXPECT_DOUBLE_EQ(res.accuracy[round], 1.0) << round;
  }
  EXPECT_EQ(res.predictions[0], 0u);
}

TEST(Strategies, NoPredictionWithoutDataForSnr) {
  // Alternating SNRs: each SNR value is fresh the first time it appears, so
  // no prediction is attempted then.
  Dataset ds;
  NetworkTrace nt;
  nt.info.standard = Standard::kBg;
  nt.ap_count = 2;
  for (int i = 0; i < 4; ++i) {
    ProbeSet s;
    s.from = 0;
    s.to = 1;
    s.time_s = static_cast<std::uint32_t>(i + 1) * 300;
    s.snr_db = static_cast<float>(10 + i);  // all distinct
    for (RateIndex r = 0; r < rate_count(Standard::kBg); ++r) {
      s.entries.push_back({r, r == 0 ? 0.0f : 0.99f, s.snr_db});
    }
    nt.probe_sets.push_back(std::move(s));
  }
  ds.networks.push_back(std::move(nt));
  const auto res = run(ds, UpdateStrategy::kAll);
  std::size_t predictions = 0;
  for (auto p : res.predictions) predictions += p;
  EXPECT_EQ(predictions, 0u);
  EXPECT_DOUBLE_EQ(res.overall_accuracy, 0.0);
}

TEST(Strategies, LinksAreIndependent) {
  // Two links with different stable optima must not pollute each other.
  Dataset ds;
  NetworkTrace nt;
  nt.info.standard = Standard::kBg;
  nt.ap_count = 2;
  for (int i = 0; i < 6; ++i) {
    for (int dir = 0; dir < 2; ++dir) {
      ProbeSet s;
      s.from = static_cast<ApId>(dir);
      s.to = static_cast<ApId>(1 - dir);
      s.time_s = static_cast<std::uint32_t>(i + 1) * 300;
      s.snr_db = 18.0f;
      const RateIndex good = dir == 0 ? 1 : 5;
      for (RateIndex r = 0; r < rate_count(Standard::kBg); ++r) {
        s.entries.push_back({r, r == good ? 0.0f : 0.99f, 18.0f});
      }
      nt.probe_sets.push_back(std::move(s));
    }
  }
  ds.networks.push_back(std::move(nt));
  const auto res = run(ds, UpdateStrategy::kMostRecent);
  EXPECT_DOUBLE_EQ(res.overall_accuracy, 1.0);
}

TEST(Strategies, ToStringCoverage) {
  EXPECT_STREQ(to_string(UpdateStrategy::kFirst), "first");
  EXPECT_STREQ(to_string(UpdateStrategy::kMostRecent), "most-recent");
  EXPECT_STREQ(to_string(UpdateStrategy::kSubsampled), "subsampled");
  EXPECT_STREQ(to_string(UpdateStrategy::kAll), "all");
}

}  // namespace
}  // namespace wmesh

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace wmesh::obs {
namespace {

// Tests use unique metric names: the registry is process-global and other
// suites (generator, etx, ...) populate it too.

TEST(ObsCounter, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, SetAndValue) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(ObsHistogram, BucketSemantics) {
  Histogram h({1.0, 10.0, 100.0});
  h.record(0.5);    // bucket 0 (<= 1)
  h.record(1.0);    // bucket 0 (inclusive upper bound)
  h.record(5.0);    // bucket 1
  h.record(100.0);  // bucket 2
  h.record(1e6);    // overflow bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
  ASSERT_EQ(h.bucket_count(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
}

TEST(ObsHistogram, QuantilesMonotone) {
  Histogram h(span_time_bounds_us());
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const double p50 = h.quantile(0.50);
  const double p90 = h.quantile(0.90);
  const double p99 = h.quantile(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // p50 of 1..1000 lands in the bucket whose bound covers 500.
  EXPECT_GE(p50, 500.0);
  EXPECT_LE(p50, 1024.0);
}

TEST(ObsHistogram, EmptyQuantileIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(ObsRegistry, SameNameSameObject) {
  Counter& a = Registry::instance().counter("test.registry.same");
  Counter& b = Registry::instance().counter("test.registry.same");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(ObsRegistry, ConcurrentIncrements) {
  Counter& c = Registry::instance().counter("test.registry.concurrent");
  Histogram& h = Registry::instance().histogram(
      "test.registry.concurrent_hist", {10.0, 1000.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        if (i % 1000 == 0) h.record(static_cast<double>(i % 20));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * 100);
}

TEST(ObsRegistry, MacroCountsThroughRegistry) {
  for (int i = 0; i < 5; ++i) {
    WMESH_COUNTER_INC("test.registry.macro");
  }
  WMESH_COUNTER_ADD("test.registry.macro", 10);
#if defined(WMESH_OBS_DISABLED)
  EXPECT_EQ(Registry::instance().counter("test.registry.macro").value(), 0u);
#else
  EXPECT_EQ(Registry::instance().counter("test.registry.macro").value(), 15u);
#endif
}

TEST(ObsSnapshot, DeterministicAndSorted) {
  Registry::instance().counter("test.snap.b").add(2);
  Registry::instance().counter("test.snap.a").add(1);
  Registry::instance().gauge("test.snap.g").set(3.5);
  Registry::instance()
      .histogram("test.snap.h", {1.0, 2.0})
      .record(1.5);

  const Snapshot s1 = Registry::instance().snapshot();
  const Snapshot s2 = Registry::instance().snapshot();

  // Same state -> identical snapshots.
  ASSERT_EQ(s1.counters.size(), s2.counters.size());
  for (std::size_t i = 0; i < s1.counters.size(); ++i) {
    EXPECT_EQ(s1.counters[i].name, s2.counters[i].name);
    EXPECT_EQ(s1.counters[i].value, s2.counters[i].value);
  }

  // Names are sorted.
  for (std::size_t i = 1; i < s1.counters.size(); ++i) {
    EXPECT_LT(s1.counters[i - 1].name, s1.counters[i].name);
  }

  // "test.snap.a" precedes "test.snap.b" and both are present.
  std::size_t ia = s1.counters.size(), ib = s1.counters.size();
  for (std::size_t i = 0; i < s1.counters.size(); ++i) {
    if (s1.counters[i].name == "test.snap.a") ia = i;
    if (s1.counters[i].name == "test.snap.b") ib = i;
  }
  ASSERT_LT(ia, s1.counters.size());
  ASSERT_LT(ib, s1.counters.size());
  EXPECT_LT(ia, ib);
}

TEST(ObsSnapshot, Renderings) {
  Registry::instance().counter("test.render.count").add(7);
  Registry::instance().span_aggregate("test.render.span").record(123.0);
  const Snapshot s = Registry::instance().snapshot();

  const std::string table = s.render_table();
  EXPECT_NE(table.find("test.render.count"), std::string::npos);
  EXPECT_NE(table.find("span.test.render.span"), std::string::npos);

  const std::string csv = s.to_csv();
  EXPECT_EQ(csv.rfind("kind,name,value,count,sum,p50,p90,p99,min,max\n", 0),
            0u);
  EXPECT_NE(csv.find("counter,test.render.count,7"), std::string::npos);
  EXPECT_NE(csv.find("histogram,span.test.render.span"), std::string::npos);
  EXPECT_NE(csv.find("span,test.render.span"), std::string::npos);

  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.render.count\": 7"), std::string::npos);
  // Balanced braces/brackets (structural well-formedness).
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') {
        ++i;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ObsRegistry, ResetForTestZeroesButKeepsRegistrations) {
  Counter& c = Registry::instance().counter("test.reset.counter");
  c.add(5);
  Registry::instance().reset_for_test();
  EXPECT_EQ(c.value(), 0u);
  // The same object is still registered under the name.
  EXPECT_EQ(&Registry::instance().counter("test.reset.counter"), &c);
}

// ---------------------------------------------------------------------------
// Span aggregates (obs v2)
// ---------------------------------------------------------------------------

TEST(ObsSpanAggregate, TracksCountTotalAndExactMinMax) {
  SpanAggregate& a = Registry::instance().span_aggregate("test.agg.basic");
  a.reset();
  Registry::instance().span_histogram("test.agg.basic").reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);

  a.record(10.0);
  a.record(2.0);
  a.record(300.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.total(), 312.0);
  // Exact extremes, not bucket approximations.
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 300.0);

  // The same instance is registered under the name, and records also land
  // in the backwards-compatible "span.<name>" histogram.
  EXPECT_EQ(&Registry::instance().span_aggregate("test.agg.basic"), &a);
  EXPECT_EQ(Registry::instance().span_histogram("test.agg.basic").count(), 3u);
}

TEST(ObsSpanAggregate, SnapshotCarriesSpanRows) {
  SpanAggregate& a = Registry::instance().span_aggregate("test.agg.snap");
  a.reset();
  Registry::instance().span_histogram("test.agg.snap").reset();
  a.record(50.0);
  a.record(150.0);

  const Snapshot s = Registry::instance().snapshot();
  const Snapshot::SpanRow* row = nullptr;
  for (const auto& r : s.spans) {
    if (r.name == "test.agg.snap") row = &r;
  }
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->count, 2u);
  EXPECT_DOUBLE_EQ(row->total_us, 200.0);
  EXPECT_DOUBLE_EQ(row->min_us, 50.0);
  EXPECT_DOUBLE_EQ(row->max_us, 150.0);
  EXPECT_GT(row->p50_us, 0.0);

  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"test.agg.snap\""), std::string::npos);
}

TEST(ObsSpanAggregate, ConcurrentRecordsKeepExactCountAndExtremes) {
  SpanAggregate& a = Registry::instance().span_aggregate("test.agg.mt");
  a.reset();
  Registry::instance().span_histogram("test.agg.mt").reset();
  constexpr int kThreads = 8, kPer = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&a, t] {
      for (int i = 0; i < kPer; ++i) {
        a.record(1.0 + t * kPer + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(a.count(), static_cast<std::uint64_t>(kThreads * kPer));
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), static_cast<double>(kThreads * kPer));
}

// ---------------------------------------------------------------------------
// CounterBatch snapshot gap (the documented obs-v1 limitation): a snapshot
// taken while another thread holds an active batch must be able to see the
// buffered deltas via SnapshotFlush::kActiveBatches.
// ---------------------------------------------------------------------------

TEST(CounterBatchFlush, SnapshotDrainsActiveBatchesOnOtherThreads) {
  Counter& c = Registry::instance().counter("test.batch.active_flush");
  c.reset();

  std::mutex mu;
  std::condition_variable cv;
  bool buffered = false, release = false;

  std::thread holder([&] {
    CounterBatch batch;
    c.add(41);
    c.add(1);
    {
      std::lock_guard<std::mutex> lk(mu);
      buffered = true;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return release; });
    // batch destructor flushes again on exit (a no-op here: the snapshot
    // below already drained it).
  });

  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return buffered; });
  }

  // Plain snapshot: the deltas still sit in the holder's batch.
  std::uint64_t plain = 0;
  for (const auto& row : Registry::instance().snapshot().counters) {
    if (row.name == "test.batch.active_flush") plain = row.value;
  }
  EXPECT_EQ(plain, 0u);

  // Flushing snapshot: drains the active batch remotely.
  std::uint64_t flushed = 0;
  const Snapshot s =
      Registry::instance().snapshot(SnapshotFlush::kActiveBatches);
  for (const auto& row : s.counters) {
    if (row.name == "test.batch.active_flush") flushed = row.value;
  }
  EXPECT_EQ(flushed, 42u);
  EXPECT_EQ(c.value(), 42u);

  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
  }
  cv.notify_all();
  holder.join();
  EXPECT_EQ(c.value(), 42u);  // nothing double-counted by the dtor flush
}

TEST(CounterBatchFlush, OwnerKeepsBufferingAfterRemoteFlush) {
  Counter& c = Registry::instance().counter("test.batch.after_remote");
  c.reset();
  CounterBatch batch;
  c.add(3);
  EXPECT_EQ(c.value(), 0u);
  CounterBatch::flush_all_active();  // remote drain from this thread's view
  EXPECT_EQ(c.value(), 3u);
  c.add(4);  // owner fast path keeps working against the drained entry
  EXPECT_EQ(c.value(), 3u);
  batch.flush();
  EXPECT_EQ(c.value(), 7u);
}

}  // namespace
}  // namespace wmesh::obs

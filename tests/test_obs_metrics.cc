#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/resource.h"
#include "util/csv.h"

namespace wmesh::obs {
namespace {

// Tests use unique metric names: the registry is process-global and other
// suites (generator, etx, ...) populate it too.

TEST(ObsCounter, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, SetAndValue) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(ObsHistogram, BucketSemantics) {
  Histogram h({1.0, 10.0, 100.0});
  h.record(0.5);    // bucket 0 (<= 1)
  h.record(1.0);    // bucket 0 (inclusive upper bound)
  h.record(5.0);    // bucket 1
  h.record(100.0);  // bucket 2
  h.record(1e6);    // overflow bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
  ASSERT_EQ(h.bucket_count(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
}

TEST(ObsHistogram, QuantilesMonotone) {
  Histogram h(span_time_bounds_us());
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const double p50 = h.quantile(0.50);
  const double p90 = h.quantile(0.90);
  const double p99 = h.quantile(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // p50 of 1..1000 lands in the bucket whose bound covers 500.
  EXPECT_GE(p50, 500.0);
  EXPECT_LE(p50, 1024.0);
}

TEST(ObsHistogram, EmptyQuantileIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(ObsRegistry, SameNameSameObject) {
  Counter& a = Registry::instance().counter("test.registry.same");
  Counter& b = Registry::instance().counter("test.registry.same");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(ObsRegistry, ConcurrentIncrements) {
  Counter& c = Registry::instance().counter("test.registry.concurrent");
  Histogram& h = Registry::instance().histogram(
      "test.registry.concurrent_hist", {10.0, 1000.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        if (i % 1000 == 0) h.record(static_cast<double>(i % 20));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * 100);
}

TEST(ObsRegistry, MacroCountsThroughRegistry) {
  for (int i = 0; i < 5; ++i) {
    WMESH_COUNTER_INC("test.registry.macro");
  }
  WMESH_COUNTER_ADD("test.registry.macro", 10);
#if defined(WMESH_OBS_DISABLED)
  EXPECT_EQ(Registry::instance().counter("test.registry.macro").value(), 0u);
#else
  EXPECT_EQ(Registry::instance().counter("test.registry.macro").value(), 15u);
#endif
}

TEST(ObsSnapshot, DeterministicAndSorted) {
  Registry::instance().counter("test.snap.b").add(2);
  Registry::instance().counter("test.snap.a").add(1);
  Registry::instance().gauge("test.snap.g").set(3.5);
  Registry::instance()
      .histogram("test.snap.h", {1.0, 2.0})
      .record(1.5);

  const Snapshot s1 = Registry::instance().snapshot();
  const Snapshot s2 = Registry::instance().snapshot();

  // Same state -> identical snapshots.
  ASSERT_EQ(s1.counters.size(), s2.counters.size());
  for (std::size_t i = 0; i < s1.counters.size(); ++i) {
    EXPECT_EQ(s1.counters[i].name, s2.counters[i].name);
    EXPECT_EQ(s1.counters[i].value, s2.counters[i].value);
  }

  // Names are sorted.
  for (std::size_t i = 1; i < s1.counters.size(); ++i) {
    EXPECT_LT(s1.counters[i - 1].name, s1.counters[i].name);
  }

  // "test.snap.a" precedes "test.snap.b" and both are present.
  std::size_t ia = s1.counters.size(), ib = s1.counters.size();
  for (std::size_t i = 0; i < s1.counters.size(); ++i) {
    if (s1.counters[i].name == "test.snap.a") ia = i;
    if (s1.counters[i].name == "test.snap.b") ib = i;
  }
  ASSERT_LT(ia, s1.counters.size());
  ASSERT_LT(ib, s1.counters.size());
  EXPECT_LT(ia, ib);
}

TEST(ObsSnapshot, Renderings) {
  Registry::instance().counter("test.render.count").add(7);
  Registry::instance().span_aggregate("test.render.span").record(123.0);
  const Snapshot s = Registry::instance().snapshot();

  const std::string table = s.render_table();
  EXPECT_NE(table.find("test.render.count"), std::string::npos);
  EXPECT_NE(table.find("span.test.render.span"), std::string::npos);

  const std::string csv = s.to_csv();
  EXPECT_EQ(csv.rfind(
                "kind,name,value,count,sum,p50,p90,p99,min,max,self,parents\n",
                0),
            0u);
  EXPECT_NE(csv.find("counter,test.render.count,7"), std::string::npos);
  EXPECT_NE(csv.find("histogram,span.test.render.span"), std::string::npos);
  EXPECT_NE(csv.find("span,test.render.span"), std::string::npos);

  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.render.count\": 7"), std::string::npos);
  // Balanced braces/brackets (structural well-formedness).
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') {
        ++i;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ObsRegistry, ResetForTestZeroesButKeepsRegistrations) {
  Counter& c = Registry::instance().counter("test.reset.counter");
  c.add(5);
  Registry::instance().reset_for_test();
  EXPECT_EQ(c.value(), 0u);
  // The same object is still registered under the name.
  EXPECT_EQ(&Registry::instance().counter("test.reset.counter"), &c);
}

// ---------------------------------------------------------------------------
// Span aggregates (obs v2)
// ---------------------------------------------------------------------------

TEST(ObsSpanAggregate, TracksCountTotalAndExactMinMax) {
  SpanAggregate& a = Registry::instance().span_aggregate("test.agg.basic");
  a.reset();
  Registry::instance().span_histogram("test.agg.basic").reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);

  a.record(10.0);
  a.record(2.0);
  a.record(300.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.total(), 312.0);
  // Exact extremes, not bucket approximations.
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 300.0);

  // The same instance is registered under the name, and records also land
  // in the backwards-compatible "span.<name>" histogram.
  EXPECT_EQ(&Registry::instance().span_aggregate("test.agg.basic"), &a);
  EXPECT_EQ(Registry::instance().span_histogram("test.agg.basic").count(), 3u);
}

TEST(ObsSpanAggregate, SnapshotCarriesSpanRows) {
  SpanAggregate& a = Registry::instance().span_aggregate("test.agg.snap");
  a.reset();
  Registry::instance().span_histogram("test.agg.snap").reset();
  a.record(50.0);
  a.record(150.0);

  const Snapshot s = Registry::instance().snapshot();
  const Snapshot::SpanRow* row = nullptr;
  for (const auto& r : s.spans) {
    if (r.name == "test.agg.snap") row = &r;
  }
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->count, 2u);
  EXPECT_DOUBLE_EQ(row->total_us, 200.0);
  EXPECT_DOUBLE_EQ(row->min_us, 50.0);
  EXPECT_DOUBLE_EQ(row->max_us, 150.0);
  EXPECT_GT(row->p50_us, 0.0);

  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"test.agg.snap\""), std::string::npos);
}

TEST(ObsSpanAggregate, ConcurrentRecordsKeepExactCountAndExtremes) {
  SpanAggregate& a = Registry::instance().span_aggregate("test.agg.mt");
  a.reset();
  Registry::instance().span_histogram("test.agg.mt").reset();
  constexpr int kThreads = 8, kPer = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&a, t] {
      for (int i = 0; i < kPer; ++i) {
        a.record(1.0 + t * kPer + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(a.count(), static_cast<std::uint64_t>(kThreads * kPer));
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), static_cast<double>(kThreads * kPer));
}

// ---------------------------------------------------------------------------
// CounterBatch snapshot gap (the documented obs-v1 limitation): a snapshot
// taken while another thread holds an active batch must be able to see the
// buffered deltas via SnapshotFlush::kActiveBatches.
// ---------------------------------------------------------------------------

TEST(CounterBatchFlush, SnapshotDrainsActiveBatchesOnOtherThreads) {
  Counter& c = Registry::instance().counter("test.batch.active_flush");
  c.reset();

  std::mutex mu;
  std::condition_variable cv;
  bool buffered = false, release = false;

  std::thread holder([&] {
    CounterBatch batch;
    c.add(41);
    c.add(1);
    {
      std::lock_guard<std::mutex> lk(mu);
      buffered = true;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return release; });
    // batch destructor flushes again on exit (a no-op here: the snapshot
    // below already drained it).
  });

  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return buffered; });
  }

  // Plain snapshot: the deltas still sit in the holder's batch.
  std::uint64_t plain = 0;
  for (const auto& row : Registry::instance().snapshot().counters) {
    if (row.name == "test.batch.active_flush") plain = row.value;
  }
  EXPECT_EQ(plain, 0u);

  // Flushing snapshot: drains the active batch remotely.
  std::uint64_t flushed = 0;
  const Snapshot s =
      Registry::instance().snapshot(SnapshotFlush::kActiveBatches);
  for (const auto& row : s.counters) {
    if (row.name == "test.batch.active_flush") flushed = row.value;
  }
  EXPECT_EQ(flushed, 42u);
  EXPECT_EQ(c.value(), 42u);

  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
  }
  cv.notify_all();
  holder.join();
  EXPECT_EQ(c.value(), 42u);  // nothing double-counted by the dtor flush
}

TEST(CounterBatchFlush, OwnerKeepsBufferingAfterRemoteFlush) {
  Counter& c = Registry::instance().counter("test.batch.after_remote");
  c.reset();
  CounterBatch batch;
  c.add(3);
  EXPECT_EQ(c.value(), 0u);
  CounterBatch::flush_all_active();  // remote drain from this thread's view
  EXPECT_EQ(c.value(), 3u);
  c.add(4);  // owner fast path keeps working against the drained entry
  EXPECT_EQ(c.value(), 3u);
  batch.flush();
  EXPECT_EQ(c.value(), 7u);
}

// ---------------------------------------------------------------------------
// Self-time and causal parent attribution (obs v3)
// ---------------------------------------------------------------------------

TEST(ObsSpanAggregate, SelfTimeAndParentAttribution) {
  SpanAggregate& a = Registry::instance().span_aggregate("test.agg.parents");
  a.reset();
  Registry::instance().span_histogram("test.agg.parents").reset();

  a.record(100.0, 60.0, "test.agg.caller_a");
  a.record(50.0, 50.0, "test.agg.caller_a");
  a.record(30.0, 10.0, "test.agg.caller_b");
  a.record(20.0, 20.0, nullptr);  // root span

  EXPECT_DOUBLE_EQ(a.total(), 200.0);
  EXPECT_DOUBLE_EQ(a.self_total(), 140.0);

  const auto parents = a.parent_counts();
  std::uint64_t from_a = 0, from_b = 0, from_root = 0;
  for (const auto& [name, count] : parents) {
    if (name == "test.agg.caller_a") from_a = count;
    if (name == "test.agg.caller_b") from_b = count;
    if (name == "(root)") from_root = count;
  }
  EXPECT_EQ(from_a, 2u);
  EXPECT_EQ(from_b, 1u);
  EXPECT_EQ(from_root, 1u);
}

TEST(ObsSpanAggregate, ParentSlotsOverflowIntoOther) {
  SpanAggregate& a = Registry::instance().span_aggregate("test.agg.overflow");
  a.reset();
  Registry::instance().span_histogram("test.agg.overflow").reset();
  // More distinct parents than the fixed slot array holds: the surplus is
  // attributed to the "(other)" sentinel instead of being lost.
  static const char* const kParents[] = {"p0", "p1", "p2", "p3", "p4",
                                         "p5", "p6", "p7", "p8", "p9"};
  for (const char* p : kParents) a.record(1.0, 1.0, p);

  std::uint64_t named = 0, other = 0;
  for (const auto& [name, count] : a.parent_counts()) {
    if (name == "(other)") {
      other += count;
    } else {
      named += count;
    }
  }
  EXPECT_EQ(named, SpanAggregate::kMaxParents);
  EXPECT_EQ(named + other, 10u);
}

// ---------------------------------------------------------------------------
// CSV escaping: --metrics output must survive names and parent lists that
// contain commas or quotes, and parse back cell-exact.
// ---------------------------------------------------------------------------

TEST(ObsSnapshot, CsvEscapesAwkwardNamesAndRoundTrips) {
  Registry::instance().reset_for_test();
  static const char* const kWeird = "test.csv.\"quoted\",comma";
  Registry::instance().counter(kWeird).add(9);
  // A span with two parents: the parents cell itself contains ';' and ':'
  // plus the quoted-comma parent name, so it must be quoted as a whole.
  SpanAggregate& a = Registry::instance().span_aggregate("test.csv.span");
  a.record(10.0, 10.0, kWeird);
  a.record(20.0, 20.0, "test.csv.plain");

  const std::string csv =
      Registry::instance().snapshot(SnapshotFlush::kActiveBatches).to_csv();
  const auto rows = parse_csv_text(csv);
  ASSERT_GE(rows.size(), 3u);
  ASSERT_EQ(rows[0].size(), 12u);
  EXPECT_EQ(rows[0][1], "name");
  EXPECT_EQ(rows[0][10], "self");
  EXPECT_EQ(rows[0][11], "parents");

  const std::vector<std::string>* counter_row = nullptr;
  const std::vector<std::string>* span_row = nullptr;
  for (const auto& row : rows) {
    if (row.size() == 12 && row[0] == "counter" && row[1] == kWeird) {
      counter_row = &row;
    }
    if (row.size() == 12 && row[0] == "span" && row[1] == "test.csv.span") {
      span_row = &row;
    }
  }
  ASSERT_NE(counter_row, nullptr) << csv;
  EXPECT_EQ((*counter_row)[2], "9");  // name round-tripped cell-exact

  ASSERT_NE(span_row, nullptr) << csv;
  EXPECT_EQ((*span_row)[3], "2");  // count
  // The parents cell decodes to the raw name:count list -- including the
  // comma and quotes inside the weird parent name.
  const std::string& parents = (*span_row)[11];
  EXPECT_NE(parents.find(std::string(kWeird) + ":1"), std::string::npos)
      << parents;
  EXPECT_NE(parents.find("test.csv.plain:1"), std::string::npos) << parents;
}

// ---------------------------------------------------------------------------
// Resource sampling degrades gracefully without /proc/self/status.
// ---------------------------------------------------------------------------

TEST(ObsResource, MissingProcStatusZeroesFieldsAndCountsTheError) {
  Counter& errors = Registry::instance().counter("resource.sampler_errors");
  errors.reset();
  ::setenv("WMESH_PROC_STATUS_PATH", "/nonexistent/wmesh/proc_status", 1);
  const ResourceUsage broken = sample_resources();
  ::unsetenv("WMESH_PROC_STATUS_PATH");

  EXPECT_EQ(broken.current_rss_bytes, 0u);
#if !defined(WMESH_OBS_DISABLED)
  EXPECT_EQ(errors.value(), 1u);
#endif
  // getrusage still supplies CPU time and a max-RSS floor.
  EXPECT_GE(broken.user_cpu_s + broken.sys_cpu_s, 0.0);

  // With the override gone the real /proc works again, error-free.
  const std::uint64_t errors_before = errors.value();
  const ResourceUsage ok = sample_resources();
  EXPECT_EQ(errors.value(), errors_before);
  EXPECT_GT(ok.current_rss_bytes, 0u);
  EXPECT_GE(ok.peak_rss_bytes, ok.current_rss_bytes);
}

// ---------------------------------------------------------------------------
// The serve.query_us bounds ladder: 1-2-5 decades under 1 ms (where cached
// queries cluster), doubling above.
// ---------------------------------------------------------------------------

TEST(ObsBounds, QueryTimeLadderIsFineGrainedBelowOneMillisecond) {
  const std::vector<double> bounds = query_time_bounds_us();
  const std::vector<double> sub_ms = {1.0,  2.0,   5.0,   10.0,  20.0,
                                      50.0, 100.0, 200.0, 500.0, 1000.0};
  ASSERT_GE(bounds.size(), sub_ms.size());
  for (std::size_t i = 0; i < sub_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(bounds[i], sub_ms[i]) << "bound " << i;
  }
  // Doubling from 2 ms up; strictly ascending throughout; top bound covers
  // a ~16 s outlier query but no more.
  for (std::size_t i = sub_ms.size() + 1; i < bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(bounds[i], bounds[i - 1] * 2.0) << "bound " << i;
  }
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "bound " << i;
  }
  EXPECT_GE(bounds.back(), 16e6);
  EXPECT_LE(bounds.back(), 17e6);

  // The ladder is what the serve query path actually registers: recording
  // through the macro binds these bounds on first use.
  Registry::instance().reset_for_test();
  WMESH_HISTOGRAM_RECORD_BOUNDS("serve.query_us", 3.0,
                                ::wmesh::obs::query_time_bounds_us());
#if !defined(WMESH_OBS_DISABLED)
  const Snapshot snap = Registry::instance().snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "serve.query_us");
  ASSERT_EQ(snap.histograms[0].bounds.size(), bounds.size());
  EXPECT_DOUBLE_EQ(snap.histograms[0].bounds[2], 5.0);
#endif
}

}  // namespace
}  // namespace wmesh::obs

// Unit tests for clients/mobility_sim.h.
#include "clients/mobility_sim.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mesh/topology.h"

namespace wmesh {
namespace {

MeshNetwork grid_net(std::size_t n, std::uint64_t seed = 1) {
  Rng rng(seed);
  auto aps = make_grid_topology(n, indoor_topology_params(), rng);
  NetworkInfo info;
  info.id = 9;
  return MeshNetwork(info, aps);
}

MobilityParams quick_params() {
  MobilityParams p;
  p.duration_s = 2 * 3600.0;
  return p;
}

TEST(MobilitySim, SamplesSortedByClientThenBucket) {
  Rng rng(1);
  const auto samples = simulate_clients(grid_net(8), quick_params(), rng);
  ASSERT_FALSE(samples.empty());
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const auto& a = samples[i - 1];
    const auto& b = samples[i];
    EXPECT_TRUE(a.client < b.client ||
                (a.client == b.client && a.bucket < b.bucket));
  }
}

TEST(MobilitySim, BucketsWithinHorizon) {
  Rng rng(2);
  const MobilityParams p = quick_params();
  const auto samples = simulate_clients(grid_net(8), p, rng);
  const auto max_bucket =
      static_cast<std::uint32_t>(p.duration_s / p.bucket_s) - 1;
  for (const auto& s : samples) {
    EXPECT_LE(s.bucket, max_bucket);
  }
}

TEST(MobilitySim, ApIdsValid) {
  Rng rng(3);
  const auto net = grid_net(6);
  const auto samples = simulate_clients(net, quick_params(), rng);
  for (const auto& s : samples) {
    EXPECT_LT(s.ap, net.size());
  }
}

TEST(MobilitySim, ClientCountScalesWithNetwork) {
  Rng a(4), b(4);
  MobilityParams p = quick_params();
  p.clients_per_ap = 2.0;
  auto count_clients = [](const std::vector<ClientSample>& samples) {
    std::set<std::uint32_t> ids;
    for (const auto& s : samples) ids.insert(s.client);
    return ids.size();
  };
  const auto small = simulate_clients(grid_net(5, 10), p, a);
  const auto large = simulate_clients(grid_net(20, 11), p, b);
  EXPECT_GT(count_clients(large), count_clients(small));
  EXPECT_LE(count_clients(small), 10u);
}

TEST(MobilitySim, AssocRequestOnEverySwitch) {
  Rng rng(5);
  const auto samples = simulate_clients(grid_net(9), quick_params(), rng);
  // Group per client and verify assoc_requests flags AP changes.
  std::map<std::uint32_t, std::vector<const ClientSample*>> per_client;
  for (const auto& s : samples) per_client[s.client].push_back(&s);
  for (const auto& [id, seq] : per_client) {
    (void)id;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      const bool contiguous =
          i > 0 && seq[i]->bucket == seq[i - 1]->bucket + 1;
      if (!contiguous) {
        EXPECT_EQ(seq[i]->assoc_requests, 1) << "session start must assoc";
      } else if (seq[i]->ap != seq[i - 1]->ap) {
        EXPECT_EQ(seq[i]->assoc_requests, 1) << "AP switch must assoc";
      } else {
        EXPECT_EQ(seq[i]->assoc_requests, 0);
      }
    }
  }
}

TEST(MobilitySim, Deterministic) {
  Rng a(6), b(6);
  const auto sa = simulate_clients(grid_net(7), quick_params(), a);
  const auto sb = simulate_clients(grid_net(7), quick_params(), b);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].client, sb[i].client);
    EXPECT_EQ(sa[i].ap, sb[i].ap);
    EXPECT_EQ(sa[i].bucket, sb[i].bucket);
  }
}

TEST(MobilitySim, SingleApNetworkNeverSwitches) {
  Rng rng(7);
  std::vector<Ap> aps = {{0, 0.0, 0.0}};
  MeshNetwork net({}, aps);
  const auto samples = simulate_clients(net, quick_params(), rng);
  for (const auto& s : samples) EXPECT_EQ(s.ap, 0);
}

TEST(MobilitySim, OutdoorSwitchesLessThanIndoor) {
  // Count AP switches per connected bucket under each parameter set on the
  // same network.
  auto switch_rate = [](const MobilityParams& p, std::uint64_t seed) {
    Rng rng(seed);
    MobilityParams params = p;
    params.duration_s = 6 * 3600.0;
    const auto net = grid_net(12, 20);
    const auto samples = simulate_clients(net, params, rng);
    std::size_t switches = 0, total = 0;
    const ClientSample* prev = nullptr;
    for (const auto& s : samples) {
      if (prev != nullptr && prev->client == s.client &&
          s.bucket == prev->bucket + 1) {
        ++total;
        switches += (s.ap != prev->ap) ? 1 : 0;
      }
      prev = &s;
    }
    return static_cast<double>(switches) / static_cast<double>(total);
  };
  EXPECT_GT(switch_rate(indoor_mobility_params(), 30),
            1.5 * switch_rate(outdoor_mobility_params(), 30));
}

TEST(MobilitySim, ParamsForEnvironment) {
  EXPECT_EQ(mobility_params_for(Environment::kOutdoor).w_flapper,
            outdoor_mobility_params().w_flapper);
  EXPECT_EQ(mobility_params_for(Environment::kIndoor).w_flapper,
            indoor_mobility_params().w_flapper);
  EXPECT_EQ(mobility_params_for(Environment::kMixed).w_flapper,
            indoor_mobility_params().w_flapper);
}

}  // namespace
}  // namespace wmesh

// Unit and property tests for core/exor.h: the idealized opportunistic
// routing cost recursion.
#include "core/exor.h"

#include <gtest/gtest.h>

#include <random>

namespace wmesh {
namespace {

TEST(Exor, SingleLinkEqualsEtx1) {
  // With only the destination as candidate, ExOR(s->d) = 1/p = ETX1(s->d).
  SuccessMatrix m(2);
  m.set(0, 1, 0.4);
  m.set(1, 0, 0.9);
  EtxGraph g(m, EtxVariant::kEtx1);
  const auto etx_to = g.shortest_to(1);
  const auto exor = exor_costs_to(m, etx_to);
  EXPECT_NEAR(exor[0], 2.5, 1e-9);
  EXPECT_DOUBLE_EQ(exor[1], 0.0);
}

TEST(Exor, PaperChainExample) {
  // The thesis' §5.2.2 example: A -> B -> C with p=.9 on both hops and a
  // direct A -> C probability of .3.  ETX1 path cost = 2/.9 ~ 2.22.
  SuccessMatrix m(3);
  m.set(0, 1, 0.9);
  m.set(1, 0, 0.9);
  m.set(1, 2, 0.9);
  m.set(2, 1, 0.9);
  m.set(0, 2, 0.3);
  m.set(2, 0, 0.3);
  EtxGraph g(m, EtxVariant::kEtx1);
  const auto etx_to = g.shortest_to(2);
  EXPECT_NEAR(etx_to[0], 2.0 / 0.9, 1e-9);
  const auto exor = exor_costs_to(m, etx_to);
  // Candidates of A: C (dist 0, p .3) then B (dist 1.11, p .9).
  // r(C) = .3, r(B) = .7 * .9 = .63, none = .7 * .1 = .07.
  // ExOR(B->C) = 1/.9.  ExOR(A) = (1 + .63 / .9) / .93.
  const double expected = (1.0 + 0.63 * (1.0 / 0.9)) / (1.0 - 0.07);
  EXPECT_NEAR(exor[0], expected, 1e-9);
  EXPECT_LT(exor[0], etx_to[0]);  // opportunism helps on this topology
}

TEST(Exor, NoHelpWhenNoIntermediate) {
  // Without the direct A->C link ExOR degenerates to the chain cost.
  SuccessMatrix m(3);
  m.set(0, 1, 0.8);
  m.set(1, 2, 0.8);
  EtxGraph g(m, EtxVariant::kEtx1);
  const auto etx_to = g.shortest_to(2);
  const auto exor = exor_costs_to(m, etx_to);
  EXPECT_NEAR(exor[0], etx_to[0], 1e-9);
}

TEST(Exor, UnreachableStaysInfinite) {
  SuccessMatrix m(3);
  m.set(0, 1, 0.9);
  EtxGraph g(m, EtxVariant::kEtx1);
  const auto etx_to = g.shortest_to(2);
  const auto exor = exor_costs_to(m, etx_to);
  EXPECT_EQ(exor[0], kInfCost);
  EXPECT_EQ(exor[1], kInfCost);
  EXPECT_DOUBLE_EQ(exor[2], 0.0);
}

TEST(PairGain, ImprovementDefinition) {
  PairGain g;
  g.etx_cost = 1.5;
  g.exor_cost = 1.2;
  EXPECT_NEAR(g.improvement(), 0.2, 1e-12);
  g.etx_cost = 0.0;
  EXPECT_DOUBLE_EQ(g.improvement(), 0.0);
}

TEST(OpportunisticGains, CoversAllReachablePairs) {
  SuccessMatrix m(3);
  for (ApId a = 0; a < 3; ++a) {
    for (ApId b = 0; b < 3; ++b) {
      if (a != b) m.set(a, b, 0.9);
    }
  }
  const auto gains = opportunistic_gains(m, EtxVariant::kEtx1);
  EXPECT_EQ(gains.size(), 6u);  // 3 * 2 directed pairs
  for (const auto& g : gains) {
    EXPECT_EQ(g.hops, 1);
    EXPECT_GT(g.etx_cost, 0.0);
    EXPECT_GT(g.exor_cost, 0.0);
  }
}

TEST(OpportunisticGains, HopsMatchPathLengths) {
  // Chain of 4 perfect links: hop counts must be the chain distances.
  SuccessMatrix m(4);
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    m.set(static_cast<ApId>(i), static_cast<ApId>(i + 1), 1.0);
    m.set(static_cast<ApId>(i + 1), static_cast<ApId>(i), 1.0);
  }
  const auto gains = opportunistic_gains(m, EtxVariant::kEtx1);
  for (const auto& g : gains) {
    EXPECT_EQ(g.hops, std::abs(static_cast<int>(g.src) -
                               static_cast<int>(g.dst)));
  }
  const auto lengths = path_lengths(m);
  EXPECT_EQ(lengths.size(), 12u);
}

TEST(LinkAsymmetries, RatiosOfLivePairs) {
  SuccessMatrix m(3);
  m.set(0, 1, 0.8);
  m.set(1, 0, 0.4);
  m.set(0, 2, 0.5);  // reverse dead: excluded
  const auto asym = link_asymmetries(m);
  ASSERT_EQ(asym.size(), 2u);  // both orders of the live pair
  EXPECT_NEAR(asym[0] * asym[1], 1.0, 1e-9);
  EXPECT_NEAR(std::max(asym[0], asym[1]), 2.0, 1e-9);
}

// Property: over random success matrices, 0 <= ExOR <= ETX for every
// reachable pair under both variants, and improvements lie in [0, 1).
class ExorBounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExorBounds, ExorNeverWorseThanEtx) {
  std::mt19937_64 gen(GetParam());
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const std::size_t n = 6;
  SuccessMatrix m(n);
  for (ApId a = 0; a < n; ++a) {
    for (ApId b = 0; b < n; ++b) {
      if (a == b) continue;
      // ~40% dead links, rest uniform quality.
      const double p = u(gen) < 0.4 ? 0.0 : u(gen);
      m.set(a, b, p);
    }
  }
  for (const auto variant : {EtxVariant::kEtx1, EtxVariant::kEtx2}) {
    for (const auto& g : opportunistic_gains(m, variant)) {
      EXPECT_GT(g.exor_cost, 0.0);
      EXPECT_LE(g.exor_cost, g.etx_cost + 1e-9)
          << "variant " << to_string(variant) << " pair " << int(g.src)
          << "->" << int(g.dst);
      EXPECT_GE(g.improvement(), -1e-9);
      EXPECT_LT(g.improvement(), 1.0);
      EXPECT_GE(g.hops, 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExorBounds,
                         ::testing::Range<std::uint64_t>(1, 21));

// Property: ExOR cost of every node is at least 1 transmission (you must
// broadcast at least once) whenever the destination is reachable.
class ExorFloor : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExorFloor, AtLeastOneTransmission) {
  std::mt19937_64 gen(GetParam());
  std::uniform_real_distribution<double> u(0.1, 1.0);
  const std::size_t n = 5;
  SuccessMatrix m(n);
  for (ApId a = 0; a < n; ++a) {
    for (ApId b = 0; b < n; ++b) {
      if (a != b) m.set(a, b, u(gen));
    }
  }
  EtxGraph g(m, EtxVariant::kEtx1);
  for (ApId d = 0; d < n; ++d) {
    const auto exor = exor_costs_to(m, g.shortest_to(d));
    for (ApId s = 0; s < n; ++s) {
      if (s == d) continue;
      EXPECT_GE(exor[s], 1.0 - 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExorFloor,
                         ::testing::Values(3u, 7u, 11u, 13u));

}  // namespace
}  // namespace wmesh

// wmesh_bench: perf-regression harness over the paper-pipeline stages.
//
// Usage: wmesh_bench [--suite=quick|full] [--quick] [--repeat=N]
//                    [--out=BENCH.json] [--baseline=BENCH_prev.json]
//                    [--check] [--tolerance=PCT] [--threads=N] [--list]
//                    [--metrics[=path]] [--report[=path.json]] [--version]
//
// Runs a registered suite of stage micro-benchmarks -- dataset generation,
// CSV and WSNAP save/load, ETX path selection, ExOR routing, multirate
// anypath, look-up tables, hidden triples, mobility, streaming ingest --
// `--repeat` times
// each and writes
// BENCH_<suite>.json (schema wmesh.bench/1: per-stage raw runs plus
// median/p10/p90).  With --baseline + --check it compares medians against a
// previous BENCH_*.json and exits non-zero when any stage slowed by more
// than --tolerance percent, which is what the bench_smoke / CI gate runs.
//
// Self-test knob: WMESH_BENCH_SLEEP_US=<n> adds an artificial sleep inside
// every timed stage, used by the regression-detection test.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli_common.h"
#include "core/analysis_cache.h"
#include "core/etx.h"
#include "core/exor.h"
#include "core/report.h"
#include "obs/bench.h"
#include "obs/log.h"
#include "obs/report.h"
#include "obs/span.h"
#include "obs/tsdb.h"
#include "par/thread_pool.h"
#include "serve/service.h"
#include "sim/generator.h"
#include "store/fleet.h"
#include "store/fleet_analyze.h"
#include "trace/io.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/text_table.h"

using namespace wmesh;

namespace {

const char* const kUsage =
    "usage: wmesh_bench [--suite=quick|full] [--quick] [--repeat=N] "
    "[--out=BENCH.json]\n"
    "                   [--baseline=BENCH_prev.json] [--check] "
    "[--tolerance=PCT]\n"
    "                   [--threads=N] [--list] [--metrics[=path]] "
    "[--report[=path.json]] [--version]\n"
    "       wmesh_bench --help\n";

void print_help() {
  std::printf(
      "%s\n"
      "stages: gen, csv_save, csv_load, wsnap_save, wsnap_load, etx, exor,\n"
      "        anypath, lookup, hidden, mobility, dijkstra_sparse,\n"
      "        dijkstra_dense, fleet, serve_ingest, tsdb_retention\n"
      "\n"
      "flags:\n"
      "  --suite=S        quick (small dataset, default) or full (paper-\n"
      "                   scale default_config dataset)\n"
      "  --quick          alias for --suite=quick\n"
      "  --repeat=N       timed runs per stage (default 3); the JSON keeps\n"
      "                   every run plus median/p10/p90\n"
      "  --out=PATH       result path (default BENCH_<suite>.json)\n"
      "  --baseline=PATH  previous BENCH_*.json to compare medians against\n"
      "  --check          with --baseline: exit 1 if any stage slowed by\n"
      "                   more than --tolerance percent or disappeared\n"
      "  --tolerance=PCT  allowed median slowdown percent (default 25)\n"
      "  --threads=N      wmesh::par pool size (flag > WMESH_THREADS)\n"
      "  --list           print the stage names of the suite and exit\n"
      "  --metrics        print the metrics registry snapshot on exit\n"
      "  --metrics=PATH   also write it to PATH (.json -> JSON, else CSV)\n"
      "  --listen=ADDR    serve live OpenMetrics at ADDR for the whole run\n"
      "                   (unix:<path> or <host>:<port>; ':0' = any port)\n"
      "  --report         write the run report to wmesh_bench.report.json\n"
      "  --report=PATH    write the run report to PATH instead\n"
      "  --version        print build info (git, compiler, flags) and exit\n"
      "  --help           this text\n"
      "\n"
      "env: WMESH_THREADS=N, WMESH_BENCH_SLEEP_US=N (self-test: artificial\n"
      "     per-stage sleep), WMESH_LOG_LEVEL, WMESH_LOG_FILE,\n"
      "     WMESH_TRACE_OUT\n",
      kUsage);
}

[[nodiscard]] int usage_error(const std::string& reason) {
  WMESH_LOG_ERROR("cli", kv("tool", "wmesh_bench"), kv("error", reason));
  std::fputs(kUsage, stderr);
  return 2;
}

// Scratch directory for the save/load stages; removed on exit.
class ScratchDir {
 public:
  ScratchDir() {
    std::error_code ec;
    path_ = std::filesystem::temp_directory_path(ec);
    if (ec) path_ = ".";
    path_ /= "wmesh_bench." + std::to_string(
        static_cast<unsigned long long>(::getpid()));
    std::filesystem::create_directories(path_, ec);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string prefix(const char* name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

// Synthetic graph for the Dijkstra micro-stage pair.  The quick suite's
// real networks are 4-12 APs -- too small for the sparse-vs-dense kernel
// delta to rise above timer noise -- so the micro-stages run on one seeded
// mesh-density matrix large enough to show it.
struct KernelFixture {
  SuccessMatrix success{0};
  std::optional<EtxGraph> graph;

  KernelFixture(std::size_t n, double density, std::uint64_t seed) {
    Rng rng(seed);
    SuccessMatrix m(n);
    for (std::size_t f = 0; f < n; ++f) {
      for (std::size_t t = 0; t < n; ++t) {
        if (f != t && rng.bernoulli(density)) {
          m.set(static_cast<ApId>(f), static_cast<ApId>(t),
                rng.uniform(0.05, 1.0));
        }
      }
    }
    success = std::move(m);
    graph.emplace(success, EtxVariant::kEtx1, kEtxMinDelivery);
  }
};

// Rounds the serve_ingest stage advances per timed run: 24 probe rounds =
// 960 virtual seconds, i.e. ~3 report boundaries, so every run exercises
// the full tick path -- window pushes, live-trace rematerialization and
// cache invalidation -- not just the cheap intra-report accumulation.
constexpr int kServeIngestRounds = 24;

// Builds the stage list.  Stages share `ds` (generated once, before the
// timed loops, except for the `gen` stage which regenerates per run), the
// scratch dir for the I/O stages, the kernel fixture for the Dijkstra
// micro-stages, one AnalysisCache for the analysis stages (so repeat
// runs exercise the warm-cache path report_etx uses in production), and a
// long-duration MeshService the serve_ingest stage keeps advancing.  All
// lambdas capture by reference; the caller keeps everything alive across
// run_bench_suite().
std::vector<obs::BenchStage> make_stages(const GeneratorConfig& config,
                                         Dataset& ds, AnalysisCache& cache,
                                         const KernelFixture& kernel,
                                         const ScratchDir& scratch,
                                         serve::MeshService& service,
                                         const std::string& fleet_manifest) {
  std::vector<obs::BenchStage> stages;
  stages.push_back({"gen", [&config] {
    Dataset tmp = generate_dataset(config);
    if (tmp.networks.empty()) throw std::runtime_error("gen: empty dataset");
  }});
  stages.push_back({"csv_save", [&ds, &scratch] {
    if (!save_dataset(ds, scratch.prefix("bench_csv"), SnapshotFormat::kCsv))
      throw std::runtime_error("csv_save failed");
  }});
  stages.push_back({"csv_load", [&scratch] {
    Dataset tmp;
    if (!load_dataset(scratch.prefix("bench_csv"), &tmp, SnapshotFormat::kCsv))
      throw std::runtime_error("csv_load failed");
  }});
  stages.push_back({"wsnap_save", [&ds, &scratch] {
    if (!save_dataset(ds, scratch.prefix("bench_ws"), SnapshotFormat::kWsnap))
      throw std::runtime_error("wsnap_save failed");
  }});
  stages.push_back({"wsnap_load", [&scratch] {
    Dataset tmp;
    if (!load_dataset(scratch.prefix("bench_ws"), &tmp,
                      SnapshotFormat::kWsnap))
      throw std::runtime_error("wsnap_load failed");
  }});
  stages.push_back({"etx", [&ds, &cache] {
    (void)report_path_lengths(ds, cache);
  }});
  stages.push_back({"exor", [&ds, &cache] {
    (void)report_routing(ds, cache);
  }});
  // The multirate hyperlink Dijkstra: dominated by the per-destination
  // costs_to sweeps (the cached AnypathGraphs are warm after run 1, like
  // the other analysis stages), so this guards the sweep kernel itself.
  stages.push_back({"anypath", [&ds, &cache] {
    (void)report_anypath(ds, cache);
  }});
  stages.push_back({"lookup", [&ds] { (void)report_lookup(ds); }});
  stages.push_back({"hidden", [&ds, &cache] {
    (void)report_hidden(ds, cache);
  }});
  stages.push_back({"mobility", [&ds] { (void)report_mobility(ds); }});
  // CSR vs dense-scan Dijkstra on the synthetic fixture: all-sources
  // single-source shortest paths, serial, same graph -- the ratio of the
  // two medians is the sparse kernel's speedup.
  stages.push_back({"dijkstra_sparse", [&kernel] {
    std::vector<double> dist;
    std::vector<int> parent;
    const std::size_t n = kernel.graph->ap_count();
    for (std::size_t src = 0; src < n; ++src) {
      kernel.graph->shortest_from_into(static_cast<ApId>(src), &dist,
                                       &parent);
    }
    if (dist.size() != n) throw std::runtime_error("dijkstra_sparse: bad n");
  }});
  stages.push_back({"dijkstra_dense", [&kernel] {
    std::vector<int> parent;
    const std::size_t n = kernel.graph->ap_count();
    std::vector<double> dist;
    for (std::size_t src = 0; src < n; ++src) {
      dist = kernel.graph->shortest_from_reference(static_cast<ApId>(src),
                                                   &parent);
    }
    if (dist.size() != n) throw std::runtime_error("dijkstra_dense: bad n");
  }});
  // Out-of-core fleet analysis: stream the pre-split 3-shard fleet through
  // FleetReader/FleetAnalyzer (routing section).  This times the full
  // shard cycle -- manifest-validated open, per-shard mmap load + CRC,
  // analysis partials, cache eviction, Dataset drop -- i.e. the marginal
  // cost of sharding over the monolithic `exor` stage above.
  stages.push_back({"fleet", [&fleet_manifest] {
    store::FleetReader reader;
    if (!reader.open(fleet_manifest))
      throw std::runtime_error("fleet: " + reader.error());
    store::FleetAnalyzer analyzer(reader);
    std::string out;
    if (!analyzer.run("routing", &out))
      throw std::runtime_error("fleet: " + analyzer.error());
    if (out.empty()) throw std::runtime_error("fleet: empty report");
  }});
  // Streaming ingest: advance the live service kServeIngestRounds probe
  // rounds per run.  The service is constructed once with a ~30-day stream
  // (outside the timed loop), so repeats keep consuming fresh rounds
  // instead of re-paying fleet construction.
  stages.push_back({"serve_ingest", [&service] {
    for (int i = 0; i < kServeIngestRounds; ++i) {
      if (!service.tick())
        throw std::runtime_error("serve_ingest: stream exhausted");
    }
  }});
  // Per-tick TSDB sampling overhead at full retention: a synthetic
  // registry-shaped snapshot (scalar families plus bucketed histograms)
  // sampled far past the default ring capacity, so most ticks pay the
  // wraparound/eviction path wmesh_serve pays in steady state.
  stages.push_back({"tsdb_retention", [] {
    constexpr std::size_t kScalars = 8;
    constexpr std::size_t kBounds = 12;
    constexpr std::uint64_t kTicks = 1024;
    obs::Tsdb tsdb;  // default capacity: 360 points per series
    obs::Snapshot snap;
    for (std::size_t i = 0; i < kScalars; ++i) {
      snap.counters.push_back({"bench.ctr" + std::to_string(i), 0});
      snap.gauges.push_back({"bench.gauge" + std::to_string(i), 0.0});
    }
    obs::Snapshot::HistogramRow hist;
    hist.name = "bench.hist_us";
    for (std::size_t b = 0; b < kBounds; ++b) {
      hist.bounds.push_back(static_cast<double>(1 << b));
      hist.cumulative.push_back(0);
    }
    hist.count = 0;
    hist.sum = 0.0;
    snap.histograms.push_back(hist);
    for (std::uint64_t tick = 1; tick <= kTicks; ++tick) {
      for (std::size_t i = 0; i < kScalars; ++i) {
        snap.counters[i].value += tick % (i + 2);
        snap.gauges[i].value = static_cast<double>((tick * 7 + i) % 97);
      }
      auto& h = snap.histograms[0];
      for (std::size_t b = tick % kBounds; b < kBounds; ++b) {
        h.cumulative[b] += 1;
      }
      h.count += 1;
      h.sum += static_cast<double>(tick % 100);
      tsdb.sample(snap, tick);
    }
    if (tsdb.stats().evictions == 0) {
      throw std::runtime_error("tsdb_retention: no evictions recorded");
    }
  }});
  return stages;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string suite = "quick";
  std::string out_path, baseline_path, metrics_path, report_path;
  std::string listen_address;
  bool want_check = false, want_list = false;
  bool want_metrics = false, want_report = false;
  std::uint64_t repeat = 3;
  double tolerance_pct = 25.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    } else if (arg == "--version") {
      return cli::print_version("wmesh_bench");
    } else if (arg == "--quick") {
      suite = "quick";
    } else if (arg.rfind("--suite=", 0) == 0) {
      suite = arg.substr(std::strlen("--suite="));
      if (suite != "quick" && suite != "full") {
        return usage_error("--suite: want quick or full, got '" + suite + "'");
      }
    } else if (arg.rfind("--repeat=", 0) == 0) {
      const std::string v = arg.substr(std::strlen("--repeat="));
      const auto n = env::parse_u64(v);
      if (!n || *n == 0) {
        return usage_error("--repeat: not a positive integer: '" + v + "'");
      }
      repeat = *n;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(std::strlen("--baseline="));
    } else if (arg == "--check") {
      want_check = true;
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      const std::string v = arg.substr(std::strlen("--tolerance="));
      char* end = nullptr;
      tolerance_pct = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0' || tolerance_pct < 0.0) {
        return usage_error("--tolerance: not a non-negative number: '" + v +
                           "'");
      }
    } else if (arg == "--list") {
      want_list = true;
    } else if (arg == "--metrics") {
      want_metrics = true;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      want_metrics = true;
      metrics_path = arg.substr(std::strlen("--metrics="));
    } else if (arg == "--report") {
      want_report = true;
    } else if (arg.rfind("--report=", 0) == 0) {
      want_report = true;
      report_path = arg.substr(std::strlen("--report="));
    } else if (arg.rfind("--listen=", 0) == 0) {
      listen_address = arg.substr(std::strlen("--listen="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      const std::string v = arg.substr(std::strlen("--threads="));
      const auto n = env::parse_u64(v);
      if (!n || *n == 0) {
        return usage_error("--threads: not a positive integer: '" + v + "'");
      }
      par::set_default_threads(static_cast<std::size_t>(*n));
    } else {
      return usage_error("unknown argument '" + arg + "'");
    }
  }
  if (want_check && baseline_path.empty()) {
    return usage_error("--check requires --baseline=PATH");
  }
  if (out_path.empty()) out_path = "BENCH_" + suite + ".json";

  const GeneratorConfig config =
      suite == "quick" ? small_config() : default_config();

  // Micro-stage fixture: mesh-like density, sized so the quick suite stays
  // sub-millisecond per stage while the full suite approaches the paper's
  // largest (1407-AP) network.
  const std::size_t kernel_n = suite == "quick" ? 192 : 1024;
  const double kernel_density = 0.12;
  const std::uint64_t kernel_seed = 0xd175eedULL;

  // The serve_ingest fixture: the suite's fleet with the probe stream
  // stretched to ~30 days so repeated runs never exhaust it (the burst
  // schedule precompute scales with duration, so "30 days" and not "forever"),
  // and without client traces -- ingest ticks never touch them and mobility
  // simulation cost also scales with duration.
  serve::ServeConfig serve_cfg;
  serve_cfg.gen = config;
  serve_cfg.gen.probes.duration_s = 30.0 * 24.0 * 3600.0;
  serve_cfg.gen.generate_clients = false;

  if (want_list) {
    Dataset dummy;
    AnalysisCache dummy_cache;
    const KernelFixture kernel(1, kernel_density, 1);
    ScratchDir scratch;
    // A one-round throwaway service: --list only needs stage names.
    serve::ServeConfig tiny = serve_cfg;
    tiny.gen = small_config();
    tiny.gen.probes.duration_s = tiny.gen.probes.probe_interval_s;
    tiny.gen.generate_clients = false;
    serve::MeshService tiny_service(tiny);
    for (const auto& st :
         make_stages(config, dummy, dummy_cache, kernel, scratch,
                     tiny_service, scratch.prefix("bench_fleet.wmanifest"))) {
      std::printf("%s\n", st.name.c_str());
    }
    return 0;
  }

  bool listen_failed = false;
  const auto export_server =
      cli::start_export_server("wmesh_bench", listen_address, &listen_failed);
  if (listen_failed) return 1;

  std::optional<obs::RunReport> report;
  if (want_report) {
    report.emplace("wmesh_bench", argc, argv);
    report->set_seed(config.seed);
  }

  std::printf("suite %s: seed %llu, repeat %llu, %zu threads\n", suite.c_str(),
              static_cast<unsigned long long>(config.seed),
              static_cast<unsigned long long>(repeat),
              par::default_thread_count());

  ScratchDir scratch;
  Dataset ds = generate_dataset(config);
  AnalysisCache cache;
  const KernelFixture kernel(kernel_n, kernel_density, kernel_seed);
  serve::MeshService service(serve_cfg);
  // The fleet stage's fixture: split the suite dataset into a 3-shard
  // fleet once, outside the timed loop.
  const std::string fleet_manifest =
      store::manifest_path(scratch.prefix("bench_fleet"));
  {
    std::string err;
    if (!store::write_fleet(ds, scratch.prefix("bench_fleet"), 3, &err)) {
      std::fprintf(stderr, "error: cannot build fleet fixture: %s\n",
                   err.c_str());
      return 1;
    }
  }
  const auto stages =
      make_stages(config, ds, cache, kernel, scratch, service,
                  fleet_manifest);

  obs::BenchResult result;
  try {
    result = obs::run_bench_suite(suite, stages,
                                  static_cast<std::size_t>(repeat),
                                  par::default_thread_count());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: bench stage failed: %s\n", e.what());
    return 1;
  }

  // Human-readable summary.
  std::printf("%s", [&] {
    TextTable t;
    t.header({"stage", "median (us)", "p10", "p90"});
    for (const auto& st : result.stages) {
      char m[32], lo[32], hi[32];
      std::snprintf(m, sizeof(m), "%.1f", st.median_us);
      std::snprintf(lo, sizeof(lo), "%.1f", st.p10_us);
      std::snprintf(hi, sizeof(hi), "%.1f", st.p90_us);
      t.add_row({st.name, m, lo, hi});
    }
    return t.render();
  }().c_str());

  const std::string json = obs::bench_to_json(result);
  {
    std::ofstream out(out_path, std::ios::binary);
    if (!out || !(out << json)) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
  }
  // Self-validate the emitted file round-trips through the strict parser --
  // guarantees --baseline consumers (and the bench_smoke gate) can read it.
  {
    std::string back, err;
    obs::BenchResult parsed;
    if (!read_file(out_path, &back) ||
        !obs::parse_bench_json(back, &parsed, &err)) {
      std::fprintf(stderr, "error: emitted %s fails validation: %s\n",
                   out_path.c_str(), err.c_str());
      return 1;
    }
  }
  std::printf("(results written to %s)\n", out_path.c_str());

  int rc = 0;
  if (!baseline_path.empty()) {
    std::string text, err;
    obs::BenchResult baseline;
    if (!read_file(baseline_path, &text)) {
      std::fprintf(stderr, "error: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    if (!obs::parse_bench_json(text, &baseline, &err)) {
      std::fprintf(stderr, "error: invalid baseline %s: %s\n",
                   baseline_path.c_str(), err.c_str());
      return 1;
    }
    const auto check =
        obs::check_bench_regression(baseline, result, tolerance_pct);
    std::printf("\n== baseline %s ==\n%s", baseline_path.c_str(),
                check.render(tolerance_pct).c_str());
    if (want_check && !check.ok) rc = 1;
  }

  if (report) {
    report->set_threads(par::default_thread_count());
    report->finish();
  }
  if (want_metrics) cli::emit_metrics("wmesh_bench", metrics_path);
  if (report) {
    const int rrc = cli::emit_run_report(*report, "wmesh_bench", report_path);
    if (rc == 0) rc = rrc;
  }
  obs::flush_trace();
  return rc;
}

// wmesh_serve: a long-running analysis daemon over a live probe stream.
//
// The daemon generates the same synthetic fleet as wmesh_gen, but instead
// of writing a snapshot it ingests the probe traffic round by round (one
// 40 s probe round per tick, virtual time -- by default as fast as the CPU
// allows), keeps the last --window report rounds live per network, and
// answers analysis queries over that sliding window on --listen with a
// newline-framed protocol:
//
//   $ wmesh_serve --listen=unix:/tmp/wmesh.sock --config=small &
//   $ printf 'etx\n' | nc -U /tmp/wmesh.sock
//   ok 1893
//   ... the same text wmesh_analyze prints for this window ...
//
// Responses are "ok <payload-bytes>\n<payload>" or "err <message>\n"; see
// `help` (or serve::MeshService::help_text) for the command set.  Success
// matrices and ETX graphs are cached per network and invalidated only for
// networks whose window advanced, so repeated queries against a slow
// stream are cheap.
//
// Flags:
//   --listen=ADDR        query endpoint, unix:<path> or <host>:<port>
//                        (':0' binds an ephemeral port; required)
//   --metrics-listen=ADDR  serve live OpenMetrics (serve.* counters, query
//                        latency histogram) on a second endpoint
//   --config=NAME        fleet preset: small | default | paper
//   --seed=N             generator seed (default: the wmesh default seed)
//   --duration=S         probe stream length in virtual seconds
//   --window=N           report rounds kept live per network (default 4)
//   --rounds=N           stop ingesting after N probe rounds (default: all)
//   --tick-ms=N          wall pause between rounds (default 0: free-run)
//   --threads=N          wmesh::par pool size; responses are byte-identical
//                        for every N
//   --alerts=FILE        load alert rules (obs/alerts.h grammar); a parse
//                        error prints the file:line diagnostic and exits 2
//   --tsdb-points=N      time-series ring capacity per metric family
//                        (default 360 points = 4 h of 40 s rounds)
//   --metrics[=path], --report[=path.json], --version, --help: as in every
//   wmesh_* tool.
//
// The daemon exits 0 after a client sends "shutdown" (the stream merely
// ending keeps it alive, serving the final window).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "cli_common.h"
#include "obs/alerts.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/span.h"
#include "par/thread_pool.h"
#include "serve/daemon.h"
#include "util/env.h"

using namespace wmesh;

namespace {

const char* const kUsage =
    "usage: wmesh_serve --listen=ADDR [--metrics-listen=ADDR]\n"
    "                   [--config=small|default|paper] [--seed=N]\n"
    "                   [--duration=S] [--window=N] [--rounds=N]\n"
    "                   [--tick-ms=N] [--threads=N] [--alerts=FILE]\n"
    "                   [--tsdb-points=N] [--metrics[=path]]\n"
    "                   [--report[=path.json]] [--version]\n"
    "       wmesh_serve --help\n";

[[nodiscard]] int usage_error(const std::string& reason) {
  WMESH_LOG_ERROR("cli", kv("tool", "wmesh_serve"), kv("error", reason));
  std::fputs(kUsage, stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  serve::DaemonOptions options;
  std::string metrics_listen;
  bool want_metrics = false;
  std::string metrics_path;
  bool want_report = false;
  std::string report_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s\n%s", kUsage, serve::MeshService::help_text().c_str());
      return 0;
    }
    if (arg == "--version") return cli::print_version("wmesh_serve");
    if (arg == "--metrics") {
      want_metrics = true;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      want_metrics = true;
      metrics_path = arg.substr(std::strlen("--metrics="));
    } else if (arg == "--report") {
      want_report = true;
    } else if (arg.rfind("--report=", 0) == 0) {
      want_report = true;
      report_path = arg.substr(std::strlen("--report="));
    } else if (arg.rfind("--listen=", 0) == 0) {
      options.listen = arg.substr(std::strlen("--listen="));
    } else if (arg.rfind("--metrics-listen=", 0) == 0) {
      metrics_listen = arg.substr(std::strlen("--metrics-listen="));
    } else if (arg.rfind("--config=", 0) == 0) {
      const std::string v = arg.substr(std::strlen("--config="));
      if (v == "small") {
        options.service.gen = small_config();
      } else if (v == "default") {
        options.service.gen = default_config();
      } else if (v == "paper") {
        options.service.gen = paper_scale_config();
      } else {
        return usage_error("--config: want small, default or paper, got '" +
                           v + "'");
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      const auto v = env::parse_u64(arg.substr(std::strlen("--seed=")));
      if (!v) return usage_error("--seed: not an integer");
      options.service.gen.seed = *v;
    } else if (arg.rfind("--duration=", 0) == 0) {
      const auto v = env::parse_u64(arg.substr(std::strlen("--duration=")));
      if (!v || *v == 0) {
        return usage_error("--duration: not a positive integer");
      }
      options.service.gen.probes.duration_s = static_cast<double>(*v);
    } else if (arg.rfind("--window=", 0) == 0) {
      const auto v = env::parse_u64(arg.substr(std::strlen("--window=")));
      if (!v || *v == 0) return usage_error("--window: not a positive integer");
      options.service.window_rounds = static_cast<std::size_t>(*v);
    } else if (arg.rfind("--rounds=", 0) == 0) {
      const auto v = env::parse_u64(arg.substr(std::strlen("--rounds=")));
      if (!v) return usage_error("--rounds: not an integer");
      options.max_rounds = *v;
    } else if (arg.rfind("--tick-ms=", 0) == 0) {
      const auto v = env::parse_u64(arg.substr(std::strlen("--tick-ms=")));
      if (!v) return usage_error("--tick-ms: not an integer");
      options.tick_sleep_ms = static_cast<int>(*v);
    } else if (arg.rfind("--threads=", 0) == 0) {
      const auto v = env::parse_u64(arg.substr(std::strlen("--threads=")));
      if (!v || *v == 0) return usage_error("--threads: not a positive integer");
      par::set_default_threads(static_cast<std::size_t>(*v));
    } else if (arg.rfind("--alerts=", 0) == 0) {
      const std::string path = arg.substr(std::strlen("--alerts="));
      std::ifstream in_file(path);
      if (!in_file) return usage_error("--alerts: cannot read '" + path + "'");
      std::ostringstream text;
      text << in_file.rdbuf();
      std::string parse_error;
      if (!obs::parse_alert_rules(text.str(), path,
                                  &options.service.alerts, &parse_error)) {
        WMESH_LOG_ERROR("cli", kv("tool", "wmesh_serve"),
                        kv("error", parse_error));
        std::fprintf(stderr, "wmesh_serve: %s\n", parse_error.c_str());
        return 2;
      }
    } else if (arg.rfind("--tsdb-points=", 0) == 0) {
      const auto v =
          env::parse_u64(arg.substr(std::strlen("--tsdb-points=")));
      if (!v || *v == 0) {
        return usage_error("--tsdb-points: not a positive integer");
      }
      options.service.tsdb.points_per_series = static_cast<std::size_t>(*v);
    } else {
      return usage_error("unknown flag '" + arg + "'");
    }
  }
  if (options.listen.empty()) return usage_error("--listen is required");

  bool listen_failed = false;
  const auto export_server =
      cli::start_export_server("wmesh_serve", metrics_listen, &listen_failed);
  if (listen_failed) return 1;

  std::optional<obs::RunReport> report;
  if (want_report) report.emplace("wmesh_serve", argc, argv);

  std::string error;
  auto daemon = serve::ServeDaemon::start(options, &error);
  if (daemon == nullptr) {
    std::fprintf(stderr, "wmesh_serve: --listen=%s: %s\n",
                 options.listen.c_str(), error.c_str());
    return 1;
  }
  std::printf("(serving queries on %s)\n", daemon->query_address().c_str());
  std::fflush(stdout);

  const std::uint64_t rounds = daemon->run();
  std::printf("(shutdown after %llu probe rounds, virtual time %.0f s)\n",
              static_cast<unsigned long long>(rounds),
              daemon->service().time_s());

  int rc = 0;
  if (report) {
    report->set_threads(par::default_thread_count());
    report->finish();
  }
  if (want_metrics) cli::emit_metrics("wmesh_serve", metrics_path);
  if (report) rc = cli::emit_run_report(*report, "wmesh_serve", report_path);
  obs::flush_trace();
  return rc;
}

// wmesh_gen: generate a synthetic fleet snapshot and save it as CSV.
//
// The saved snapshot is the interchange format every bench binary accepts
// via WMESH_SNAPSHOT=<prefix>, and the template for feeding real traces to
// the toolkit.
//
// Usage: wmesh_gen <prefix> [--seed N] [--hours H] [--networks N]
//                  [--small] [--paper-scale] [--no-clients] [--threads=N]
//                  [--metrics[=path]] [--report[=path.json]] [--version]
//
// Generation runs one network per wmesh::par task on pre-forked RNG
// streams; the snapshot is byte-identical for any --threads value.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>

#include "cli_common.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/span.h"
#include "par/thread_pool.h"
#include "sim/generator.h"
#include "store/fleet.h"
#include "trace/io.h"
#include "util/env.h"

using namespace wmesh;

namespace {

const char* const kUsage =
    "usage: wmesh_gen <prefix> [--seed N] [--hours H] [--networks N] "
    "[--fleet=N] [--shards=K] [--small] [--paper-scale] [--no-clients] "
    "[--format=csv|wsnap] [--threads=N] [--metrics[=path]] "
    "[--report[=path.json]] [--version]\n"
    "       wmesh_gen --help\n";

void print_help() {
  std::printf(
      "%s\n"
      "writes <prefix>.probes.csv and <prefix>.clients.csv, or a single\n"
      "binary columnar <prefix>.wsnap with --format=wsnap\n"
      "\n"
      "flags:\n"
      "  --seed N         generation seed (unsigned integer)\n"
      "  --hours H        probe-trace length in hours\n"
      "  --networks N     fleet size (population classes scale with it)\n"
      "  --fleet=N        alias for --networks N, for sharded runs\n"
      "  --shards=K       write a sharded fleet instead of one snapshot:\n"
      "                   K WSNAP shard files (contiguous network groups,\n"
      "                   one generated slice resident at a time) plus a\n"
      "                   <prefix>.wmanifest; byte-identical to --format=\n"
      "                   wsnap output when merged (wmesh_convert --merge)\n"
      "  --small          tiny 6-network, 1-hour fleet (golden test data)\n"
      "  --paper-scale    paper-scale probe parameters\n"
      "  --no-clients     skip client mobility simulation\n"
      "  --format=F       snapshot format: csv (default) or wsnap (binary\n"
      "                   columnar, CRC-checked, ~10x faster to load); a\n"
      "                   prefix ending in .wsnap implies wsnap\n"
      "  --threads=N      generation thread count (flag > WMESH_THREADS >\n"
      "                   hardware); snapshot is byte-identical for every N\n"
      "  --metrics        print the metrics registry snapshot on exit\n"
      "  --metrics=PATH   also write it to PATH (.json -> JSON, else CSV)\n"
      "  --listen=ADDR    serve live OpenMetrics at ADDR for the whole run\n"
      "                   (unix:<path> or <host>:<port>; ':0' = any port)\n"
      "  --report         write the run report (tool, argv, seed, build,\n"
      "                   wall time, peak RSS, metrics + span aggregates)\n"
      "                   to wmesh_gen.report.json\n"
      "  --report=PATH    write the run report to PATH instead\n"
      "  --version        print build info (git, compiler, flags) and exit\n"
      "  --help           this text\n"
      "\n"
      "env: WMESH_THREADS=N, WMESH_LOG_LEVEL=trace|debug|info|warn|error|off,\n"
      "     WMESH_LOG_FILE=<path>, WMESH_TRACE_OUT=<chrome-trace.json>\n",
      kUsage);
}

[[nodiscard]] int usage_error(const std::string& reason) {
  WMESH_LOG_ERROR("cli", kv("tool", "wmesh_gen"), kv("error", reason));
  std::fputs(kUsage, stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string prefix;
  GeneratorConfig config = default_config();
  bool want_metrics = false;
  std::string metrics_path;
  bool want_report = false;
  std::string report_path;
  std::string listen_address;
  SnapshotFormat format = SnapshotFormat::kAuto;
  std::size_t shards = 0;  // 0 = monolithic output

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::exit(usage_error(std::string(flag) + " needs a value"));
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    } else if (arg == "--version") {
      return cli::print_version("wmesh_gen");
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      const auto seed = env::parse_u64(v);
      if (!seed) return usage_error("--seed: not an unsigned integer: '" +
                                    std::string(v) + "'");
      config.seed = *seed;
    } else if (arg == "--hours") {
      const char* v = next("--hours");
      const auto hours = env::parse_double(v);
      if (!hours || *hours < 0.0) {
        return usage_error("--hours: not a non-negative number: '" +
                           std::string(v) + "'");
      }
      config.probes.duration_s = *hours * 3600.0;
    } else if (arg == "--networks" || arg.rfind("--fleet=", 0) == 0) {
      const std::string v = arg == "--networks"
                                ? std::string(next("--networks"))
                                : arg.substr(std::strlen("--fleet="));
      const char* flag = arg == "--networks" ? "--networks" : "--fleet";
      const auto parsed = env::parse_u64(v);
      if (!parsed || *parsed == 0) {
        return usage_error(std::string(flag) +
                           ": not a positive integer: '" + v + "'");
      }
      const auto n = static_cast<std::size_t>(*parsed);
      // Scale the population classes proportionally.
      const double f = static_cast<double>(n) /
                       static_cast<double>(config.fleet.network_count);
      config.fleet.network_count = n;
      config.fleet.bg_only = static_cast<std::size_t>(77 * f);
      config.fleet.n_only = static_cast<std::size_t>(31 * f);
      config.fleet.both =
          config.fleet.network_count - config.fleet.bg_only - config.fleet.n_only;
      config.fleet.indoor = static_cast<std::size_t>(72 * f);
      config.fleet.outdoor = static_cast<std::size_t>(17 * f);
      config.fleet.force_max_network = n >= 50;
    } else if (arg.rfind("--shards=", 0) == 0) {
      const std::string v = arg.substr(std::strlen("--shards="));
      const auto n = env::parse_u64(v);
      if (!n || *n == 0) {
        return usage_error("--shards: not a positive integer: '" + v + "'");
      }
      shards = static_cast<std::size_t>(*n);
    } else if (arg == "--small") {
      const std::uint64_t seed = config.seed;
      config = small_config();
      config.seed = seed;  // --seed composes with --small in either order
    } else if (arg == "--paper-scale") {
      config.probes = paper_scale_probe_params();
    } else if (arg == "--no-clients") {
      config.generate_clients = false;
    } else if (arg.rfind("--format=", 0) == 0) {
      const std::string v = arg.substr(std::strlen("--format="));
      const auto f = parse_snapshot_format(v);
      if (!f) {
        return usage_error("--format: want csv, wsnap or auto, got '" + v +
                           "'");
      }
      format = *f;
    } else if (arg.rfind("--threads=", 0) == 0) {
      const std::string v = arg.substr(std::strlen("--threads="));
      const auto n = env::parse_u64(v);
      if (!n || *n == 0) {
        return usage_error("--threads: not a positive integer: '" + v + "'");
      }
      par::set_default_threads(static_cast<std::size_t>(*n));
    } else if (arg == "--metrics") {
      want_metrics = true;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      want_metrics = true;
      metrics_path = arg.substr(std::strlen("--metrics="));
    } else if (arg == "--report") {
      want_report = true;
    } else if (arg.rfind("--report=", 0) == 0) {
      want_report = true;
      report_path = arg.substr(std::strlen("--report="));
    } else if (arg.rfind("--listen=", 0) == 0) {
      listen_address = arg.substr(std::strlen("--listen="));
    } else if (arg.rfind("--", 0) == 0) {
      return usage_error("unknown flag '" + arg + "'");
    } else if (prefix.empty()) {
      prefix = arg;
    } else {
      return usage_error("unexpected argument '" + arg + "'");
    }
  }
  if (prefix.empty()) {
    return usage_error("missing <prefix>");
  }
  if (shards > 0 && format == SnapshotFormat::kCsv) {
    return usage_error("--shards writes WSNAP shard files; --format=csv is "
                       "not supported");
  }

  bool listen_failed = false;
  const auto export_server =
      cli::start_export_server("wmesh_gen", listen_address, &listen_failed);
  if (listen_failed) return 1;

  std::optional<obs::RunReport> report;
  if (want_report) {
    report.emplace("wmesh_gen", argc, argv);
    report->set_seed(config.seed);
  }

  std::printf("generating: seed %llu, %zu networks, %.1f h probes...\n",
              static_cast<unsigned long long>(config.seed),
              config.fleet.network_count, config.probes.duration_s / 3600.0);
  if (shards > 0) {
    // Sharded fleet output: generate contiguous fleet slices one at a time
    // (only one slice's traces are ever resident) and write each as a WSNAP
    // shard.  The pre-forked per-network RNG streams make the result
    // byte-identical to a monolithic run: merging the shards reproduces the
    // --format=wsnap file bit-for-bit.
    const FleetGenerator gen(config);
    const std::size_t n = gen.network_count();
    if (n == 0) {
      std::fprintf(stderr, "error: empty fleet\n");
      return 1;
    }
    const std::size_t want = std::min(shards, n);
    const std::string mpath = store::manifest_path(prefix);
    const auto dir = std::filesystem::path(mpath).parent_path();
    store::FleetManifest manifest;
    std::string err;
    for (std::size_t s = 0; s < want; ++s) {
      const std::size_t begin = s * n / want;
      const std::size_t end = (s + 1) * n / want;
      const Dataset slice = gen.generate(begin, end);
      const std::string rel = store::shard_file_name(prefix, s);
      if (!store::append_fleet_shard(slice, (dir / rel).string(), &manifest,
                                     &err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
      }
    }
    if (!store::save_fleet_manifest(manifest, mpath, &err)) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 1;
    }
    std::printf("generated %llu traces, %llu probe sets\n",
                static_cast<unsigned long long>(manifest.total_networks()),
                static_cast<unsigned long long>(manifest.total_probe_sets()));
    std::printf("wrote %s (%zu shards, %llu bytes)\n", mpath.c_str(),
                manifest.shards.size(),
                static_cast<unsigned long long>(manifest.total_bytes()));
  } else {
    const Dataset ds = generate_dataset(config);
    std::printf("generated %zu traces, %zu APs, %zu probe sets\n",
                ds.networks.size(), ds.total_aps(), ds.total_probe_sets());
    const SnapshotFormat resolved =
        resolve_snapshot_format(prefix, format, /*for_load=*/false);
    if (!save_dataset(ds, prefix, resolved)) {
      WMESH_LOG_ERROR("cli", kv("tool", "wmesh_gen"),
                      kv("error", "cannot write snapshot"),
                      kv("prefix", prefix));
      std::fprintf(stderr, "error: cannot write snapshot %s\n",
                   prefix.c_str());
      return 1;
    }
    if (resolved == SnapshotFormat::kWsnap) {
      std::printf("wrote %s\n", wsnap_path(prefix).c_str());
    } else {
      std::printf("wrote %s.probes.csv and %s.clients.csv\n", prefix.c_str(),
                  prefix.c_str());
    }
  }
  int rc = 0;
  if (report) {
    report->set_threads(par::default_thread_count());
    report->finish();
  }
  if (want_metrics) cli::emit_metrics("wmesh_gen", metrics_path);
  if (report) rc = cli::emit_run_report(*report, "wmesh_gen", report_path);
  obs::flush_trace();
  return rc;
}

// wmesh_gen: generate a synthetic fleet snapshot and save it as CSV.
//
// The saved snapshot is the interchange format every bench binary accepts
// via WMESH_SNAPSHOT=<prefix>, and the template for feeding real traces to
// the toolkit.
//
// Usage: wmesh_gen <prefix> [--seed N] [--hours H] [--networks N]
//                  [--paper-scale] [--no-clients]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/generator.h"
#include "trace/io.h"

using namespace wmesh;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <prefix> [--seed N] [--hours H] [--networks N] "
               "[--paper-scale] [--no-clients]\n"
               "writes <prefix>.probes.csv and <prefix>.clients.csv\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  const std::string prefix = argv[1];
  GeneratorConfig config = default_config();
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--hours") {
      config.probes.duration_s = std::strtod(next(), nullptr) * 3600.0;
    } else if (arg == "--networks") {
      const auto n = std::strtoul(next(), nullptr, 10);
      // Scale the population classes proportionally.
      const double f =
          static_cast<double>(n) / static_cast<double>(config.fleet.network_count);
      config.fleet.network_count = n;
      config.fleet.bg_only = static_cast<std::size_t>(77 * f);
      config.fleet.n_only = static_cast<std::size_t>(31 * f);
      config.fleet.both =
          config.fleet.network_count - config.fleet.bg_only - config.fleet.n_only;
      config.fleet.indoor = static_cast<std::size_t>(72 * f);
      config.fleet.outdoor = static_cast<std::size_t>(17 * f);
      config.fleet.force_max_network = n >= 50;
    } else if (arg == "--paper-scale") {
      config.probes = paper_scale_probe_params();
    } else if (arg == "--no-clients") {
      config.generate_clients = false;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  std::printf("generating: seed %llu, %zu networks, %.1f h probes...\n",
              static_cast<unsigned long long>(config.seed),
              config.fleet.network_count, config.probes.duration_s / 3600.0);
  const Dataset ds = generate_dataset(config);
  std::printf("generated %zu traces, %zu APs, %zu probe sets\n",
              ds.networks.size(), ds.total_aps(), ds.total_probe_sets());
  if (!save_dataset(ds, prefix)) {
    std::fprintf(stderr, "error: cannot write %s.*.csv\n", prefix.c_str());
    return 1;
  }
  std::printf("wrote %s.probes.csv and %s.clients.csv\n", prefix.c_str(),
              prefix.c_str());
  return 0;
}

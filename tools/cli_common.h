// Flag plumbing shared by every wmesh_* tool: --version, --metrics[=path],
// --report[=path.json] and --listen=<addr> behave identically everywhere,
// so the glue lives here instead of being copied per tool.
#pragma once

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "obs/export_server.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace wmesh::cli {

// --version: one line of build identity, exit 0.
inline int print_version(const char* tool) {
  std::printf("%s\n",
              wmesh::obs::BuildInfo::current().version_line(tool).c_str());
  return 0;
}

// --metrics[=path]: prints the registry snapshot (flushing any counter
// batches still active on other threads) and optionally writes it to
// `path` (.json -> JSON, anything else -> CSV).
inline void emit_metrics(const char* tool, const std::string& path) {
  const auto snap = wmesh::obs::Registry::instance().snapshot(
      wmesh::obs::SnapshotFlush::kActiveBatches);
  if (snap.empty()) {
    std::printf("\n== metrics ==\n(observability disabled: library built "
                "with WMESH_OBS_DISABLED)\n");
    return;
  }
  std::printf("\n== metrics ==\n%s", snap.render_table().c_str());
  if (path.empty()) return;
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  std::ofstream out(path);
  if (!out) {
    WMESH_LOG_ERROR("cli", kv("tool", tool),
                    kv("error", "cannot write metrics file"), kv("path", path));
    return;
  }
  out << (json ? snap.to_json() : snap.to_csv());
  std::printf("(metrics written to %s)\n", path.c_str());
}

// --report[=path.json]: writes the run report, defaulting the path to
// <tool>.report.json in the working directory.  Returns 0 on success.
inline int emit_run_report(wmesh::obs::RunReport& report, const char* tool,
                           std::string path) {
  if (path.empty()) path = std::string(tool) + ".report.json";
  if (!report.write(path)) {
    std::fprintf(stderr, "error: cannot write run report %s\n", path.c_str());
    return 1;
  }
  std::printf("(run report written to %s)\n", path.c_str());
  return 0;
}

// --listen=<addr>: starts the OpenMetrics export endpoint for the life of
// the run ("unix:<path>" or "<host>:<port>"; ":0" binds an ephemeral port).
// Prints the concrete bound address so scripts can scrape ephemeral ports.
// Returns nullptr (after printing the error) when the bind fails; callers
// treat that as a fatal flag error.  An empty address is not an error --
// the flag simply was not given -- and also returns nullptr.
inline std::unique_ptr<wmesh::obs::ExportServer> start_export_server(
    const char* tool, const std::string& address, bool* failed) {
  *failed = false;
  if (address.empty()) return nullptr;
  std::string error;
  auto server = wmesh::obs::ExportServer::start(address, &error);
  if (server == nullptr) {
    std::fprintf(stderr, "%s: --listen=%s: %s\n", tool, address.c_str(),
                 error.c_str());
    *failed = true;
    return nullptr;
  }
  std::printf("(metrics endpoint listening on %s)\n",
              server->bound_address().c_str());
  std::fflush(stdout);
  return server;
}

}  // namespace wmesh::cli

// Flag plumbing shared by every wmesh_* tool: --version, --metrics[=path]
// and --report[=path.json] behave identically everywhere, so the glue
// lives here instead of being copied per tool.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace wmesh::cli {

// --version: one line of build identity, exit 0.
inline int print_version(const char* tool) {
  std::printf("%s\n",
              wmesh::obs::BuildInfo::current().version_line(tool).c_str());
  return 0;
}

// --metrics[=path]: prints the registry snapshot (flushing any counter
// batches still active on other threads) and optionally writes it to
// `path` (.json -> JSON, anything else -> CSV).
inline void emit_metrics(const char* tool, const std::string& path) {
  const auto snap = wmesh::obs::Registry::instance().snapshot(
      wmesh::obs::SnapshotFlush::kActiveBatches);
  if (snap.empty()) {
    std::printf("\n== metrics ==\n(observability disabled: library built "
                "with WMESH_OBS_DISABLED)\n");
    return;
  }
  std::printf("\n== metrics ==\n%s", snap.render_table().c_str());
  if (path.empty()) return;
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  std::ofstream out(path);
  if (!out) {
    WMESH_LOG_ERROR("cli", kv("tool", tool),
                    kv("error", "cannot write metrics file"), kv("path", path));
    return;
  }
  out << (json ? snap.to_json() : snap.to_csv());
  std::printf("(metrics written to %s)\n", path.c_str());
}

// --report[=path.json]: writes the run report, defaulting the path to
// <tool>.report.json in the working directory.  Returns 0 on success.
inline int emit_run_report(wmesh::obs::RunReport& report, const char* tool,
                           std::string path) {
  if (path.empty()) path = std::string(tool) + ".report.json";
  if (!report.write(path)) {
    std::fprintf(stderr, "error: cannot write run report %s\n", path.c_str());
    return 1;
  }
  std::printf("(run report written to %s)\n", path.c_str());
  return 0;
}

}  // namespace wmesh::cli

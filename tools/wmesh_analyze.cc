// wmesh_analyze: run one of the paper's analyses on a saved snapshot.
//
// Usage: wmesh_analyze <prefix> <analysis> [--threads=N] [--metrics[=path]]
//                       [--report[=path.json]] [--version]
//   snr       Fig 3.1 SNR dispersion summary
//   lookup    Fig 4.4 look-up table accuracy by scope (both standards)
//   routing   Fig 5.1 opportunistic-routing gains at 1 Mbit/s
//   hidden    Fig 6.1 hidden-triple medians per rate
//   anypath   three-way ETX / ExOR / multirate-anypath comparison
//   mobility  Fig 7.3/7.4 prevalence & persistence by environment
//   traffic   §3.2 client/AP load summary
//   etx       full pipeline anchored on the ETX base rate: runs the routing
//             study in detail (gains + path lengths) plus every analysis
//             above, exercising all instrumented stages in one invocation
//   all       alias for etx
//
// Flags:
//   --threads=N      size of the wmesh::par analysis pool (overrides
//                    WMESH_THREADS; default: hardware concurrency).
//                    Output is byte-identical for every N.
//   --metrics        print the observability registry snapshot on exit
//   --metrics=PATH   also write it to PATH (.json -> JSON, else CSV)
//   --help           this text
//
// Observability env vars (see DESIGN.md "Observability"): WMESH_LOG_LEVEL,
// WMESH_LOG_FILE, WMESH_TRACE_OUT.  WMESH_TRACE_OUT with --threads>1 shows
// the parallel shard timeline (one track per pool thread).
//
// This is the entry point for running the toolkit over real traces: write
// them in the trace/io.h CSV schema and point this tool (or the bench
// binaries via WMESH_SNAPSHOT) at the prefix.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "cli_common.h"
#include "core/report.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/span.h"
#include "par/thread_pool.h"
#include "store/fleet.h"
#include "store/fleet_analyze.h"
#include "trace/io.h"
#include "util/env.h"

using namespace wmesh;

namespace {

const char* const kUsage =
    "usage: wmesh_analyze <prefix> "
    "<snr|lookup|routing|anypath|hidden|mobility|traffic|etx|all> "
    "[--anypath] [--fleet] [--format=csv|wsnap|auto] [--threads=N] "
    "[--metrics[=path]] [--report[=path.json]] [--version]\n"
    "       wmesh_analyze --help\n";

void print_help() {
  std::printf(
      "%s\n"
      "analyses:\n"
      "  snr       SNR dispersion summary (Fig 3.1)\n"
      "  lookup    look-up table accuracy by scope (Fig 4.4)\n"
      "  routing   opportunistic-routing gains at 1 Mbit/s (Fig 5.1)\n"
      "  anypath   three-way ETX / ExOR / multirate-anypath comparison\n"
      "            (ROADMAP item 3; --anypath is an alias)\n"
      "  hidden    hidden-triple medians per rate (Fig 6.1)\n"
      "  mobility  prevalence & persistence by environment (Fig 7.3/7.4)\n"
      "  traffic   client/AP load summary (SS3.2)\n"
      "  etx|all   full pipeline at the ETX base rate: routing detail plus\n"
      "            every analysis above in one pass\n"
      "\n"
      "flags:\n"
      "  --fleet          analyze a sharded fleet out-of-core: <prefix>\n"
      "                   names a .wmanifest (extension optional); shards\n"
      "                   stream one at a time, so peak RSS is bounded by\n"
      "                   the largest shard while output stays byte-\n"
      "                   identical to the monolithic snapshot; implied\n"
      "                   when <prefix> ends in .wmanifest\n"
      "  --format=F       snapshot format: csv, wsnap, or auto (default;\n"
      "                   picks by extension, then by which files exist)\n"
      "  --threads=N      analysis thread count (flag > WMESH_THREADS >\n"
      "                   hardware); output is byte-identical for every N\n"
      "  --metrics        print the metrics registry snapshot on exit\n"
      "  --metrics=PATH   also write it to PATH (.json -> JSON, else CSV)\n"
      "  --listen=ADDR    serve live OpenMetrics at ADDR for the whole run\n"
      "                   (unix:<path> or <host>:<port>; ':0' = any port)\n"
      "  --report         write the run report (tool, argv, build, wall\n"
      "                   time, peak RSS, metrics + span aggregates) to\n"
      "                   wmesh_analyze.report.json\n"
      "  --report=PATH    write the run report to PATH instead\n"
      "  --version        print build info (git, compiler, flags) and exit\n"
      "  --help           this text\n"
      "\n"
      "env: WMESH_THREADS=N, WMESH_LOG_LEVEL=trace|debug|info|warn|error|off,\n"
      "     WMESH_LOG_FILE=<path>, WMESH_TRACE_OUT=<chrome-trace.json>\n",
      kUsage);
}

[[nodiscard]] int usage_error(const std::string& reason) {
  WMESH_LOG_ERROR("cli", kv("tool", "wmesh_analyze"), kv("error", reason));
  std::fputs(kUsage, stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string prefix, what;
  bool want_metrics = false;
  std::string metrics_path;
  bool want_report = false;
  std::string report_path;
  std::string listen_address;
  SnapshotFormat format = SnapshotFormat::kAuto;
  bool fleet_mode = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    }
    if (arg == "--version") {
      return cli::print_version("wmesh_analyze");
    }
    if (arg == "--anypath") {
      // Flag alias for the anypath analysis, so scripted pipelines can
      // toggle it without reordering positionals.
      what = "anypath";
    } else if (arg == "--fleet") {
      fleet_mode = true;
    } else if (arg == "--metrics") {
      want_metrics = true;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      want_metrics = true;
      metrics_path = arg.substr(std::strlen("--metrics="));
    } else if (arg == "--report") {
      want_report = true;
    } else if (arg.rfind("--report=", 0) == 0) {
      want_report = true;
      report_path = arg.substr(std::strlen("--report="));
    } else if (arg.rfind("--listen=", 0) == 0) {
      listen_address = arg.substr(std::strlen("--listen="));
    } else if (arg.rfind("--format=", 0) == 0) {
      const std::string v = arg.substr(std::strlen("--format="));
      const auto f = parse_snapshot_format(v);
      if (!f) {
        return usage_error("--format: want csv, wsnap or auto, got '" + v +
                           "'");
      }
      format = *f;
    } else if (arg.rfind("--threads=", 0) == 0) {
      const std::string v = arg.substr(std::strlen("--threads="));
      const auto n = env::parse_u64(v);
      if (!n || *n == 0) {
        return usage_error("--threads: not a positive integer: '" + v + "'");
      }
      par::set_default_threads(static_cast<std::size_t>(*n));
    } else if (arg.rfind("--", 0) == 0) {
      return usage_error("unknown flag '" + arg + "'");
    } else if (prefix.empty()) {
      prefix = arg;
    } else if (what.empty()) {
      what = arg;
    } else {
      return usage_error("unexpected argument '" + arg + "'");
    }
  }
  if (prefix.empty() || what.empty()) {
    return usage_error("missing <prefix> or <analysis>");
  }
  if (what != "snr" && what != "lookup" && what != "routing" &&
      what != "anypath" && what != "hidden" && what != "mobility" &&
      what != "traffic" && what != "etx" && what != "all") {
    return usage_error("unknown analysis '" + what + "'");
  }

  bool listen_failed = false;
  const auto export_server =
      cli::start_export_server("wmesh_analyze", listen_address, &listen_failed);
  if (listen_failed) return 1;

  std::optional<obs::RunReport> report;
  if (want_report) report.emplace("wmesh_analyze", argc, argv);

  if (fleet_mode || store::has_manifest_extension(prefix)) {
    // Out-of-core path: stream the sharded fleet, one shard's Dataset
    // resident at a time.  Output is byte-identical to loading the merged
    // snapshot and running the analysis monolithically.
    store::FleetReader reader;
    if (!reader.open(store::manifest_path(prefix))) {
      std::fprintf(stderr, "error: %s\n", reader.error().c_str());
      return 1;
    }
    WMESH_LOG_INFO("cli", kv("tool", "wmesh_analyze"), kv("analysis", what),
                   kv("fleet_shards", reader.shard_count()),
                   kv("threads", par::default_thread_count()));
    store::FleetAnalyzer analyzer(reader);
    std::string out;
    if (!analyzer.run(what, &out)) {
      std::fprintf(stderr, "error: %s\n", analyzer.error().c_str());
      return 1;
    }
    std::fputs(out.c_str(), stdout);
  } else {
    Dataset ds;
    if (!load_dataset(prefix, &ds, format)) {
      WMESH_LOG_ERROR("cli", kv("tool", "wmesh_analyze"),
                      kv("error", "cannot load snapshot"),
                      kv("prefix", prefix));
      std::fprintf(stderr, "error: cannot load snapshot %s\n",
                   prefix.c_str());
      return 1;
    }
    WMESH_LOG_INFO("cli", kv("tool", "wmesh_analyze"), kv("analysis", what),
                   kv("threads", par::default_thread_count()));
    std::fputs(run_report(ds, what).c_str(), stdout);
  }

  int rc = 0;
  if (report) {
    report->set_threads(par::default_thread_count());
    report->finish();  // freeze wall time + sampler before any snapshot
  }
  if (want_metrics) cli::emit_metrics("wmesh_analyze", metrics_path);
  if (report) {
    rc = cli::emit_run_report(*report, "wmesh_analyze", report_path);
  }
  obs::flush_trace();
  return rc;
}

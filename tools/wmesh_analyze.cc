// wmesh_analyze: run one of the paper's analyses on a saved snapshot.
//
// Usage: wmesh_analyze <prefix> <analysis>
//   snr       Fig 3.1 SNR dispersion summary
//   lookup    Fig 4.4 look-up table accuracy by scope (both standards)
//   routing   Fig 5.1 opportunistic-routing gains at 1 Mbit/s
//   hidden    Fig 6.1 hidden-triple medians per rate
//   mobility  Fig 7.3/7.4 prevalence & persistence by environment
//   traffic   §3.2 client/AP load summary
//
// This is the entry point for running the toolkit over real traces: write
// them in the trace/io.h CSV schema and point this tool (or the bench
// binaries via WMESH_SNAPSHOT) at the prefix.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/exor.h"
#include "core/hidden.h"
#include "core/lookup_table.h"
#include "core/mobility.h"
#include "core/snr_stats.h"
#include "core/traffic.h"
#include "trace/io.h"
#include "util/stats.h"
#include "util/text_table.h"

using namespace wmesh;

namespace {

int run_snr(const Dataset& ds) {
  for (const Standard std : {Standard::kBg, Standard::kN}) {
    const auto dev = snr_deviations(ds, std);
    if (dev.per_probe_set.empty()) continue;
    const Cdf sets(dev.per_probe_set);
    std::printf("%s: probe-set sigma median %.2f dB (<5 dB: %.1f%%), link "
                "median %.2f, network median %.2f\n",
                std::string(to_string(std)).c_str(), sets.median(),
                100.0 * sets.fraction_at_or_below(5.0),
                median(dev.per_link), median(dev.per_network));
  }
  return 0;
}

int run_lookup(const Dataset& ds) {
  TextTable t;
  t.header({"standard", "scope", "exact", "mean loss (Mbit/s)"});
  for (const Standard std : {Standard::kBg, Standard::kN}) {
    for (const TableScope scope :
         {TableScope::kGlobal, TableScope::kNetwork, TableScope::kAp,
          TableScope::kLink}) {
      const auto err = lookup_table_errors(ds, std, scope);
      if (err.throughput_diff_mbps.empty()) continue;
      t.add_row({std::string(to_string(std)), to_string(scope),
                 fmt(100.0 * err.exact_fraction, 1) + "%",
                 fmt(mean(err.throughput_diff_mbps), 3)});
    }
  }
  std::fputs(t.render().c_str(), stdout);
  return 0;
}

int run_routing(const Dataset& ds) {
  for (const EtxVariant v : {EtxVariant::kEtx1, EtxVariant::kEtx2}) {
    std::vector<double> imps;
    std::size_t none = 0;
    for (const auto& nt : ds.networks) {
      if (nt.info.standard != Standard::kBg || nt.ap_count < 5) continue;
      for (const auto& g :
           opportunistic_gains(mean_success_matrix(nt, 0), v)) {
        imps.push_back(g.improvement());
        none += g.improvement() < 1e-9 ? 1 : 0;
      }
    }
    if (imps.empty()) continue;
    std::printf("%s @1M: mean %.3f median %.3f zero-gain %.1f%% over %zu "
                "pairs\n",
                to_string(v), mean(imps), median(imps),
                100.0 * static_cast<double>(none) /
                    static_cast<double>(imps.size()),
                imps.size());
  }
  return 0;
}

int run_hidden(const Dataset& ds) {
  TextTable t;
  t.header({"rate", "networks", "median hidden fraction"});
  const auto rates = probed_rates(Standard::kBg);
  for (RateIndex r = 0; r < rates.size(); ++r) {
    const auto stats = hidden_triples_per_network(ds, Standard::kBg, r, 0.10);
    if (stats.fractions.empty()) continue;
    t.add_row({std::string(rates[r].name),
               std::to_string(stats.fractions.size()),
               fmt(median(stats.fractions), 3)});
  }
  std::fputs(t.render().c_str(), stdout);
  return 0;
}

int run_mobility(const Dataset& ds) {
  for (const Environment env : {Environment::kIndoor, Environment::kOutdoor}) {
    const auto m = analyze_mobility_by_env(ds, env);
    if (m.prevalence.empty()) continue;
    std::printf("%s: prevalence mean/med %.3f/%.3f, persistence mean/med "
                "%.1f/%.1f min, %zu sessions\n",
                to_string(env).c_str(), mean(m.prevalence),
                median(m.prevalence), mean(m.persistence_min),
                median(m.persistence_min), m.aps_visited.size());
  }
  return 0;
}

int run_traffic(const Dataset& ds) {
  const auto t = analyze_traffic(ds);
  if (t.packets_per_client.empty()) {
    std::printf("no client data in snapshot\n");
    return 0;
  }
  std::printf("clients: %zu, APs with traffic: %zu, total packets: %.0f\n",
              t.packets_per_client.size(), t.packets_per_ap.size(),
              t.total_packets);
  std::printf("median packets/client: %.0f (p90 %.0f); busiest 10%% of APs "
              "carry %.0f%% of traffic\n",
              median(t.packets_per_client),
              quantile(t.packets_per_client, 0.9),
              100.0 * t.top_decile_ap_share);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: %s <prefix> "
                 "<snr|lookup|routing|hidden|mobility|traffic>\n",
                 argv[0]);
    return 2;
  }
  Dataset ds;
  if (!load_dataset(argv[1], &ds)) {
    std::fprintf(stderr, "error: cannot load %s.probes.csv\n", argv[1]);
    return 1;
  }
  const std::string what = argv[2];
  if (what == "snr") return run_snr(ds);
  if (what == "lookup") return run_lookup(ds);
  if (what == "routing") return run_routing(ds);
  if (what == "hidden") return run_hidden(ds);
  if (what == "mobility") return run_mobility(ds);
  if (what == "traffic") return run_traffic(ds);
  std::fprintf(stderr, "unknown analysis '%s'\n", what.c_str());
  return 2;
}

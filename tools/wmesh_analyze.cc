// wmesh_analyze: run one of the paper's analyses on a saved snapshot.
//
// Usage: wmesh_analyze <prefix> <analysis> [--metrics[=path]]
//   snr       Fig 3.1 SNR dispersion summary
//   lookup    Fig 4.4 look-up table accuracy by scope (both standards)
//   routing   Fig 5.1 opportunistic-routing gains at 1 Mbit/s
//   hidden    Fig 6.1 hidden-triple medians per rate
//   mobility  Fig 7.3/7.4 prevalence & persistence by environment
//   traffic   §3.2 client/AP load summary
//   etx       full pipeline anchored on the ETX base rate: runs the routing
//             study in detail (gains + path lengths) plus every analysis
//             above, exercising all instrumented stages in one invocation
//   all       alias for etx
//
// Flags:
//   --metrics        print the observability registry snapshot on exit
//   --metrics=PATH   also write it to PATH (.json -> JSON, else CSV)
//   --help           this text
//
// Observability env vars (see DESIGN.md "Observability"): WMESH_LOG_LEVEL,
// WMESH_LOG_FILE, WMESH_TRACE_OUT.
//
// This is the entry point for running the toolkit over real traces: write
// them in the trace/io.h CSV schema and point this tool (or the bench
// binaries via WMESH_SNAPSHOT) at the prefix.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/exor.h"
#include "core/hidden.h"
#include "core/lookup_table.h"
#include "core/mobility.h"
#include "core/snr_stats.h"
#include "core/traffic.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "trace/io.h"
#include "util/stats.h"
#include "util/text_table.h"

using namespace wmesh;

namespace {

const char* const kUsage =
    "usage: wmesh_analyze <prefix> "
    "<snr|lookup|routing|hidden|mobility|traffic|etx|all> [--metrics[=path]]\n"
    "       wmesh_analyze --help\n";

void print_help() {
  std::printf(
      "%s\n"
      "analyses:\n"
      "  snr       SNR dispersion summary (Fig 3.1)\n"
      "  lookup    look-up table accuracy by scope (Fig 4.4)\n"
      "  routing   opportunistic-routing gains at 1 Mbit/s (Fig 5.1)\n"
      "  hidden    hidden-triple medians per rate (Fig 6.1)\n"
      "  mobility  prevalence & persistence by environment (Fig 7.3/7.4)\n"
      "  traffic   client/AP load summary (SS3.2)\n"
      "  etx|all   full pipeline at the ETX base rate: routing detail plus\n"
      "            every analysis above in one pass\n"
      "\n"
      "flags:\n"
      "  --metrics        print the metrics registry snapshot on exit\n"
      "  --metrics=PATH   also write it to PATH (.json -> JSON, else CSV)\n"
      "  --help           this text\n"
      "\n"
      "env: WMESH_LOG_LEVEL=trace|debug|info|warn|error|off,\n"
      "     WMESH_LOG_FILE=<path>, WMESH_TRACE_OUT=<chrome-trace.json>\n",
      kUsage);
}

[[nodiscard]] int usage_error(const std::string& reason) {
  WMESH_LOG_ERROR("cli", kv("tool", "wmesh_analyze"), kv("error", reason));
  std::fputs(kUsage, stderr);
  return 2;
}

int run_snr(const Dataset& ds) {
  for (const Standard std : {Standard::kBg, Standard::kN}) {
    const auto dev = snr_deviations(ds, std);
    if (dev.per_probe_set.empty()) continue;
    const Cdf sets(dev.per_probe_set);
    std::printf("%s: probe-set sigma median %.2f dB (<5 dB: %.1f%%), link "
                "median %.2f, network median %.2f\n",
                std::string(to_string(std)).c_str(), sets.median(),
                100.0 * sets.fraction_at_or_below(5.0),
                median(dev.per_link), median(dev.per_network));
  }
  return 0;
}

int run_lookup(const Dataset& ds) {
  TextTable t;
  t.header({"standard", "scope", "exact", "mean loss (Mbit/s)"});
  for (const Standard std : {Standard::kBg, Standard::kN}) {
    for (const TableScope scope :
         {TableScope::kGlobal, TableScope::kNetwork, TableScope::kAp,
          TableScope::kLink}) {
      const auto err = lookup_table_errors(ds, std, scope);
      if (err.throughput_diff_mbps.empty()) continue;
      t.add_row({std::string(to_string(std)), to_string(scope),
                 fmt(100.0 * err.exact_fraction, 1) + "%",
                 fmt(mean(err.throughput_diff_mbps), 3)});
    }
  }
  std::fputs(t.render().c_str(), stdout);
  return 0;
}

int run_routing(const Dataset& ds) {
  for (const EtxVariant v : {EtxVariant::kEtx1, EtxVariant::kEtx2}) {
    std::vector<double> imps;
    std::size_t none = 0;
    for (const auto& nt : ds.networks) {
      if (nt.info.standard != Standard::kBg || nt.ap_count < 5) continue;
      for (const auto& g :
           opportunistic_gains(mean_success_matrix(nt, 0), v)) {
        imps.push_back(g.improvement());
        none += g.improvement() < 1e-9 ? 1 : 0;
      }
    }
    if (imps.empty()) continue;
    std::printf("%s @1M: mean %.3f median %.3f zero-gain %.1f%% over %zu "
                "pairs\n",
                to_string(v), mean(imps), median(imps),
                100.0 * static_cast<double>(none) /
                    static_cast<double>(imps.size()),
                imps.size());
  }
  return 0;
}

int run_path_lengths(const Dataset& ds) {
  std::vector<double> lengths;
  for (const auto& nt : ds.networks) {
    if (nt.info.standard != Standard::kBg || nt.ap_count < 5) continue;
    for (const int h : path_lengths(mean_success_matrix(nt, 0))) {
      lengths.push_back(static_cast<double>(h));
    }
  }
  if (lengths.empty()) {
    std::printf("no connected >=5-AP b/g networks for path lengths\n");
    return 0;
  }
  std::printf("ETX1 @1M paths: %zu pairs, mean %.2f hops, median %.0f, p90 "
              "%.0f\n",
              lengths.size(), mean(lengths), median(lengths),
              quantile(lengths, 0.9));
  return 0;
}

int run_hidden(const Dataset& ds) {
  TextTable t;
  t.header({"rate", "networks", "median hidden fraction"});
  const auto rates = probed_rates(Standard::kBg);
  for (RateIndex r = 0; r < rates.size(); ++r) {
    const auto stats = hidden_triples_per_network(ds, Standard::kBg, r, 0.10);
    if (stats.fractions.empty()) continue;
    t.add_row({std::string(rates[r].name),
               std::to_string(stats.fractions.size()),
               fmt(median(stats.fractions), 3)});
  }
  std::fputs(t.render().c_str(), stdout);
  return 0;
}

int run_mobility(const Dataset& ds) {
  for (const Environment env : {Environment::kIndoor, Environment::kOutdoor}) {
    const auto m = analyze_mobility_by_env(ds, env);
    if (m.prevalence.empty()) continue;
    std::printf("%s: prevalence mean/med %.3f/%.3f, persistence mean/med "
                "%.1f/%.1f min, %zu sessions\n",
                to_string(env).c_str(), mean(m.prevalence),
                median(m.prevalence), mean(m.persistence_min),
                median(m.persistence_min), m.aps_visited.size());
  }
  return 0;
}

int run_traffic(const Dataset& ds) {
  const auto t = analyze_traffic(ds);
  if (t.packets_per_client.empty()) {
    std::printf("no client data in snapshot\n");
    return 0;
  }
  std::printf("clients: %zu, APs with traffic: %zu, total packets: %.0f\n",
              t.packets_per_client.size(), t.packets_per_ap.size(),
              t.total_packets);
  std::printf("median packets/client: %.0f (p90 %.0f); busiest 10%% of APs "
              "carry %.0f%% of traffic\n",
              median(t.packets_per_client),
              quantile(t.packets_per_client, 0.9),
              100.0 * t.top_decile_ap_share);
  return 0;
}

// The full pipeline at the ETX base rate: every analysis family in one
// invocation, with the routing study (the paper's ETX/ExOR core) expanded.
int run_etx(const Dataset& ds) {
  WMESH_SPAN("analyze.etx_pipeline");
  int rc = 0;
  std::printf("== snr ==\n");
  rc |= run_snr(ds);
  std::printf("\n== lookup ==\n");
  rc |= run_lookup(ds);
  std::printf("\n== etx/exor routing ==\n");
  rc |= run_routing(ds);
  rc |= run_path_lengths(ds);
  std::printf("\n== hidden ==\n");
  rc |= run_hidden(ds);
  std::printf("\n== mobility ==\n");
  rc |= run_mobility(ds);
  std::printf("\n== traffic ==\n");
  rc |= run_traffic(ds);
  return rc;
}

void emit_metrics(const std::string& path) {
  const auto snap = obs::Registry::instance().snapshot();
  if (snap.empty()) {
    std::printf("\n== metrics ==\n(observability disabled: library built "
                "with WMESH_OBS_DISABLED)\n");
    return;
  }
  std::printf("\n== metrics ==\n%s", snap.render_table().c_str());
  if (path.empty()) return;
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  std::ofstream out(path);
  if (!out) {
    WMESH_LOG_ERROR("cli", kv("tool", "wmesh_analyze"),
                    kv("error", "cannot write metrics file"),
                    kv("path", path));
    return;
  }
  out << (json ? snap.to_json() : snap.to_csv());
  std::printf("(metrics written to %s)\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string prefix, what;
  bool want_metrics = false;
  std::string metrics_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    }
    if (arg == "--metrics") {
      want_metrics = true;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      want_metrics = true;
      metrics_path = arg.substr(std::strlen("--metrics="));
    } else if (arg.rfind("--", 0) == 0) {
      return usage_error("unknown flag '" + arg + "'");
    } else if (prefix.empty()) {
      prefix = arg;
    } else if (what.empty()) {
      what = arg;
    } else {
      return usage_error("unexpected argument '" + arg + "'");
    }
  }
  if (prefix.empty() || what.empty()) {
    return usage_error("missing <prefix> or <analysis>");
  }

  Dataset ds;
  if (!load_dataset(prefix, &ds)) {
    WMESH_LOG_ERROR("cli", kv("tool", "wmesh_analyze"),
                    kv("error", "cannot load snapshot"), kv("prefix", prefix));
    std::fprintf(stderr, "error: cannot load %s.probes.csv\n", prefix.c_str());
    return 1;
  }

  int rc;
  if (what == "snr") {
    rc = run_snr(ds);
  } else if (what == "lookup") {
    rc = run_lookup(ds);
  } else if (what == "routing") {
    rc = run_routing(ds);
  } else if (what == "hidden") {
    rc = run_hidden(ds);
  } else if (what == "mobility") {
    rc = run_mobility(ds);
  } else if (what == "traffic") {
    rc = run_traffic(ds);
  } else if (what == "etx" || what == "all") {
    rc = run_etx(ds);
  } else {
    return usage_error("unknown analysis '" + what + "'");
  }

  if (want_metrics) emit_metrics(metrics_path);
  obs::flush_trace();
  return rc;
}

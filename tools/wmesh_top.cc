// wmesh_top: a refreshing terminal dashboard over a live wmesh metrics
// endpoint (any tool run with --listen=<addr>).
//
// Usage: wmesh_top <addr> [--interval=ms] [--iterations=N] [--once]
//
// Polls the OpenMetrics endpoint, parses the exposition with the same
// strict parser the tests lint with, and renders:
//
//   - the top spans by self-time (exclusive of children), with counts,
//     totals, the dominant parent span and a sparkline of the self-time
//     spent between recent polls -- the causal hot list plus its trend;
//   - cache hit rates (every "*.cache.{hits,misses}" counter pair);
//   - an ALERTS pane whenever the endpoint exposes wmesh_alert_state
//     gauges (wmesh_serve --alerts), pending/FIRING rules first;
//   - thread-pool occupancy (threads, regions, tasks, queue depth);
//   - process RSS (live and peak) from the resource sampler gauges.
//
// Counter-backed rates are per-second deltas between polls.  --once prints
// a single snapshot without clearing the screen (scripts, tests); with
// --iterations=N the dashboard exits after N polls (0 = run until killed).
// A failed or malformed scrape mid-session exits 1 with a single
// poll-numbered diagnostic on stderr (and counts top.scrape_errors), so a
// daemon shutting down under the dashboard never strands it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/export_server.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "util/env.h"
#include "util/text_table.h"

using namespace wmesh;
using obs::OmDocument;
using obs::OmSample;

namespace {

const char* const kUsage =
    "usage: wmesh_top <addr> [--interval=ms] [--iterations=N] [--once]\n"
    "       wmesh_top --help\n";

void print_help() {
  std::printf(
      "%s\n"
      "refreshing terminal dashboard over a live wmesh metrics endpoint\n"
      "(start any tool with --listen=<addr> and point wmesh_top at it)\n"
      "\n"
      "  <addr>           unix:<path> or <host>:<port>\n"
      "  --interval=MS    poll period in milliseconds (default 1000)\n"
      "  --iterations=N   exit after N polls (default 0 = run forever)\n"
      "  --once           one poll, plain output, no screen clearing\n"
      "  --help           this text\n",
      kUsage);
}

struct SpanView {
  std::string name;
  double count = 0;
  double total_us = 0;
  double self_us = 0;
  double p99_us = 0;
  std::string top_parent;
};

// Pulls the span-family samples out of one parsed scrape.
std::vector<SpanView> collect_spans(const OmDocument& doc) {
  std::map<std::string, SpanView> by_name;
  std::map<std::string, std::pair<std::string, double>> best_parent;
  for (const OmSample& s : doc.samples) {
    const std::string span = s.label("span");
    if (span.empty()) continue;
    SpanView& v = by_name[span];
    v.name = span;
    if (s.name == "wmesh_span_count_total") v.count = s.value;
    if (s.name == "wmesh_span_us_total") v.total_us = s.value;
    if (s.name == "wmesh_span_self_us_total") v.self_us = s.value;
    if (s.name == "wmesh_span_p99_us") v.p99_us = s.value;
    if (s.name == "wmesh_span_parent_total") {
      auto& best = best_parent[span];
      if (s.value > best.second) best = {s.label("parent"), s.value};
    }
  }
  std::vector<SpanView> out;
  for (auto& [name, v] : by_name) {
    const auto it = best_parent.find(name);
    if (it != best_parent.end()) v.top_parent = it->second.first;
    out.push_back(std::move(v));
  }
  std::sort(out.begin(), out.end(), [](const SpanView& a, const SpanView& b) {
    return a.self_us > b.self_us;
  });
  return out;
}

double sample_or(const OmDocument& doc, const char* name, double fallback) {
  const OmSample* s = doc.find(name);
  return s != nullptr ? s->value : fallback;
}

// Self-time history per span across polls; the trend column renders the
// per-poll deltas as a sparkline scaled to the busiest poll in view.
constexpr std::size_t kTrendPolls = 9;  // 8 deltas
using TrendHistory = std::map<std::string, std::deque<double>>;

std::string sparkline(const std::deque<double>& history) {
  static const char* const kBlocks[] = {"▁", "▂", "▃",
                                        "▄", "▅", "▆",
                                        "▇", "█"};
  if (history.size() < 2) return "";
  std::vector<double> deltas;
  deltas.reserve(history.size() - 1);
  double peak = 0.0;
  for (std::size_t i = 1; i < history.size(); ++i) {
    const double d = std::max(0.0, history[i] - history[i - 1]);
    deltas.push_back(d);
    peak = std::max(peak, d);
  }
  std::string out;
  for (double d : deltas) {
    const auto level =
        peak > 0 ? static_cast<std::size_t>(d / peak * 7.0 + 0.5) : 0;
    out += kBlocks[std::min<std::size_t>(level, 7)];
  }
  return out;
}

// Alert-state rows (wmesh_alert_state{alert="..."}: 0 inactive, 1 pending,
// 2 firing); active alerts sort first, then by name.
void render_alerts(const OmDocument& doc) {
  std::vector<std::pair<std::string, int>> alerts;
  for (const OmSample& s : doc.samples) {
    if (s.name != "wmesh_alert_state") continue;
    const std::string name = s.label("alert");
    if (name.empty()) continue;
    alerts.emplace_back(name, static_cast<int>(s.value));
  }
  if (alerts.empty()) return;
  std::sort(alerts.begin(), alerts.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  TextTable t;
  t.header({"alert", "state"});
  std::size_t firing = 0;
  for (const auto& [name, state] : alerts) {
    const char* label = state >= 2 ? "FIRING" : state == 1 ? "pending"
                                                           : "inactive";
    if (state >= 2) ++firing;
    t.add_row({name, label});
  }
  std::printf("\n-- alerts (%zu firing / %zu rules) --\n%s", firing,
              alerts.size(), t.render().c_str());
}

std::string fmt_ms(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", us / 1000.0);
  return buf;
}

std::string fmt_mib(double bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f MiB", bytes / (1024.0 * 1024.0));
  return buf;
}

// One rendered frame.  `prev` (when non-null) supplies counter deltas for
// per-second rates over `dt_s`; `trend` accumulates self-time history for
// the sparkline column.
void render(const OmDocument& doc, const OmDocument* prev, double dt_s,
            TrendHistory* trend) {
  const std::vector<SpanView> spans = collect_spans(doc);
  for (const SpanView& v : spans) {
    std::deque<double>& h = (*trend)[v.name];
    h.push_back(v.self_us);
    while (h.size() > kTrendPolls) h.pop_front();
  }
  TextTable t;
  t.header({"span", "count", "total ms", "self ms", "p99 ms", "trend",
            "top parent"});
  std::size_t shown = 0;
  for (const SpanView& v : spans) {
    if (++shown > 12) break;  // top spans by self-time
    t.add_row({v.name, fmt(v.count, 0), fmt_ms(v.total_us),
               fmt_ms(v.self_us), fmt_ms(v.p99_us), sparkline((*trend)[v.name]),
               v.top_parent});
  }
  if (shown != 0) {
    std::printf("-- top spans by self-time --\n%s", t.render().c_str());
  } else {
    std::printf("(no spans recorded yet)\n");
  }

  // Cache families: pair every *_cache_hits_total with its misses sibling.
  TextTable caches;
  caches.header({"cache", "hits", "misses", "hit rate"});
  std::size_t cache_rows = 0;
  for (const OmSample& s : doc.samples) {
    const std::string_view name = s.name;
    const std::string_view suffix = "_hits_total";
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string base(name.substr(0, name.size() - suffix.size()));
    const OmSample* miss = doc.find(base + "_misses_total");
    if (miss == nullptr) continue;
    const double total = s.value + miss->value;
    const double rate = total > 0 ? 100.0 * s.value / total : 0.0;
    caches.add_row({base, fmt(s.value, 0), fmt(miss->value, 0),
                    fmt(rate, 1) + "%"});
    ++cache_rows;
  }
  if (cache_rows != 0) {
    std::printf("\n-- caches --\n%s", caches.render().c_str());
  }

  render_alerts(doc);

  const double threads = sample_or(doc, "wmesh_par_pool_threads", 0);
  const double depth = sample_or(doc, "wmesh_par_pool_queue_depth", 0);
  const double tasks = sample_or(doc, "wmesh_par_tasks_total", 0);
  const double regions = sample_or(doc, "wmesh_par_regions_total", 0);
  double task_rate = 0;
  if (prev != nullptr && dt_s > 0) {
    const OmSample* before = prev->find("wmesh_par_tasks_total");
    if (before != nullptr) task_rate = (tasks - before->value) / dt_s;
  }
  std::printf(
      "\npool: %.0f threads, %.0f regions, %.0f tasks (%.0f/s), "
      "queue depth %.0f\n",
      threads, regions, tasks, task_rate, depth);

  const double rss = sample_or(doc, "wmesh_proc_rss_bytes", 0);
  const double peak = sample_or(doc, "wmesh_proc_peak_rss_bytes", 0);
  const double scrapes = sample_or(doc, "wmesh_export_scrapes_total", 0);
  std::printf("rss: %s (peak %s), scrapes: %.0f\n", fmt_mib(rss).c_str(),
              fmt_mib(peak).c_str(), scrapes);
}

}  // namespace

int main(int argc, char** argv) {
  std::string address;
  std::uint64_t interval_ms = 1000;
  std::uint64_t iterations = 0;
  bool once = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    } else if (arg.rfind("--interval=", 0) == 0) {
      const std::string v = arg.substr(std::strlen("--interval="));
      const auto n = env::parse_u64(v);
      if (!n || *n == 0) {
        std::fprintf(stderr, "--interval: not a positive integer: '%s'\n%s",
                     v.c_str(), kUsage);
        return 2;
      }
      interval_ms = *n;
    } else if (arg.rfind("--iterations=", 0) == 0) {
      const std::string v = arg.substr(std::strlen("--iterations="));
      const auto n = env::parse_u64(v);
      if (!n) {
        std::fprintf(stderr, "--iterations: not an integer: '%s'\n%s",
                     v.c_str(), kUsage);
        return 2;
      }
      iterations = *n;
    } else if (arg == "--once") {
      once = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n%s", arg.c_str(), kUsage);
      return 2;
    } else if (address.empty()) {
      address = arg;
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n%s", arg.c_str(),
                   kUsage);
      return 2;
    }
  }
  if (address.empty()) {
    std::fprintf(stderr, "missing <addr>\n%s", kUsage);
    return 2;
  }
  if (once) iterations = 1;

  OmDocument prev;
  bool have_prev = false;
  TrendHistory trend;
  auto prev_time = std::chrono::steady_clock::now();
  for (std::uint64_t n = 0; iterations == 0 || n < iterations; ++n) {
    if (n != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    std::string body, error;
    if (!obs::scrape_openmetrics_once(address, &body, &error)) {
      WMESH_COUNTER_INC("top.scrape_errors");
      std::fprintf(stderr,
                   "wmesh_top: poll %llu: scrape of %s failed: %s\n",
                   static_cast<unsigned long long>(n + 1), address.c_str(),
                   error.c_str());
      return 1;
    }
    OmDocument doc;
    if (!obs::parse_openmetrics(body, &doc, &error)) {
      WMESH_COUNTER_INC("top.scrape_errors");
      std::fprintf(stderr,
                   "wmesh_top: poll %llu: malformed exposition from %s: %s\n",
                   static_cast<unsigned long long>(n + 1), address.c_str(),
                   error.c_str());
      return 1;
    }
    const auto now = std::chrono::steady_clock::now();
    const double dt_s =
        std::chrono::duration<double>(now - prev_time).count();
    if (!once) {
      std::printf("\x1b[2J\x1b[H");  // clear + home
      std::printf("wmesh_top  %s  (interval %llums)\n\n", address.c_str(),
                  static_cast<unsigned long long>(interval_ms));
    }
    render(doc, have_prev ? &prev : nullptr, dt_s, &trend);
    std::fflush(stdout);
    prev = std::move(doc);
    have_prev = true;
    prev_time = now;
  }
  return 0;
}

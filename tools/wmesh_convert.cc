// wmesh_convert: lossless snapshot conversion between CSV and WSNAP.
//
// Usage: wmesh_convert <input-prefix> <output-prefix>
//                      [--in=csv|wsnap|auto] [--out=csv|wsnap|auto]
//                      [--threads=N] [--metrics[=path]]
//                      [--report[=path.json]] [--version]
//
// Formats resolve like everywhere else: a prefix ending in ".wsnap" is
// WSNAP; otherwise the input probes which files exist and the output
// defaults to CSV.  Converting CSV -> WSNAP -> CSV reproduces the original
// CSV byte-for-byte (the CSV digits are the canonical float precision and
// WSNAP stores raw bits), so the conversion is safe to apply to archives.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "cli_common.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/span.h"
#include "par/thread_pool.h"
#include "store/fleet.h"
#include "trace/io.h"
#include "util/env.h"

using namespace wmesh;

namespace {

const char* const kUsage =
    "usage: wmesh_convert <input-prefix> <output-prefix> "
    "[--in=csv|wsnap|auto] [--out=csv|wsnap|auto] [--shards=K] [--threads=N] "
    "[--metrics[=path]] [--report[=path.json]] [--version]\n"
    "       wmesh_convert --help\n";

void print_help() {
  std::printf(
      "%s\n"
      "losslessly converts a snapshot between the flat CSV pair\n"
      "(<prefix>.probes.csv + <prefix>.clients.csv) and the binary columnar\n"
      "WSNAP file (<prefix>.wsnap); csv->wsnap->csv round-trips\n"
      "byte-identically\n"
      "\n"
      "flags:\n"
      "  --in=F           input format (default auto: by extension, then by\n"
      "                   which files exist)\n"
      "  --out=F          output format (default auto: wsnap when the\n"
      "                   output prefix ends in .wsnap, else csv)\n"
      "  --shards=K       split the input into a K-shard fleet instead:\n"
      "                   writes <output-prefix>.wmanifest plus K WSNAP\n"
      "                   shard files (WSNAP input streams one network at a\n"
      "                   time); merging the fleet back (manifest input,\n"
      "                   .wsnap output) reproduces the monolithic WSNAP\n"
      "                   byte-for-byte\n"
      "  --threads=N      thread count for WSNAP encode/decode (flag >\n"
      "                   WMESH_THREADS > hardware); output is\n"
      "                   byte-identical for every N\n"
      "  --metrics        print the metrics registry snapshot on exit\n"
      "  --metrics=PATH   also write it to PATH (.json -> JSON, else CSV)\n"
      "  --listen=ADDR    serve live OpenMetrics at ADDR for the whole run\n"
      "                   (unix:<path> or <host>:<port>; ':0' = any port)\n"
      "  --report         write the run report (tool, argv, build, wall\n"
      "                   time, peak RSS, metrics + span aggregates) to\n"
      "                   wmesh_convert.report.json\n"
      "  --report=PATH    write the run report to PATH instead\n"
      "  --version        print build info (git, compiler, flags) and exit\n"
      "  --help           this text\n"
      "\n"
      "env: WMESH_THREADS=N, WMESH_LOG_LEVEL=trace|debug|info|warn|error|off,\n"
      "     WMESH_LOG_FILE=<path>, WMESH_TRACE_OUT=<chrome-trace.json>\n",
      kUsage);
}

[[nodiscard]] int usage_error(const std::string& reason) {
  WMESH_LOG_ERROR("cli", kv("tool", "wmesh_convert"), kv("error", reason));
  std::fputs(kUsage, stderr);
  return 2;
}

std::string files_of(const std::string& prefix, SnapshotFormat f) {
  if (f == SnapshotFormat::kWsnap) return wsnap_path(prefix);
  return prefix + ".probes.csv + " + prefix + ".clients.csv";
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_prefix, out_prefix;
  SnapshotFormat in_format = SnapshotFormat::kAuto;
  SnapshotFormat out_format = SnapshotFormat::kAuto;
  std::size_t shards = 0;  // 0 = no fleet split
  bool want_metrics = false;
  std::string metrics_path;
  bool want_report = false;
  std::string report_path;
  std::string listen_address;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    }
    if (arg == "--version") {
      return cli::print_version("wmesh_convert");
    }
    auto parse_fmt = [&](const char* flag, SnapshotFormat* dst) -> bool {
      const std::string v = arg.substr(std::strlen(flag));
      const auto f = parse_snapshot_format(v);
      if (!f) return false;
      *dst = *f;
      return true;
    };
    if (arg.rfind("--in=", 0) == 0) {
      if (!parse_fmt("--in=", &in_format)) {
        return usage_error("--in: want csv, wsnap or auto, got '" +
                           arg.substr(5) + "'");
      }
    } else if (arg.rfind("--out=", 0) == 0) {
      if (!parse_fmt("--out=", &out_format)) {
        return usage_error("--out: want csv, wsnap or auto, got '" +
                           arg.substr(6) + "'");
      }
    } else if (arg.rfind("--shards=", 0) == 0) {
      const std::string v = arg.substr(std::strlen("--shards="));
      const auto n = env::parse_u64(v);
      if (!n || *n == 0) {
        return usage_error("--shards: not a positive integer: '" + v + "'");
      }
      shards = static_cast<std::size_t>(*n);
    } else if (arg.rfind("--threads=", 0) == 0) {
      const std::string v = arg.substr(std::strlen("--threads="));
      const auto n = env::parse_u64(v);
      if (!n || *n == 0) {
        return usage_error("--threads: not a positive integer: '" + v + "'");
      }
      par::set_default_threads(static_cast<std::size_t>(*n));
    } else if (arg == "--metrics") {
      want_metrics = true;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      want_metrics = true;
      metrics_path = arg.substr(std::strlen("--metrics="));
    } else if (arg == "--report") {
      want_report = true;
    } else if (arg.rfind("--report=", 0) == 0) {
      want_report = true;
      report_path = arg.substr(std::strlen("--report="));
    } else if (arg.rfind("--listen=", 0) == 0) {
      listen_address = arg.substr(std::strlen("--listen="));
    } else if (arg.rfind("--", 0) == 0) {
      return usage_error("unknown flag '" + arg + "'");
    } else if (in_prefix.empty()) {
      in_prefix = arg;
    } else if (out_prefix.empty()) {
      out_prefix = arg;
    } else {
      return usage_error("unexpected argument '" + arg + "'");
    }
  }
  if (in_prefix.empty() || out_prefix.empty()) {
    return usage_error("missing <input-prefix> or <output-prefix>");
  }

  bool listen_failed = false;
  const auto export_server =
      cli::start_export_server("wmesh_convert", listen_address, &listen_failed);
  if (listen_failed) return 1;

  std::optional<obs::RunReport> report;
  if (want_report) report.emplace("wmesh_convert", argc, argv);

  WMESH_SPAN("convert");
  if (store::has_manifest_extension(in_prefix)) {
    // Fleet input: streaming merge back into one monolithic WSNAP (the
    // inverse of --shards; byte-identical to saving the same networks
    // monolithically).  CSV output would need the whole fleet in memory,
    // defeating the sharded layout -- merge to .wsnap first.
    if (shards > 0) {
      return usage_error("input is already a fleet; re-sharding is not "
                         "supported (merge to .wsnap, then --shards)");
    }
    const SnapshotFormat out_resolved =
        resolve_snapshot_format(out_prefix, out_format, /*for_load=*/false);
    if (out_resolved != SnapshotFormat::kWsnap) {
      std::fprintf(stderr,
                   "error: fleet input merges to wsnap only; csv output is "
                   "not supported (use --out=wsnap)\n");
      return 1;
    }
    std::string err;
    if (!store::merge_fleet_wsnap(in_prefix, wsnap_path(out_prefix), &err)) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 1;
    }
    std::printf("merged %s -> %s\n", in_prefix.c_str(),
                wsnap_path(out_prefix).c_str());
  } else if (shards > 0) {
    // Fleet output: split into contiguous WSNAP shards plus a manifest.
    // WSNAP input streams one network at a time; CSV has to be loaded.
    const SnapshotFormat in_resolved =
        resolve_snapshot_format(in_prefix, in_format, /*for_load=*/true);
    std::string err;
    if (in_resolved == SnapshotFormat::kWsnap) {
      if (!store::split_wsnap_fleet(wsnap_path(in_prefix), out_prefix, shards,
                                    &err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
      }
    } else {
      Dataset ds;
      if (!load_dataset(in_prefix, &ds, in_resolved)) {
        std::fprintf(stderr, "error: cannot load snapshot %s (format %s)\n",
                     in_prefix.c_str(),
                     std::string(to_string(in_resolved)).c_str());
        return 1;
      }
      std::printf("loaded %s (%s): %zu traces, %zu probe sets\n",
                  in_prefix.c_str(),
                  std::string(to_string(in_resolved)).c_str(),
                  ds.networks.size(), ds.total_probe_sets());
      if (!store::write_fleet(ds, out_prefix, shards, &err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
      }
    }
    std::printf("wrote %s\n", store::manifest_path(out_prefix).c_str());
  } else {
    const SnapshotFormat in_resolved =
        resolve_snapshot_format(in_prefix, in_format, /*for_load=*/true);
    const SnapshotFormat out_resolved =
        resolve_snapshot_format(out_prefix, out_format, /*for_load=*/false);
    Dataset ds;
    if (!load_dataset(in_prefix, &ds, in_resolved)) {
      std::fprintf(stderr, "error: cannot load snapshot %s (format %s)\n",
                   in_prefix.c_str(),
                   std::string(to_string(in_resolved)).c_str());
      return 1;
    }
    std::printf("loaded %s (%s): %zu traces, %zu probe sets\n",
                in_prefix.c_str(),
                std::string(to_string(in_resolved)).c_str(),
                ds.networks.size(), ds.total_probe_sets());
    if (!save_dataset(ds, out_prefix, out_resolved)) {
      std::fprintf(stderr, "error: cannot write snapshot %s (format %s)\n",
                   out_prefix.c_str(),
                   std::string(to_string(out_resolved)).c_str());
      return 1;
    }
    std::printf("wrote %s\n", files_of(out_prefix, out_resolved).c_str());
  }

  int rc = 0;
  if (report) {
    report->set_threads(par::default_thread_count());
    report->finish();
  }
  if (want_metrics) cli::emit_metrics("wmesh_convert", metrics_path);
  if (report) {
    rc = cli::emit_run_report(*report, "wmesh_convert", report_path);
  }
  obs::flush_trace();
  return rc;
}

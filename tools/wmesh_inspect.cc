// wmesh_inspect: summarize a saved snapshot.
//
// Usage: wmesh_inspect <prefix>
//
// Prints the fleet composition, per-standard probe-set counts, the SNR
// occupancy histogram, and the client-sample volume -- the sanity pass one
// runs before pointing the benches at a snapshot.
#include <cstdio>
#include <cstring>
#include <map>

#include "obs/log.h"
#include "trace/io.h"
#include "util/stats.h"
#include "util/text_table.h"

using namespace wmesh;

namespace {

const char* const kUsage =
    "usage: wmesh_inspect <prefix>\n"
    "       wmesh_inspect --help\n";

[[nodiscard]] int usage_error(const std::string& reason) {
  WMESH_LOG_ERROR("cli", kv("tool", "wmesh_inspect"), kv("error", reason));
  std::fputs(kUsage, stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && (std::strcmp(argv[1], "--help") == 0 ||
                    std::strcmp(argv[1], "-h") == 0)) {
    std::printf("%s\nprints fleet composition, per-standard probe-set "
                "counts, the SNR occupancy histogram and client-sample "
                "volume for a saved snapshot\n",
                kUsage);
    return 0;
  }
  if (argc != 2) {
    return usage_error(argc < 2 ? "missing <prefix>" : "too many arguments");
  }
  Dataset ds;
  if (!load_dataset(argv[1], &ds)) {
    WMESH_LOG_ERROR("cli", kv("tool", "wmesh_inspect"),
                    kv("error", "cannot load snapshot"), kv("prefix", argv[1]));
    std::fprintf(stderr, "error: cannot load %s.probes.csv\n", argv[1]);
    return 1;
  }

  std::map<std::string, std::size_t> traces, sets;
  std::size_t clients = 0;
  Histogram snr_hist(-10.0, 60.0, 14);
  for (const auto& nt : ds.networks) {
    const std::string key = std::string(to_string(nt.info.standard)) + " / " +
                            to_string(nt.info.env);
    ++traces[key];
    sets[key] += nt.probe_sets.size();
    clients += nt.client_samples.size();
    for (const auto& set : nt.probe_sets) {
      if (!std::isnan(set.snr_db)) snr_hist.add(set.snr_db);
    }
  }

  std::printf("snapshot %s: %zu traces, %zu APs, %zu probe sets, %zu client "
              "samples\n\n",
              argv[1], ds.networks.size(), ds.total_aps(),
              ds.total_probe_sets(), clients);
  TextTable t;
  t.header({"standard / environment", "traces", "probe sets"});
  for (const auto& [key, count] : traces) {
    t.add_row({key, std::to_string(count), std::to_string(sets[key])});
  }
  std::fputs(t.render().c_str(), stdout);

  std::printf("\nprobe-set SNR occupancy:\n");
  for (std::size_t b = 0; b < snr_hist.bins(); ++b) {
    const double frac = snr_hist.total() > 0
                            ? static_cast<double>(snr_hist.bin_count(b)) /
                                  static_cast<double>(snr_hist.total())
                            : 0.0;
    std::printf("  %5.0f dB %6.1f%% %s\n", snr_hist.bin_center(b),
                100.0 * frac,
                std::string(static_cast<std::size_t>(frac * 200), '#').c_str());
  }
  return 0;
}

// wmesh_inspect: summarize a saved snapshot.
//
// Usage: wmesh_inspect <prefix> [--format=csv|wsnap|auto]
//                       [--report[=path.json]] [--version]
//
// Prints the snapshot format (for WSNAP: header version/flags, block and
// chunk counts, per-section row counts), on-disk vs in-memory footprint,
// the fleet composition, per-standard probe-set counts, the SNR occupancy
// histogram, and the client-sample volume -- the sanity pass one runs
// before pointing the benches at a snapshot.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <string>

#include "cli_common.h"
#include "obs/log.h"
#include "obs/report.h"
#include "store/fleet.h"
#include "store/wsnap.h"
#include "trace/io.h"
#include "util/stats.h"
#include "util/text_table.h"

using namespace wmesh;

namespace {

const char* const kUsage =
    "usage: wmesh_inspect <prefix> [--format=csv|wsnap|auto] "
    "[--report[=path.json]] [--version]\n"
    "       wmesh_inspect --help\n";

void print_help() {
  std::printf(
      "%s\n"
      "prints the snapshot format (WSNAP header/version, block and chunk\n"
      "counts, per-section rows), on-disk vs in-memory bytes, fleet\n"
      "composition, per-standard probe-set counts, the SNR occupancy\n"
      "histogram and client-sample volume for a saved snapshot\n"
      "\n"
      "a <prefix> ending in .wmanifest is a sharded fleet: every shard is\n"
      "verified (full CRC pass) and a per-shard network/row/byte table is\n"
      "printed; any missing or corrupt shard fails the whole inspection\n"
      "with a one-line diagnostic naming the shard\n"
      "\n"
      "flags:\n"
      "  --format=F       snapshot format: csv, wsnap, or auto (default;\n"
      "                   picks by extension, then by which files exist)\n"
      "  --listen=ADDR    serve live OpenMetrics at ADDR for the whole run\n"
      "                   (unix:<path> or <host>:<port>; ':0' = any port)\n"
      "  --report         write the run report (tool, argv, build, wall\n"
      "                   time, peak RSS, metrics + span aggregates) to\n"
      "                   wmesh_inspect.report.json\n"
      "  --report=PATH    write the run report to PATH instead\n"
      "  --version        print build info (git, compiler, flags) and exit\n"
      "  --help           this text\n"
      "\n"
      "env: WMESH_LOG_LEVEL=trace|debug|info|warn|error|off,\n"
      "     WMESH_LOG_FILE=<path>, WMESH_TRACE_OUT=<chrome-trace.json>\n",
      kUsage);
}

[[nodiscard]] int usage_error(const std::string& reason) {
  WMESH_LOG_ERROR("cli", kv("tool", "wmesh_inspect"), kv("error", reason));
  std::fputs(kUsage, stderr);
  return 2;
}

std::uint64_t disk_bytes(const std::string& path) {
  std::error_code ec;
  const auto n = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(n);
}

// Logical in-memory footprint of the loaded Dataset (structs + vector
// payloads; excludes allocator slack).
std::uint64_t in_memory_bytes(const Dataset& ds) {
  std::uint64_t n = sizeof(Dataset);
  for (const auto& nt : ds.networks) {
    n += sizeof(NetworkTrace);
    n += nt.probe_sets.size() * sizeof(ProbeSet);
    for (const auto& set : nt.probe_sets) {
      n += set.entries.size() * sizeof(ProbeEntry);
    }
    n += nt.client_samples.size() * sizeof(ClientSample);
  }
  return n;
}

std::string mib(std::uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f MiB",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string prefix;
  SnapshotFormat format = SnapshotFormat::kAuto;
  bool want_report = false;
  std::string report_path;
  std::string listen_address;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    } else if (arg == "--version") {
      return cli::print_version("wmesh_inspect");
    } else if (arg == "--report") {
      want_report = true;
    } else if (arg.rfind("--report=", 0) == 0) {
      want_report = true;
      report_path = arg.substr(std::strlen("--report="));
    } else if (arg.rfind("--listen=", 0) == 0) {
      listen_address = arg.substr(std::strlen("--listen="));
    } else if (arg.rfind("--format=", 0) == 0) {
      const std::string v = arg.substr(std::strlen("--format="));
      const auto f = parse_snapshot_format(v);
      if (!f) {
        return usage_error("--format: want csv, wsnap or auto, got '" + v +
                           "'");
      }
      format = *f;
    } else if (arg.rfind("--", 0) == 0) {
      return usage_error("unknown flag '" + arg + "'");
    } else if (prefix.empty()) {
      prefix = arg;
    } else {
      return usage_error("unexpected argument '" + arg + "'");
    }
  }
  if (prefix.empty()) {
    return usage_error("missing <prefix>");
  }

  bool listen_failed = false;
  const auto export_server =
      cli::start_export_server("wmesh_inspect", listen_address, &listen_failed);
  if (listen_failed) return 1;

  std::optional<obs::RunReport> report;
  if (want_report) report.emplace("wmesh_inspect", argc, argv);

  if (store::has_manifest_extension(prefix)) {
    // Fleet manifest: verify every shard first (full open, every block
    // CRC-checked, manifest cross-check) and fail closed on the first
    // defect -- the diagnostic names the bad shard; no partial fleet
    // summary is ever printed.
    store::FleetReader reader;
    if (!reader.open(prefix)) {
      std::fprintf(stderr, "error: %s\n", reader.error().c_str());
      return 1;
    }
    for (std::size_t s = 0; s < reader.shard_count(); ++s) {
      store::WsnapInfo info;
      if (!reader.verify_shard(s, &info)) {
        std::fprintf(stderr, "error: %s\n", reader.error().c_str());
        return 1;
      }
    }
    const store::FleetManifest& m = reader.manifest();
    std::printf("fleet %s: %zu shards, %llu networks, %llu probe sets, "
                "%llu client samples\n",
                prefix.c_str(), m.shards.size(),
                static_cast<unsigned long long>(m.total_networks()),
                static_cast<unsigned long long>(m.total_probe_sets()),
                static_cast<unsigned long long>(m.total_client_samples()));
    std::printf("bytes: %s on disk across shards\n\n",
                mib(m.total_bytes()).c_str());
    TextTable t;
    t.header({"shard", "ids", "networks", "probe sets", "probe entries",
              "client samples", "bytes"});
    for (const store::FleetShard& s : m.shards) {
      t.add_row({s.path,
                 std::to_string(s.first_id) + ".." + std::to_string(s.last_id),
                 std::to_string(s.networks), std::to_string(s.probe_sets),
                 std::to_string(s.probe_entries),
                 std::to_string(s.client_samples), std::to_string(s.bytes)});
    }
    std::fputs(t.render().c_str(), stdout);
    int rc = 0;
    if (report) {
      report->finish();
      rc = cli::emit_run_report(*report, "wmesh_inspect", report_path);
    }
    return rc;
  }

  const SnapshotFormat resolved =
      resolve_snapshot_format(prefix, format, /*for_load=*/true);
  Dataset ds;
  if (!load_dataset(prefix, &ds, resolved)) {
    WMESH_LOG_ERROR("cli", kv("tool", "wmesh_inspect"),
                    kv("error", "cannot load snapshot"), kv("prefix", prefix));
    std::fprintf(stderr, "error: cannot load snapshot %s (format %s)\n",
                 prefix.c_str(),
                 std::string(to_string(resolved)).c_str());
    return 1;
  }

  std::map<std::string, std::size_t> traces, sets;
  std::size_t clients = 0, entries = 0;
  Histogram snr_hist(-10.0, 60.0, 14);
  for (const auto& nt : ds.networks) {
    const std::string key = std::string(to_string(nt.info.standard)) + " / " +
                            to_string(nt.info.env);
    ++traces[key];
    sets[key] += nt.probe_sets.size();
    clients += nt.client_samples.size();
    for (const auto& set : nt.probe_sets) {
      entries += set.entries.size();
      if (!std::isnan(set.snr_db)) snr_hist.add(set.snr_db);
    }
  }

  std::printf("snapshot %s: %zu traces, %zu APs, %zu probe sets, %zu client "
              "samples\n",
              prefix.c_str(), ds.networks.size(), ds.total_aps(),
              ds.total_probe_sets(), clients);

  std::uint64_t on_disk = 0;
  if (resolved == SnapshotFormat::kWsnap) {
    store::WsnapInfo info;
    std::string err;
    if (!store::inspect_wsnap(wsnap_path(prefix), &info, &err)) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 1;
    }
    on_disk = info.file_bytes;
    std::printf("format: wsnap v%u (flags 0x%04x), %u blocks in %u chunk%s, "
                "%s payload\n",
                info.version, info.flags, info.block_count, info.chunk_count,
                info.chunk_count == 1 ? "" : "s",
                mib(info.payload_bytes).c_str());
    TextTable sec;
    sec.header({"section", "rows"});
    sec.add_row({"networks", std::to_string(info.networks)});
    sec.add_row({"probe_sets", std::to_string(info.probe_sets)});
    sec.add_row({"probe_entries", std::to_string(info.probe_entries)});
    sec.add_row({"client_samples", std::to_string(info.client_samples)});
    std::fputs(sec.render().c_str(), stdout);
  } else {
    on_disk = disk_bytes(prefix + ".probes.csv") +
              disk_bytes(prefix + ".clients.csv");
    std::printf("format: csv (%zu probe-entry rows, %zu client rows)\n",
                entries, clients);
  }
  std::printf("bytes: %s on disk, %s in memory\n\n", mib(on_disk).c_str(),
              mib(in_memory_bytes(ds)).c_str());

  TextTable t;
  t.header({"standard / environment", "traces", "probe sets"});
  for (const auto& [key, count] : traces) {
    t.add_row({key, std::to_string(count), std::to_string(sets[key])});
  }
  std::fputs(t.render().c_str(), stdout);

  std::printf("\nprobe-set SNR occupancy:\n");
  for (std::size_t b = 0; b < snr_hist.bins(); ++b) {
    const double frac = snr_hist.total() > 0
                            ? static_cast<double>(snr_hist.bin_count(b)) /
                                  static_cast<double>(snr_hist.total())
                            : 0.0;
    std::printf("  %5.0f dB %6.1f%% %s\n", snr_hist.bin_center(b),
                100.0 * frac,
                std::string(static_cast<std::size_t>(frac * 200), '#').c_str());
  }

  int rc = 0;
  if (report) {
    report->finish();
    rc = cli::emit_run_report(*report, "wmesh_inspect", report_path);
  }
  return rc;
}

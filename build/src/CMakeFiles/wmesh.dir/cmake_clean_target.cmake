file(REMOVE_RECURSE
  "libwmesh.a"
)

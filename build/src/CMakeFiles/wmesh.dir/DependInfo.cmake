
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clients/mobility_sim.cc" "src/CMakeFiles/wmesh.dir/clients/mobility_sim.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/clients/mobility_sim.cc.o.d"
  "/root/repo/src/clients/waypoint_sim.cc" "src/CMakeFiles/wmesh.dir/clients/waypoint_sim.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/clients/waypoint_sim.cc.o.d"
  "/root/repo/src/core/dataset_ops.cc" "src/CMakeFiles/wmesh.dir/core/dataset_ops.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/core/dataset_ops.cc.o.d"
  "/root/repo/src/core/diversity.cc" "src/CMakeFiles/wmesh.dir/core/diversity.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/core/diversity.cc.o.d"
  "/root/repo/src/core/etx.cc" "src/CMakeFiles/wmesh.dir/core/etx.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/core/etx.cc.o.d"
  "/root/repo/src/core/exor.cc" "src/CMakeFiles/wmesh.dir/core/exor.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/core/exor.cc.o.d"
  "/root/repo/src/core/exor_sim.cc" "src/CMakeFiles/wmesh.dir/core/exor_sim.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/core/exor_sim.cc.o.d"
  "/root/repo/src/core/hidden.cc" "src/CMakeFiles/wmesh.dir/core/hidden.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/core/hidden.cc.o.d"
  "/root/repo/src/core/lookup_table.cc" "src/CMakeFiles/wmesh.dir/core/lookup_table.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/core/lookup_table.cc.o.d"
  "/root/repo/src/core/mobility.cc" "src/CMakeFiles/wmesh.dir/core/mobility.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/core/mobility.cc.o.d"
  "/root/repo/src/core/rate_selection.cc" "src/CMakeFiles/wmesh.dir/core/rate_selection.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/core/rate_selection.cc.o.d"
  "/root/repo/src/core/snr_stats.cc" "src/CMakeFiles/wmesh.dir/core/snr_stats.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/core/snr_stats.cc.o.d"
  "/root/repo/src/core/strategies.cc" "src/CMakeFiles/wmesh.dir/core/strategies.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/core/strategies.cc.o.d"
  "/root/repo/src/core/traffic.cc" "src/CMakeFiles/wmesh.dir/core/traffic.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/core/traffic.cc.o.d"
  "/root/repo/src/mac/csma.cc" "src/CMakeFiles/wmesh.dir/mac/csma.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/mac/csma.cc.o.d"
  "/root/repo/src/mesh/topology.cc" "src/CMakeFiles/wmesh.dir/mesh/topology.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/mesh/topology.cc.o.d"
  "/root/repo/src/phy/error_model.cc" "src/CMakeFiles/wmesh.dir/phy/error_model.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/phy/error_model.cc.o.d"
  "/root/repo/src/phy/rates.cc" "src/CMakeFiles/wmesh.dir/phy/rates.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/phy/rates.cc.o.d"
  "/root/repo/src/rateadapt/arena.cc" "src/CMakeFiles/wmesh.dir/rateadapt/arena.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/rateadapt/arena.cc.o.d"
  "/root/repo/src/rateadapt/protocol.cc" "src/CMakeFiles/wmesh.dir/rateadapt/protocol.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/rateadapt/protocol.cc.o.d"
  "/root/repo/src/routing/dsdv.cc" "src/CMakeFiles/wmesh.dir/routing/dsdv.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/routing/dsdv.cc.o.d"
  "/root/repo/src/sim/channel.cc" "src/CMakeFiles/wmesh.dir/sim/channel.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/sim/channel.cc.o.d"
  "/root/repo/src/sim/generator.cc" "src/CMakeFiles/wmesh.dir/sim/generator.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/sim/generator.cc.o.d"
  "/root/repo/src/sim/probe_sim.cc" "src/CMakeFiles/wmesh.dir/sim/probe_sim.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/sim/probe_sim.cc.o.d"
  "/root/repo/src/trace/io.cc" "src/CMakeFiles/wmesh.dir/trace/io.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/trace/io.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/wmesh.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/util/csv.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/wmesh.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/util/stats.cc.o.d"
  "/root/repo/src/util/text_table.cc" "src/CMakeFiles/wmesh.dir/util/text_table.cc.o" "gcc" "src/CMakeFiles/wmesh.dir/util/text_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

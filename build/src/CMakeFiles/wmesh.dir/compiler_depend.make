# Empty compiler generated dependencies file for wmesh.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_channel.cc" "tests/CMakeFiles/wmesh_tests.dir/test_channel.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_channel.cc.o.d"
  "/root/repo/tests/test_csv.cc" "tests/CMakeFiles/wmesh_tests.dir/test_csv.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_csv.cc.o.d"
  "/root/repo/tests/test_diversity.cc" "tests/CMakeFiles/wmesh_tests.dir/test_diversity.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_diversity.cc.o.d"
  "/root/repo/tests/test_dsdv.cc" "tests/CMakeFiles/wmesh_tests.dir/test_dsdv.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_dsdv.cc.o.d"
  "/root/repo/tests/test_error_model.cc" "tests/CMakeFiles/wmesh_tests.dir/test_error_model.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_error_model.cc.o.d"
  "/root/repo/tests/test_etx.cc" "tests/CMakeFiles/wmesh_tests.dir/test_etx.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_etx.cc.o.d"
  "/root/repo/tests/test_exor.cc" "tests/CMakeFiles/wmesh_tests.dir/test_exor.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_exor.cc.o.d"
  "/root/repo/tests/test_exor_sim.cc" "tests/CMakeFiles/wmesh_tests.dir/test_exor_sim.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_exor_sim.cc.o.d"
  "/root/repo/tests/test_generator.cc" "tests/CMakeFiles/wmesh_tests.dir/test_generator.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_generator.cc.o.d"
  "/root/repo/tests/test_hidden.cc" "tests/CMakeFiles/wmesh_tests.dir/test_hidden.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_hidden.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/wmesh_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_io_robustness.cc" "tests/CMakeFiles/wmesh_tests.dir/test_io_robustness.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_io_robustness.cc.o.d"
  "/root/repo/tests/test_lookup_table.cc" "tests/CMakeFiles/wmesh_tests.dir/test_lookup_table.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_lookup_table.cc.o.d"
  "/root/repo/tests/test_mac.cc" "tests/CMakeFiles/wmesh_tests.dir/test_mac.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_mac.cc.o.d"
  "/root/repo/tests/test_mobility.cc" "tests/CMakeFiles/wmesh_tests.dir/test_mobility.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_mobility.cc.o.d"
  "/root/repo/tests/test_mobility_sim.cc" "tests/CMakeFiles/wmesh_tests.dir/test_mobility_sim.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_mobility_sim.cc.o.d"
  "/root/repo/tests/test_permutation_properties.cc" "tests/CMakeFiles/wmesh_tests.dir/test_permutation_properties.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_permutation_properties.cc.o.d"
  "/root/repo/tests/test_probe_sim.cc" "tests/CMakeFiles/wmesh_tests.dir/test_probe_sim.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_probe_sim.cc.o.d"
  "/root/repo/tests/test_rate_selection.cc" "tests/CMakeFiles/wmesh_tests.dir/test_rate_selection.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_rate_selection.cc.o.d"
  "/root/repo/tests/test_rateadapt.cc" "tests/CMakeFiles/wmesh_tests.dir/test_rateadapt.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_rateadapt.cc.o.d"
  "/root/repo/tests/test_rates.cc" "tests/CMakeFiles/wmesh_tests.dir/test_rates.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_rates.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/wmesh_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_snr_stats.cc" "tests/CMakeFiles/wmesh_tests.dir/test_snr_stats.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_snr_stats.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/wmesh_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_strategies.cc" "tests/CMakeFiles/wmesh_tests.dir/test_strategies.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_strategies.cc.o.d"
  "/root/repo/tests/test_text_table.cc" "tests/CMakeFiles/wmesh_tests.dir/test_text_table.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_text_table.cc.o.d"
  "/root/repo/tests/test_topology.cc" "tests/CMakeFiles/wmesh_tests.dir/test_topology.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_topology.cc.o.d"
  "/root/repo/tests/test_trace_io.cc" "tests/CMakeFiles/wmesh_tests.dir/test_trace_io.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_trace_io.cc.o.d"
  "/root/repo/tests/test_traffic.cc" "tests/CMakeFiles/wmesh_tests.dir/test_traffic.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_traffic.cc.o.d"
  "/root/repo/tests/test_waypoint_sim.cc" "tests/CMakeFiles/wmesh_tests.dir/test_waypoint_sim.cc.o" "gcc" "tests/CMakeFiles/wmesh_tests.dir/test_waypoint_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wmesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for wmesh_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/site_survey.dir/site_survey.cpp.o"
  "CMakeFiles/site_survey.dir/site_survey.cpp.o.d"
  "site_survey"
  "site_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for site_survey.
# This may be replaced when dependencies are built.

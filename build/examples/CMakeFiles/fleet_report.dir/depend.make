# Empty dependencies file for fleet_report.
# This may be replaced when dependencies are built.

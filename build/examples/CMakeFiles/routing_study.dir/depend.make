# Empty dependencies file for routing_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/routing_study.dir/routing_study.cpp.o"
  "CMakeFiles/routing_study.dir/routing_study.cpp.o.d"
  "routing_study"
  "routing_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/mobility_report.dir/mobility_report.cpp.o"
  "CMakeFiles/mobility_report.dir/mobility_report.cpp.o.d"
  "mobility_report"
  "mobility_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

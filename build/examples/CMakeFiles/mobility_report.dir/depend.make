# Empty dependencies file for mobility_report.
# This may be replaced when dependencies are built.

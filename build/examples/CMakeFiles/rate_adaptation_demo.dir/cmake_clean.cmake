file(REMOVE_RECURSE
  "CMakeFiles/rate_adaptation_demo.dir/rate_adaptation_demo.cpp.o"
  "CMakeFiles/rate_adaptation_demo.dir/rate_adaptation_demo.cpp.o.d"
  "rate_adaptation_demo"
  "rate_adaptation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_adaptation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

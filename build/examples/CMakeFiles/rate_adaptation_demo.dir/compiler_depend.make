# Empty compiler generated dependencies file for rate_adaptation_demo.
# This may be replaced when dependencies are built.

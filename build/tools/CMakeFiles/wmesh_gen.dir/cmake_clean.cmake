file(REMOVE_RECURSE
  "CMakeFiles/wmesh_gen.dir/wmesh_gen.cc.o"
  "CMakeFiles/wmesh_gen.dir/wmesh_gen.cc.o.d"
  "wmesh_gen"
  "wmesh_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmesh_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for wmesh_gen.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wmesh_inspect.dir/wmesh_inspect.cc.o"
  "CMakeFiles/wmesh_inspect.dir/wmesh_inspect.cc.o.d"
  "wmesh_inspect"
  "wmesh_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmesh_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

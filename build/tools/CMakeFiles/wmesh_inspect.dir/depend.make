# Empty dependencies file for wmesh_inspect.
# This may be replaced when dependencies are built.

# Empty dependencies file for wmesh_analyze.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wmesh_analyze.dir/wmesh_analyze.cc.o"
  "CMakeFiles/wmesh_analyze.dir/wmesh_analyze.cc.o.d"
  "wmesh_analyze"
  "wmesh_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmesh_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

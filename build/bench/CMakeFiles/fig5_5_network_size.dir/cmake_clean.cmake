file(REMOVE_RECURSE
  "CMakeFiles/fig5_5_network_size.dir/fig5_5_network_size.cc.o"
  "CMakeFiles/fig5_5_network_size.dir/fig5_5_network_size.cc.o.d"
  "fig5_5_network_size"
  "fig5_5_network_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_5_network_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

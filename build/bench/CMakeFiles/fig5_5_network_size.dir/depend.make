# Empty dependencies file for fig5_5_network_size.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4_1_optimal_rates.dir/fig4_1_optimal_rates.cc.o"
  "CMakeFiles/fig4_1_optimal_rates.dir/fig4_1_optimal_rates.cc.o.d"
  "fig4_1_optimal_rates"
  "fig4_1_optimal_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_1_optimal_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig4_1_optimal_rates.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_2_connection_length.cc" "bench/CMakeFiles/fig7_2_connection_length.dir/fig7_2_connection_length.cc.o" "gcc" "bench/CMakeFiles/fig7_2_connection_length.dir/fig7_2_connection_length.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/wmesh_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wmesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for fig7_2_connection_length.
# This may be replaced when dependencies are built.

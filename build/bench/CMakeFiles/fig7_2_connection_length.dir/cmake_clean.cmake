file(REMOVE_RECURSE
  "CMakeFiles/fig7_2_connection_length.dir/fig7_2_connection_length.cc.o"
  "CMakeFiles/fig7_2_connection_length.dir/fig7_2_connection_length.cc.o.d"
  "fig7_2_connection_length"
  "fig7_2_connection_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_2_connection_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig3_1_snr_stddev.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig3_1_snr_stddev.dir/fig3_1_snr_stddev.cc.o"
  "CMakeFiles/fig3_1_snr_stddev.dir/fig3_1_snr_stddev.cc.o.d"
  "fig3_1_snr_stddev"
  "fig3_1_snr_stddev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_1_snr_stddev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

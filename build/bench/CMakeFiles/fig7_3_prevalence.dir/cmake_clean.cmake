file(REMOVE_RECURSE
  "CMakeFiles/fig7_3_prevalence.dir/fig7_3_prevalence.cc.o"
  "CMakeFiles/fig7_3_prevalence.dir/fig7_3_prevalence.cc.o.d"
  "fig7_3_prevalence"
  "fig7_3_prevalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_3_prevalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

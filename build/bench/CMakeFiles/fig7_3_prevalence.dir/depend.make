# Empty dependencies file for fig7_3_prevalence.
# This may be replaced when dependencies are built.

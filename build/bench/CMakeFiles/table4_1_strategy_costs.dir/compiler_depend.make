# Empty compiler generated dependencies file for table4_1_strategy_costs.
# This may be replaced when dependencies are built.

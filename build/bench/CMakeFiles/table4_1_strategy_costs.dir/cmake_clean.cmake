file(REMOVE_RECURSE
  "CMakeFiles/table4_1_strategy_costs.dir/table4_1_strategy_costs.cc.o"
  "CMakeFiles/table4_1_strategy_costs.dir/table4_1_strategy_costs.cc.o.d"
  "table4_1_strategy_costs"
  "table4_1_strategy_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_1_strategy_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

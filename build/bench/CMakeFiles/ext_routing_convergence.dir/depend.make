# Empty dependencies file for ext_routing_convergence.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ext_routing_convergence.dir/ext_routing_convergence.cc.o"
  "CMakeFiles/ext_routing_convergence.dir/ext_routing_convergence.cc.o.d"
  "ext_routing_convergence"
  "ext_routing_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_routing_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

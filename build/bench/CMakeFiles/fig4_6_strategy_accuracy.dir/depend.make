# Empty dependencies file for fig4_6_strategy_accuracy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4_6_strategy_accuracy.dir/fig4_6_strategy_accuracy.cc.o"
  "CMakeFiles/fig4_6_strategy_accuracy.dir/fig4_6_strategy_accuracy.cc.o.d"
  "fig4_6_strategy_accuracy"
  "fig4_6_strategy_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_6_strategy_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig6_1_hidden_triples.
# This may be replaced when dependencies are built.

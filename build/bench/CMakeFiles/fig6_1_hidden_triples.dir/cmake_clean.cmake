file(REMOVE_RECURSE
  "CMakeFiles/fig6_1_hidden_triples.dir/fig6_1_hidden_triples.cc.o"
  "CMakeFiles/fig6_1_hidden_triples.dir/fig6_1_hidden_triples.cc.o.d"
  "fig6_1_hidden_triples"
  "fig6_1_hidden_triples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_1_hidden_triples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ext_hidden_terminal_impact.dir/ext_hidden_terminal_impact.cc.o"
  "CMakeFiles/ext_hidden_terminal_impact.dir/ext_hidden_terminal_impact.cc.o.d"
  "ext_hidden_terminal_impact"
  "ext_hidden_terminal_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hidden_terminal_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

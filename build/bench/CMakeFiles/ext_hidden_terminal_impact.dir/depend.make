# Empty dependencies file for ext_hidden_terminal_impact.
# This may be replaced when dependencies are built.

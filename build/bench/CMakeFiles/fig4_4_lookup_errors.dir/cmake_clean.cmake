file(REMOVE_RECURSE
  "CMakeFiles/fig4_4_lookup_errors.dir/fig4_4_lookup_errors.cc.o"
  "CMakeFiles/fig4_4_lookup_errors.dir/fig4_4_lookup_errors.cc.o.d"
  "fig4_4_lookup_errors"
  "fig4_4_lookup_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_4_lookup_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

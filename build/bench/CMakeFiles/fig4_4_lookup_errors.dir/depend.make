# Empty dependencies file for fig4_4_lookup_errors.
# This may be replaced when dependencies are built.

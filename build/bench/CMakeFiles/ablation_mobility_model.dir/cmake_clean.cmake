file(REMOVE_RECURSE
  "CMakeFiles/ablation_mobility_model.dir/ablation_mobility_model.cc.o"
  "CMakeFiles/ablation_mobility_model.dir/ablation_mobility_model.cc.o.d"
  "ablation_mobility_model"
  "ablation_mobility_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mobility_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

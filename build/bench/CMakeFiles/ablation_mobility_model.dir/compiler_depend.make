# Empty compiler generated dependencies file for ablation_mobility_model.
# This may be replaced when dependencies are built.

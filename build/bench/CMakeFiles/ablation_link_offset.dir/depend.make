# Empty dependencies file for ablation_link_offset.
# This may be replaced when dependencies are built.

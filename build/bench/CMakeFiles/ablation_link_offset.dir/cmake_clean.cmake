file(REMOVE_RECURSE
  "CMakeFiles/ablation_link_offset.dir/ablation_link_offset.cc.o"
  "CMakeFiles/ablation_link_offset.dir/ablation_link_offset.cc.o.d"
  "ablation_link_offset"
  "ablation_link_offset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_link_offset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

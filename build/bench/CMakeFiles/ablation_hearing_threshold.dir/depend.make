# Empty dependencies file for ablation_hearing_threshold.
# This may be replaced when dependencies are built.

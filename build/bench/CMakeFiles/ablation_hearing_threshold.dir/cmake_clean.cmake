file(REMOVE_RECURSE
  "CMakeFiles/ablation_hearing_threshold.dir/ablation_hearing_threshold.cc.o"
  "CMakeFiles/ablation_hearing_threshold.dir/ablation_hearing_threshold.cc.o.d"
  "ablation_hearing_threshold"
  "ablation_hearing_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hearing_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

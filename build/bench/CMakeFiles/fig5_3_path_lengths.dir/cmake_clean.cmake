file(REMOVE_RECURSE
  "CMakeFiles/fig5_3_path_lengths.dir/fig5_3_path_lengths.cc.o"
  "CMakeFiles/fig5_3_path_lengths.dir/fig5_3_path_lengths.cc.o.d"
  "fig5_3_path_lengths"
  "fig5_3_path_lengths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_3_path_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

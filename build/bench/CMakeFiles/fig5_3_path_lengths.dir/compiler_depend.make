# Empty compiler generated dependencies file for fig5_3_path_lengths.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_probe_window.dir/ablation_probe_window.cc.o"
  "CMakeFiles/ablation_probe_window.dir/ablation_probe_window.cc.o.d"
  "ablation_probe_window"
  "ablation_probe_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_probe_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

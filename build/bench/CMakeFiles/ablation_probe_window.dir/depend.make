# Empty dependencies file for ablation_probe_window.
# This may be replaced when dependencies are built.

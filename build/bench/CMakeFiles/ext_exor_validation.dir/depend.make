# Empty dependencies file for ext_exor_validation.
# This may be replaced when dependencies are built.

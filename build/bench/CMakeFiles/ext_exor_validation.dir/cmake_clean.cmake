file(REMOVE_RECURSE
  "CMakeFiles/ext_exor_validation.dir/ext_exor_validation.cc.o"
  "CMakeFiles/ext_exor_validation.dir/ext_exor_validation.cc.o.d"
  "ext_exor_validation"
  "ext_exor_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_exor_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

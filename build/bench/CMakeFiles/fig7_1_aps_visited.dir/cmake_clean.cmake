file(REMOVE_RECURSE
  "CMakeFiles/fig7_1_aps_visited.dir/fig7_1_aps_visited.cc.o"
  "CMakeFiles/fig7_1_aps_visited.dir/fig7_1_aps_visited.cc.o.d"
  "fig7_1_aps_visited"
  "fig7_1_aps_visited.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_1_aps_visited.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig7_1_aps_visited.
# This may be replaced when dependencies are built.

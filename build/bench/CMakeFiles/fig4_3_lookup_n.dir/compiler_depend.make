# Empty compiler generated dependencies file for fig4_3_lookup_n.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4_3_lookup_n.dir/fig4_3_lookup_n.cc.o"
  "CMakeFiles/fig4_3_lookup_n.dir/fig4_3_lookup_n.cc.o.d"
  "fig4_3_lookup_n"
  "fig4_3_lookup_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_3_lookup_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig5_4_pathlen_effect.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_4_pathlen_effect.dir/fig5_4_pathlen_effect.cc.o"
  "CMakeFiles/fig5_4_pathlen_effect.dir/fig5_4_pathlen_effect.cc.o.d"
  "fig5_4_pathlen_effect"
  "fig5_4_pathlen_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_4_pathlen_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

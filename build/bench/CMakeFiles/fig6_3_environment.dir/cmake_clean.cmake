file(REMOVE_RECURSE
  "CMakeFiles/fig6_3_environment.dir/fig6_3_environment.cc.o"
  "CMakeFiles/fig6_3_environment.dir/fig6_3_environment.cc.o.d"
  "fig6_3_environment"
  "fig6_3_environment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_3_environment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

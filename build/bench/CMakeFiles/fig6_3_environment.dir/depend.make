# Empty dependencies file for fig6_3_environment.
# This may be replaced when dependencies are built.

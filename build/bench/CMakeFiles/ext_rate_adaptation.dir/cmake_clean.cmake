file(REMOVE_RECURSE
  "CMakeFiles/ext_rate_adaptation.dir/ext_rate_adaptation.cc.o"
  "CMakeFiles/ext_rate_adaptation.dir/ext_rate_adaptation.cc.o.d"
  "ext_rate_adaptation"
  "ext_rate_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_rate_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

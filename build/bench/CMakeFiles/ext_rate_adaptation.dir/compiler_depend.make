# Empty compiler generated dependencies file for ext_rate_adaptation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_1_opp_improvement.dir/fig5_1_opp_improvement.cc.o"
  "CMakeFiles/fig5_1_opp_improvement.dir/fig5_1_opp_improvement.cc.o.d"
  "fig5_1_opp_improvement"
  "fig5_1_opp_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_1_opp_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig5_1_opp_improvement.
# This may be replaced when dependencies are built.

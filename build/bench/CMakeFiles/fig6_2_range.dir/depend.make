# Empty dependencies file for fig6_2_range.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig6_2_range.dir/fig6_2_range.cc.o"
  "CMakeFiles/fig6_2_range.dir/fig6_2_range.cc.o.d"
  "fig6_2_range"
  "fig6_2_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_2_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

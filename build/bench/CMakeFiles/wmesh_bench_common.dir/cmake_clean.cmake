file(REMOVE_RECURSE
  "CMakeFiles/wmesh_bench_common.dir/common.cc.o"
  "CMakeFiles/wmesh_bench_common.dir/common.cc.o.d"
  "libwmesh_bench_common.a"
  "libwmesh_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmesh_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

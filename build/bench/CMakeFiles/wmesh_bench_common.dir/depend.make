# Empty dependencies file for wmesh_bench_common.
# This may be replaced when dependencies are built.

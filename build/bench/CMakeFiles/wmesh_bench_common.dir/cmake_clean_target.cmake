file(REMOVE_RECURSE
  "libwmesh_bench_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/fig7_4_persistence.dir/fig7_4_persistence.cc.o"
  "CMakeFiles/fig7_4_persistence.dir/fig7_4_persistence.cc.o.d"
  "fig7_4_persistence"
  "fig7_4_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_4_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

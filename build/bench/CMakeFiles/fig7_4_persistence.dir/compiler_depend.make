# Empty compiler generated dependencies file for fig7_4_persistence.
# This may be replaced when dependencies are built.

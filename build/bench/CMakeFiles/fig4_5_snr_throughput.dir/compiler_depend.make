# Empty compiler generated dependencies file for fig4_5_snr_throughput.
# This may be replaced when dependencies are built.

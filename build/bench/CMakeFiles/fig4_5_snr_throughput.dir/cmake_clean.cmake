file(REMOVE_RECURSE
  "CMakeFiles/fig4_5_snr_throughput.dir/fig4_5_snr_throughput.cc.o"
  "CMakeFiles/fig4_5_snr_throughput.dir/fig4_5_snr_throughput.cc.o.d"
  "fig4_5_snr_throughput"
  "fig4_5_snr_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_5_snr_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig7_5_prev_vs_pers.
# This may be replaced when dependencies are built.

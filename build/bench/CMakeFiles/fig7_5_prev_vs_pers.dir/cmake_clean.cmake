file(REMOVE_RECURSE
  "CMakeFiles/fig7_5_prev_vs_pers.dir/fig7_5_prev_vs_pers.cc.o"
  "CMakeFiles/fig7_5_prev_vs_pers.dir/fig7_5_prev_vs_pers.cc.o.d"
  "fig7_5_prev_vs_pers"
  "fig7_5_prev_vs_pers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_5_prev_vs_pers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig5_4b_path_diversity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_4b_path_diversity.dir/fig5_4b_path_diversity.cc.o"
  "CMakeFiles/fig5_4b_path_diversity.dir/fig5_4b_path_diversity.cc.o.d"
  "fig5_4b_path_diversity"
  "fig5_4b_path_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_4b_path_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig4_2_lookup_bg.
# This may be replaced when dependencies are built.

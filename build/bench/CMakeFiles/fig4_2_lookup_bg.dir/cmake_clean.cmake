file(REMOVE_RECURSE
  "CMakeFiles/fig4_2_lookup_bg.dir/fig4_2_lookup_bg.cc.o"
  "CMakeFiles/fig4_2_lookup_bg.dir/fig4_2_lookup_bg.cc.o.d"
  "fig4_2_lookup_bg"
  "fig4_2_lookup_bg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_2_lookup_bg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4_2_lookup_bg.

# Empty compiler generated dependencies file for fig5_2_link_asymmetry.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_2_link_asymmetry.dir/fig5_2_link_asymmetry.cc.o"
  "CMakeFiles/fig5_2_link_asymmetry.dir/fig5_2_link_asymmetry.cc.o.d"
  "fig5_2_link_asymmetry"
  "fig5_2_link_asymmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_2_link_asymmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

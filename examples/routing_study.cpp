// routing_study: should this mesh deploy opportunistic routing?
//
// Scenario: given a deployment, quantify what an overhead-free
// ExOR/MORE-style protocol would save over ETX shortest-path routing (the
// paper's §5 analysis as a planning tool), and show the pairs that benefit
// most.
//
// Usage: routing_study [aps] [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/exor.h"
#include "mesh/topology.h"
#include "sim/generator.h"
#include "util/stats.h"
#include "util/text_table.h"

using namespace wmesh;

int main(int argc, char** argv) {
  const std::size_t aps = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  Rng rng(seed);
  NetworkInfo info;
  info.env = Environment::kIndoor;
  info.name = "routing-study";
  MeshNetwork net(info,
                  make_grid_topology(aps, indoor_topology_params(), rng));
  GeneratorConfig config;
  config.probes.duration_s = 2 * 3600.0;
  const NetworkTrace trace = generate_network_trace(
      net, Standard::kBg, config, rng, /*with_clients=*/false);

  std::printf("network: %zu APs, %zu probe sets\n", aps,
              trace.probe_sets.size());

  const auto rates = probed_rates(Standard::kBg);
  TextTable summary;
  summary.header({"rate", "variant", "pairs", "mean improvement",
                  "median", "no improvement (<1%)"});
  for (RateIndex r : {RateIndex{0}, RateIndex{4}}) {  // 1M and 24M
    const auto success = mean_success_matrix(trace, r);
    for (const EtxVariant v : {EtxVariant::kEtx1, EtxVariant::kEtx2}) {
      const auto gains = opportunistic_gains(success, v);
      if (gains.empty()) continue;
      std::vector<double> imps;
      std::size_t none = 0;
      for (const auto& g : gains) {
        imps.push_back(g.improvement());
        none += g.improvement() < 0.01 ? 1 : 0;
      }
      summary.add_row(
          {std::string(rates[r].name), to_string(v),
           std::to_string(gains.size()), fmt(mean(imps), 3),
           fmt(median(imps), 3),
           fmt(100.0 * static_cast<double>(none) /
                   static_cast<double>(gains.size()),
               1) +
               "%"});
    }
  }
  std::fputs(summary.render().c_str(), stdout);

  // Top-5 pairs by absolute transmission savings at 1 Mbit/s, with the ETX
  // path for context.
  const auto success = mean_success_matrix(trace, 0);
  auto gains = opportunistic_gains(success, EtxVariant::kEtx1);
  std::sort(gains.begin(), gains.end(), [](const PairGain& a,
                                           const PairGain& b) {
    return (a.etx_cost - a.exor_cost) > (b.etx_cost - b.exor_cost);
  });
  std::printf("\npairs with the largest absolute savings (1 Mbit/s, ETX1):\n");
  TextTable top;
  top.header({"pair", "hops", "ETX cost", "ExOR cost", "saved tx/pkt",
              "improvement"});
  for (std::size_t i = 0; i < std::min<std::size_t>(5, gains.size()); ++i) {
    const auto& g = gains[i];
    top.add_row({"AP" + std::to_string(g.src) + "->AP" + std::to_string(g.dst),
                 std::to_string(g.hops), fmt(g.etx_cost, 2),
                 fmt(g.exor_cost, 2), fmt(g.etx_cost - g.exor_cost, 2),
                 fmt(100.0 * g.improvement(), 1) + "%"});
  }
  std::fputs(top.render().c_str(), stdout);
  std::printf("\n(the paper's §5 verdict: most pairs gain little; the big "
              "winners are rare short paths with lucky skip links)\n");
  return 0;
}

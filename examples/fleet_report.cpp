// fleet_report: generate a synthetic fleet snapshot and print the paper's
// headline findings for it -- a one-binary tour of the whole toolkit.
//
// Usage: fleet_report [seed] [duration_hours]
//
// This is the example to start from when adapting wmesh to a real trace:
// swap generate_dataset() for load_dataset() and everything below runs
// unchanged.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/exor.h"
#include "core/hidden.h"
#include "core/lookup_table.h"
#include "core/mobility.h"
#include "core/rate_selection.h"
#include "core/snr_stats.h"
#include "core/strategies.h"
#include "core/traffic.h"
#include "sim/generator.h"
#include "util/stats.h"
#include "util/text_table.h"

using namespace wmesh;

namespace {

void report_dataset(const Dataset& ds) {
  std::size_t bg = 0, n = 0, indoor = 0, outdoor = 0, mixed = 0;
  for (const auto& nt : ds.networks) {
    (nt.info.standard == Standard::kBg ? bg : n) += 1;
    switch (nt.info.env) {
      case Environment::kIndoor: ++indoor; break;
      case Environment::kOutdoor: ++outdoor; break;
      case Environment::kMixed: ++mixed; break;
    }
  }
  std::printf("dataset: %zu traces (%zu b/g, %zu n; %zu indoor, %zu outdoor, "
              "%zu mixed), %zu APs, %zu probe sets\n",
              ds.networks.size(), bg, n, indoor, outdoor, mixed,
              ds.total_aps(), ds.total_probe_sets());
}

void report_snr_dispersion(const Dataset& ds) {
  const auto dev = snr_deviations(ds, Standard::kBg);
  const Cdf set_cdf(dev.per_probe_set);
  std::printf("\n-- SNR dispersion (Fig 3.1) --\n");
  std::printf("probe-set sigma < 5 dB: %.1f%% (paper: ~97.5%%)\n",
              100.0 * set_cdf.fraction_at_or_below(5.0));
  std::printf("median sigma: probe-set %.2f, link %.2f, network %.2f dB\n",
              Cdf(dev.per_probe_set).median(), Cdf(dev.per_link).median(),
              Cdf(dev.per_network).median());
}

void report_lookup(const Dataset& ds, Standard std) {
  std::printf("\n-- SNR look-up tables, %s (Fig 4.4) --\n",
              std::string(to_string(std)).c_str());
  for (const TableScope scope :
       {TableScope::kGlobal, TableScope::kNetwork, TableScope::kAp,
        TableScope::kLink}) {
    const auto err = lookup_table_errors(ds, std, scope);
    const Cdf cdf(err.throughput_diff_mbps);
    std::printf("  %-8s exact %.1f%%  median loss %.3f  p90 loss %.3f Mbit/s\n",
                to_string(scope), 100.0 * err.exact_fraction, cdf.median(),
                cdf.value_at(0.9));
  }
}

void report_strategies(const Dataset& ds) {
  std::printf("\n-- Online strategies, b/g (Fig 4.6 / Table 4.1) --\n");
  for (const UpdateStrategy s :
       {UpdateStrategy::kFirst, UpdateStrategy::kMostRecent,
        UpdateStrategy::kSubsampled, UpdateStrategy::kAll}) {
    StrategyParams p;
    p.strategy = s;
    const auto res = run_strategy(ds, Standard::kBg, p);
    std::printf("  %-12s accuracy %.1f%%  updates %llu  memory %llu points\n",
                to_string(s), 100.0 * res.overall_accuracy,
                static_cast<unsigned long long>(res.updates),
                static_cast<unsigned long long>(res.memory_points));
  }
}

void report_opportunistic(const Dataset& ds) {
  std::printf("\n-- Opportunistic routing, b/g (Fig 5.1) --\n");
  const auto rates = probed_rates(Standard::kBg);
  for (const EtxVariant variant : {EtxVariant::kEtx1, EtxVariant::kEtx2}) {
    std::vector<double> improvements;
    std::size_t none = 0;
    for (const auto& nt : ds.networks) {
      if (nt.info.standard != Standard::kBg || nt.ap_count < 5) continue;
      const auto success = mean_success_matrix(nt, 0);  // 1 Mbit/s
      for (const auto& g : opportunistic_gains(success, variant)) {
        improvements.push_back(g.improvement());
        // Count sub-1% gains as "no improvement", the paper's granularity.
        if (g.improvement() < 0.01) ++none;
      }
    }
    if (improvements.empty()) continue;
    const auto s = summarize(improvements);
    std::printf(
        "  %s @%s: mean %.3f median %.3f  no-improvement %.1f%% of pairs\n",
        to_string(variant), std::string(rates[0].name).c_str(), s.mean,
        s.median,
        100.0 * static_cast<double>(none) /
            static_cast<double>(improvements.size()));
  }
}

void report_hidden(const Dataset& ds) {
  std::printf("\n-- Hidden triples @10%% threshold, b/g (Fig 6.1) --\n");
  const auto rates = probed_rates(Standard::kBg);
  for (RateIndex r = 0; r < rates.size(); ++r) {
    const auto stats = hidden_triples_per_network(ds, Standard::kBg, r, 0.10);
    if (stats.fractions.empty()) continue;
    std::printf("  %-4s median %.3f over %zu networks\n",
                std::string(rates[r].name).c_str(), median(stats.fractions),
                stats.fractions.size());
  }
}

void report_mobility(const Dataset& ds) {
  std::printf("\n-- Client mobility (Figs 7.1-7.4) --\n");
  for (const Environment env : {Environment::kIndoor, Environment::kOutdoor}) {
    const auto m = analyze_mobility_by_env(ds, env);
    if (m.prevalence.empty()) continue;
    const auto prev = summarize(m.prevalence);
    const auto pers = summarize(m.persistence_min);
    const Cdf len(m.connection_length_min);
    std::size_t one_ap = 0;
    for (int v : m.aps_visited) one_ap += (v == 1) ? 1 : 0;
    std::printf("  %-7s prevalence mean/med %.3f/%.3f  persistence "
                "mean/med %.1f/%.1f min\n",
                to_string(env).c_str(), prev.mean, prev.median, pers.mean,
                pers.median);
    std::printf("          clients at 1 AP: %.0f%%  connected full trace: "
                "%.0f%%\n",
                100.0 * static_cast<double>(one_ap) /
                    static_cast<double>(m.aps_visited.size()),
                100.0 * (1.0 - len.fraction_at_or_below(
                                   len.sorted_values().back() - 1.0)));
  }
}

void report_traffic(const Dataset& ds) {
  const auto t = analyze_traffic(ds);
  if (t.packets_per_client.empty()) return;
  std::printf("\n-- Client traffic (§3.2) --\n");
  const auto per_client = summarize(t.packets_per_client);
  std::printf("data packets per client: median %.0f, p90 %.0f\n",
              per_client.median, quantile(t.packets_per_client, 0.9));
  std::printf("busiest 10%% of APs carry %.0f%% of all packets\n",
              100.0 * t.top_decile_ap_share);
}

}  // namespace

int main(int argc, char** argv) {
  GeneratorConfig config = default_config();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) {
    config.probes.duration_s = std::strtod(argv[2], nullptr) * 3600.0;
  }

  std::printf("generating snapshot (seed %llu, %.1f h probe trace)...\n",
              static_cast<unsigned long long>(config.seed),
              config.probes.duration_s / 3600.0);
  const Dataset ds = generate_dataset(config);

  report_dataset(ds);
  report_snr_dispersion(ds);
  report_lookup(ds, Standard::kBg);
  report_lookup(ds, Standard::kN);
  report_strategies(ds);
  report_opportunistic(ds);
  report_hidden(ds);
  report_mobility(ds);
  report_traffic(ds);
  return 0;
}

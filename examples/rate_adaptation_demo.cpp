// rate_adaptation_demo: an online SNR-guided rate controller on one link.
//
// Scenario: the paper's §4.5 proposal made concrete.  A sender keeps a
// per-link SNR->rate table (with the "k best rates" augmentation) and uses
// it to restrict probing; we replay a fading channel and compare
//   * oracle        -- always transmits at the best rate (upper bound)
//   * snr-table     -- transmits at the table's choice for the current SNR
//   * fixed-rate    -- best single static rate in hindsight
// on achieved throughput.  The table warms up as probes arrive, exactly as
// the paper envisions.
//
// Usage: rate_adaptation_demo [minutes] [seed]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "phy/error_model.h"
#include "sim/channel.h"
#include "util/rng.h"
#include "util/text_table.h"

using namespace wmesh;

namespace {

// Tiny per-link table: SNR -> counts of observed-best rate (the paper's
// "All probes" strategy), with a k-best view for restricted probing.
class OnlineTable {
 public:
  explicit OnlineTable(std::size_t n_rates) : n_rates_(n_rates) {}

  void observe(int snr, std::size_t best_rate) {
    auto& c = cells_[snr];
    if (c.empty()) c.assign(n_rates_, 0);
    ++c[best_rate];
  }

  int choose(int snr) const {
    const auto it = cells_.find(snr);
    if (it == cells_.end()) return -1;
    std::size_t best = 0;
    for (std::size_t r = 1; r < n_rates_; ++r) {
      if (it->second[r] > it->second[best]) best = r;
    }
    return it->second[best] > 0 ? static_cast<int>(best) : -1;
  }

  // How many distinct rates were ever best at this SNR (the size of the
  // restricted probe set the paper proposes).
  int candidates(int snr) const {
    const auto it = cells_.find(snr);
    if (it == cells_.end()) return 0;
    int k = 0;
    for (auto v : it->second) k += v > 0 ? 1 : 0;
    return k;
  }

 private:
  std::size_t n_rates_;
  std::map<int, std::vector<std::uint32_t>> cells_;
};

}  // namespace

int main(int argc, char** argv) {
  const double minutes = argc > 1 ? std::strtod(argv[1], nullptr) : 240.0;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  // One 55 m indoor link.
  Rng rng(seed);
  std::vector<Ap> aps = {{0, 0.0, 0.0}, {1, 55.0, 0.0}};
  MeshNetwork net({}, aps);
  ChannelModel chan(net, Standard::kBg, indoor_channel_params(),
                    minutes * 60.0, rng);
  if (chan.links().empty()) {
    std::fprintf(stderr, "link silent; try another seed\n");
    return 1;
  }

  const auto rates = probed_rates(Standard::kBg);
  OnlineTable table(rates.size());
  double thr_oracle = 0.0, thr_table = 0.0;
  std::vector<double> thr_fixed(rates.size(), 0.0);
  std::size_t steps = 0, table_ready = 0;

  for (double t = 40.0; t < minutes * 60.0; t += 40.0) {
    chan.advance_slow_fading(40.0, rng);
    // Probe every rate (20-probe equivalent collapsed to the success
    // probability) and observe the winner.
    const auto probe = chan.sample_probe(0, 0, t, rng);
    const int snr = static_cast<int>(std::lround(probe.reported_snr_db));
    double best_thr = 0.0;
    std::size_t best_rate = 0;
    std::vector<double> per_rate(rates.size());
    for (std::size_t r = 0; r < rates.size(); ++r) {
      // Expected throughput at this instant (mean over fast fading).
      int delivered = 0;
      for (int k = 0; k < 20; ++k) {
        delivered += chan.sample_probe(0, static_cast<RateIndex>(r), t, rng)
                             .delivered
                         ? 1
                         : 0;
      }
      per_rate[r] =
          throughput_mbps(rates[r], static_cast<double>(delivered) / 20.0);
      thr_fixed[r] += per_rate[r];
      if (per_rate[r] > best_thr) {
        best_thr = per_rate[r];
        best_rate = r;
      }
    }
    thr_oracle += best_thr;
    const int choice = table.choose(snr);
    if (choice >= 0) {
      thr_table += per_rate[static_cast<std::size_t>(choice)];
      ++table_ready;
    } else {
      thr_table += per_rate[0];  // fall back to the most robust rate
    }
    table.observe(snr, best_rate);
    ++steps;
  }

  double best_fixed = 0.0;
  std::size_t best_fixed_rate = 0;
  for (std::size_t r = 0; r < rates.size(); ++r) {
    if (thr_fixed[r] > best_fixed) {
      best_fixed = thr_fixed[r];
      best_fixed_rate = r;
    }
  }

  const double n = static_cast<double>(steps);
  std::printf("link: static SNR %.1f dB, %zu probe rounds over %.0f min\n",
              chan.links()[0].static_snr_db, steps, minutes);
  TextTable t;
  t.header({"policy", "mean throughput (Mbit/s)", "vs oracle"});
  t.add_row({"oracle (per-round best)", fmt(thr_oracle / n, 2), "100.0%"});
  t.add_row({"per-link SNR table", fmt(thr_table / n, 2),
             fmt(100.0 * thr_table / thr_oracle, 1) + "%"});
  t.add_row({"best fixed rate (" +
                 std::string(rates[best_fixed_rate].name) + ")",
             fmt(best_fixed / n, 2),
             fmt(100.0 * best_fixed / thr_oracle, 1) + "%"});
  std::fputs(t.render().c_str(), stdout);
  std::printf("\ntable had a prediction for %.1f%% of rounds; typical "
              "restricted probe set at the link's SNRs: %d rates of %zu\n",
              100.0 * static_cast<double>(table_ready) / n,
              table.candidates(static_cast<int>(
                  std::lround(chan.links()[0].static_snr_db))),
              rates.size());
  std::printf("(the paper's §4.5: a trained per-link table tracks the "
              "oracle closely and shrinks the probing set)\n");
  return 0;
}

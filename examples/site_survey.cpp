// site_survey: hidden-terminal audit of one deployment.
//
// Scenario: you operate a building-wide mesh and want to know, before
// enabling higher bit rates, how much hidden-terminal exposure each rate
// adds (the paper's §6 analysis applied as an operations tool).
//
// Usage: site_survey [aps] [spacing_m] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/hidden.h"
#include "mesh/topology.h"
#include "sim/generator.h"
#include "util/text_table.h"

using namespace wmesh;

int main(int argc, char** argv) {
  const std::size_t aps = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;
  const double spacing = argc > 2 ? std::strtod(argv[2], nullptr) : 50.0;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  Rng rng(seed);
  TopologyParams topo;
  topo.spacing_min_m = spacing;
  topo.spacing_max_m = spacing;
  NetworkInfo info;
  info.env = Environment::kIndoor;
  info.name = "site-survey";
  MeshNetwork net(info, make_grid_topology(aps, topo, rng));

  GeneratorConfig config;
  config.probes.duration_s = 2 * 3600.0;
  const NetworkTrace trace = generate_network_trace(
      net, Standard::kBg, config, rng, /*with_clients=*/false);
  std::printf("surveyed %zu APs at ~%.0f m spacing: %zu probe sets\n", aps,
              spacing, trace.probe_sets.size());

  const auto rates = probed_rates(Standard::kBg);
  TextTable t;
  t.header({"rate", "audible pairs", "relevant triples", "hidden triples",
            "hidden fraction", "verdict"});
  for (RateIndex r = 0; r < rates.size(); ++r) {
    const auto success = mean_success_matrix(trace, r);
    const HearingGraph g(success, 0.10);
    const auto c = count_triples(g);
    const double frac = c.hidden_fraction();
    const char* verdict = frac < 0.10   ? "ok"
                          : frac < 0.30 ? "watch"
                                        : "risky";
    t.add_row({std::string(rates[r].name), std::to_string(g.range_pairs()),
               std::to_string(c.relevant), std::to_string(c.hidden),
               fmt(frac, 3), verdict});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\n'hidden fraction' = relevant triples (A,B,C) where A and C "
              "hear B but not each other\n");
  std::printf("(the paper's §6: expect the fraction to grow with the rate, "
              "with 11M dipping below 6M)\n");

  // Worst offenders: the centre APs that participate in the most hidden
  // triples at the top rate.
  const auto success48 = mean_success_matrix(trace, 6);
  const HearingGraph g48(success48, 0.10);
  std::vector<std::size_t> centre_hidden(aps, 0);
  for (ApId b = 0; b < aps; ++b) {
    for (ApId a = 0; a < aps; ++a) {
      if (a == b || !g48.hears(a, b)) continue;
      for (ApId c = static_cast<ApId>(a + 1); c < aps; ++c) {
        if (c == b || !g48.hears(c, b)) continue;
        if (!g48.hears(a, c)) ++centre_hidden[b];
      }
    }
  }
  std::printf("\nmost exposed APs at 48M (hidden triples centred on them):\n");
  for (int shown = 0; shown < 3; ++shown) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < aps; ++i) {
      if (centre_hidden[i] > centre_hidden[best]) best = i;
    }
    if (centre_hidden[best] == 0) break;
    std::printf("  AP%zu: %zu hidden triples\n", best, centre_hidden[best]);
    centre_hidden[best] = 0;
  }
  return 0;
}

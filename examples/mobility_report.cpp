// mobility_report: who are your clients and how do they move?
//
// Scenario: the paper's §7 analysis as an operator report -- reconstruct
// client sessions from five-minute association logs and summarize how
// sticky clients are, where roamers go, and how indoor and outdoor sites
// differ.
//
// Usage: mobility_report [networks] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/mobility.h"
#include "sim/generator.h"
#include "util/stats.h"
#include "util/text_table.h"

using namespace wmesh;

int main(int argc, char** argv) {
  const std::size_t n_nets = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 9;

  GeneratorConfig config;
  config.seed = seed;
  config.fleet.network_count = n_nets;
  config.fleet.bg_only = n_nets;
  config.fleet.n_only = 0;
  config.fleet.both = 0;
  config.fleet.indoor = n_nets / 2;
  config.fleet.outdoor = n_nets - n_nets / 2;
  config.fleet.min_size = 5;
  config.fleet.max_size = 30;
  config.fleet.force_max_network = false;
  config.probes.duration_s = 0.0;  // client data only
  const Dataset ds = generate_dataset(config);

  std::size_t samples = 0;
  for (const auto& nt : ds.networks) samples += nt.client_samples.size();
  std::printf("generated %zu five-minute client samples across %zu "
              "networks\n\n",
              samples, ds.networks.size());

  TextTable t;
  t.header({"metric", "indoor", "outdoor", "paper (in/out)"});
  const auto indoor = analyze_mobility_by_env(ds, Environment::kIndoor);
  const auto outdoor = analyze_mobility_by_env(ds, Environment::kOutdoor);

  auto frac_one_ap = [](const MobilityStats& m) {
    std::size_t one = 0;
    for (int v : m.aps_visited) one += v == 1 ? 1 : 0;
    return m.aps_visited.empty()
               ? 0.0
               : static_cast<double>(one) /
                     static_cast<double>(m.aps_visited.size());
  };

  t.add_row({"clients (sessions)", std::to_string(indoor.aps_visited.size()),
             std::to_string(outdoor.aps_visited.size()), "-"});
  t.add_row({"single-AP clients", fmt(100.0 * frac_one_ap(indoor), 0) + "%",
             fmt(100.0 * frac_one_ap(outdoor), 0) + "%", "majority"});
  t.add_row({"median session (min)", fmt(median(indoor.connection_length_min), 0),
             fmt(median(outdoor.connection_length_min), 0), "-"});
  t.add_row({"mean prevalence", fmt(mean(indoor.prevalence), 3),
             fmt(mean(outdoor.prevalence), 3), ".07 / .15"});
  t.add_row({"median prevalence", fmt(median(indoor.prevalence), 3),
             fmt(median(outdoor.prevalence), 3), ".02 / .08"});
  t.add_row({"mean persistence (min)", fmt(mean(indoor.persistence_min), 1),
             fmt(mean(outdoor.persistence_min), 1), "19.4 / 38.6"});
  t.add_row({"median persistence (min)",
             fmt(median(indoor.persistence_min), 1),
             fmt(median(outdoor.persistence_min), 1), "6.25 / 25.0"});
  std::fputs(t.render().c_str(), stdout);

  // The roamer tail (Fig 7.1's surprise).
  int max_aps = 0;
  for (int v : indoor.aps_visited) max_aps = std::max(max_aps, v);
  for (int v : outdoor.aps_visited) max_aps = std::max(max_aps, v);
  std::printf("\nmost-travelled client visited %d APs", max_aps);
  std::printf("  (paper saw clients passing 50, one past 105)\n");
  std::printf("\n(§7's conclusion: indoor clients flap between APs far more "
              "than outdoor ones)\n");
  return 0;
}

// quickstart: the smallest end-to-end use of the wmesh toolkit.
//
//   1. build a 9-AP indoor mesh and simulate one hour of Meraki-style
//      probing on it;
//   2. ask the core library the paper's basic questions about it: what SNRs
//      do the links run at, what is each link's optimal bit rate, and how
//      well would a per-link SNR look-up table do?
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/lookup_table.h"
#include "core/rate_selection.h"
#include "mesh/topology.h"
#include "sim/generator.h"

using namespace wmesh;

int main() {
  // -- 1. a small synthetic deployment ------------------------------------
  Rng rng(7);
  NetworkInfo info;
  info.id = 0;
  info.env = Environment::kIndoor;
  info.name = "quickstart-net";
  MeshNetwork net(info, make_grid_topology(9, indoor_topology_params(), rng));

  GeneratorConfig config;
  config.probes.duration_s = 3600.0;  // one hour of probes
  NetworkTrace trace = generate_network_trace(net, Standard::kBg, config, rng,
                                              /*with_clients=*/false);
  Dataset ds;
  ds.networks.push_back(trace);
  std::printf("simulated %zu probe sets on %u APs\n", trace.probe_sets.size(),
              trace.ap_count);

  // -- 2. per-link optimal rates ------------------------------------------
  std::printf("\nlast report per link: SNR -> optimal rate\n");
  const ProbeSet* last_per_link[16][16] = {};
  for (const auto& set : trace.probe_sets) {
    last_per_link[set.from][set.to] = &set;
  }
  for (int f = 0; f < 9; ++f) {
    for (int t = 0; t < 9; ++t) {
      const ProbeSet* set = last_per_link[f][t];
      if (set == nullptr || f > t) continue;  // one direction, for brevity
      const auto opt = optimal_rate(*set, Standard::kBg);
      if (!opt) continue;
      std::printf("  AP%d -> AP%d: %5.1f dB -> %s (%.1f Mbit/s effective)\n",
                  f, t, set->snr_db,
                  std::string(rate_name(Standard::kBg, *opt)).c_str(),
                  optimal_throughput_mbps(*set, Standard::kBg));
    }
  }

  // -- 3. how well would SNR look-up tables work here? ---------------------
  std::printf("\nSNR look-up table accuracy (fraction of probe sets where "
              "the table picks the true optimum):\n");
  for (const TableScope scope : {TableScope::kNetwork, TableScope::kLink}) {
    const auto err = lookup_table_errors(ds, Standard::kBg, scope);
    std::printf("  %-8s %.1f%%\n", to_string(scope),
                100.0 * err.exact_fraction);
  }
  std::printf("\n(the paper's §4 finding in miniature: per-link training "
              "beats per-network)\n");
  return 0;
}

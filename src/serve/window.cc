#include "serve/window.h"

namespace wmesh::serve {

bool ReportWindow::push_round(std::vector<ProbeSet> round) {
  bool changed = !round.empty();
  total_sets_ += round.size();
  rounds_.push_back(std::move(round));
  if (rounds_.size() > max_rounds_) {
    changed = changed || !rounds_.front().empty();
    total_sets_ -= rounds_.front().size();
    rounds_.pop_front();
  }
  return changed;
}

void ReportWindow::materialize(std::vector<ProbeSet>* out) const {
  out->clear();
  out->reserve(total_sets_);
  for (const auto& round : rounds_) {
    out->insert(out->end(), round.begin(), round.end());
  }
}

}  // namespace wmesh::serve

#include "serve/daemon.h"

#include <chrono>
#include <thread>

#include "obs/log.h"
#include "obs/metrics.h"

namespace wmesh::serve {

std::unique_ptr<ServeDaemon> ServeDaemon::start(const DaemonOptions& options,
                                                std::string* error) {
  auto daemon = std::unique_ptr<ServeDaemon>(new ServeDaemon());
  daemon->options_ = options;
  daemon->service_ = std::make_unique<MeshService>(options.service);
  MeshService* svc = daemon->service_.get();
  daemon->server_ = QueryServer::start(
      options.listen,
      [svc](const std::string& line) -> QueryServer::Response {
        if (line == "shutdown") return {true, "bye\n", true, true};
        if (line == "quit") return {true, "bye\n", true, false};
        QueryResult r = svc->query(line);
        return {r.ok, std::move(r.body), false, false};
      },
      error);
  if (daemon->server_ == nullptr) return nullptr;
  return daemon;
}

ServeDaemon::~ServeDaemon() {
  if (server_) server_->stop();
}

std::uint64_t ServeDaemon::run() {
  WMESH_LOG_INFO("serve", kv("event", "ingest_start"),
                 kv("max_rounds", options_.max_rounds));
  std::uint64_t ingested = 0;
  bool draining = true;
  while (!stop_.load(std::memory_order_acquire) &&
         !server_->shutdown_requested()) {
    if (draining &&
        (options_.max_rounds == 0 || ingested < options_.max_rounds)) {
      if (service_->tick()) {
        ++ingested;
        if (options_.tick_sleep_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(options_.tick_sleep_ms));
        }
        continue;
      }
      draining = false;
      WMESH_LOG_INFO("serve", kv("event", "stream_drained"),
                     kv("rounds", ingested),
                     kv("virtual_time_s", service_->time_s()));
    } else if (draining) {
      draining = false;  // max_rounds reached; linger serving queries
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server_->stop();
  WMESH_LOG_INFO("serve", kv("event", "ingest_stop"), kv("rounds", ingested));
  return ingested;
}

void ServeDaemon::request_shutdown() noexcept {
  stop_.store(true, std::memory_order_release);
}

}  // namespace wmesh::serve

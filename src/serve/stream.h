// Fleet-level probe traffic source for wmesh_serve.
//
// A FleetProbeStream is generate_dataset() turned inside out: the same
// master-seed fork discipline builds the same fleet, the same per-network
// RNG streams feed the same channel models, and the same client traces are
// attached -- but instead of draining every network to its configured
// duration in one call, the fleet advances one probe round (40 s of virtual
// time with the paper defaults) per advance_round() call, handing each
// network's newly due ProbeSets back to the caller.  Draining a
// FleetProbeStream to the end therefore reproduces generate_dataset(config)
// byte for byte (tests/test_serve.cc pins this), which is what makes
// "serve over the live stream" and "batch-analyze the saved snapshot"
// comparable at all.
//
// Client data (five-minute association/packet counters) is not streamed:
// the paper collects it on a separate path, and the mobility/traffic
// analyses want full-trace context.  It is generated at construction --
// burning exactly the RNG forks generate_network_trace() would -- and
// exposed per trace for the service to attach to its live dataset.
//
// Determinism: one pre-forked RNG per (network, standard) trace, one
// parallel task per trace, results landing in fixed per-trace slots.
// Output is byte-identical for any wmesh::par thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/generator.h"
#include "sim/probe_stream.h"
#include "trace/records.h"

namespace wmesh::serve {

class FleetProbeStream {
 public:
  // Builds the fleet and all per-trace channel state (parallel, one task
  // per network, as generate_dataset does).
  explicit FleetProbeStream(const GeneratorConfig& config);

  // One streamed (network, standard) trace; indices are stable and ordered
  // exactly like generate_dataset's Dataset::networks.
  std::size_t trace_count() const noexcept { return traces_.size(); }
  const NetworkInfo& info(std::size_t i) const noexcept {
    return traces_[i]->info;
  }
  std::uint16_t ap_count(std::size_t i) const noexcept {
    return traces_[i]->ap_count;
  }
  const std::vector<ClientSample>& client_samples(std::size_t i) const
      noexcept {
    return traces_[i]->client_samples;
  }

  // Advances every trace one probe round in parallel and appends the newly
  // due ProbeSets of trace i to (*out)[i] (out must have trace_count()
  // entries; existing contents are preserved).  Returns false -- advancing
  // nothing -- once every trace reached its configured duration.
  bool advance_round(std::vector<std::vector<ProbeSet>>* out);

  // Virtual time of the last executed probe round (0 before the first).
  double time_s() const noexcept { return time_s_; }
  bool finished() const noexcept;

  const ProbeSimParams& probe_params() const noexcept {
    return config_.probes;
  }

 private:
  struct Trace {
    NetworkInfo info;
    std::uint16_t ap_count = 0;
    std::vector<ClientSample> client_samples;
    std::unique_ptr<NetworkProbeStream> stream;
  };

  GeneratorConfig config_;
  std::vector<std::unique_ptr<Trace>> traces_;
  double time_s_ = 0.0;
};

}  // namespace wmesh::serve

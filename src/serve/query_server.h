// Line-protocol query endpoint for wmesh_serve.
//
// Protocol (newline-framed, one command per line, many commands per
// connection):
//   request:  "<command> [arg]\n"           (<= 4096 bytes, '\r' stripped)
//   response: "ok <payload-bytes>\n<payload>"  on success
//             "err <message>\n"                on failure
//
// The listener reuses the obs/socket_util plumbing (same address grammar as
// every --listen flag: "unix:<path>" or "<host>:<port>", ":0" = ephemeral)
// and the same deterministic-shutdown wakeup pipe as the OpenMetrics
// endpoint.  One serving thread handles one connection at a time; commands
// dispatch through the injected handler, so the server knows framing and
// nothing else.
//
// Fault containment is the contract (the fault-injection wall in
// tests/test_serve.cc pins it): oversized lines, unknown commands (handler
// says not-ok), truncated requests and clients vanishing mid-response all
// leave the server accepting -- each increments `serve.protocol_errors`,
// none raises a signal or wedges the loop.
#pragma once

#include <functional>
#include <memory>
#include <string>

namespace wmesh::serve {

class QueryServer {
 public:
  struct Response {
    bool ok = false;
    std::string body;       // payload when ok, error message otherwise
    bool close = false;     // close this connection after responding
    bool shutdown = false;  // caller should stop the daemon (reported via
                            // shutdown_requested(); the server keeps
                            // serving until stop())
  };
  using Handler = std::function<Response(const std::string& line)>;

  // Binds `address` and starts the serving thread.  nullptr + *error on
  // failure.  The handler runs on the serving thread.
  static std::unique_ptr<QueryServer> start(const std::string& address,
                                            Handler handler,
                                            std::string* error);

  ~QueryServer();

  // Idempotent, thread-safe: wakes the poll loop, joins the serving thread,
  // closes and unlinks the socket.
  void stop() noexcept;

  // Concrete address, e.g. "127.0.0.1:40913" after binding ":0".
  const std::string& bound_address() const noexcept { return bound_; }

  // True once any handled command set Response::shutdown.
  bool shutdown_requested() const noexcept;

 private:
  QueryServer() = default;
  void serve_loop() noexcept;
  void serve_client(int fd) noexcept;

  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::string bound_;
};

}  // namespace wmesh::serve

// ServeDaemon: MeshService + QueryServer wired into a runnable daemon.
//
// The daemon owns the ingest loop: it drives MeshService::tick() on the
// run() caller's thread -- as fast as the CPU allows by default (the
// virtual clock is free; hours of 40 s probe rounds replay in
// milliseconds), or paced by tick_sleep_ms for a wall-clock-ish feed --
// while the query server answers on its own thread.  When the stream is
// exhausted (or max_rounds reached) the daemon lingers, serving queries
// over the final window, until a client sends "shutdown" or the owner calls
// request_shutdown().
//
// tools/wmesh_serve.cc is a flag parser around this class; the smoke and
// fault-injection tests drive it in-process.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/query_server.h"
#include "serve/service.h"

namespace wmesh::serve {

struct DaemonOptions {
  ServeConfig service;
  std::string listen;            // query endpoint address (required)
  std::uint64_t max_rounds = 0;  // stop ingesting after N rounds (0 = all)
  int tick_sleep_ms = 0;         // wall pause between probe rounds
};

class ServeDaemon {
 public:
  // Builds the service (generates the fleet; the expensive step) and binds
  // the query endpoint.  nullptr + *error when the bind fails.
  static std::unique_ptr<ServeDaemon> start(const DaemonOptions& options,
                                            std::string* error);

  ~ServeDaemon();

  // Ingests until shutdown (see header comment).  Returns the number of
  // probe rounds ingested.
  std::uint64_t run();

  // Stops run() from another thread (same effect as a "shutdown" command).
  void request_shutdown() noexcept;

  const std::string& query_address() const noexcept {
    return server_->bound_address();
  }
  MeshService& service() noexcept { return *service_; }

 private:
  ServeDaemon() = default;

  DaemonOptions options_;
  std::unique_ptr<MeshService> service_;
  std::unique_ptr<QueryServer> server_;
  std::atomic<bool> stop_{false};
};

}  // namespace wmesh::serve

// Per-trace sliding window of report rounds.
//
// wmesh_serve keeps the last W *report rounds* (every probe set sharing one
// report timestamp) per (network, standard) trace live; older rounds fall
// off as the stream advances.  The window stores the rounds verbatim --
// no incremental float math -- so materialize() yields exactly the
// (time, from, to)-sorted suffix of the batch trace, and every analysis
// over the live dataset is byte-identical to a batch run over the same
// window.  Success matrices stay cached per network (core/AnalysisCache)
// and are recomputed lazily only after the window actually changed.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "trace/records.h"

namespace wmesh::serve {

class ReportWindow {
 public:
  // Keeps at most `max_rounds` report rounds (0 is pinned up to 1).
  explicit ReportWindow(std::size_t max_rounds)
      : max_rounds_(max_rounds == 0 ? 1 : max_rounds) {}

  // Appends one report round (all ProbeSets sharing a report time; may be
  // empty -- silent networks emit nothing, exactly as in the real logs) and
  // evicts the oldest round beyond capacity.  Returns true when the window
  // *contents* changed: a non-empty round arrived or a non-empty round was
  // evicted.  Empty-in/empty-out keeps analyses warm in the cache.
  bool push_round(std::vector<ProbeSet> round);

  std::size_t rounds() const noexcept { return rounds_.size(); }
  std::size_t total_sets() const noexcept { return total_sets_; }

  // Concatenates the live rounds, oldest first, into *out (cleared first).
  // Rounds are emitted time-ascending and link-ordered by the stream, so
  // the result is sorted by (time, from, to) like a batch trace.
  void materialize(std::vector<ProbeSet>* out) const;

 private:
  std::size_t max_rounds_;
  std::deque<std::vector<ProbeSet>> rounds_;
  std::size_t total_sets_ = 0;
};

}  // namespace wmesh::serve

#include "serve/stream.h"

#include "clients/mobility_sim.h"
#include "mesh/topology.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "par/thread_pool.h"

namespace wmesh::serve {

FleetProbeStream::FleetProbeStream(const GeneratorConfig& config)
    : config_(config) {
  WMESH_SPAN("serve.fleet_build");
  // Fork order is load-bearing: master -> fleet -> one stream per fleet
  // network, then inside each network probe fork before client fork, b/g
  // before n -- the exact sequence generate_dataset() draws.  Any deviation
  // here silently breaks stream-vs-batch byte equivalence.
  Rng master(config.seed);
  Rng fleet_rng = master.fork();
  const auto fleet = make_fleet(config.fleet, fleet_rng);

  std::vector<Rng> net_rngs;
  net_rngs.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    net_rngs.push_back(master.fork());
  }

  // Trace slots are laid out first (b/g trace before n trace per network,
  // fleet order across networks) so parallel construction lands each trace
  // at the index generate_dataset would give it.
  struct Slot {
    std::size_t fleet_index;
    Standard standard;
    bool with_clients;
  };
  std::vector<Slot> slots;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (fleet[i].has_bg) slots.push_back({i, Standard::kBg, true});
    if (fleet[i].has_n) slots.push_back({i, Standard::kN, !fleet[i].has_bg});
  }
  traces_.resize(slots.size());

  // Channel-model construction (burst schedules, per-link offsets) is the
  // heavy part; build per network so both traces of a dual-radio network
  // draw from the shared per-network stream in order.
  par::parallel_for(fleet.size(), [&](std::size_t i) {
    const FleetNetwork& fn = fleet[i];
    Rng& net_rng = net_rngs[i];  // task-exclusive: one task per index
    const ChannelParams& chan = (fn.network.info().env == Environment::kOutdoor)
                                    ? config_.outdoor_channel
                                    : config_.indoor_channel;
    std::size_t slot = 0;
    while (slot < slots.size() && slots[slot].fleet_index != i) ++slot;
    for (; slot < slots.size() && slots[slot].fleet_index == i; ++slot) {
      auto trace = std::make_unique<Trace>();
      trace->info = fn.network.info();
      trace->info.standard = slots[slot].standard;
      trace->ap_count = static_cast<std::uint16_t>(fn.network.size());
      Rng probe_rng = net_rng.fork();
      trace->stream = std::make_unique<NetworkProbeStream>(
          fn.network, slots[slot].standard, chan, config_.probes,
          std::move(probe_rng));
      if (slots[slot].with_clients && config_.generate_clients) {
        const MobilityParams& mob =
            (fn.network.info().env == Environment::kOutdoor)
                ? config_.outdoor_mobility
                : config_.indoor_mobility;
        Rng client_rng = net_rng.fork();
        trace->client_samples = simulate_clients(fn.network, mob, client_rng);
      }
      traces_[slot] = std::move(trace);
    }
  });

  WMESH_LOG_INFO("serve.stream", kv("seed", config_.seed),
                 kv("traces", traces_.size()),
                 kv("duration_s", config_.probes.duration_s));
}

bool FleetProbeStream::finished() const noexcept {
  for (const auto& t : traces_) {
    if (!t->stream->finished()) return false;
  }
  return true;
}

bool FleetProbeStream::advance_round(std::vector<std::vector<ProbeSet>>* out) {
  if (finished()) return false;
  WMESH_SPAN("serve.fleet_round");
  // One task per trace: streams are independent (pre-forked RNGs), and each
  // writes only its own slot, so the round is byte-identical for any thread
  // count.  The per-stream report emission nests inside this region and
  // runs inline on the owning task's thread.
  par::parallel_for(traces_.size(), [&](std::size_t i) {
    traces_[i]->stream->advance_round(&(*out)[i]);
  });
  time_s_ += config_.probes.probe_interval_s;
  return true;
}

}  // namespace wmesh::serve

// MeshService: the live analysis state behind wmesh_serve.
//
// The service owns
//   * a FleetProbeStream (the simulated probe feed),
//   * one ReportWindow per (network, standard) trace,
//   * a live Dataset whose traces hold exactly the windowed probe sets
//     (plus full client traces), and
//   * an AnalysisCache keyed by the live traces.
//
// tick() advances the fleet one probe round; when a report boundary passes,
// each trace's new report round enters its window and -- only for traces
// whose window contents actually changed -- the live probe sets are
// rematerialized and that network's cache entries invalidated.  Queries
// render through the same core/report functions wmesh_analyze uses, over
// the live dataset with the shared cache, so after any stream prefix every
// served section is byte-identical to a batch run over the same window
// (tests/test_serve.cc pins this at 1/2/8 threads).
//
// The live Dataset's networks vector is sized once at construction and
// never reallocated: NetworkTrace addresses are the cache keys and must
// stay stable for the service's lifetime.
//
// Thread safety: tick() and query() serialize on one mutex, so a query
// always sees a complete window state and an advance never mutates a trace
// under a running analysis.  The san_smoke TSan wall races them on purpose.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/analysis_cache.h"
#include "obs/alerts.h"
#include "obs/tsdb.h"
#include "serve/health.h"
#include "serve/stream.h"
#include "serve/window.h"
#include "trace/records.h"

namespace wmesh::serve {

struct ServeConfig {
  GeneratorConfig gen;
  // Report rounds kept live per trace (4 x 300 s = 20 min of reports with
  // the paper defaults).
  std::size_t window_rounds = 4;
  // Time-series retention (obs v4); ticks are probe rounds.
  obs::TsdbOptions tsdb;
  // Alert rules evaluated once per tick (wmesh_serve --alerts=<file>).
  std::vector<obs::AlertRule> alerts;
};

struct QueryResult {
  bool ok = false;
  std::string body;  // payload when ok, error message otherwise
};

class MeshService {
 public:
  explicit MeshService(const ServeConfig& config);
  MeshService(const MeshService&) = delete;
  MeshService& operator=(const MeshService&) = delete;

  // Advances the stream one probe round and updates windows, live traces
  // and the cache.  Returns false (and changes nothing) once the stream is
  // exhausted.
  bool tick();

  // Runs one query command (see help_text()) and returns the rendered
  // section or an error.  Safe to call concurrently with tick().
  QueryResult query(const std::string& line);

  // One line per command, served for "help" and printed by the tool.
  static std::string help_text();

  // Introspection (also serialized against tick()).
  std::uint64_t rounds() const;
  double time_s() const;
  bool finished() const;

  // Deep copy of the live dataset, for equivalence tests.
  Dataset snapshot() const;

  // The time-series plane and alert engine (query methods lock
  // internally); exposed for tests and the bench harness.
  const obs::Tsdb& tsdb() const { return tsdb_; }
  const obs::AlertEngine& alerts() const { return alerts_; }
  const HealthBoard& health() const { return health_; }

 private:
  QueryResult dispatch(const std::string& line);
  QueryResult render_filtered(const std::string& what, std::uint32_t id);
  std::string stats_text() const;  // caller holds mu_

  ServeConfig config_;
  mutable std::mutex mu_;
  FleetProbeStream fleet_;
  std::vector<ReportWindow> windows_;
  std::vector<std::vector<ProbeSet>> round_sets_;  // scratch, one per trace
  Dataset live_;
  AnalysisCache cache_;
  obs::Tsdb tsdb_;
  obs::AlertEngine alerts_;
  HealthBoard health_;

  double next_report_s_ = 0.0;
  std::uint64_t rounds_ = 0;
  std::uint64_t report_rounds_ = 0;
  std::uint64_t ingested_sets_ = 0;
  std::uint64_t window_advances_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t queries_ = 0;
};

}  // namespace wmesh::serve

#include "serve/health.h"

#include <algorithm>
#include <cmath>

#include "core/analysis_cache.h"
#include "core/etx.h"
#include "core/exor.h"
#include "core/hidden.h"
#include "obs/metrics.h"
#include "util/text_table.h"

namespace wmesh::serve {
namespace {

// Hearing threshold the hidden/range report sections use (core/report.cc).
constexpr double kHearingThreshold = 0.10;

double clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

// Composite score: 100 minus one clamped penalty per dimension.  Weights
// are chosen so a healthy paper-like network sits in the 90s and each
// dimension alone cannot zero the score (documented in DESIGN.md §5k).
double score_of(const HealthCard& c) {
  const double p_inflation = clamp((c.etx_inflation - 1.0) * 40.0, 0.0, 30.0);
  const double p_hidden = clamp(c.hidden_density * 100.0, 0.0, 25.0);
  const double p_range = clamp((1.0 - c.range_ratio) * 25.0, 0.0, 20.0);
  const double p_stale = clamp(c.staleness * 5.0, 0.0, 15.0);
  const double p_churn = clamp(c.churn * 0.5, 0.0, 10.0);
  return clamp(100.0 - p_inflation - p_hidden - p_range - p_stale - p_churn,
               0.0, 100.0);
}

const char* std_label(Standard s) {
  return s == Standard::kBg ? "bg" : "n";
}

}  // namespace

void HealthBoard::init(const Dataset& live) {
  cards_.clear();
  cards_.reserve(live.networks.size());
  for (const auto& nt : live.networks) {
    HealthCard c;
    c.net_id = nt.info.id;
    c.standard = nt.info.standard;
    cards_.push_back(c);
  }
}

std::string HealthBoard::label(const HealthCard& card) {
  return "net=" + std::to_string(card.net_id) +
         ",std=" + std_label(card.standard);
}

void HealthBoard::update_trace(std::size_t i, const NetworkTrace& nt,
                               AnalysisCache& cache,
                               std::size_t invalidations) {
  HealthCard& c = cards_[i];
  c.computed = true;
  c.staleness = 0.0;
  c.churn = static_cast<double>(invalidations);

  // ETX-vs-hops inflation at the base rate, ETX1 with the report sections'
  // delivery floor so the cache entry is shared with `paths` queries.
  const EtxGraph& g =
      cache.etx_graph(nt, 0, EtxVariant::kEtx1, kEtxMinDelivery);
  const std::size_t n = g.ap_count();
  double ratio_sum = 0.0;
  std::size_t pairs = 0;
  std::vector<double> dist;
  std::vector<int> parent;
  for (ApId src = 0; src < n; ++src) {
    g.shortest_from_into(src, &dist, &parent);
    for (ApId dst = 0; dst < n; ++dst) {
      if (dst == src || dist[dst] >= kInfCost) continue;
      const int hops = EtxGraph::hops(parent, src, dst);
      if (hops <= 0) continue;
      ratio_sum += dist[dst] / static_cast<double>(hops);
      ++pairs;
    }
  }
  c.etx_inflation = pairs == 0 ? 1.0 : ratio_sum / static_cast<double>(pairs);

  // Hidden-triple density and hearing range at the base rate.
  const HearingGraph base(cache.success(nt, 0), kHearingThreshold);
  c.hidden_density = count_triples(base).hidden_fraction();
  const std::size_t base_range = base.range_pairs();

  // Range at the highest probed rate over the base rate (Fig 6.2's
  // fastest-rate endpoint); a silent network scores the neutral 1.
  const RateIndex top =
      static_cast<RateIndex>(rate_count(nt.info.standard) - 1);
  if (base_range == 0) {
    c.range_ratio = 1.0;
  } else {
    const HearingGraph fast(cache.success(nt, top), kHearingThreshold);
    c.range_ratio = static_cast<double>(fast.range_pairs()) /
                    static_cast<double>(base_range);
  }

  c.score = score_of(c);
}

void HealthBoard::mark_stale(std::size_t i) {
  HealthCard& c = cards_[i];
  c.staleness += 1.0;
  c.score = score_of(c);
}

void HealthBoard::publish() const {
#if !defined(WMESH_OBS_DISABLED)
  auto& reg = obs::Registry::instance();
  for (const HealthCard& c : cards_) {
    if (!c.computed) continue;
    const std::string suffix = "{" + label(c) + "}";
    reg.gauge("health.score" + suffix).set(c.score);
    reg.gauge("health.etx_inflation" + suffix).set(c.etx_inflation);
    reg.gauge("health.hidden_density" + suffix).set(c.hidden_density);
    reg.gauge("health.range_ratio" + suffix).set(c.range_ratio);
    reg.gauge("health.staleness" + suffix).set(c.staleness);
    reg.gauge("health.churn" + suffix).set(c.churn);
  }
#endif
}

std::string HealthBoard::render(long net_filter) const {
  std::string out = "== health ==\n";
  TextTable t;
  t.header({"net", "std", "score", "etx_infl", "hidden", "range", "stale",
            "churn"});
  std::size_t rows = 0;
  std::size_t pending = 0;
  for (const HealthCard& c : cards_) {
    if (net_filter >= 0 && c.net_id != static_cast<std::uint32_t>(net_filter)) {
      continue;
    }
    ++rows;
    if (!c.computed) {
      ++pending;
      t.add_row({std::to_string(c.net_id), std_label(c.standard), "-", "-",
                 "-", "-", "-", "-"});
      continue;
    }
    t.add_row({std::to_string(c.net_id), std_label(c.standard),
               fmt(c.score, 1), fmt(c.etx_inflation, 3),
               fmt(c.hidden_density, 3), fmt(c.range_ratio, 3),
               fmt(c.staleness, 0), fmt(c.churn, 0)});
  }
  if (rows == 0) {
    out += "(no such network)\n";
    return out;
  }
  out += t.render();
  if (pending > 0) {
    out += "(" + std::to_string(pending) +
           " trace(s) awaiting their first report window)\n";
  }
  return out;
}

}  // namespace wmesh::serve

#include "serve/query_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <mutex>
#include <thread>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/socket_util.h"

namespace wmesh::serve {
namespace {

// Longest accepted request line (including the newline).  Commands are a
// word and an optional network id; anything near this limit is garbage.
constexpr std::size_t kMaxLine = 4096;

void protocol_error(const char* what) noexcept {
  WMESH_COUNTER_INC("serve.protocol_errors");
  WMESH_LOG_DEBUG("serve.query", kv("protocol_error", what));
}

}  // namespace

struct QueryServer::Impl {
  int listen_fd = -1;
  std::string unix_path;
  Handler handler;
  std::atomic<bool> stop{false};
  std::atomic<bool> shutdown_requested{false};
  obs::WakePipe wake;
  std::thread thread;
  std::mutex stop_mu;  // same discipline as ExportServer::stop()
};

std::unique_ptr<QueryServer> QueryServer::start(const std::string& address,
                                                Handler handler,
                                                std::string* error) {
  std::string bound, unix_path;
  const int fd = obs::bind_listen_socket(address, &bound, &unix_path, error);
  if (fd < 0) return nullptr;

  auto server = std::unique_ptr<QueryServer>(new QueryServer());
  server->impl_ = std::make_unique<Impl>();
  server->impl_->listen_fd = fd;
  server->impl_->unix_path = unix_path;
  server->impl_->handler = std::move(handler);
  server->bound_ = bound;
  if (!server->impl_->wake.ok()) {
    *error = "cannot create shutdown wakeup pipe";
    ::close(fd);
    if (!unix_path.empty()) ::unlink(unix_path.c_str());
    return nullptr;
  }
  QueryServer* raw = server.get();
  server->impl_->thread = std::thread([raw] { raw->serve_loop(); });
  WMESH_LOG_INFO("serve.query", kv("event", "listening"), kv("addr", bound));
  return server;
}

QueryServer::~QueryServer() { stop(); }

void QueryServer::stop() noexcept {
  if (!impl_) return;
  std::lock_guard<std::mutex> lock(impl_->stop_mu);
  if (impl_->stop.exchange(true)) return;
  impl_->wake.wake();
  if (impl_->thread.joinable()) impl_->thread.join();
  if (impl_->listen_fd >= 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
  }
  if (!impl_->unix_path.empty()) ::unlink(impl_->unix_path.c_str());
}

bool QueryServer::shutdown_requested() const noexcept {
  return impl_ && impl_->shutdown_requested.load(std::memory_order_acquire);
}

void QueryServer::serve_loop() noexcept {
  Impl& im = *impl_;
  while (!im.stop.load(std::memory_order_acquire)) {
    pollfd pfds[2] = {{im.listen_fd, POLLIN, 0},
                      {im.wake.read_fd(), POLLIN, 0}};
    const int pr = ::poll(pfds, 2, -1);
    if (pr <= 0) continue;
    if (im.stop.load(std::memory_order_acquire)) break;
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(im.listen_fd, nullptr, nullptr);
    if (client < 0) continue;  // non-blocking listen fd: readiness lapsed
    WMESH_COUNTER_INC("serve.connections");
    serve_client(client);
    ::close(client);
  }
}

void QueryServer::serve_client(int fd) noexcept {
  Impl& im = *impl_;
  std::string buf;
  char chunk[1024];
  while (!im.stop.load(std::memory_order_acquire)) {
    // Drain complete lines before reading more.
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;  // blank keep-alives are fine
      Response resp = im.handler(line);
      if (resp.shutdown) {
        im.shutdown_requested.store(true, std::memory_order_release);
      }
      std::string out =
          resp.ok ? "ok " + std::to_string(resp.body.size()) + "\n" + resp.body
                  : "err " + resp.body + "\n";
      if (!resp.ok) protocol_error("rejected_command");
      if (!obs::send_all(fd, out.data(), out.size())) {
        // Peer vanished mid-response; the connection dies, the server
        // doesn't (send_all uses MSG_NOSIGNAL, so no SIGPIPE either).
        protocol_error("client_disconnect");
        return;
      }
      if (resp.close || resp.shutdown) return;
    }
    if (buf.size() >= kMaxLine) {
      const char msg[] = "err line too long\n";
      protocol_error("oversized_line");
      obs::send_all(fd, msg, sizeof(msg) - 1);
      return;
    }
    // Block on {client, wake} so a silent client never pins shutdown.
    pollfd pfds[2] = {{fd, POLLIN, 0}, {im.wake.read_fd(), POLLIN, 0}};
    const int pr = ::poll(pfds, 2, -1);
    if (pr <= 0) continue;
    if (im.stop.load(std::memory_order_acquire)) return;
    if ((pfds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      // EOF.  Bytes left without a newline are a truncated request.
      if (!buf.empty()) protocol_error("truncated_request");
      return;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace wmesh::serve

#include "serve/service.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <sstream>

#include "core/report.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/env.h"

namespace wmesh::serve {
namespace {

// Sections that accept an optional trailing network id.
bool takes_network_arg(const std::string& what) {
  return what == "etx" || what == "exor" || what == "anypath" ||
         what == "paths" || what == "hidden" || what == "health";
}

}  // namespace

MeshService::MeshService(const ServeConfig& config)
    : config_(config),
      fleet_(config.gen),
      tsdb_(config.tsdb),
      alerts_(config.alerts) {
  const std::size_t n = fleet_.trace_count();
  windows_.assign(n, ReportWindow(config_.window_rounds));
  round_sets_.resize(n);
  // Sized once, never reallocated: &live_.networks[i] keys the cache.
  live_.networks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    NetworkTrace nt;
    nt.info = fleet_.info(i);
    nt.ap_count = fleet_.ap_count(i);
    nt.client_samples = fleet_.client_samples(i);
    live_.networks.push_back(std::move(nt));
  }
  health_.init(live_);
  next_report_s_ = config_.gen.probes.report_interval_s;
  WMESH_LOG_INFO("serve", kv("event", "service_ready"), kv("traces", n),
                 kv("window_rounds", config_.window_rounds),
                 kv("alert_rules", alerts_.rule_count()));
}

bool MeshService::tick() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fleet_.finished()) return false;
  WMESH_SPAN("serve.tick");
  for (auto& v : round_sets_) v.clear();
  fleet_.advance_round(&round_sets_);
  ++rounds_;
  WMESH_COUNTER_INC("serve.rounds");

  std::size_t ingested = 0;
  for (const auto& v : round_sets_) ingested += v.size();
  ingested_sets_ += ingested;
  if (ingested > 0) WMESH_COUNTER_ADD("serve.reports_ingested", ingested);

  // Every trace shares one probe schedule (config.gen.probes), so report
  // boundaries are global: when one passes, every trace gets a window round
  // -- possibly empty, silent networks report nothing -- and only traces
  // whose window contents changed pay for rematerialization and cache
  // invalidation.
  const double t = fleet_.time_s();
  while (next_report_s_ <= t + 1e-9) {
    const auto rt = static_cast<std::uint32_t>(std::lround(next_report_s_));
    ++report_rounds_;
    for (std::size_t i = 0; i < round_sets_.size(); ++i) {
      auto& pending = round_sets_[i];
      std::size_t k = 0;
      while (k < pending.size() && pending[k].time_s == rt) ++k;
      std::vector<ProbeSet> round(
          std::make_move_iterator(pending.begin()),
          std::make_move_iterator(pending.begin() +
                                  static_cast<std::ptrdiff_t>(k)));
      pending.erase(pending.begin(),
                    pending.begin() + static_cast<std::ptrdiff_t>(k));
      if (windows_[i].push_round(std::move(round))) {
        ++window_advances_;
        WMESH_COUNTER_INC("serve.window_advances");
        windows_[i].materialize(&live_.networks[i].probe_sets);
        const std::size_t dropped =
            cache_.invalidate(&live_.networks[i]).entries;
        invalidations_ += dropped;
        if (dropped > 0) {
          WMESH_COUNTER_ADD("serve.cache_invalidations", dropped);
        }
        health_.update_trace(i, live_.networks[i], cache_, dropped);
      } else {
        health_.mark_stale(i);
      }
    }
    next_report_s_ += config_.gen.probes.report_interval_s;
  }
  WMESH_GAUGE_SET("serve.time_s", t);
  // The tick is the TSDB's virtual clock: publish the health gauges, then
  // sample the whole registry (draining in-flight counter batches so the
  // point reflects every probe just ingested), then evaluate alerts over
  // the freshly extended series.
  health_.publish();
  tsdb_.sample(
      obs::Registry::instance().snapshot(obs::SnapshotFlush::kActiveBatches),
      rounds_);
  alerts_.evaluate(tsdb_);
  return true;
}

QueryResult MeshService::query(const std::string& line) {
  const auto start = std::chrono::steady_clock::now();
  QueryResult result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    WMESH_SPAN("serve.query");
    ++queries_;
    result = dispatch(line);
  }
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  WMESH_COUNTER_INC("serve.queries");
  WMESH_HISTOGRAM_RECORD_BOUNDS("serve.query_us", us,
                                ::wmesh::obs::query_time_bounds_us());
  return result;
}

QueryResult MeshService::dispatch(const std::string& line) {
  std::istringstream in(line);
  std::string what, arg, extra, rest;
  in >> what >> arg >> extra >> rest;
  if (what.empty()) return {false, "empty command"};
  if (!rest.empty()) return {false, "too many arguments"};

  // `tsdb <family> [window]` is the one two-argument command.
  if (what == "tsdb") {
    if (arg.empty()) return {false, "usage: tsdb <family> [window]"};
    std::size_t window = 0;
    if (!extra.empty()) {
      const auto w = env::parse_u64(extra);
      if (!w) return {false, "bad window '" + extra + "'"};
      window = static_cast<std::size_t>(*w);
    }
    return {true, tsdb_.render(arg, window)};
  }
  if (!extra.empty()) return {false, "too many arguments"};
  if (!arg.empty() && !takes_network_arg(what)) {
    return {false, "'" + what + "' takes no argument"};
  }

  if (what == "help") return {true, help_text()};
  if (what == "stats") return {true, stats_text()};
  if (what == "alerts") return {true, alerts_.render()};

  if (!arg.empty()) {
    const auto id = env::parse_u64(arg);
    if (!id || *id > 0xffffffffULL) {
      return {false, "bad network id '" + arg + "'"};
    }
    if (what == "health") {
      return {true, health_.render(static_cast<long>(*id))};
    }
    return render_filtered(what, static_cast<std::uint32_t>(*id));
  }
  if (what == "health") return {true, health_.render()};

  if (what == "snr") return {true, report_snr(live_)};
  if (what == "lookup") return {true, report_lookup(live_)};
  if (what == "etx") return {true, report_etx(live_)};
  if (what == "exor") return {true, report_routing(live_, cache_)};
  if (what == "anypath") return {true, report_anypath(live_, cache_)};
  if (what == "paths") return {true, report_path_lengths(live_, cache_)};
  if (what == "hidden") return {true, report_hidden(live_, cache_)};
  if (what == "mobility") return {true, report_mobility(live_)};
  if (what == "traffic") return {true, report_traffic(live_)};
  return {false, "unknown command '" + what + "' (try help)"};
}

QueryResult MeshService::render_filtered(const std::string& what,
                                         std::uint32_t id) {
  // Per-network queries render over a copy: the shared cache keys on the
  // live trace addresses, and a one-network Dataset is cheap next to the
  // analysis itself.
  Dataset one;
  for (const auto& nt : live_.networks) {
    if (nt.info.id == id) one.networks.push_back(nt);
  }
  if (one.networks.empty()) {
    return {false, "unknown network id " + std::to_string(id)};
  }
  if (what == "etx") return {true, report_etx(one)};
  if (what == "exor") return {true, report_routing(one)};
  if (what == "anypath") return {true, report_anypath(one)};
  if (what == "paths") return {true, report_path_lengths(one)};
  if (what == "hidden") return {true, report_hidden(one)};
  return {false, "unknown command '" + what + "' (try help)"};
}

std::string MeshService::stats_text() const {
  const AnalysisCache::Stats cs = cache_.stats();
  std::size_t live_sets = 0;
  for (const auto& nt : live_.networks) live_sets += nt.probe_sets.size();
  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "== serve stats ==\n"
                "virtual_time_s       %.0f\n"
                "probe_rounds         %llu\n"
                "report_rounds        %llu\n"
                "traces               %zu\n"
                "window_rounds        %zu\n"
                "live_probe_sets      %zu\n"
                "ingested_probe_sets  %llu\n"
                "window_advances      %llu\n"
                "cache_invalidations  %llu\n"
                "queries              %llu\n"
                "cache_hits           %llu\n"
                "cache_misses         %llu\n"
                "cache_entries        %zu\n"
                "cache_bytes          %zu\n",
                fleet_.time_s(),
                static_cast<unsigned long long>(rounds_),
                static_cast<unsigned long long>(report_rounds_),
                live_.networks.size(), config_.window_rounds, live_sets,
                static_cast<unsigned long long>(ingested_sets_),
                static_cast<unsigned long long>(window_advances_),
                static_cast<unsigned long long>(invalidations_),
                static_cast<unsigned long long>(queries_),
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses), cs.entries,
                cs.bytes);
  return buf;
}

std::string MeshService::help_text() {
  return
      "commands (one per line; responses are 'ok <bytes>\\n<payload>' or "
      "'err <msg>\\n'):\n"
      "  snr           SNR dispersion summary over the live window\n"
      "  lookup        look-up table accuracy by scope\n"
      "  etx [net]     full pipeline at the ETX base rate\n"
      "  exor [net]    opportunistic-routing gains at 1 Mbit/s\n"
      "  anypath [net] three-way ETX / ExOR / multirate-anypath comparison\n"
      "  paths [net]   ETX1 shortest-path hop count summary\n"
      "  hidden [net]  hidden-triple medians per rate\n"
      "  mobility      prevalence & persistence by environment\n"
      "  traffic       client/AP load summary\n"
      "  health [net]  per-network health scorecards over the live window\n"
      "  alerts        alert rule states and firing/resolved totals\n"
      "  tsdb <family> [window]  time-series scorecard for one metric "
      "family\n"
      "  stats         live window / cache / ingest counters\n"
      "  help          this text\n"
      "  shutdown      stop the daemon (quit: close this connection)\n";
}

std::uint64_t MeshService::rounds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rounds_;
}

double MeshService::time_s() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fleet_.time_s();
}

bool MeshService::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fleet_.finished();
}

Dataset MeshService::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_;
}

}  // namespace wmesh::serve

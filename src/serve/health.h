// Per-network health scorecards over the live serve window (obs v4).
//
// The paper's continuous-measurement premise (§1) is that an operator
// watches per-network indicators drift, not one batch snapshot.  A
// HealthBoard keeps one card per (network, standard) trace and recomputes
// it from the live window -- through the shared AnalysisCache, so the
// intermediates stay warm for subsequent queries -- whenever that trace's
// window content changes at a report boundary:
//
//   etx_inflation   mean ETX1 path cost / hop count over reachable AP
//                   pairs at the base rate (>= 1; §5.1's "how much more
//                   than hop count does the real path cost")
//   hidden_density  hidden-triple fraction at the base rate (§6.1)
//   range_ratio     hearing-range pairs at the highest probed rate over
//                   the base rate (§6.2's Fig 6.2 endpoint)
//   staleness       report boundaries since the window content changed
//   churn           cache slots invalidated at the last content change
//
// The composite score starts at 100 and subtracts one clamped penalty per
// dimension (see health.cc for the exact weights); it is computed with
// serial arithmetic over cached analysis results, so cards are
// byte-deterministic at any wmesh::par thread count.
//
// Every dimension is also published as a labeled registry gauge --
// health.score{net=3,std=bg} and friends -- feeding the TSDB and the
// OpenMetrics exposition, which is what lets alert rules target one
// network's health.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "phy/rates.h"
#include "trace/records.h"

namespace wmesh {
class AnalysisCache;
}  // namespace wmesh

namespace wmesh::serve {

struct HealthCard {
  std::uint32_t net_id = 0;
  Standard standard = Standard::kBg;
  bool computed = false;  // at least one full window analysis ran
  double etx_inflation = 1.0;
  double hidden_density = 0.0;
  double range_ratio = 1.0;
  double staleness = 0.0;
  double churn = 0.0;
  double score = 100.0;
};

class HealthBoard {
 public:
  // One card per trace of `live`, in trace order (the same indexing
  // MeshService uses).
  void init(const Dataset& live);

  std::size_t size() const noexcept { return cards_.size(); }
  const HealthCard& card(std::size_t i) const { return cards_[i]; }

  // Full recompute of card i from its live trace: the window content
  // changed at a report boundary and `invalidations` cache slots died.
  void update_trace(std::size_t i, const NetworkTrace& nt,
                    AnalysisCache& cache, std::size_t invalidations);

  // A report boundary passed without changing trace i's window.
  void mark_stale(std::size_t i);

  // Publishes every card's dimensions as labeled registry gauges
  // (health.*{net=...,std=...}); no-op under -DWMESH_OBS_DISABLED.
  void publish() const;

  // Text scorecard table -- the `health` command payload.  With
  // `net_filter` >= 0 only that network's traces render.
  std::string render(long net_filter = -1) const;

  // The "net=N,std=S" label suffix of card i, exposed so tests can target
  // the exact TSDB series the board publishes.
  static std::string label(const HealthCard& card);

 private:
  std::vector<HealthCard> cards_;
};

}  // namespace wmesh::serve

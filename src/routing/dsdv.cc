#include "routing/dsdv.h"

#include <cmath>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace wmesh {

DsdvMesh::DsdvMesh(const SuccessMatrix& success, const DsdvParams& params)
    : n_(success.ap_count()),
      params_(params),
      link_cost_(n_ * n_, kInfCost),
      delivery_(n_ * n_, 0.0),
      table_(n_ * n_),
      own_seqno_(n_, 0),
      oracle_(success, params.variant, params.min_delivery) {
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = 0; b < n_; ++b) {
      if (a == b) continue;
      const double p_fwd =
          success.at(static_cast<ApId>(a), static_cast<ApId>(b));
      const double p_rev =
          success.at(static_cast<ApId>(b), static_cast<ApId>(a));
      delivery_[a * n_ + b] = p_fwd;
      link_cost_[a * n_ + b] =
          etx_link_cost(p_fwd, p_rev, params.variant, params.min_delivery);
    }
    // Self route: metric 0, next hop self.
    DsdvRoute& self = table_[a * n_ + a];
    self.next_hop = static_cast<int>(a);
    self.metric = 0.0;
  }
}

std::size_t DsdvMesh::step(Rng& rng) {
  WMESH_SPAN("dsdv.step");
  std::size_t changes = 0;

  // Age all foreign routes; expire the stale ones.
  for (std::size_t at = 0; at < n_; ++at) {
    for (std::size_t dst = 0; dst < n_; ++dst) {
      if (at == dst) continue;
      DsdvRoute& r = table_[at * n_ + dst];
      if (r.next_hop < 0) continue;
      if (++r.age_rounds > params_.route_timeout_rounds) {
        r = DsdvRoute{};
        ++changes;
      }
    }
  }

  // Everyone bumps its own sequence number and advertises.  Advertisements
  // are processed against the *previous* tables (classic synchronous DV
  // round), so snapshot them first.
  for (std::size_t a = 0; a < n_; ++a) {
    own_seqno_[a] += 2;  // even seqnos, as in DSDV
    DsdvRoute& self = table_[a * n_ + a];
    self.seqno = own_seqno_[a];
    self.age_rounds = 0;
  }
  const std::vector<DsdvRoute> snapshot = table_;

  for (std::size_t sender = 0; sender < n_; ++sender) {
    for (std::size_t rcv = 0; rcv < n_; ++rcv) {
      if (sender == rcv) continue;
      const double link = link_cost_[rcv * n_ + sender];
      if (link == kInfCost) continue;  // not a neighbour of rcv
      if (params_.lossy_control_plane &&
          !rng.bernoulli(delivery_[sender * n_ + rcv])) {
        continue;  // advertisement lost on air
      }
      // rcv ingests sender's snapshot table.
      for (std::size_t dst = 0; dst < n_; ++dst) {
        if (dst == rcv) continue;
        const DsdvRoute& adv = snapshot[sender * n_ + dst];
        if (adv.next_hop < 0) continue;
        const double metric = adv.metric + link;
        DsdvRoute& mine = table_[rcv * n_ + dst];
        // Relayed routes are one sequence generation (one round, +2) staler
        // than the destination's direct advertisement by construction of
        // the synchronous rounds.  Accepting a *better-metric* route within
        // one generation is DSDV's settling-time rule: without it, a bad
        // direct link would win on freshness alone forever.
        const bool acquire = mine.next_hop < 0 && adv.seqno > mine.seqno;
        const bool fresh_enough = adv.seqno + 2 >= mine.seqno;
        const bool better = fresh_enough && metric < mine.metric - 1e-12;
        const bool refresh = mine.next_hop == static_cast<int>(sender) &&
                             adv.seqno >= mine.seqno;
        if (acquire || better || refresh) {
          const bool changed = mine.next_hop != static_cast<int>(sender) ||
                               std::abs(mine.metric - metric) > 1e-9;
          mine.next_hop = static_cast<int>(sender);
          mine.metric = metric;
          mine.seqno = adv.seqno;
          mine.age_rounds = 0;
          if (changed) ++changes;
        }
      }
    }
  }
  WMESH_COUNTER_INC("dsdv.rounds");
  WMESH_COUNTER_ADD("dsdv.route_updates", changes);
  return changes;
}

std::size_t DsdvMesh::run_until_stable(Rng& rng, std::size_t stable_rounds,
                                       std::size_t max_rounds) {
  WMESH_SPAN("dsdv.converge");
  std::size_t quiet = 0;
  std::size_t rounds = 0;
  while (rounds < max_rounds && quiet < stable_rounds) {
    const std::size_t changes = step(rng);
    ++rounds;
    quiet = (changes == 0) ? quiet + 1 : 0;
  }
  WMESH_LOG_DEBUG("dsdv", kv("aps", n_), kv("rounds", rounds),
                  kv("stable", quiet >= stable_rounds));
  return rounds;
}

double DsdvMesh::forwarding_cost(ApId src, ApId dst) const {
  if (src == dst) return 0.0;
  double cost = 0.0;
  std::size_t cur = src;
  for (std::size_t hops = 0; hops <= n_; ++hops) {
    const DsdvRoute& r = table_[cur * n_ + dst];
    if (r.next_hop < 0) return kInfCost;
    const auto nh = static_cast<std::size_t>(r.next_hop);
    const double link = link_cost_[cur * n_ + nh];
    if (link == kInfCost) return kInfCost;
    cost += link;
    cur = nh;
    if (cur == dst) return cost;
  }
  return kInfCost;  // loop
}

double DsdvMesh::stretch(ApId src, ApId dst) const {
  const auto opt = oracle_.shortest_from(src);
  if (opt[dst] == kInfCost || opt[dst] <= 0.0) return 0.0;
  const double fwd = forwarding_cost(src, dst);
  if (fwd == kInfCost) return 0.0;
  return fwd / opt[dst];
}

}  // namespace wmesh

// Distance-vector mesh routing over lossy links (the §5 substrate).
//
// The paper's "traditional routing" is Roofnet-style: every node keeps an
// ETX estimate per neighbour from broadcast probes and runs a
// destination-sequenced distance-vector protocol (DSDV) to pick next hops.
// The §5 analysis treats that machinery as given and jumps straight to the
// converged shortest paths; this module builds the machinery itself, so the
// repository also answers *whether* and *how fast* the distributed protocol
// reaches the centralized optimum the analysis assumes.
//
// Model: rounds.  Each round every node broadcasts its route advertisement
// (its full table, bumped sequence number for itself); each neighbour
// receives it independently with the link's delivery probability.  Routes
// follow DSDV's rule: prefer newer sequence numbers, then lower metric;
// a route's metric is the advertised metric plus the local link's ETX cost.
// Stale routes expire after `route_timeout_rounds` without refresh.
#pragma once

#include <cstdint>
#include <vector>

#include "core/etx.h"
#include "core/exor.h"  // kEtxMinDelivery
#include "util/rng.h"

namespace wmesh {

struct DsdvParams {
  EtxVariant variant = EtxVariant::kEtx1;
  double min_delivery = kEtxMinDelivery;  // links below are not neighbours
  std::size_t route_timeout_rounds = 8;
  // When true, advertisements traverse the lossy channel (delivery drawn
  // per neighbour per round); when false every advertisement arrives --
  // the protocol's fixed point, useful for convergence tests.
  bool lossy_control_plane = true;
};

struct DsdvRoute {
  int next_hop = -1;               // -1: no route
  double metric = kInfCost;        // accumulated ETX cost
  std::uint32_t seqno = 0;         // destination-sequenced number
  std::size_t age_rounds = 0;      // rounds since last refresh
};

// The whole network's protocol state, advanced round by round.
class DsdvMesh {
 public:
  DsdvMesh(const SuccessMatrix& success, const DsdvParams& params);

  std::size_t node_count() const noexcept { return n_; }

  // Runs one protocol round (everyone advertises once).  Returns the number
  // of route entries that changed.
  std::size_t step(Rng& rng);

  // Runs rounds until no route changes for `stable_rounds` consecutive
  // rounds or `max_rounds` elapse; returns rounds executed.
  std::size_t run_until_stable(Rng& rng, std::size_t stable_rounds = 3,
                               std::size_t max_rounds = 200);

  const DsdvRoute& route(ApId at, ApId dst) const {
    return table_[static_cast<std::size_t>(at) * n_ + dst];
  }

  // Cost of the path the protocol would forward along from src to dst
  // (sum of link ETX costs following next hops); kInfCost when no route or
  // a forwarding loop is found.
  double forwarding_cost(ApId src, ApId dst) const;

  // Route stretch vs the centralized optimum: forwarding cost divided by
  // the Dijkstra cost (1.0 = optimal).  Returns 0 for unreachable pairs.
  double stretch(ApId src, ApId dst) const;

 private:
  std::size_t n_;
  DsdvParams params_;
  std::vector<double> link_cost_;   // n*n ETX link costs (inf if no link)
  std::vector<double> delivery_;    // n*n forward delivery probabilities
  std::vector<DsdvRoute> table_;    // n*n routes [at][dst]
  std::vector<std::uint32_t> own_seqno_;
  EtxGraph oracle_;                 // centralized reference
};

}  // namespace wmesh

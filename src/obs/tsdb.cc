#include "obs/tsdb.h"

#include <algorithm>

#include "util/text_table.h"

namespace wmesh::obs {

namespace {

// Fixed per-point payload of a scalar ring slot.
constexpr std::size_t kScalarPointBytes =
    sizeof(std::uint64_t) + sizeof(double);

}  // namespace

Tsdb::Tsdb(TsdbOptions options) : options_(options) {
  if (options_.points_per_series == 0) options_.points_per_series = 1;
}

std::size_t Tsdb::point_bytes(const Series& s) {
  if (s.kind != Kind::kHistogram) return kScalarPointBytes;
  // tick + count delta + sum delta + one delta per finite bound.
  return sizeof(std::uint64_t) * 2 + sizeof(double) +
         s.bounds.size() * sizeof(std::uint64_t);
}

Tsdb::Series& Tsdb::upsert(std::string_view name, Kind kind,
                           std::size_t bucket_bounds) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(std::string(name), Series{}).first;
    Series& s = it->second;
    s.kind = kind;
    if (kind == Kind::kHistogram) {
      s.hring.resize(options_.points_per_series);
      for (auto& p : s.hring) p.bucket_deltas.resize(bucket_bounds);
    } else {
      s.ring.resize(options_.points_per_series);
    }
    ++stats_.series;
  }
  return it->second;
}

void Tsdb::push_scalar(Series& s, std::uint64_t tick, double raw) {
  if (!s.seen) {
    // First sight establishes the baseline; no point is recorded, so a
    // warm process-global registry never shows up as one giant delta.
    s.seen = true;
    s.base = raw;
    s.last_raw = raw;
    return;
  }
  const double delta = raw - s.last_raw;
  s.last_raw = raw;
  const std::size_t cap = s.ring.size();
  if (s.count == cap) {
    // Fold the oldest point into the base and reuse its slot.
    s.base += s.ring[s.head].delta;
    s.head = (s.head + 1) % cap;
    --s.count;
    --stats_.points;
    stats_.bytes -= kScalarPointBytes;
    ++stats_.evictions;
  }
  ScalarPoint& slot = s.ring[(s.head + s.count) % cap];
  slot.tick = tick;
  slot.delta = delta;
  ++s.count;
  ++stats_.points;
  stats_.bytes += kScalarPointBytes;
}

void Tsdb::sample(const Snapshot& snap, std::uint64_t tick) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.samples;
  last_tick_ = tick;

  for (const auto& c : snap.counters) {
    push_scalar(upsert(c.name, Kind::kCounter, 0), tick,
                static_cast<double>(c.value));
  }
  for (const auto& g : snap.gauges) {
    push_scalar(upsert(g.name, Kind::kGauge, 0), tick, g.value);
  }
  for (const auto& h : snap.histograms) {
    Series& s = upsert(h.name, Kind::kHistogram, h.bounds.size());
    if (!s.seen) {
      s.seen = true;
      s.bounds = h.bounds;
      s.last_cum = h.cumulative;
      s.last_count = h.count;
      s.last_sum = h.sum;
      s.last_raw = static_cast<double>(h.count);
      s.base = s.last_raw;
      continue;
    }
    if (h.bounds.size() != s.bounds.size()) continue;  // layout changed
    const std::size_t cap = s.hring.size();
    if (s.count == cap) {
      s.base += static_cast<double>(s.hring[s.head].count_delta);
      s.head = (s.head + 1) % cap;
      --s.count;
      --stats_.points;
      stats_.bytes -= point_bytes(s);
      ++stats_.evictions;
    }
    HistPoint& slot = s.hring[(s.head + s.count) % cap];
    slot.tick = tick;
    slot.count_delta = h.count - s.last_count;
    slot.sum_delta = h.sum - s.last_sum;
    for (std::size_t i = 0; i < s.bounds.size(); ++i) {
      slot.bucket_deltas[i] = h.cumulative[i] - s.last_cum[i];
    }
    s.last_count = h.count;
    s.last_sum = h.sum;
    s.last_cum = h.cumulative;
    s.last_raw = static_cast<double>(h.count);
    ++s.count;
    ++stats_.points;
    stats_.bytes += point_bytes(s);
  }
  mirror_locked();
}

void Tsdb::mirror_locked() {
  WMESH_GAUGE_SET("tsdb.points", stats_.points);
  WMESH_GAUGE_SET("tsdb.bytes", stats_.bytes);
  WMESH_GAUGE_SET("tsdb.series", stats_.series);
  WMESH_COUNTER_INC("tsdb.samples");
  if (stats_.evictions > mirrored_evictions_) {
    WMESH_COUNTER_ADD("tsdb.evictions",
                      stats_.evictions - mirrored_evictions_);
    mirrored_evictions_ = stats_.evictions;
  }
}

Tsdb::Stats Tsdb::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint64_t Tsdb::last_tick() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_tick_;
}

const Tsdb::Series* Tsdb::find(std::string_view name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

bool Tsdb::has_series(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return find(name) != nullptr;
}

std::vector<std::string> Tsdb::series_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

Tsdb::WindowSum Tsdb::window_sum(const Series& s, std::size_t window,
                                 std::vector<std::uint64_t>* buckets) const {
  WindowSum w;
  const std::uint64_t min_tick =
      (window == 0 || last_tick_ < window) ? 0 : last_tick_ - window;
  if (buckets != nullptr) buckets->assign(s.bounds.size(), 0);
  const std::size_t cap =
      s.kind == Kind::kHistogram ? s.hring.size() : s.ring.size();
  for (std::size_t i = 0; i < s.count; ++i) {
    const std::size_t at = (s.head + i) % cap;
    const std::uint64_t tick =
        s.kind == Kind::kHistogram ? s.hring[at].tick : s.ring[at].tick;
    if (tick <= min_tick && window != 0) continue;
    if (w.points == 0) w.first_tick = tick;
    w.last_tick = tick;
    ++w.points;
    if (s.kind == Kind::kHistogram) {
      const HistPoint& p = s.hring[at];
      w.increase += static_cast<double>(p.count_delta);
      w.sum_delta += p.sum_delta;
      if (buckets != nullptr) {
        for (std::size_t b = 0; b < p.bucket_deltas.size(); ++b) {
          (*buckets)[b] += p.bucket_deltas[b];
        }
      }
    } else {
      w.increase += s.ring[at].delta;
    }
  }
  return w;
}

std::size_t Tsdb::points_in(std::string_view name, std::size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* s = find(name);
  if (s == nullptr) return 0;
  return window_sum(*s, window, nullptr).points;
}

double Tsdb::value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* s = find(name);
  return s == nullptr ? 0.0 : s->last_raw;
}

double Tsdb::increase(std::string_view name, std::size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* s = find(name);
  if (s == nullptr) return 0.0;
  return window_sum(*s, window, nullptr).increase;
}

double Tsdb::rate(std::string_view name, std::size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* s = find(name);
  if (s == nullptr) return 0.0;
  const WindowSum w = window_sum(*s, window, nullptr);
  if (w.points == 0) return 0.0;
  // Each point covers the ticks since its predecessor; the oldest windowed
  // point's span reaches back one inter-sample gap, approximated as the
  // window mean so sparse tick sequences stay sane.
  const std::uint64_t span = window == 0
                                 ? (w.last_tick - w.first_tick) + 1
                                 : std::min<std::uint64_t>(window, last_tick_);
  if (span == 0) return 0.0;
  return w.increase / static_cast<double>(span);
}

double Tsdb::quantile_over_time(std::string_view name, double q,
                                std::size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* s = find(name);
  if (s == nullptr || s->kind != Kind::kHistogram) return 0.0;
  std::vector<std::uint64_t> cum;
  const WindowSum w = window_sum(*s, window, &cum);
  const double total = w.increase;
  if (total <= 0.0) return 0.0;
  // Histogram::quantile semantics over the windowed distribution: report
  // the first bucket whose cumulative count reaches q * total; overflow
  // falls back to the last finite bound.
  const double target = q * total;
  for (std::size_t i = 0; i < cum.size(); ++i) {
    if (static_cast<double>(cum[i]) + 1e-9 >= target) return s->bounds[i];
  }
  return s->bounds.empty() ? 0.0 : s->bounds.back();
}

std::vector<double> Tsdb::deltas(std::string_view name,
                                 std::size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<double> out;
  const Series* s = find(name);
  if (s == nullptr) return out;
  const std::uint64_t min_tick =
      (window == 0 || last_tick_ < window) ? 0 : last_tick_ - window;
  const std::size_t cap =
      s->kind == Kind::kHistogram ? s->hring.size() : s->ring.size();
  for (std::size_t i = 0; i < s->count; ++i) {
    const std::size_t at = (s->head + i) % cap;
    if (s->kind == Kind::kHistogram) {
      const HistPoint& p = s->hring[at];
      if (p.tick <= min_tick && window != 0) continue;
      out.push_back(static_cast<double>(p.count_delta));
    } else {
      const ScalarPoint& p = s->ring[at];
      if (p.tick <= min_tick && window != 0) continue;
      out.push_back(p.delta);
    }
  }
  return out;
}

std::string Tsdb::render(std::string_view name, std::size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Series* s = find(name);
  std::string out = "== tsdb ";
  out += name;
  out += " ==\n";
  if (s == nullptr) {
    out += "(no such series)\n";
    return out;
  }
  const WindowSum w = window_sum(*s, window, nullptr);
  const char* kind = s->kind == Kind::kCounter
                         ? "counter"
                         : s->kind == Kind::kGauge ? "gauge" : "histogram";
  TextTable t;
  t.header({"field", "value"});
  t.add_row({"kind", kind});
  t.add_row({"last_tick", std::to_string(last_tick_)});
  t.add_row({"retained_points", std::to_string(s->count)});
  t.add_row({"window_ticks", window == 0 ? "all" : std::to_string(window)});
  t.add_row({"window_points", std::to_string(w.points)});
  t.add_row({"increase", fmt(w.increase, 3)});
  {
    const std::uint64_t span =
        w.points == 0 ? 0
                      : (window == 0 ? (w.last_tick - w.first_tick) + 1
                                     : std::min<std::uint64_t>(window,
                                                               last_tick_));
    const double r =
        span == 0 ? 0.0 : w.increase / static_cast<double>(span);
    t.add_row({"rate_per_tick", fmt(r, 4)});
  }
  if (s->kind == Kind::kGauge) {
    t.add_row({"last_value", fmt(s->last_raw, 3)});
  }
  if (s->kind == Kind::kHistogram) {
    // Windowed quantiles, computed like quantile_over_time.
    std::vector<std::uint64_t> cum;
    (void)window_sum(*s, window, &cum);
    const double total = w.increase;
    auto qat = [&](double q) {
      if (total <= 0.0) return 0.0;
      const double target = q * total;
      for (std::size_t i = 0; i < cum.size(); ++i) {
        if (static_cast<double>(cum[i]) + 1e-9 >= target) return s->bounds[i];
      }
      return s->bounds.empty() ? 0.0 : s->bounds.back();
    };
    t.add_row({"window_sum", fmt(w.sum_delta, 3)});
    t.add_row({"p50", fmt(qat(0.50), 3)});
    t.add_row({"p90", fmt(qat(0.90), 3)});
    t.add_row({"p99", fmt(qat(0.99), 3)});
  }
  out += t.render();
  return out;
}

}  // namespace wmesh::obs

#include "obs/resource.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/metrics.h"

namespace wmesh::obs {
namespace {

// Reads "VmRSS:   1234 kB"-style lines from /proc/self/status (or the
// WMESH_PROC_STATUS_PATH override, which tests point at fixtures).  Returns
// false -- with both fields zeroed -- when the file cannot be opened
// (non-Linux, /proc unmounted), so callers can count the failure instead of
// silently reporting garbage.
bool read_proc_status(std::uint64_t* rss_bytes,
                      std::uint64_t* hwm_bytes) noexcept {
  *rss_bytes = 0;
  *hwm_bytes = 0;
  const char* path = std::getenv("WMESH_PROC_STATUS_PATH");
  if (path == nullptr) path = "/proc/self/status";
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return false;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned long long kb = 0;
    if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1) {
      *rss_bytes = static_cast<std::uint64_t>(kb) * 1024;
    } else if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
      *hwm_bytes = static_cast<std::uint64_t>(kb) * 1024;
    }
  }
  std::fclose(f);
  return true;
}

}  // namespace

ResourceUsage sample_resources() noexcept {
  ResourceUsage u;
  std::uint64_t rss = 0, hwm = 0;
  if (!read_proc_status(&rss, &hwm)) {
    // Degrade to zeroed proc fields; getrusage below still supplies CPU
    // and max RSS.  The counter makes the degradation observable.
    WMESH_COUNTER_INC("resource.sampler_errors");
  }
  u.current_rss_bytes = rss;
  u.peak_rss_bytes = std::max(rss, hwm);
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  std::memset(&ru, 0, sizeof(ru));
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    u.user_cpu_s = static_cast<double>(ru.ru_utime.tv_sec) +
                   static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
    u.sys_cpu_s = static_cast<double>(ru.ru_stime.tv_sec) +
                  static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
    // ru_maxrss is KiB on Linux; the /proc numbers win when available.
    u.peak_rss_bytes = std::max(
        u.peak_rss_bytes, static_cast<std::uint64_t>(ru.ru_maxrss) * 1024);
  }
#endif
  return u;
}

ResourceSampler::ResourceSampler(std::chrono::milliseconds period) {
  thread_ = std::thread([this, period] { loop(period); });
}

ResourceSampler::~ResourceSampler() { stop(); }

void ResourceSampler::stop() noexcept {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void ResourceSampler::loop(std::chrono::milliseconds period) noexcept {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, period, [this] { return stop_requested_; })) {
      return;
    }
    lock.unlock();
    const ResourceUsage u = sample_resources();
    WMESH_GAUGE_SET("proc.rss_bytes", u.current_rss_bytes);
    WMESH_GAUGE_SET("proc.peak_rss_bytes", u.peak_rss_bytes);
    lock.lock();
    ++samples_;
    sampled_peak_rss_ = std::max(sampled_peak_rss_, u.peak_rss_bytes);
  }
}

ResourceUsage ResourceSampler::usage() const noexcept {
  ResourceUsage u = sample_resources();
  std::lock_guard<std::mutex> lock(mu_);
  u.samples = samples_;
  u.peak_rss_bytes = std::max(u.peak_rss_bytes, sampled_peak_rss_);
  return u;
}

}  // namespace wmesh::obs

#include "obs/openmetrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace wmesh::obs {
namespace {

// Family names: wmesh_ prefix, dots (and any other non-metric character)
// become underscores.
std::string family_name(std::string_view raw) {
  std::string out = "wmesh_";
  for (char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

// Shortest round-trip-ish rendering; exposition values are doubles.
std::string fmt_value(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer a shorter form when it parses back exactly.
  char shorter[64];
  std::snprintf(shorter, sizeof(shorter), "%g", v);
  if (std::strtod(shorter, nullptr) == v) return shorter;
  return buf;
}

void append_label_value(std::string& out, std::string_view v) {
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

void append_span_gauge(std::string& out, const char* family,
                       const std::vector<Snapshot::SpanRow>& spans,
                       double Snapshot::SpanRow::* field) {
  out += "# TYPE ";
  out += family;
  out += " gauge\n";
  for (const auto& sp : spans) {
    out += family;
    out += "{span=\"";
    append_label_value(out, sp.name);
    out += "\"} ";
    out += fmt_value(sp.*field);
    out += '\n';
  }
}

}  // namespace

std::string render_openmetrics(const Snapshot& s) {
  std::string out;
  for (const auto& c : s.counters) {
    const std::string f = family_name(c.name);
    out += "# TYPE " + f + " counter\n";
    out += f + "_total " + std::to_string(c.value) + '\n';
  }
  for (const auto& g : s.gauges) {
    const std::string f = family_name(g.name);
    out += "# TYPE " + f + " gauge\n";
    out += f + ' ' + fmt_value(g.value) + '\n';
  }
  for (const auto& h : s.histograms) {
    const std::string f = family_name(h.name);
    out += "# TYPE " + f + " histogram\n";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      out += f + "_bucket{le=\"" + fmt_value(h.bounds[i]) + "\"} " +
             std::to_string(h.cumulative[i]) + '\n';
    }
    out += f + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + '\n';
    out += f + "_sum " + fmt_value(h.sum) + '\n';
    out += f + "_count " + std::to_string(h.count) + '\n';
  }
  if (!s.spans.empty()) {
    // Shared span families, labeled by span name: exact counts and totals
    // as counters, the distribution summaries as gauges, and the causal
    // parent edges as a two-label counter family.
    out += "# TYPE wmesh_span_count counter\n";
    for (const auto& sp : s.spans) {
      out += "wmesh_span_count_total{span=\"";
      append_label_value(out, sp.name);
      out += "\"} " + std::to_string(sp.count) + '\n';
    }
    out += "# TYPE wmesh_span_us counter\n";
    for (const auto& sp : s.spans) {
      out += "wmesh_span_us_total{span=\"";
      append_label_value(out, sp.name);
      out += "\"} " + fmt_value(sp.total_us) + '\n';
    }
    out += "# TYPE wmesh_span_self_us counter\n";
    for (const auto& sp : s.spans) {
      out += "wmesh_span_self_us_total{span=\"";
      append_label_value(out, sp.name);
      out += "\"} " + fmt_value(sp.self_us) + '\n';
    }
    out += "# TYPE wmesh_span_parent counter\n";
    for (const auto& sp : s.spans) {
      for (const auto& [pname, pcount] : sp.parents) {
        out += "wmesh_span_parent_total{span=\"";
        append_label_value(out, sp.name);
        out += "\",parent=\"";
        append_label_value(out, pname);
        out += "\"} " + std::to_string(pcount) + '\n';
      }
    }
    append_span_gauge(out, "wmesh_span_min_us", s.spans,
                      &Snapshot::SpanRow::min_us);
    append_span_gauge(out, "wmesh_span_max_us", s.spans,
                      &Snapshot::SpanRow::max_us);
    append_span_gauge(out, "wmesh_span_p50_us", s.spans,
                      &Snapshot::SpanRow::p50_us);
    append_span_gauge(out, "wmesh_span_p90_us", s.spans,
                      &Snapshot::SpanRow::p90_us);
    append_span_gauge(out, "wmesh_span_p99_us", s.spans,
                      &Snapshot::SpanRow::p99_us);
  }
  out += "# EOF\n";
  return out;
}

std::string OmSample::label(std::string_view key) const {
  for (const auto& [k, v] : labels) {
    if (k == key) return v;
  }
  return {};
}

const OmSample* OmDocument::find(
    std::string_view name,
    const std::vector<std::pair<std::string, std::string>>& want) const {
  for (const OmSample& s : samples) {
    if (s.name != name) continue;
    bool ok = true;
    for (const auto& [k, v] : want) {
      if (s.label(k) != v) {
        ok = false;
        break;
      }
    }
    if (ok) return &s;
  }
  return nullptr;
}

namespace {

bool fail(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
  return false;
}

// Parses `{k="v",...}` starting at text[i] == '{'.  Advances i past '}'.
bool parse_labels(std::string_view line, std::size_t& i, OmSample* s,
                  std::string* error) {
  ++i;  // '{'
  while (i < line.size() && line[i] != '}') {
    std::string key;
    while (i < line.size() && line[i] != '=') key += line[i++];
    if (i >= line.size() || line[i] != '=' || i + 1 >= line.size() ||
        line[i + 1] != '"') {
      return fail(error, "malformed label in: " + std::string(line));
    }
    i += 2;  // = and opening quote
    std::string value;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) {
        ++i;
        value += line[i] == 'n' ? '\n' : line[i];
      } else {
        value += line[i];
      }
      ++i;
    }
    if (i >= line.size()) {
      return fail(error, "unterminated label value in: " + std::string(line));
    }
    ++i;  // closing quote
    s->labels.emplace_back(std::move(key), std::move(value));
    if (i < line.size() && line[i] == ',') ++i;
  }
  if (i >= line.size()) {
    return fail(error, "unterminated label set in: " + std::string(line));
  }
  ++i;  // '}'
  return true;
}

}  // namespace

bool parse_openmetrics(std::string_view text, OmDocument* out,
                       std::string* error) {
  *out = OmDocument{};
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    if (out->saw_eof) {
      return fail(error, "content after # EOF: " + std::string(line));
    }
    if (line[0] == '#') {
      if (line == "# EOF") {
        out->saw_eof = true;
        continue;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos) {
          return fail(error, "malformed TYPE line: " + std::string(line));
        }
        const std::string name(rest.substr(0, sp));
        const std::string type(rest.substr(sp + 1));
        if (type != "counter" && type != "gauge" && type != "histogram") {
          return fail(error, "unsupported metric type: " + std::string(line));
        }
        if (!out->types.emplace(name, type).second) {
          return fail(error, "duplicate TYPE for family: " + name);
        }
        continue;
      }
      if (line.rfind("# HELP ", 0) == 0) continue;  // tolerated, not emitted
      return fail(error, "unrecognized comment line: " + std::string(line));
    }
    OmSample s;
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') {
      s.name += line[i++];
    }
    if (s.name.empty()) {
      return fail(error, "missing sample name in: " + std::string(line));
    }
    if (i < line.size() && line[i] == '{') {
      if (!parse_labels(line, i, &s, error)) return false;
    }
    if (i >= line.size() || line[i] != ' ') {
      return fail(error, "missing value in: " + std::string(line));
    }
    ++i;
    const std::string value_str(line.substr(i));
    char* end = nullptr;
    s.value = std::strtod(value_str.c_str(), &end);
    if (end == value_str.c_str() || *end != '\0') {
      return fail(error, "malformed value in: " + std::string(line));
    }
    out->samples.push_back(std::move(s));
  }
  if (!out->saw_eof) return fail(error, "missing # EOF terminator");
  return true;
}

namespace {

// Family a sample belongs to: strips the recognized suffix, if any.
std::string family_of(const OmDocument& doc, const std::string& sample_name) {
  if (doc.types.count(sample_name) != 0) return sample_name;
  for (const char* suffix : {"_total", "_bucket", "_sum", "_count"}) {
    const std::size_t n = std::string_view(suffix).size();
    if (sample_name.size() > n &&
        sample_name.compare(sample_name.size() - n, n, suffix) == 0) {
      const std::string base = sample_name.substr(0, sample_name.size() - n);
      if (doc.types.count(base) != 0) return base;
    }
  }
  return {};
}

double parse_le(const std::string& le) {
  if (le == "+Inf") return std::numeric_limits<double>::infinity();
  return std::strtod(le.c_str(), nullptr);
}

}  // namespace

bool lint_openmetrics(const OmDocument& doc, std::string* error) {
  if (!doc.saw_eof) return fail(error, "missing # EOF terminator");
  // Histogram bucket state, keyed by family: buckets must appear in
  // ascending `le` order with non-decreasing cumulative counts.
  struct HistState {
    double last_le = -std::numeric_limits<double>::infinity();
    double last_cum = 0.0;
    bool saw_inf = false;
    double inf_value = 0.0;
    bool saw_count = false;
    double count_value = 0.0;
  };
  std::map<std::string, HistState> hists;

  for (const OmSample& s : doc.samples) {
    const std::string family = family_of(doc, s.name);
    if (family.empty()) {
      return fail(error, "sample without TYPE declaration: " + s.name);
    }
    const std::string& type = doc.types.at(family);
    if (!std::isfinite(s.value)) {
      return fail(error, "non-finite value for: " + s.name);
    }
    if (type == "counter") {
      if (s.name != family + "_total") {
        return fail(error, "counter sample must use _total: " + s.name);
      }
      if (s.value < 0) {
        return fail(error, "negative counter: " + s.name);
      }
    } else if (type == "gauge") {
      if (s.name != family) {
        return fail(error, "gauge sample has unexpected suffix: " + s.name);
      }
    } else if (type == "histogram") {
      HistState& h = hists[family];
      if (s.name == family + "_bucket") {
        const std::string le = s.label("le");
        if (le.empty()) {
          return fail(error, "bucket without le label: " + family);
        }
        const double bound = parse_le(le);
        if (bound <= h.last_le) {
          return fail(error, "bucket bounds not ascending: " + family);
        }
        if (s.value + 1e-9 < h.last_cum) {
          return fail(error, "bucket counts not cumulative: " + family);
        }
        h.last_le = bound;
        h.last_cum = s.value;
        if (std::isinf(bound)) {
          h.saw_inf = true;
          h.inf_value = s.value;
        }
      } else if (s.name == family + "_count") {
        h.saw_count = true;
        h.count_value = s.value;
      } else if (s.name != family + "_sum") {
        return fail(error, "unexpected histogram sample: " + s.name);
      }
    }
  }
  for (const auto& [family, h] : hists) {
    if (!h.saw_inf) {
      return fail(error, "histogram missing +Inf bucket: " + family);
    }
    if (!h.saw_count) {
      return fail(error, "histogram missing _count: " + family);
    }
    if (h.inf_value != h.count_value) {
      return fail(error, "+Inf bucket != _count for: " + family);
    }
  }
  return true;
}

bool check_counters_monotone(const OmDocument& earlier,
                             const OmDocument& later, std::string* error) {
  for (const OmSample& s : earlier.samples) {
    const std::string family = family_of(earlier, s.name);
    if (family.empty() || earlier.types.at(family) != "counter") continue;
    const OmSample* after = later.find(s.name, s.labels);
    if (after == nullptr) {
      return fail(error, "counter disappeared between scrapes: " + s.name);
    }
    if (after->value + 1e-9 < s.value) {
      return fail(error, "counter went backwards: " + s.name);
    }
  }
  return true;
}

}  // namespace wmesh::obs

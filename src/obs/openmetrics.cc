#include "obs/openmetrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace wmesh::obs {
namespace {

// Family names: wmesh_ prefix, dots (and any other non-metric character)
// become underscores.
std::string family_name(std::string_view raw) {
  std::string out = "wmesh_";
  for (char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

// Shortest round-trip-ish rendering; exposition values are doubles.
std::string fmt_value(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer a shorter form when it parses back exactly.
  char shorter[64];
  std::snprintf(shorter, sizeof(shorter), "%g", v);
  if (std::strtod(shorter, nullptr) == v) return shorter;
  return buf;
}

void append_label_value(std::string& out, std::string_view v) {
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

using LabelList = std::vector<std::pair<std::string, std::string>>;

// Splits a registry name with the labeled-series convention -- base
// name plus an optional "{k=v,k2=v2}" suffix ("health.score{net=3,std=bg}")
// -- into the base and its label pairs.  A malformed suffix is kept as part
// of the base so nothing silently disappears from the exposition.
void split_registry_name(const std::string& raw, std::string* base,
                         LabelList* labels) {
  labels->clear();
  const std::size_t brace = raw.find('{');
  if (brace == std::string::npos || raw.back() != '}') {
    *base = raw;
    return;
  }
  *base = raw.substr(0, brace);
  std::size_t i = brace + 1;
  while (i < raw.size() - 1) {
    std::size_t comma = raw.find(',', i);
    if (comma == std::string::npos || comma > raw.size() - 1) {
      comma = raw.size() - 1;
    }
    const std::string item = raw.substr(i, comma - i);
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      // Not k=v: treat the whole raw name as unlabeled.
      *base = raw;
      labels->clear();
      return;
    }
    labels->emplace_back(item.substr(0, eq), item.substr(eq + 1));
    i = comma + 1;
  }
}

std::string render_labels(const LabelList& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    append_label_value(out, labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

// One family's annotation block: TYPE + HELP + UNIT.
void append_family_header(std::string& out, const std::string& family,
                          const char* type) {
  const FamilyReference ref = openmetrics_reference(family);
  out += "# TYPE " + family + ' ' + type + '\n';
  out += "# HELP " + family + ' ' + ref.help + '\n';
  out += "# UNIT " + family + ' ' + ref.unit + '\n';
}

// Grouped sample lines of one kind: family -> rendered lines in snapshot
// (name-sorted) order.  The grouping matters because the registry sorts
// "health.score{...}" series after any longer bare name sharing the
// prefix, so adjacent-run emission could declare a family twice.
struct FamilyGroup {
  std::map<std::string, std::string> lines;  // family -> concatenated lines

  std::string& of(const std::string& family) { return lines[family]; }
};

void append_span_gauge(std::string& out, const char* family,
                       const std::vector<Snapshot::SpanRow>& spans,
                       double Snapshot::SpanRow::* field) {
  append_family_header(out, family, "gauge");
  for (const auto& sp : spans) {
    out += family;
    out += "{span=\"";
    append_label_value(out, sp.name);
    out += "\"} ";
    out += fmt_value(sp.*field);
    out += '\n';
  }
}

bool ends_with(std::string_view name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

}  // namespace

FamilyReference openmetrics_reference(std::string_view family) {
  // The central name -> (help, unit) table.  Every family the library
  // exposes should have a curated entry; the fallback below guarantees a
  // syntactically complete annotation for anything new, so the lint can
  // require HELP and UNIT unconditionally.
  struct Entry {
    std::string_view family;
    std::string_view help;
    std::string_view unit;
  };
  static constexpr Entry kTable[] = {
      // serve plane
      {"wmesh_serve_rounds", "probe rounds ingested by the serve stream",
       "rounds"},
      {"wmesh_serve_reports_ingested",
       "probe sets ingested into live windows", "probesets"},
      {"wmesh_serve_window_advances",
       "report-window advances across all traces", "advances"},
      {"wmesh_serve_cache_invalidations",
       "analysis-cache slots dropped by window advances", "slots"},
      {"wmesh_serve_queries", "queries answered by the serve endpoint",
       "queries"},
      {"wmesh_serve_query_us", "serve query latency", "microseconds"},
      {"wmesh_serve_protocol_errors",
       "malformed or oversized query-protocol lines", "errors"},
      {"wmesh_serve_time_s", "virtual time of the live probe stream",
       "seconds"},
      // analysis cache
      {"wmesh_cache_hits", "analysis-cache lookups served from memory",
       "lookups"},
      {"wmesh_cache_misses", "analysis-cache lookups that computed",
       "lookups"},
      {"wmesh_cache_bytes", "resident analysis-cache payload", "bytes"},
      {"wmesh_cache_entries", "computed analysis-cache slots", "slots"},
      // time-series plane (obs v4)
      {"wmesh_tsdb_points", "points retained across all TSDB rings",
       "points"},
      {"wmesh_tsdb_bytes", "exact retained TSDB payload", "bytes"},
      {"wmesh_tsdb_series", "live TSDB series", "series"},
      {"wmesh_tsdb_samples", "registry snapshots ingested by the TSDB",
       "samples"},
      {"wmesh_tsdb_evictions",
       "TSDB points folded into series bases by ring wraparound", "points"},
      {"wmesh_alerts_evaluations", "alert rule evaluations", "evaluations"},
      {"wmesh_alerts_fired", "alert rules that entered firing", "alerts"},
      {"wmesh_alerts_resolved", "alert rules that left firing", "alerts"},
      {"wmesh_alert_state",
       "alert rule state (0 inactive, 1 pending, 2 firing)", "state"},
      // per-network health scorecards
      {"wmesh_health_score", "composite per-network health score (0-100)",
       "score"},
      {"wmesh_health_etx_inflation",
       "mean ETX1 path cost over hop count at the base rate", "ratio"},
      {"wmesh_health_hidden_density",
       "hidden-triple fraction at the base rate", "fraction"},
      {"wmesh_health_range_ratio",
       "hearing range at the top rate over the base rate", "ratio"},
      {"wmesh_health_staleness",
       "report boundaries since the live window changed", "boundaries"},
      {"wmesh_health_churn",
       "cache slots invalidated at the last window change", "slots"},
      // store / fleet
      {"wmesh_store_shards_opened",
       "fleet shards opened (loaded or fully verified)", "shards"},
      {"wmesh_store_shards_skipped",
       "fleet shards skipped because manifest row counts prove they cannot "
       "contribute to the requested analysis",
       "shards"},
      {"wmesh_store_fleet_peak_rss",
       "max resident set sampled at fleet shard boundaries (the out-of-core "
       "working set)",
       "bytes"},
      // thread pool / process
      {"wmesh_par_pool_threads", "worker threads in the wmesh::par pool",
       "threads"},
      {"wmesh_par_pool_queue_depth", "tasks waiting in the pool queue",
       "tasks"},
      {"wmesh_par_tasks", "tasks executed by the pool", "tasks"},
      {"wmesh_par_regions", "parallel regions entered", "regions"},
      {"wmesh_proc_rss_bytes", "resident set size", "bytes"},
      {"wmesh_proc_peak_rss_bytes", "peak resident set size", "bytes"},
      {"wmesh_export_scrapes", "OpenMetrics scrapes served", "scrapes"},
      // shared span families
      {"wmesh_span_count", "span executions", "spans"},
      {"wmesh_span_us", "span wall time", "microseconds"},
      {"wmesh_span_self_us", "span self time (exclusive of children)",
       "microseconds"},
      {"wmesh_span_parent", "span executions under one parent span",
       "spans"},
      {"wmesh_span_min_us", "minimum span wall time", "microseconds"},
      {"wmesh_span_max_us", "maximum span wall time", "microseconds"},
      {"wmesh_span_p50_us", "median span wall time", "microseconds"},
      {"wmesh_span_p90_us", "90th-percentile span wall time",
       "microseconds"},
      {"wmesh_span_p99_us", "99th-percentile span wall time",
       "microseconds"},
  };
  for (const Entry& e : kTable) {
    if (e.family == family) {
      return {std::string(e.help), std::string(e.unit)};
    }
  }
  FamilyReference ref;
  ref.help = "wmesh metric " + std::string(family) +
             " (no curated help; see DESIGN.md metric reference)";
  if (ends_with(family, "_us")) {
    ref.unit = "microseconds";
  } else if (ends_with(family, "_bytes")) {
    ref.unit = "bytes";
  } else if (ends_with(family, "_s")) {
    ref.unit = "seconds";
  } else {
    ref.unit = "count";
  }
  return ref;
}

std::string render_openmetrics(const Snapshot& s) {
  std::string out;
  std::string base;
  LabelList labels;

  // Counters, grouped by family so labeled series of one base share a
  // single declaration block.
  {
    FamilyGroup g;
    for (const auto& c : s.counters) {
      split_registry_name(c.name, &base, &labels);
      const std::string f = family_name(base);
      g.of(f) += f + "_total" + render_labels(labels) + ' ' +
                 std::to_string(c.value) + '\n';
    }
    for (const auto& [f, lines] : g.lines) {
      append_family_header(out, f, "counter");
      out += lines;
    }
  }
  {
    FamilyGroup g;
    for (const auto& gr : s.gauges) {
      split_registry_name(gr.name, &base, &labels);
      const std::string f = family_name(base);
      g.of(f) += f + render_labels(labels) + ' ' + fmt_value(gr.value) + '\n';
    }
    for (const auto& [f, lines] : g.lines) {
      append_family_header(out, f, "gauge");
      out += lines;
    }
  }
  {
    FamilyGroup g;
    for (const auto& h : s.histograms) {
      split_registry_name(h.name, &base, &labels);
      const std::string f = family_name(base);
      std::string& lines = g.of(f);
      for (std::size_t i = 0; i < h.bounds.size(); ++i) {
        LabelList with_le = labels;
        with_le.emplace_back("le", fmt_value(h.bounds[i]));
        lines += f + "_bucket" + render_labels(with_le) + ' ' +
                 std::to_string(h.cumulative[i]) + '\n';
      }
      LabelList with_inf = labels;
      with_inf.emplace_back("le", "+Inf");
      lines += f + "_bucket" + render_labels(with_inf) + ' ' +
               std::to_string(h.count) + '\n';
      lines += f + "_sum" + render_labels(labels) + ' ' + fmt_value(h.sum) +
               '\n';
      lines += f + "_count" + render_labels(labels) + ' ' +
               std::to_string(h.count) + '\n';
    }
    for (const auto& [f, lines] : g.lines) {
      append_family_header(out, f, "histogram");
      out += lines;
    }
  }
  if (!s.spans.empty()) {
    // Shared span families, labeled by span name: exact counts and totals
    // as counters, the distribution summaries as gauges, and the causal
    // parent edges as a two-label counter family.
    append_family_header(out, "wmesh_span_count", "counter");
    for (const auto& sp : s.spans) {
      out += "wmesh_span_count_total{span=\"";
      append_label_value(out, sp.name);
      out += "\"} " + std::to_string(sp.count) + '\n';
    }
    append_family_header(out, "wmesh_span_us", "counter");
    for (const auto& sp : s.spans) {
      out += "wmesh_span_us_total{span=\"";
      append_label_value(out, sp.name);
      out += "\"} " + fmt_value(sp.total_us) + '\n';
    }
    append_family_header(out, "wmesh_span_self_us", "counter");
    for (const auto& sp : s.spans) {
      out += "wmesh_span_self_us_total{span=\"";
      append_label_value(out, sp.name);
      out += "\"} " + fmt_value(sp.self_us) + '\n';
    }
    append_family_header(out, "wmesh_span_parent", "counter");
    for (const auto& sp : s.spans) {
      for (const auto& [pname, pcount] : sp.parents) {
        out += "wmesh_span_parent_total{span=\"";
        append_label_value(out, sp.name);
        out += "\",parent=\"";
        append_label_value(out, pname);
        out += "\"} " + std::to_string(pcount) + '\n';
      }
    }
    append_span_gauge(out, "wmesh_span_min_us", s.spans,
                      &Snapshot::SpanRow::min_us);
    append_span_gauge(out, "wmesh_span_max_us", s.spans,
                      &Snapshot::SpanRow::max_us);
    append_span_gauge(out, "wmesh_span_p50_us", s.spans,
                      &Snapshot::SpanRow::p50_us);
    append_span_gauge(out, "wmesh_span_p90_us", s.spans,
                      &Snapshot::SpanRow::p90_us);
    append_span_gauge(out, "wmesh_span_p99_us", s.spans,
                      &Snapshot::SpanRow::p99_us);
  }
  out += "# EOF\n";
  return out;
}

std::string OmSample::label(std::string_view key) const {
  for (const auto& [k, v] : labels) {
    if (k == key) return v;
  }
  return {};
}

const OmSample* OmDocument::find(
    std::string_view name,
    const std::vector<std::pair<std::string, std::string>>& want) const {
  for (const OmSample& s : samples) {
    if (s.name != name) continue;
    bool ok = true;
    for (const auto& [k, v] : want) {
      if (s.label(k) != v) {
        ok = false;
        break;
      }
    }
    if (ok) return &s;
  }
  return nullptr;
}

namespace {

bool fail(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
  return false;
}

// Parses `{k="v",...}` starting at text[i] == '{'.  Advances i past '}'.
bool parse_labels(std::string_view line, std::size_t& i, OmSample* s,
                  std::string* error) {
  ++i;  // '{'
  while (i < line.size() && line[i] != '}') {
    std::string key;
    while (i < line.size() && line[i] != '=') key += line[i++];
    if (i >= line.size() || line[i] != '=' || i + 1 >= line.size() ||
        line[i + 1] != '"') {
      return fail(error, "malformed label in: " + std::string(line));
    }
    i += 2;  // = and opening quote
    std::string value;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) {
        ++i;
        value += line[i] == 'n' ? '\n' : line[i];
      } else {
        value += line[i];
      }
      ++i;
    }
    if (i >= line.size()) {
      return fail(error, "unterminated label value in: " + std::string(line));
    }
    ++i;  // closing quote
    s->labels.emplace_back(std::move(key), std::move(value));
    if (i < line.size() && line[i] == ',') ++i;
  }
  if (i >= line.size()) {
    return fail(error, "unterminated label set in: " + std::string(line));
  }
  ++i;  // '}'
  return true;
}

// Splits "# WORD <name> <rest>" comment payloads.
bool split_annotation(std::string_view rest, std::string* name,
                      std::string* payload) {
  const std::size_t sp = rest.find(' ');
  if (sp == std::string_view::npos || sp == 0 || sp + 1 >= rest.size()) {
    return false;
  }
  *name = std::string(rest.substr(0, sp));
  *payload = std::string(rest.substr(sp + 1));
  return true;
}

}  // namespace

bool parse_openmetrics(std::string_view text, OmDocument* out,
                       std::string* error) {
  *out = OmDocument{};
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    if (out->saw_eof) {
      return fail(error, "content after # EOF: " + std::string(line));
    }
    if (line[0] == '#') {
      if (line == "# EOF") {
        out->saw_eof = true;
        continue;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos) {
          return fail(error, "malformed TYPE line: " + std::string(line));
        }
        const std::string name(rest.substr(0, sp));
        const std::string type(rest.substr(sp + 1));
        if (type != "counter" && type != "gauge" && type != "histogram") {
          return fail(error, "unsupported metric type: " + std::string(line));
        }
        if (!out->types.emplace(name, type).second) {
          return fail(error, "duplicate TYPE for family: " + name);
        }
        continue;
      }
      if (line.rfind("# HELP ", 0) == 0) {
        std::string name, help;
        if (!split_annotation(line.substr(7), &name, &help)) {
          return fail(error, "malformed HELP line: " + std::string(line));
        }
        if (!out->helps.emplace(name, help).second) {
          return fail(error, "duplicate HELP for family: " + name);
        }
        continue;
      }
      if (line.rfind("# UNIT ", 0) == 0) {
        std::string name, unit;
        if (!split_annotation(line.substr(7), &name, &unit)) {
          return fail(error, "malformed UNIT line: " + std::string(line));
        }
        if (unit.find(' ') != std::string::npos) {
          return fail(error, "malformed UNIT token: " + std::string(line));
        }
        if (!out->units.emplace(name, unit).second) {
          return fail(error, "duplicate UNIT for family: " + name);
        }
        continue;
      }
      return fail(error, "unrecognized comment line: " + std::string(line));
    }
    OmSample s;
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') {
      s.name += line[i++];
    }
    if (s.name.empty()) {
      return fail(error, "missing sample name in: " + std::string(line));
    }
    if (i < line.size() && line[i] == '{') {
      if (!parse_labels(line, i, &s, error)) return false;
    }
    if (i >= line.size() || line[i] != ' ') {
      return fail(error, "missing value in: " + std::string(line));
    }
    ++i;
    const std::string value_str(line.substr(i));
    char* end = nullptr;
    s.value = std::strtod(value_str.c_str(), &end);
    if (end == value_str.c_str() || *end != '\0') {
      return fail(error, "malformed value in: " + std::string(line));
    }
    out->samples.push_back(std::move(s));
  }
  if (!out->saw_eof) return fail(error, "missing # EOF terminator");
  return true;
}

namespace {

// Family a sample belongs to: strips the recognized suffix, if any.
std::string family_of(const OmDocument& doc, const std::string& sample_name) {
  if (doc.types.count(sample_name) != 0) return sample_name;
  for (const char* suffix : {"_total", "_bucket", "_sum", "_count"}) {
    const std::size_t n = std::string_view(suffix).size();
    if (sample_name.size() > n &&
        sample_name.compare(sample_name.size() - n, n, suffix) == 0) {
      const std::string base = sample_name.substr(0, sample_name.size() - n);
      if (doc.types.count(base) != 0) return base;
    }
  }
  return {};
}

double parse_le(const std::string& le) {
  if (le == "+Inf") return std::numeric_limits<double>::infinity();
  return std::strtod(le.c_str(), nullptr);
}

}  // namespace

bool lint_openmetrics(const OmDocument& doc, std::string* error) {
  if (!doc.saw_eof) return fail(error, "missing # EOF terminator");
  // Histogram bucket state, keyed by (family, non-le labels): buckets must
  // appear in ascending `le` order with non-decreasing cumulative counts.
  struct HistState {
    double last_le = -std::numeric_limits<double>::infinity();
    double last_cum = 0.0;
    bool saw_inf = false;
    double inf_value = 0.0;
    bool saw_count = false;
    double count_value = 0.0;
  };
  std::map<std::string, HistState> hists;

  for (const OmSample& s : doc.samples) {
    const std::string family = family_of(doc, s.name);
    if (family.empty()) {
      return fail(error, "sample without TYPE declaration: " + s.name);
    }
    const std::string& type = doc.types.at(family);
    if (!std::isfinite(s.value)) {
      return fail(error, "non-finite value for: " + s.name);
    }
    if (type == "counter") {
      if (s.name != family + "_total") {
        return fail(error, "counter sample must use _total: " + s.name);
      }
      if (s.value < 0) {
        return fail(error, "negative counter: " + s.name);
      }
    } else if (type == "gauge") {
      if (s.name != family) {
        return fail(error, "gauge sample has unexpected suffix: " + s.name);
      }
    } else if (type == "histogram") {
      // Distinguish labeled histogram series of one family.
      std::string key = family;
      for (const auto& [k, v] : s.labels) {
        if (k != "le") key += '|' + k + '=' + v;
      }
      HistState& h = hists[key];
      if (s.name == family + "_bucket") {
        const std::string le = s.label("le");
        if (le.empty()) {
          return fail(error, "bucket without le label: " + family);
        }
        const double bound = parse_le(le);
        if (bound <= h.last_le) {
          return fail(error, "bucket bounds not ascending: " + family);
        }
        if (s.value + 1e-9 < h.last_cum) {
          return fail(error, "bucket counts not cumulative: " + family);
        }
        h.last_le = bound;
        h.last_cum = s.value;
        if (std::isinf(bound)) {
          h.saw_inf = true;
          h.inf_value = s.value;
        }
      } else if (s.name == family + "_count") {
        h.saw_count = true;
        h.count_value = s.value;
      } else if (s.name != family + "_sum") {
        return fail(error, "unexpected histogram sample: " + s.name);
      }
    }
  }
  for (const auto& [key, h] : hists) {
    if (!h.saw_inf) {
      return fail(error, "histogram missing +Inf bucket: " + key);
    }
    if (!h.saw_count) {
      return fail(error, "histogram missing _count: " + key);
    }
    if (h.inf_value != h.count_value) {
      return fail(error, "+Inf bucket != _count for: " + key);
    }
  }
  // Annotation completeness: every wmesh_* family must carry HELP and
  // UNIT (the renderer's central reference table guarantees this; a family
  // missing either is a hand-rolled or truncated exposition).
  for (const auto& [family, type] : doc.types) {
    if (family.rfind("wmesh_", 0) != 0) continue;
    if (doc.helps.count(family) == 0) {
      return fail(error, "family missing HELP: " + family);
    }
    if (doc.units.count(family) == 0) {
      return fail(error, "family missing UNIT: " + family);
    }
  }
  return true;
}

bool check_counters_monotone(const OmDocument& earlier,
                             const OmDocument& later, std::string* error) {
  for (const OmSample& s : earlier.samples) {
    const std::string family = family_of(earlier, s.name);
    if (family.empty() || earlier.types.at(family) != "counter") continue;
    const OmSample* after = later.find(s.name, s.labels);
    if (after == nullptr) {
      return fail(error, "counter disappeared between scrapes: " + s.name);
    }
    if (after->value + 1e-9 < s.value) {
      return fail(error, "counter went backwards: " + s.name);
    }
  }
  return true;
}

}  // namespace wmesh::obs

#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/flight.h"
#include "util/text_table.h"

namespace wmesh::obs {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point process_start() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

struct LogState {
  std::mutex mu;
  std::FILE* sink = stderr;
  bool owns_sink = false;

  LogState() { reopen_from_env_unlocked(); }

  void reopen_from_env_unlocked() {
    if (owns_sink && sink != nullptr) std::fclose(sink);
    sink = stderr;
    owns_sink = false;
    if (const char* path = std::getenv("WMESH_LOG_FILE")) {
      if (std::FILE* f = std::fopen(path, "a")) {
        sink = f;
        owns_sink = true;
      } else {
        std::fprintf(stderr,
                     "wmesh: cannot open WMESH_LOG_FILE='%s'; using stderr\n",
                     path);
      }
    }
  }
};

LogState& state() {
  static LogState* s = new LogState();  // leaked: usable during atexit
  return *s;
}

std::atomic<int> g_level{-1};  // -1: not yet initialized from env

int init_level_from_env() {
  int level = static_cast<int>(LogLevel::kWarn);
  if (const char* raw = std::getenv("WMESH_LOG_LEVEL")) {
    if (const auto parsed = parse_log_level(raw)) {
      level = static_cast<int>(*parsed);
    } else {
      std::fprintf(stderr,
                   "wmesh: WMESH_LOG_LEVEL='%s' is not one of "
                   "trace|debug|info|warn|error|off; using warn\n",
                   raw);
    }
  }
  return level;
}

// A value needs quoting when it contains whitespace, '=' or '"'.
bool needs_quoting(const std::string& v) {
  for (char c : v) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '=' || c == '"') {
      return true;
    }
  }
  return v.empty();
}

void append_value(std::string& line, const std::string& v) {
  if (!needs_quoting(v)) {
    line += v;
    return;
  }
  line += '"';
  for (char c : v) {
    if (c == '"' || c == '\\') line += '\\';
    if (c == '\n') {
      line += "\\n";
      continue;
    }
    line += c;
  }
  line += '"';
}

}  // namespace

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "trace";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view s) noexcept {
  if (s == "trace") return LogLevel::kTrace;
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off") return LogLevel::kOff;
  return std::nullopt;
}

LogField kv(std::string_view key, double value) {
  return {std::string(key), fmt(value, 3)};
}

LogLevel log_level() noexcept {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = init_level_from_env();
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

bool log_enabled(LogLevel level) noexcept { return level >= log_level(); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log(LogLevel level, std::string_view component,
         std::initializer_list<LogField> fields) {
  if (flight::enabled()) {
    // Components are string literals at every call site, so the pointer is
    // stable for the flight ring; the ring carries no field payload.
    flight::record(flight::EventKind::kLog, component.data(),
                   static_cast<std::uint64_t>(level), 0);
  }
  const double ts_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - process_start())
          .count();
  std::string line = "ts_ms=" + fmt(ts_ms, 3);
  line += " level=";
  line += to_string(level);
  line += " comp=";
  line += component;
  for (const LogField& f : fields) {
    line += ' ';
    line += f.key;
    line += '=';
    append_value(line, f.value);
  }
  line += '\n';

  LogState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::fputs(line.c_str(), s.sink);
  std::fflush(s.sink);
}

void reinit_logging_from_env() {
  g_level.store(init_level_from_env(), std::memory_order_relaxed);
  LogState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.reopen_from_env_unlocked();
}

}  // namespace wmesh::obs

// Process resource accounting for run reports: peak RSS and user/sys CPU.
//
// `sample_resources()` is a one-shot read of /proc/self/status (VmRSS /
// VmHWM) plus getrusage(2).  `ResourceSampler` is the low-rate background
// companion the run report starts: a thread that wakes every `period`
// (default 100 ms), re-reads /proc/self, tracks the observed RSS peak and
// exports the live gauges `proc.rss_bytes` / `proc.peak_rss_bytes`, so
// long runs show memory growth in `--metrics` output, not just a final
// number.  The kernel's VmHWM high-water mark is folded in at every read,
// so the reported peak is exact even if the sampler never catches the
// maximum between wakeups.
//
// Everything degrades gracefully off-Linux (or with /proc unmounted):
// getrusage supplies CPU and max RSS, and a zero sample count tells the
// report the background sampler never ran.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace wmesh::obs {

struct ResourceUsage {
  std::uint64_t peak_rss_bytes = 0;     // max(VmHWM, ru_maxrss, samples)
  std::uint64_t current_rss_bytes = 0;  // VmRSS at the last read
  double user_cpu_s = 0.0;              // ru_utime
  double sys_cpu_s = 0.0;               // ru_stime
  std::uint64_t samples = 0;            // background wakeups (sampler only)
};

// One-shot read; never throws, missing sources read as zero.
ResourceUsage sample_resources() noexcept;

class ResourceSampler {
 public:
  explicit ResourceSampler(
      std::chrono::milliseconds period = std::chrono::milliseconds(100));
  ~ResourceSampler();

  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  // Joins the background thread; idempotent.  usage() stays callable.
  void stop() noexcept;

  // Current usage: a fresh one-shot sample folded with the sampled peak.
  ResourceUsage usage() const noexcept;

 private:
  void loop(std::chrono::milliseconds period) noexcept;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::uint64_t samples_ = 0;
  std::uint64_t sampled_peak_rss_ = 0;
  std::thread thread_;
};

}  // namespace wmesh::obs

#include "obs/socket_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace wmesh::obs {
namespace {

void set_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

bool parse_socket_address(const std::string& address, ParsedAddress* out,
                          std::string* error) {
  if (address.rfind("unix:", 0) == 0) {
    out->is_unix = true;
    out->unix_path = address.substr(5);
    if (out->unix_path.empty()) {
      *error = "empty unix socket path in '" + address + "'";
      return false;
    }
    if (out->unix_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      *error = "unix socket path too long: " + out->unix_path;
      return false;
    }
    return true;
  }
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    *error = "address '" + address + "' is not unix:<path> or <host>:<port>";
    return false;
  }
  out->host = address.substr(0, colon);
  if (out->host.empty()) out->host = "127.0.0.1";
  const std::string port_str = address.substr(colon + 1);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || port > 65535) {
    *error = "bad port in '" + address + "'";
    return false;
  }
  out->port = static_cast<std::uint16_t>(port);
  return true;
}

int bind_listen_socket(const std::string& address, std::string* bound,
                       std::string* unix_path, std::string* error) {
  ParsedAddress addr;
  if (!parse_socket_address(address, &addr, error)) return -1;
  unix_path->clear();

  int fd = -1;
  if (addr.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    ::unlink(addr.unix_path.c_str());  // stale socket from a previous run
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.unix_path.c_str(), sizeof(sa.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      *error = "bind " + addr.unix_path + ": " + std::strerror(errno);
      ::close(fd);
      return -1;
    }
    *bound = "unix:" + addr.unix_path;
    *unix_path = addr.unix_path;
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(addr.port);
    if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
      *error = "bad host '" + addr.host + "' (use a literal IPv4 address)";
      ::close(fd);
      return -1;
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      *error = "bind " + address + ": " + std::strerror(errno);
      ::close(fd);
      return -1;
    }
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len);
    char host[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &actual.sin_addr, host, sizeof(host));
    *bound = std::string(host) + ':' + std::to_string(ntohs(actual.sin_port));
  }
  if (::listen(fd, 16) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    if (addr.is_unix) ::unlink(addr.unix_path.c_str());
    return -1;
  }
  // Non-blocking accept: poll() readiness on a listen socket is not a
  // guarantee (the pending connection can be reset before accept runs), and
  // a blocking accept after a spurious wakeup would hang shutdown forever.
  set_nonblocking(fd);
  return fd;
}

int connect_socket(const std::string& address, std::string* error) {
  ParsedAddress addr;
  if (!parse_socket_address(address, &addr, error)) return -1;

  int fd = -1;
  if (addr.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.unix_path.c_str(), sizeof(sa.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      *error = "connect " + addr.unix_path + ": " + std::strerror(errno);
      ::close(fd);
      return -1;
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(addr.port);
    if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
      *error = "bad host '" + addr.host + "'";
      ::close(fd);
      return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      *error = "connect " + address + ": " + std::strerror(errno);
      ::close(fd);
      return -1;
    }
  }
  return fd;
}

bool send_all(int fd, const char* data, std::size_t len) noexcept {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

WakePipe::WakePipe() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    read_fd_ = fds[0];
    write_fd_ = fds[1];
    set_nonblocking(read_fd_);
    set_nonblocking(write_fd_);
  }
}

WakePipe::~WakePipe() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0) ::close(write_fd_);
}

void WakePipe::wake() noexcept {
  if (write_fd_ < 0) return;
  const char b = 'w';
  // Non-blocking: a full pipe already holds a pending wakeup.
  (void)!::write(write_fd_, &b, 1);
}

void WakePipe::drain() noexcept {
  if (read_fd_ < 0) return;
  char buf[64];
  while (::read(read_fd_, buf, sizeof(buf)) > 0) {
  }
}

}  // namespace wmesh::obs

#include "obs/report.h"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "obs/build_info_gen.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/resource.h"

namespace wmesh::obs {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t mono_us() {
  static const Clock::time_point t0 = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
          .count());
}

std::string fixed6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

// Re-indents a rendered JSON sub-document by two extra spaces per line so
// it nests cleanly inside the report object.
std::string indent_block(std::string block) {
  while (!block.empty() && block.back() == '\n') block.pop_back();
  std::string out;
  out.reserve(block.size() + block.size() / 8);
  for (const char c : block) {
    out += c;
    if (c == '\n') out += "  ";
  }
  return out;
}

}  // namespace

const BuildInfo& BuildInfo::current() noexcept {
  static const BuildInfo* info = [] {
    auto* b = new BuildInfo();
    b->git = WMESH_BUILD_GIT_DESCRIBE;
    b->compiler = WMESH_BUILD_COMPILER;
    b->build_type = WMESH_BUILD_TYPE;
#if WMESH_BUILD_TSAN
    b->sanitizer = "tsan";
#elif WMESH_BUILD_ASAN
    b->sanitizer = "asan,ubsan";
#else
    b->sanitizer = "none";
#endif
#if defined(WMESH_OBS_DISABLED)
    b->obs_disabled = true;
#else
    b->obs_disabled = false;
#endif
    return b;
  }();
  return *info;
}

std::string BuildInfo::version_line(std::string_view tool) const {
  std::string out(tool);
  out += ' ';
  out += git;
  out += " (";
  out += build_type;
  out += ", ";
  out += compiler;
  out += ", sanitizer ";
  out += sanitizer;
  out += obs_disabled ? ", obs off)" : ", obs on)";
  return out;
}

std::string BuildInfo::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out = "{\n";
  out += pad + "  \"git\": \"" + json_escape(git) + "\",\n";
  out += pad + "  \"compiler\": \"" + json_escape(compiler) + "\",\n";
  out += pad + "  \"build_type\": \"" + json_escape(build_type) + "\",\n";
  out += pad + "  \"sanitizer\": \"" + json_escape(sanitizer) + "\",\n";
  out += pad + "  \"obs_disabled\": ";
  out += obs_disabled ? "true" : "false";
  out += "\n" + pad + "}";
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct RunReport::SamplerState {
  ResourceSampler sampler;
  ResourceUsage final_usage;
};

RunReport::RunReport(std::string tool, int argc, const char* const* argv)
    : tool_(std::move(tool)), start_us_(mono_us()) {
  for (int i = 0; i < argc; ++i) {
    argv_.emplace_back(argv[i] != nullptr ? argv[i] : "");
  }
#if !defined(WMESH_OBS_DISABLED)
  try {
    sampler_ = std::make_unique<SamplerState>();
  } catch (...) {
    // Thread creation failed: the report falls back to one-shot sampling.
  }
#endif
}

RunReport::~RunReport() { finish(); }

void RunReport::finish() {
  if (finished_) return;
  finished_ = true;
  wall_us_ = mono_us() - start_us_;
  if (sampler_) {
    sampler_->sampler.stop();
    sampler_->final_usage = sampler_->sampler.usage();
  }
}

std::string RunReport::to_json() {
  finish();
  std::string out = "{\n";
  out += "  \"schema\": \"" + std::string(kRunReportSchema) + "\",\n";
  out += "  \"tool\": \"" + json_escape(tool_) + "\",\n";
  out += "  \"argv\": [";
  for (std::size_t i = 0; i < argv_.size(); ++i) {
    out += (i ? ", \"" : "\"") + json_escape(argv_[i]) + "\"";
  }
  out += "],\n";
  out += "  \"seed\": ";
  out += seed_ ? std::to_string(*seed_) : "null";
  out += ",\n";
  out += "  \"threads\": " + std::to_string(threads_) + ",\n";
  out += "  \"wall_time_s\": " + fixed6(static_cast<double>(wall_us_) * 1e-6) +
         ",\n";
  out += "  \"build\": " + BuildInfo::current().to_json(2);
#if !defined(WMESH_OBS_DISABLED)
  const ResourceUsage u =
      sampler_ ? sampler_->final_usage : sample_resources();
  out += ",\n  \"resources\": {\n";
  out += "    \"peak_rss_bytes\": " + std::to_string(u.peak_rss_bytes) + ",\n";
  out += "    \"user_cpu_s\": " + fixed6(u.user_cpu_s) + ",\n";
  out += "    \"sys_cpu_s\": " + fixed6(u.sys_cpu_s) + ",\n";
  out += "    \"samples\": " + std::to_string(u.samples) + "\n  }";
  const Snapshot snap =
      Registry::instance().snapshot(SnapshotFlush::kActiveBatches);
  out += ",\n  \"metrics\": " + indent_block(snap.to_json());
#endif
  out += "\n}\n";
  return out;
}

bool RunReport::write(const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) {
    WMESH_LOG_ERROR("obs.report", kv("error", "cannot write run report"),
                    kv("path", path));
    return false;
  }
  f << to_json();
  return static_cast<bool>(f);
}

}  // namespace wmesh::obs

// Run reports: one versioned JSON document describing a whole tool run --
// what ran (tool, argv, seed, thread count), on what build (git describe,
// compiler, build type, sanitizers, WMESH_OBS_DISABLED), what it cost
// (wall time, peak RSS and user/sys CPU from obs/resource.h) and what it
// did (the full metrics snapshot including per-span aggregates).
//
// Every tool exposes it as `--report[=path.json]`; wmesh_bench embeds the
// same build block in BENCH_*.json so a regression check knows it is
// comparing like with like.  Keys are emitted in a fixed order and the
// schema carries a version string ("wmesh.run_report/1"), so reports can
// be diffed byte-wise and parsed by dumb tooling.
//
// In a -DWMESH_OBS_DISABLED build the report still works but shrinks to
// run identity + build info + wall time: no resource sampler is started
// and the metrics/resources sections are omitted.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace wmesh::obs {

inline constexpr std::string_view kRunReportSchema = "wmesh.run_report/1";

// Configure-time build identity (src/obs/build_info.h.in).  The same
// struct backs the tools' --version flag and every report's "build" block.
struct BuildInfo {
  std::string git;         // `git describe --always --dirty` at configure
  std::string compiler;    // "GNU 13.2.0"
  std::string build_type;  // CMAKE_BUILD_TYPE
  std::string sanitizer;   // "none", "tsan" or "asan,ubsan"
  bool obs_disabled = false;

  static const BuildInfo& current() noexcept;

  // One-line --version text: "<tool> <git> (<type>, <compiler>, ...)".
  std::string version_line(std::string_view tool) const;
  // JSON object with stable key order, indented by `indent` spaces.
  std::string to_json(int indent) const;
};

// Escapes a string for embedding in a JSON document (quotes, backslashes,
// control characters).  Shared by the report and bench JSON emitters.
std::string json_escape(std::string_view s);

// Collects one run's report.  Construct early in main (wall time starts
// here; a low-rate resource sampler thread starts unless the build is
// obs-disabled), then finish() + write()/to_json() at exit.
class RunReport {
 public:
  RunReport(std::string tool, int argc, const char* const* argv);
  ~RunReport();

  RunReport(const RunReport&) = delete;
  RunReport& operator=(const RunReport&) = delete;

  void set_seed(std::uint64_t seed) { seed_ = seed; }
  void set_threads(std::size_t threads) { threads_ = threads; }

  // Stops the resource sampler and freezes the wall time; idempotent.
  // Call before taking any other registry snapshot that should match the
  // report's metrics section byte-for-byte.
  void finish();

  // Renders the report (finishing first if needed).  The metrics section
  // is the registry snapshot at this instant with active counter batches
  // flushed, so it equals a --metrics dump taken next to it.
  std::string to_json();

  // to_json() to `path`; false (with an error log) when unwritable.
  bool write(const std::string& path);

 private:
  std::string tool_;
  std::vector<std::string> argv_;
  std::optional<std::uint64_t> seed_;
  std::size_t threads_ = 0;
  std::uint64_t start_us_;
  std::uint64_t wall_us_ = 0;
  bool finished_ = false;
  struct SamplerState;  // hides obs/resource.h from every tool include
  std::unique_ptr<SamplerState> sampler_;
};

}  // namespace wmesh::obs

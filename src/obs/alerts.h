// Declarative alerting over the in-process TSDB (obs v4).
//
// Rules live in a plain text file (wmesh_serve --alerts=<file>), one per
// line; '#' comments and blank lines are ignored:
//
//   alert <name> threshold <series> <op> <value> [for=<N>]
//   alert <name> absent <series> [window=<W>] [for=<N>]
//   alert <name> burn <series> <op> <value> short=<S> long=<L> [for=<N>]
//
// where <op> is one of > >= < <=, <series> is a registry family name
// (labeled health series like health.score{net=3,std=bg} are one token),
// and windows are virtual-clock ticks.
//
//   * threshold compares the series' latest value;
//   * absent fires when the series has no point in the trailing window
//     (default 5 ticks) -- the "this network stopped reporting" rule;
//   * burn is the two-window burn-rate form: the per-tick rate over BOTH
//     the short and the long window must satisfy the comparison, so brief
//     blips (short only) and long-faded incidents (long only) do not fire.
//
// Evaluation runs once per tick against the Tsdb.  Each rule owns a
// three-state machine: inactive -> pending (condition true, waiting out
// for=N consecutive ticks) -> firing; any false evaluation resets pending
// to inactive, and firing -> inactive counts a resolution.  Totals are
// tracked internally (exact under -DWMESH_OBS_DISABLED) and mirrored to
// the registry as `alerts.evaluations` / `alerts.fired` /
// `alerts.resolved` counters plus one `alert.state{alert=<name>}` gauge
// per rule (0 inactive, 1 pending, 2 firing) so alert state itself lands
// in the TSDB and the OpenMetrics exposition.
//
// Parsing is strict: any unknown keyword, malformed number, duplicate
// rule name or trailing token fails with a "<file>:<line>: message"
// diagnostic, so a typo'd rule file cannot load as silently-weaker
// monitoring.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/tsdb.h"

namespace wmesh::obs {

enum class AlertKind : std::uint8_t { kThreshold, kAbsent, kBurnRate };
enum class AlertOp : std::uint8_t { kGt, kGe, kLt, kLe };
enum class AlertState : std::uint8_t { kInactive, kPending, kFiring };

const char* to_string(AlertKind k);
const char* to_string(AlertOp op);
const char* to_string(AlertState s);

struct AlertRule {
  std::string name;
  AlertKind kind = AlertKind::kThreshold;
  std::string series;
  AlertOp op = AlertOp::kGt;
  double value = 0.0;
  std::uint64_t for_ticks = 1;     // consecutive true ticks before firing
  std::uint64_t window = 5;        // absent: lookback window
  std::uint64_t short_window = 0;  // burn: short rate window
  std::uint64_t long_window = 0;   // burn: long rate window
};

// Parses a rule file.  On failure returns false with *error set to
// "<filename>:<line>: <message>" and leaves *out untouched.
bool parse_alert_rules(std::string_view text, std::string_view filename,
                       std::vector<AlertRule>* out, std::string* error);

class AlertEngine {
 public:
  AlertEngine() = default;
  explicit AlertEngine(std::vector<AlertRule> rules);

  bool empty() const noexcept { return rules_.empty(); }
  std::size_t rule_count() const noexcept { return rules_.size(); }

  // Evaluates every rule against `tsdb` (one tick) and advances the state
  // machines.  Deterministic: depends only on the rules and the tsdb
  // contents.
  void evaluate(const Tsdb& tsdb);

  struct RuleStatus {
    const AlertRule* rule = nullptr;
    AlertState state = AlertState::kInactive;
    std::uint64_t pending_ticks = 0;  // consecutive true ticks so far
    std::uint64_t fired = 0;          // times this rule entered firing
    std::uint64_t resolved = 0;       // times it left firing
    double last_input = 0.0;          // last evaluated comparison input
  };
  std::vector<RuleStatus> status() const;

  struct Stats {
    std::uint64_t evaluations = 0;  // rule evaluations (rules x ticks)
    std::uint64_t fired = 0;
    std::uint64_t resolved = 0;
  };
  Stats stats() const;

  // Text table for the wmesh_serve `alerts` command.
  std::string render() const;

 private:
  struct RuleState {
    AlertState state = AlertState::kInactive;
    std::uint64_t pending_ticks = 0;
    std::uint64_t fired = 0;
    std::uint64_t resolved = 0;
    double last_input = 0.0;
  };

  bool condition(const AlertRule& rule, const Tsdb& tsdb,
                 double* input) const;
  void publish_state(const AlertRule& rule, AlertState state) const;

  std::vector<AlertRule> rules_;
  std::vector<RuleState> states_;
  Stats stats_;
};

}  // namespace wmesh::obs

// Structured leveled logging: `key=value` lines on stderr or a file.
//
// The level threshold comes from WMESH_LOG_LEVEL (trace|debug|info|warn|
// error|off, default warn) and the sink from WMESH_LOG_FILE (append mode;
// stderr when unset).  Lines look like
//
//   ts_ms=12.431 level=info comp=trace.io rows=18234 errors=0
//
// where ts_ms is milliseconds since process start (monotonic).  The macros
// evaluate their field arguments only when the level is enabled, so a
// disabled debug line costs one branch on a cached atomic.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>

namespace wmesh::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

const char* to_string(LogLevel level) noexcept;
// Strict: exact lower-case names only.  Exposed for tests.
std::optional<LogLevel> parse_log_level(std::string_view s) noexcept;

// One key=value field of a log line.
struct LogField {
  std::string key;
  std::string value;
};

inline LogField kv(std::string_view key, std::string_view value) {
  return {std::string(key), std::string(value)};
}
inline LogField kv(std::string_view key, const char* value) {
  return {std::string(key), std::string(value)};
}
template <typename T>
  requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
LogField kv(std::string_view key, T value) {
  return {std::string(key), std::to_string(value)};
}
LogField kv(std::string_view key, double value);
inline LogField kv(std::string_view key, bool value) {
  return {std::string(key), value ? "true" : "false"};
}

// Current threshold; a message is emitted when its level >= the threshold.
LogLevel log_level() noexcept;
bool log_enabled(LogLevel level) noexcept;
void set_log_level(LogLevel level) noexcept;

// Emits one line unconditionally (callers should check log_enabled first;
// the macros below do).
void log(LogLevel level, std::string_view component,
         std::initializer_list<LogField> fields);

// Re-reads WMESH_LOG_LEVEL / WMESH_LOG_FILE, closing any open log file.
// The logger initializes itself lazily; this is for tests and tools that
// change the environment at runtime.
void reinit_logging_from_env();

}  // namespace wmesh::obs

namespace wmesh {
// Hoisted so instrumented code anywhere under wmesh:: (and tools with
// `using namespace wmesh`) can write kv(...) unqualified in log macros.
using obs::kv;
}  // namespace wmesh

#define WMESH_LOG(level, comp, ...)                          \
  do {                                                       \
    if (::wmesh::obs::log_enabled(level)) {                  \
      ::wmesh::obs::log(level, comp, {__VA_ARGS__});         \
    }                                                        \
  } while (0)
#define WMESH_LOG_TRACE(comp, ...) \
  WMESH_LOG(::wmesh::obs::LogLevel::kTrace, comp, __VA_ARGS__)
#define WMESH_LOG_DEBUG(comp, ...) \
  WMESH_LOG(::wmesh::obs::LogLevel::kDebug, comp, __VA_ARGS__)
#define WMESH_LOG_INFO(comp, ...) \
  WMESH_LOG(::wmesh::obs::LogLevel::kInfo, comp, __VA_ARGS__)
#define WMESH_LOG_WARN(comp, ...) \
  WMESH_LOG(::wmesh::obs::LogLevel::kWarn, comp, __VA_ARGS__)
#define WMESH_LOG_ERROR(comp, ...) \
  WMESH_LOG(::wmesh::obs::LogLevel::kError, comp, __VA_ARGS__)

// Live metrics export endpoint: a minimal blocking HTTP/1.0 server that
// answers every request with the current registry snapshot rendered as
// OpenMetrics text (obs/openmetrics.h).
//
// All five tools (and wmesh_bench) expose it behind `--listen=<addr>`, so a
// long analyze run can be scraped mid-flight by Prometheus, curl, or the
// wmesh_top dashboard:
//
//   wmesh_analyze --in=big.wsnap --all --listen=127.0.0.1:9137 &
//   wmesh_top 127.0.0.1:9137
//
// Address forms:
//   "unix:<path>"   -- unix domain socket (path unlinked on bind and stop)
//   "<host>:<port>" -- localhost TCP; host defaults to 127.0.0.1 when
//                      empty (":0" binds an ephemeral port, reported by
//                      bound_address())
//
// The server is deliberately localhost-only: it binds 127.0.0.1 (or a unix
// socket), never a routable interface.  One accept thread handles requests
// serially -- a scrape is a registry snapshot plus a few kB of rendering,
// and monitoring clients poll at human rates.  Snapshots use
// SnapshotFlush::kActiveBatches, so counters buffered in running shards are
// visible to a mid-flight scrape.  The serving thread creates no spans
// (span ids stay deterministic for the analysis work itself); it counts
// scrapes in `export.scrapes`.
#pragma once

#include <memory>
#include <string>

namespace wmesh::obs {

class ExportServer {
 public:
  // Binds `address` and starts the accept thread.  Returns nullptr with
  // *error set when the address cannot be parsed or bound.
  static std::unique_ptr<ExportServer> start(const std::string& address,
                                             std::string* error);

  ~ExportServer();  // stops and joins

  ExportServer(const ExportServer&) = delete;
  ExportServer& operator=(const ExportServer&) = delete;

  // The concrete bound address, e.g. "127.0.0.1:40913" after binding ":0",
  // or "unix:/tmp/x.sock".  Suitable for scrape_openmetrics_once.
  const std::string& bound_address() const noexcept { return bound_; }

  // Stops accepting and joins the thread; idempotent.
  void stop() noexcept;

 private:
  ExportServer() = default;
  void serve_loop() noexcept;

  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::string bound_;
};

// One-shot scrape client (wmesh_top, tests): connects to `address` (same
// forms as ExportServer), issues `GET /metrics`, and returns the response
// body.  False with *error set on connect/read failure.
bool scrape_openmetrics_once(const std::string& address, std::string* body,
                             std::string* error);

}  // namespace wmesh::obs

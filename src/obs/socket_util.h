// Shared localhost socket plumbing behind every `--listen=<addr>` flag.
//
// Address forms (identical everywhere a tool takes an address):
//   "unix:<path>"   -- unix domain socket (path unlinked on bind)
//   "<host>:<port>" -- localhost TCP; host defaults to 127.0.0.1 when
//                      empty (":0" binds an ephemeral port)
//
// Both the OpenMetrics export endpoint (obs/export_server.h) and the
// wmesh_serve query protocol (serve/query_server.h) are accept-loop servers
// over these helpers, so parsing, binding and the deterministic-shutdown
// wakeup pipe behave identically for every listener in the tree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace wmesh::obs {

struct ParsedAddress {
  bool is_unix = false;
  std::string unix_path;
  std::string host;        // TCP only
  std::uint16_t port = 0;  // TCP only
};

// Parses "unix:<path>" or "<host>:<port>".  False with *error set when the
// address has neither shape (or the unix path is empty/too long).
bool parse_socket_address(const std::string& address, ParsedAddress* out,
                          std::string* error);

// Binds + listens on `address` and returns the (non-blocking) listen fd, or
// -1 with *error set.  *bound receives the concrete address -- e.g.
// "127.0.0.1:40913" after binding ":0", or "unix:/tmp/x.sock" -- suitable
// for connect_socket().  *unix_path receives the path to unlink after close
// (empty for TCP).
int bind_listen_socket(const std::string& address, std::string* bound,
                       std::string* unix_path, std::string* error);

// Connects a blocking client socket to `address` (same forms as above).
// Returns the fd, or -1 with *error set.
int connect_socket(const std::string& address, std::string* error);

// Writes the whole buffer (MSG_NOSIGNAL, EINTR-retried).  False when the
// peer went away mid-write; the caller owns closing the fd either way.
bool send_all(int fd, const char* data, std::size_t len) noexcept;

// A self-pipe used to interrupt poll() deterministically: servers poll on
// {listen_fd, pipe.read_fd()} and stop() writes one byte, so a shutdown
// never waits out a poll timeout and the serving thread joins immediately.
class WakePipe {
 public:
  WakePipe();   // fds are -1 on failure (callers treat that as fatal)
  ~WakePipe();
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  bool ok() const noexcept { return read_fd_ >= 0 && write_fd_ >= 0; }
  int read_fd() const noexcept { return read_fd_; }
  void wake() noexcept;   // writes one byte (non-blocking, idempotent-ish)
  void drain() noexcept;  // reads pending wake bytes

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
};

}  // namespace wmesh::obs

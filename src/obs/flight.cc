#include "obs/flight.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/log.h"

namespace wmesh::obs::flight {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point flight_epoch() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            flight_epoch())
          .count());
}

// Every field is a relaxed atomic: the owning thread writes without locks
// and any reader (drain, the signal handler) loads without tearing UB.  A
// slot mid-overwrite during a concurrent dump decodes as one inconsistent
// event -- acceptable for a post-mortem aid, and race-free for TSan.
struct Slot {
  std::atomic<std::uint64_t> ts{0};
  std::atomic<std::uint64_t> a{0};
  std::atomic<std::uint64_t> b{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint8_t> kind{0};
};

struct Ring {
  std::uint32_t tid = 0;
  std::atomic<std::uint64_t> head{0};  // events ever written to this ring
  Slot slots[kDepth];
};

// Lock-free ring directory so the signal handler can walk it: slots are
// claimed with fetch_add and published with a release store; readers load
// each entry with acquire and skip nulls (claimed but not yet published).
std::atomic<Ring*> g_rings[kMaxRings] = {};
std::atomic<std::uint32_t> g_ring_count{0};
std::atomic<std::uint32_t> g_next_tid{1};

thread_local Ring* t_ring = nullptr;
// Threads beyond kMaxRings record nowhere; remember the refusal per thread
// so the hot path stays one branch.
thread_local bool t_ring_refused = false;

// Armed state: the output path is captured into a fixed buffer at
// reinit time so the signal handler never calls getenv or allocates.
char g_out_path[1024] = {0};
std::atomic<bool> g_handlers_installed{false};

Ring* ring_for_thread() noexcept {
  if (t_ring != nullptr) return t_ring;
  if (t_ring_refused) return nullptr;
  const std::uint32_t idx = g_ring_count.fetch_add(1,
                                                   std::memory_order_relaxed);
  if (idx >= kMaxRings) {
    t_ring_refused = true;
    return nullptr;
  }
  auto* ring = new (std::nothrow) Ring();  // leaked: dumps outlive threads
  if (ring == nullptr) {
    t_ring_refused = true;
    return nullptr;
  }
  ring->tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  g_rings[idx].store(ring, std::memory_order_release);
  t_ring = ring;
  return ring;
}

// --- async-signal-safe formatting helpers --------------------------------

std::size_t fmt_u64(char* buf, std::uint64_t v) noexcept {
  char tmp[24];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

std::size_t fmt_hex(char* buf, std::uint64_t v) noexcept {
  buf[0] = '0';
  buf[1] = 'x';
  char tmp[16];
  std::size_t n = 0;
  do {
    const unsigned d = static_cast<unsigned>(v & 0xf);
    tmp[n++] = static_cast<char>(d < 10 ? '0' + d : 'a' + (d - 10));
    v >>= 4;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[2 + i] = tmp[n - 1 - i];
  return 2 + n;
}

// Small buffered writer over write(2); fixed stack storage only.
struct FdWriter {
  int fd;
  char buf[4096];
  std::size_t len = 0;

  explicit FdWriter(int f) noexcept : fd(f) {}
  void flush() noexcept {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t w = ::write(fd, buf + off, len - off);
      if (w <= 0) break;  // best effort: a full disk must not loop forever
      off += static_cast<std::size_t>(w);
    }
    len = 0;
  }
  void raw(const char* s, std::size_t n) noexcept {
    if (n >= sizeof(buf)) n = sizeof(buf) - 1;  // names are short in practice
    if (len + n > sizeof(buf)) flush();
    std::memcpy(buf + len, s, n);
    len += n;
  }
  void str(const char* s) noexcept { raw(s, std::strlen(s)); }
  void u64(std::uint64_t v) noexcept {
    char tmp[24];
    raw(tmp, fmt_u64(tmp, v));
  }
  void hex(std::uint64_t v) noexcept {
    char tmp[20];
    raw(tmp, fmt_hex(tmp, v));
  }
};

struct DecodedSlot {
  std::uint64_t ts, a, b;
  const char* name;
  std::uint8_t kind;
};

DecodedSlot load_slot(const Slot& s) noexcept {
  return {s.ts.load(std::memory_order_relaxed),
          s.a.load(std::memory_order_relaxed),
          s.b.load(std::memory_order_relaxed),
          s.name.load(std::memory_order_relaxed),
          s.kind.load(std::memory_order_relaxed)};
}

void write_event(FdWriter& w, std::uint32_t tid, const DecodedSlot& d)
    noexcept {
  w.str("ts_us=");
  w.u64(d.ts);
  w.str(" tid=");
  w.u64(tid);
  w.str(" kind=");
  w.str(to_string(static_cast<EventKind>(d.kind)));
  w.str(" name=");
  w.str(d.name != nullptr ? d.name : "?");
  w.str(" a=");
  w.hex(d.a);
  w.str(" b=");
  w.hex(d.b);
  w.str("\n");
}

// Per-ring cursor for the k-way timestamp merge.  No allocation: bounded by
// kMaxRings, lives on the dumping frame's stack.
struct Cursor {
  const Ring* ring;
  std::uint64_t next;  // logical index of the next unread event
  std::uint64_t end;   // head snapshot
};

void fatal_signal_handler(int sig) {
  if (g_out_path[0] != '\0') {
    const int fd = ::open(g_out_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      dump_fd(fd);
      ::close(fd);
    }
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void install_signal_handlers() noexcept {
  bool expected = false;
  if (!g_handlers_installed.compare_exchange_strong(expected, true)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = fatal_signal_handler;
  sigemptyset(&sa.sa_mask);
  // SA_NODEFER unset: a second fault inside the handler falls through to
  // the re-raised default disposition instead of recursing.
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    ::sigaction(sig, &sa, nullptr);
  }
}

}  // namespace

std::atomic<bool> g_flight_enabled{false};

const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kSpanBegin: return "span_begin";
    case EventKind::kSpanEnd: return "span_end";
    case EventKind::kLog: return "log";
    case EventKind::kCounter: return "counter";
    case EventKind::kNone: break;
  }
  return "none";
}

void record(EventKind kind, const char* name, std::uint64_t a,
            std::uint64_t b) noexcept {
  Ring* ring = ring_for_thread();
  if (ring == nullptr) return;
  const std::uint64_t idx =
      ring->head.fetch_add(1, std::memory_order_relaxed);
  Slot& s = ring->slots[idx % kDepth];
  s.ts.store(now_us(), std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.name.store(name, std::memory_order_relaxed);
  s.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
}

std::size_t dump_fd(int fd) noexcept {
  Cursor cursors[kMaxRings];
  std::size_t ring_count = 0;
  std::uint64_t dropped = 0;
  const std::uint32_t n = g_ring_count.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < n && i < kMaxRings; ++i) {
    const Ring* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    const std::uint64_t begin = head > kDepth ? head - kDepth : 0;
    dropped += begin;
    cursors[ring_count++] = {ring, begin, head};
  }

  FdWriter w(fd);
  w.str("# wmesh.flight/1 rings=");
  w.u64(ring_count);
  w.str(" depth=");
  w.u64(kDepth);
  w.str("\n");

  std::size_t events = 0;
  for (;;) {
    // Select the cursor with the smallest next timestamp; rings are
    // individually time-ordered, so this is a k-way merge.
    std::size_t best = ring_count;
    std::uint64_t best_ts = 0;
    DecodedSlot best_slot{};
    for (std::size_t i = 0; i < ring_count; ++i) {
      if (cursors[i].next >= cursors[i].end) continue;
      const DecodedSlot d =
          load_slot(cursors[i].ring->slots[cursors[i].next % kDepth]);
      if (best == ring_count || d.ts < best_ts) {
        best = i;
        best_ts = d.ts;
        best_slot = d;
      }
    }
    if (best == ring_count) break;
    ++cursors[best].next;
    write_event(w, cursors[best].ring->tid, best_slot);
    ++events;
  }

  w.str("# EOF events=");
  w.u64(events);
  w.str(" dropped=");
  w.u64(dropped);
  w.str("\n");
  w.flush();
  return events;
}

std::vector<Event> drain(std::uint64_t* dropped_out) {
  std::vector<Event> out;
  std::uint64_t dropped = 0;
  struct Snap {
    const Ring* ring;
    std::uint64_t next, end;
  };
  std::vector<Snap> snaps;
  const std::uint32_t n = g_ring_count.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < n && i < kMaxRings; ++i) {
    const Ring* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    const std::uint64_t begin = head > kDepth ? head - kDepth : 0;
    dropped += begin;
    snaps.push_back({ring, begin, head});
  }
  for (;;) {
    Snap* best = nullptr;
    DecodedSlot best_slot{};
    for (auto& s : snaps) {
      if (s.next >= s.end) continue;
      const DecodedSlot d = load_slot(s.ring->slots[s.next % kDepth]);
      if (best == nullptr || d.ts < best_slot.ts) {
        best = &s;
        best_slot = d;
      }
    }
    if (best == nullptr) break;
    ++best->next;
    out.push_back({best_slot.ts, best->ring->tid,
                   static_cast<EventKind>(best_slot.kind), best_slot.name,
                   best_slot.a, best_slot.b});
  }
  if (dropped_out != nullptr) *dropped_out = dropped;
  return out;
}

bool dump(const std::string& path) {
  if (path.empty()) return dump_to_env_path();
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    WMESH_LOG_ERROR("obs.flight", kv("error", "cannot open flight output"),
                    kv("path", path));
    return false;
  }
  const std::size_t events = dump_fd(fd);
  ::close(fd);
  WMESH_LOG_INFO("obs.flight", kv("path", path), kv("events", events));
  return true;
}

bool dump_to_env_path() {
  if (g_out_path[0] == '\0') return false;
  return dump(g_out_path);
}

void reinit_from_env() {
  const char* p = std::getenv("WMESH_FLIGHT_OUT");
  if (p != nullptr && p[0] != '\0') {
    std::strncpy(g_out_path, p, sizeof(g_out_path) - 1);
    g_out_path[sizeof(g_out_path) - 1] = '\0';
    install_signal_handlers();
    g_flight_enabled.store(true, std::memory_order_relaxed);
  } else {
    g_out_path[0] = '\0';
    g_flight_enabled.store(false, std::memory_order_relaxed);
  }
  // Reset every ring so tests (and re-armed runs) start from a clean
  // window; events recorded concurrently are simply part of the new window.
  const std::uint32_t n = g_ring_count.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < n && i < kMaxRings; ++i) {
    Ring* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring != nullptr) ring->head.store(0, std::memory_order_relaxed);
  }
}

namespace {
// Arm from the environment at startup so tools need no explicit call.
[[maybe_unused]] const bool g_flight_init = (reinit_from_env(), true);
}  // namespace

}  // namespace wmesh::obs::flight

// In-process time-series ring over the metrics registry (obs v4).
//
// A Tsdb turns the instantaneous Registry snapshot into bounded history:
// sample(snapshot, tick) ingests one snapshot at a virtual-clock tick
// (wmesh_serve calls it from MeshService::tick(); tests and benches call it
// explicitly) and appends one delta-encoded point per family:
//
//   * counters and gauges store the per-tick value delta (8-byte double)
//     plus the sample tick; the value before the oldest retained point is
//     folded into a per-series base, so value() is exact at any retention;
//   * histograms store per-tick deltas of count, sum and every cumulative
//     bucket, so quantile_over_time() can rebuild the windowed distribution.
//
// The first sight of a series only establishes its baseline -- history
// starts at the second sample -- so a Tsdb attached to an already-warm
// process-global registry never reports the pre-attach totals as one giant
// delta.
//
// Memory is bounded by construction: every series is a fixed-capacity ring
// (TsdbOptions::points_per_series); when a ring is full the oldest point is
// folded into the base and counted as an eviction.  Retention accounting is
// exact and internal (`stats()`), and mirrored to the registry as
// `tsdb.points` / `tsdb.bytes` / `tsdb.series` gauges and the
// `tsdb.evictions` / `tsdb.samples` counters -- the internal stats stay
// authoritative under -DWMESH_OBS_DISABLED.
//
// Thread safety: every method takes the internal mutex, so sampling may
// race queries (the ParTsdb TSan case).  Query results depend only on the
// ingested (snapshot, tick) sequence, so for deterministic families they
// are byte-identical at any wmesh::par thread count.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace wmesh::obs {

struct TsdbOptions {
  // Ring capacity per series; with wmesh_serve's 40 s probe rounds the
  // default keeps four hours of per-tick history per family.
  std::size_t points_per_series = 360;
};

class Tsdb {
 public:
  explicit Tsdb(TsdbOptions options = {});
  Tsdb(const Tsdb&) = delete;
  Tsdb& operator=(const Tsdb&) = delete;

  // Ingests one snapshot at `tick` (ticks must be strictly increasing).
  // Counter, gauge and histogram families are retained; span aggregates are
  // not (their wall-clock durations are inherently nondeterministic).
  void sample(const Snapshot& snap, std::uint64_t tick);

  struct Stats {
    std::uint64_t samples = 0;    // sample() calls ingested
    std::size_t series = 0;       // live series
    std::size_t points = 0;       // retained points across all rings
    std::size_t bytes = 0;        // exact retained payload bytes
    std::uint64_t evictions = 0;  // points folded into series bases
  };
  Stats stats() const;

  std::uint64_t last_tick() const;
  bool has_series(std::string_view name) const;
  // Name-sorted list of live series.
  std::vector<std::string> series_names() const;

  // Retained points of `name` with tick > last_tick - window (window 0 =
  // every retained point).  0 for unknown series.
  std::size_t points_in(std::string_view name, std::size_t window) const;

  // Latest reconstructed value: series base + every retained delta (equal
  // to the last sampled raw value).  0 for unknown series; for histograms
  // this is the cumulative observation count.
  double value(std::string_view name) const;

  // Net change over the trailing `window` ticks (0 = whole retention).
  // For histograms: the change in observation count.
  double increase(std::string_view name, std::size_t window) const;

  // increase() divided by the ticks the window actually covers -- a
  // per-tick rate.  0 when no tick span is covered.
  double rate(std::string_view name, std::size_t window) const;

  // Bucket-interpolated quantile of the observations a histogram series
  // recorded within the window, with Histogram::quantile's semantics
  // (upper bucket bound; overflow reports the last finite bound).  0 for
  // unknown or non-histogram series or an empty window.
  double quantile_over_time(std::string_view name, double q,
                            std::size_t window) const;

  // Per-tick deltas of the trailing window, oldest first (sparklines, the
  // serve `tsdb` command).  For histograms: observation-count deltas.
  std::vector<double> deltas(std::string_view name, std::size_t window) const;

  // Text scorecard for one series over the trailing window -- the payload
  // of the wmesh_serve `tsdb <family> [window]` command.  Counter series
  // render only delta-derived numbers (increase/rate), so the text is
  // byte-deterministic even when the process-global registry carried
  // pre-baseline totals.
  std::string render(std::string_view name, std::size_t window) const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct ScalarPoint {
    std::uint64_t tick = 0;
    double delta = 0.0;
  };
  struct HistPoint {
    std::uint64_t tick = 0;
    std::uint64_t count_delta = 0;
    double sum_delta = 0.0;
    std::vector<std::uint64_t> bucket_deltas;  // per finite bound, cumulative
  };

  struct Series {
    Kind kind = Kind::kCounter;
    bool seen = false;  // baseline established; next sample records a point
    // Fixed-capacity ring: ring[(head + i) % capacity] is the i-th oldest.
    std::vector<ScalarPoint> ring;
    std::vector<HistPoint> hring;
    std::size_t head = 0;
    std::size_t count = 0;
    double base = 0.0;      // value folded out of the ring
    double last_raw = 0.0;  // last sampled raw value
    // Histogram baseline (cumulative, as sampled).
    std::vector<double> bounds;
    std::vector<std::uint64_t> last_cum;
    std::uint64_t last_count = 0;
    double last_sum = 0.0;
  };

  Series& upsert(std::string_view name, Kind kind, std::size_t bucket_bounds);
  void push_scalar(Series& s, std::uint64_t tick, double raw);
  static std::size_t point_bytes(const Series& s);
  const Series* find(std::string_view name) const;  // caller holds mu_
  // Sums the trailing window of `s`; fills per-bound cumulative deltas for
  // histograms when `buckets` is non-null.  Caller holds mu_.
  struct WindowSum {
    double increase = 0.0;
    double sum_delta = 0.0;
    std::size_t points = 0;
    std::uint64_t first_tick = 0;  // oldest tick in the window
    std::uint64_t last_tick = 0;
  };
  WindowSum window_sum(const Series& s, std::size_t window,
                       std::vector<std::uint64_t>* buckets) const;
  void mirror_locked();  // publishes tsdb.* registry metrics

  TsdbOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Series, std::less<>> series_;
  Stats stats_;
  std::uint64_t last_tick_ = 0;
  std::uint64_t mirrored_evictions_ = 0;  // registry counter high-water mark
};

}  // namespace wmesh::obs

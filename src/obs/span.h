// Scoped wall-time spans with causal trace context: per-span aggregates,
// 64-bit span/parent ids, and optional Chrome trace_event output.
//
//   void EtxGraph::dijkstra(...) {
//     WMESH_SPAN("etx.dijkstra");
//     ...
//   }
//
// Every span records its duration (microseconds) into the registry's
// per-name SpanAggregate -- count, total, self-time (exclusive of direct
// children), true min/max, parent-name counts, and the fixed-bucket latency
// histogram "span.<name>" behind p50/p90/p99 -- so `--metrics` output, the
// `--report` run reports and the OpenMetrics endpoint carry per-stage
// timing.  Counts are exact and deterministic across thread counts
// (wmesh::par shard boundaries depend only on the work size); durations are
// wall time.
//
// Trace context (obs v3): every span carries a 64-bit id derived
// deterministically from its parent's id and its ordinal among the parent's
// children (splitmix-style hash; roots draw from a process sequence).  The
// active context propagates through wmesh::par task capture: run_shards
// claims one child slot (a TaskGroup) on the enqueuing span, and each
// par.shard span derives its id from (parent id, group seq, shard index) --
// so the (name, span id, parent id) set of a trace is byte-identical at any
// thread count.  Children closing add their duration to the parent's
// child-time accumulator, which is how self-time stays exact even when the
// children ran on pool workers.
//
// When WMESH_TRACE_OUT=<path> is set, each span additionally appends a
// complete ("ph":"X") event -- with "args": {"span", "parent"} -- to an
// in-memory buffer written as Chrome trace_event JSON at process exit (or
// on flush_trace()).  Open it in chrome://tracing or ui.perfetto.dev.
//
// With -DWMESH_OBS_DISABLED the WMESH_SPAN macro compiles to nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace wmesh::obs {

// Mixes (parent id, child ordinal) into a child span id; never returns 0
// (0 means "no span").  Exposed so tests can predict ids.
std::uint64_t derive_span_id(std::uint64_t parent_id,
                             std::uint64_t seq) noexcept;

// Live context of one open span; stack-allocated inside ScopedSpan.
struct SpanContext {
  std::uint64_t id = 0;
  const char* name = nullptr;
  std::uint64_t child_seq = 0;              // ordinals handed to children
  std::atomic<std::uint64_t> child_us{0};   // direct children's wall time
  SpanContext* parent = nullptr;
};

// The innermost open span on this thread, or nullptr at top level.
SpanContext* current_span_context() noexcept;

// One claimed child slot on the enqueuing span, carried by value into a
// wmesh::par job so shard spans on any worker become deterministic children
// of the span that launched the region.  parent_child_us points into the
// enqueuing span's frame, which outlives the region (run_shards blocks).
struct TaskGroup {
  std::uint64_t parent_id = 0;              // 0 when no span was open
  const char* parent_name = nullptr;
  std::uint64_t group_seq = 0;
  std::atomic<std::uint64_t>* parent_child_us = nullptr;
};

// Claims the next child ordinal from the current span (or the process root
// sequence) for a parallel region.  Deterministic: called on the enqueuing
// thread, in program order.
TaskGroup claim_task_group() noexcept;

// Resets the process root-span sequence so id-determinism tests can compare
// runs.  Not for production use.
void reset_span_ids_for_test() noexcept;

// RAII span; must outlive nothing (stack only).  `name` must be a literal
// or otherwise outlive the tracing buffer.  The two-argument form takes the
// span aggregate up front so the destructor skips the registry lookup; the
// WMESH_SPAN macro caches it in a call-site static, making a span cost two
// clock reads plus a handful of relaxed atomics.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept;
  ScopedSpan(SpanAggregate& agg, const char* name) noexcept;
  // Shard-span form used by wmesh::par: the span becomes child `index` of
  // `group`, with an id derived from (parent id, group seq, index) -- the
  // same id no matter which worker executes the shard.
  ScopedSpan(SpanAggregate& agg, const char* name, const TaskGroup& group,
             std::size_t index) noexcept;
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  std::uint64_t span_id() const noexcept { return ctx_.id; }
  std::uint64_t parent_id() const noexcept { return parent_id_; }

 private:
  void open(std::uint64_t id, std::uint64_t parent_id,
            const char* parent_name,
            std::atomic<std::uint64_t>* parent_accum) noexcept;

  SpanAggregate* agg_;
  const char* name_;
  std::uint64_t start_us_;  // microseconds since process start
  std::uint64_t parent_id_ = 0;
  const char* parent_name_ = nullptr;
  // Parent's child-time accumulator (or the TaskGroup's); null for roots.
  std::atomic<std::uint64_t>* parent_accum_ = nullptr;
  SpanContext ctx_;
  SpanContext* saved_active_ = nullptr;
};

// True when WMESH_TRACE_OUT was set at first use (or after reinit).
bool trace_enabled() noexcept;

// Writes the buffered events to WMESH_TRACE_OUT as Chrome trace JSON and
// clears the buffer.  Idempotent; also runs automatically at exit.
void flush_trace();

// Renders the current buffer as trace JSON without touching any file.
std::string render_trace_json();

// Re-reads WMESH_TRACE_OUT (tests / tools that mutate the environment).
void reinit_tracing_from_env();

}  // namespace wmesh::obs

#if defined(WMESH_OBS_DISABLED)
#define WMESH_SPAN(name) static_cast<void>(0)
#else
#define WMESH_SPAN_CONCAT2(a, b) a##b
#define WMESH_SPAN_CONCAT(a, b) WMESH_SPAN_CONCAT2(a, b)
// The immediately-invoked lambda gives each call site a static reference to
// its span aggregate: one registry lookup ever, not one per execution.
#define WMESH_SPAN(name)                                                \
  ::wmesh::obs::ScopedSpan WMESH_SPAN_CONCAT(wmesh_span_, __COUNTER__)( \
      []() -> ::wmesh::obs::SpanAggregate& {                            \
        static ::wmesh::obs::SpanAggregate& wmesh_span_agg_ =           \
            ::wmesh::obs::Registry::instance().span_aggregate(name);    \
        return wmesh_span_agg_;                                         \
      }(),                                                              \
      name)
#endif

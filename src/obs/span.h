// Scoped wall-time spans: per-span aggregates plus optional Chrome
// trace_event output.
//
//   void EtxGraph::dijkstra(...) {
//     WMESH_SPAN("etx.dijkstra");
//     ...
//   }
//
// Every span records its duration (microseconds) into the registry's
// per-name SpanAggregate -- count, total, true min/max, and the
// fixed-bucket latency histogram "span.<name>" behind p50/p90/p99 -- so
// `--metrics` output and the `--report` run reports carry per-stage timing.
// Counts are exact and deterministic across thread counts (wmesh::par
// shard boundaries depend only on the work size); durations are wall time.
// When WMESH_TRACE_OUT=<path> is set, each span additionally appends a
// complete ("ph":"X") event to an in-memory buffer that is written as
// Chrome trace_event JSON at process exit (or on flush_trace()).  Open the
// file in chrome://tracing or https://ui.perfetto.dev to get a flamegraph
// of the analysis pipeline.
//
// With -DWMESH_OBS_DISABLED the WMESH_SPAN macro compiles to nothing.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace wmesh::obs {

// RAII span; must outlive nothing (stack only).  `name` must be a literal
// or otherwise outlive the tracing buffer.  The two-argument form takes the
// span aggregate up front so the destructor skips the registry lookup; the
// WMESH_SPAN macro caches it in a call-site static, making a span cost two
// clock reads plus a handful of relaxed atomics.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept;
  ScopedSpan(SpanAggregate& agg, const char* name) noexcept;
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanAggregate* agg_;
  const char* name_;
  std::uint64_t start_us_;  // microseconds since process start
};

// True when WMESH_TRACE_OUT was set at first use (or after reinit).
bool trace_enabled() noexcept;

// Writes the buffered events to WMESH_TRACE_OUT as Chrome trace JSON and
// clears the buffer.  Idempotent; also runs automatically at exit.
void flush_trace();

// Renders the current buffer as trace JSON without touching any file.
std::string render_trace_json();

// Re-reads WMESH_TRACE_OUT (tests / tools that mutate the environment).
void reinit_tracing_from_env();

}  // namespace wmesh::obs

#if defined(WMESH_OBS_DISABLED)
#define WMESH_SPAN(name) static_cast<void>(0)
#else
#define WMESH_SPAN_CONCAT2(a, b) a##b
#define WMESH_SPAN_CONCAT(a, b) WMESH_SPAN_CONCAT2(a, b)
// The immediately-invoked lambda gives each call site a static reference to
// its span aggregate: one registry lookup ever, not one per execution.
#define WMESH_SPAN(name)                                                \
  ::wmesh::obs::ScopedSpan WMESH_SPAN_CONCAT(wmesh_span_, __COUNTER__)( \
      []() -> ::wmesh::obs::SpanAggregate& {                            \
        static ::wmesh::obs::SpanAggregate& wmesh_span_agg_ =           \
            ::wmesh::obs::Registry::instance().span_aggregate(name);    \
        return wmesh_span_agg_;                                         \
      }(),                                                              \
      name)
#endif

// OpenMetrics text exposition of the metrics registry, plus a strict
// parser/linter used by wmesh_top, the openmetrics_lint ctest and the
// export-server tests.
//
// `render_openmetrics(snapshot)` maps the registry onto the OpenMetrics
// text format (the Prometheus exposition dialect):
//
//   - every family is prefixed `wmesh_` and dots become underscores
//     ("etx.relax_rounds" -> wmesh_etx_relax_rounds);
//   - counters render as `# TYPE f counter` + `f_total <v>`;
//   - gauges render as `# TYPE f gauge` + `f <v>`;
//   - histograms render with cumulative `f_bucket{le="<bound>"}` series,
//     an explicit `le="+Inf"` bucket, and `f_sum` / `f_count`;
//   - span aggregates render as shared families labeled by span name --
//     wmesh_span_count_total{span="etx.dijkstra"}, wmesh_span_us_total,
//     wmesh_span_self_us_total and the causal edge counts
//     wmesh_span_parent_total{span="...",parent="..."};
//   - the document ends with `# EOF`.
//
// The parser is intentionally strict about what the renderer emits (it is a
// lint, not a general scraper): unknown lines, samples without a TYPE,
// non-cumulative buckets or counter decreases between two scrapes are
// errors.  Keeping render and lint in one translation unit means the ctest
// exercises the real exposition end-to-end over a live socket.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace wmesh::obs {

// Renders `s` in OpenMetrics text format (terminated by "# EOF\n").
std::string render_openmetrics(const Snapshot& s);

// One parsed sample line: `name{labels} value`.
struct OmSample {
  std::string name;  // full sample name including _total/_bucket suffix
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;

  // Label value or "" when absent.
  std::string label(std::string_view key) const;
};

// A parsed exposition document.
struct OmDocument {
  // family name -> declared type ("counter", "gauge", "histogram").
  std::map<std::string, std::string> types;
  std::vector<OmSample> samples;
  bool saw_eof = false;

  // First sample with this exact name and (subset-matched) labels, or
  // nullptr.  Pass {} to match the first sample of the name.
  const OmSample* find(
      std::string_view name,
      const std::vector<std::pair<std::string, std::string>>& labels = {})
      const;
};

// Parses an exposition document.  Returns false (with *error set) on any
// malformed line, duplicate TYPE, or missing `# EOF` terminator.
bool parse_openmetrics(std::string_view text, OmDocument* out,
                       std::string* error);

// Structural lint over one document: every sample maps to a declared
// family; counter samples use the _total suffix and are finite and
// non-negative; histogram buckets have ascending `le` bounds, cumulative
// non-decreasing counts, and an `le="+Inf"` bucket equal to `_count`.
bool lint_openmetrics(const OmDocument& doc, std::string* error);

// Cross-scrape lint: every counter-family sample present in `earlier` must
// exist in `later` with a value >= the earlier one (counters are monotone
// within a process).
bool check_counters_monotone(const OmDocument& earlier,
                             const OmDocument& later, std::string* error);

}  // namespace wmesh::obs

// OpenMetrics text exposition of the metrics registry, plus a strict
// parser/linter used by wmesh_top, the openmetrics_lint ctest and the
// export-server tests.
//
// `render_openmetrics(snapshot)` maps the registry onto the OpenMetrics
// text format (the Prometheus exposition dialect):
//
//   - every family is prefixed `wmesh_` and dots become underscores
//     ("etx.relax_rounds" -> wmesh_etx_relax_rounds);
//   - a registry name may carry a `{k=v,k2=v2}` label suffix
//     ("health.score{net=3,std=bg}"): the base name becomes the family and
//     the labels render as proper quoted OpenMetrics labels, with every
//     labeled series of one base grouped under a single TYPE declaration;
//   - every family gets `# TYPE`, `# HELP` and `# UNIT` lines; help and
//     unit come from the central reference table (openmetrics_reference),
//     with a suffix-derived unit fallback so new families can never render
//     an unannotated (lint-failing) exposition;
//   - counters render as `f_total <v>`, gauges as `f <v>`;
//   - histograms render with cumulative `f_bucket{le="<bound>"}` series,
//     an explicit `le="+Inf"` bucket, and `f_sum` / `f_count`;
//   - span aggregates render as shared families labeled by span name --
//     wmesh_span_count_total{span="etx.dijkstra"}, wmesh_span_us_total,
//     wmesh_span_self_us_total and the causal edge counts
//     wmesh_span_parent_total{span="...",parent="..."};
//   - the document ends with `# EOF`.
//
// The parser is intentionally strict about what the renderer emits (it is a
// lint, not a general scraper): unknown lines, samples without a TYPE,
// duplicate HELP/UNIT, non-cumulative buckets or counter decreases between
// two scrapes are errors, and the linter fails any wmesh_* family missing
// its HELP or UNIT annotation.  Keeping render and lint in one translation
// unit means the ctest exercises the real exposition end-to-end over a
// live socket.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace wmesh::obs {

// Renders `s` in OpenMetrics text format (terminated by "# EOF\n").
std::string render_openmetrics(const Snapshot& s);

// Help text and unit for one family, from the central reference table.
// Families outside the table get a generic help line and a unit derived
// from the family-name suffix (_us -> microseconds, _bytes -> bytes,
// _s -> seconds, otherwise "count"), so every rendered family is always
// fully annotated.
struct FamilyReference {
  std::string help;
  std::string unit;
};
FamilyReference openmetrics_reference(std::string_view family);

// One parsed sample line: `name{labels} value`.
struct OmSample {
  std::string name;  // full sample name including _total/_bucket suffix
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;

  // Label value or "" when absent.
  std::string label(std::string_view key) const;
};

// A parsed exposition document.
struct OmDocument {
  // family name -> declared type ("counter", "gauge", "histogram").
  std::map<std::string, std::string> types;
  // family name -> HELP text / UNIT token, as declared.
  std::map<std::string, std::string> helps;
  std::map<std::string, std::string> units;
  std::vector<OmSample> samples;
  bool saw_eof = false;

  // First sample with this exact name and (subset-matched) labels, or
  // nullptr.  Pass {} to match the first sample of the name.
  const OmSample* find(
      std::string_view name,
      const std::vector<std::pair<std::string, std::string>>& labels = {})
      const;
};

// Parses an exposition document.  Returns false (with *error set) on any
// malformed line, duplicate TYPE, or missing `# EOF` terminator.
bool parse_openmetrics(std::string_view text, OmDocument* out,
                       std::string* error);

// Structural lint over one document: every sample maps to a declared
// family; counter samples use the _total suffix and are finite and
// non-negative; histogram buckets have ascending `le` bounds, cumulative
// non-decreasing counts, and an `le="+Inf"` bucket equal to `_count`;
// every declared wmesh_* family carries both a HELP and a UNIT line.
bool lint_openmetrics(const OmDocument& doc, std::string* error);

// Cross-scrape lint: every counter-family sample present in `earlier` must
// exist in `later` with a value >= the earlier one (counters are monotone
// within a process).
bool check_counters_monotone(const OmDocument& earlier,
                             const OmDocument& later, std::string* error);

}  // namespace wmesh::obs

// Process-global metrics registry: counters, gauges, fixed-bucket
// histograms and span aggregates, registered by name.
//
// Every analysis stage (generation, trace I/O, ETX/ExOR, look-up tables,
// hidden triples, mobility, DSDV) reports counters through the WMESH_*
// macros below.  The macros cache the registry lookup in a function-local
// static, so the steady-state cost of an increment is one relaxed atomic
// add; compiling with -DWMESH_OBS_DISABLED turns every macro into a no-op
// so the library can be built with zero observability overhead.
//
// `Registry::instance().snapshot()` returns a deterministic (name-sorted)
// view that renders to a util::text_table, to CSV and to JSON -- the same
// snapshot backs the tools' `--metrics[=path]` flag, the `--report` run
// reports (obs/report.h) and the bench report footers.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/flight.h"

namespace wmesh::obs {

class Counter;

// Thread-local write buffer for counters: while a CounterBatch is active on
// a thread, every Counter::add on that thread accumulates into the batch
// and the shared atomics are touched exactly once, at flush (or scope
// exit).  The wmesh::par pool installs one batch per shard, so analysis
// code inside parallel regions never contends on counter cache lines.
// Batches nest (the inner one wins until it flushes).
//
// Active batches register themselves in a process-global list, and pending
// deltas are stored as relaxed atomics, so
// `Registry::snapshot(SnapshotFlush::kActiveBatches)` can drain every
// in-flight batch from any thread: a snapshot taken mid-region (a run
// report, a concurrent --metrics dump) never under-counts.  The owning
// thread's fast path is unchanged -- an uncontended relaxed fetch_add on a
// thread-local cache line; the batch mutex is only taken when a *new*
// counter is first buffered or when a remote flusher walks the entries.
class CounterBatch {
 public:
  CounterBatch() noexcept;
  ~CounterBatch();

  CounterBatch(const CounterBatch&) = delete;
  CounterBatch& operator=(const CounterBatch&) = delete;

  // Adds every pending delta to its counter and zeroes the buffer.  Safe
  // to call from any thread; deltas are counted exactly once.
  void flush() noexcept;

  // Buffers one increment for `c`; on allocation failure falls back to a
  // direct atomic add.  Called by Counter::add when a batch is active.
  void buffer(Counter* c, std::uint64_t n) noexcept;

  // The innermost batch active on this thread, or nullptr.
  static CounterBatch* active() noexcept;

  // Flushes every batch currently active on any thread (snapshot
  // kActiveBatches path).  Batches stay active; only pending deltas move.
  static void flush_all_active() noexcept;

 private:
  struct Entry {
    Counter* counter;
    std::atomic<std::uint64_t> pending;
    explicit Entry(Counter* c, std::uint64_t n) : counter(c), pending(n) {}
  };

  CounterBatch* prev_;
  // Appends and remote walks take mu_; the owner's scan-and-add path does
  // not (only the owner appends, and a deque never moves its elements).
  std::mutex mu_;
  // Few distinct counters per shard: a scanned deque beats a hash map.
  std::deque<Entry> pending_;
};

// Monotonic event count.  Thread-safe; increments are relaxed atomics,
// routed through the thread's CounterBatch when one is active.  Registry-
// owned counters know their name (bind_name) so the flight recorder can
// attribute direct increments and batch flushes.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (CounterBatch* batch = CounterBatch::active()) {
      batch->buffer(this, n);
      return;
    }
    value_.fetch_add(n, std::memory_order_relaxed);
    if (flight::enabled() && name_ != nullptr) {
      flight::record(flight::EventKind::kCounter, name_, n, 0);
    }
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

  // Registry internal: points at the registry's stable map-key c_str().
  void bind_name(const char* name) noexcept { name_ = name; }
  const char* bound_name() const noexcept { return name_; }

 private:
  friend class CounterBatch;  // flush adds pending deltas directly
  std::atomic<std::uint64_t> value_{0};
  const char* name_ = nullptr;
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram.  `bounds` are ascending inclusive upper bounds;
// one implicit overflow bucket catches everything above the last bound.
// Thread-safe: bucket counts, count and sum are relaxed atomics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  std::size_t bucket_count() const noexcept { return buckets_.size(); }
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Bucket-interpolated quantile (q in [0, 1]); 0 when empty.  Values in
  // the overflow bucket report the last finite bound.
  double quantile(double q) const noexcept;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Per-span-name aggregate: exact count/total plus true min/max and self-
// time (duration exclusive of direct children) on top of the fixed-bucket
// latency histogram (which supplies p50/p90/p99).  Every WMESH_SPAN records
// here; the histogram member is also registered under "span.<name>" so the
// classic histogram renderings keep working.  The aggregate also counts
// which span names parented this one (a small lock-free slot array), so
// snapshots carry the causal structure, not just the flat timings.
// Thread-safe: everything is relaxed atomics (min/max via CAS loops, parent
// slots via CAS-claimed keys), so spans closing concurrently on wmesh::par
// workers never lock.  Counts are exact and -- because shard boundaries and
// span ids depend only on the work size -- deterministic across thread
// counts; durations of course are not.
class SpanAggregate {
 public:
  // Distinct parent names tracked per span; the surplus lands in "(other)".
  static constexpr std::size_t kMaxParents = 8;

  explicit SpanAggregate(Histogram& hist) noexcept : hist_(hist) {}

  // `parent_name` is the name of the enclosing span, or nullptr for a
  // root; it must outlive the aggregate (span names are literals).
  void record(double us, double self_us, const char* parent_name) noexcept;
  // Leaf convenience (tests, ad-hoc timings): self == total, root parent.
  void record(double us) noexcept { record(us, us, nullptr); }

  std::uint64_t count() const noexcept { return hist_.count(); }
  double total() const noexcept { return hist_.sum(); }
  double self_total() const noexcept {
    return self_total_.load(std::memory_order_relaxed);
  }
  // 0 when empty, so an unused span renders as zeros rather than +/-inf.
  double min() const noexcept;
  double max() const noexcept;
  const Histogram& histogram() const noexcept { return hist_; }

  // Name-sorted (parent name, spans recorded under it) pairs; roots appear
  // as "(root)", overflow past the slot capacity as "(other)".
  std::vector<std::pair<std::string, std::uint64_t>> parent_counts() const;

  void reset() noexcept;

 private:
  void record_parent(const char* name) noexcept;

  struct ParentSlot {
    std::atomic<const char*> key{nullptr};
    std::atomic<std::uint64_t> count{0};
  };

  Histogram& hist_;  // the registry-owned "span.<name>" histogram
  std::atomic<double> min_{kUnset};
  std::atomic<double> max_{-kUnset};
  std::atomic<double> self_total_{0.0};
  ParentSlot parents_[kMaxParents];
  std::atomic<std::uint64_t> parent_other_{0};
  static constexpr double kUnset = 1e300;
};

// Default bounds for span wall-time histograms: exponential microsecond
// buckets from 1 us to ~17 s.
std::vector<double> span_time_bounds_us();

// Bounds for query/request latency histograms: a 1-2-5 ladder through the
// sub-millisecond range (where most cached serve queries land -- the
// doubling ladder above has only 10 buckets below 1 ms) and doubling
// buckets from 2 ms to ~16 s above it.
std::vector<double> query_time_bounds_us();

// Deterministic, name-sorted view of the registry at one instant.
struct Snapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeRow {
    std::string name;
    double value;
  };
  struct HistogramRow {
    std::string name;
    std::uint64_t count;
    double sum;
    double p50;
    double p90;
    double p99;
    // Bucket detail for the OpenMetrics exposition: ascending inclusive
    // upper bounds and *cumulative* counts per bound (the implicit +Inf
    // bucket is `count`).  Not rendered by table/CSV/JSON.
    std::vector<double> bounds;
    std::vector<std::uint64_t> cumulative;
  };
  struct SpanRow {
    std::string name;  // bare span name ("etx.dijkstra", "par.shard")
    std::uint64_t count;
    double total_us;
    double self_us;  // exclusive of direct children (clamped at 0)
    double min_us;
    double max_us;
    double p50_us;
    double p90_us;
    double p99_us;
    // Parent-name attribution, e.g. {("etx.gains", 64), ("(root)", 1)}.
    std::vector<std::pair<std::string, std::uint64_t>> parents;
  };

  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;
  std::vector<SpanRow> spans;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           spans.empty();
  }

  // Human-readable rendition via util::text_table.
  std::string render_table() const;
  // Long-form CSV: kind,name,value,count,sum,p50,p90,p99,min,max,self,
  // parents (one header row; span rows fill min/max/self/parents, the
  // other kinds leave them empty).  Name and parents fields are RFC-4180
  // quoted when they contain commas, quotes or newlines, so the document
  // round-trips through util::parse_csv_text.
  std::string to_csv() const;
  // {"counters": {...}, "gauges": {...}, "histograms": {...},
  //  "spans": {...}} with name-sorted stable key order.
  std::string to_json() const;
};

// Whether Registry::snapshot first drains in-flight CounterBatches.  The
// tools' --metrics and --report paths use kActiveBatches so a snapshot can
// never under-count work still buffered on other threads.
enum class SnapshotFlush { kNone, kActiveBatches };

// The process-global registry.  Metric objects are created on first use and
// live for the process lifetime; returned references stay valid forever
// (reset_for_test zeroes values but never removes registrations, so the
// references cached by the macros below cannot dangle).
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // `bounds` is used only when the histogram does not exist yet.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  // Histogram named "span.<name>" with span_time_bounds_us().
  Histogram& span_histogram(std::string_view name);
  // Aggregate keyed by the bare span name, wrapping span_histogram(name).
  SpanAggregate& span_aggregate(std::string_view name);

  Snapshot snapshot(SnapshotFlush flush = SnapshotFlush::kNone) const;
  // Zeroes every registered metric (registrations remain).
  void reset_for_test();

  // Emits the flight recorder's merged ring to WMESH_FLIGHT_OUT (see
  // obs/flight.h).  False when the recorder is disarmed or unwritable.
  bool dump_flight();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, SpanAggregate, std::less<>> spans_;
};

}  // namespace wmesh::obs

#if defined(WMESH_OBS_DISABLED)

#define WMESH_COUNTER_ADD(name, n) \
  do {                             \
    (void)sizeof(n);               \
  } while (0)
#define WMESH_COUNTER_INC(name) static_cast<void>(0)
#define WMESH_GAUGE_SET(name, v) \
  do {                           \
    (void)sizeof(v);             \
  } while (0)
#define WMESH_HISTOGRAM_RECORD(name, v) \
  do {                                  \
    (void)sizeof(v);                    \
  } while (0)
#define WMESH_HISTOGRAM_RECORD_BOUNDS(name, v, bounds) \
  do {                                                 \
    (void)sizeof(v);                                   \
  } while (0)

#else

// `name` must be a string literal (one registry lookup per call site).
#define WMESH_COUNTER_ADD(name, n)                          \
  do {                                                      \
    static ::wmesh::obs::Counter& wmesh_obs_counter_ =      \
        ::wmesh::obs::Registry::instance().counter(name);   \
    wmesh_obs_counter_.add(static_cast<std::uint64_t>(n));  \
  } while (0)
#define WMESH_COUNTER_INC(name) WMESH_COUNTER_ADD(name, 1)
#define WMESH_GAUGE_SET(name, v)                        \
  do {                                                  \
    static ::wmesh::obs::Gauge& wmesh_obs_gauge_ =      \
        ::wmesh::obs::Registry::instance().gauge(name); \
    wmesh_obs_gauge_.set(static_cast<double>(v));       \
  } while (0)
// Records into a histogram with span-time bounds under the literal name.
#define WMESH_HISTOGRAM_RECORD(name, v)                       \
  do {                                                        \
    static ::wmesh::obs::Histogram& wmesh_obs_hist_ =         \
        ::wmesh::obs::Registry::instance().histogram(         \
            name, ::wmesh::obs::span_time_bounds_us());       \
    wmesh_obs_hist_.record(static_cast<double>(v));           \
  } while (0)
// As above with an explicit bounds expression (evaluated once, on first
// registration), e.g. WMESH_HISTOGRAM_RECORD_BOUNDS("serve.query_us", us,
// ::wmesh::obs::query_time_bounds_us()).
#define WMESH_HISTOGRAM_RECORD_BOUNDS(name, v, bounds)          \
  do {                                                          \
    static ::wmesh::obs::Histogram& wmesh_obs_hist_ =           \
        ::wmesh::obs::Registry::instance().histogram(name,      \
                                                     (bounds)); \
    wmesh_obs_hist_.record(static_cast<double>(v));             \
  } while (0)

#endif  // WMESH_OBS_DISABLED

#include "obs/export_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/socket_util.h"

namespace wmesh::obs {
namespace {

// Reads until the blank line ending the request head (we ignore the head
// itself -- every request gets the metrics document).
void drain_request_head(int fd) noexcept {
  char buf[512];
  std::string head;
  for (int rounds = 0; rounds < 16; ++rounds) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;
    head.append(buf, static_cast<std::size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      return;
    }
    if (head.size() > 8192) return;  // oversized head: answer anyway
  }
}

}  // namespace

struct ExportServer::Impl {
  int listen_fd = -1;
  std::string unix_path;  // empty for TCP
  std::atomic<bool> stop{false};
  WakePipe wake;
  std::thread thread;
  // Serializes stop(): the first caller wakes + joins the serving thread;
  // a concurrent second caller (say, stop() racing the destructor) blocks
  // here until the join finished instead of returning while the thread is
  // still live -- the old exchange-only guard let it race the teardown.
  std::mutex stop_mu;
};

std::unique_ptr<ExportServer> ExportServer::start(const std::string& address,
                                                  std::string* error) {
  std::string bound, unix_path;
  const int fd = bind_listen_socket(address, &bound, &unix_path, error);
  if (fd < 0) return nullptr;

  auto server = std::unique_ptr<ExportServer>(new ExportServer());
  server->impl_ = std::make_unique<Impl>();
  server->impl_->listen_fd = fd;
  server->impl_->unix_path = unix_path;
  server->bound_ = bound;
  if (!server->impl_->wake.ok()) {
    *error = "cannot create shutdown wakeup pipe";
    ::close(fd);
    if (!unix_path.empty()) ::unlink(unix_path.c_str());
    return nullptr;
  }
  ExportServer* raw = server.get();
  server->impl_->thread = std::thread([raw] { raw->serve_loop(); });
  WMESH_LOG_INFO("obs.export", kv("event", "listening"), kv("addr", bound));
  return server;
}

ExportServer::~ExportServer() { stop(); }

void ExportServer::stop() noexcept {
  if (!impl_) return;
  std::lock_guard<std::mutex> lock(impl_->stop_mu);
  if (impl_->stop.exchange(true)) return;  // joined by the caller before us
  impl_->wake.wake();
  if (impl_->thread.joinable()) impl_->thread.join();
  if (impl_->listen_fd >= 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
  }
  if (!impl_->unix_path.empty()) ::unlink(impl_->unix_path.c_str());
}

void ExportServer::serve_loop() noexcept {
  Impl& im = *impl_;
  while (!im.stop.load(std::memory_order_acquire)) {
    pollfd pfds[2] = {{im.listen_fd, POLLIN, 0},
                      {im.wake.read_fd(), POLLIN, 0}};
    // No timeout: stop() wakes the pipe, so the join is deterministic
    // instead of waiting out a poll interval.
    const int pr = ::poll(pfds, 2, -1);
    if (pr <= 0) continue;
    if (im.stop.load(std::memory_order_acquire)) break;
    if ((pfds[0].revents & POLLIN) == 0) continue;
    // The listen fd is non-blocking: readiness can evaporate (aborted
    // connection), and a blocking accept here would hang shutdown.
    const int client = ::accept(im.listen_fd, nullptr, nullptr);
    if (client < 0) continue;
    drain_request_head(client);
    // kActiveBatches: counters buffered inside running shards are flushed,
    // so a mid-flight scrape never under-counts.
    const std::string body = render_openmetrics(
        Registry::instance().snapshot(SnapshotFlush::kActiveBatches));
    std::string resp =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: application/openmetrics-text; version=1.0.0; "
        "charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
    send_all(client, resp.data(), resp.size());
    ::close(client);
    WMESH_COUNTER_INC("export.scrapes");
  }
}

bool scrape_openmetrics_once(const std::string& address, std::string* body,
                             std::string* error) {
  const int fd = connect_socket(address, error);
  if (fd < 0) return false;

  const char req[] = "GET /metrics HTTP/1.0\r\nConnection: close\r\n\r\n";
  send_all(fd, req, sizeof(req) - 1);
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  std::size_t head_end = resp.find("\r\n\r\n");
  std::size_t body_off = head_end + 4;
  if (head_end == std::string::npos) {
    head_end = resp.find("\n\n");
    body_off = head_end + 2;
  }
  if (head_end == std::string::npos) {
    *error = "malformed HTTP response (" + std::to_string(resp.size()) +
             " bytes, no header terminator)";
    return false;
  }
  if (resp.rfind("HTTP/1.0 200", 0) != 0 &&
      resp.rfind("HTTP/1.1 200", 0) != 0) {
    *error = "non-200 response: " + resp.substr(0, resp.find('\n'));
    return false;
  }
  *body = resp.substr(body_off);
  return true;
}

}  // namespace wmesh::obs

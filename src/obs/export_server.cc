#include "obs/export_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"

namespace wmesh::obs {
namespace {

struct ParsedAddress {
  bool is_unix = false;
  std::string unix_path;
  std::string host;       // TCP only
  std::uint16_t port = 0;  // TCP only
};

bool parse_address(const std::string& address, ParsedAddress* out,
                   std::string* error) {
  if (address.rfind("unix:", 0) == 0) {
    out->is_unix = true;
    out->unix_path = address.substr(5);
    if (out->unix_path.empty()) {
      *error = "empty unix socket path in '" + address + "'";
      return false;
    }
    if (out->unix_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      *error = "unix socket path too long: " + out->unix_path;
      return false;
    }
    return true;
  }
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    *error = "address '" + address +
             "' is not unix:<path> or <host>:<port>";
    return false;
  }
  out->host = address.substr(0, colon);
  if (out->host.empty()) out->host = "127.0.0.1";
  const std::string port_str = address.substr(colon + 1);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || port > 65535) {
    *error = "bad port in '" + address + "'";
    return false;
  }
  out->port = static_cast<std::uint16_t>(port);
  return true;
}

// Reads until the blank line ending the request head (we ignore the head
// itself -- every request gets the metrics document).
void drain_request_head(int fd) noexcept {
  char buf[512];
  std::string head;
  for (int rounds = 0; rounds < 16; ++rounds) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;
    head.append(buf, static_cast<std::size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      return;
    }
    if (head.size() > 8192) return;  // oversized head: answer anyway
  }
}

void send_all(int fd, const char* data, std::size_t len) noexcept {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

struct ExportServer::Impl {
  int listen_fd = -1;
  bool is_unix = false;
  std::string unix_path;
  std::atomic<bool> stop{false};
  std::thread thread;
};

std::unique_ptr<ExportServer> ExportServer::start(const std::string& address,
                                                  std::string* error) {
  ParsedAddress addr;
  if (!parse_address(address, &addr, error)) return nullptr;

  int fd = -1;
  std::string bound;
  if (addr.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return nullptr;
    }
    ::unlink(addr.unix_path.c_str());  // stale socket from a previous run
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.unix_path.c_str(),
                 sizeof(sa.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      *error = "bind " + addr.unix_path + ": " + std::strerror(errno);
      ::close(fd);
      return nullptr;
    }
    bound = "unix:" + addr.unix_path;
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return nullptr;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(addr.port);
    if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
      *error = "bad host '" + addr.host + "' (use a literal IPv4 address)";
      ::close(fd);
      return nullptr;
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      *error = "bind " + address + ": " + std::strerror(errno);
      ::close(fd);
      return nullptr;
    }
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len);
    char host[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &actual.sin_addr, host, sizeof(host));
    bound = std::string(host) + ':' + std::to_string(ntohs(actual.sin_port));
  }
  if (::listen(fd, 16) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    if (addr.is_unix) ::unlink(addr.unix_path.c_str());
    return nullptr;
  }

  auto server = std::unique_ptr<ExportServer>(new ExportServer());
  server->impl_ = std::make_unique<Impl>();
  server->impl_->listen_fd = fd;
  server->impl_->is_unix = addr.is_unix;
  server->impl_->unix_path = addr.unix_path;
  server->bound_ = bound;
  ExportServer* raw = server.get();
  server->impl_->thread = std::thread([raw] { raw->serve_loop(); });
  WMESH_LOG_INFO("obs.export", kv("event", "listening"), kv("addr", bound));
  return server;
}

ExportServer::~ExportServer() { stop(); }

void ExportServer::stop() noexcept {
  if (!impl_ || impl_->stop.exchange(true)) return;
  if (impl_->thread.joinable()) impl_->thread.join();
  if (impl_->listen_fd >= 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
  }
  if (impl_->is_unix) ::unlink(impl_->unix_path.c_str());
}

void ExportServer::serve_loop() noexcept {
  Impl& im = *impl_;
  while (!im.stop.load(std::memory_order_relaxed)) {
    pollfd pfd{im.listen_fd, POLLIN, 0};
    // Short poll timeout bounds stop() latency without a wakeup pipe.
    const int pr = ::poll(&pfd, 1, 100);
    if (pr <= 0) continue;
    const int client = ::accept(im.listen_fd, nullptr, nullptr);
    if (client < 0) continue;
    drain_request_head(client);
    // kActiveBatches: counters buffered inside running shards are flushed,
    // so a mid-flight scrape never under-counts.
    const std::string body = render_openmetrics(
        Registry::instance().snapshot(SnapshotFlush::kActiveBatches));
    std::string resp =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: application/openmetrics-text; version=1.0.0; "
        "charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
    send_all(client, resp.data(), resp.size());
    ::close(client);
    WMESH_COUNTER_INC("export.scrapes");
  }
}

bool scrape_openmetrics_once(const std::string& address, std::string* body,
                             std::string* error) {
  ParsedAddress addr;
  if (!parse_address(address, &addr, error)) return false;

  int fd = -1;
  if (addr.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.unix_path.c_str(),
                 sizeof(sa.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      *error = "connect " + addr.unix_path + ": " + std::strerror(errno);
      ::close(fd);
      return false;
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(addr.port);
    if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
      *error = "bad host '" + addr.host + "'";
      ::close(fd);
      return false;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      *error = "connect " + address + ": " + std::strerror(errno);
      ::close(fd);
      return false;
    }
  }

  const char req[] = "GET /metrics HTTP/1.0\r\nConnection: close\r\n\r\n";
  send_all(fd, req, sizeof(req) - 1);
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  std::size_t head_end = resp.find("\r\n\r\n");
  std::size_t body_off = head_end + 4;
  if (head_end == std::string::npos) {
    head_end = resp.find("\n\n");
    body_off = head_end + 2;
  }
  if (head_end == std::string::npos) {
    *error = "malformed HTTP response (" + std::to_string(resp.size()) +
             " bytes, no header terminator)";
    return false;
  }
  if (resp.rfind("HTTP/1.0 200", 0) != 0 &&
      resp.rfind("HTTP/1.1 200", 0) != 0) {
    *error = "non-200 response: " + resp.substr(0, resp.find('\n'));
    return false;
  }
  *body = resp.substr(body_off);
  return true;
}

}  // namespace wmesh::obs

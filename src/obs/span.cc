#include "obs/span.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"

namespace wmesh::obs {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point trace_epoch() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            trace_epoch())
          .count());
}

struct TraceEvent {
  const char* name;
  std::uint64_t ts_us;
  std::uint64_t dur_us;
  std::uint32_t tid;
};

// Cap the buffer so a long run with tracing enabled cannot grow without
// bound; dropped events are counted and reported at flush time.
constexpr std::size_t kMaxTraceEvents = 1u << 20;

// Mirror of TraceState::enabled readable without the mutex: the span
// destructor checks it on every span, which must stay lock-free.
std::atomic<bool> g_trace_enabled{false};

struct TraceState {
  std::mutex mu;
  std::string path;
  bool enabled = false;
  bool flushed = false;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;

  TraceState() { reinit_unlocked(); }

  void reinit_unlocked() {
    enabled = false;
    flushed = false;
    events.clear();
    dropped = 0;
    if (const char* p = std::getenv("WMESH_TRACE_OUT")) {
      path = p;
      enabled = !path.empty();
    } else {
      path.clear();
    }
    g_trace_enabled.store(enabled, std::memory_order_relaxed);
  }
};

TraceState& trace_state() {
  static TraceState* s = []() {
    auto* state = new TraceState();  // leaked: written during atexit
    std::atexit([] { flush_trace(); });
    return state;
  }();
  return *s;
}

// Force TraceState construction (env read + atexit flush registration) at
// startup: the span destructor only reads g_trace_enabled and must not pay
// for the magic-static check.
[[maybe_unused]] const bool g_trace_init = (trace_state(), true);

std::uint32_t thread_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1);
  return tid;
}

// [[maybe_unused]]: the only caller is compiled out under WMESH_OBS_DISABLED.
[[maybe_unused]] void record_trace_event(const char* name,
                                         std::uint64_t start_us,
                                         std::uint64_t dur_us) {
  TraceState& s = trace_state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.enabled) return;
  if (s.events.size() >= kMaxTraceEvents) {
    ++s.dropped;
    return;
  }
  s.events.push_back({name, start_us, dur_us, thread_tid()});
}

void append_json_events(std::string& out,
                        const std::vector<TraceEvent>& events) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i != 0) out += ",\n";
    out += "    {\"name\": \"";
    out += e.name;  // span names are identifier-style literals
    out += "\", \"cat\": \"wmesh\", \"ph\": \"X\", \"ts\": ";
    out += std::to_string(e.ts_us);
    out += ", \"dur\": ";
    out += std::to_string(e.dur_us);
    out += ", \"pid\": 1, \"tid\": ";
    out += std::to_string(e.tid);
    out += "}";
  }
}

}  // namespace

ScopedSpan::ScopedSpan(const char* name) noexcept
    : agg_(&Registry::instance().span_aggregate(name)),
      name_(name),
      start_us_(now_us()) {}

ScopedSpan::ScopedSpan(SpanAggregate& agg, const char* name) noexcept
    : agg_(&agg), name_(name), start_us_(now_us()) {}

ScopedSpan::~ScopedSpan() {
#if !defined(WMESH_OBS_DISABLED)
  const std::uint64_t end_us = now_us();
  const std::uint64_t dur_us = end_us - start_us_;
  agg_->record(static_cast<double>(dur_us));
  if (g_trace_enabled.load(std::memory_order_relaxed)) {
    record_trace_event(name_, start_us_, dur_us);
  }
#endif
}

bool trace_enabled() noexcept {
  // Ensure lazy init has happened before reading the mirror flag.
  trace_state();
  return g_trace_enabled.load(std::memory_order_relaxed);
}

std::string render_trace_json() {
  TraceState& s = trace_state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::string out = "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  append_json_events(out, s.events);
  out += "\n  ]\n}\n";
  return out;
}

void flush_trace() {
  TraceState& s = trace_state();
  std::string path;
  std::string json;
  std::uint64_t dropped = 0;
  std::size_t count = 0;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.enabled || s.flushed) return;
    s.flushed = true;
    path = s.path;
    count = s.events.size();
    dropped = s.dropped;
    json = "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
    append_json_events(json, s.events);
    json += "\n  ]\n}\n";
    s.events.clear();
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    WMESH_LOG_ERROR("obs.trace", kv("error", "cannot open trace output"),
                    kv("path", path));
    return;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  WMESH_LOG_INFO("obs.trace", kv("path", path), kv("events", count),
                 kv("dropped", dropped));
}

void reinit_tracing_from_env() {
  TraceState& s = trace_state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.reinit_unlocked();
}

}  // namespace wmesh::obs

#include "obs/span.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/flight.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace wmesh::obs {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point trace_epoch() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            trace_epoch())
          .count());
}

struct TraceEvent {
  const char* name;
  std::uint64_t ts_us;
  std::uint64_t dur_us;
  std::uint64_t span_id;
  std::uint64_t parent_id;
  std::uint32_t tid;
};

// Cap the buffer so a long run with tracing enabled cannot grow without
// bound; dropped events are counted and reported at flush time.
constexpr std::size_t kMaxTraceEvents = 1u << 20;

// Mirror of TraceState::enabled readable without the mutex: the span
// destructor checks it on every span, which must stay lock-free.
std::atomic<bool> g_trace_enabled{false};

struct TraceState {
  std::mutex mu;
  std::string path;
  bool enabled = false;
  bool flushed = false;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;

  TraceState() { reinit_unlocked(); }

  void reinit_unlocked() {
    enabled = false;
    flushed = false;
    events.clear();
    dropped = 0;
    if (const char* p = std::getenv("WMESH_TRACE_OUT")) {
      path = p;
      enabled = !path.empty();
    } else {
      path.clear();
    }
    g_trace_enabled.store(enabled, std::memory_order_relaxed);
  }
};

TraceState& trace_state() {
  static TraceState* s = []() {
    auto* state = new TraceState();  // leaked: written during atexit
    std::atexit([] { flush_trace(); });
    return state;
  }();
  return *s;
}

// Force TraceState construction (env read + atexit flush registration) at
// startup: the span destructor only reads g_trace_enabled and must not pay
// for the magic-static check.
[[maybe_unused]] const bool g_trace_init = (trace_state(), true);

std::uint32_t thread_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1);
  return tid;
}

// [[maybe_unused]]: the only caller is compiled out under WMESH_OBS_DISABLED.
[[maybe_unused]] void record_trace_event(const char* name,
                                         std::uint64_t start_us,
                                         std::uint64_t dur_us,
                                         std::uint64_t span_id,
                                         std::uint64_t parent_id) {
  TraceState& s = trace_state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.enabled) return;
  if (s.events.size() >= kMaxTraceEvents) {
    ++s.dropped;
    return;
  }
  s.events.push_back({name, start_us, dur_us, span_id, parent_id,
                      thread_tid()});
}

std::string hex_id(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void append_json_events(std::string& out,
                        const std::vector<TraceEvent>& events) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i != 0) out += ",\n";
    out += "    {\"name\": \"";
    out += e.name;  // span names are identifier-style literals
    out += "\", \"cat\": \"wmesh\", \"ph\": \"X\", \"ts\": ";
    out += std::to_string(e.ts_us);
    out += ", \"dur\": ";
    out += std::to_string(e.dur_us);
    out += ", \"pid\": 1, \"tid\": ";
    out += std::to_string(e.tid);
    out += ", \"args\": {\"span\": \"";
    out += hex_id(e.span_id);
    out += "\", \"parent\": \"";
    out += hex_id(e.parent_id);
    out += "\"}}";
  }
}

// Process sequence feeding root spans and root task groups.  Bumped only on
// threads with no open span -- in practice the main thread, in program
// order -- so root ids are deterministic too.
std::atomic<std::uint64_t> g_root_seq{0};

thread_local SpanContext* t_active_span = nullptr;

}  // namespace

std::uint64_t derive_span_id(std::uint64_t parent_id,
                             std::uint64_t seq) noexcept {
  // splitmix64 finalizer over the combined inputs; any fixed bijective
  // mixer works, it only has to spread (parent, seq) pairs over 64 bits.
  std::uint64_t x = parent_id + 0x9e3779b97f4a7c15ULL * (seq + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

SpanContext* current_span_context() noexcept { return t_active_span; }

TaskGroup claim_task_group() noexcept {
  TaskGroup g;
  if (SpanContext* cur = t_active_span) {
    g.parent_id = cur->id;
    g.parent_name = cur->name;
    g.group_seq = ++cur->child_seq;
    g.parent_child_us = &cur->child_us;
  } else {
    g.group_seq = g_root_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  return g;
}

void reset_span_ids_for_test() noexcept {
  g_root_seq.store(0, std::memory_order_relaxed);
}

void ScopedSpan::open(std::uint64_t id, std::uint64_t parent_id,
                      const char* parent_name,
                      std::atomic<std::uint64_t>* parent_accum) noexcept {
  parent_id_ = parent_id;
  parent_name_ = parent_name;
  parent_accum_ = parent_accum;
  ctx_.id = id;
  ctx_.name = name_;
  ctx_.parent = t_active_span;
  saved_active_ = t_active_span;
  t_active_span = &ctx_;
  if (flight::enabled()) {
    flight::record(flight::EventKind::kSpanBegin, name_, id, parent_id);
  }
  start_us_ = now_us();
}

namespace {

// Shared by both public constructors: derive the id from the innermost
// open span on this thread (or the root sequence).
struct DerivedLink {
  std::uint64_t id, parent_id;
  const char* parent_name;
  std::atomic<std::uint64_t>* accum;
};

DerivedLink derive_from_active() noexcept {
  if (SpanContext* cur = t_active_span) {
    return {derive_span_id(cur->id, ++cur->child_seq), cur->id, cur->name,
            &cur->child_us};
  }
  const std::uint64_t seq =
      g_root_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  return {derive_span_id(0, seq), 0, nullptr, nullptr};
}

}  // namespace

ScopedSpan::ScopedSpan(const char* name) noexcept
    : agg_(&Registry::instance().span_aggregate(name)), name_(name) {
  const DerivedLink l = derive_from_active();
  open(l.id, l.parent_id, l.parent_name, l.accum);
}

ScopedSpan::ScopedSpan(SpanAggregate& agg, const char* name) noexcept
    : agg_(&agg), name_(name) {
  const DerivedLink l = derive_from_active();
  open(l.id, l.parent_id, l.parent_name, l.accum);
}

ScopedSpan::ScopedSpan(SpanAggregate& agg, const char* name,
                       const TaskGroup& group, std::size_t index) noexcept
    : agg_(&agg), name_(name) {
  // Two-level derivation: a virtual group node under the enqueuing span,
  // then one child per shard.  group_seq comes from the same per-parent
  // ordinal counter as serial children, so the virtual node cannot collide
  // with them; shard ids depend only on (parent id, group seq, index).
  const std::uint64_t group_id =
      derive_span_id(group.parent_id, group.group_seq);
  open(derive_span_id(group_id, static_cast<std::uint64_t>(index) + 1),
       group.parent_id, group.parent_name, group.parent_child_us);
}

ScopedSpan::~ScopedSpan() {
#if !defined(WMESH_OBS_DISABLED)
  const std::uint64_t end_us = now_us();
  const std::uint64_t dur_us = end_us - start_us_;
  const std::uint64_t child_us = ctx_.child_us.load(std::memory_order_relaxed);
  // Self-time clamps at zero: a span whose children ran in parallel can be
  // fully covered by them.
  const std::uint64_t self_us = dur_us > child_us ? dur_us - child_us : 0;
  agg_->record(static_cast<double>(dur_us), static_cast<double>(self_us),
               parent_name_);
  if (parent_accum_ != nullptr) {
    parent_accum_->fetch_add(dur_us, std::memory_order_relaxed);
  }
  t_active_span = saved_active_;
  if (flight::enabled()) {
    flight::record(flight::EventKind::kSpanEnd, name_, ctx_.id, dur_us);
  }
  if (g_trace_enabled.load(std::memory_order_relaxed)) {
    record_trace_event(name_, start_us_, dur_us, ctx_.id, parent_id_);
  }
#else
  t_active_span = saved_active_;
#endif
}

bool trace_enabled() noexcept {
  // Ensure lazy init has happened before reading the mirror flag.
  trace_state();
  return g_trace_enabled.load(std::memory_order_relaxed);
}

std::string render_trace_json() {
  TraceState& s = trace_state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::string out = "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  append_json_events(out, s.events);
  out += "\n  ]\n}\n";
  return out;
}

void flush_trace() {
  TraceState& s = trace_state();
  std::string path;
  std::string json;
  std::uint64_t dropped = 0;
  std::size_t count = 0;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.enabled || s.flushed) return;
    s.flushed = true;
    path = s.path;
    count = s.events.size();
    dropped = s.dropped;
    json = "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
    append_json_events(json, s.events);
    json += "\n  ]\n}\n";
    s.events.clear();
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    WMESH_LOG_ERROR("obs.trace", kv("error", "cannot open trace output"),
                    kv("path", path));
    return;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  WMESH_LOG_INFO("obs.trace", kv("path", path), kv("events", count),
                 kv("dropped", dropped));
}

void reinit_tracing_from_env() {
  TraceState& s = trace_state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.reinit_unlocked();
}

}  // namespace wmesh::obs

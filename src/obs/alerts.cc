#include "obs/alerts.h"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

#include "util/text_table.h"

namespace wmesh::obs {

const char* to_string(AlertKind k) {
  switch (k) {
    case AlertKind::kThreshold:
      return "threshold";
    case AlertKind::kAbsent:
      return "absent";
    case AlertKind::kBurnRate:
      return "burn";
  }
  return "?";
}

const char* to_string(AlertOp op) {
  switch (op) {
    case AlertOp::kGt:
      return ">";
    case AlertOp::kGe:
      return ">=";
    case AlertOp::kLt:
      return "<";
    case AlertOp::kLe:
      return "<=";
  }
  return "?";
}

const char* to_string(AlertState s) {
  switch (s) {
    case AlertState::kInactive:
      return "inactive";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "FIRING";
  }
  return "?";
}

namespace {

bool compare(AlertOp op, double lhs, double rhs) {
  switch (op) {
    case AlertOp::kGt:
      return lhs > rhs;
    case AlertOp::kGe:
      return lhs >= rhs;
    case AlertOp::kLt:
      return lhs < rhs;
    case AlertOp::kLe:
      return lhs <= rhs;
  }
  return false;
}

bool parse_op(const std::string& tok, AlertOp* op) {
  if (tok == ">") {
    *op = AlertOp::kGt;
  } else if (tok == ">=") {
    *op = AlertOp::kGe;
  } else if (tok == "<") {
    *op = AlertOp::kLt;
  } else if (tok == "<=") {
    *op = AlertOp::kLe;
  } else {
    return false;
  }
  return true;
}

bool parse_number(const std::string& tok, double* v) {
  if (tok.empty()) return false;
  char* end = nullptr;
  *v = std::strtod(tok.c_str(), &end);
  return end == tok.c_str() + tok.size();
}

bool parse_ticks(const std::string& tok, std::uint64_t* v) {
  if (tok.empty()) return false;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size() || n == 0) return false;
  *v = n;
  return true;
}

// Consumes one "key=value" option token; false when tok is not `key=`.
bool option(const std::string& tok, const char* key, std::string* value) {
  const std::string prefix = std::string(key) + "=";
  if (tok.rfind(prefix, 0) != 0) return false;
  *value = tok.substr(prefix.size());
  return true;
}

}  // namespace

bool parse_alert_rules(std::string_view text, std::string_view filename,
                       std::vector<AlertRule>* out, std::string* error) {
  std::vector<AlertRule> rules;
  std::set<std::string> names;
  std::size_t lineno = 0;
  std::size_t pos = 0;

  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = std::string(filename) + ":" + std::to_string(lineno) + ": " +
               msg;
    }
    return false;
  };

  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    std::string line(text.substr(pos, nl - pos));
    pos = nl + 1;
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);

    std::istringstream in(line);
    std::vector<std::string> tok;
    for (std::string t; in >> t;) tok.push_back(std::move(t));
    if (tok.empty()) continue;
    if (tok[0] != "alert") {
      return fail("expected 'alert', got '" + tok[0] + "'");
    }
    if (tok.size() < 4) return fail("incomplete rule");
    AlertRule r;
    r.name = tok[1];
    if (!names.insert(r.name).second) {
      return fail("duplicate rule name '" + r.name + "'");
    }
    const std::string& kind = tok[2];
    r.series = tok[3];
    std::size_t i = 4;
    if (kind == "threshold" || kind == "burn") {
      r.kind = kind == "burn" ? AlertKind::kBurnRate : AlertKind::kThreshold;
      if (tok.size() < i + 2) return fail("missing <op> <value>");
      if (!parse_op(tok[i], &r.op)) {
        return fail("bad operator '" + tok[i] + "' (want > >= < <=)");
      }
      if (!parse_number(tok[i + 1], &r.value)) {
        return fail("bad value '" + tok[i + 1] + "'");
      }
      i += 2;
    } else if (kind == "absent") {
      r.kind = AlertKind::kAbsent;
    } else {
      return fail("unknown rule kind '" + kind +
                  "' (want threshold, absent or burn)");
    }
    bool saw_short = false;
    bool saw_long = false;
    for (; i < tok.size(); ++i) {
      std::string v;
      if (option(tok[i], "for", &v)) {
        if (!parse_ticks(v, &r.for_ticks)) return fail("bad for=" + v);
      } else if (r.kind == AlertKind::kAbsent && option(tok[i], "window", &v)) {
        if (!parse_ticks(v, &r.window)) return fail("bad window=" + v);
      } else if (r.kind == AlertKind::kBurnRate &&
                 option(tok[i], "short", &v)) {
        if (!parse_ticks(v, &r.short_window)) return fail("bad short=" + v);
        saw_short = true;
      } else if (r.kind == AlertKind::kBurnRate && option(tok[i], "long", &v)) {
        if (!parse_ticks(v, &r.long_window)) return fail("bad long=" + v);
        saw_long = true;
      } else {
        return fail("unexpected token '" + tok[i] + "'");
      }
    }
    if (r.kind == AlertKind::kBurnRate) {
      if (!saw_short || !saw_long) {
        return fail("burn rule needs short=<S> and long=<L>");
      }
      if (r.short_window >= r.long_window) {
        return fail("burn rule wants short < long");
      }
    }
    rules.push_back(std::move(r));
  }
  *out = std::move(rules);
  return true;
}

AlertEngine::AlertEngine(std::vector<AlertRule> rules)
    : rules_(std::move(rules)), states_(rules_.size()) {}

bool AlertEngine::condition(const AlertRule& rule, const Tsdb& tsdb,
                            double* input) const {
  switch (rule.kind) {
    case AlertKind::kThreshold: {
      *input = tsdb.value(rule.series);
      return tsdb.has_series(rule.series) &&
             compare(rule.op, *input, rule.value);
    }
    case AlertKind::kAbsent: {
      const std::size_t points = tsdb.points_in(rule.series, rule.window);
      *input = static_cast<double>(points);
      return points == 0;
    }
    case AlertKind::kBurnRate: {
      const double short_rate = tsdb.rate(rule.series, rule.short_window);
      const double long_rate = tsdb.rate(rule.series, rule.long_window);
      *input = short_rate;
      return compare(rule.op, short_rate, rule.value) &&
             compare(rule.op, long_rate, rule.value);
    }
  }
  return false;
}

void AlertEngine::publish_state(const AlertRule& rule,
                                AlertState state) const {
#if !defined(WMESH_OBS_DISABLED)
  Registry::instance()
      .gauge("alert.state{alert=" + rule.name + "}")
      .set(static_cast<double>(state));
#else
  (void)rule;
  (void)state;
#endif
}

void AlertEngine::evaluate(const Tsdb& tsdb) {
  std::uint64_t newly_fired = 0;
  std::uint64_t newly_resolved = 0;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& rule = rules_[i];
    RuleState& st = states_[i];
    ++stats_.evaluations;
    const bool active = condition(rule, tsdb, &st.last_input);
    if (active) {
      if (st.state != AlertState::kFiring) {
        ++st.pending_ticks;
        st.state = st.pending_ticks >= rule.for_ticks ? AlertState::kFiring
                                                      : AlertState::kPending;
        if (st.state == AlertState::kFiring) {
          ++st.fired;
          ++stats_.fired;
          ++newly_fired;
        }
      }
    } else {
      if (st.state == AlertState::kFiring) {
        ++st.resolved;
        ++stats_.resolved;
        ++newly_resolved;
      }
      st.state = AlertState::kInactive;
      st.pending_ticks = 0;
    }
    publish_state(rule, st.state);
  }
  WMESH_COUNTER_ADD("alerts.evaluations", rules_.size());
  if (newly_fired > 0) WMESH_COUNTER_ADD("alerts.fired", newly_fired);
  if (newly_resolved > 0) {
    WMESH_COUNTER_ADD("alerts.resolved", newly_resolved);
  }
}

std::vector<AlertEngine::RuleStatus> AlertEngine::status() const {
  std::vector<RuleStatus> out;
  out.reserve(rules_.size());
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    out.push_back({&rules_[i], states_[i].state, states_[i].pending_ticks,
                   states_[i].fired, states_[i].resolved,
                   states_[i].last_input});
  }
  return out;
}

AlertEngine::Stats AlertEngine::stats() const { return stats_; }

std::string AlertEngine::render() const {
  std::string out = "== alerts ==\n";
  if (rules_.empty()) {
    out += "(no alert rules loaded; start with --alerts=<file>)\n";
    return out;
  }
  TextTable t;
  t.header({"alert", "kind", "series", "state", "pending", "fired",
            "resolved", "input"});
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& r = rules_[i];
    const RuleState& st = states_[i];
    t.add_row({r.name, to_string(r.kind), r.series, to_string(st.state),
               std::to_string(st.pending_ticks), std::to_string(st.fired),
               std::to_string(st.resolved), fmt(st.last_input, 4)});
  }
  out += t.render();
  char tail[128];
  std::snprintf(tail, sizeof(tail),
                "(%zu rules, %llu evaluations, %llu fired, %llu resolved)\n",
                rules_.size(),
                static_cast<unsigned long long>(stats_.evaluations),
                static_cast<unsigned long long>(stats_.fired),
                static_cast<unsigned long long>(stats_.resolved));
  out += tail;
  return out;
}

}  // namespace wmesh::obs

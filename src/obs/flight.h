// Crash-safe flight recorder: a fixed-size lock-free per-thread ring buffer
// of the last N observability events (span begin/end, log lines, counter
// flushes) with monotonic timestamps.
//
// Recording is armed by setting WMESH_FLIGHT_OUT=<path>.  Each thread owns
// one ring (created on first event, leaked so dumps survive thread exit);
// every slot field is a relaxed atomic, so writers never lock and a reader
// -- including the fatal-signal handler -- can walk the rings from any
// thread at any time.  A concurrent dump is best-effort (a slot being
// overwritten mid-read yields one garbled event, never a crash or a lock).
//
// On SIGSEGV / SIGABRT / SIGBUS / SIGFPE (installed when WMESH_FLIGHT_OUT
// is armed), an async-signal-safe writer k-way-merges the rings by
// timestamp and emits them to the configured path using only write(2) and
// stack formatting, then re-raises the signal with the default handler --
// so crashes and hangs become diagnosable post-mortem.  The same dump is
// available on demand via dump_flight() / Registry::dump_flight().
//
// Dump format (text, one event per line, schema wmesh.flight/1):
//
//   # wmesh.flight/1 rings=3 depth=2048
//   ts_us=1234 tid=2 kind=span_begin name=etx.dijkstra a=0x9f3c b=0x11
//   ...
//   # EOF events=412 dropped=0
//
// `a`/`b` are kind-specific: span_begin (span id, parent id), span_end
// (span id, duration us), log (level, 0), counter (delta, 0).
//
// Event names must outlive the process (span names and registry counter
// names do; log components are literals at every call site).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wmesh::obs::flight {

enum class EventKind : std::uint8_t {
  kNone = 0,
  kSpanBegin = 1,
  kSpanEnd = 2,
  kLog = 3,
  kCounter = 4,
};

const char* to_string(EventKind k) noexcept;

// Events per thread ring; the recorder keeps the last kDepth events.
inline constexpr std::size_t kDepth = 2048;
// Rings (threads) the recorder can register before dropping new threads.
inline constexpr std::size_t kMaxRings = 256;

// Hot-path gate, mirrored into an atomic so instrumentation costs one
// relaxed load when the recorder is disarmed.
extern std::atomic<bool> g_flight_enabled;
inline bool enabled() noexcept {
  return g_flight_enabled.load(std::memory_order_relaxed);
}

// Appends one event to the calling thread's ring.  Lock-free; callers
// should gate on enabled() first.  `name` must outlive the process.
void record(EventKind kind, const char* name, std::uint64_t a,
            std::uint64_t b) noexcept;

// One decoded event, merged across rings in timestamp order.
struct Event {
  std::uint64_t ts_us = 0;
  std::uint32_t tid = 0;
  EventKind kind = EventKind::kNone;
  const char* name = nullptr;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

// Drains a merged snapshot of every ring (oldest surviving event first).
// Returns the total number of events ever recorded minus those overwritten
// ("dropped") via *dropped when non-null.  Not signal-safe (allocates).
std::vector<Event> drain(std::uint64_t* dropped = nullptr);

// Async-signal-safe core: merges the rings into `fd` in wmesh.flight/1
// format.  Returns the number of events written.
std::size_t dump_fd(int fd) noexcept;

// Dumps to `path` (truncating).  Returns false when the file cannot be
// opened or WMESH_FLIGHT_OUT is unset and `path` is empty.
bool dump(const std::string& path);

// Dumps to the WMESH_FLIGHT_OUT path.  False when disarmed or unwritable.
bool dump_to_env_path();

// Re-reads WMESH_FLIGHT_OUT: arms/disarms recording, clears every ring and
// (first time armed) installs the fatal-signal handlers.
void reinit_from_env();

}  // namespace wmesh::obs::flight

// Perf-regression bench harness core: the timing loop, the BENCH_*.json
// schema, and the baseline comparison that gates CI.
//
// tools/wmesh_bench registers one BenchStage per pipeline stage (gen, CSV
// and WSNAP load, ETX, ExOR, look-up tables, hidden triples, mobility),
// `run_bench_suite` times each stage `repeat` times and reduces the runs
// to median/p10/p90, and `bench_to_json` emits the versioned
// "wmesh.bench/1" document (stable key order, build block from
// obs/report.h).  `parse_bench_json` reads such a document back
// (util/json.h) and `check_bench_regression` compares current medians
// against a baseline with a percentage tolerance -- the `--baseline
// --check` gate that future perf PRs and CI run.
//
// Self-test knob: WMESH_BENCH_SLEEP_US=<n> (strict util/env parsing) adds
// an artificial n-microsecond sleep inside every timed run, which is how
// the regression gate demonstrates a detectable slowdown in tests.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace wmesh::obs {

inline constexpr std::string_view kBenchSchema = "wmesh.bench/1";

struct BenchStage {
  std::string name;
  std::function<void()> fn;
};

struct BenchStageResult {
  std::string name;
  std::vector<double> runs_us;  // in execution order
  double median_us = 0.0;
  double p10_us = 0.0;
  double p90_us = 0.0;
};

struct BenchResult {
  std::string suite;
  int repeat = 0;
  std::size_t threads = 0;
  std::vector<BenchStageResult> stages;

  const BenchStageResult* find(std::string_view name) const noexcept;
};

// Nearest-rank quantile with linear interpolation over a copy of `runs`;
// deterministic for a given input.  Exposed for tests.
double bench_quantile(std::vector<double> runs, double q) noexcept;

// Times every stage `repeat` times (in registration order, all runs of a
// stage back to back) and fills the reduced stats.  A stage that throws
// aborts the suite by rethrowing -- a bench that cannot run must not emit
// a half-filled report.  Honors WMESH_BENCH_SLEEP_US (see above).
BenchResult run_bench_suite(const std::string& suite,
                            const std::vector<BenchStage>& stages, int repeat,
                            std::size_t threads);

// The versioned JSON document, keys in fixed order.
std::string bench_to_json(const BenchResult& result);

// Strict parse + schema validation (schema string, required keys, stage
// shape).  On failure returns false with a one-line diagnostic in *err.
bool parse_bench_json(const std::string& text, BenchResult* out,
                      std::string* err);

// Baseline comparison: a stage regresses when its current median exceeds
// the baseline median by more than tolerance_pct percent.  Stages missing
// from `current` fail the check too (a bench that silently stops covering
// a stage must not pass); stages only in `current` are ignored, and so are
// stages whose baseline median is zero (no percentage exists -- real suite
// stages run long enough that a zero median never happens).
struct RegressionCheck {
  struct Row {
    std::string name;
    double baseline_median_us = 0.0;
    double current_median_us = 0.0;
    double delta_pct = 0.0;  // +x% slower, -x% faster
    bool regressed = false;
  };
  std::vector<Row> rows;
  std::vector<std::string> missing;  // in baseline, absent from current
  bool ok = true;

  // Aligned text table of the comparison plus a PASS/FAIL verdict line.
  std::string render(double tolerance_pct) const;
};

RegressionCheck check_bench_regression(const BenchResult& baseline,
                                       const BenchResult& current,
                                       double tolerance_pct);

}  // namespace wmesh::obs

#include "obs/bench.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/span.h"
#include "util/env.h"
#include "util/json.h"
#include "util/text_table.h"

namespace wmesh::obs {
namespace {

std::string us_string(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

const BenchStageResult* BenchResult::find(
    std::string_view name) const noexcept {
  for (const auto& s : stages) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

double bench_quantile(std::vector<double> runs, double q) noexcept {
  if (runs.empty()) return 0.0;
  std::sort(runs.begin(), runs.end());
  const double pos = q * static_cast<double>(runs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, runs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return runs[lo] + (runs[hi] - runs[lo]) * frac;
}

BenchResult run_bench_suite(const std::string& suite,
                            const std::vector<BenchStage>& stages, int repeat,
                            std::size_t threads) {
  using Clock = std::chrono::steady_clock;
  const std::uint64_t sleep_us = env::u64_or("WMESH_BENCH_SLEEP_US", 0);

  BenchResult result;
  result.suite = suite;
  result.repeat = repeat;
  result.threads = threads;
  for (const BenchStage& stage : stages) {
    WMESH_SPAN("bench.stage");
    BenchStageResult r;
    r.name = stage.name;
    for (int i = 0; i < repeat; ++i) {
      const Clock::time_point t0 = Clock::now();
      stage.fn();
      if (sleep_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      }
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          Clock::now() - t0)
                          .count();
      r.runs_us.push_back(static_cast<double>(us));
      WMESH_COUNTER_INC("bench.runs");
    }
    r.median_us = bench_quantile(r.runs_us, 0.50);
    r.p10_us = bench_quantile(r.runs_us, 0.10);
    r.p90_us = bench_quantile(r.runs_us, 0.90);
    WMESH_LOG_DEBUG("bench", kv("stage", r.name), kv("median_us", r.median_us),
                    kv("runs", r.runs_us.size()));
    result.stages.push_back(std::move(r));
  }
  return result;
}

std::string bench_to_json(const BenchResult& result) {
  std::string out = "{\n";
  out += "  \"schema\": \"" + std::string(kBenchSchema) + "\",\n";
  out += "  \"suite\": \"" + json_escape(result.suite) + "\",\n";
  out += "  \"repeat\": " + std::to_string(result.repeat) + ",\n";
  out += "  \"threads\": " + std::to_string(result.threads) + ",\n";
  out += "  \"build\": " + BuildInfo::current().to_json(2) + ",\n";
  out += "  \"stages\": [";
  for (std::size_t i = 0; i < result.stages.size(); ++i) {
    const BenchStageResult& s = result.stages[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"name\": \"" + json_escape(s.name) + "\", \"runs_us\": [";
    for (std::size_t j = 0; j < s.runs_us.size(); ++j) {
      out += (j ? ", " : "") + us_string(s.runs_us[j]);
    }
    out += "], \"median_us\": " + us_string(s.median_us);
    out += ", \"p10_us\": " + us_string(s.p10_us);
    out += ", \"p90_us\": " + us_string(s.p90_us);
    out += "}";
  }
  out += result.stages.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

namespace {

bool schema_error(std::string* err, const std::string& what) {
  if (err != nullptr) *err = "bench json: " + what;
  return false;
}

bool read_number(const json::Value& obj, std::string_view key, double* out,
                 std::string* err) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    return schema_error(err, "missing numeric \"" + std::string(key) + "\"");
  }
  *out = v->number;
  return true;
}

}  // namespace

bool parse_bench_json(const std::string& text, BenchResult* out,
                      std::string* err) {
  std::string parse_err;
  const auto doc = json::parse(text, &parse_err);
  if (!doc) return schema_error(err, parse_err);
  if (!doc->is_object()) return schema_error(err, "document is not an object");

  const json::Value* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return schema_error(err, "missing \"schema\"");
  }
  if (schema->string != kBenchSchema) {
    return schema_error(err, "unsupported schema \"" + schema->string +
                                 "\" (want \"" + std::string(kBenchSchema) +
                                 "\")");
  }
  const json::Value* suite = doc->find("suite");
  if (suite == nullptr || !suite->is_string()) {
    return schema_error(err, "missing \"suite\"");
  }
  double repeat = 0, threads = 0;
  if (!read_number(*doc, "repeat", &repeat, err)) return false;
  if (!read_number(*doc, "threads", &threads, err)) return false;
  const json::Value* build = doc->find("build");
  if (build == nullptr || !build->is_object()) {
    return schema_error(err, "missing \"build\" object");
  }
  const json::Value* stages = doc->find("stages");
  if (stages == nullptr || !stages->is_array()) {
    return schema_error(err, "missing \"stages\" array");
  }

  BenchResult r;
  r.suite = suite->string;
  r.repeat = static_cast<int>(repeat);
  r.threads = static_cast<std::size_t>(threads);
  for (const json::Value& stage : stages->array) {
    if (!stage.is_object()) return schema_error(err, "stage is not an object");
    const json::Value* name = stage.find("name");
    if (name == nullptr || !name->is_string() || name->string.empty()) {
      return schema_error(err, "stage missing \"name\"");
    }
    BenchStageResult s;
    s.name = name->string;
    const json::Value* runs = stage.find("runs_us");
    if (runs == nullptr || !runs->is_array() || runs->array.empty()) {
      return schema_error(err,
                          "stage \"" + s.name + "\" missing \"runs_us\"");
    }
    for (const json::Value& run : runs->array) {
      if (!run.is_number() || run.number < 0.0) {
        return schema_error(err, "stage \"" + s.name + "\" has a bad run");
      }
      s.runs_us.push_back(run.number);
    }
    if (!read_number(stage, "median_us", &s.median_us, err) ||
        !read_number(stage, "p10_us", &s.p10_us, err) ||
        !read_number(stage, "p90_us", &s.p90_us, err)) {
      return false;
    }
    r.stages.push_back(std::move(s));
  }
  *out = std::move(r);
  return true;
}

RegressionCheck check_bench_regression(const BenchResult& baseline,
                                       const BenchResult& current,
                                       double tolerance_pct) {
  RegressionCheck check;
  for (const BenchStageResult& base : baseline.stages) {
    const BenchStageResult* cur = current.find(base.name);
    if (cur == nullptr) {
      check.missing.push_back(base.name);
      check.ok = false;
      continue;
    }
    RegressionCheck::Row row;
    row.name = base.name;
    row.baseline_median_us = base.median_us;
    row.current_median_us = cur->median_us;
    row.delta_pct =
        base.median_us > 0.0
            ? 100.0 * (cur->median_us - base.median_us) / base.median_us
            : 0.0;
    row.regressed = row.delta_pct > tolerance_pct;
    if (row.regressed) check.ok = false;
    check.rows.push_back(std::move(row));
  }
  return check;
}

std::string RegressionCheck::render(double tolerance_pct) const {
  TextTable t;
  t.header({"stage", "baseline_us", "current_us", "delta", "verdict"});
  for (const Row& r : rows) {
    char delta[32];
    std::snprintf(delta, sizeof(delta), "%+.1f%%", r.delta_pct);
    t.add_row({r.name, us_string(r.baseline_median_us),
               us_string(r.current_median_us), delta,
               r.regressed ? "REGRESSED" : "ok"});
  }
  std::string out = t.render();
  for (const std::string& name : missing) {
    out += "missing stage (in baseline, not in current run): " + name + "\n";
  }
  char verdict[96];
  std::snprintf(verdict, sizeof(verdict), "%s (tolerance %.1f%%)\n",
                ok ? "PASS" : "FAIL", tolerance_pct);
  out += verdict;
  return out;
}

}  // namespace wmesh::obs

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/text_table.h"

namespace wmesh::obs {

namespace {
thread_local CounterBatch* t_counter_batch = nullptr;
}  // namespace

CounterBatch::CounterBatch() noexcept : prev_(t_counter_batch) {
  t_counter_batch = this;
}

CounterBatch::~CounterBatch() {
  flush();
  t_counter_batch = prev_;
}

void CounterBatch::flush() noexcept {
  for (auto& [counter, n] : pending_) {
    counter->value_.fetch_add(n, std::memory_order_relaxed);
  }
  pending_.clear();
}

void CounterBatch::buffer(Counter* c, std::uint64_t n) noexcept {
  for (auto& [counter, pending] : pending_) {
    if (counter == c) {
      pending += n;
      return;
    }
  }
  try {
    pending_.emplace_back(c, n);
  } catch (...) {
    c->value_.fetch_add(n, std::memory_order_relaxed);
  }
}

CounterBatch* CounterBatch::active() noexcept { return t_counter_batch; }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::record(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double target = q * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t c = bucket(i);
    if (c == 0) continue;
    cum += c;
    if (static_cast<double>(cum) + 1e-9 >= target) {
      // Report the bucket's upper bound; the overflow bucket has none, so
      // fall back to the last finite bound.
      return i < bounds_.size() ? bounds_[i] : bounds_.back();
    }
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> span_time_bounds_us() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 17e6; b *= 2.0) bounds.push_back(b);
  return bounds;
}

Registry& Registry::instance() {
  static Registry* r = new Registry();  // leaked: outlives atexit users
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name), std::move(bounds)).first;
  }
  return it->second;
}

Histogram& Registry::span_histogram(std::string_view name) {
  return histogram("span." + std::string(name), span_time_bounds_us());
}

Snapshot Registry::snapshot() const {
  Snapshot s;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    s.counters.push_back({name, c.value()});
  }
  for (const auto& [name, g] : gauges_) {
    s.gauges.push_back({name, g.value()});
  }
  for (const auto& [name, h] : histograms_) {
    s.histograms.push_back({name, h.count(), h.sum(), h.quantile(0.50),
                            h.quantile(0.90), h.quantile(0.99)});
  }
  return s;  // std::map iteration is already name-sorted
}

void Registry::reset_for_test() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

std::string Snapshot::render_table() const {
  std::string out;
  if (!counters.empty() || !gauges.empty()) {
    TextTable t;
    t.header({"metric", "value"});
    for (const auto& c : counters) {
      t.add_row({c.name, std::to_string(c.value)});
    }
    for (const auto& g : gauges) t.add_row({g.name, fmt(g.value, 3)});
    out += t.render();
  }
  if (!histograms.empty()) {
    TextTable t;
    t.header({"histogram", "count", "sum", "p50", "p90", "p99"});
    for (const auto& h : histograms) {
      t.add_row({h.name, std::to_string(h.count), fmt(h.sum, 1),
                 fmt(h.p50, 1), fmt(h.p90, 1), fmt(h.p99, 1)});
    }
    if (!out.empty()) out += '\n';
    out += t.render();
  }
  return out;
}

std::string Snapshot::to_csv() const {
  std::string out = "kind,name,value,count,sum,p50,p90,p99\n";
  for (const auto& c : counters) {
    out += "counter," + c.name + ',' + std::to_string(c.value) + ",,,,,\n";
  }
  for (const auto& g : gauges) {
    out += "gauge," + g.name + ',' + fmt(g.value, 6) + ",,,,,\n";
  }
  for (const auto& h : histograms) {
    out += "histogram," + h.name + ",," + std::to_string(h.count) + ',' +
           fmt(h.sum, 3) + ',' + fmt(h.p50, 3) + ',' + fmt(h.p90, 3) + ',' +
           fmt(h.p99, 3) + '\n';
  }
  return out;
}

namespace {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  // Trim trailing zeros for readability.
  std::string s = fmt(v, 6);
  const std::size_t dot = s.find('.');
  if (dot != std::string::npos) {
    std::size_t last = s.find_last_not_of('0');
    if (last == dot) --last;
    s.erase(last + 1);
  }
  return s;
}

}  // namespace

std::string Snapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += (i ? ",\n    \"" : "\n    \"") + counters[i].name +
           "\": " + std::to_string(counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += (i ? ",\n    \"" : "\n    \"") + gauges[i].name +
           "\": " + json_number(gauges[i].value);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    out += (i ? ",\n    \"" : "\n    \"") + h.name + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + json_number(h.sum) +
           ", \"p50\": " + json_number(h.p50) +
           ", \"p90\": " + json_number(h.p90) +
           ", \"p99\": " + json_number(h.p99) + "}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace wmesh::obs

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/flight.h"
#include "util/csv.h"
#include "util/text_table.h"

namespace wmesh::obs {

namespace {

thread_local CounterBatch* t_counter_batch = nullptr;

// All batches currently alive on any thread, so snapshot(kActiveBatches)
// can drain them.  flush_all_active holds this mutex for the whole walk;
// a batch destructor unregisters under the same mutex, so a batch can
// never be destroyed while a remote flusher is touching it.
std::mutex& batch_list_mu() {
  static std::mutex mu;
  return mu;
}
std::vector<CounterBatch*>& batch_list() {
  static std::vector<CounterBatch*>* l = new std::vector<CounterBatch*>();
  return *l;
}

}  // namespace

CounterBatch::CounterBatch() noexcept : prev_(t_counter_batch) {
  t_counter_batch = this;
  try {
    std::lock_guard<std::mutex> lock(batch_list_mu());
    batch_list().push_back(this);
  } catch (...) {
    // Unregistered batch: buffer() still works, only flush_all_active
    // cannot see it.  The destructor's erase is a no-op for this batch.
  }
}

CounterBatch::~CounterBatch() {
  {
    std::lock_guard<std::mutex> lock(batch_list_mu());
    auto& l = batch_list();
    l.erase(std::remove(l.begin(), l.end(), this), l.end());
  }
  flush();
  t_counter_batch = prev_;
}

void CounterBatch::flush() noexcept {
  // Entries are only appended, never removed, and a deque never relocates
  // its elements; holding mu_ pins the entry count against a concurrent
  // append by the owning thread.
  std::lock_guard<std::mutex> lock(mu_);
  const bool flight = flight::enabled();
  for (Entry& e : pending_) {
    const std::uint64_t n = e.pending.exchange(0, std::memory_order_relaxed);
    if (n != 0) {
      e.counter->value_.fetch_add(n, std::memory_order_relaxed);
      if (flight && e.counter->bound_name() != nullptr) {
        flight::record(flight::EventKind::kCounter, e.counter->bound_name(),
                       n, 0);
      }
    }
  }
}

void CounterBatch::buffer(Counter* c, std::uint64_t n) noexcept {
  // Owner-only fast path: nobody else appends, so scanning the deque
  // without mu_ is safe, and the per-entry atomic add is uncontended.
  for (Entry& e : pending_) {
    if (e.counter == c) {
      e.pending.fetch_add(n, std::memory_order_relaxed);
      return;
    }
  }
  try {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.emplace_back(c, n);
  } catch (...) {
    c->value_.fetch_add(n, std::memory_order_relaxed);
  }
}

CounterBatch* CounterBatch::active() noexcept { return t_counter_batch; }

void CounterBatch::flush_all_active() noexcept {
  std::lock_guard<std::mutex> lock(batch_list_mu());
  for (CounterBatch* b : batch_list()) b->flush();
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::record(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double target = q * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t c = bucket(i);
    if (c == 0) continue;
    cum += c;
    if (static_cast<double>(cum) + 1e-9 >= target) {
      // Report the bucket's upper bound; the overflow bucket has none, so
      // fall back to the last finite bound.
      return i < bounds_.size() ? bounds_[i] : bounds_.back();
    }
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

namespace {

// Relaxed CAS loops; fine for min/max because the combining function is
// idempotent and order-independent.
void atomic_min(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
void atomic_max(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void SpanAggregate::record(double us, double self_us,
                           const char* parent_name) noexcept {
  hist_.record(us);
  atomic_min(min_, us);
  atomic_max(max_, us);
  self_total_.fetch_add(self_us, std::memory_order_relaxed);
  record_parent(parent_name != nullptr ? parent_name : "(root)");
}

void SpanAggregate::record_parent(const char* name) noexcept {
  for (std::size_t i = 0; i < kMaxParents; ++i) {
    const char* key = parents_[i].key.load(std::memory_order_acquire);
    if (key == nullptr) {
      // Claim the empty slot; a lost race leaves `key` pointing at the
      // winner's name, which may still be ours by content.
      if (parents_[i].key.compare_exchange_strong(key, name,
                                                  std::memory_order_acq_rel)) {
        parents_[i].count.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    if (key == name || std::strcmp(key, name) == 0) {
      parents_[i].count.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  parent_other_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, std::uint64_t>>
SpanAggregate::parent_counts() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (std::size_t i = 0; i < kMaxParents; ++i) {
    const char* key = parents_[i].key.load(std::memory_order_acquire);
    if (key == nullptr) continue;
    const std::uint64_t n = parents_[i].count.load(std::memory_order_relaxed);
    if (n != 0) out.emplace_back(key, n);
  }
  const std::uint64_t other =
      parent_other_.load(std::memory_order_relaxed);
  if (other != 0) out.emplace_back("(other)", other);
  std::sort(out.begin(), out.end());
  return out;
}

double SpanAggregate::min() const noexcept {
  const double v = min_.load(std::memory_order_relaxed);
  return v >= kUnset ? 0.0 : v;
}

double SpanAggregate::max() const noexcept {
  const double v = max_.load(std::memory_order_relaxed);
  return v <= -kUnset ? 0.0 : v;
}

void SpanAggregate::reset() noexcept {
  // The wrapped histogram is reset by the registry (it owns it).
  min_.store(kUnset, std::memory_order_relaxed);
  max_.store(-kUnset, std::memory_order_relaxed);
  self_total_.store(0.0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < kMaxParents; ++i) {
    parents_[i].key.store(nullptr, std::memory_order_relaxed);
    parents_[i].count.store(0, std::memory_order_relaxed);
  }
  parent_other_.store(0, std::memory_order_relaxed);
}

std::vector<double> span_time_bounds_us() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 17e6; b *= 2.0) bounds.push_back(b);
  return bounds;
}

std::vector<double> query_time_bounds_us() {
  // 1-2-5 decades through 1 ms: cached serve queries cluster well under
  // 100 us, where the doubling ladder has almost no resolution.
  std::vector<double> bounds = {1.0,   2.0,   5.0,   10.0,  20.0,
                                50.0,  100.0, 200.0, 500.0, 1000.0};
  for (double b = 2000.0; b <= 17e6; b *= 2.0) bounds.push_back(b);
  return bounds;
}

Registry& Registry::instance() {
  static Registry* r = new Registry();  // leaked: outlives atexit users
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
    // Map keys never move; the bound name feeds flight-recorder events.
    it->second.bind_name(it->first.c_str());
  }
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name), std::move(bounds)).first;
  }
  return it->second;
}

Histogram& Registry::span_histogram(std::string_view name) {
  return histogram("span." + std::string(name), span_time_bounds_us());
}

SpanAggregate& Registry::span_aggregate(std::string_view name) {
  // Take the histogram first: both calls lock mu_, and map references are
  // stable, so the aggregate can hold the reference forever.
  Histogram& hist = span_histogram(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = spans_.find(name);
  if (it == spans_.end()) {
    it = spans_.try_emplace(std::string(name), hist).first;
  }
  return it->second;
}

Snapshot Registry::snapshot(SnapshotFlush flush) const {
  if (flush == SnapshotFlush::kActiveBatches) {
    CounterBatch::flush_all_active();
  }
  Snapshot s;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    s.counters.push_back({name, c.value()});
  }
  for (const auto& [name, g] : gauges_) {
    s.gauges.push_back({name, g.value()});
  }
  for (const auto& [name, h] : histograms_) {
    Snapshot::HistogramRow row{name,
                               h.count(),
                               h.sum(),
                               h.quantile(0.50),
                               h.quantile(0.90),
                               h.quantile(0.99),
                               h.bounds(),
                               {}};
    row.cumulative.reserve(row.bounds.size());
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < row.bounds.size(); ++i) {
      cum += h.bucket(i);
      // Clamp: a record() racing this snapshot can land in a bucket after
      // count() was read; the exposition must stay cumulative-consistent.
      row.cumulative.push_back(std::min(cum, row.count));
    }
    s.histograms.push_back(std::move(row));
  }
  for (const auto& [name, a] : spans_) {
    const Histogram& h = a.histogram();
    s.spans.push_back({name, a.count(), a.total(), a.self_total(), a.min(),
                       a.max(), h.quantile(0.50), h.quantile(0.90),
                       h.quantile(0.99), a.parent_counts()});
  }
  return s;  // std::map iteration is already name-sorted
}

bool Registry::dump_flight() { return flight::dump_to_env_path(); }

void Registry::reset_for_test() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
  for (auto& [name, a] : spans_) a.reset();
}

std::string Snapshot::render_table() const {
  std::string out;
  if (!counters.empty() || !gauges.empty()) {
    TextTable t;
    t.header({"metric", "value"});
    for (const auto& c : counters) {
      t.add_row({c.name, std::to_string(c.value)});
    }
    for (const auto& g : gauges) t.add_row({g.name, fmt(g.value, 3)});
    out += t.render();
  }
  if (!histograms.empty()) {
    TextTable t;
    t.header({"histogram", "count", "sum", "p50", "p90", "p99"});
    for (const auto& h : histograms) {
      t.add_row({h.name, std::to_string(h.count), fmt(h.sum, 1),
                 fmt(h.p50, 1), fmt(h.p90, 1), fmt(h.p99, 1)});
    }
    if (!out.empty()) out += '\n';
    out += t.render();
  }
  if (!spans.empty()) {
    TextTable t;
    t.header({"span (us)", "count", "total", "self", "min", "max", "p50",
              "p90", "p99"});
    for (const auto& sp : spans) {
      t.add_row({sp.name, std::to_string(sp.count), fmt(sp.total_us, 1),
                 fmt(sp.self_us, 1), fmt(sp.min_us, 1), fmt(sp.max_us, 1),
                 fmt(sp.p50_us, 1), fmt(sp.p90_us, 1), fmt(sp.p99_us, 1)});
    }
    if (!out.empty()) out += '\n';
    out += t.render();
  }
  return out;
}

std::string Snapshot::to_csv() const {
  std::string out = "kind,name,value,count,sum,p50,p90,p99,min,max,self,parents\n";
  for (const auto& c : counters) {
    out += "counter," + csv_escape_field(c.name) + ',' +
           std::to_string(c.value) + ",,,,,,,,,\n";
  }
  for (const auto& g : gauges) {
    out += "gauge," + csv_escape_field(g.name) + ',' + fmt(g.value, 6) +
           ",,,,,,,,,\n";
  }
  for (const auto& h : histograms) {
    out += "histogram," + csv_escape_field(h.name) + ",," +
           std::to_string(h.count) + ',' + fmt(h.sum, 3) + ',' +
           fmt(h.p50, 3) + ',' + fmt(h.p90, 3) + ',' + fmt(h.p99, 3) +
           ",,,,\n";
  }
  for (const auto& sp : spans) {
    std::string parents;
    for (const auto& [pname, pcount] : sp.parents) {
      if (!parents.empty()) parents += ';';
      parents += pname + ':' + std::to_string(pcount);
    }
    out += "span," + csv_escape_field(sp.name) + ",," +
           std::to_string(sp.count) + ',' + fmt(sp.total_us, 3) + ',' +
           fmt(sp.p50_us, 3) + ',' + fmt(sp.p90_us, 3) + ',' +
           fmt(sp.p99_us, 3) + ',' + fmt(sp.min_us, 3) + ',' +
           fmt(sp.max_us, 3) + ',' + fmt(sp.self_us, 3) + ',' +
           csv_escape_field(parents) + '\n';
  }
  return out;
}

namespace {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  // Trim trailing zeros for readability.
  std::string s = fmt(v, 6);
  const std::size_t dot = s.find('.');
  if (dot != std::string::npos) {
    std::size_t last = s.find_last_not_of('0');
    if (last == dot) --last;
    s.erase(last + 1);
  }
  return s;
}

}  // namespace

std::string Snapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += (i ? ",\n    \"" : "\n    \"") + counters[i].name +
           "\": " + std::to_string(counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += (i ? ",\n    \"" : "\n    \"") + gauges[i].name +
           "\": " + json_number(gauges[i].value);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    out += (i ? ",\n    \"" : "\n    \"") + h.name + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + json_number(h.sum) +
           ", \"p50\": " + json_number(h.p50) +
           ", \"p90\": " + json_number(h.p90) +
           ", \"p99\": " + json_number(h.p99) + "}";
  }
  out += histograms.empty() ? "},\n" : "\n  },\n";
  out += "  \"spans\": {";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto& sp = spans[i];
    out += (i ? ",\n    \"" : "\n    \"") + sp.name + "\": {\"count\": " +
           std::to_string(sp.count) +
           ", \"total_us\": " + json_number(sp.total_us) +
           ", \"self_us\": " + json_number(sp.self_us) +
           ", \"min_us\": " + json_number(sp.min_us) +
           ", \"max_us\": " + json_number(sp.max_us) +
           ", \"p50_us\": " + json_number(sp.p50_us) +
           ", \"p90_us\": " + json_number(sp.p90_us) +
           ", \"p99_us\": " + json_number(sp.p99_us) + ", \"parents\": {";
    for (std::size_t j = 0; j < sp.parents.size(); ++j) {
      if (j != 0) out += ", ";
      out += '"' + sp.parents[j].first +
             "\": " + std::to_string(sp.parents[j].second);
    }
    out += "}}";
  }
  out += spans.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace wmesh::obs

#include "phy/rates.h"

#include <array>

namespace wmesh {
namespace {

using enum Modulation;

// 802.11b/g probed rates (paper §3.1).  thr50/width calibration notes:
//  * 1 Mbit/s DSSS is the most robust rate (preambles are sent at it).
//  * 11 Mbit/s CCK is deliberately placed *below* 6 Mbit/s OFDM in threshold
//    so that DSSS/CCK out-ranges mid OFDM at low SNR (paper §6.1 finds fewer
//    hidden triples at 11 than at 6 Mbit/s and attributes it to DSSS).
//  * 48 Mbit/s crosses ~97% delivery near 30 dB, producing the throughput
//    plateau of Fig 4.5.
constexpr std::array<BitRate, 7> kBgProbed = {{
    {1'000, kDsss, -1, "1M", 2.0, 1.3},
    {6'000, kOfdm, -1, "6M", 8.5, 1.1},
    {11'000, kCck, -1, "11M", 6.3, 1.3},
    {12'000, kOfdm, -1, "12M", 10.5, 1.1},
    {24'000, kOfdm, -1, "24M", 14.5, 1.2},
    {36'000, kOfdm, -1, "36M", 18.5, 1.2},
    {48'000, kOfdm, -1, "48M", 22.5, 1.3},
}};

// Full b/g table for the rate-adaptation example applications.
constexpr std::array<BitRate, 12> kBgAll = {{
    {1'000, kDsss, -1, "1M", 2.0, 1.3},
    {2'000, kDsss, -1, "2M", 4.0, 1.3},
    {5'500, kCck, -1, "5.5M", 5.5, 1.3},
    {6'000, kOfdm, -1, "6M", 8.5, 1.1},
    {9'000, kOfdm, -1, "9M", 9.5, 1.1},
    {11'000, kCck, -1, "11M", 6.3, 1.3},
    {12'000, kOfdm, -1, "12M", 10.5, 1.1},
    {18'000, kOfdm, -1, "18M", 12.5, 1.1},
    {24'000, kOfdm, -1, "24M", 14.5, 1.2},
    {36'000, kOfdm, -1, "36M", 18.5, 1.2},
    {48'000, kOfdm, -1, "48M", 22.5, 1.3},
    {54'000, kOfdm, -1, "54M", 24.5, 1.3},
}};

// 802.11n, 20 MHz, MCS 0..7 one stream, MCS 8..15 two streams.  Thresholds
// are compressed into roughly 2..18 dB so that (a) throughput flattens near
// 15 dB as the paper reports and (b) adjacent MCS are ~1-2.5 dB apart,
// which is what makes the SNR a weaker determinant for n than for b/g.
constexpr std::array<BitRate, 16> kNProbed = {{
    {6'500, kHtOfdm, 0, "MCS00", 2.0, 1.1},
    {13'000, kHtOfdm, 1, "MCS01", 4.0, 1.1},
    {19'500, kHtOfdm, 2, "MCS02", 5.5, 1.1},
    {26'000, kHtOfdm, 3, "MCS03", 7.0, 1.1},
    {39'000, kHtOfdm, 4, "MCS04", 9.5, 1.2},
    {52'000, kHtOfdm, 5, "MCS05", 12.0, 1.2},
    {58'500, kHtOfdm, 6, "MCS06", 13.5, 1.2},
    {65'000, kHtOfdm, 7, "MCS07", 15.0, 1.3},
    {13'000, kHtOfdm, 8, "MCS08", 4.5, 1.2},
    {26'000, kHtOfdm, 9, "MCS09", 7.5, 1.2},
    {39'000, kHtOfdm, 10, "MCS10", 9.0, 1.2},
    {52'000, kHtOfdm, 11, "MCS11", 11.0, 1.3},
    {78'000, kHtOfdm, 12, "MCS12", 13.0, 1.3},
    {104'000, kHtOfdm, 13, "MCS13", 15.5, 1.4},
    {117'000, kHtOfdm, 14, "MCS14", 16.5, 1.4},
    {130'000, kHtOfdm, 15, "MCS15", 17.5, 1.4},
}};

}  // namespace

std::span<const BitRate> probed_rates(Standard std) {
  switch (std) {
    case Standard::kBg:
      return kBgProbed;
    case Standard::kN:
      return kNProbed;
  }
  return {};
}

std::span<const BitRate> bg_all_rates() { return kBgAll; }

std::string_view to_string(Standard std) {
  switch (std) {
    case Standard::kBg:
      return "802.11b/g";
    case Standard::kN:
      return "802.11n";
  }
  return "?";
}

std::string_view to_string(Modulation mod) {
  switch (mod) {
    case Modulation::kDsss:
      return "DSSS";
    case Modulation::kCck:
      return "CCK";
    case Modulation::kOfdm:
      return "OFDM";
    case Modulation::kHtOfdm:
      return "HT-OFDM";
  }
  return "?";
}

std::string_view rate_name(Standard std, RateIndex idx) {
  const auto rates = probed_rates(std);
  return idx < rates.size() ? rates[idx].name : "?";
}

double rate_mbps(Standard std, RateIndex idx) {
  const auto rates = probed_rates(std);
  return idx < rates.size() ? rates[idx].kbps / 1000.0 : 0.0;
}

int find_rate(Standard std, int kbps, int mcs) {
  const auto rates = probed_rates(std);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (rates[i].kbps == kbps && (mcs < 0 || rates[i].mcs == mcs)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace wmesh

// SNR -> delivery-probability reception model.
//
// The paper's analyses consume per-rate packet success rates; in the real
// data set those come from Atheros radios, here they come from this model
// applied to the channel simulator's per-probe effective SNR.  The model is
// a per-rate logistic curve (parameters live on phy::BitRate), which matches
// the sigmoidal SNR-vs-delivery curves measured for 802.11 hardware well
// enough for every shape the paper reports.
//
// "Effective SNR" is the channel SNR plus the link's modulation-family
// offset (sim/channel.h): two links with identical reported SNR can have
// different delivery behaviour, which is precisely the effect that makes
// per-link SNR look-up tables outperform network-wide ones in §4.
#pragma once

#include "phy/rates.h"

namespace wmesh {

// P(probe delivered | effective SNR), in [0, 1].
double delivery_probability(const BitRate& rate, double effective_snr_db) noexcept;

// Inverse of delivery_probability: the effective SNR at which `rate`
// delivers fraction `p` of probes.  p is clamped to (0, 1).
double snr_for_delivery(const BitRate& rate, double p) noexcept;

// Throughput in Mbit/s of sending at `rate` with success probability
// `success` -- the paper's definition (§3.1.2): bit rate x packet success.
inline double throughput_mbps(const BitRate& rate, double success) noexcept {
  return rate.kbps / 1000.0 * success;
}

// Throughput from a loss rate (1 - success), the form probe sets carry.
inline double throughput_from_loss_mbps(const BitRate& rate,
                                        double loss) noexcept {
  return throughput_mbps(rate, 1.0 - loss);
}

}  // namespace wmesh

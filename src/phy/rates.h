// 802.11 bit-rate tables.
//
// The paper's probe data covers two PHY families:
//   * 802.11b/g — probes are sent at 1, 6, 11, 12, 24, 36 and 48 Mbit/s
//     (54 Mbit/s existed but "was not probed as frequently", so the paper
//     excludes it; we do the same for the probed set).
//   * 802.11n   — 20 MHz channel, MCS 0..15 (one and two spatial streams).
//
// Each BitRate carries its modulation family and the two parameters of the
// logistic SNR -> delivery-probability model used by phy/error_model.h.  The
// parameters are calibrated, not derived from first principles: the goal is
// to reproduce the paper's *orderings* (see DESIGN.md §4), in particular
//   - DSSS/CCK receive better at low SNR than mid OFDM rates, so that
//     11 Mbit/s has fewer hidden triples than 6 Mbit/s (paper §6.1);
//   - 802.11b/g throughput-vs-SNR flattens near 30 dB, 802.11n near 15 dB
//     (paper §4.4);
//   - successive 802.11n MCS thresholds are much closer together than the
//     b/g ones, making SNR a weaker determinant of the optimal rate
//     (paper Figs 4.3 / 4.4b).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace wmesh {

enum class Standard : std::uint8_t { kBg, kN };

enum class Modulation : std::uint8_t { kDsss, kCck, kOfdm, kHtOfdm };

// Index of a rate within its standard's probed-rate table.  All analysis
// code identifies rates by (Standard, RateIndex).
using RateIndex = std::uint8_t;

struct BitRate {
  int kbps = 0;            // nominal PHY rate
  Modulation mod = Modulation::kOfdm;
  int mcs = -1;            // 802.11n MCS index, -1 for b/g rates
  std::string_view name;   // e.g. "11M", "MCS07"
  // Logistic reception model: P(delivery | snr) =
  //   1 / (1 + exp(-(snr - thr50_db) / width_db)).
  double thr50_db = 0.0;   // SNR at which 50% of probes are delivered
  double width_db = 1.0;   // steepness of the reception curve
};

// The probed rates for a standard, in increasing nominal-rate order for b/g
// and MCS order for n.  Spans refer to static storage.
std::span<const BitRate> probed_rates(Standard std);

// Full 802.11b/g rate table (including 2, 5.5, 9, 18, 54 Mbit/s), used by
// the examples that emulate a production rate-adaptation loop rather than
// the paper's probing schedule.
std::span<const BitRate> bg_all_rates();

std::string_view to_string(Standard std);
std::string_view to_string(Modulation mod);

// Number of probed rates for `std` (7 for b/g, 16 for n).
inline std::size_t rate_count(Standard std) { return probed_rates(std).size(); }

// Human-readable label of probed rate `idx` of `std` ("1M", "MCS12", ...).
std::string_view rate_name(Standard std, RateIndex idx);

// Nominal rate in Mbit/s of probed rate `idx` of `std`.
double rate_mbps(Standard std, RateIndex idx);

// Finds the probed-rate index with the given kbps (and mcs for 802.11n,
// since several MCS share a nominal rate).  Returns -1 when absent.
int find_rate(Standard std, int kbps, int mcs = -1);

}  // namespace wmesh

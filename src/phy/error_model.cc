#include "phy/error_model.h"

#include <algorithm>
#include <cmath>

namespace wmesh {

double delivery_probability(const BitRate& rate,
                            double effective_snr_db) noexcept {
  const double z = (effective_snr_db - rate.thr50_db) / rate.width_db;
  // Guard against overflow in exp for extreme SNRs.
  if (z > 30.0) return 1.0;
  if (z < -30.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-z));
}

double snr_for_delivery(const BitRate& rate, double p) noexcept {
  p = std::clamp(p, 1e-9, 1.0 - 1e-9);
  return rate.thr50_db + rate.width_db * std::log(p / (1.0 - p));
}

}  // namespace wmesh

#include "core/report.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "anypath/analysis.h"
#include "core/analysis_cache.h"
#include "core/exor.h"
#include "core/hidden.h"
#include "core/lookup_table.h"
#include "core/mobility.h"
#include "core/snr_stats.h"
#include "core/traffic.h"
#include "obs/span.h"
#include "par/thread_pool.h"
#include "util/stats.h"
#include "util/text_table.h"

namespace wmesh {
namespace {

// printf-append; every report line was born as a printf call in
// wmesh_analyze and keeps its exact format string here.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt_str, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt_str);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt_str, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n),
                                      sizeof(buf) - 1));
}

}  // namespace

std::string report_snr(const Dataset& ds) {
  std::string out;
  for (const Standard std : {Standard::kBg, Standard::kN}) {
    const auto dev = snr_deviations(ds, std);
    if (dev.per_probe_set.empty()) continue;
    const Cdf sets(dev.per_probe_set);
    appendf(out,
            "%s: probe-set sigma median %.2f dB (<5 dB: %.1f%%), link "
            "median %.2f, network median %.2f\n",
            std::string(to_string(std)).c_str(), sets.median(),
            100.0 * sets.fraction_at_or_below(5.0), median(dev.per_link),
            median(dev.per_network));
  }
  return out;
}

std::string report_lookup(const Dataset& ds) {
  TextTable t;
  t.header({"standard", "scope", "exact", "mean loss (Mbit/s)"});
  for (const Standard std : {Standard::kBg, Standard::kN}) {
    for (const TableScope scope :
         {TableScope::kGlobal, TableScope::kNetwork, TableScope::kAp,
          TableScope::kLink}) {
      const auto err = lookup_table_errors(ds, std, scope);
      if (err.throughput_diff_mbps.empty()) continue;
      t.add_row({std::string(to_string(std)), to_string(scope),
                 fmt(100.0 * err.exact_fraction, 1) + "%",
                 fmt(mean(err.throughput_diff_mbps), 3)});
    }
  }
  return t.render();
}

std::string report_routing(const Dataset& ds) {
  AnalysisCache cache;
  return report_routing(ds, cache);
}

std::string report_routing(const Dataset& ds, AnalysisCache& cache) {
  std::string out;
  for (const EtxVariant v : {EtxVariant::kEtx1, EtxVariant::kEtx2}) {
    // One network per task (the paper's 110-network study is embarrassingly
    // parallel); per-network gains concatenate in network order, so the
    // summary below is byte-identical for any thread count.
    struct Gains {
      std::vector<double> imps;
      std::size_t none = 0;
    };
    const Gains all = par::parallel_map_reduce(
        ds.networks.size(), Gains{},
        [&](std::size_t i) {
          Gains g;
          const auto& nt = ds.networks[i];
          if (nt.info.standard != Standard::kBg || nt.ap_count < 5) return g;
          for (const auto& pg : opportunistic_gains(cache, nt, 0, v)) {
            g.imps.push_back(pg.improvement());
            g.none += pg.improvement() < 1e-9 ? 1 : 0;
          }
          return g;
        },
        [](Gains& acc, Gains&& v2) {
          acc.imps.insert(acc.imps.end(), v2.imps.begin(), v2.imps.end());
          acc.none += v2.none;
        });
    if (all.imps.empty()) continue;
    appendf(out,
            "%s @1M: mean %.3f median %.3f zero-gain %.1f%% over %zu "
            "pairs\n",
            to_string(v), mean(all.imps), median(all.imps),
            100.0 * static_cast<double>(all.none) /
                static_cast<double>(all.imps.size()),
            all.imps.size());
  }
  return out;
}

std::string report_path_lengths(const Dataset& ds) {
  AnalysisCache cache;
  return report_path_lengths(ds, cache);
}

std::string report_path_lengths(const Dataset& ds, AnalysisCache& cache) {
  // One network per task; per-network hop lists concatenate in network
  // order.
  const std::vector<double> lengths = par::parallel_map_reduce(
      ds.networks.size(), std::vector<double>{},
      [&](std::size_t i) {
        std::vector<double> l;
        const auto& nt = ds.networks[i];
        if (nt.info.standard != Standard::kBg || nt.ap_count < 5) return l;
        for (const int h : path_lengths(cache, nt, 0)) {
          l.push_back(static_cast<double>(h));
        }
        return l;
      },
      [](std::vector<double>& acc, std::vector<double>&& v) {
        acc.insert(acc.end(), v.begin(), v.end());
      });
  std::string out;
  if (lengths.empty()) {
    out = "no connected >=5-AP b/g networks for path lengths\n";
    return out;
  }
  appendf(out,
          "ETX1 @1M paths: %zu pairs, mean %.2f hops, median %.0f, p90 "
          "%.0f\n",
          lengths.size(), mean(lengths), median(lengths),
          quantile(lengths, 0.9));
  return out;
}

std::string report_hidden(const Dataset& ds) {
  AnalysisCache cache;
  return report_hidden(ds, cache);
}

std::string report_hidden(const Dataset& ds, AnalysisCache& cache) {
  TextTable t;
  t.header({"rate", "networks", "median hidden fraction"});
  const auto rates = probed_rates(Standard::kBg);
  for (RateIndex r = 0; r < rates.size(); ++r) {
    const auto stats =
        hidden_triples_per_network(cache, ds, Standard::kBg, r, 0.10);
    if (stats.fractions.empty()) continue;
    t.add_row({std::string(rates[r].name),
               std::to_string(stats.fractions.size()),
               fmt(median(stats.fractions), 3)});
  }
  return t.render();
}

std::string report_mobility(const Dataset& ds) {
  std::string out;
  for (const Environment env : {Environment::kIndoor, Environment::kOutdoor}) {
    const auto m = analyze_mobility_by_env(ds, env);
    if (m.prevalence.empty()) continue;
    appendf(out,
            "%s: prevalence mean/med %.3f/%.3f, persistence mean/med "
            "%.1f/%.1f min, %zu sessions\n",
            to_string(env).c_str(), mean(m.prevalence), median(m.prevalence),
            mean(m.persistence_min), median(m.persistence_min),
            m.aps_visited.size());
  }
  return out;
}

std::string report_traffic(const Dataset& ds) {
  const auto t = analyze_traffic(ds);
  std::string out;
  if (t.packets_per_client.empty()) {
    out = "no client data in snapshot\n";
    return out;
  }
  appendf(out, "clients: %zu, APs with traffic: %zu, total packets: %.0f\n",
          t.packets_per_client.size(), t.packets_per_ap.size(),
          t.total_packets);
  appendf(out,
          "median packets/client: %.0f (p90 %.0f); busiest 10%% of APs "
          "carry %.0f%% of traffic\n",
          median(t.packets_per_client), quantile(t.packets_per_client, 0.9),
          100.0 * t.top_decile_ap_share);
  return out;
}

std::string report_etx(const Dataset& ds) {
  WMESH_SPAN("analyze.etx_pipeline");
  // One cache across the sections: routing's rate-0 matrices and ETX1
  // graphs are reused by the path-length report, hidden's per-rate
  // matrices are computed once.
  AnalysisCache cache;
  std::string out;
  out += "== snr ==\n";
  out += report_snr(ds);
  out += "\n== lookup ==\n";
  out += report_lookup(ds);
  out += "\n== etx/exor routing ==\n";
  out += report_routing(ds, cache);
  out += report_path_lengths(ds, cache);
  out += "\n== anypath ==\n";
  out += report_anypath(ds, cache);
  out += "\n== hidden ==\n";
  out += report_hidden(ds, cache);
  out += "\n== mobility ==\n";
  out += report_mobility(ds);
  out += "\n== traffic ==\n";
  out += report_traffic(ds);
  return out;
}

std::string run_report(const Dataset& ds, std::string_view what) {
  if (what == "snr") return report_snr(ds);
  if (what == "lookup") return report_lookup(ds);
  if (what == "routing") return report_routing(ds);
  if (what == "anypath") return report_anypath(ds);
  if (what == "hidden") return report_hidden(ds);
  if (what == "mobility") return report_mobility(ds);
  if (what == "traffic") return report_traffic(ds);
  if (what == "etx" || what == "all") return report_etx(ds);
  return std::string();
}

}  // namespace wmesh

#include "core/report.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "anypath/analysis.h"
#include "core/analysis_cache.h"
#include "core/exor.h"
#include "core/hidden.h"
#include "core/lookup_table.h"
#include "core/mobility.h"
#include "core/report_partials.h"
#include "core/snr_stats.h"
#include "core/traffic.h"
#include "obs/span.h"
#include "par/thread_pool.h"
#include "util/stats.h"
#include "util/text_table.h"

namespace wmesh {
namespace {

// printf-append; every report line was born as a printf call in
// wmesh_analyze and keeps its exact format string here.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt_str, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt_str);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt_str, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n),
                                      sizeof(buf) - 1));
}

constexpr std::array<Standard, 2> kStandards = {Standard::kBg, Standard::kN};
constexpr std::array<TableScope, 4> kScopes = {
    TableScope::kGlobal, TableScope::kNetwork, TableScope::kAp,
    TableScope::kLink};
constexpr std::array<EtxVariant, 2> kVariants = {EtxVariant::kEtx1,
                                                EtxVariant::kEtx2};

std::string render_snr(const ReportPartials& p) {
  std::string out;
  for (std::size_t si = 0; si < kStandards.size(); ++si) {
    const SnrDeviations& dev = p.snr[si];
    if (dev.per_probe_set.empty()) continue;
    const Cdf sets(dev.per_probe_set);
    appendf(out,
            "%s: probe-set sigma median %.2f dB (<5 dB: %.1f%%), link "
            "median %.2f, network median %.2f\n",
            std::string(to_string(kStandards[si])).c_str(), sets.median(),
            100.0 * sets.fraction_at_or_below(5.0), median(dev.per_link),
            median(dev.per_network));
  }
  return out;
}

std::string render_lookup(const ReportPartials& p) {
  TextTable t;
  t.header({"standard", "scope", "exact", "mean loss (Mbit/s)"});
  for (std::size_t si = 0; si < kStandards.size(); ++si) {
    for (std::size_t sc = 0; sc < kScopes.size(); ++sc) {
      const TableEvalPartial& err = p.lookup[si][sc];
      if (err.diffs.empty()) continue;
      const double exact_fraction = static_cast<double>(err.exact) /
                                    static_cast<double>(err.diffs.size());
      t.add_row({std::string(to_string(kStandards[si])),
                 to_string(kScopes[sc]), fmt(100.0 * exact_fraction, 1) + "%",
                 fmt(mean(err.diffs), 3)});
    }
  }
  return t.render();
}

std::string render_routing(const ReportPartials& p) {
  std::string out;
  for (std::size_t vi = 0; vi < kVariants.size(); ++vi) {
    const ReportPartials::RoutingGains& all = p.routing[vi];
    if (all.imps.empty()) continue;
    appendf(out,
            "%s @1M: mean %.3f median %.3f zero-gain %.1f%% over %zu "
            "pairs\n",
            to_string(kVariants[vi]), mean(all.imps), median(all.imps),
            100.0 * static_cast<double>(all.none) /
                static_cast<double>(all.imps.size()),
            all.imps.size());
  }
  return out;
}

std::string render_paths(const ReportPartials& p) {
  std::string out;
  if (p.path_hops.empty()) {
    out = "no connected >=5-AP b/g networks for path lengths\n";
    return out;
  }
  appendf(out,
          "ETX1 @1M paths: %zu pairs, mean %.2f hops, median %.0f, p90 "
          "%.0f\n",
          p.path_hops.size(), mean(p.path_hops), median(p.path_hops),
          quantile(p.path_hops, 0.9));
  return out;
}

std::string render_hidden(const ReportPartials& p) {
  TextTable t;
  t.header({"rate", "networks", "median hidden fraction"});
  const auto rates = probed_rates(Standard::kBg);
  for (RateIndex r = 0; r < rates.size() && r < p.hidden.size(); ++r) {
    const HiddenTripleStats& stats = p.hidden[r];
    if (stats.fractions.empty()) continue;
    t.add_row({std::string(rates[r].name),
               std::to_string(stats.fractions.size()),
               fmt(median(stats.fractions), 3)});
  }
  return t.render();
}

std::string render_mobility(const ReportPartials& p) {
  constexpr std::array<Environment, 2> kEnvs = {Environment::kIndoor,
                                                Environment::kOutdoor};
  std::string out;
  for (std::size_t ei = 0; ei < kEnvs.size(); ++ei) {
    const MobilityStats& m = p.mobility[ei];
    if (m.prevalence.empty()) continue;
    appendf(out,
            "%s: prevalence mean/med %.3f/%.3f, persistence mean/med "
            "%.1f/%.1f min, %zu sessions\n",
            to_string(kEnvs[ei]).c_str(), mean(m.prevalence),
            median(m.prevalence), mean(m.persistence_min),
            median(m.persistence_min), m.aps_visited.size());
  }
  return out;
}

std::string render_traffic(const ReportPartials& p) {
  // Finalize on a copy: the partial stays mergeable (the top-decile AP
  // share is a global statistic, computable only after the last shard).
  TrafficStats t = p.traffic;
  finalize_traffic(t);
  std::string out;
  if (t.packets_per_client.empty()) {
    out = "no client data in snapshot\n";
    return out;
  }
  appendf(out, "clients: %zu, APs with traffic: %zu, total packets: %.0f\n",
          t.packets_per_client.size(), t.packets_per_ap.size(),
          t.total_packets);
  appendf(out,
          "median packets/client: %.0f (p90 %.0f); busiest 10%% of APs "
          "carry %.0f%% of traffic\n",
          median(t.packets_per_client), quantile(t.packets_per_client, 0.9),
          100.0 * t.top_decile_ap_share);
  return out;
}

}  // namespace

unsigned report_sections(std::string_view what) {
  if (what == "snr") return kSectionSnr;
  if (what == "lookup") return kSectionLookup;
  if (what == "routing") return kSectionRouting;
  if (what == "anypath") return kSectionAnypath;
  if (what == "hidden") return kSectionHidden;
  if (what == "mobility") return kSectionMobility;
  if (what == "traffic") return kSectionTraffic;
  if (what == "etx" || what == "all") return kSectionAll;
  return 0;
}

void GlobalLookupTables::add(const Dataset& ds) {
  bg.merge(build_lookup_table(ds, Standard::kBg, TableScope::kGlobal));
  n.merge(build_lookup_table(ds, Standard::kN, TableScope::kGlobal));
}

ReportPartials collect_report(const Dataset& ds, unsigned sections,
                              const GlobalLookupTables* global,
                              AnalysisCache& cache) {
  ReportPartials p;
  p.sections = sections;
  if (sections & kSectionSnr) {
    for (std::size_t si = 0; si < kStandards.size(); ++si) {
      p.snr[si] = snr_deviations(ds, kStandards[si]);
    }
  }
  if (sections & kSectionLookup) {
    for (std::size_t si = 0; si < kStandards.size(); ++si) {
      for (std::size_t sc = 0; sc < kScopes.size(); ++sc) {
        WMESH_SPAN("lookup.errors");
        const Standard std_ = kStandards[si];
        const TableScope scope = kScopes[sc];
        // The global scope pools every network's observations, so a fleet
        // shard must evaluate against the fleet-wide table the driver built
        // in its first pass.  The other scopes key cells by network id, so
        // a table built from the shard answers the shard's queries exactly
        // like the fleet-wide one would.
        if (scope == TableScope::kGlobal && global != nullptr) {
          const SnrLookupTable& t = si == 0 ? global->bg : global->n;
          p.lookup[si][sc] = eval_lookup_table(ds, std_, scope, t);
        } else {
          const SnrLookupTable t = build_lookup_table(ds, std_, scope);
          p.lookup[si][sc] = eval_lookup_table(ds, std_, scope, t);
        }
      }
    }
  }
  if (sections & kSectionRouting) {
    for (std::size_t vi = 0; vi < kVariants.size(); ++vi) {
      const EtxVariant v = kVariants[vi];
      // One network per task (the paper's 110-network study is
      // embarrassingly parallel); per-network gains concatenate in network
      // order, so the summary is byte-identical for any thread count.
      using Gains = ReportPartials::RoutingGains;
      p.routing[vi] = par::parallel_map_reduce(
          ds.networks.size(), Gains{},
          [&](std::size_t i) {
            Gains g;
            const auto& nt = ds.networks[i];
            if (nt.info.standard != Standard::kBg || nt.ap_count < 5) {
              return g;
            }
            for (const auto& pg : opportunistic_gains(cache, nt, 0, v)) {
              g.imps.push_back(pg.improvement());
              g.none += pg.improvement() < 1e-9 ? 1 : 0;
            }
            return g;
          },
          [](Gains& acc, Gains&& v2) {
            acc.imps.insert(acc.imps.end(), v2.imps.begin(), v2.imps.end());
            acc.none += v2.none;
          });
    }
  }
  if (sections & kSectionPaths) {
    // One network per task; per-network hop lists concatenate in network
    // order.
    p.path_hops = par::parallel_map_reduce(
        ds.networks.size(), std::vector<double>{},
        [&](std::size_t i) {
          std::vector<double> l;
          const auto& nt = ds.networks[i];
          if (nt.info.standard != Standard::kBg || nt.ap_count < 5) return l;
          for (const int h : path_lengths(cache, nt, 0)) {
            l.push_back(static_cast<double>(h));
          }
          return l;
        },
        [](std::vector<double>& acc, std::vector<double>&& v) {
          acc.insert(acc.end(), v.begin(), v.end());
        });
  }
  if (sections & kSectionAnypath) {
    p.anypath = collect_anypath(ds, cache);
  }
  if (sections & kSectionHidden) {
    const auto rates = probed_rates(Standard::kBg);
    p.hidden.resize(rates.size());
    for (RateIndex r = 0; r < rates.size(); ++r) {
      p.hidden[r] =
          hidden_triples_per_network(cache, ds, Standard::kBg, r, 0.10);
    }
  }
  if (sections & kSectionMobility) {
    p.mobility[0] = analyze_mobility_by_env(ds, Environment::kIndoor);
    p.mobility[1] = analyze_mobility_by_env(ds, Environment::kOutdoor);
  }
  if (sections & kSectionTraffic) {
    p.traffic = collect_traffic(ds);
  }
  return p;
}

void merge_report(ReportPartials& acc, ReportPartials&& next) {
  acc.sections |= next.sections;
  for (std::size_t si = 0; si < acc.snr.size(); ++si) {
    auto append = [](std::vector<double>& dst, std::vector<double>& src) {
      dst.insert(dst.end(), src.begin(), src.end());
    };
    append(acc.snr[si].per_probe_set, next.snr[si].per_probe_set);
    append(acc.snr[si].per_link, next.snr[si].per_link);
    append(acc.snr[si].per_network, next.snr[si].per_network);
    for (std::size_t sc = 0; sc < acc.lookup[si].size(); ++sc) {
      append(acc.lookup[si][sc].diffs, next.lookup[si][sc].diffs);
      acc.lookup[si][sc].exact += next.lookup[si][sc].exact;
    }
  }
  for (std::size_t vi = 0; vi < acc.routing.size(); ++vi) {
    acc.routing[vi].imps.insert(acc.routing[vi].imps.end(),
                                next.routing[vi].imps.begin(),
                                next.routing[vi].imps.end());
    acc.routing[vi].none += next.routing[vi].none;
  }
  acc.path_hops.insert(acc.path_hops.end(), next.path_hops.begin(),
                       next.path_hops.end());
  acc.anypath.insert(acc.anypath.end(),
                     std::make_move_iterator(next.anypath.begin()),
                     std::make_move_iterator(next.anypath.end()));
  if (acc.hidden.size() < next.hidden.size()) {
    acc.hidden.resize(next.hidden.size());
  }
  for (std::size_t r = 0; r < next.hidden.size(); ++r) {
    acc.hidden[r].fractions.insert(acc.hidden[r].fractions.end(),
                                   next.hidden[r].fractions.begin(),
                                   next.hidden[r].fractions.end());
    acc.hidden[r].networks_with_triples +=
        next.hidden[r].networks_with_triples;
  }
  for (std::size_t ei = 0; ei < acc.mobility.size(); ++ei) {
    merge_mobility(acc.mobility[ei], std::move(next.mobility[ei]));
  }
  merge_traffic(acc.traffic, std::move(next.traffic));
}

std::string render_report(const ReportPartials& p, std::string_view what) {
  if (what == "snr") return render_snr(p);
  if (what == "lookup") return render_lookup(p);
  if (what == "routing") return render_routing(p);
  if (what == "anypath") return render_anypath(p.anypath);
  if (what == "hidden") return render_hidden(p);
  if (what == "mobility") return render_mobility(p);
  if (what == "traffic") return render_traffic(p);
  if (what != "etx" && what != "all") return std::string();
  std::string out;
  out += "== snr ==\n";
  out += render_snr(p);
  out += "\n== lookup ==\n";
  out += render_lookup(p);
  out += "\n== etx/exor routing ==\n";
  out += render_routing(p);
  out += render_paths(p);
  out += "\n== anypath ==\n";
  out += render_anypath(p.anypath);
  out += "\n== hidden ==\n";
  out += render_hidden(p);
  out += "\n== mobility ==\n";
  out += render_mobility(p);
  out += "\n== traffic ==\n";
  out += render_traffic(p);
  return out;
}

std::string report_snr(const Dataset& ds) {
  AnalysisCache cache;
  return render_snr(collect_report(ds, kSectionSnr, nullptr, cache));
}

std::string report_lookup(const Dataset& ds) {
  AnalysisCache cache;
  return render_lookup(collect_report(ds, kSectionLookup, nullptr, cache));
}

std::string report_routing(const Dataset& ds) {
  AnalysisCache cache;
  return report_routing(ds, cache);
}

std::string report_routing(const Dataset& ds, AnalysisCache& cache) {
  return render_routing(collect_report(ds, kSectionRouting, nullptr, cache));
}

std::string report_path_lengths(const Dataset& ds) {
  AnalysisCache cache;
  return report_path_lengths(ds, cache);
}

std::string report_path_lengths(const Dataset& ds, AnalysisCache& cache) {
  return render_paths(collect_report(ds, kSectionPaths, nullptr, cache));
}

std::string report_hidden(const Dataset& ds) {
  AnalysisCache cache;
  return report_hidden(ds, cache);
}

std::string report_hidden(const Dataset& ds, AnalysisCache& cache) {
  return render_hidden(collect_report(ds, kSectionHidden, nullptr, cache));
}

std::string report_mobility(const Dataset& ds) {
  AnalysisCache cache;
  return render_mobility(collect_report(ds, kSectionMobility, nullptr, cache));
}

std::string report_traffic(const Dataset& ds) {
  AnalysisCache cache;
  return render_traffic(collect_report(ds, kSectionTraffic, nullptr, cache));
}

std::string report_etx(const Dataset& ds) {
  WMESH_SPAN("analyze.etx_pipeline");
  // One cache across the sections: routing's rate-0 matrices and ETX1
  // graphs are reused by the path-length report, hidden's per-rate
  // matrices are computed once.
  AnalysisCache cache;
  return render_report(collect_report(ds, kSectionAll, nullptr, cache),
                       "etx");
}

std::string run_report(const Dataset& ds, std::string_view what) {
  if (what == "snr") return report_snr(ds);
  if (what == "lookup") return report_lookup(ds);
  if (what == "routing") return report_routing(ds);
  if (what == "anypath") return report_anypath(ds);
  if (what == "hidden") return report_hidden(ds);
  if (what == "mobility") return report_mobility(ds);
  if (what == "traffic") return report_traffic(ds);
  if (what == "etx" || what == "all") return report_etx(ds);
  return std::string();
}

}  // namespace wmesh

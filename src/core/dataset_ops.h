// Shared dataset operations used by every analysis module.
//
// Two idioms recur throughout the paper's methodology:
//   * per-probe-set analysis (iterate every ProbeSet of one standard), and
//   * per-network link matrices (collapse the snapshot into one packet
//     success rate per directed link per bit rate, as §5 and §6 do).
// This header provides both, plus the SNR-bucketing convention (integer dB)
// that all look-up tables key on.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "trace/records.h"

namespace wmesh {

// The look-up tables key SNR by integer dB, the resolution the Atheros
// radios report at.
inline int snr_key(float snr_db) noexcept {
  return static_cast<int>(std::lround(snr_db));
}

// Calls `fn(trace, set)` for every probe set of every trace of `standard`.
void for_each_probe_set(
    const Dataset& ds, Standard standard,
    const std::function<void(const NetworkTrace&, const ProbeSet&)>& fn);

// Mean packet success rate per directed link at one bit rate, averaged over
// every probe set of the snapshot (the paper's per-network "matrix of packet
// success rates", §5.1).  Links that never appear have success 0.
class SuccessMatrix {
 public:
  SuccessMatrix() = default;
  SuccessMatrix(std::size_t ap_count)
      : n_(ap_count), p_(ap_count * ap_count, 0.0) {}

  std::size_t ap_count() const noexcept { return n_; }

  double at(ApId from, ApId to) const noexcept {
    return p_[static_cast<std::size_t>(from) * n_ + to];
  }
  void set(ApId from, ApId to, double p) noexcept {
    p_[static_cast<std::size_t>(from) * n_ + to] = p;
  }

  // Number of directed links with success > 0.
  std::size_t live_links() const noexcept;

 private:
  std::size_t n_ = 0;
  std::vector<double> p_;
};

// Builds the success matrix of `trace` at probed rate `rate`.
SuccessMatrix mean_success_matrix(const NetworkTrace& trace, RateIndex rate);

// All success matrices of a trace (one per probed rate), sharing one pass
// over the probe sets.
std::vector<SuccessMatrix> all_success_matrices(const NetworkTrace& trace);

}  // namespace wmesh

#include "core/hidden.h"

#include "obs/metrics.h"
#include "obs/span.h"

namespace wmesh {

HearingGraph::HearingGraph(const SuccessMatrix& success, double threshold)
    : n_(success.ap_count()), hear_(n_ * n_, 0) {
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = a + 1; b < n_; ++b) {
      const double fwd = success.at(static_cast<ApId>(a), static_cast<ApId>(b));
      const double rev = success.at(static_cast<ApId>(b), static_cast<ApId>(a));
      const bool heard = 0.5 * (fwd + rev) > threshold;
      hear_[a * n_ + b] = heard ? 1 : 0;
      hear_[b * n_ + a] = heard ? 1 : 0;
    }
  }
  WMESH_COUNTER_INC("hidden.graphs_built");
}

std::size_t HearingGraph::range_pairs() const noexcept {
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = a + 1; b < n_; ++b) {
      pairs += hear_[a * n_ + b];
    }
  }
  return pairs;
}

TripleCounts count_triples(const HearingGraph& graph) {
  WMESH_SPAN("hidden.count_triples");
  const std::size_t n = graph.ap_count();
  TripleCounts out;
  std::vector<ApId> hearers;
  for (std::size_t b = 0; b < n; ++b) {
    hearers.clear();
    for (std::size_t x = 0; x < n; ++x) {
      if (x == b) continue;
      if (graph.hears(static_cast<ApId>(x), static_cast<ApId>(b))) {
        hearers.push_back(static_cast<ApId>(x));
      }
    }
    for (std::size_t i = 0; i < hearers.size(); ++i) {
      for (std::size_t j = i + 1; j < hearers.size(); ++j) {
        ++out.relevant;
        if (!graph.hears(hearers[i], hearers[j])) ++out.hidden;
      }
    }
  }
  WMESH_COUNTER_ADD("hidden.triples_relevant", out.relevant);
  WMESH_COUNTER_ADD("hidden.triples_hidden", out.hidden);
  return out;
}

HiddenTripleStats hidden_triples_per_network(const Dataset& ds,
                                             Standard standard,
                                             RateIndex rate, double threshold,
                                             std::size_t min_aps) {
  HiddenTripleStats out;
  for (const auto& nt : ds.networks) {
    if (nt.info.standard != standard) continue;
    if (nt.ap_count < min_aps) continue;
    const auto success = mean_success_matrix(nt, rate);
    const HearingGraph graph(success, threshold);
    const auto counts = count_triples(graph);
    if (counts.relevant == 0) continue;
    ++out.networks_with_triples;
    out.fractions.push_back(counts.hidden_fraction());
  }
  return out;
}

std::vector<std::vector<double>> range_ratios(const Dataset& ds,
                                              Standard standard,
                                              double threshold,
                                              RateIndex base_rate) {
  const std::size_t n_rates = rate_count(standard);
  std::vector<std::vector<double>> out(n_rates);
  for (const auto& nt : ds.networks) {
    if (nt.info.standard != standard) continue;
    const auto matrices = all_success_matrices(nt);
    const HearingGraph base(matrices[base_rate], threshold);
    const double base_pairs = static_cast<double>(base.range_pairs());
    if (base_pairs <= 0.0) continue;
    for (std::size_t r = 0; r < n_rates; ++r) {
      const HearingGraph g(matrices[r], threshold);
      out[r].push_back(static_cast<double>(g.range_pairs()) / base_pairs);
    }
  }
  return out;
}

std::vector<double> normalized_range(const Dataset& ds, Standard standard,
                                     RateIndex rate, double threshold,
                                     Environment env) {
  std::vector<double> out;
  for (const auto& nt : ds.networks) {
    if (nt.info.standard != standard || nt.info.env != env) continue;
    if (nt.ap_count < 2) continue;
    const auto success = mean_success_matrix(nt, rate);
    const HearingGraph g(success, threshold);
    const double size = static_cast<double>(nt.ap_count);
    out.push_back(static_cast<double>(g.range_pairs()) / (size * size));
  }
  return out;
}

}  // namespace wmesh

#include "core/hidden.h"

#include "obs/metrics.h"
#include "obs/span.h"
#include "par/thread_pool.h"

namespace wmesh {

HearingGraph::HearingGraph(const SuccessMatrix& success, double threshold)
    : n_(success.ap_count()), hear_(n_ * n_, 0) {
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = a + 1; b < n_; ++b) {
      const double fwd = success.at(static_cast<ApId>(a), static_cast<ApId>(b));
      const double rev = success.at(static_cast<ApId>(b), static_cast<ApId>(a));
      const bool heard = 0.5 * (fwd + rev) > threshold;
      hear_[a * n_ + b] = heard ? 1 : 0;
      hear_[b * n_ + a] = heard ? 1 : 0;
    }
  }
  WMESH_COUNTER_INC("hidden.graphs_built");
}

std::size_t HearingGraph::range_pairs() const noexcept {
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = a + 1; b < n_; ++b) {
      pairs += hear_[a * n_ + b];
    }
  }
  return pairs;
}

TripleCounts count_triples(const HearingGraph& graph) {
  WMESH_SPAN("hidden.count_triples");
  const std::size_t n = graph.ap_count();
  TripleCounts out;
  std::vector<ApId> hearers;
  for (std::size_t b = 0; b < n; ++b) {
    hearers.clear();
    for (std::size_t x = 0; x < n; ++x) {
      if (x == b) continue;
      if (graph.hears(static_cast<ApId>(x), static_cast<ApId>(b))) {
        hearers.push_back(static_cast<ApId>(x));
      }
    }
    for (std::size_t i = 0; i < hearers.size(); ++i) {
      for (std::size_t j = i + 1; j < hearers.size(); ++j) {
        ++out.relevant;
        if (!graph.hears(hearers[i], hearers[j])) ++out.hidden;
      }
    }
  }
  WMESH_COUNTER_ADD("hidden.triples_relevant", out.relevant);
  WMESH_COUNTER_ADD("hidden.triples_hidden", out.hidden);
  return out;
}

HiddenTripleStats hidden_triples_per_network(const Dataset& ds,
                                             Standard standard,
                                             RateIndex rate, double threshold,
                                             std::size_t min_aps) {
  // One network per task; per-network fractions concatenate in network
  // order, identical to the serial loop.
  return par::parallel_map_reduce(
      ds.networks.size(), HiddenTripleStats{},
      [&](std::size_t i) {
        HiddenTripleStats s;
        const auto& nt = ds.networks[i];
        if (nt.info.standard != standard) return s;
        if (nt.ap_count < min_aps) return s;
        const auto success = mean_success_matrix(nt, rate);
        const HearingGraph graph(success, threshold);
        const auto counts = count_triples(graph);
        if (counts.relevant == 0) return s;
        ++s.networks_with_triples;
        s.fractions.push_back(counts.hidden_fraction());
        return s;
      },
      [](HiddenTripleStats& acc, HiddenTripleStats&& v) {
        acc.networks_with_triples += v.networks_with_triples;
        acc.fractions.insert(acc.fractions.end(), v.fractions.begin(),
                             v.fractions.end());
      });
}

std::vector<std::vector<double>> range_ratios(const Dataset& ds,
                                              Standard standard,
                                              double threshold,
                                              RateIndex base_rate) {
  const std::size_t n_rates = rate_count(standard);
  // One network per task producing its per-rate ratio row (or nothing);
  // rows append per rate in network order, identical to the serial loop.
  return par::parallel_map_reduce(
      ds.networks.size(), std::vector<std::vector<double>>(n_rates),
      [&](std::size_t i) {
        std::vector<std::vector<double>> rows(n_rates);
        const auto& nt = ds.networks[i];
        if (nt.info.standard != standard) return rows;
        const auto matrices = all_success_matrices(nt);
        const HearingGraph base(matrices[base_rate], threshold);
        const double base_pairs = static_cast<double>(base.range_pairs());
        if (base_pairs <= 0.0) return rows;
        for (std::size_t r = 0; r < n_rates; ++r) {
          const HearingGraph g(matrices[r], threshold);
          rows[r].push_back(static_cast<double>(g.range_pairs()) / base_pairs);
        }
        return rows;
      },
      [](std::vector<std::vector<double>>& acc,
         std::vector<std::vector<double>>&& v) {
        for (std::size_t r = 0; r < acc.size(); ++r) {
          acc[r].insert(acc[r].end(), v[r].begin(), v[r].end());
        }
      });
}

std::vector<double> normalized_range(const Dataset& ds, Standard standard,
                                     RateIndex rate, double threshold,
                                     Environment env) {
  // One network per task; values concatenate in network order.
  return par::parallel_map_reduce(
      ds.networks.size(), std::vector<double>{},
      [&](std::size_t i) {
        std::vector<double> vals;
        const auto& nt = ds.networks[i];
        if (nt.info.standard != standard || nt.info.env != env) return vals;
        if (nt.ap_count < 2) return vals;
        const auto success = mean_success_matrix(nt, rate);
        const HearingGraph g(success, threshold);
        const double size = static_cast<double>(nt.ap_count);
        vals.push_back(static_cast<double>(g.range_pairs()) / (size * size));
        return vals;
      },
      [](std::vector<double>& acc, std::vector<double>&& v) {
        acc.insert(acc.end(), v.begin(), v.end());
      });
}

}  // namespace wmesh

#include "core/hidden.h"

#include "core/analysis_cache.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "par/thread_pool.h"

namespace wmesh {

HearingGraph::HearingGraph(const SuccessMatrix& success, double threshold)
    : n_(success.ap_count()), bits_(n_, n_) {
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = a + 1; b < n_; ++b) {
      const double fwd = success.at(static_cast<ApId>(a), static_cast<ApId>(b));
      const double rev = success.at(static_cast<ApId>(b), static_cast<ApId>(a));
      if (0.5 * (fwd + rev) > threshold) {
        bits_.set(a, b);
        bits_.set(b, a);
      }
    }
  }
  WMESH_COUNTER_INC("hidden.graphs_built");
}

std::size_t HearingGraph::range_pairs() const noexcept {
  // Symmetric relation with an empty diagonal: every hearing pair sets two
  // bits, so the whole-matrix popcount is exactly twice the pair count.
  std::size_t bits = 0;
  for (std::size_t a = 0; a < n_; ++a) bits += bits_.row_popcount(a);
  return bits / 2;
}

std::size_t range_pairs_reference(const HearingGraph& graph) {
  const std::size_t n = graph.ap_count();
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      pairs += graph.hears(static_cast<ApId>(a), static_cast<ApId>(b)) ? 1 : 0;
    }
  }
  return pairs;
}

TripleCounts count_triples(const HearingGraph& graph) {
  WMESH_SPAN("hidden.count_triples");
  const std::size_t n = graph.ap_count();
  const std::size_t words = graph.words_per_row();
  TripleCounts out;
  for (std::size_t b = 0; b < n; ++b) {
    const std::uint64_t* rb = graph.row(b);
    const std::size_t hearers = util::BitRows::popcount(rb, words);
    if (hearers < 2) continue;
    out.relevant += hearers * (hearers - 1) / 2;
    // Ordered hearer pairs (A, C) that also hear each other: for every
    // hearer A of B, intersect A's row with B's hearer row.  B's own bit
    // is clear in rb, so A-hears-B contributes nothing.  Halving gives the
    // connected unordered pairs; the rest of the C(hearers, 2) are hidden.
    std::size_t connected = 0;
    util::BitRows::for_each_set(rb, words, [&](std::size_t a) {
      connected += util::BitRows::and_popcount(graph.row(a), rb, words);
    });
    out.hidden += hearers * (hearers - 1) / 2 - connected / 2;
  }
  WMESH_COUNTER_ADD("hidden.triples_relevant", out.relevant);
  WMESH_COUNTER_ADD("hidden.triples_hidden", out.hidden);
  return out;
}

TripleCounts count_triples_reference(const HearingGraph& graph) {
  const std::size_t n = graph.ap_count();
  TripleCounts out;
  std::vector<ApId> hearers;
  for (std::size_t b = 0; b < n; ++b) {
    hearers.clear();
    for (std::size_t x = 0; x < n; ++x) {
      if (x == b) continue;
      if (graph.hears(static_cast<ApId>(x), static_cast<ApId>(b))) {
        hearers.push_back(static_cast<ApId>(x));
      }
    }
    for (std::size_t i = 0; i < hearers.size(); ++i) {
      for (std::size_t j = i + 1; j < hearers.size(); ++j) {
        ++out.relevant;
        if (!graph.hears(hearers[i], hearers[j])) ++out.hidden;
      }
    }
  }
  return out;
}

namespace {

// Shared implementation over any per-(network, rate) matrix source, so the
// cached and uncached entry points stay one code path.
template <typename SuccessFn>
HiddenTripleStats hidden_triples_impl(const Dataset& ds, Standard standard,
                                      RateIndex rate, double threshold,
                                      std::size_t min_aps,
                                      SuccessFn&& success_of) {
  // One network per task; per-network fractions concatenate in network
  // order, identical to the serial loop.
  return par::parallel_map_reduce(
      ds.networks.size(), HiddenTripleStats{},
      [&](std::size_t i) {
        HiddenTripleStats s;
        const auto& nt = ds.networks[i];
        if (nt.info.standard != standard) return s;
        if (nt.ap_count < min_aps) return s;
        const HearingGraph graph(success_of(nt, rate), threshold);
        const auto counts = count_triples(graph);
        if (counts.relevant == 0) return s;
        ++s.networks_with_triples;
        s.fractions.push_back(counts.hidden_fraction());
        return s;
      },
      [](HiddenTripleStats& acc, HiddenTripleStats&& v) {
        acc.networks_with_triples += v.networks_with_triples;
        acc.fractions.insert(acc.fractions.end(), v.fractions.begin(),
                             v.fractions.end());
      });
}

template <typename MatricesFn>
std::vector<std::vector<double>> range_ratios_impl(const Dataset& ds,
                                                   Standard standard,
                                                   double threshold,
                                                   RateIndex base_rate,
                                                   MatricesFn&& matrices_of) {
  const std::size_t n_rates = rate_count(standard);
  // One network per task producing its per-rate ratio row (or nothing);
  // rows append per rate in network order, identical to the serial loop.
  return par::parallel_map_reduce(
      ds.networks.size(), std::vector<std::vector<double>>(n_rates),
      [&](std::size_t i) {
        std::vector<std::vector<double>> rows(n_rates);
        const auto& nt = ds.networks[i];
        if (nt.info.standard != standard) return rows;
        const std::vector<SuccessMatrix>& matrices = matrices_of(nt);
        const HearingGraph base(matrices[base_rate], threshold);
        const double base_pairs = static_cast<double>(base.range_pairs());
        if (base_pairs <= 0.0) return rows;
        for (std::size_t r = 0; r < n_rates; ++r) {
          const HearingGraph g(matrices[r], threshold);
          rows[r].push_back(static_cast<double>(g.range_pairs()) / base_pairs);
        }
        return rows;
      },
      [](std::vector<std::vector<double>>& acc,
         std::vector<std::vector<double>>&& v) {
        for (std::size_t r = 0; r < acc.size(); ++r) {
          acc[r].insert(acc[r].end(), v[r].begin(), v[r].end());
        }
      });
}

template <typename SuccessFn>
std::vector<double> normalized_range_impl(const Dataset& ds,
                                          Standard standard, RateIndex rate,
                                          double threshold, Environment env,
                                          SuccessFn&& success_of) {
  // One network per task; values concatenate in network order.
  return par::parallel_map_reduce(
      ds.networks.size(), std::vector<double>{},
      [&](std::size_t i) {
        std::vector<double> vals;
        const auto& nt = ds.networks[i];
        if (nt.info.standard != standard || nt.info.env != env) return vals;
        if (nt.ap_count < 2) return vals;
        const HearingGraph g(success_of(nt, rate), threshold);
        const double size = static_cast<double>(nt.ap_count);
        vals.push_back(static_cast<double>(g.range_pairs()) / (size * size));
        return vals;
      },
      [](std::vector<double>& acc, std::vector<double>&& v) {
        acc.insert(acc.end(), v.begin(), v.end());
      });
}

}  // namespace

HiddenTripleStats hidden_triples_per_network(const Dataset& ds,
                                             Standard standard,
                                             RateIndex rate, double threshold,
                                             std::size_t min_aps) {
  return hidden_triples_impl(ds, standard, rate, threshold, min_aps,
                             [](const NetworkTrace& nt, RateIndex r) {
                               return mean_success_matrix(nt, r);
                             });
}

HiddenTripleStats hidden_triples_per_network(AnalysisCache& cache,
                                             const Dataset& ds,
                                             Standard standard,
                                             RateIndex rate, double threshold,
                                             std::size_t min_aps) {
  return hidden_triples_impl(
      ds, standard, rate, threshold, min_aps,
      [&cache](const NetworkTrace& nt, RateIndex r) -> const SuccessMatrix& {
        return cache.success(nt, r);
      });
}

std::vector<std::vector<double>> range_ratios(const Dataset& ds,
                                              Standard standard,
                                              double threshold,
                                              RateIndex base_rate) {
  return range_ratios_impl(ds, standard, threshold, base_rate,
                           [](const NetworkTrace& nt) {
                             return all_success_matrices(nt);
                           });
}

std::vector<std::vector<double>> range_ratios(AnalysisCache& cache,
                                              const Dataset& ds,
                                              Standard standard,
                                              double threshold,
                                              RateIndex base_rate) {
  return range_ratios_impl(
      ds, standard, threshold, base_rate,
      [&cache](const NetworkTrace& nt)
          -> const std::vector<SuccessMatrix>& {
        return cache.all_success(nt);
      });
}

std::vector<double> normalized_range(const Dataset& ds, Standard standard,
                                     RateIndex rate, double threshold,
                                     Environment env) {
  return normalized_range_impl(ds, standard, rate, threshold, env,
                               [](const NetworkTrace& nt, RateIndex r) {
                                 return mean_success_matrix(nt, r);
                               });
}

std::vector<double> normalized_range(AnalysisCache& cache, const Dataset& ds,
                                     Standard standard, RateIndex rate,
                                     double threshold, Environment env) {
  return normalized_range_impl(
      ds, standard, rate, threshold, env,
      [&cache](const NetworkTrace& nt, RateIndex r) -> const SuccessMatrix& {
        return cache.success(nt, r);
      });
}

}  // namespace wmesh

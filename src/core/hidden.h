// Hidden-triple and range analysis (paper §6).
//
// Definitions (paper §6, verbatim semantics):
//   * APs A and B "can hear each other at rate b" when more than threshold t
//     of the probes sent between them at rate b were received (we use the
//     mean of the two directions' success rates, matching the paper's
//     "probes sent between them").
//   * A *relevant triple* (A, B, C) has A and C both hearing B.
//   * A *hidden triple* is a relevant triple where A and C cannot hear each
//     other -- the topology that can produce hidden terminals.
//   * The *range* of a network at rate b is the number of node pairs that
//     can hear each other at b; Fig 6.2 reports range(b) / range(1 Mbit/s).
//
// The hearing relation is stored as 64-bit bitset rows (util::BitRows), so
// triple counting is a word-parallel AND + popcount over hearer rows and
// range counting a popcount sweep.  The pre-bitset pairwise-scan kernels
// are retained as `*_reference` for the kernel-equivalence test wall; the
// counts are identical by construction (exact integer arithmetic).
#pragma once

#include <cstdint>
#include <vector>

#include "core/dataset_ops.h"
#include "util/bitrows.h"

namespace wmesh {

class AnalysisCache;

// Symmetric hearing relation of one network at one rate and threshold.
class HearingGraph {
 public:
  HearingGraph(const SuccessMatrix& success, double threshold);

  std::size_t ap_count() const noexcept { return n_; }
  bool hears(ApId a, ApId b) const noexcept {
    return bits_.test(static_cast<std::size_t>(a),
                      static_cast<std::size_t>(b));
  }

  // Bitset row of node `a`: bit b set iff a and b hear each other.  The
  // diagonal is never set.  Rows are words_per_row() 64-bit words with the
  // bits past ap_count() zero.
  const std::uint64_t* row(std::size_t a) const noexcept {
    return bits_.row(a);
  }
  std::size_t words_per_row() const noexcept { return bits_.words_per_row(); }

  // Number of unordered pairs that hear each other (the paper's "range"):
  // a popcount sweep over all rows, halved (the relation is symmetric and
  // the diagonal is empty).
  std::size_t range_pairs() const noexcept;

 private:
  std::size_t n_ = 0;
  util::BitRows bits_;
};

struct TripleCounts {
  std::size_t relevant = 0;
  std::size_t hidden = 0;

  double hidden_fraction() const noexcept {
    return relevant == 0
               ? 0.0
               : static_cast<double>(hidden) / static_cast<double>(relevant);
  }

  bool operator==(const TripleCounts&) const = default;
};

// Counts relevant and hidden triples: for every centre B and unordered pair
// {A, C} of B's hearers.  Word-parallel: per centre, relevant pairs come
// from the hearer-row popcount and connected pairs from AND + popcount of
// each hearer's row against the centre's row.
TripleCounts count_triples(const HearingGraph& graph);

// Dense pairwise-scan reference kernels (the pre-bitset implementation),
// kept for the sparse-vs-dense equivalence wall in tests/test_kernels.cc.
TripleCounts count_triples_reference(const HearingGraph& graph);
std::size_t range_pairs_reference(const HearingGraph& graph);

// Per-network hidden-triple fractions at one rate/threshold, over the traces
// of `standard` with at least `min_aps` APs.  One value per network that has
// at least one relevant triple.
struct HiddenTripleStats {
  std::vector<double> fractions;           // per network
  std::size_t networks_with_triples = 0;
};
HiddenTripleStats hidden_triples_per_network(const Dataset& ds,
                                             Standard standard,
                                             RateIndex rate, double threshold,
                                             std::size_t min_aps = 3);
// As above, with the per-network success matrices served from (and
// memoized in) `cache`.
HiddenTripleStats hidden_triples_per_network(AnalysisCache& cache,
                                             const Dataset& ds,
                                             Standard standard,
                                             RateIndex rate, double threshold,
                                             std::size_t min_aps = 3);

// Fig 6.2: per network, range(rate) / range(rate 0) for every probed rate.
// ratios[rate] holds one value per network whose base-rate range is > 0.
std::vector<std::vector<double>> range_ratios(const Dataset& ds,
                                              Standard standard,
                                              double threshold,
                                              RateIndex base_rate = 0);
std::vector<std::vector<double>> range_ratios(AnalysisCache& cache,
                                              const Dataset& ds,
                                              Standard standard,
                                              double threshold,
                                              RateIndex base_rate = 0);

// §6.3: range normalized by network size squared, per network, at one rate.
std::vector<double> normalized_range(const Dataset& ds, Standard standard,
                                     RateIndex rate, double threshold,
                                     Environment env);
std::vector<double> normalized_range(AnalysisCache& cache, const Dataset& ds,
                                     Standard standard, RateIndex rate,
                                     double threshold, Environment env);

}  // namespace wmesh

// Text reports of the paper's analyses -- the rendering layer behind
// `wmesh_analyze`.
//
// Each function runs one analysis family over the snapshot and returns the
// exact text the tool prints.  Pulling the rendering into the library (out
// of tools/wmesh_analyze.cc) serves three consumers:
//   * the CLI, which just fputs() the string,
//   * the golden regression tests (tests/test_golden_analyze.cc), which
//     diff these strings against checked-in expected output so refactors
//     cannot silently change paper numbers, and
//   * the parallel determinism tests, which assert the strings are
//     byte-identical across thread counts.
//
// The heavy lifting underneath (ETX/ExOR, look-up tables, hidden triples,
// dataset generation) runs on the wmesh::par default pool; the rendering
// itself is serial and deterministic.
#pragma once

#include <string>
#include <string_view>

#include "trace/records.h"

namespace wmesh {

class AnalysisCache;

// Fig 3.1: SNR dispersion summary per standard.
std::string report_snr(const Dataset& ds);

// Fig 4.4: look-up table accuracy by scope, both standards.
std::string report_lookup(const Dataset& ds);

// Fig 5.1: opportunistic-routing gains at the 1 Mbit/s base rate.
//
// The routing, path-length and hidden reports each take an optional
// AnalysisCache: success matrices and EtxGraphs are then memoized across
// ETX variants, report sections, and repeated runs over the same dataset
// (report_etx shares one cache across its sections).  The no-cache
// overloads use a cache private to the call; output is identical either
// way.
std::string report_routing(const Dataset& ds);
std::string report_routing(const Dataset& ds, AnalysisCache& cache);

// Fig 5.3: ETX1 shortest-path hop count summary.
std::string report_path_lengths(const Dataset& ds);
std::string report_path_lengths(const Dataset& ds, AnalysisCache& cache);

// Fig 6.1: hidden-triple medians per rate.
std::string report_hidden(const Dataset& ds);
std::string report_hidden(const Dataset& ds, AnalysisCache& cache);

// ROADMAP item 3: three-way ETX / ExOR / multirate-anypath comparison
// (declared in anypath/analysis.h, dispatched here as "anypath").
std::string report_anypath(const Dataset& ds);
std::string report_anypath(const Dataset& ds, AnalysisCache& cache);

// Fig 7.3/7.4: prevalence & persistence by environment.
std::string report_mobility(const Dataset& ds);

// §3.2: client/AP load summary.
std::string report_traffic(const Dataset& ds);

// The full pipeline at the ETX base rate: every analysis family above in
// one pass, with the routing study (the paper's ETX/ExOR core) expanded.
std::string report_etx(const Dataset& ds);

// Dispatch by analysis name as accepted by wmesh_analyze
// (snr|lookup|routing|anypath|hidden|mobility|traffic|etx|all); returns an
// empty string for an unknown name.
std::string run_report(const Dataset& ds, std::string_view what);

}  // namespace wmesh

// Online look-up-table building strategies (paper §4.5, Fig 4.6, Table 4.1).
//
// A deployed link builds its SNR->rate table incrementally from its own
// probe stream.  The paper compares four update policies:
//   First       keep only the first P_opt seen at each SNR   (low updates,
//               small memory)
//   MostRecent  keep only the latest P_opt at each SNR       (high updates,
//               small memory)
//   Subsampled  record every k-th probe set per SNR          (moderate both)
//   All         record every P_opt, predict the mode         (high updates,
//               large memory)
// and measures prediction accuracy as a function of how many probe sets the
// link has seen.  No prediction is attempted when the SNR has no entry yet.
// The runner instruments update and memory costs so Table 4.1's qualitative
// rows can be reported as measured numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/records.h"

namespace wmesh {

enum class UpdateStrategy : std::uint8_t {
  kFirst,
  kMostRecent,
  kSubsampled,
  kAll,
};

const char* to_string(UpdateStrategy s);

struct StrategyParams {
  UpdateStrategy strategy = UpdateStrategy::kAll;
  unsigned subsample_k = 4;     // for kSubsampled: record every k-th set
  std::size_t max_rounds = 40;  // accuracy is tracked for rounds 1..max
};

struct StrategyResult {
  // accuracy[i] = P(prediction == P_opt) for the probe set seen after i
  // prior probe sets on the link (i >= 1); predictions[i] counts how many
  // predictions were attempted at that round.
  std::vector<double> accuracy;
  std::vector<std::size_t> predictions;

  // Cost accounting across all links (Table 4.1).
  std::uint64_t updates = 0;        // table writes performed
  std::uint64_t memory_points = 0;  // data points resident at end of trace
  std::uint64_t probe_sets = 0;     // probe sets processed

  double overall_accuracy = 0.0;
};

// Replays every link's probe stream (in time order) of `standard` under the
// given strategy.
StrategyResult run_strategy(const Dataset& ds, Standard standard,
                            const StrategyParams& params);

}  // namespace wmesh

#include "core/analysis_cache.h"

#include "anypath/anypath.h"
#include "obs/metrics.h"

namespace wmesh {

template <typename Map, typename Key>
std::shared_ptr<typename Map::mapped_type::element_type>
AnalysisCache::slot_for(Map& map, const Key& key, bool* created) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map.find(key);
  if (it != map.end()) {
    *created = false;
    return it->second;
  }
  auto slot = std::make_shared<typename Map::mapped_type::element_type>();
  map.emplace(key, slot);
  *created = true;
  return slot;
}

void AnalysisCache::count_lookup(bool created) {
  // Exactly one requester creates each slot, so hit/miss totals depend
  // only on the request multiset -- deterministic for any thread count.
  if (created) {
    WMESH_COUNTER_INC("cache.misses");
  } else {
    WMESH_COUNTER_INC("cache.hits");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (created) {
    ++stats_.misses;
  } else {
    ++stats_.hits;
  }
}

void AnalysisCache::add_bytes(std::size_t bytes) {
  std::size_t total_bytes, total_entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.bytes += bytes;
    ++stats_.entries;
    total_bytes = stats_.bytes;
    total_entries = stats_.entries;
  }
  WMESH_GAUGE_SET("cache.bytes", total_bytes);
  WMESH_GAUGE_SET("cache.entries", total_entries);
}

const SuccessMatrix& AnalysisCache::success(const NetworkTrace& nt,
                                            RateIndex rate) {
  bool created = false;
  auto slot = slot_for(success_, SuccessKey{&nt, rate}, &created);
  count_lookup(created);
  std::call_once(slot->once, [&] {
    auto value =
        std::make_unique<const SuccessMatrix>(mean_success_matrix(nt, rate));
    slot->bytes = value->ap_count() * value->ap_count() * sizeof(double);
    add_bytes(slot->bytes);
    slot->value = std::move(value);
  });
  return *slot->value;
}

const std::vector<SuccessMatrix>& AnalysisCache::all_success(
    const NetworkTrace& nt) {
  bool created = false;
  auto slot = slot_for(all_, &nt, &created);
  count_lookup(created);
  std::call_once(slot->once, [&] {
    auto value = std::make_unique<const std::vector<SuccessMatrix>>(
        all_success_matrices(nt));
    std::size_t bytes = 0;
    for (const SuccessMatrix& m : *value) {
      bytes += m.ap_count() * m.ap_count() * sizeof(double);
    }
    slot->bytes = bytes;
    add_bytes(bytes);
    slot->value = std::move(value);
  });
  return *slot->value;
}

const EtxGraph& AnalysisCache::etx_graph(const NetworkTrace& nt,
                                         RateIndex rate, EtxVariant variant,
                                         double min_delivery) {
  bool created = false;
  auto slot = slot_for(
      graphs_,
      GraphKey{&nt, rate, static_cast<std::uint8_t>(variant), min_delivery},
      &created);
  count_lookup(created);
  std::call_once(slot->once, [&] {
    auto value = std::make_unique<const EtxGraph>(success(nt, rate), variant,
                                                  min_delivery);
    slot->bytes = value->approx_bytes();
    add_bytes(slot->bytes);
    slot->value = std::move(value);
  });
  return *slot->value;
}

const anypath::AnypathGraph& AnalysisCache::anypath_graph(
    const NetworkTrace& nt, EtxVariant ack) {
  bool created = false;
  auto slot = slot_for(
      anypath_, AnypathKey{&nt, static_cast<std::uint8_t>(ack)}, &created);
  count_lookup(created);
  std::call_once(slot->once, [&] {
    // all_success() is served from this cache, so the graph's matrix
    // reference stays valid exactly as long as this slot does (both are
    // dropped by the same invalidate()/clear()).
    auto value = std::make_unique<const anypath::AnypathGraph>(
        all_success(nt), nt.info.standard, ack);
    slot->bytes = value->approx_bytes();
    add_bytes(slot->bytes);
    slot->value = std::move(value);
  });
  return *slot->value;
}

AnalysisCache::Evicted AnalysisCache::invalidate(const NetworkTrace* nt) {
  Evicted ev;
  std::size_t total_bytes, total_entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto drop = [&](auto& map, auto key_matches) {
      for (auto it = map.begin(); it != map.end();) {
        if (key_matches(it->first)) {
          ++ev.entries;
          // Uncomputed slots (created, call_once pending) were never
          // counted by add_bytes; only refund what was charged.
          if (it->second->value) {
            ++ev.computed;
            ev.bytes += it->second->bytes;
            stats_.bytes -= it->second->bytes;
            --stats_.entries;
          }
          it = map.erase(it);
        } else {
          ++it;
        }
      }
    };
    drop(success_, [nt](const SuccessKey& k) { return k.first == nt; });
    drop(all_, [nt](const NetworkTrace* k) { return k == nt; });
    drop(graphs_, [nt](const GraphKey& k) { return std::get<0>(k) == nt; });
    drop(anypath_, [nt](const AnypathKey& k) { return k.first == nt; });
    total_bytes = stats_.bytes;
    total_entries = stats_.entries;
  }
  WMESH_GAUGE_SET("cache.bytes", total_bytes);
  WMESH_GAUGE_SET("cache.entries", total_entries);
  if (ev.entries > 0) WMESH_COUNTER_ADD("cache.invalidations", ev.entries);
  return ev;
}

AnalysisCache::Stats AnalysisCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AnalysisCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  success_.clear();
  all_.clear();
  graphs_.clear();
  anypath_.clear();
  stats_ = Stats{};
}

}  // namespace wmesh

// Packet-level validation of the §5 routing analysis.
//
// exor_costs_to() computes the *expected* transmissions of an idealized
// opportunistic protocol in closed form.  This module complements it with a
// Monte-Carlo packet simulator for both protocols:
//
//   * ETX single path -- the packet walks the Dijkstra shortest path; each
//     hop retransmits until delivered (ETX1's perfect-ACK assumption) or,
//     under ETX2, until a data+ACK exchange succeeds.
//   * idealized ExOR -- every transmission is a broadcast; among the
//     candidates closer to the destination (by the ETX field) that received
//     it, the closest becomes the new holder.
//
// Agreement between the simulated transmission counts and the closed-form
// costs is asserted by tests/test_exor_sim.cc -- the strongest check we
// have that the §5 numbers mean what the paper says they mean.
#pragma once

#include "core/etx.h"
#include "util/rng.h"

namespace wmesh {

struct PacketSimResult {
  std::size_t packets = 0;
  std::size_t delivered = 0;
  double mean_transmissions = 0.0;  // over delivered packets
  double delivery_fraction = 0.0;
};

struct PacketSimParams {
  std::size_t packets = 2000;
  // Per-packet transmission budget; packets exceeding it count as lost
  // (guards pathological topologies).
  std::size_t max_transmissions = 10000;
};

// Single-path routing along `graph`'s shortest path from src to dst.
// Under ETX2 each hop needs both the data frame (forward success rate) and
// the ACK (reverse success rate) to get through; under ETX1 the ACK is
// free.
PacketSimResult simulate_etx_path(const SuccessMatrix& success,
                                  const EtxGraph& graph, ApId src, ApId dst,
                                  const PacketSimParams& params, Rng& rng);

// Idealized opportunistic routing: broadcast, closest receiving candidate
// forwards.  `etx_to_dst` must be the ETX distance field toward dst from
// the same variant used for candidacy.
PacketSimResult simulate_exor(const SuccessMatrix& success,
                              const std::vector<double>& etx_to_dst,
                              ApId src, ApId dst,
                              const PacketSimParams& params, Rng& rng);

}  // namespace wmesh

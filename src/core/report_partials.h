// Mergeable per-shard partials of every report section -- the layer that
// makes out-of-core fleet analysis byte-identical to the monolithic path.
//
// Every report section in core/report.cc decomposes into
//     collect (Dataset -> plain-data partial)   [parallel, per network]
//     merge   (partial ++ partial)              [serial, shard order]
//     render  (partial -> exact report text)    [serial]
// and the monolithic report_X(ds) is literally render(collect(ds)), so the
// fleet path -- collect per shard, merge in shard order, render once --
// produces the same bytes by construction:
//   * every per-network quantity (SNR sigmas, routing gains, hop counts,
//     hidden fractions, anypath studies, mobility sessions) is kept as an
//     ordered concatenation, and concatenation associates exactly;
//   * counts are integer sums, associative too;
//   * traffic's per-client/AP vectors are sorted by (network id, key), so
//     per-shard vectors over ascending disjoint id ranges (the manifest
//     invariant store/fleet.h enforces) concatenate into the global order;
//   * the one non-associative family -- anypath's floating-point cost sums
//     -- is kept per network and folded serially at render time (see
//     anypath/analysis.h).
// The only cross-shard dependency is the *global*-scope lookup table, which
// needs every network's observations before any can be evaluated; the
// fleet driver builds it in a first streaming pass (integer cell merges,
// order-independent) and passes it to collect.  The network/ap/link scopes
// key their cells by network id, so a shard-local table answers exactly
// like the fleet-wide one and no second pass is needed for them.
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "anypath/analysis.h"
#include "core/hidden.h"
#include "core/lookup_table.h"
#include "core/mobility.h"
#include "core/snr_stats.h"
#include "core/traffic.h"
#include "trace/records.h"

namespace wmesh {

class AnalysisCache;

// Report sections as a bitmask, so the fleet driver collects only what the
// requested analysis renders.
enum : unsigned {
  kSectionSnr = 1u << 0,
  kSectionLookup = 1u << 1,
  kSectionRouting = 1u << 2,
  kSectionPaths = 1u << 3,
  kSectionAnypath = 1u << 4,
  kSectionHidden = 1u << 5,
  kSectionMobility = 1u << 6,
  kSectionTraffic = 1u << 7,
  kSectionAll = (1u << 8) - 1,
};

// The sections an analysis name renders ("etx"/"all" -> kSectionAll);
// 0 for an unknown name.
unsigned report_sections(std::string_view what);

// The fleet-wide global-scope lookup tables (one per standard), built by
// the driver's first pass and consumed by collect_report's lookup section.
struct GlobalLookupTables {
  SnrLookupTable bg{Standard::kBg, TableScope::kGlobal};
  SnrLookupTable n{Standard::kN, TableScope::kGlobal};

  // Folds `ds`'s global-scope observations in (integer cell sums:
  // order-independent, so shard order does not matter).
  void add(const Dataset& ds);
};

struct ReportPartials {
  unsigned sections = 0;  // which members below were collected

  std::array<SnrDeviations, 2> snr;  // per standard (b/g, n)

  // lookup[standard][scope], scope in TableScope order.
  std::array<std::array<TableEvalPartial, 4>, 2> lookup;

  struct RoutingGains {
    std::vector<double> imps;
    std::size_t none = 0;
  };
  std::array<RoutingGains, 2> routing;  // per ETX variant

  std::vector<double> path_hops;

  std::vector<AnypathStudy> anypath;  // one per qualifying network

  std::vector<HiddenTripleStats> hidden;  // one per probed b/g rate

  std::array<MobilityStats, 2> mobility;  // indoor, outdoor

  TrafficStats traffic;  // unfinalized (top decile computed at render)
};

// Collects the requested sections over one Dataset (a shard, or the whole
// snapshot).  `global` supplies the global-scope lookup tables; pass
// nullptr to build them from `ds` itself (the monolithic path).  `cache`
// memoizes success matrices and graphs across sections exactly as
// report_etx always did.
ReportPartials collect_report(const Dataset& ds, unsigned sections,
                              const GlobalLookupTables* global,
                              AnalysisCache& cache);

// Folds `next` into `acc` (shard order).  Both must cover the same
// sections.
void merge_report(ReportPartials& acc, ReportPartials&& next);

// The exact text run_report(ds, what) prints, from merged partials.  The
// partials must cover at least report_sections(what).
std::string render_report(const ReportPartials& p, std::string_view what);

}  // namespace wmesh

// Per-network memoization of analysis intermediates.
//
// The paper pipeline recomputes the same intermediates from several
// analyses: `report_routing` needs the rate-0 success matrix of every b/g
// network once per ETX variant, `report_path_lengths` rebuilds it again
// plus another ETX1 graph, and `report_hidden` rebuilds per-rate matrices
// the range study also wants.  An AnalysisCache memoizes
//   * mean_success_matrix(network, rate),
//   * all_success_matrices(network),
//   * EtxGraph instances keyed by (network, rate, variant, min_delivery), and
//   * anypath::AnypathGraph instances keyed by (network, ack model)
// so each is computed exactly once per cache lifetime.
//
// Keying & invalidation: networks are keyed by NetworkTrace address, so a
// cache is tied to one loaded Dataset -- create the cache after the
// dataset, drop (or clear()) it before the dataset is mutated or freed.
// Entries are immutable once computed and never evicted; returned
// references stay valid until clear()/destruction.  Do not call clear()
// concurrently with readers.
//
// Thread safety: safe for concurrent use from wmesh::par shards.  Each key
// gets a slot under the cache mutex (first requester counts the miss,
// everyone else a hit -- totals are deterministic for any thread count);
// the compute itself runs outside the mutex under the slot's once_flag, so
// distinct keys never serialize each other and a key is computed exactly
// once.
//
// Observability: `cache.hits` / `cache.misses` counters, and
// `cache.bytes` / `cache.entries` gauges tracking this cache's resident
// payload (last-updated cache wins the gauge).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "core/etx.h"

namespace wmesh {

namespace anypath {
class AnypathGraph;
}  // namespace anypath

class AnalysisCache {
 public:
  AnalysisCache() = default;
  AnalysisCache(const AnalysisCache&) = delete;
  AnalysisCache& operator=(const AnalysisCache&) = delete;

  // Memoized mean_success_matrix(nt, rate).
  const SuccessMatrix& success(const NetworkTrace& nt, RateIndex rate);

  // Memoized all_success_matrices(nt).
  const std::vector<SuccessMatrix>& all_success(const NetworkTrace& nt);

  // Memoized EtxGraph over success(nt, rate).
  const EtxGraph& etx_graph(const NetworkTrace& nt, RateIndex rate,
                            EtxVariant variant, double min_delivery);

  // Memoized multirate anypath hyperlink graph over all_success(nt) under
  // one ACK model.  The graph references the all_success entry (it does not
  // copy the matrices); both entries are keyed by `nt` and die together
  // under invalidate()/clear(), so the reference cannot dangle.
  const anypath::AnypathGraph& anypath_graph(const NetworkTrace& nt,
                                             EtxVariant ack);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t bytes = 0;    // approximate resident payload
    std::size_t entries = 0;  // computed slots
  };
  Stats stats() const;

  // What one invalidate() call dropped, so callers (the serve window
  // advance, the fleet shard-drop path and their tests) can assert that
  // eviction actually happened and account for the reclaimed payload.
  struct Evicted {
    std::size_t entries = 0;   // slots dropped, computed or still pending
    std::size_t computed = 0;  // slots that held a value (bytes refunded)
    std::size_t bytes = 0;     // payload bytes refunded
  };

  // Drops every entry keyed by `nt` (success matrices, all-rate vectors and
  // ETX graphs alike) and reports what died; byte/entry stats and the
  // cache.* gauges shrink accordingly.  This is the streaming hook: when a
  // live window advances for one network, wmesh_serve invalidates just
  // that network and every other network's entries stay warm -- and the
  // fleet analyzer evicts a whole shard's entries before dropping its
  // Dataset.  Like clear(), must not race readers of the invalidated
  // network -- callers serialize window advances against queries.
  Evicted invalidate(const NetworkTrace* nt);

  // Drops every entry (references die); stats reset to zero.
  void clear();

 private:
  // A slot is created under mu_ on first request and filled exactly once,
  // outside mu_, under its own once_flag.
  template <typename T>
  struct Slot {
    std::once_flag once;
    std::unique_ptr<const T> value;
    std::size_t bytes = 0;  // payload estimate, refunded on invalidate()
  };

  // Returns the slot for `key`, creating it if needed; sets `created`.
  template <typename Map, typename Key>
  std::shared_ptr<typename Map::mapped_type::element_type> slot_for(
      Map& map, const Key& key, bool* created);

  void count_lookup(bool created);
  void add_bytes(std::size_t bytes);

  using SuccessKey = std::pair<const NetworkTrace*, RateIndex>;
  using GraphKey =
      std::tuple<const NetworkTrace*, RateIndex, std::uint8_t, double>;
  using AnypathKey = std::pair<const NetworkTrace*, std::uint8_t>;

  mutable std::mutex mu_;
  Stats stats_;
  std::map<SuccessKey, std::shared_ptr<Slot<SuccessMatrix>>> success_;
  std::map<const NetworkTrace*, std::shared_ptr<Slot<std::vector<SuccessMatrix>>>>
      all_;
  std::map<GraphKey, std::shared_ptr<Slot<EtxGraph>>> graphs_;
  std::map<AnypathKey, std::shared_ptr<Slot<anypath::AnypathGraph>>> anypath_;
};

}  // namespace wmesh

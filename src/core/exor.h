// Idealized opportunistic routing (paper §5).
//
// Models an overhead-free ExOR/MORE: the sender broadcasts, and among the
// receivers that are closer to the destination (under the ETX metric) the
// closest one forwards.  For source s and destination d with candidate set
// C = { n : ETX(n->d) < ETX(s->d), p(s->n) > 0 }, ordered by increasing
// ETX-to-d,
//
//     r(c_k)   = p(s->c_k) * prod_{j<k} (1 - p(s->c_j))
//     r(none)  = prod_{c in C} (1 - p(s->c))
//     ExOR(s->d) = (1 + sum_k r(c_k) * ExOR(c_k->d)) / (1 - r(none))
//
// which the paper's §5.1 formula expresses with the "1" accounting for the
// broadcast itself and the denominator for the chance the packet never
// leaves s.  Because candidates strictly decrease the ETX distance, the
// recursion is evaluated bottom-up in one sweep per destination.
//
// The candidate scan is sparse: the non-zero-delivery links are packed
// into bitset rows once per matrix, an "eligible" bitset accumulates the
// already-finalized closer nodes as the sweep walks the ETX order, and
// each node's candidates are the AND of the two -- visited in ascending
// node order, exactly like the dense scan, so the recursion's float
// arithmetic is bit-identical.
//
// The improvement of opportunistic routing over ETX routing for a pair is
//     (ETX_cost - ExOR_cost) / ETX_cost,
// i.e. an improvement of x means ETX needs (x*100)% more transmissions.
#pragma once

#include <vector>

#include "core/etx.h"
#include "util/bitrows.h"

namespace wmesh {

class AnalysisCache;

// Per source-destination pair result at one bit rate.
struct PairGain {
  ApId src = 0;
  ApId dst = 0;
  double etx_cost = 0.0;
  double exor_cost = 0.0;
  int hops = 0;  // hop count of the ETX shortest path

  double improvement() const noexcept {
    if (etx_cost <= 0.0) return 0.0;
    return (etx_cost - exor_cost) / etx_cost;
  }
};

// Bitset rows of the strictly positive entries of `success` (diagonal
// clear): row s bit v set iff p(s->v) > 0.  Built once per matrix and
// shared by every per-destination ExOR sweep.
util::BitRows nonzero_links(const SuccessMatrix& success);

// ExOR costs to destination `dst` for every node, given the per-link
// success matrix and the ETX-to-dst distance field of the same variant.
// Entries are kInfCost where dst is unreachable.  The three-argument form
// takes the precomputed nonzero_links(success) so callers evaluating many
// destinations build it once.
std::vector<double> exor_costs_to(const SuccessMatrix& success,
                                  const std::vector<double>& etx_to_dst);
std::vector<double> exor_costs_to(const SuccessMatrix& success,
                                  const std::vector<double>& etx_to_dst,
                                  const util::BitRows& nonzero);

// Dense-scan reference (the pre-bitset candidate loop), kept for the
// kernel-equivalence wall in tests/test_kernels.cc.
std::vector<double> exor_costs_to_reference(
    const SuccessMatrix& success, const std::vector<double>& etx_to_dst);

// Links below this delivery rate are not usable by ETX routing (real ETX
// implementations ignore links they barely hear; the paper's own neighbor
// threshold in §6 is the same 10%).  Opportunistic *receptions* still use
// every link with non-zero delivery -- that is the point of ExOR.
inline constexpr double kEtxMinDelivery = 0.10;

// All reachable source-destination pairs of one network at one rate.
std::vector<PairGain> opportunistic_gains(const SuccessMatrix& success,
                                          EtxVariant variant,
                                          double min_delivery = kEtxMinDelivery);
// As above, with the success matrix and EtxGraph served from (and memoized
// in) `cache` -- analyses over the same (network, rate, variant) share one
// graph build instead of each constructing their own.
std::vector<PairGain> opportunistic_gains(AnalysisCache& cache,
                                          const NetworkTrace& nt,
                                          RateIndex rate, EtxVariant variant,
                                          double min_delivery = kEtxMinDelivery);

// Fig 5.2: link asymmetry samples -- p(a->b)/p(b->a) for every ordered pair
// with both directions alive, in a-major order.
std::vector<double> link_asymmetries(const SuccessMatrix& success);

// Fig 5.3: ETX1 shortest-path hop counts for all reachable pairs.
std::vector<int> path_lengths(const SuccessMatrix& success,
                              double min_delivery = kEtxMinDelivery);
std::vector<int> path_lengths(AnalysisCache& cache, const NetworkTrace& nt,
                              RateIndex rate,
                              double min_delivery = kEtxMinDelivery);

}  // namespace wmesh

// SNR -> bit-rate look-up tables at four training scopes (paper §4.1-4.3).
//
// The paper's central §4 experiment: build a table mapping (rounded) SNR to
// the bit rate that was most frequently optimal, at one of four scopes --
//   global   one table for everything (base case)
//   network  one table per network
//   ap       one table per sending AP
//   link     one table per directed link
// -- then ask (a) how many distinct rates per SNR cell are needed to cover
// the optimal rate p% of the time (Figs 4.2/4.3), and (b) how much
// throughput the single most-frequent choice loses versus the per-set
// optimum (Fig 4.4).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "trace/records.h"

namespace wmesh {

enum class TableScope : std::uint8_t { kGlobal, kNetwork, kAp, kLink };

const char* to_string(TableScope scope);

// A frequency table of optimal rates, keyed by (scope instance, SNR dB).
class SnrLookupTable {
 public:
  explicit SnrLookupTable(Standard standard, TableScope scope)
      : standard_(standard), scope_(scope), n_rates_(rate_count(standard)) {}

  Standard standard() const noexcept { return standard_; }
  TableScope scope() const noexcept { return scope_; }

  // Records that a probe set with rounded SNR `snr` in scope instance `key`
  // had optimal rate `rate`.
  void observe(std::uint64_t key, int snr, RateIndex rate);

  // The most frequently optimal rate for (key, snr); -1 when never seen.
  int choose(std::uint64_t key, int snr) const;

  // Smallest number of distinct rates whose cumulative optimal-frequency
  // reaches `percentile` (in (0,1]) for cell (key, snr); 0 when never seen.
  int rates_needed(std::uint64_t key, int snr, double percentile) const;

  // Total observations in cell (key, snr).
  std::size_t cell_count(std::uint64_t key, int snr) const;

  // All populated (key, snr) cells.
  struct Cell {
    std::uint64_t key;
    int snr;
    std::size_t count;
  };
  std::vector<Cell> cells() const;

  // Adds every cell of `other` (same standard and scope) into this table,
  // summing per-rate counts.  Cell contents are integer sums, so a table
  // merged from per-network partials is identical regardless of merge
  // order -- this is what makes the parallel build deterministic.
  void merge(const SnrLookupTable& other);

  // The scope key of a probe set under this table's scope.
  static std::uint64_t scope_key(TableScope scope, std::uint32_t network_id,
                                 ApId from, ApId to) noexcept;

 private:
  using Counts = std::vector<std::uint32_t>;  // one per rate
  Standard standard_;
  TableScope scope_;
  std::size_t n_rates_;
  std::map<std::pair<std::uint64_t, int>, Counts> cells_;
};

// Builds the table of `scope` from every probe set of `standard` in `ds`.
SnrLookupTable build_lookup_table(const Dataset& ds, Standard standard,
                                  TableScope scope);

// Figs 4.2/4.3: for each SNR, the number of unique rates needed to reach
// `percentile`, aggregated across all scope instances.  The aggregate is the
// observation-weighted mean over cells (and the max, for the pessimist).
struct RatesNeededCurve {
  std::vector<int> snr;        // populated SNR values, ascending
  std::vector<double> mean_rates;
  std::vector<int> max_rates;
};
RatesNeededCurve rates_needed_curve(const SnrLookupTable& table,
                                    double percentile);

// Fig 4.4: per probe set, the throughput of its optimal rate minus the
// throughput of the table's choice (>= 0 by construction of the optimum;
// when the table's choice has no entry in the set the difference counts the
// full optimal throughput).  Also reports the fraction of sets where the
// table choice was exactly optimal.
struct TableErrorResult {
  std::vector<double> throughput_diff_mbps;  // one per evaluated probe set
  double exact_fraction = 0.0;
};
TableErrorResult lookup_table_errors(const Dataset& ds, Standard standard,
                                     TableScope scope);

// The mergeable half of lookup_table_errors: evaluates `ds` against a
// prebuilt `table` (which must have the same standard and scope).  Diffs
// concatenate in network order and `exact` is an integer sum, so partials
// evaluated per shard against a fleet-wide (or, for the network/ap/link
// scopes, shard-local -- scope keys embed the network id, so the cells a
// shard queries are the same either way) table concatenate into exactly the
// monolithic evaluation.
struct TableEvalPartial {
  std::vector<double> diffs;  // optimal minus table-choice throughput
  std::size_t exact = 0;      // sets where the table choice was optimal
};
TableEvalPartial eval_lookup_table(const Dataset& ds, Standard standard,
                                   TableScope scope,
                                   const SnrLookupTable& table);

}  // namespace wmesh

#include "core/etx.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "obs/metrics.h"
#include "obs/span.h"
#include "par/thread_pool.h"

namespace wmesh {
namespace {

// Per-thread scratch arena for Dijkstra working storage.  The heap buffer
// is reused across every run on the thread (wmesh::par workers live for
// the process), so steady-state runs allocate nothing beyond what the
// caller asked for.
struct DijkstraScratch {
  std::vector<std::pair<double, std::size_t>> heap;
};

DijkstraScratch& dijkstra_scratch() {
  thread_local DijkstraScratch scratch;
  return scratch;
}

}  // namespace

const char* to_string(EtxVariant v) {
  return v == EtxVariant::kEtx1 ? "ETX1" : "ETX2";
}

double etx_link_cost(double p_fwd, double p_rev, EtxVariant variant,
                     double min_delivery) noexcept {
  if (p_fwd <= min_delivery) return kInfCost;
  if (variant == EtxVariant::kEtx1) return 1.0 / p_fwd;
  if (p_rev <= min_delivery) return kInfCost;
  return 1.0 / (p_fwd * p_rev);
}

EtxGraph::EtxGraph(const SuccessMatrix& success, EtxVariant variant,
                   double min_delivery)
    : n_(success.ap_count()), variant_(variant), cost_(n_ * n_, kInfCost) {
  // Each iteration fills one disjoint row of the cost matrix; grain keeps
  // shard dispatch amortized over several rows on the big (200+ AP)
  // networks while staying deterministic (boundaries depend on n_ only).
  par::parallel_for(
      n_,
      [&](std::size_t f) {
        for (std::size_t t = 0; t < n_; ++t) {
          if (f == t) continue;
          cost_[f * n_ + t] = etx_link_cost(
              success.at(static_cast<ApId>(f), static_cast<ApId>(t)),
              success.at(static_cast<ApId>(t), static_cast<ApId>(f)), variant,
              min_delivery);
        }
      },
      /*grain=*/16);
  build_csr();
  WMESH_COUNTER_INC("etx.graphs_built");
  WMESH_COUNTER_ADD("etx.csr_edges", fwd_to_.size());
}

void EtxGraph::build_csr() {
  // Counting pass: out-degree into fwd_off_[f+1], in-degree into
  // rev_off_[t+1], then prefix sums turn the counts into offsets.
  fwd_off_.assign(n_ + 1, 0);
  rev_off_.assign(n_ + 1, 0);
  std::size_t edges = 0;
  for (std::size_t f = 0; f < n_; ++f) {
    for (std::size_t t = 0; t < n_; ++t) {
      if (cost_[f * n_ + t] == kInfCost) continue;
      ++fwd_off_[f + 1];
      ++rev_off_[t + 1];
      ++edges;
    }
  }
  for (std::size_t i = 0; i < n_; ++i) {
    fwd_off_[i + 1] += fwd_off_[i];
    rev_off_[i + 1] += rev_off_[i];
  }
  fwd_to_.resize(edges);
  fwd_w_.resize(edges);
  rev_to_.resize(edges);
  rev_w_.resize(edges);
  // Fill pass in (f, t) row-major order: forward rows come out in
  // ascending t, reverse rows in ascending f -- the dense scan's
  // relaxation order.
  std::vector<std::uint32_t> fcur(fwd_off_.begin(), fwd_off_.end() - 1);
  std::vector<std::uint32_t> rcur(rev_off_.begin(), rev_off_.end() - 1);
  for (std::size_t f = 0; f < n_; ++f) {
    for (std::size_t t = 0; t < n_; ++t) {
      const double w = cost_[f * n_ + t];
      if (w == kInfCost) continue;
      fwd_to_[fcur[f]] = static_cast<std::uint32_t>(t);
      fwd_w_[fcur[f]++] = w;
      rev_to_[rcur[t]] = static_cast<std::uint32_t>(f);
      rev_w_[rcur[t]++] = w;
    }
  }
}

std::size_t EtxGraph::approx_bytes() const noexcept {
  return cost_.size() * sizeof(double) +
         (fwd_off_.size() + rev_off_.size() + fwd_to_.size() +
          rev_to_.size()) *
             sizeof(std::uint32_t) +
         (fwd_w_.size() + rev_w_.size()) * sizeof(double);
}

void EtxGraph::dijkstra_into(ApId origin, bool reversed,
                             std::vector<double>* dist_out,
                             std::vector<int>* parent) const {
  WMESH_SPAN("etx.dijkstra");
  std::vector<double>& dist = *dist_out;
  dist.assign(n_, kInfCost);
  if (parent != nullptr) parent->assign(n_, -1);
  const std::vector<std::uint32_t>& off = reversed ? rev_off_ : fwd_off_;
  const std::vector<std::uint32_t>& to = reversed ? rev_to_ : fwd_to_;
  const std::vector<double>& wt = reversed ? rev_w_ : fwd_w_;
  // Manual binary heap on the scratch arena's buffer; (dist, vertex) pairs
  // under std::greater<> pop in exactly the order the previous
  // std::priority_queue did.
  auto& heap = dijkstra_scratch().heap;
  heap.clear();
  dist[origin] = 0.0;
  heap.emplace_back(0.0, static_cast<std::size_t>(origin));
  // Relaxations accumulate locally; one shared-counter update per run.
  std::uint64_t relaxations = 0;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    const auto [d, u] = heap.back();
    heap.pop_back();
    if (d > dist[u]) continue;
    const std::uint32_t row_end = off[u + 1];
    for (std::uint32_t e = off[u]; e < row_end; ++e) {
      const std::size_t v = to[e];
      const double nd = d + wt[e];
      if (nd < dist[v]) {
        dist[v] = nd;
        if (parent != nullptr) (*parent)[v] = static_cast<int>(u);
        heap.emplace_back(nd, v);
        std::push_heap(heap.begin(), heap.end(), std::greater<>{});
        ++relaxations;
      }
    }
  }
  WMESH_COUNTER_INC("etx.dijkstra_runs");
  WMESH_COUNTER_ADD("etx.relaxations", relaxations);
}

std::vector<double> EtxGraph::dijkstra_reference(
    ApId origin, bool reversed, std::vector<int>* parent) const {
  WMESH_SPAN("etx.dijkstra_dense");
  std::vector<double> dist(n_, kInfCost);
  if (parent != nullptr) parent->assign(n_, -1);
  using Item = std::pair<double, std::size_t>;
  std::vector<Item> heap;
  dist[origin] = 0.0;
  heap.emplace_back(0.0, static_cast<std::size_t>(origin));
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    const auto [d, u] = heap.back();
    heap.pop_back();
    if (d > dist[u]) continue;
    for (std::size_t v = 0; v < n_; ++v) {
      if (v == u) continue;
      const double w = reversed ? cost_[v * n_ + u] : cost_[u * n_ + v];
      if (w == kInfCost) continue;
      const double nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        if (parent != nullptr) (*parent)[v] = static_cast<int>(u);
        heap.emplace_back(nd, v);
        std::push_heap(heap.begin(), heap.end(), std::greater<>{});
      }
    }
  }
  return dist;
}

std::vector<double> EtxGraph::shortest_from(ApId src,
                                            std::vector<int>* parent) const {
  std::vector<double> dist;
  dijkstra_into(src, /*reversed=*/false, &dist, parent);
  return dist;
}

std::vector<double> EtxGraph::shortest_to(ApId dst) const {
  std::vector<double> dist;
  dijkstra_into(dst, /*reversed=*/true, &dist, nullptr);
  return dist;
}

void EtxGraph::shortest_from_into(ApId src, std::vector<double>* dist,
                                  std::vector<int>* parent) const {
  dijkstra_into(src, /*reversed=*/false, dist, parent);
}

void EtxGraph::shortest_to_into(ApId dst, std::vector<double>* dist) const {
  dijkstra_into(dst, /*reversed=*/true, dist, nullptr);
}

std::vector<double> EtxGraph::shortest_from_reference(
    ApId src, std::vector<int>* parent) const {
  return dijkstra_reference(src, /*reversed=*/false, parent);
}

std::vector<double> EtxGraph::shortest_to_reference(ApId dst) const {
  return dijkstra_reference(dst, /*reversed=*/true, nullptr);
}

int EtxGraph::hops(const std::vector<int>& parent, ApId src, ApId dst) {
  if (src == dst) return 0;
  int hops = 0;
  int cur = dst;
  while (cur != -1 && cur != src) {
    cur = parent[static_cast<std::size_t>(cur)];
    ++hops;
    if (hops > static_cast<int>(parent.size())) return -1;  // cycle guard
  }
  return cur == src ? hops : -1;
}

}  // namespace wmesh

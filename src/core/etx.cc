#include "core/etx.h"

#include <queue>

#include "obs/metrics.h"
#include "obs/span.h"
#include "par/thread_pool.h"

namespace wmesh {

const char* to_string(EtxVariant v) {
  return v == EtxVariant::kEtx1 ? "ETX1" : "ETX2";
}

double etx_link_cost(double p_fwd, double p_rev, EtxVariant variant,
                     double min_delivery) noexcept {
  if (p_fwd <= min_delivery) return kInfCost;
  if (variant == EtxVariant::kEtx1) return 1.0 / p_fwd;
  if (p_rev <= min_delivery) return kInfCost;
  return 1.0 / (p_fwd * p_rev);
}

EtxGraph::EtxGraph(const SuccessMatrix& success, EtxVariant variant,
                   double min_delivery)
    : n_(success.ap_count()), variant_(variant), cost_(n_ * n_, kInfCost) {
  // Each iteration fills one disjoint row of the cost matrix; grain keeps
  // shard dispatch amortized over several rows on the big (200+ AP)
  // networks while staying deterministic (boundaries depend on n_ only).
  par::parallel_for(
      n_,
      [&](std::size_t f) {
        for (std::size_t t = 0; t < n_; ++t) {
          if (f == t) continue;
          cost_[f * n_ + t] = etx_link_cost(
              success.at(static_cast<ApId>(f), static_cast<ApId>(t)),
              success.at(static_cast<ApId>(t), static_cast<ApId>(f)), variant,
              min_delivery);
        }
      },
      /*grain=*/16);
  WMESH_COUNTER_INC("etx.graphs_built");
}

std::vector<double> EtxGraph::dijkstra(ApId origin, bool reversed,
                                       std::vector<int>* parent) const {
  WMESH_SPAN("etx.dijkstra");
  std::vector<double> dist(n_, kInfCost);
  if (parent != nullptr) parent->assign(n_, -1);
  using Item = std::pair<double, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[origin] = 0.0;
  pq.emplace(0.0, origin);
  // Relaxations accumulate locally; one shared-counter update per run.
  std::uint64_t relaxations = 0;
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (std::size_t v = 0; v < n_; ++v) {
      if (v == u) continue;
      const double w = reversed ? cost_[v * n_ + u] : cost_[u * n_ + v];
      if (w == kInfCost) continue;
      const double nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        if (parent != nullptr) (*parent)[v] = static_cast<int>(u);
        pq.emplace(nd, v);
        ++relaxations;
      }
    }
  }
  WMESH_COUNTER_INC("etx.dijkstra_runs");
  WMESH_COUNTER_ADD("etx.relaxations", relaxations);
  return dist;
}

std::vector<double> EtxGraph::shortest_from(ApId src,
                                            std::vector<int>* parent) const {
  return dijkstra(src, /*reversed=*/false, parent);
}

std::vector<double> EtxGraph::shortest_to(ApId dst) const {
  return dijkstra(dst, /*reversed=*/true, nullptr);
}

int EtxGraph::hops(const std::vector<int>& parent, ApId src, ApId dst) {
  if (src == dst) return 0;
  int hops = 0;
  int cur = dst;
  while (cur != -1 && cur != src) {
    cur = parent[static_cast<std::size_t>(cur)];
    ++hops;
    if (hops > static_cast<int>(parent.size())) return -1;  // cycle guard
  }
  return cur == src ? hops : -1;
}

}  // namespace wmesh

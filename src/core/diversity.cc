#include "core/diversity.h"

#include <algorithm>
#include <queue>

namespace wmesh {
namespace {

// Node-split max-flow: node v becomes v_in (2v) and v_out (2v+1) joined by
// a capacity-1 arc; a link u->w becomes u_out -> w_in with capacity 1.
// Source uses s_out, sink uses d_in, and the s/d split arcs get capacity
// `cap` so only intermediate nodes constrain the flow.
class UnitFlow {
 public:
  UnitFlow(std::size_t nodes) : n_(2 * nodes), adj_(n_) {}

  void add_edge(int from, int to, int capacity) {
    adj_[static_cast<std::size_t>(from)].push_back(
        {to, static_cast<int>(edges_.size())});
    edges_.push_back(capacity);
    adj_[static_cast<std::size_t>(to)].push_back(
        {from, static_cast<int>(edges_.size())});
    edges_.push_back(0);
  }

  int max_flow(int s, int t, int cap) {
    int flow = 0;
    while (flow < cap && augment(s, t)) ++flow;
    return flow;
  }

 private:
  struct Arc {
    int to;
    int edge;
  };

  bool augment(int s, int t) {
    std::vector<int> parent_edge(n_, -1);
    std::vector<int> parent_node(n_, -1);
    std::queue<int> q;
    q.push(s);
    parent_node[static_cast<std::size_t>(s)] = s;
    while (!q.empty() && parent_node[static_cast<std::size_t>(t)] < 0) {
      const int u = q.front();
      q.pop();
      for (const Arc& a : adj_[static_cast<std::size_t>(u)]) {
        if (edges_[static_cast<std::size_t>(a.edge)] <= 0) continue;
        if (parent_node[static_cast<std::size_t>(a.to)] >= 0) continue;
        parent_node[static_cast<std::size_t>(a.to)] = u;
        parent_edge[static_cast<std::size_t>(a.to)] = a.edge;
        q.push(a.to);
      }
    }
    if (parent_node[static_cast<std::size_t>(t)] < 0) return false;
    for (int v = t; v != s; v = parent_node[static_cast<std::size_t>(v)]) {
      const int e = parent_edge[static_cast<std::size_t>(v)];
      --edges_[static_cast<std::size_t>(e)];
      ++edges_[static_cast<std::size_t>(e ^ 1)];
    }
    return true;
  }

  std::size_t n_;
  std::vector<std::vector<Arc>> adj_;
  std::vector<int> edges_;
};

inline int node_in(ApId v) { return 2 * static_cast<int>(v); }
inline int node_out(ApId v) { return 2 * static_cast<int>(v) + 1; }

}  // namespace

int disjoint_paths(const SuccessMatrix& success, ApId src, ApId dst,
                   double min_delivery, int cap) {
  if (src == dst) return 0;
  const std::size_t n = success.ap_count();
  UnitFlow flow(n);
  for (std::size_t v = 0; v < n; ++v) {
    const int c =
        (v == src || v == dst) ? cap : 1;  // endpoints don't constrain
    flow.add_edge(node_in(static_cast<ApId>(v)),
                  node_out(static_cast<ApId>(v)), c);
  }
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t w = 0; w < n; ++w) {
      if (u == w) continue;
      if (success.at(static_cast<ApId>(u), static_cast<ApId>(w)) >
          min_delivery) {
        flow.add_edge(node_out(static_cast<ApId>(u)),
                      node_in(static_cast<ApId>(w)), 1);
      }
    }
  }
  return flow.max_flow(node_out(src), node_in(dst), cap);
}

std::vector<PairDiversity> all_pair_diversity(const SuccessMatrix& success,
                                              double min_delivery, int cap) {
  const std::size_t n = success.ap_count();
  std::vector<PairDiversity> out;
  out.reserve(n * (n - 1));
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      if (s == d) continue;
      PairDiversity pd;
      pd.src = static_cast<ApId>(s);
      pd.dst = static_cast<ApId>(d);
      pd.paths = disjoint_paths(success, pd.src, pd.dst, min_delivery, cap);
      out.push_back(pd);
    }
  }
  return out;
}

}  // namespace wmesh

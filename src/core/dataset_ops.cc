#include "core/dataset_ops.h"

namespace wmesh {

void for_each_probe_set(
    const Dataset& ds, Standard standard,
    const std::function<void(const NetworkTrace&, const ProbeSet&)>& fn) {
  for (const auto& nt : ds.networks) {
    if (nt.info.standard != standard) continue;
    for (const auto& set : nt.probe_sets) fn(nt, set);
  }
}

std::size_t SuccessMatrix::live_links() const noexcept {
  std::size_t live = 0;
  for (double v : p_) live += (v > 0.0) ? 1 : 0;
  return live;
}

std::vector<SuccessMatrix> all_success_matrices(const NetworkTrace& trace) {
  const std::size_t n_rates = rate_count(trace.info.standard);
  const std::size_t n = trace.ap_count;
  std::vector<SuccessMatrix> out(n_rates, SuccessMatrix(n));

  // Accumulate the mean success per (link, rate) in one pass.
  std::vector<double> sum(n_rates * n * n, 0.0);
  std::vector<std::uint32_t> cnt(n_rates * n * n, 0);
  for (const auto& set : trace.probe_sets) {
    const std::size_t base = static_cast<std::size_t>(set.from) * n + set.to;
    for (const auto& e : set.entries) {
      const std::size_t idx = static_cast<std::size_t>(e.rate) * n * n + base;
      sum[idx] += 1.0 - static_cast<double>(e.loss);
      ++cnt[idx];
    }
  }
  for (std::size_t r = 0; r < n_rates; ++r) {
    for (std::size_t f = 0; f < n; ++f) {
      for (std::size_t t = 0; t < n; ++t) {
        const std::size_t idx = r * n * n + f * n + t;
        if (cnt[idx] > 0) {
          out[r].set(static_cast<ApId>(f), static_cast<ApId>(t),
                     sum[idx] / cnt[idx]);
        }
      }
    }
  }
  return out;
}

SuccessMatrix mean_success_matrix(const NetworkTrace& trace, RateIndex rate) {
  const std::size_t n = trace.ap_count;
  SuccessMatrix out(n);
  std::vector<double> sum(n * n, 0.0);
  std::vector<std::uint32_t> cnt(n * n, 0);
  for (const auto& set : trace.probe_sets) {
    const ProbeEntry* e = set.entry(rate);
    if (e == nullptr) continue;
    const std::size_t idx = static_cast<std::size_t>(set.from) * n + set.to;
    sum[idx] += 1.0 - static_cast<double>(e->loss);
    ++cnt[idx];
  }
  for (std::size_t f = 0; f < n; ++f) {
    for (std::size_t t = 0; t < n; ++t) {
      const std::size_t idx = f * n + t;
      if (cnt[idx] > 0) {
        out.set(static_cast<ApId>(f), static_cast<ApId>(t), sum[idx] / cnt[idx]);
      }
    }
  }
  return out;
}

}  // namespace wmesh

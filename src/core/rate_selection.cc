#include "core/rate_selection.h"

#include <algorithm>
#include <cmath>

#include "core/dataset_ops.h"
#include "phy/error_model.h"

namespace wmesh {

double probe_set_throughput_mbps(const ProbeSet& set, Standard standard,
                                 RateIndex rate) {
  const ProbeEntry* e = set.entry(rate);
  if (e == nullptr) return 0.0;
  const auto rates = probed_rates(standard);
  if (rate >= rates.size()) return 0.0;
  return throughput_from_loss_mbps(rates[rate], e->loss);
}

std::optional<RateIndex> optimal_rate(const ProbeSet& set, Standard standard) {
  const auto rates = probed_rates(standard);
  double best_thr = 0.0;
  int best = -1;
  for (const auto& e : set.entries) {
    if (e.rate >= rates.size()) continue;
    const double thr = throughput_from_loss_mbps(rates[e.rate], e.loss);
    if (thr > best_thr) {
      best_thr = thr;
      best = e.rate;
    }
  }
  if (best < 0) return std::nullopt;
  return static_cast<RateIndex>(best);
}

double optimal_throughput_mbps(const ProbeSet& set, Standard standard) {
  const auto opt = optimal_rate(set, standard);
  if (!opt) return 0.0;
  return probe_set_throughput_mbps(set, standard, *opt);
}

namespace {
constexpr int kSnrLo = -20;
constexpr int kSnrHi = 100;
}  // namespace

EverOptimal ever_optimal_rates(const Dataset& ds, Standard standard) {
  EverOptimal out;
  out.snr_min = kSnrLo;
  out.table.assign(kSnrHi - kSnrLo + 1,
                   std::vector<bool>(rate_count(standard), false));
  for_each_probe_set(ds, standard,
                     [&](const NetworkTrace&, const ProbeSet& set) {
                       if (std::isnan(set.snr_db)) return;
                       const auto opt = optimal_rate(set, standard);
                       if (!opt) return;
                       const int s =
                           std::clamp(snr_key(set.snr_db), kSnrLo, kSnrHi);
                       out.table[static_cast<std::size_t>(s - kSnrLo)][*opt] =
                           true;
                     });
  return out;
}

SnrThroughputSamples snr_throughput_samples(const Dataset& ds,
                                            Standard standard) {
  SnrThroughputSamples out;
  out.snr_min = kSnrLo;
  const std::size_t n_rates = rate_count(standard);
  out.samples.assign(
      n_rates, std::vector<std::vector<double>>(kSnrHi - kSnrLo + 1));
  for_each_probe_set(
      ds, standard, [&](const NetworkTrace&, const ProbeSet& set) {
        if (std::isnan(set.snr_db)) return;
        const int s = std::clamp(snr_key(set.snr_db), kSnrLo, kSnrHi);
        for (const auto& e : set.entries) {
          if (e.rate >= n_rates) continue;
          out.samples[e.rate][static_cast<std::size_t>(s - kSnrLo)].push_back(
              probe_set_throughput_mbps(set, standard, e.rate));
        }
      });
  return out;
}

}  // namespace wmesh

#include "core/exor_sim.h"

#include <algorithm>

#include "obs/metrics.h"

namespace wmesh {
namespace {

void finalize(PacketSimResult& r, double tx_sum) {
  if (r.delivered > 0) {
    r.mean_transmissions = tx_sum / static_cast<double>(r.delivered);
  }
  if (r.packets > 0) {
    r.delivery_fraction =
        static_cast<double>(r.delivered) / static_cast<double>(r.packets);
  }
}

}  // namespace

PacketSimResult simulate_etx_path(const SuccessMatrix& success,
                                  const EtxGraph& graph, ApId src, ApId dst,
                                  const PacketSimParams& params, Rng& rng) {
  PacketSimResult out;
  out.packets = params.packets;

  // Materialize the shortest path once; it is the route a DSDV/ETX mesh
  // would pin for this pair.
  std::vector<int> parent;
  const auto dist = graph.shortest_from(src, &parent);
  if (dist[dst] == kInfCost) return out;
  std::vector<ApId> path;  // dst ... src
  for (int cur = dst; cur != src; cur = parent[static_cast<std::size_t>(cur)]) {
    path.push_back(static_cast<ApId>(cur));
  }
  path.push_back(src);
  std::reverse(path.begin(), path.end());  // src ... dst

  double tx_sum = 0.0;
  for (std::size_t pkt = 0; pkt < params.packets; ++pkt) {
    std::size_t tx = 0;
    bool dead = false;
    for (std::size_t hop = 0; hop + 1 < path.size() && !dead; ++hop) {
      const ApId from = path[hop];
      const ApId to = path[hop + 1];
      const double p_fwd = success.at(from, to);
      const double p_rev = success.at(to, from);
      while (true) {
        if (++tx > params.max_transmissions) {
          dead = true;
          break;
        }
        if (!rng.bernoulli(p_fwd)) continue;  // data lost, retransmit
        if (graph.variant() == EtxVariant::kEtx2 && !rng.bernoulli(p_rev)) {
          continue;  // ACK lost: sender retransmits although data arrived
        }
        break;
      }
    }
    if (!dead) {
      ++out.delivered;
      tx_sum += static_cast<double>(tx);
    }
  }
  finalize(out, tx_sum);
  WMESH_COUNTER_ADD("exor_sim.etx_packets", out.packets);
  WMESH_COUNTER_ADD("exor_sim.etx_delivered", out.delivered);
  WMESH_COUNTER_ADD("exor_sim.transmissions", tx_sum);
  return out;
}

PacketSimResult simulate_exor(const SuccessMatrix& success,
                              const std::vector<double>& etx_to_dst,
                              ApId src, ApId dst,
                              const PacketSimParams& params, Rng& rng) {
  PacketSimResult out;
  out.packets = params.packets;
  const std::size_t n = success.ap_count();
  if (etx_to_dst[src] == kInfCost) return out;

  // Candidate lists per holder, sorted by increasing distance to dst,
  // precomputed once.
  std::vector<std::vector<ApId>> cands(n);
  for (std::size_t s = 0; s < n; ++s) {
    if (etx_to_dst[s] == kInfCost) continue;
    for (std::size_t v = 0; v < n; ++v) {
      if (v == s || etx_to_dst[v] >= etx_to_dst[s]) continue;
      if (success.at(static_cast<ApId>(s), static_cast<ApId>(v)) <= 0.0) {
        continue;
      }
      cands[s].push_back(static_cast<ApId>(v));
    }
    std::sort(cands[s].begin(), cands[s].end(), [&](ApId a, ApId b) {
      return etx_to_dst[a] < etx_to_dst[b];
    });
  }

  double tx_sum = 0.0;
  for (std::size_t pkt = 0; pkt < params.packets; ++pkt) {
    ApId holder = src;
    std::size_t tx = 0;
    bool dead = false;
    while (holder != dst) {
      if (cands[holder].empty() || ++tx > params.max_transmissions) {
        dead = true;
        break;
      }
      // Broadcast: the closest candidate that receives it takes over.
      for (ApId c : cands[holder]) {
        if (rng.bernoulli(success.at(holder, c))) {
          holder = c;
          break;
        }
      }
      // Nobody received: the holder keeps the packet and rebroadcasts.
    }
    if (!dead) {
      ++out.delivered;
      tx_sum += static_cast<double>(tx);
    }
  }
  finalize(out, tx_sum);
  WMESH_COUNTER_ADD("exor_sim.exor_packets", out.packets);
  WMESH_COUNTER_ADD("exor_sim.exor_delivered", out.delivered);
  WMESH_COUNTER_ADD("exor_sim.transmissions", tx_sum);
  return out;
}

}  // namespace wmesh

#include "core/mobility.h"

#include <algorithm>
#include <map>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/stats.h"

namespace wmesh {

std::vector<ClientSession> reconstruct_sessions(
    const std::vector<ClientSample>& samples) {
  std::vector<ClientSession> sessions;
  const ClientSample* prev = nullptr;
  for (const auto& s : samples) {
    const bool new_session = prev == nullptr || s.client != prev->client ||
                             s.bucket > prev->bucket + 1;
    if (new_session) {
      sessions.emplace_back();
      sessions.back().client = s.client;
      sessions.back().start_bucket = s.bucket;
    }
    sessions.back().aps.push_back(s.ap);
    prev = &s;
  }
  return sessions;
}

MobilityStats analyze_mobility(const NetworkTrace& trace,
                               double bucket_minutes) {
  WMESH_SPAN("mobility.analyze");
  MobilityStats out;
  const auto sessions = reconstruct_sessions(trace.client_samples);
  WMESH_COUNTER_ADD("mobility.sessions", sessions.size());
  WMESH_COUNTER_ADD("mobility.samples", trace.client_samples.size());

  // Prevalence is a fraction of the observation window (the 11-hour trace),
  // so short visits yield small values even for single-AP clients -- this is
  // what gives Fig 7.3 its mass below 0.05.
  std::uint32_t horizon_buckets = 0;
  for (const auto& s : trace.client_samples) {
    horizon_buckets = std::max(horizon_buckets, s.bucket + 1);
  }
  const double horizon_min =
      static_cast<double>(horizon_buckets) * bucket_minutes;

  for (const auto& sess : sessions) {
    const double total_min =
        static_cast<double>(sess.aps.size()) * bucket_minutes;
    out.connection_length_min.push_back(total_min);

    // Time per AP and run lengths in one pass.
    std::map<ApId, std::size_t> buckets_at;
    std::vector<double> runs_min;
    std::size_t run_len = 0;
    for (std::size_t i = 0; i < sess.aps.size(); ++i) {
      ++buckets_at[sess.aps[i]];
      ++run_len;
      const bool run_ends =
          i + 1 == sess.aps.size() || sess.aps[i + 1] != sess.aps[i];
      if (run_ends) {
        runs_min.push_back(static_cast<double>(run_len) * bucket_minutes);
        run_len = 0;
      }
    }

    out.aps_visited.push_back(static_cast<int>(buckets_at.size()));
    double max_prev = 0.0;
    for (const auto& [ap, b] : buckets_at) {
      (void)ap;
      const double prev =
          static_cast<double>(b) * bucket_minutes / horizon_min;
      out.prevalence.push_back(prev);
      max_prev = std::max(max_prev, prev);
    }
    for (double r : runs_min) out.persistence_min.push_back(r);
    out.pers_vs_prev.emplace_back(median(runs_min), max_prev);
  }
  return out;
}

MobilityStats analyze_mobility_by_env(const Dataset& ds, Environment env,
                                      double bucket_minutes) {
  MobilityStats out;
  for (const auto& nt : ds.networks) {
    if (nt.info.env != env) continue;
    if (nt.client_samples.empty()) continue;
    merge_mobility(out, analyze_mobility(nt, bucket_minutes));
  }
  return out;
}

void merge_mobility(MobilityStats& into, MobilityStats&& more) {
  auto append = [](auto& dst, auto&& src) {
    dst.insert(dst.end(), std::make_move_iterator(src.begin()),
               std::make_move_iterator(src.end()));
  };
  append(into.aps_visited, std::move(more.aps_visited));
  append(into.connection_length_min, std::move(more.connection_length_min));
  append(into.prevalence, std::move(more.prevalence));
  append(into.persistence_min, std::move(more.persistence_min));
  append(into.pers_vs_prev, std::move(more.pers_vs_prev));
}

}  // namespace wmesh

// Path diversity (paper §5.2.2, the "not pictured" companion to Fig 5.4).
//
// The paper reports that the median opportunistic-routing improvement
// rises with the number of diverse paths between source and destination
// while the maximum improvement falls -- same shape as path length.  The
// standard diversity measure is the number of internally node-disjoint
// paths, computed here as max-flow on the node-split graph (each
// intermediate node gets capacity 1; links with delivery above a floor get
// capacity 1).
#pragma once

#include <vector>

#include "core/dataset_ops.h"

namespace wmesh {

// Number of internally node-disjoint s->d paths using links with delivery
// > min_delivery.  A direct s->d link counts as one path.  Capped at `cap`
// (the interesting range is small; capping bounds the flow iterations).
int disjoint_paths(const SuccessMatrix& success, ApId src, ApId dst,
                   double min_delivery = 0.05, int cap = 8);

// Diversity of every ordered pair of a network (0 when disconnected),
// flattened row-major excluding the diagonal -- companion to
// opportunistic_gains() ordering is NOT guaranteed; use the struct form.
struct PairDiversity {
  ApId src = 0;
  ApId dst = 0;
  int paths = 0;
};
std::vector<PairDiversity> all_pair_diversity(const SuccessMatrix& success,
                                              double min_delivery = 0.05,
                                              int cap = 8);

}  // namespace wmesh

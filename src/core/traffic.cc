#include "core/traffic.h"

#include <algorithm>
#include <map>

namespace wmesh {
namespace {

void finalize_ap_share(TrafficStats& out) {
  if (out.packets_per_ap.empty() || out.total_packets <= 0.0) return;
  std::vector<double> sorted = out.packets_per_ap;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const std::size_t top =
      std::max<std::size_t>(1, sorted.size() / 10);
  double top_sum = 0.0;
  for (std::size_t i = 0; i < top; ++i) top_sum += sorted[i];
  out.top_decile_ap_share = top_sum / out.total_packets;
}

void accumulate(const NetworkTrace& trace,
                std::map<std::uint64_t, double>& by_client,
                std::map<std::uint64_t, double>& by_ap,
                std::map<std::uint64_t, double>& assocs, double& total) {
  const std::uint64_t net = static_cast<std::uint64_t>(trace.info.id) << 32;
  for (const auto& s : trace.client_samples) {
    by_client[net | s.client] += s.data_packets;
    by_ap[net | s.ap] += s.data_packets;
    assocs[net | s.client] += s.assoc_requests;
    total += s.data_packets;
  }
}

TrafficStats from_maps(const std::map<std::uint64_t, double>& by_client,
                       const std::map<std::uint64_t, double>& by_ap,
                       const std::map<std::uint64_t, double>& assocs,
                       double total) {
  TrafficStats out;
  out.total_packets = total;
  out.packets_per_client.reserve(by_client.size());
  for (const auto& [k, v] : by_client) {
    (void)k;
    out.packets_per_client.push_back(v);
  }
  out.packets_per_ap.reserve(by_ap.size());
  for (const auto& [k, v] : by_ap) {
    (void)k;
    out.packets_per_ap.push_back(v);
  }
  out.assocs_per_client.reserve(assocs.size());
  for (const auto& [k, v] : assocs) {
    (void)k;
    out.assocs_per_client.push_back(v);
  }
  return out;
}

}  // namespace

TrafficStats analyze_traffic(const NetworkTrace& trace) {
  std::map<std::uint64_t, double> by_client, by_ap, assocs;
  double total = 0.0;
  accumulate(trace, by_client, by_ap, assocs, total);
  TrafficStats out = from_maps(by_client, by_ap, assocs, total);
  finalize_traffic(out);
  return out;
}

TrafficStats analyze_traffic(const Dataset& ds) {
  TrafficStats out = collect_traffic(ds);
  finalize_traffic(out);
  return out;
}

TrafficStats collect_traffic(const Dataset& ds) {
  std::map<std::uint64_t, double> by_client, by_ap, assocs;
  double total = 0.0;
  for (const auto& nt : ds.networks) {
    accumulate(nt, by_client, by_ap, assocs, total);
  }
  return from_maps(by_client, by_ap, assocs, total);
}

void merge_traffic(TrafficStats& into, TrafficStats&& more) {
  into.packets_per_client.insert(into.packets_per_client.end(),
                                 more.packets_per_client.begin(),
                                 more.packets_per_client.end());
  into.packets_per_ap.insert(into.packets_per_ap.end(),
                             more.packets_per_ap.begin(),
                             more.packets_per_ap.end());
  into.assocs_per_client.insert(into.assocs_per_client.end(),
                                more.assocs_per_client.begin(),
                                more.assocs_per_client.end());
  // Per-sample packet counts are integer-valued doubles, so the sum is
  // exact and independent of the shard grouping.
  into.total_packets += more.total_packets;
}

void finalize_traffic(TrafficStats& stats) { finalize_ap_share(stats); }

}  // namespace wmesh

// Client-traffic characterization (paper §3.2's other columns).
//
// The aggregate client data carries association-request and data-packet
// counters per five-minute sample.  §7 uses only the association pattern;
// this module summarizes the traffic itself -- how load distributes over
// clients and over APs -- the kind of usage characterization the campus
// studies the paper cites (Henderson & Kotz; Schwab & Bunt) report.
#pragma once

#include <vector>

#include "trace/records.h"

namespace wmesh {

struct TrafficStats {
  std::vector<double> packets_per_client;  // total data packets per client
  std::vector<double> packets_per_ap;      // total data packets per AP
  std::vector<double> assocs_per_client;   // association requests per client
  double total_packets = 0.0;
  // Fraction of all packets handled by the busiest 10% of APs -- load skew.
  double top_decile_ap_share = 0.0;
};

TrafficStats analyze_traffic(const NetworkTrace& trace);

// Aggregate over every trace with client data in the dataset.
TrafficStats analyze_traffic(const Dataset& ds);

// Out-of-core decomposition of analyze_traffic(Dataset): collect leaves
// top_decile_ap_share unset, merge concatenates the per-key vectors and
// sums the total, finalize computes the share.  Per-client/AP vectors come
// out sorted by (network id, client/AP id), so partials collected over
// ascending disjoint network-id groups (the fleet shard contract)
// concatenate into exactly the monolithic vectors:
//   analyze_traffic(ds) == finalize(merge(collect(shard_0), ...)).
TrafficStats collect_traffic(const Dataset& ds);
void merge_traffic(TrafficStats& into, TrafficStats&& more);
void finalize_traffic(TrafficStats& stats);

}  // namespace wmesh

#include "core/exor.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"
#include "obs/span.h"
#include "par/thread_pool.h"

namespace wmesh {

std::vector<double> exor_costs_to(const SuccessMatrix& success,
                                  const std::vector<double>& etx_to_dst) {
  WMESH_SPAN("exor.costs");
  const std::size_t n = success.ap_count();
  std::vector<double> exor(n, kInfCost);

  // Evaluate nodes in increasing ETX distance so every candidate (strictly
  // closer) is already final.  The destination itself has distance 0.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return etx_to_dst[a] < etx_to_dst[b];
  });

  struct Candidate {
    std::size_t node;
    double dist;
    double p;
  };
  std::vector<Candidate> cands;

  // The cost recursion visits each node once; candidate scans dominate.
  std::uint64_t iterations = 0;
  std::uint64_t candidate_evals = 0;

  for (const std::size_t s : order) {
    ++iterations;
    if (etx_to_dst[s] == kInfCost) break;  // rest are unreachable too
    if (etx_to_dst[s] == 0.0) {
      exor[s] = 0.0;  // the destination
      continue;
    }
    cands.clear();
    candidate_evals += n - 1;
    for (std::size_t v = 0; v < n; ++v) {
      if (v == s) continue;
      if (etx_to_dst[v] >= etx_to_dst[s]) continue;
      const double p =
          success.at(static_cast<ApId>(s), static_cast<ApId>(v));
      if (p <= 0.0) continue;
      // A node can be closer by ETX yet itself unable to progress (its own
      // ExOR cost is infinite); a real protocol would never pick it as a
      // forwarder, so it is not a candidate.
      if (exor[v] == kInfCost) continue;
      cands.push_back({v, etx_to_dst[v], p});
    }
    if (cands.empty()) continue;  // cannot progress; leave infinite
    std::sort(cands.begin(), cands.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.dist < b.dist;
              });
    double none = 1.0;      // P(no candidate received), running product
    double weighted = 0.0;  // sum r(c_k) * ExOR(c_k)
    for (const Candidate& c : cands) {
      weighted += c.p * none * exor[c.node];
      none *= (1.0 - c.p);
    }
    if (none < 1.0) {
      exor[s] = (1.0 + weighted) / (1.0 - none);
    }
  }
  WMESH_COUNTER_ADD("exor.cost_iterations", iterations);
  WMESH_COUNTER_ADD("exor.candidate_evals", candidate_evals);
  return exor;
}

std::vector<PairGain> opportunistic_gains(const SuccessMatrix& success,
                                          EtxVariant variant,
                                          double min_delivery) {
  WMESH_SPAN("exor.gains");
  const std::size_t n = success.ap_count();
  EtxGraph graph(success, variant, min_delivery);

  // One reverse Dijkstra + ExOR recursion per destination, independent
  // across destinations; shard results concatenate in dst order, matching
  // the serial dst-major pair order byte-for-byte.
  std::vector<PairGain> out = par::parallel_map_reduce(
      n, std::vector<PairGain>{},
      [&](std::size_t dst) {
        std::vector<PairGain> pairs;
        const auto etx_to = graph.shortest_to(static_cast<ApId>(dst));
        const auto exor_to = exor_costs_to(success, etx_to);
        // Hop counts come from the forward shortest-path tree of each
        // source; compute them from the reverse tree instead: run one
        // forward Dijkstra per destination is O(n^2 log n) overall -- fine
        // at our sizes.
        for (std::size_t src = 0; src < n; ++src) {
          if (src == dst) continue;
          if (etx_to[src] == kInfCost || exor_to[src] == kInfCost) continue;
          PairGain g;
          g.src = static_cast<ApId>(src);
          g.dst = static_cast<ApId>(dst);
          g.etx_cost = etx_to[src];
          g.exor_cost = exor_to[src];
          pairs.push_back(g);
        }
        return pairs;
      },
      [](std::vector<PairGain>& acc, std::vector<PairGain>&& v) {
        acc.insert(acc.end(), v.begin(), v.end());
      });

  // Fill hop counts with one forward Dijkstra per source; each iteration
  // writes only its own slot.
  std::vector<std::vector<int>> parents(n);
  par::parallel_for(n, [&](std::size_t src) {
    graph.shortest_from(static_cast<ApId>(src), &parents[src]);
  });
  for (PairGain& g : out) {
    g.hops = EtxGraph::hops(parents[g.src], g.src, g.dst);
  }
  WMESH_COUNTER_ADD("exor.pairs", out.size());
  return out;
}

std::vector<double> link_asymmetries(const SuccessMatrix& success) {
  const std::size_t n = success.ap_count();
  std::vector<double> out;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const double fwd = success.at(static_cast<ApId>(a), static_cast<ApId>(b));
      const double rev = success.at(static_cast<ApId>(b), static_cast<ApId>(a));
      if (fwd <= 0.0 || rev <= 0.0) continue;
      out.push_back(fwd / rev);
    }
  }
  return out;
}

std::vector<int> path_lengths(const SuccessMatrix& success,
                              double min_delivery) {
  WMESH_SPAN("etx.path_lengths");
  const std::size_t n = success.ap_count();
  EtxGraph graph(success, EtxVariant::kEtx1, min_delivery);
  // One forward Dijkstra per source; per-source hop lists concatenate in
  // src order, identical to the serial src-major emission order.
  return par::parallel_map_reduce(
      n, std::vector<int>{},
      [&](std::size_t src) {
        std::vector<int> hops_out;
        std::vector<int> parent;
        const auto dist = graph.shortest_from(static_cast<ApId>(src), &parent);
        for (std::size_t dst = 0; dst < n; ++dst) {
          if (dst == src || dist[dst] == kInfCost) continue;
          const int h = EtxGraph::hops(parent, static_cast<ApId>(src),
                                       static_cast<ApId>(dst));
          if (h > 0) hops_out.push_back(h);
        }
        return hops_out;
      },
      [](std::vector<int>& acc, std::vector<int>&& v) {
        acc.insert(acc.end(), v.begin(), v.end());
      });
}

}  // namespace wmesh

#include "core/exor.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "core/analysis_cache.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "par/thread_pool.h"

namespace wmesh {

util::BitRows nonzero_links(const SuccessMatrix& success) {
  const std::size_t n = success.ap_count();
  util::BitRows rows(n, n);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t v = 0; v < n; ++v) {
      if (v == s) continue;
      if (success.at(static_cast<ApId>(s), static_cast<ApId>(v)) > 0.0) {
        rows.set(s, v);
      }
    }
  }
  return rows;
}

std::vector<double> exor_costs_to(const SuccessMatrix& success,
                                  const std::vector<double>& etx_to_dst,
                                  const util::BitRows& nonzero) {
  WMESH_SPAN("exor.costs");
  const std::size_t n = success.ap_count();
  const std::size_t words = util::BitRows::word_count(n);
  std::vector<double> exor(n, kInfCost);

  // Evaluate nodes in increasing ETX distance so every candidate (strictly
  // closer) is already final.  The destination itself has distance 0.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return etx_to_dst[a] < etx_to_dst[b];
  });

  struct Candidate {
    std::size_t node;
    double dist;
    double p;
  };
  std::vector<Candidate> cands;

  // Nodes already swept whose ETX is strictly below the current node's and
  // whose own ExOR cost is finite -- the only legal forwarders.  Candidates
  // of node s are then (eligible AND nonzero-row(s)), iterated in
  // ascending node order like the dense scan.
  std::vector<std::uint64_t> eligible(words, 0);
  std::size_t flushed = 0;

  // The cost recursion visits each node once; candidate scans dominate.
  std::uint64_t iterations = 0;
  std::uint64_t candidate_evals = 0;

  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::size_t s = order[idx];
    ++iterations;
    if (etx_to_dst[s] == kInfCost) break;  // rest are unreachable too
    if (etx_to_dst[s] == 0.0) {
      exor[s] = 0.0;  // the destination
      continue;
    }
    // Fold into `eligible` every earlier node strictly closer than s;
    // equal-ETX nodes are not candidates of each other, so ties wait.
    while (flushed < idx) {
      const std::size_t u = order[flushed];
      if (!(etx_to_dst[u] < etx_to_dst[s])) break;
      if (exor[u] != kInfCost) {
        eligible[u >> 6] |= std::uint64_t{1} << (u & 63);
      }
      ++flushed;
    }
    cands.clear();
    const std::uint64_t* nz = nonzero.row(s);
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = eligible[w] & nz[w];
      while (bits != 0) {
        const std::size_t v =
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        ++candidate_evals;
        cands.push_back({v, etx_to_dst[v],
                         success.at(static_cast<ApId>(s),
                                    static_cast<ApId>(v))});
      }
    }
    if (cands.empty()) continue;  // cannot progress; leave infinite
    std::sort(cands.begin(), cands.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.dist < b.dist;
              });
    double none = 1.0;      // P(no candidate received), running product
    double weighted = 0.0;  // sum r(c_k) * ExOR(c_k)
    for (const Candidate& c : cands) {
      weighted += c.p * none * exor[c.node];
      none *= (1.0 - c.p);
    }
    if (none < 1.0) {
      exor[s] = (1.0 + weighted) / (1.0 - none);
    }
  }
  WMESH_COUNTER_ADD("exor.cost_iterations", iterations);
  WMESH_COUNTER_ADD("exor.candidate_evals", candidate_evals);
  return exor;
}

std::vector<double> exor_costs_to(const SuccessMatrix& success,
                                  const std::vector<double>& etx_to_dst) {
  return exor_costs_to(success, etx_to_dst, nonzero_links(success));
}

std::vector<double> exor_costs_to_reference(
    const SuccessMatrix& success, const std::vector<double>& etx_to_dst) {
  const std::size_t n = success.ap_count();
  std::vector<double> exor(n, kInfCost);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return etx_to_dst[a] < etx_to_dst[b];
  });
  struct Candidate {
    std::size_t node;
    double dist;
    double p;
  };
  std::vector<Candidate> cands;
  for (const std::size_t s : order) {
    if (etx_to_dst[s] == kInfCost) break;
    if (etx_to_dst[s] == 0.0) {
      exor[s] = 0.0;
      continue;
    }
    cands.clear();
    for (std::size_t v = 0; v < n; ++v) {
      if (v == s) continue;
      if (etx_to_dst[v] >= etx_to_dst[s]) continue;
      const double p = success.at(static_cast<ApId>(s), static_cast<ApId>(v));
      if (p <= 0.0) continue;
      // A node can be closer by ETX yet itself unable to progress (its own
      // ExOR cost is infinite); a real protocol would never pick it as a
      // forwarder, so it is not a candidate.
      if (exor[v] == kInfCost) continue;
      cands.push_back({v, etx_to_dst[v], p});
    }
    if (cands.empty()) continue;
    std::sort(cands.begin(), cands.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.dist < b.dist;
              });
    double none = 1.0;
    double weighted = 0.0;
    for (const Candidate& c : cands) {
      weighted += c.p * none * exor[c.node];
      none *= (1.0 - c.p);
    }
    if (none < 1.0) {
      exor[s] = (1.0 + weighted) / (1.0 - none);
    }
  }
  return exor;
}

namespace {

std::vector<PairGain> opportunistic_gains_impl(const SuccessMatrix& success,
                                               const EtxGraph& graph) {
  WMESH_SPAN("exor.gains");
  const std::size_t n = success.ap_count();
  const util::BitRows nonzero = nonzero_links(success);

  // One reverse Dijkstra + ExOR recursion per destination, independent
  // across destinations; shard results concatenate in dst order, matching
  // the serial dst-major pair order byte-for-byte.
  std::vector<PairGain> out = par::parallel_map_reduce(
      n, std::vector<PairGain>{},
      [&](std::size_t dst) {
        std::vector<PairGain> pairs;
        // Scratch reused across destinations on the same worker thread.
        thread_local std::vector<double> etx_to;
        graph.shortest_to_into(static_cast<ApId>(dst), &etx_to);
        const auto exor_to = exor_costs_to(success, etx_to, nonzero);
        // Hop counts come from the forward shortest-path tree of each
        // source; compute them from the reverse tree instead: run one
        // forward Dijkstra per destination is O(n^2 log n) overall -- fine
        // at our sizes.
        for (std::size_t src = 0; src < n; ++src) {
          if (src == dst) continue;
          if (etx_to[src] == kInfCost || exor_to[src] == kInfCost) continue;
          PairGain g;
          g.src = static_cast<ApId>(src);
          g.dst = static_cast<ApId>(dst);
          g.etx_cost = etx_to[src];
          g.exor_cost = exor_to[src];
          pairs.push_back(g);
        }
        return pairs;
      },
      [](std::vector<PairGain>& acc, std::vector<PairGain>&& v) {
        acc.insert(acc.end(), v.begin(), v.end());
      });

  // Fill hop counts with one forward Dijkstra per source; each iteration
  // writes only its own slot.
  std::vector<std::vector<int>> parents(n);
  par::parallel_for(n, [&](std::size_t src) {
    thread_local std::vector<double> dist;
    graph.shortest_from_into(static_cast<ApId>(src), &dist, &parents[src]);
  });
  for (PairGain& g : out) {
    g.hops = EtxGraph::hops(parents[g.src], g.src, g.dst);
  }
  WMESH_COUNTER_ADD("exor.pairs", out.size());
  return out;
}

std::vector<int> path_lengths_impl(const EtxGraph& graph) {
  WMESH_SPAN("etx.path_lengths");
  const std::size_t n = graph.ap_count();
  // One forward Dijkstra per source; per-source hop lists concatenate in
  // src order, identical to the serial src-major emission order.
  return par::parallel_map_reduce(
      n, std::vector<int>{},
      [&](std::size_t src) {
        std::vector<int> hops_out;
        // Scratch reused across sources on the same worker thread.
        thread_local std::vector<double> dist;
        thread_local std::vector<int> parent;
        graph.shortest_from_into(static_cast<ApId>(src), &dist, &parent);
        for (std::size_t dst = 0; dst < n; ++dst) {
          if (dst == src || dist[dst] == kInfCost) continue;
          const int h = EtxGraph::hops(parent, static_cast<ApId>(src),
                                       static_cast<ApId>(dst));
          if (h > 0) hops_out.push_back(h);
        }
        return hops_out;
      },
      [](std::vector<int>& acc, std::vector<int>&& v) {
        acc.insert(acc.end(), v.begin(), v.end());
      });
}

}  // namespace

std::vector<PairGain> opportunistic_gains(const SuccessMatrix& success,
                                          EtxVariant variant,
                                          double min_delivery) {
  const EtxGraph graph(success, variant, min_delivery);
  return opportunistic_gains_impl(success, graph);
}

std::vector<PairGain> opportunistic_gains(AnalysisCache& cache,
                                          const NetworkTrace& nt,
                                          RateIndex rate, EtxVariant variant,
                                          double min_delivery) {
  const SuccessMatrix& success = cache.success(nt, rate);
  const EtxGraph& graph = cache.etx_graph(nt, rate, variant, min_delivery);
  return opportunistic_gains_impl(success, graph);
}

std::vector<double> link_asymmetries(const SuccessMatrix& success) {
  WMESH_SPAN("exor.asymmetry");
  const std::size_t n = success.ap_count();
  // One row per task; per-row samples concatenate in a-major order,
  // identical to the serial double loop.
  std::vector<double> out = par::parallel_map_reduce(
      n, std::vector<double>{},
      [&](std::size_t a) {
        std::vector<double> row;
        for (std::size_t b = 0; b < n; ++b) {
          if (a == b) continue;
          const double fwd =
              success.at(static_cast<ApId>(a), static_cast<ApId>(b));
          const double rev =
              success.at(static_cast<ApId>(b), static_cast<ApId>(a));
          if (fwd <= 0.0 || rev <= 0.0) continue;
          row.push_back(fwd / rev);
        }
        return row;
      },
      [](std::vector<double>& acc, std::vector<double>&& v) {
        acc.insert(acc.end(), v.begin(), v.end());
      },
      /*grain=*/16);
  WMESH_COUNTER_ADD("exor.asymmetry_samples", out.size());
  return out;
}

std::vector<int> path_lengths(const SuccessMatrix& success,
                              double min_delivery) {
  const EtxGraph graph(success, EtxVariant::kEtx1, min_delivery);
  return path_lengths_impl(graph);
}

std::vector<int> path_lengths(AnalysisCache& cache, const NetworkTrace& nt,
                              RateIndex rate, double min_delivery) {
  const EtxGraph& graph =
      cache.etx_graph(nt, rate, EtxVariant::kEtx1, min_delivery);
  return path_lengths_impl(graph);
}

}  // namespace wmesh

#include "core/snr_stats.h"

#include <cmath>
#include <map>

#include "core/dataset_ops.h"
#include "util/stats.h"

namespace wmesh {

SnrDeviations snr_deviations(const Dataset& ds, Standard standard) {
  SnrDeviations out;
  for (const auto& nt : ds.networks) {
    if (nt.info.standard != standard) continue;
    RunningStats network_stats;
    std::map<std::uint32_t, RunningStats> link_stats;
    for (const auto& set : nt.probe_sets) {
      RunningStats within;
      for (const auto& e : set.entries) {
        if (!std::isnan(e.snr_db)) within.add(e.snr_db);
      }
      if (within.count() >= 2) out.per_probe_set.push_back(within.stddev());
      if (!std::isnan(set.snr_db)) {
        network_stats.add(set.snr_db);
        link_stats[link_key({set.from, set.to})].add(set.snr_db);
      }
    }
    for (const auto& [key, stats] : link_stats) {
      (void)key;
      if (stats.count() >= 2) out.per_link.push_back(stats.stddev());
    }
    if (network_stats.count() >= 2) {
      out.per_network.push_back(network_stats.stddev());
    }
  }
  return out;
}

}  // namespace wmesh

// Optimal-bit-rate extraction (paper §4, preliminaries).
//
// For a probe set P the paper defines
//     P_opt = argmax_b { b * (1 - b_loss) | b in P_rates },
// i.e. the probed rate with the highest throughput, where throughput is the
// paper's §3.1.2 definition (bit rate x packet success rate).  These
// helpers compute P_opt and the per-rate throughputs that Figs 4.1 and 4.5
// are built from.
#pragma once

#include <optional>
#include <vector>

#include "trace/records.h"

namespace wmesh {

// Throughput (Mbit/s) of sending at probed rate `rate` according to probe
// set `set`.  Returns 0 when the set has no entry for that rate or the
// entry saw total loss.
double probe_set_throughput_mbps(const ProbeSet& set, Standard standard,
                                 RateIndex rate);

// P_opt: the probed rate maximizing throughput in `set`.  Ties break toward
// the lower rate index (i.e. the more robust rate).  Empty when no rate
// delivered anything.
std::optional<RateIndex> optimal_rate(const ProbeSet& set, Standard standard);

// Throughput of P_opt itself; 0 when no rate delivered anything.
double optimal_throughput_mbps(const ProbeSet& set, Standard standard);

// Fig 4.1: for each integer SNR, the set of rates that were ever optimal.
// ever_optimal[snr][rate] == true when some probe set with that (rounded)
// SNR had that optimal rate.
struct EverOptimal {
  int snr_min = 0;
  // rows indexed by (snr - snr_min), columns by RateIndex.
  std::vector<std::vector<bool>> table;
};
EverOptimal ever_optimal_rates(const Dataset& ds, Standard standard);

// Fig 4.5: throughput samples grouped by (rate, integer SNR), from which the
// bench computes median and quartiles.
struct SnrThroughputSamples {
  int snr_min = 0;
  // samples[rate][snr - snr_min] = throughputs observed (Mbit/s)
  std::vector<std::vector<std::vector<double>>> samples;
};
SnrThroughputSamples snr_throughput_samples(const Dataset& ds,
                                            Standard standard);

}  // namespace wmesh

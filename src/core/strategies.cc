#include "core/strategies.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/dataset_ops.h"
#include "core/rate_selection.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace wmesh {

const char* to_string(UpdateStrategy s) {
  switch (s) {
    case UpdateStrategy::kFirst:
      return "first";
    case UpdateStrategy::kMostRecent:
      return "most-recent";
    case UpdateStrategy::kSubsampled:
      return "subsampled";
    case UpdateStrategy::kAll:
      return "all";
  }
  return "?";
}

namespace {

// Per-link incremental table: SNR -> per-rate counts of recorded P_opt.
// First/MostRecent keep a single point per SNR; Subsampled/All accumulate.
struct LinkTable {
  // snr -> counts per rate
  std::map<int, std::vector<std::uint32_t>> cells;
  std::uint64_t updates = 0;
  std::uint64_t points = 0;
  std::uint64_t sets_seen = 0;

  int predict(int snr, std::size_t n_rates) const {
    const auto it = cells.find(snr);
    if (it == cells.end()) return -1;
    const auto& c = it->second;
    std::size_t best = 0;
    for (std::size_t r = 1; r < n_rates; ++r) {
      if (c[r] > c[best]) best = r;
    }
    return c[best] > 0 ? static_cast<int>(best) : -1;
  }

  void record(int snr, RateIndex rate, std::size_t n_rates, bool replace) {
    auto& c = cells[snr];
    if (c.empty()) c.assign(n_rates, 0);
    if (replace) {
      bool had = false;
      for (auto& v : c) {
        had = had || v > 0;
        v = 0;
      }
      if (!had) ++points;  // a replaced cell keeps one resident point
    } else {
      ++points;
    }
    ++c[rate];
    ++updates;
  }
};

}  // namespace

StrategyResult run_strategy(const Dataset& ds, Standard standard,
                            const StrategyParams& params) {
  WMESH_SPAN("strategy.run");
  const std::size_t n_rates = rate_count(standard);
  StrategyResult out;
  out.accuracy.assign(params.max_rounds + 1, 0.0);
  out.predictions.assign(params.max_rounds + 1, 0);
  std::vector<std::uint64_t> correct(params.max_rounds + 1, 0);
  std::uint64_t total_predictions = 0;
  std::uint64_t total_correct = 0;

  for (const auto& nt : ds.networks) {
    if (nt.info.standard != standard) continue;
    std::map<std::uint32_t, LinkTable> tables;
    // Probe sets are time-ordered within a trace, so a single pass replays
    // every link's stream in order.
    for (const auto& set : nt.probe_sets) {
      if (std::isnan(set.snr_db)) continue;
      const auto opt = optimal_rate(set, standard);
      if (!opt) continue;
      LinkTable& lt = tables[link_key({set.from, set.to})];
      const int snr = snr_key(set.snr_db);
      ++lt.sets_seen;
      ++out.probe_sets;

      // Predict with the state built from *previous* sets only.
      const int pred = lt.predict(snr, n_rates);
      if (pred >= 0) {
        const std::uint64_t round = lt.sets_seen - 1;  // prior sets seen
        const bool ok = pred == static_cast<int>(*opt);
        ++total_predictions;
        total_correct += ok ? 1 : 0;
        if (round >= 1 && round <= params.max_rounds) {
          ++out.predictions[round];
          correct[round] += ok ? 1 : 0;
        }
      }

      // Update per strategy.
      switch (params.strategy) {
        case UpdateStrategy::kFirst:
          if (lt.cells.find(snr) == lt.cells.end()) {
            lt.record(snr, *opt, n_rates, /*replace=*/false);
          }
          break;
        case UpdateStrategy::kMostRecent:
          lt.record(snr, *opt, n_rates, /*replace=*/true);
          break;
        case UpdateStrategy::kSubsampled:
          // Always take the first point for an unseen SNR (otherwise the
          // strategy would stay blind for k rounds), then every k-th set.
          if (lt.cells.find(snr) == lt.cells.end() ||
              lt.sets_seen % params.subsample_k == 0) {
            lt.record(snr, *opt, n_rates, /*replace=*/false);
          }
          break;
        case UpdateStrategy::kAll:
          lt.record(snr, *opt, n_rates, /*replace=*/false);
          break;
      }
    }
    for (const auto& [key, lt] : tables) {
      (void)key;
      out.updates += lt.updates;
      out.memory_points += lt.points;
    }
  }

  for (std::size_t i = 0; i <= params.max_rounds; ++i) {
    if (out.predictions[i] > 0) {
      out.accuracy[i] = static_cast<double>(correct[i]) /
                        static_cast<double>(out.predictions[i]);
    }
  }
  if (total_predictions > 0) {
    out.overall_accuracy = static_cast<double>(total_correct) /
                           static_cast<double>(total_predictions);
  }
  WMESH_COUNTER_ADD("strategy.predictions", total_predictions);
  WMESH_COUNTER_ADD("strategy.correct", total_correct);
  WMESH_COUNTER_ADD("strategy.updates", out.updates);
  WMESH_COUNTER_ADD("strategy.memory_points", out.memory_points);
  WMESH_LOG_DEBUG("strategy", kv("kind", to_string(params.strategy)),
                  kv("predictions", total_predictions),
                  kv("accuracy", out.overall_accuracy),
                  kv("updates", out.updates));
  return out;
}

}  // namespace wmesh

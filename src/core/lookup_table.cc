#include "core/lookup_table.h"

#include <algorithm>
#include <cmath>

#include "core/dataset_ops.h"
#include "core/rate_selection.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "par/thread_pool.h"

namespace wmesh {

const char* to_string(TableScope scope) {
  switch (scope) {
    case TableScope::kGlobal:
      return "global";
    case TableScope::kNetwork:
      return "network";
    case TableScope::kAp:
      return "ap";
    case TableScope::kLink:
      return "link";
  }
  return "?";
}

void SnrLookupTable::observe(std::uint64_t key, int snr, RateIndex rate) {
  WMESH_COUNTER_INC("lookup.observations");
  Counts& c = cells_[{key, snr}];
  if (c.empty()) c.assign(n_rates_, 0);
  if (rate < n_rates_) ++c[rate];
}

int SnrLookupTable::choose(std::uint64_t key, int snr) const {
  const auto it = cells_.find({key, snr});
  if (it == cells_.end()) {
    WMESH_COUNTER_INC("lookup.misses");
    return -1;
  }
  WMESH_COUNTER_INC("lookup.hits");
  const Counts& c = it->second;
  // Highest count wins; ties break toward the lower (more robust) rate.
  std::size_t best = 0;
  for (std::size_t r = 1; r < c.size(); ++r) {
    if (c[r] > c[best]) best = r;
  }
  return c[best] > 0 ? static_cast<int>(best) : -1;
}

int SnrLookupTable::rates_needed(std::uint64_t key, int snr,
                                 double percentile) const {
  const auto it = cells_.find({key, snr});
  if (it == cells_.end()) return 0;
  Counts sorted = it->second;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  std::uint64_t total = 0;
  for (auto v : sorted) total += v;
  if (total == 0) return 0;
  const double target = percentile * static_cast<double>(total);
  std::uint64_t cum = 0;
  int needed = 0;
  for (auto v : sorted) {
    if (v == 0) break;
    cum += v;
    ++needed;
    if (static_cast<double>(cum) + 1e-9 >= target) break;
  }
  return needed;
}

std::size_t SnrLookupTable::cell_count(std::uint64_t key, int snr) const {
  const auto it = cells_.find({key, snr});
  if (it == cells_.end()) return 0;
  std::uint64_t total = 0;
  for (auto v : it->second) total += v;
  return total;
}

std::vector<SnrLookupTable::Cell> SnrLookupTable::cells() const {
  std::vector<Cell> out;
  out.reserve(cells_.size());
  for (const auto& [ks, counts] : cells_) {
    std::uint64_t total = 0;
    for (auto v : counts) total += v;
    out.push_back({ks.first, ks.second, total});
  }
  return out;
}

void SnrLookupTable::merge(const SnrLookupTable& other) {
  for (const auto& [key, counts] : other.cells_) {
    Counts& mine = cells_[key];
    if (mine.empty()) mine.assign(n_rates_, 0);
    const std::size_t n = std::min(mine.size(), counts.size());
    for (std::size_t r = 0; r < n; ++r) mine[r] += counts[r];
  }
}

std::uint64_t SnrLookupTable::scope_key(TableScope scope,
                                        std::uint32_t network_id, ApId from,
                                        ApId to) noexcept {
  switch (scope) {
    case TableScope::kGlobal:
      return 0;
    case TableScope::kNetwork:
      return network_id;
    case TableScope::kAp:
      return (static_cast<std::uint64_t>(network_id) << 16) | from;
    case TableScope::kLink:
      return (static_cast<std::uint64_t>(network_id) << 32) |
             (static_cast<std::uint64_t>(from) << 16) | to;
  }
  return 0;
}

SnrLookupTable build_lookup_table(const Dataset& ds, Standard standard,
                                  TableScope scope) {
  WMESH_SPAN("lookup.build");
  WMESH_COUNTER_INC("lookup.builds");
  // One partial table per network, merged in network order.  Cell counts
  // are integer sums, so the merged table is identical to the serial build
  // for any thread count.
  return par::parallel_map_reduce(
      ds.networks.size(), SnrLookupTable(standard, scope),
      [&](std::size_t i) {
        SnrLookupTable partial(standard, scope);
        const auto& nt = ds.networks[i];
        if (nt.info.standard != standard) return partial;
        for (const auto& set : nt.probe_sets) {
          if (std::isnan(set.snr_db)) continue;
          const auto opt = optimal_rate(set, standard);
          if (!opt) continue;
          partial.observe(
              SnrLookupTable::scope_key(scope, nt.info.id, set.from, set.to),
              snr_key(set.snr_db), *opt);
        }
        return partial;
      },
      [](SnrLookupTable& acc, SnrLookupTable&& v) { acc.merge(v); });
}

RatesNeededCurve rates_needed_curve(const SnrLookupTable& table,
                                    double percentile) {
  // Aggregate per SNR across scope instances: observation-weighted mean and
  // max of the per-cell rates_needed.
  std::map<int, std::pair<double, std::uint64_t>> weighted;  // sum, weight
  std::map<int, int> maxima;
  for (const auto& cell : table.cells()) {
    const int k = table.rates_needed(cell.key, cell.snr, percentile);
    if (k == 0) continue;
    auto& [sum, w] = weighted[cell.snr];
    sum += static_cast<double>(k) * static_cast<double>(cell.count);
    w += cell.count;
    maxima[cell.snr] = std::max(maxima[cell.snr], k);
  }
  RatesNeededCurve out;
  for (const auto& [snr, sw] : weighted) {
    out.snr.push_back(snr);
    out.mean_rates.push_back(sw.first / static_cast<double>(sw.second));
    out.max_rates.push_back(maxima[snr]);
  }
  return out;
}

TableEvalPartial eval_lookup_table(const Dataset& ds, Standard standard,
                                   TableScope scope,
                                   const SnrLookupTable& table) {
  // Evaluation reads the finished table; one network per task, per-network
  // diffs concatenated in network order (the for_each_probe_set order).
  return par::parallel_map_reduce(
      ds.networks.size(), TableEvalPartial{},
      [&](std::size_t i) {
        TableEvalPartial p;
        const auto& nt = ds.networks[i];
        if (nt.info.standard != standard) return p;
        for (const auto& set : nt.probe_sets) {
          if (std::isnan(set.snr_db)) continue;
          const auto opt = optimal_rate(set, standard);
          if (!opt) continue;
          const int choice = table.choose(
              SnrLookupTable::scope_key(scope, nt.info.id, set.from, set.to),
              snr_key(set.snr_db));
          if (choice < 0) continue;  // paper: no prediction without data
          const double best = probe_set_throughput_mbps(set, standard, *opt);
          const double got = probe_set_throughput_mbps(
              set, standard, static_cast<RateIndex>(choice));
          p.diffs.push_back(best - got);
          if (choice == static_cast<int>(*opt)) ++p.exact;
        }
        return p;
      },
      [](TableEvalPartial& acc, TableEvalPartial&& v) {
        acc.diffs.insert(acc.diffs.end(), v.diffs.begin(), v.diffs.end());
        acc.exact += v.exact;
      });
}

TableErrorResult lookup_table_errors(const Dataset& ds, Standard standard,
                                     TableScope scope) {
  WMESH_SPAN("lookup.errors");
  const SnrLookupTable table = build_lookup_table(ds, standard, scope);
  TableEvalPartial all = eval_lookup_table(ds, standard, scope, table);
  TableErrorResult out;
  out.throughput_diff_mbps = std::move(all.diffs);
  if (!out.throughput_diff_mbps.empty()) {
    out.exact_fraction =
        static_cast<double>(all.exact) /
        static_cast<double>(out.throughput_diff_mbps.size());
  }
  WMESH_LOG_DEBUG("lookup", kv("scope", to_string(scope)),
                  kv("predictions", out.throughput_diff_mbps.size()),
                  kv("exact_fraction", out.exact_fraction));
  return out;
}

}  // namespace wmesh

// SNR dispersion analysis (paper §3.1.1, Fig 3.1).
//
// Three nested dispersion scales justify the paper's use of the median SNR
// as "the SNR of the probe set":
//   * within one probe set (the per-rate SNRs of ~20 interleaved probes) the
//     standard deviation is small (< 5 dB ~97.5% of the time);
//   * per link over the whole trace it is larger (the channel drifts);
//   * per network it is large (each network spans a diverse set of links).
#pragma once

#include <vector>

#include "trace/records.h"

namespace wmesh {

struct SnrDeviations {
  std::vector<double> per_probe_set;  // sigma of entry SNRs within each set
  std::vector<double> per_link;       // sigma of set SNRs per directed link
  std::vector<double> per_network;    // sigma of set SNRs per network trace
};

// Computes all three distributions over the traces of `standard`.
// Probe sets with fewer than two received rates contribute no per-set value;
// links/networks with fewer than two sets contribute no value either.
SnrDeviations snr_deviations(const Dataset& ds, Standard standard);

}  // namespace wmesh

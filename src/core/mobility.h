// Client-mobility analysis (paper §7): prevalence and persistence.
//
// From five-minute association samples we reconstruct *sessions*: a client
// that disappears for more than one sample interval is treated as a new
// client on return (the paper's five-minute disconnection rule).  Then:
//
//   * connection length  -- session duration (Fig 7.2);
//   * APs visited        -- distinct APs in a session (Fig 7.1);
//   * prevalence of AP A for client c -- fraction of the observation
//     window c spent associated with A (one value per (client, AP) pair
//     with non-zero time, Fig 7.3);
//   * persistence -- the length of each maximal run at a single AP before
//     switching (one value per run, Fig 7.4);
//   * per-client (median persistence, max prevalence) for Fig 7.5.
#pragma once

#include <vector>

#include "trace/records.h"

namespace wmesh {

// One reconstructed session: contiguous buckets of one (virtual) client.
struct ClientSession {
  std::uint32_t client = 0;   // original client id
  std::uint32_t start_bucket = 0;
  std::vector<ApId> aps;      // one entry per bucket, in order
};

// Splits a trace's client samples into sessions.  Samples must be sorted by
// (client, bucket), as the simulator and loader produce.
std::vector<ClientSession> reconstruct_sessions(
    const std::vector<ClientSample>& samples);

struct MobilityStats {
  std::vector<int> aps_visited;              // per session
  std::vector<double> connection_length_min; // per session
  std::vector<double> prevalence;            // per (session, AP), non-zero
  std::vector<double> persistence_min;       // per run at one AP
  // Fig 7.5: per session, (median persistence in minutes, max prevalence).
  std::vector<std::pair<double, double>> pers_vs_prev;
};

// Analyzes one trace; bucket_minutes converts buckets to wall time.
MobilityStats analyze_mobility(const NetworkTrace& trace,
                               double bucket_minutes = 5.0);

// Aggregates over every trace of `env` in the dataset (traces whose
// environment is kMixed are skipped when env is indoor/outdoor, matching
// the paper's classification rule).
MobilityStats analyze_mobility_by_env(const Dataset& ds, Environment env,
                                      double bucket_minutes = 5.0);

// Merges `more` into `into` (simple concatenation of all sample vectors).
void merge_mobility(MobilityStats& into, MobilityStats&& more);

}  // namespace wmesh

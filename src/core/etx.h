// ETX shortest-path routing (paper §2.3, §5.1).
//
// The expected-transmission-count metric of De Couto et al. [15], in the two
// variants the paper compares:
//   ETX1  assumes a perfect ACK channel: link cost = 1 / p_fwd
//   ETX2  accounts for the lossy reverse (ACK) channel:
//         link cost = 1 / (p_fwd * p_rev)
// Path costs are sums of link costs along the Dijkstra-shortest path.  The
// paper argues ETX1 is what deployments should use; the gap between the two
// is driven by link asymmetry (Fig 5.2).
//
// Real mesh hearing graphs are sparse -- most of a 1407-AP cost matrix is
// kInfCost -- so alongside the dense matrix the graph keeps a CSR adjacency
// (forward and reverse) built once at construction.  Dijkstra relaxes only
// the finite edges of a popped node's CSR row instead of scanning all n
// vertices per pop, and draws its dist/parent/heap working storage from a
// reusable per-thread scratch arena.  The dense-scan kernel is retained as
// `*_reference` for the kernel-equivalence test wall and the
// dijkstra_dense bench stage; both produce bit-identical results.
#pragma once

#include <limits>
#include <vector>

#include "core/dataset_ops.h"

namespace wmesh {

inline constexpr double kInfCost = std::numeric_limits<double>::infinity();

enum class EtxVariant : std::uint8_t { kEtx1, kEtx2 };

const char* to_string(EtxVariant v);

// Link-cost matrix for one network at one bit rate.
class EtxGraph {
 public:
  EtxGraph(const SuccessMatrix& success, EtxVariant variant,
           double min_delivery = 0.0);

  std::size_t ap_count() const noexcept { return n_; }
  EtxVariant variant() const noexcept { return variant_; }

  // Number of finite directed edges (CSR entries per direction).
  std::size_t edge_count() const noexcept { return fwd_to_.size(); }

  // Approximate resident size (dense matrix + both CSR halves), for the
  // AnalysisCache byte accounting.
  std::size_t approx_bytes() const noexcept;

  // Cost of the directed link, kInfCost when unusable.
  double link_cost(ApId from, ApId to) const noexcept {
    return cost_[static_cast<std::size_t>(from) * n_ + to];
  }

  // Single-source shortest-path costs from `src` to every node.  When
  // `parent` is non-null it receives the predecessor of each node on its
  // shortest path (-1 for src/unreachable).
  std::vector<double> shortest_from(ApId src,
                                    std::vector<int>* parent = nullptr) const;

  // Shortest-path costs *to* `dst` from every node (Dijkstra on the
  // reversed graph) -- the distance field opportunistic routing needs.
  std::vector<double> shortest_to(ApId dst) const;

  // Allocation-free variants for hot loops: `dist` (and `parent`, when
  // non-null) are assign()-reused, so a caller that keeps the vectors
  // across calls pays no per-run allocation.  Values are identical to the
  // returning overloads.
  void shortest_from_into(ApId src, std::vector<double>* dist,
                          std::vector<int>* parent = nullptr) const;
  void shortest_to_into(ApId dst, std::vector<double>* dist) const;

  // Dense-scan reference kernels (the pre-CSR implementation: every pop
  // scans all n vertices).  Kept for the sparse-vs-dense equivalence wall
  // in tests/test_kernels.cc and the dijkstra_dense bench stage; not for
  // production use.
  std::vector<double> shortest_from_reference(
      ApId src, std::vector<int>* parent = nullptr) const;
  std::vector<double> shortest_to_reference(ApId dst) const;

  // Hop count along the parent chain from src to dst; -1 when unreachable.
  static int hops(const std::vector<int>& parent, ApId src, ApId dst);

 private:
  void build_csr();
  void dijkstra_into(ApId origin, bool reversed, std::vector<double>* dist,
                     std::vector<int>* parent) const;
  std::vector<double> dijkstra_reference(ApId origin, bool reversed,
                                         std::vector<int>* parent) const;

  std::size_t n_ = 0;
  EtxVariant variant_;
  std::vector<double> cost_;

  // CSR adjacency over the finite entries of `cost_`, built once at
  // construction.  Row u of the forward half lists {v : cost(u->v) < inf}
  // in ascending v; the reverse half lists in-edges the same way, so the
  // reversed Dijkstra relaxes edges in exactly the order the dense scan
  // did (bit-identical dist/parent output).
  std::vector<std::uint32_t> fwd_off_, rev_off_;  // n_ + 1 offsets each
  std::vector<std::uint32_t> fwd_to_, rev_to_;    // edge targets
  std::vector<double> fwd_w_, rev_w_;             // edge weights
};

// Builds the ETX cost for one link from forward/reverse success rates.
double etx_link_cost(double p_fwd, double p_rev, EtxVariant variant,
                     double min_delivery = 0.0) noexcept;

}  // namespace wmesh

// ETX shortest-path routing (paper §2.3, §5.1).
//
// The expected-transmission-count metric of De Couto et al. [15], in the two
// variants the paper compares:
//   ETX1  assumes a perfect ACK channel: link cost = 1 / p_fwd
//   ETX2  accounts for the lossy reverse (ACK) channel:
//         link cost = 1 / (p_fwd * p_rev)
// Path costs are sums of link costs along the Dijkstra-shortest path.  The
// paper argues ETX1 is what deployments should use; the gap between the two
// is driven by link asymmetry (Fig 5.2).
#pragma once

#include <limits>
#include <vector>

#include "core/dataset_ops.h"

namespace wmesh {

inline constexpr double kInfCost = std::numeric_limits<double>::infinity();

enum class EtxVariant : std::uint8_t { kEtx1, kEtx2 };

const char* to_string(EtxVariant v);

// Link-cost matrix for one network at one bit rate.
class EtxGraph {
 public:
  EtxGraph(const SuccessMatrix& success, EtxVariant variant,
           double min_delivery = 0.0);

  std::size_t ap_count() const noexcept { return n_; }
  EtxVariant variant() const noexcept { return variant_; }

  // Cost of the directed link, kInfCost when unusable.
  double link_cost(ApId from, ApId to) const noexcept {
    return cost_[static_cast<std::size_t>(from) * n_ + to];
  }

  // Single-source shortest-path costs from `src` to every node.  When
  // `parent` is non-null it receives the predecessor of each node on its
  // shortest path (-1 for src/unreachable).
  std::vector<double> shortest_from(ApId src,
                                    std::vector<int>* parent = nullptr) const;

  // Shortest-path costs *to* `dst` from every node (Dijkstra on the
  // reversed graph) -- the distance field opportunistic routing needs.
  std::vector<double> shortest_to(ApId dst) const;

  // Hop count along the parent chain from src to dst; -1 when unreachable.
  static int hops(const std::vector<int>& parent, ApId src, ApId dst);

 private:
  std::vector<double> dijkstra(ApId origin, bool reversed,
                               std::vector<int>* parent) const;

  std::size_t n_ = 0;
  EtxVariant variant_;
  std::vector<double> cost_;
};

// Builds the ETX cost for one link from forward/reverse success rates.
double etx_link_cost(double p_fwd, double p_rev, EtxVariant variant,
                     double min_delivery = 0.0) noexcept;

}  // namespace wmesh

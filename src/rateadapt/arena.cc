#include "rateadapt/arena.h"

#include <cmath>

#include "phy/error_model.h"

namespace wmesh {
namespace {

struct Link {
  MeshNetwork net;
  ChannelModel chan;
};

ChannelParams resolve_channel(const ArenaParams& p) {
  // A default-constructed ChannelParams equals the indoor calibration; use
  // it as-is (callers can override any field).
  return p.channel;
}

MeshNetwork make_link_net(double distance_m) {
  std::vector<Ap> aps = {{0, 0.0, 0.0}, {1, distance_m, 0.0}};
  NetworkInfo info;
  info.name = "arena-link";
  return MeshNetwork(info, aps);
}

}  // namespace

ArenaResult run_arena(RatePolicy& policy, const ArenaParams& params) {
  const auto rates = probed_rates(params.standard);
  ArenaResult out;
  out.policy = std::string(policy.name());

  MeshNetwork net = make_link_net(params.link_distance_m);
  Rng build_rng(params.seed);
  ChannelModel chan(net, params.standard, resolve_channel(params),
                    params.duration_s, build_rng);
  if (chan.links().empty()) return out;  // silent link; nothing to do

  // Frame-level randomness comes from a stream that is a pure function of
  // (seed, frame index, rate): both the policy run and the oracle sweep see
  // the same channel realization for the same (frame, rate).
  double policy_sum = 0.0, oracle_sum = 0.0;
  double last_reported_snr = std::nan("");
  std::size_t frame_idx = 0;
  Rng fading_rng(params.seed ^ 0xfadefadefadeULL);

  for (double t = params.frame_interval_s; t < params.duration_s;
       t += params.frame_interval_s, ++frame_idx) {
    chan.advance_slow_fading(params.frame_interval_s, fading_rng);

    // Evaluate every rate's outcome at this instant with per-(frame, rate)
    // deterministic draws.
    double best = 0.0;
    std::vector<ChannelModel::ProbeOutcome> outcomes(rates.size());
    for (std::size_t r = 0; r < rates.size(); ++r) {
      Rng frame_rng(params.seed ^ (frame_idx * 1315423911ULL) ^ (r << 48));
      outcomes[r] = chan.sample_probe(0, static_cast<RateIndex>(r), t,
                                      frame_rng);
      if (outcomes[r].delivered) {
        best = std::max(best, rates[r].kbps / 1000.0);
      }
    }
    oracle_sum += best;

    const RateIndex choice = policy.choose_rate(last_reported_snr);
    const auto& res = outcomes[choice];
    ++out.frames;
    if (res.delivered) {
      ++out.delivered;
      policy_sum += rates[choice].kbps / 1000.0;
      last_reported_snr = res.reported_snr_db;
    }
    policy.on_result(choice, res.delivered, last_reported_snr);
  }

  if (out.frames > 0) {
    out.mean_throughput_mbps = policy_sum / static_cast<double>(out.frames);
    out.oracle_throughput_mbps = oracle_sum / static_cast<double>(out.frames);
    out.fraction_of_oracle =
        out.oracle_throughput_mbps > 0.0
            ? out.mean_throughput_mbps / out.oracle_throughput_mbps
            : 0.0;
  }
  return out;
}

std::vector<ArenaResult> run_arena_all(
    std::vector<std::unique_ptr<RatePolicy>>& policies,
    const ArenaParams& params) {
  std::vector<ArenaResult> out;
  out.reserve(policies.size());
  for (auto& p : policies) {
    out.push_back(run_arena(*p, params));
  }
  return out;
}

}  // namespace wmesh
